//! Integration tests for the baseline comparisons the paper's evaluation
//! is built around: pure streaming (GK, Q-Digest, RANDOM), the sorted
//! strawman, and our algorithm, all on the same data.

use std::sync::Arc;

use hsq::core::{HistStreamQuantiles, HsqConfig, PureStreaming, Strawman, StreamingAlgo};
use hsq::sketch::ExactQuantiles;
use hsq::storage::MemDevice;
use hsq::workload::{Dataset, TimeStepDriver};

struct Scene {
    ours: HistStreamQuantiles<u64, MemDevice>,
    gk: PureStreaming<u64, MemDevice>,
    qd: PureStreaming<u64, MemDevice>,
    oracle: ExactQuantiles<u64>,
    m: u64,
}

fn build_scene(steps: usize, step_size: usize, eps: f64) -> Scene {
    let cfg = HsqConfig::builder().epsilon(eps).merge_threshold(5).build();
    let dev = MemDevice::new(512);
    let mut ours = HistStreamQuantiles::<u64, _>::new(Arc::clone(&dev), cfg);
    // Give each baseline sketch roughly our total memory (a generous deal
    // for them: we also count HS).
    let budget = 6_000usize;
    let expected = (steps * step_size) as u64;
    let mut gk = PureStreaming::<u64, _>::with_memory(
        Arc::clone(&dev),
        StreamingAlgo::Gk,
        budget,
        expected,
        5,
    );
    let mut qd = PureStreaming::<u64, _>::with_memory(
        Arc::clone(&dev),
        StreamingAlgo::QDigest,
        budget,
        expected,
        5,
    );
    let mut oracle = ExactQuantiles::new();

    let mut driver = TimeStepDriver::new(Dataset::Normal, 77, step_size, steps + 1);
    for _ in 0..steps {
        let batch = driver.next().unwrap();
        for &v in &batch {
            gk.insert(v);
            qd.insert(v);
            oracle.insert(v);
        }
        ours.ingest_step(&batch).unwrap();
        gk.end_time_step().unwrap();
        qd.end_time_step().unwrap();
    }
    let stream = driver.next().unwrap();
    for &v in &stream {
        ours.stream_update(v);
        gk.insert(v);
        qd.insert(v);
        oracle.insert(v);
    }
    Scene {
        ours,
        gk,
        qd,
        oracle,
        m: step_size as u64,
    }
}

#[test]
fn ours_beats_pure_streaming_at_scale() {
    // With history 30x the stream, our accurate error (<= eps*m) must be
    // well below the pure-streaming error (~eps'*N) at comparable memory.
    let mut s = build_scene(30, 2_000, 0.02);
    let mut ours_worse = 0;
    for phi in [0.25, 0.5, 0.75, 0.95] {
        let v_ours = s.ours.quantile(phi).unwrap().unwrap();
        let v_gk = s.gk.quantile(phi).unwrap();
        let e_ours = s.oracle.relative_error(phi, v_ours);
        let e_gk = s.oracle.relative_error(phi, v_gk);
        // Ours within theorem bound:
        let n = s.oracle.len();
        let bound = ((0.02 * s.m as f64) + 1.0) / (phi * n as f64);
        assert!(
            e_ours <= bound,
            "phi={phi}: ours {e_ours:.2e} > bound {bound:.2e}"
        );
        if e_ours > e_gk {
            ours_worse += 1;
        }
    }
    assert!(
        ours_worse <= 1,
        "accurate response lost to pure GK on {ours_worse}/4 quantiles"
    );
}

#[test]
fn qdigest_baseline_within_its_own_bound() {
    let mut s = build_scene(10, 2_000, 0.02);
    for phi in [0.25, 0.5, 0.75] {
        let v = s.qd.quantile(phi).unwrap();
        let err = s.oracle.relative_error(phi, v);
        // Q-Digest error ~ eps * N; with our budget eps is coarse. Sanity:
        // within 10% relative at the median.
        assert!(
            err < 0.2,
            "q-digest baseline unreasonably bad: phi={phi} err={err:.3}"
        );
    }
}

#[test]
fn random_baseline_is_probabilistically_close() {
    let dev = MemDevice::new(512);
    let mut r = PureStreaming::<u64, _>::with_memory(
        Arc::clone(&dev),
        StreamingAlgo::Random,
        8_192,
        100_000,
        5,
    );
    let mut oracle = ExactQuantiles::new();
    let mut driver = TimeStepDriver::new(Dataset::Uniform, 5, 10_000, 10);
    for batch in driver.by_ref() {
        for &v in &batch {
            r.insert(v);
            oracle.insert(v);
        }
        r.end_time_step().unwrap();
    }
    let med = r.quantile(0.5).unwrap();
    let err = oracle.relative_error(0.5, med);
    assert!(err < 0.05, "reservoir median err {err:.3}");
}

#[test]
fn strawman_matches_our_accuracy_but_costs_more_io() {
    let eps = 0.05;
    let cfg = HsqConfig::builder().epsilon(eps).merge_threshold(5).build();
    let dev_ours = MemDevice::new(512);
    let dev_straw = MemDevice::new(512);
    let mut ours = HistStreamQuantiles::<u64, _>::new(Arc::clone(&dev_ours), cfg.clone());
    let mut straw = Strawman::<u64, _>::new(Arc::clone(&dev_straw), cfg);
    let mut oracle = ExactQuantiles::new();

    let mut ours_io = 0u64;
    let mut straw_io = 0u64;
    let mut driver = TimeStepDriver::new(Dataset::Wikipedia, 13, 3_200, 21);
    for _ in 0..20 {
        let batch = driver.next().unwrap();
        oracle.extend(batch.iter().copied());
        ours_io += ours.ingest_step(&batch).unwrap().total_accesses();
        for &v in &batch {
            straw.stream_update(v);
        }
        straw_io += straw.end_time_step().unwrap().total_accesses();
    }
    let stream = driver.next().unwrap();
    for &v in &stream {
        oracle.insert(v);
        ours.stream_update(v);
        straw.stream_update(v);
    }

    // Accuracy: both within eps*m.
    let m = stream.len() as u64;
    let n = oracle.len();
    for phi in [0.25, 0.5, 0.9] {
        let bound = ((eps * m as f64) + 1.0) / (phi * n as f64);
        let e_ours = oracle.relative_error(phi, ours.quantile(phi).unwrap().unwrap());
        let e_straw = oracle.relative_error(phi, straw.quantile(phi).unwrap().unwrap());
        assert!(e_ours <= bound, "ours phi={phi}: {e_ours:.2e}");
        assert!(e_straw <= bound, "strawman phi={phi}: {e_straw:.2e}");
    }
    // Cost: the strawman rewrites history every step.
    assert!(
        straw_io > 2 * ours_io,
        "strawman update I/O ({straw_io}) should dwarf ours ({ours_io})"
    );
}

#[test]
fn absolute_error_is_stream_bound_as_history_grows() {
    // The defining contrast (paper §2): our absolute rank error stays
    // <= eps*m no matter how much history accumulates, so the *relative*
    // error bound eps*m/(phi*N) shrinks as N grows. (Observed error for a
    // single seed fluctuates below the bound, so the pointwise assertion
    // is on the bound, not on monotonicity of the noise.)
    let eps = 0.05;
    let m = 2_000u64;
    for steps in [5usize, 25, 50] {
        let cfg = HsqConfig::builder().epsilon(eps).merge_threshold(5).build();
        let mut ours = HistStreamQuantiles::<u64, _>::new(MemDevice::new(512), cfg);
        let mut oracle = ExactQuantiles::new();
        let mut driver = TimeStepDriver::new(Dataset::Uniform, 3, m as usize, steps + 1);
        for _ in 0..steps {
            let b = driver.next().unwrap();
            oracle.extend(b.iter().copied());
            ours.ingest_step(&b).unwrap();
        }
        for v in driver.next().unwrap() {
            oracle.insert(v);
            ours.stream_update(v);
        }
        let n = oracle.len();
        let v = ours.quantile(0.5).unwrap().unwrap();
        let rel = oracle.relative_error(0.5, v);
        // Relative bound keeps shrinking: eps*m / (0.5*N).
        let bound = (eps * m as f64 + 1.0) / (0.5 * n as f64);
        assert!(
            rel <= bound,
            "steps={steps}: rel err {rel:.3e} above stream-bound {bound:.3e}"
        );
    }
}
