//! End-to-end tests of the sharded engine through the umbrella crate:
//! real files per shard, cross-shard accuracy against an exact oracle,
//! and restart recovery of a full sharded deployment.

use std::sync::Arc;

use hsq::core::{HsqConfig, ShardedEngine};
use hsq::sketch::ExactQuantiles;
use hsq::storage::{FileDevice, MemDevice};
use hsq::workload::{Dataset, TimeStepDriver};

fn config(eps: f64, kappa: usize) -> HsqConfig {
    HsqConfig::builder()
        .epsilon(eps)
        .merge_threshold(kappa)
        .build()
}

#[test]
fn sharded_accuracy_on_skewed_data_real_files() {
    let dirs: Vec<_> = (0..3)
        .map(|i| std::env::temp_dir().join(format!("hsq-shard-{}-{i}", std::process::id())))
        .collect();
    for d in &dirs {
        let _ = std::fs::remove_dir_all(d);
    }
    let devices: Vec<_> = dirs
        .iter()
        .map(|d| FileDevice::new(d, 512).unwrap())
        .collect();
    let mut engine = ShardedEngine::<u64, _>::new(devices, config(0.05, 3));

    let mut oracle = ExactQuantiles::new();
    let mut driver = TimeStepDriver::new(Dataset::NetTrace, 17, 2_000, 6);
    for _ in 0..5 {
        let batch = driver.next().unwrap();
        oracle.extend(batch.iter().copied());
        engine.ingest_step(&batch).unwrap();
    }
    let stream = driver.next().unwrap();
    oracle.extend(stream.iter().copied());
    engine.stream_extend(&stream);

    let m = stream.len() as u64;
    let n = engine.total_len();
    for phi in [0.05, 0.25, 0.5, 0.75, 0.95] {
        let v = engine.quantile(phi).unwrap().unwrap();
        let r = ((phi * n as f64).ceil() as u64).clamp(1, n);
        // Distance from the target rank to v's occupied rank interval
        // (duplicate plateaus count as a single hit).
        let hi = oracle.rank_of(v);
        let lo = if v == 0 { 1 } else { oracle.rank_of(v - 1) + 1 };
        let err = if r < lo { lo - r } else { r.saturating_sub(hi) };
        let allowed = (0.05 * m as f64).ceil() as u64 + 1;
        assert!(
            err <= allowed,
            "phi={phi}: rank error {err} > {allowed} (m={m})"
        );
    }

    // Shard devices saw disjoint shares of the data.
    let lens = engine.shard_lens();
    assert_eq!(lens.iter().sum::<u64>(), engine.total_len());
    assert!(lens.iter().all(|&l| l > 0), "empty shard: {lens:?}");

    for (d, dev) in dirs.iter().zip(
        engine
            .shards()
            .iter()
            .map(|s| Arc::clone(s.warehouse().device())),
    ) {
        drop(dev);
        let _ = std::fs::remove_dir_all(d);
    }
}

#[test]
fn sharded_persist_recover_across_restart() {
    let dirs: Vec<_> = (0..2)
        .map(|i| std::env::temp_dir().join(format!("hsq-reshard-{}-{i}", std::process::id())))
        .collect();
    for d in &dirs {
        let _ = std::fs::remove_dir_all(d);
    }
    let manifests;
    let expected_total;
    {
        let devices: Vec<_> = dirs
            .iter()
            .map(|d| FileDevice::new(d, 512).unwrap())
            .collect();
        let mut engine = ShardedEngine::<u64, _>::new(devices, config(0.1, 2));
        for step in 0..7u64 {
            let batch: Vec<u64> = (0..500).map(|i| step * 500 + i).collect();
            engine.ingest_step(&batch).unwrap();
        }
        manifests = engine.persist().unwrap();
        expected_total = engine.total_len();
        // Devices dropped here: simulated process exit.
    }
    {
        let devices: Vec<_> = dirs
            .iter()
            .map(|d| FileDevice::new(d, 512).unwrap())
            .collect();
        let recovered =
            ShardedEngine::<u64, _>::recover(devices, config(0.1, 2), &manifests).unwrap();
        assert_eq!(recovered.total_len(), expected_total);
        // History-only recovery answers exactly (m = 0).
        let med = recovered.quantile(0.5).unwrap().unwrap();
        assert_eq!(med, 1749, "median over 0..3500");
        // Routing is deterministic: new data keeps landing on the shard
        // that owned its key before the restart.
        let mut r2 = recovered;
        let probe = 123_456_789u64;
        let owner = r2.shard_of(probe);
        let before = r2.shard(owner).stream_len();
        r2.stream_update(probe);
        assert_eq!(r2.shard(owner).stream_len(), before + 1);
    }
    for d in &dirs {
        let _ = std::fs::remove_dir_all(d);
    }
}

#[test]
fn sharded_persist_recover_after_cascade_merge() {
    // PR 2 never exercised persist/recover *after* a cascade merge had
    // retired the original level-0 runs: the manifests must reference the
    // merged files only, and recovered answers must equal pre-recovery
    // answers. kappa = 2 over 13 steps forces merges up to level 2 on
    // every shard (Figure 2's cascade).
    let mut engine =
        ShardedEngine::<u64, _>::with_shards(3, config(0.05, 2), |_| MemDevice::new(512));
    for step in 0..13u64 {
        let batch: Vec<u64> = (0..200).map(|i| step * 200 + i).collect();
        engine.ingest_step(&batch).unwrap();
    }
    // Cascades happened: some shard holds a multi-step partition.
    assert!(
        engine
            .shards()
            .iter()
            .any(|s| s.warehouse().num_levels() > 1),
        "13 steps at kappa=2 must cascade"
    );

    let phis = [0.05, 0.25, 0.5, 0.75, 0.95, 1.0];
    let before: Vec<Option<u64>> = engine.quantiles(&phis).unwrap();
    let windows_before = engine.available_windows();

    let manifests = engine.persist().unwrap();
    let devices: Vec<_> = engine
        .shards()
        .iter()
        .map(|s| Arc::clone(s.warehouse().device()))
        .collect();
    let recovered = ShardedEngine::<u64, _>::recover(devices, config(0.05, 2), &manifests).unwrap();

    assert_eq!(recovered.total_len(), engine.total_len());
    assert_eq!(recovered.available_windows(), windows_before);
    // m = 0 on both sides: answers are deterministic and must match.
    let after: Vec<Option<u64>> = recovered.quantiles(&phis).unwrap();
    assert_eq!(before, after, "recovery changed query answers");
    // Windowed answers survive recovery too.
    for &w in &windows_before {
        assert_eq!(
            engine.quantile_in_window(w, 0.5).unwrap(),
            recovered.quantile_in_window(w, 0.5).unwrap(),
            "window {w} answer changed across recovery"
        );
    }
    // The recovered engine keeps ingesting and merging cleanly.
    let mut recovered = recovered;
    let batch: Vec<u64> = (2600..2800).collect();
    recovered.ingest_step(&batch).unwrap();
    for s in recovered.shards() {
        s.warehouse().check_invariants().unwrap();
    }
    assert_eq!(recovered.total_len(), engine.total_len() + 200);
}

#[test]
fn sharded_windows_align_across_shards() {
    // Shards advance in lockstep, so every shard exposes the same
    // partition-aligned windows.
    let mut engine =
        ShardedEngine::<u64, _>::with_shards(3, config(0.1, 2), |_| MemDevice::new(256));
    for step in 0..13u64 {
        let batch: Vec<u64> = (0..120).map(|i| step * 120 + i).collect();
        engine.ingest_step(&batch).unwrap();
    }
    let w0 = engine.shard(0).available_windows();
    for s in 1..engine.num_shards() {
        assert_eq!(engine.shard(s).available_windows(), w0);
    }
    assert_eq!(w0, vec![1, 4, 13]);
}
