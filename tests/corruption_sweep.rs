//! Corruption and transient-failure sweeps for the self-healing storage
//! stack: bit-rot in EVERY run block must never produce a silent wrong
//! answer (each response is correct against an oracle or flagged
//! degraded with rank bounds widened by exactly the quarantined mass),
//! scrub repair must salvage everything except the rotted block, and
//! deterministic flaky reads must be fully masked by the retry layers
//! with zero query-visible failures.

use std::io;
use std::sync::Arc;

use hsq::core::{HistStreamQuantiles, HsqConfig, QueryOutcome, ShardedEngine};
use hsq::storage::{BlockDevice, Fault, FaultDevice, FileId, MemDevice, RetryDevice, RetryPolicy};

const EPS: f64 = 0.1;
const STEPS: u64 = 4;
const STEP_ITEMS: u64 = 124; // four 31-item checksummed blocks per step
const STREAM_ITEMS: u64 = 100; // eps * m = 10

fn value(seed: u64, i: u64) -> u64 {
    (i * 37 + seed * 101) % 5_000
}

/// A fresh engine over `seed`'s deterministic workload plus its sorted
/// oracle (history and live stream together).
fn build(seed: u64, io_depth: usize) -> (HistStreamQuantiles<u64, MemDevice>, Vec<u64>) {
    let cfg = HsqConfig::builder()
        .epsilon(EPS)
        .merge_threshold(3)
        .io_depth(io_depth)
        .retry(RetryPolicy::immediate(4))
        .build();
    let mut h = HistStreamQuantiles::<u64, _>::new(MemDevice::new(256), cfg);
    let mut oracle = Vec::new();
    for s in 0..STEPS {
        let batch: Vec<u64> = (0..STEP_ITEMS)
            .map(|i| value(seed, s * STEP_ITEMS + i))
            .collect();
        oracle.extend_from_slice(&batch);
        h.ingest_step(&batch).unwrap();
    }
    for i in 0..STREAM_ITEMS {
        let v = value(seed, STEPS * STEP_ITEMS + i);
        oracle.push(v);
        h.stream_update(v);
    }
    oracle.sort_unstable();
    (h, oracle)
}

/// Flip one byte of a run block in place — the silent corruption the
/// per-block CRC trailer exists to catch.
fn rot(dev: &MemDevice, file: FileId, block: u64) {
    let mut buf = vec![0u8; dev.block_size()];
    let n = dev.read_block(file, block, &mut buf).unwrap();
    buf[n / 2] ^= 0x01;
    dev.write_block(file, block, &buf[..n]).unwrap();
}

/// No silent wrong answers: the returned value's true rank interval (in
/// the full oracle) must overlap the requested rank widened by
/// `eps_m + quarantined`, and the outcome's claimed interval must be
/// widened by **exactly** the quarantined mass.
fn assert_sound(oracle: &[u64], o: &QueryOutcome<u64>, r: u64, eps_m: u64) {
    let lt = oracle.partition_point(|&x| x < o.value) as u64;
    let le = oracle.partition_point(|&x| x <= o.value) as u64;
    let slack = eps_m + o.quarantined;
    assert!(
        lt < r + slack && le.max(lt + 1) >= r.saturating_sub(slack),
        "rank {r}: value {} has true ranks [{}, {}], outside +/-{slack}",
        o.value,
        lt + 1,
        le
    );
    assert_eq!(o.degraded, o.quarantined > 0);
    if o.estimated_rank >= eps_m {
        assert_eq!(
            o.rank_hi - o.rank_lo,
            2 * eps_m + o.quarantined,
            "bound widening must be exactly the quarantined mass"
        );
    }
}

#[test]
fn bit_rot_sweep_every_block_degrades_soundly_then_repairs() {
    let eps_m = (EPS * STREAM_ITEMS as f64).floor() as u64;
    for &seed in &[0u64, 7, 23] {
        for &depth in &[0usize, 2] {
            // The layout is deterministic per (seed, depth): discover the
            // per-partition block counts once, then sweep every block.
            let (h0, _) = build(seed, depth);
            let bs = h0.warehouse().device().block_size();
            let layout: Vec<u64> = h0
                .warehouse()
                .partitions_newest_first()
                .iter()
                .map(|p| p.run.len().div_ceil(p.run.items_per_block(bs) as u64))
                .collect();
            drop(h0);
            assert!(layout.iter().sum::<u64>() >= 16, "sweep must be real");

            for (pi, &blocks) in layout.iter().enumerate() {
                for b in 0..blocks {
                    let ctx = format!("seed {seed} depth {depth} partition {pi} block {b}");
                    let (mut h, oracle) = build(seed, depth);
                    let n = h.total_len();
                    let dev = Arc::clone(h.warehouse().device());
                    let (file, block_items) = {
                        let p = h.warehouse().partitions_newest_first()[pi];
                        let per = p.run.items_per_block(bs) as u64;
                        (p.run.file(), (p.run.len() - b * per).min(per))
                    };
                    rot(&dev, file, b);

                    // Degraded-or-correct: every answer either matches the
                    // oracle within eps*m or is flagged with exact widening.
                    for r in [n / 4, n / 2, (3 * n) / 4] {
                        let o = h.rank_query(r).unwrap().unwrap();
                        assert_sound(&oracle, &o, r, eps_m);
                        if o.degraded {
                            assert_eq!(o.quarantined, h.warehouse().quarantined_mass(), "{ctx}");
                        }
                    }

                    // Scrub converges: quarantine (if a query did not
                    // already), repair, then one provably clean pass.
                    let mut passes = 0;
                    while h.scrub(1_000_000).unwrap().quarantined_after > 0 {
                        passes += 1;
                        assert!(passes < 4, "scrub must converge ({ctx})");
                    }
                    let clean = h.scrub(1_000_000).unwrap();
                    assert_eq!(clean.corrupt_blocks, 0, "{ctx}");
                    assert_eq!(
                        h.warehouse().lost_items(),
                        block_items,
                        "exactly the rotted block is lost ({ctx})"
                    );
                    assert_eq!(h.total_len(), n - block_items, "{ctx}");

                    // Post-repair: answers sound modulo the confirmed loss,
                    // which is all that remains of the widening.
                    let n2 = h.total_len();
                    for r in [n2 / 4, n2 / 2, (3 * n2) / 4] {
                        let o = h.rank_query(r).unwrap().unwrap();
                        assert_eq!(o.quarantined, block_items, "{ctx}");
                        assert_sound(&oracle, &o, r, eps_m);
                    }
                }
            }
        }
    }
}

#[test]
fn strict_mode_refuses_quarantined_data_until_repaired() {
    let cfg = HsqConfig::builder()
        .epsilon(EPS)
        .merge_threshold(3)
        .strict(true)
        .build();
    let mut h = HistStreamQuantiles::<u64, _>::new(MemDevice::new(256), cfg);
    for s in 0..3u64 {
        h.ingest_step(&(0..100u64).map(|i| s * 100 + i).collect::<Vec<_>>())
            .unwrap();
    }
    for v in 300..350u64 {
        h.stream_update(v);
    }
    assert!(h.quantile(0.5).unwrap().is_some(), "healthy engine answers");

    // Quarantine one partition: accurate queries refuse outright.
    let file = h.warehouse().partitions_newest_first()[0].run.file();
    assert!(h.warehouse().quarantine(file));
    let err = h.quantile(0.5).unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("strict"), "{err}");
    assert!(h.rank_query(10).is_err());
    assert!(h.quantile_in_window(1, 0.5).is_err());
    // Quick (in-memory) responses never touch disk and stay available.
    assert!(h.quantile_quick(0.5).is_some());

    // The partition was never actually corrupt: repair salvages all of
    // it, nothing is lost, and strict service resumes.
    while h.scrub(1_000_000).unwrap().quarantined_after > 0 {}
    assert_eq!(h.warehouse().lost_items(), 0);
    assert_eq!(h.warehouse().quarantined_mass(), 0);
    assert!(h.quantile(0.5).unwrap().is_some());
}

#[test]
fn strict_mode_errors_when_corruption_is_discovered_mid_query() {
    let cfg = HsqConfig::builder()
        .epsilon(0.02)
        .merge_threshold(3)
        .strict(true)
        .build();
    let mut h = HistStreamQuantiles::<u64, _>::new(MemDevice::new(256), cfg);
    for step in 0..6u64 {
        let batch: Vec<u64> = (0..2_000).map(|i| i * 17 + step).collect();
        h.ingest_step(&batch).unwrap();
    }
    for v in 0..500u64 {
        h.stream_update(v);
    }
    // Rot every block of every partition: the first disk probe hits
    // corruption, the engine quarantines — and strict mode must turn
    // that into an error instead of a silently degraded answer.
    let dev = Arc::clone(h.warehouse().device());
    let rotted: Vec<(FileId, u64)> = h
        .warehouse()
        .partitions_newest_first()
        .iter()
        .map(|p| {
            let blocks = p
                .run
                .len()
                .div_ceil(p.run.items_per_block(dev.block_size()) as u64);
            (p.run.file(), blocks)
        })
        .collect();
    for &(file, blocks) in &rotted {
        for b in 0..blocks {
            rot(&dev, file, b);
        }
    }
    let err = h.quantile(0.5).unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    assert!(
        h.warehouse().quarantined_mass() > 0,
        "the probe's discovery must be recorded"
    );
}

#[test]
fn transient_read_failures_are_retried_within_queries() {
    let cfg = HsqConfig::builder()
        .epsilon(0.05)
        .merge_threshold(3)
        .retry(RetryPolicy::immediate(16))
        .build();
    let fault = FaultDevice::new(MemDevice::new(256));
    let mut h = HistStreamQuantiles::<u64, _>::new(Arc::clone(&fault), cfg);
    for s in 0..4u64 {
        let batch: Vec<u64> = (0..400u64).map(|i| (i * 13 + s) % 3_000).collect();
        h.ingest_step(&batch).unwrap();
    }
    for v in 0..200u64 {
        h.stream_update(v * 15 % 3_000);
    }
    let baseline = h.quantile(0.5).unwrap().unwrap();

    // ~1 in 25 reads fails transiently; the engine's whole-probe retry
    // masks every schedule, bit-identically to the un-faulted answers.
    fault.arm(Fault::FlakyReads { seed: 5, rate: 25 });
    for _ in 0..10 {
        let o = h.rank_query(h.total_len() / 2).unwrap().unwrap();
        assert_eq!(o.value, baseline);
        assert!(!o.degraded, "transients must never quarantine");
    }

    // Every read failing exhausts the retry budget: the transient error
    // surfaces (cleanly) instead of looping forever...
    fault.arm(Fault::FlakyReads { seed: 5, rate: 1 });
    let err = h.quantile(0.5).unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::Interrupted);
    // ...and service resumes once the device recovers.
    fault.revive();
    assert_eq!(h.quantile(0.5).unwrap().unwrap(), baseline);
}

#[test]
fn flaky_reads_sweep_sharded_windows_masked_with_zero_failures() {
    for &(seed, rate) in &[(3u64, 2u64), (11, 3), (29, 5)] {
        let cfg = HsqConfig::builder()
            .epsilon(0.05)
            .merge_threshold(3)
            .retry(RetryPolicy::immediate(32))
            .build();
        let mut faults: Vec<Arc<FaultDevice<MemDevice>>> = Vec::new();
        let mut engine = ShardedEngine::<u64, _>::with_shards(3, cfg, |_| {
            let f = FaultDevice::new(MemDevice::new(256));
            faults.push(Arc::clone(&f));
            RetryDevice::new(f, RetryPolicy::immediate(32))
        });
        for s in 0..6u64 {
            let batch: Vec<u64> = (0..600u64).map(|i| (i * 31 + s * 7) % 10_000).collect();
            engine.ingest_step(&batch).unwrap();
        }
        engine.stream_extend(&(0..300u64).map(|i| i * 33 % 10_000).collect::<Vec<_>>());

        // Arm the deterministic flaky schedule on every shard device,
        // then sweep windowed queries through a snapshot AND the live
        // engine: zero query-visible failures, no degradation.
        for f in &faults {
            f.arm(Fault::FlakyReads { seed, rate });
        }
        let snap = engine.snapshot();
        for w in snap.available_windows() {
            for phi in [0.25, 0.5, 0.9] {
                assert!(
                    snap.quantile_in_window(w, phi).unwrap().is_some(),
                    "seed {seed} rate {rate} window {w} phi {phi}"
                );
            }
            let o = snap.rank_in_window(w, 50).unwrap().unwrap();
            assert!(!o.degraded, "transients must never look like corruption");
        }
        for w in engine.available_windows() {
            assert!(engine.quantile_in_window(w, 0.5).unwrap().is_some());
        }
        assert!(engine.quantile(0.5).unwrap().is_some());

        // The masking was real work: the injected failures were absorbed
        // by the retry layer and counted.
        let retries: u64 = faults.iter().map(|f| f.stats().snapshot().retries).sum();
        assert!(
            retries > 0,
            "seed {seed} rate {rate}: flaky reads must have been retried"
        );
    }
}
