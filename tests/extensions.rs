//! Integration tests for the extensions beyond the paper's figures:
//! heavy hitters over the union, warehouse persistence/recovery, and
//! batch quantile queries.

use std::collections::HashMap;
use std::sync::Arc;

use hsq::core::{HeavyHitterConfig, HistStreamQuantiles, HsqConfig};
use hsq::storage::{FileDevice, MemDevice};
use hsq::workload::{Dataset, TimeStepDriver};

#[test]
fn heavy_hitters_on_skewed_trace() {
    // The Zipf-skewed network trace has true heavy flow pairs; the tracker
    // must find them with sound counts.
    let cfg = HsqConfig::builder()
        .epsilon(0.01)
        .merge_threshold(4)
        .build();
    let mut h = HistStreamQuantiles::<u64, _>::new(MemDevice::new(1024), cfg);
    h.enable_heavy_hitters(HeavyHitterConfig::default());

    let mut truth: HashMap<u64, u64> = HashMap::new();
    let mut driver = TimeStepDriver::new(Dataset::NetTrace, 3, 5_000, 9);
    for _ in 0..8 {
        let batch = driver.next().unwrap();
        for &v in &batch {
            *truth.entry(v).or_insert(0) += 1;
        }
        h.ingest_step(&batch).unwrap();
    }
    for v in driver.next().unwrap() {
        *truth.entry(v).or_insert(0) += 1;
        h.stream_update(v);
    }

    let n = h.total_len();
    let phi = 0.002;
    let threshold = (phi * n as f64).ceil() as u64;
    let reported = h.heavy_hitters(phi).unwrap();

    // Soundness: reported counts bracket the truth.
    for hh in &reported {
        let t = truth.get(&hh.value).copied().unwrap_or(0);
        assert!(
            hh.count_lo() <= t && t <= hh.count_hi(),
            "value {}: true {t} outside [{}, {}]",
            hh.value,
            hh.count_lo(),
            hh.count_hi()
        );
    }
    // Completeness: every true heavy hitter is reported.
    for (&v, &c) in &truth {
        if c >= threshold {
            assert!(
                reported.iter().any(|hh| hh.value == v),
                "true heavy hitter {v} (count {c} >= {threshold}) missing"
            );
        }
    }
    assert!(!reported.is_empty(), "Zipf trace must have heavy hitters");
}

#[test]
fn persist_and_recover_engine_round_trip() {
    let dir = std::env::temp_dir().join(format!("hsq-ext-recover-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = HsqConfig::builder()
        .epsilon(0.05)
        .merge_threshold(3)
        .build();

    let manifest;
    let expected: Vec<Option<u64>>;
    {
        let dev = FileDevice::new(&dir, 512).unwrap();
        let mut h = HistStreamQuantiles::<u64, _>::new(dev, cfg.clone());
        for batch in TimeStepDriver::new(Dataset::Normal, 5, 1_000, 8) {
            h.ingest_step(&batch).unwrap();
        }
        manifest = h.persist().unwrap();
        expected = h.quantiles(&[0.1, 0.5, 0.9]).unwrap();
    } // process "exit"

    let dev = FileDevice::new(&dir, 512).unwrap();
    let recovered = HistStreamQuantiles::<u64, _>::recover(dev, cfg, manifest).unwrap();
    assert_eq!(recovered.total_len(), 8_000);
    // With no live stream, recovered answers are identical.
    assert_eq!(recovered.quantiles(&[0.1, 0.5, 0.9]).unwrap(), expected);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recovered_engine_keeps_streaming_and_archiving() {
    let dev = MemDevice::new(512);
    let cfg = HsqConfig::builder()
        .epsilon(0.05)
        .merge_threshold(3)
        .build();
    let mut h = HistStreamQuantiles::<u64, _>::new(Arc::clone(&dev), cfg.clone());
    for batch in TimeStepDriver::new(Dataset::Uniform, 9, 1_000, 5) {
        h.ingest_step(&batch).unwrap();
    }
    let manifest = h.persist().unwrap();

    let mut h2 = HistStreamQuantiles::<u64, _>::recover(Arc::clone(&dev), cfg, manifest).unwrap();
    // Continue operating: stream + archive + query.
    for v in 0..1_000u64 {
        h2.stream_update(v);
    }
    assert_eq!(h2.total_len(), 6_000);
    h2.end_time_step().unwrap();
    h2.warehouse().check_invariants().unwrap();
    assert!(h2.quantile(0.5).unwrap().is_some());
}

#[test]
fn batch_quantiles_match_single_queries() {
    let cfg = HsqConfig::builder()
        .epsilon(0.02)
        .merge_threshold(4)
        .build();
    let mut h = HistStreamQuantiles::<u64, _>::new(MemDevice::new(512), cfg);
    for batch in TimeStepDriver::new(Dataset::Wikipedia, 13, 2_000, 6) {
        h.ingest_step(&batch).unwrap();
    }
    for v in TimeStepDriver::new(Dataset::Wikipedia, 14, 2_000, 1)
        .next()
        .unwrap()
    {
        h.stream_update(v);
    }
    let phis = [0.01, 0.25, 0.5, 0.75, 0.99];
    let batch = h.quantiles(&phis).unwrap();
    for (i, &phi) in phis.iter().enumerate() {
        assert_eq!(batch[i], h.quantile(phi).unwrap(), "phi={phi}");
    }
}
