//! End-to-end integration tests: the full pipeline (workload generator →
//! stream processor → warehouse → query engine) against an exact oracle,
//! on every evaluation dataset and on both device backends.

use std::sync::Arc;

use hsq::core::{HistStreamQuantiles, HsqConfig};
use hsq::sketch::ExactQuantiles;
use hsq::storage::{BlockDevice, FileDevice, MemDevice};
use hsq::workload::{Dataset, TimeStepDriver};

const PHIS: [f64; 7] = [0.01, 0.1, 0.25, 0.5, 0.75, 0.95, 0.99];

/// Drive `steps` time steps plus one live stream through the engine and
/// assert Theorem 2's bound (rank error <= eps*m) for all PHIS.
fn run_pipeline<D: BlockDevice>(
    dev: Arc<D>,
    dataset: Dataset,
    eps: f64,
    kappa: usize,
    steps: usize,
    step_size: usize,
) {
    let cfg = HsqConfig::builder()
        .epsilon(eps)
        .merge_threshold(kappa)
        .build();
    let mut h = HistStreamQuantiles::<u64, _>::new(dev, cfg);
    let mut oracle = ExactQuantiles::new();

    let mut driver = TimeStepDriver::new(dataset, 7, step_size, steps + 1);
    for _ in 0..steps {
        let batch = driver.next().unwrap();
        oracle.extend(batch.iter().copied());
        h.ingest_step(&batch).unwrap();
    }
    // Live stream.
    for v in driver.next().unwrap() {
        oracle.insert(v);
        h.stream_update(v);
    }

    let n = oracle.len();
    let m = step_size as u64;
    assert_eq!(h.total_len(), n);
    let allowed_ranks = (eps * m as f64).ceil() + 1.0;

    for phi in PHIS {
        let v = h.quantile(phi).unwrap().unwrap();
        let err = oracle.relative_error(phi, v);
        let allowed_rel = allowed_ranks / (phi * n as f64);
        assert!(
            err <= allowed_rel,
            "{}: phi={phi} rel-err {err:.3e} > allowed {allowed_rel:.3e}",
            dataset.name()
        );
    }
}

#[test]
fn all_datasets_meet_theorem2_on_mem_device() {
    for dataset in Dataset::ALL {
        run_pipeline(MemDevice::new(1024), dataset, 0.02, 5, 12, 2_000);
    }
}

#[test]
fn normal_dataset_on_real_filesystem() {
    let dev = FileDevice::new_temp(1024).unwrap();
    run_pipeline(Arc::clone(&dev), Dataset::Normal, 0.05, 3, 8, 1_000);
    dev.cleanup().unwrap();
}

#[test]
fn file_and_mem_devices_agree_exactly() {
    // The same inputs must produce the same answers regardless of backend.
    let cfg = HsqConfig::builder()
        .epsilon(0.05)
        .merge_threshold(3)
        .build();
    let mem = MemDevice::new(512);
    let file = FileDevice::new_temp(512).unwrap();
    let mut h_mem = HistStreamQuantiles::<u64, _>::new(Arc::clone(&mem), cfg.clone());
    let mut h_file = HistStreamQuantiles::<u64, _>::new(Arc::clone(&file), cfg);

    let mut driver = TimeStepDriver::new(Dataset::Wikipedia, 3, 800, 7);
    for _ in 0..6 {
        let batch = driver.next().unwrap();
        h_mem.ingest_step(&batch).unwrap();
        h_file.ingest_step(&batch).unwrap();
    }
    for v in driver.next().unwrap() {
        h_mem.stream_update(v);
        h_file.stream_update(v);
    }
    for phi in PHIS {
        assert_eq!(
            h_mem.quantile(phi).unwrap(),
            h_file.quantile(phi).unwrap(),
            "backend divergence at phi={phi}"
        );
    }
    file.cleanup().unwrap();
}

#[test]
fn error_is_stream_proportional_not_total_proportional() {
    // The paper's headline: with history 50x the stream, absolute rank
    // error stays bounded by eps*m, so relative error shrinks as history
    // grows. Verify the absolute error against eps*m directly.
    let eps = 0.05;
    let cfg = HsqConfig::builder()
        .epsilon(eps)
        .merge_threshold(10)
        .build();
    let mut h = HistStreamQuantiles::<u64, _>::new(MemDevice::new(1024), cfg);
    let mut all: Vec<u64> = Vec::new();

    let mut driver = TimeStepDriver::new(Dataset::Uniform, 11, 1_000, 51);
    for _ in 0..50 {
        let batch = driver.next().unwrap();
        all.extend(&batch);
        h.ingest_step(&batch).unwrap();
    }
    let stream: Vec<u64> = driver.next().unwrap();
    let m = stream.len() as u64;
    for v in stream {
        all.push(v);
        h.stream_update(v);
    }
    all.sort_unstable();
    let n = all.len() as u64;
    let allowed = (eps * m as f64).ceil() as u64 + 1; // NOT eps * N (50x larger)

    for phi in PHIS {
        let r = ((phi * n as f64).ceil() as u64).clamp(1, n);
        let v = h.quantile(phi).unwrap().unwrap();
        let hi = all.partition_point(|&x| x <= v) as u64;
        let lo = all.partition_point(|&x| x < v) as u64 + 1;
        let dist = if lo > hi {
            r.abs_diff(hi)
        } else if r < lo {
            lo - r
        } else {
            r.saturating_sub(hi)
        };
        assert!(
            dist <= allowed,
            "phi={phi}: absolute rank error {dist} exceeds eps*m = {allowed} (N = {n})"
        );
    }
}

#[test]
fn stream_reset_isolation_across_steps() {
    // After archiving, a fresh stream must not leak the old stream's
    // distribution through SS.
    let cfg = HsqConfig::builder().epsilon(0.1).merge_threshold(3).build();
    let mut h = HistStreamQuantiles::<u64, _>::new(MemDevice::new(512), cfg);
    // Step 1: all values low.
    h.ingest_step(&vec![10u64; 1000]).unwrap();
    // Live stream: all values high.
    for _ in 0..1000 {
        h.stream_update(1_000_000u64);
    }
    // Median of the union must be a low value boundary (1000 low + 1000
    // high -> rank 1000 is the last low element).
    let med = h.quantile(0.5).unwrap().unwrap();
    assert!(med <= 1_000_000, "median {med}");
    let q25 = h.quantile(0.25).unwrap().unwrap();
    assert!(q25 <= 10, "q25 {q25} should be in the low cluster");
    let q90 = h.quantile(0.9).unwrap().unwrap();
    assert!(q90 >= 1_000_000, "q90 {q90} should be in the high cluster");
}

#[test]
fn query_costs_match_lemma7_shape() {
    // Query disk reads should be logarithmic-ish, not linear in data size.
    let cfg = HsqConfig::builder()
        .epsilon(0.01)
        .merge_threshold(10)
        .build();
    let mut h = HistStreamQuantiles::<u64, _>::new(MemDevice::new(512), cfg);
    let mut driver = TimeStepDriver::new(Dataset::Normal, 5, 4_000, 26);
    for _ in 0..25 {
        h.ingest_step(&driver.next().unwrap()).unwrap();
    }
    for v in driver.next().unwrap() {
        h.stream_update(v);
    }
    // 100k historical items = ~1563 blocks (64 items/block at 512B).
    let n_blocks = 100_000 / 64;
    let out = h.rank_query(h.total_len() / 2).unwrap().unwrap();
    assert!(
        out.io.total_reads() < n_blocks / 4,
        "query read {} blocks of {n_blocks} — not sublinear",
        out.io.total_reads()
    );
    assert!(
        out.io.total_reads() > 0,
        "non-trivial query must touch disk"
    );
}

#[test]
fn update_costs_match_lemma6_shape() {
    // Amortized update I/O per step ~ (blocks per batch) * (1 + merge
    // levels); it must stay far below rewriting the whole warehouse each
    // step (the strawman's cost).
    let cfg = HsqConfig::builder()
        .epsilon(0.05)
        .merge_threshold(4)
        .build();
    let mut h = HistStreamQuantiles::<u64, _>::new(MemDevice::new(512), cfg);
    let step_items = 6_400u64; // 100 blocks per batch
    let steps = 32u64;
    let mut total_io = 0u64;
    let mut driver = TimeStepDriver::new(Dataset::Uniform, 9, step_items as usize, steps as usize);
    for batch in driver.by_ref() {
        total_io += h.ingest_step(&batch).unwrap().total_accesses();
    }
    let per_step = total_io / steps;
    let batch_blocks = 100u64;
    // log_4(32) = 2.5 merge levels; each level costs ~2x batch blocks
    // (read+write) amortized. Generous cap: 12x the batch write cost.
    assert!(
        per_step < batch_blocks * 12,
        "amortized {per_step} blocks/step exceeds Lemma 6 regime"
    );
    // And it must exceed the bare batch write (sorting is not free).
    assert!(
        per_step >= batch_blocks,
        "amortized {per_step} below write floor"
    );
}
