//! Robustness integration tests: failure injection, alternative item
//! types, extreme geometries.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use hsq::core::{HistStreamQuantiles, HsqConfig};
use hsq::storage::{BlockDevice, FileId, IoStats, MemDevice, F64};

/// A device that starts failing reads after a fuse burns out.
struct FlakyDevice {
    inner: Arc<MemDevice>,
    reads_left: AtomicU64,
}

impl FlakyDevice {
    fn new(block_size: usize, fuse: u64) -> Arc<Self> {
        Arc::new(FlakyDevice {
            inner: MemDevice::new(block_size),
            reads_left: AtomicU64::new(fuse),
        })
    }
}

impl BlockDevice for FlakyDevice {
    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn create(&self) -> io::Result<FileId> {
        self.inner.create()
    }

    fn write_block(&self, file: FileId, idx: u64, data: &[u8]) -> io::Result<()> {
        self.inner.write_block(file, idx, data)
    }

    fn read_block(&self, file: FileId, idx: u64, buf: &mut [u8]) -> io::Result<usize> {
        if self.reads_left.fetch_sub(1, Ordering::Relaxed) == 0 {
            self.reads_left.store(0, Ordering::Relaxed);
            return Err(io::Error::other("injected read failure"));
        }
        self.inner.read_block(file, idx, buf)
    }

    fn num_blocks(&self, file: FileId) -> io::Result<u64> {
        self.inner.num_blocks(file)
    }

    fn file_len(&self, file: FileId) -> io::Result<u64> {
        self.inner.file_len(file)
    }

    fn delete(&self, file: FileId) -> io::Result<()> {
        self.inner.delete(file)
    }

    fn stats(&self) -> &IoStats {
        self.inner.stats()
    }
}

#[test]
fn read_failures_surface_as_errors_not_panics() {
    let cfg = HsqConfig::builder()
        .epsilon(0.02)
        .merge_threshold(3)
        .build();
    // Plenty of reads for ingest (merging reads blocks), then burn out.
    let dev = FlakyDevice::new(256, 10_000);
    let mut h = HistStreamQuantiles::<u64, _>::new(Arc::clone(&dev), cfg);
    for step in 0..6u64 {
        let batch: Vec<u64> = (0..2_000).map(|i| i * 17 + step).collect();
        h.ingest_step(&batch).unwrap();
    }
    for v in 0..500u64 {
        h.stream_update(v);
    }
    // Queries succeed while the fuse lasts...
    assert!(h.quantile(0.5).unwrap().is_some());
    // ...then fail cleanly.
    dev.reads_left.store(0, Ordering::Relaxed);
    let err = h.quantile(0.5);
    assert!(err.is_err(), "expected propagated I/O error");
    // Quick responses never touch disk, so they still work.
    assert!(h.quantile_quick(0.5).is_some());
    // And after "repairing" the device, accurate queries recover.
    dev.reads_left.store(1_000_000, Ordering::Relaxed);
    assert!(h.quantile(0.5).unwrap().is_some());
}

#[test]
fn f64_items_end_to_end() {
    let cfg = HsqConfig::builder()
        .epsilon(0.05)
        .merge_threshold(3)
        .build();
    let mut h = HistStreamQuantiles::<F64, _>::new(MemDevice::new(512), cfg);
    let mut all: Vec<f64> = Vec::new();
    for step in 0..5u64 {
        let batch: Vec<F64> = (0..1_000)
            .map(|i| {
                let v = ((i * 37 + step * 13) % 10_000) as f64 / 7.0 - 500.0;
                all.push(v);
                F64::new(v)
            })
            .collect();
        h.ingest_step(&batch).unwrap();
    }
    for i in 0..1_000u64 {
        let v = (i as f64).sin() * 1000.0;
        all.push(v);
        h.stream_update(F64::new(v));
    }
    all.sort_by(f64::total_cmp);
    let n = all.len();
    let med = h.quantile(0.5).unwrap().unwrap().get();
    // Within eps*m = 50 ranks of the true median.
    let lo = all[n / 2 - 60];
    let hi = all[n / 2 + 60];
    assert!(
        (lo..=hi).contains(&med),
        "f64 median {med} outside [{lo}, {hi}]"
    );
}

#[test]
fn i64_negative_values_end_to_end() {
    let cfg = HsqConfig::builder()
        .epsilon(0.05)
        .merge_threshold(4)
        .build();
    let mut h = HistStreamQuantiles::<i64, _>::new(MemDevice::new(512), cfg);
    for step in 0..4i64 {
        let batch: Vec<i64> = (-500..500).map(|i| i * 3 + step).collect();
        h.ingest_step(&batch).unwrap();
    }
    for v in -100..100i64 {
        h.stream_update(v);
    }
    let med = h.quantile(0.5).unwrap().unwrap();
    assert!(med.abs() <= 30, "median {med} should be near 0");
    let p01 = h.quantile(0.01).unwrap().unwrap();
    assert!(p01 < -1400, "p01 {p01} should be deeply negative");
}

#[test]
fn u32_items_and_one_item_blocks() {
    // Degenerate geometry: each checksummed block holds exactly one u32
    // (4 bytes of payload + the 8-byte CRC trailer).
    let cfg = HsqConfig::builder().epsilon(0.1).merge_threshold(3).build();
    let mut h = HistStreamQuantiles::<u32, _>::new(MemDevice::new(12), cfg);
    for step in 0..4u32 {
        let batch: Vec<u32> = (0..200).map(|i| i * 5 + step).collect();
        h.ingest_step(&batch).unwrap();
    }
    for v in 0..100u32 {
        h.stream_update(v * 10);
    }
    let med = h.quantile(0.5).unwrap().unwrap();
    assert!(med <= 1000, "median {med}");
    assert!(h.quantile(1.0).unwrap().unwrap() >= 990);
}

#[test]
fn all_equal_values() {
    let cfg = HsqConfig::builder().epsilon(0.1).merge_threshold(3).build();
    let mut h = HistStreamQuantiles::<u64, _>::new(MemDevice::new(256), cfg);
    for _ in 0..5 {
        h.ingest_step(&vec![42u64; 1000]).unwrap();
    }
    for _ in 0..100 {
        h.stream_update(42);
    }
    for phi in [0.01, 0.5, 1.0] {
        assert_eq!(h.quantile(phi).unwrap(), Some(42));
        assert_eq!(h.quantile_quick(phi), Some(42));
    }
}

#[test]
fn single_element_per_step() {
    let cfg = HsqConfig::builder().epsilon(0.5).merge_threshold(2).build();
    let mut h = HistStreamQuantiles::<u64, _>::new(MemDevice::new(64), cfg);
    for i in 0..20u64 {
        h.ingest_step(&[i]).unwrap();
    }
    assert_eq!(h.total_len(), 20);
    let med = h.quantile(0.5).unwrap().unwrap();
    assert!((8..=11).contains(&med), "median {med}");
}

#[test]
fn empty_steps_interleaved() {
    let cfg = HsqConfig::builder().epsilon(0.1).merge_threshold(3).build();
    let mut h = HistStreamQuantiles::<u64, _>::new(MemDevice::new(256), cfg);
    for step in 0..6u64 {
        if step % 2 == 0 {
            h.ingest_step(&(0..100u64).map(|i| i + step * 100).collect::<Vec<_>>())
                .unwrap();
        } else {
            h.end_time_step().unwrap(); // nothing streamed this step
        }
    }
    assert_eq!(h.warehouse().steps(), 6);
    assert_eq!(h.total_len(), 300);
    assert!(h.quantile(0.5).unwrap().is_some());
}
