//! Quickstart: the one-minute tour of `hsq`.
//!
//! Builds a small warehouse over a few "days" of data, keeps a live
//! stream, and answers quantile queries over the union — the setup of the
//! paper's Figure 1.
//!
//! Run with: `cargo run --release --example quickstart`

use hsq::core::{HistStreamQuantiles, HsqConfig};
use hsq::storage::MemDevice;

fn main() {
    // epsilon = 0.01: every accurate quantile query is answered within
    // rank error 0.01 * m, where m is the size of the *current stream* —
    // not of the whole dataset. kappa = 4: at most 4 partitions per level.
    let config = HsqConfig::builder()
        .epsilon(0.01)
        .merge_threshold(4)
        .build();

    // Any BlockDevice works; MemDevice counts I/O without touching disk.
    // Swap in `FileDevice::new_temp(4096)` to run against real files.
    let dev = MemDevice::new(4096);
    let mut hsq = HistStreamQuantiles::<u64, _>::new(dev, config);

    // Five archived days, 20k values each.
    for day in 0..5u64 {
        for i in 0..20_000u64 {
            hsq.stream_update(pseudo_value(day * 20_000 + i));
        }
        let report = hsq.end_time_step().expect("archival failed");
        println!(
            "day {day}: archived 20000 values | load {} blk, sort {} blk, merge {} blk ({} level merges)",
            report.load_io.writes,
            report.sort_io.total_accesses(),
            report.merge_io.total_accesses(),
            report.merges,
        );
    }

    // Day 6 is still streaming.
    for i in 0..10_000u64 {
        hsq.stream_update(pseudo_value(100_000 + i));
    }

    println!(
        "\nstate: n = {} historical + m = {} streaming = N = {}",
        hsq.historical_len(),
        hsq.stream_len(),
        hsq.total_len()
    );
    println!(
        "memory: {} words across {} partitions + GK sketch\n",
        hsq.memory_words(),
        hsq.warehouse().num_partitions()
    );

    // Accurate queries (error <= eps * m = 100 ranks).
    for phi in [0.25, 0.5, 0.75, 0.95, 0.99] {
        let exact = hsq.quantile(phi).unwrap().unwrap();
        let quick = hsq.quantile_quick(phi).unwrap();
        println!("phi = {phi:4}: accurate = {exact:>12}  quick = {quick:>12}");
    }

    // Rank query with cost accounting.
    let out = hsq.rank_query(hsq.total_len() / 2).unwrap().unwrap();
    println!(
        "\nmedian by rank: {} ({} random reads, {} bisection steps)",
        out.value, out.io.rand_reads, out.bisection_steps
    );

    // Windowed queries over recent time steps.
    println!(
        "\navailable windows (archived steps): {:?}",
        hsq.available_windows()
    );
    for w in hsq.available_windows() {
        if let Some(med) = hsq.quantile_window(0.5, w).unwrap() {
            println!("  median over last {w} archived day(s) + live stream: {med}");
        }
    }
}

/// Deterministic pseudo-random values (keeps the example reproducible).
fn pseudo_value(i: u64) -> u64 {
    let mut x = i
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(0x1234_5678);
    x ^= x >> 31;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    (x ^ (x >> 29)) % 1_000_000
}
