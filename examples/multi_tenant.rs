//! Multi-tenant serving: one sharded engine, many tenant streams,
//! dashboard readers running concurrently with ingestion.
//!
//! The ROADMAP's north star is a system serving heavy traffic from
//! millions of users. This example shows the three pieces that make that
//! shape work on top of the paper's single-stream engine:
//!
//! 1. **Sharding** — latency samples from many tenants are
//!    hash-partitioned across 4 independent engine shards (each with its
//!    own stream sketch and warehouse device), ingested in parallel;
//! 2. **Mergeable queries** — p50/p95/p99 over the *union* of all shards,
//!    with the same `ε·m` guarantee a single engine would give;
//! 3. **Snapshot reads** — a dashboard thread takes consistent snapshots
//!    and queries them lock-free while the writer keeps archiving time
//!    steps (cascade merges retire partition files underneath the
//!    readers; pinning makes that safe).
//!
//! Run with: `cargo run --release --example multi_tenant`

use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use hsq::core::{HsqConfig, ShardedEngine};
use hsq::storage::MemDevice;

const SHARDS: usize = 4;
const TENANTS: u64 = 64;
const HOURS: u64 = 8;
const REQUESTS_PER_HOUR: usize = 40_000;

/// One request latency in microseconds: tenant-dependent log-normal-ish
/// base (deterministic, keeps the example reproducible).
fn latency_us(tenant: u64, i: u64) -> u64 {
    let mut x = (tenant << 32 | i)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(0xD1B5_4A32_D192_ED03);
    x ^= x >> 29;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 32;
    // Mostly 5-50ms with a heavy tail; slow tenants skew higher.
    let base = 5_000 + x % 45_000;
    let tail = if x.is_multiple_of(97) {
        (x >> 7) % 400_000
    } else {
        0
    };
    let tenant_factor = 1 + tenant % 3;
    (base + tail) * tenant_factor
}

fn main() {
    let config = HsqConfig::builder()
        .epsilon(0.005)
        .merge_threshold(4)
        .build();
    let engine = Arc::new(Mutex::new(ShardedEngine::<u64, _>::with_shards(
        SHARDS,
        config,
        |_| MemDevice::new(8192),
    )));
    println!(
        "serving {TENANTS} tenants across {SHARDS} shards ({} worker thread(s))\n",
        hsq::core::parallel::worker_count(SHARDS)
    );

    // The dashboard: a reader thread that snapshots the engine (brief
    // lock), then answers percentile queries lock-free while ingestion
    // continues.
    let dashboard = {
        let engine = Arc::clone(&engine);
        thread::spawn(move || {
            let mut reports = 0;
            loop {
                thread::sleep(Duration::from_millis(20));
                let snap = engine.lock().unwrap().snapshot();
                if snap.total_len() == 0 {
                    continue;
                }
                let qs = snap.quantiles(&[0.5, 0.95, 0.99]).unwrap();
                println!(
                    "  [dashboard] N = {:>9}  p50 = {:>7} us  p95 = {:>7} us  p99 = {:>7} us",
                    snap.total_len(),
                    qs[0].unwrap(),
                    qs[1].unwrap(),
                    qs[2].unwrap(),
                );
                reports += 1;
                if reports >= 12 {
                    return reports;
                }
            }
        })
    };

    // The ingest path: every "hour", all tenants' samples arrive in
    // batches, are split by shard hash, ingested in parallel, and
    // archived with `end_time_step`.
    for hour in 0..HOURS {
        let mut batch = Vec::with_capacity(REQUESTS_PER_HOUR);
        for i in 0..REQUESTS_PER_HOUR as u64 {
            let tenant = i % TENANTS;
            batch.push(latency_us(tenant, hour << 32 | i));
        }
        let reports = {
            let mut e = engine.lock().unwrap();
            e.stream_extend(&batch);
            e.end_time_step().unwrap()
        };
        let io: u64 = reports.iter().map(|r| r.total_accesses()).sum();
        println!(
            "hour {hour}: archived {REQUESTS_PER_HOUR} samples across {SHARDS} shards \
             ({io} blocks, {} level merges)",
            reports.iter().map(|r| r.merges).sum::<usize>()
        );
        thread::sleep(Duration::from_millis(15));
    }

    let reports = dashboard.join().expect("dashboard panicked");

    // Final cross-shard state.
    let e = engine.lock().unwrap();
    println!(
        "\nfinal: N = {} ({} historical + {} streaming), {} words of summary memory",
        e.total_len(),
        e.historical_len(),
        e.stream_len(),
        e.memory_words()
    );
    let lens = e.shard_lens();
    println!("shard balance: {lens:?}");
    let spread = lens.iter().max().unwrap() - lens.iter().min().unwrap();
    assert!(
        spread * 10 <= e.total_len(),
        "hash sharding should stay roughly balanced"
    );

    let snap = e.snapshot();
    drop(e); // queries need no lock from here on
    for phi in [0.25, 0.5, 0.9, 0.95, 0.99] {
        let accurate = snap.quantile(phi).unwrap().unwrap();
        let quick = snap.quantile_quick(phi).unwrap();
        println!(
            "p{:<4}: accurate = {accurate:>7} us   quick = {quick:>7} us",
            phi * 100.0
        );
    }
    println!("\ndashboard produced {reports} concurrent reports — all while archiving");
}
