//! A networked quantile dashboard: two serving nodes, three tenants,
//! one coordinator-driven fan-in.
//!
//! The ROADMAP's north star is a fleet serving heavy traffic; this
//! example stands up the smallest real version of it, all on loopback:
//!
//! 1. **Two nodes** — each a [`hsq::service::QuantileServer`] hosting a
//!    2-shard engine over its own slice of the traffic (no shared
//!    state, plain `TcpListener`, no async runtime);
//! 2. **A coordinator** — ingests over the wire, then answers
//!    union-wide p50/p95/p99 by the same value-space bisection the
//!    in-process engine runs, each probe batched to both nodes in one
//!    round-trip;
//! 3. **Per-tenant sessions** — each tenant pins a snapshot epoch on
//!    every node and fetches the nodes' summary extracts once, so its
//!    repeated dashboard queries settle in a handful of probe rounds
//!    (printed per query below).
//!
//! Run with: `cargo run --release --example served_dashboard`

use std::net::TcpListener;

use hsq::core::{HsqConfig, ShardedEngine};
use hsq::service::{Coordinator, QuantileServer, ServerHandle};
use hsq::storage::MemDevice;

const NODES: usize = 2;
const SHARDS_PER_NODE: usize = 2;
const HOURS: u64 = 4;
const REQUESTS_PER_HOUR: usize = 30_000;
const TENANTS: [u64; 3] = [101, 202, 303];

/// One request latency in microseconds (deterministic, heavy-tailed).
fn latency_us(i: u64) -> u64 {
    let mut x = i
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(0xD1B5_4A32_D192_ED03);
    x ^= x >> 29;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 32;
    let base = 5_000 + x % 45_000;
    let tail = if x.is_multiple_of(97) {
        (x >> 7) % 400_000
    } else {
        0
    };
    base + tail
}

fn spawn_node() -> ServerHandle {
    let config = HsqConfig::builder()
        .epsilon(0.005)
        .merge_threshold(4)
        .build();
    let engine =
        ShardedEngine::<u64, _>::with_shards(SHARDS_PER_NODE, config, |_| MemDevice::new(8192));
    QuantileServer::new(engine)
        .spawn(TcpListener::bind("127.0.0.1:0").expect("bind loopback"))
        .expect("spawn server")
}

fn main() {
    // Stand the fleet up.
    let nodes: Vec<ServerHandle> = (0..NODES).map(|_| spawn_node()).collect();
    let addrs: Vec<_> = nodes.iter().map(|n| n.addr()).collect();
    println!(
        "fleet up: {NODES} nodes x {SHARDS_PER_NODE} shards at {:?}\n",
        addrs
    );
    let mut coord = Coordinator::<u64>::connect(&addrs).expect("connect fleet");

    // Ingest over the wire: every "hour", traffic is split between the
    // nodes (by request parity — any disjoint split works; ranks add),
    // then archived fleet-wide.
    for hour in 0..HOURS {
        let mut parts: Vec<Vec<(u64, u64)>> = vec![Vec::new(); NODES];
        for i in 0..REQUESTS_PER_HOUR as u64 {
            let v = latency_us(hour << 32 | i);
            parts[(i % NODES as u64) as usize].push((v, 1));
        }
        for (node, part) in parts.iter().enumerate() {
            coord.ingest(node, part).expect("ingest");
        }
        if hour + 1 < HOURS {
            coord.end_step().expect("end step");
            println!("hour {hour}: archived {REQUESTS_PER_HOUR} samples across the fleet");
        } else {
            println!("hour {hour}: {REQUESTS_PER_HOUR} samples still streaming");
        }
    }

    // Three tenant dashboards, each with its own pinned session. The
    // first query fetches the summary extracts; the rest are pure probe
    // rounds.
    for &tenant in &TENANTS {
        let mut session = coord.session(tenant).expect("open session");
        println!(
            "\n[tenant {tenant}] session over N = {} (stream weight m = {})",
            session.total_len(),
            session.stream_len()
        );
        for phi in [0.5, 0.95, 0.99] {
            let served = session.quantile(phi).expect("quantile").expect("non-empty");
            println!(
                "  p{:<4} = {:>7} us   ({} probe rounds, {} round trips, \
                 rank within [{}, {}])",
                phi * 100.0,
                served.outcome.value,
                served.probe_rounds,
                served.round_trips,
                served.outcome.rank_lo,
                served.outcome.rank_hi,
            );
        }
        let quick = session
            .quantile_quick(0.99)
            .expect("quick")
            .expect("non-empty");
        println!("  p99 quick = {quick:>5} us   (0 probe rounds — local summary)");
    }

    // Windowed view: the newest archived hour plus the live stream.
    let mut session = coord.session(TENANTS[0]).expect("reopen session");
    if let Some(served) = session.quantile_in_window(1, 0.95).expect("window query") {
        println!(
            "\n[tenant {}] windowed p95 (newest step + live stream) = {} us \
             ({} probe rounds)",
            TENANTS[0], served.outcome.value, served.probe_rounds
        );
    }

    for n in nodes {
        n.shutdown();
    }
    println!("\nfleet drained and shut down cleanly");
}
