//! Web-service latency monitoring — the paper's §1 motivating workload.
//!
//! "The median latency is a measure of the 'typical' performance
//! experienced by users, and the 0.95-quantile and 0.99-quantile are used
//! to get a detailed insight on the performance that most users
//! experience."
//!
//! This example simulates two weeks of request latencies (log-normal with
//! a regime change on day 10), archives each day into the warehouse, and:
//!
//! 1. reports p50/p95/p99 over *all* data after every day;
//! 2. flags days whose recent-window median diverges from the all-time
//!    median — the integrated historical+streaming analysis that a DSMS
//!    alone cannot do;
//! 3. contrasts final accuracy with a pure-streaming GK sketch at equal
//!    memory, against an exact oracle.
//!
//! Run with: `cargo run --release --example web_latency`

use hsq::core::{HistStreamQuantiles, HsqConfig, PureStreaming, StreamingAlgo};
use hsq::sketch::ExactQuantiles;
use hsq::storage::MemDevice;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// One request latency in microseconds: log-normal (median ~20 ms), with
/// a 3x regression starting on `slow_from` day.
fn latency_us(rng: &mut StdRng, day: u64, slow_from: u64) -> u64 {
    let z = {
        // Box-Muller.
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    };
    let base = ((20_000.0f64).ln() + 0.8 * z).exp();
    let factor = if day >= slow_from { 3.0 } else { 1.0 };
    (base * factor).round().max(1.0) as u64
}

fn main() {
    const REQUESTS_PER_DAY: usize = 30_000;
    const DAYS: u64 = 14;
    const SLOW_FROM: u64 = 10;

    let config = HsqConfig::builder()
        .epsilon(0.01)
        .merge_threshold(7)
        .build();
    let dev = MemDevice::new(4096);
    let mut hsq = HistStreamQuantiles::<u64, _>::new(Arc::clone(&dev), config);

    // Pure-streaming baseline with comparable memory, never reset.
    let mut baseline = PureStreaming::<u64, _>::with_memory(
        Arc::clone(&dev),
        StreamingAlgo::Gk,
        hsq.memory_words().max(2048),
        (DAYS as usize * REQUESTS_PER_DAY) as u64,
        7,
    );
    // Exact oracle for honest error reporting.
    let mut oracle = ExactQuantiles::new();
    let mut rng = StdRng::seed_from_u64(20161110);

    println!("day |       p50       p95       p99 | alert");
    println!("----+-------------------------------+------");
    for day in 0..DAYS {
        for _ in 0..REQUESTS_PER_DAY {
            let lat = latency_us(&mut rng, day, SLOW_FROM);
            hsq.stream_update(lat);
            baseline.insert(lat);
            oracle.insert(lat);
        }

        // Query over ALL data (history + today's live stream) before
        // archiving.
        let p50 = hsq.quantile(0.50).unwrap().unwrap();
        let p95 = hsq.quantile(0.95).unwrap().unwrap();
        let p99 = hsq.quantile(0.99).unwrap().unwrap();

        // Today (live stream only, window = 0 archived steps) versus the
        // all-time median: historical context for real-time alerting.
        let today_median = hsq.quantile_window(0.5, 0).unwrap().unwrap_or(p50);
        let alert = if today_median as f64 > 1.5 * p50 as f64 {
            "LATENCY REGRESSION vs history"
        } else {
            ""
        };
        println!("{day:>3} | {p50:>9} {p95:>9} {p99:>9} | {alert}");

        hsq.end_time_step().unwrap();
        baseline.end_time_step().unwrap();
    }

    println!("\nfinal accuracy vs exact oracle (N = {}):", oracle.len());
    for phi in [0.5, 0.95, 0.99] {
        let ours_quick = hsq.quantile_quick(phi).unwrap();
        let base = baseline.quantile(phi).unwrap();
        let err_quick = oracle.relative_error(phi, ours_quick);
        let err_base = oracle.relative_error(phi, base);
        let out = hsq
            .rank_query((phi * hsq.total_len() as f64).ceil() as u64)
            .unwrap()
            .unwrap();
        let err_acc = oracle.relative_error(phi, out.value);
        println!(
            "  phi={phi:4}: accurate {err_acc:.2e} ({} reads) | quick {err_quick:.2e} | pure-GK {err_base:.2e}",
            out.io.total_reads()
        );
    }
    println!(
        "\nmemory: hsq = {} words, pure-GK baseline = {} words",
        hsq.memory_words(),
        baseline.memory_words()
    );
}
