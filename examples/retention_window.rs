//! Sliding-window dashboard under TTL retention: "p99 over the last 24
//! hours" from a service that never stops ingesting and never grows
//! past its storage budget.
//!
//! The paper's warehouse only grows; production deployments bound it. A
//! [`hsq::core::RetentionPolicy`] does three things here:
//!
//! 1. **TTL** — one time step is one "hour"; a 24-step TTL expires
//!    partitions wholly older than a day, so steady-state storage is flat
//!    while the service runs forever;
//! 2. **Windowed queries** — `quantile_in_window(w, phi)` answers the
//!    dashboard's sliding-window percentiles over exactly the newest `w`
//!    retained hours (plus the live stream), with the full `ε·m`
//!    guarantee;
//! 3. **Manifest log + compaction** — a [`hsq::core::manifest::ManifestLog`]
//!    appends one delta per hour (partitions added, partitions expired)
//!    and compacts itself so recovery replays live partitions only.
//!
//! Run with: `cargo run --release --example retention_window`

use std::sync::Arc;

use hsq::core::manifest::ManifestLog;
use hsq::core::{HistStreamQuantiles, HsqConfig, RetentionPolicy};
use hsq::storage::{BlockDevice, MemDevice};

const HOURS: u64 = 72; // three simulated days
const SAMPLES_PER_HOUR: usize = 20_000;
const TTL_HOURS: u64 = 24;

/// One latency sample in microseconds; the diurnal term makes each day's
/// p99 drift so the sliding window visibly tracks it.
fn latency_us(hour: u64, i: u64) -> u64 {
    let mut x = (hour << 32 | i)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(0xD1B5_4A32_D192_ED03);
    x ^= x >> 29;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 32;
    let diurnal = 1 + (hour % 24) / 6; // load rises through the "day"
    let base = 2_000 + x % 30_000;
    let tail = if x.is_multiple_of(101) {
        (x >> 9) % 500_000
    } else {
        0
    };
    (base + tail) * diurnal
}

fn main() {
    let config = HsqConfig::builder()
        .epsilon(0.005)
        .merge_threshold(6)
        .retention(RetentionPolicy::unbounded().with_max_age_steps(TTL_HOURS))
        .build();
    let dev = MemDevice::new(8192);
    let mut engine = HistStreamQuantiles::<u64, _>::new(Arc::clone(&dev), config.clone());
    let mut log = ManifestLog::create(engine.warehouse()).unwrap();

    println!(
        "{HOURS}h of traffic, {SAMPLES_PER_HOUR} samples/h, TTL = {TTL_HOURS}h\n\
         hour | retained h | partition KB |   p50 24h |   p99 24h | expired"
    );

    let mut peak_bytes = 0u64;
    let mut compactions = 0u32;
    for hour in 0..HOURS {
        let batch: Vec<u64> = (0..SAMPLES_PER_HOUR as u64)
            .map(|i| latency_us(hour, i))
            .collect();
        let report = engine.ingest_step(&batch).unwrap();

        // Persist this hour's delta; compact once enough accumulate. The
        // old log stays until the new id is recorded — crash-safe.
        log.append(engine.warehouse()).unwrap();
        if log.should_compact() {
            let old = log.compact(engine.warehouse()).unwrap();
            dev.delete(old).unwrap();
            compactions += 1;
        }

        let bytes = engine.warehouse().partition_bytes().unwrap();
        peak_bytes = peak_bytes.max(bytes);

        if (hour + 1) % 6 == 0 {
            // The dashboard: sliding percentiles over (up to) the newest
            // 24 retained hours. Windows are partition-aligned, so ask
            // for the widest available one within the TTL.
            let window = engine
                .available_windows()
                .into_iter()
                .filter(|&w| w <= TTL_HOURS)
                .max()
                .unwrap();
            let p50 = engine.quantile_in_window(window, 0.5).unwrap().unwrap();
            let p99 = engine.quantile_in_window(window, 0.99).unwrap().unwrap();
            println!(
                "{:>4} | {:>10} | {:>12} | {:>6} us | {:>6} us | {:>3} steps",
                hour + 1,
                window,
                bytes >> 10,
                p50,
                p99,
                report.retention.retired_steps,
            );
        }
    }

    // Steady state: the warehouse never outgrew the TTL horizon (the
    // newest partition plus whatever straddles the 24h boundary).
    let retained_steps =
        engine.warehouse().steps() - engine.warehouse().first_retained_step().unwrap() + 1;
    println!(
        "\nsteady state: {} retained hours, peak {} KB for {}h of history \
         ({compactions} log compactions, {} KB log)",
        retained_steps,
        peak_bytes >> 10,
        HOURS,
        log.log_bytes().unwrap() >> 10,
    );
    assert!(
        engine.historical_len() <= 2 * TTL_HOURS * SAMPLES_PER_HOUR as u64,
        "TTL must bound history"
    );

    // Recovery from the compacted log replays live partitions only.
    let recovered =
        HistStreamQuantiles::<u64, _>::recover(Arc::clone(&dev), config, log.file()).unwrap();
    assert_eq!(recovered.historical_len(), engine.historical_len());
    assert_eq!(
        recovered.quantile(0.99).unwrap(),
        engine.quantile(0.99).unwrap()
    );
    println!(
        "recovered {} samples from the {}-block manifest log — answers identical",
        recovered.historical_len(),
        dev.num_blocks(log.file()).unwrap()
    );
}
