//! Overlapped device I/O + crash-safe archival, end to end.
//!
//! Part 1 runs a two-shard engine on real files with `io_depth(4)`:
//! archival block writes and manifest fsyncs execute on the I/O
//! scheduler's worker pool, overlapping the ingest path's CPU work —
//! the ingest thread blocks at completion *barriers* instead of on
//! every device call.
//!
//! Part 2 is the durability story those barriers must not break: a
//! `FaultDevice` crash-stops the engine mid-workload (torn final block
//! included), and recovery from the manifest log lands on the last
//! durable step with every referenced file intact.
//!
//! Run: `cargo run --release --example overlapped_archival`

use std::sync::Arc;

use hsq::core::manifest::{self, ManifestLog};
use hsq::core::{HsqConfig, RetentionPolicy, ShardedEngine, Warehouse};
use hsq::storage::{BlockDevice, Fault, FaultDevice, FileDevice, MemDevice};

fn main() {
    // ---- Part 1: overlapped shard archival on a real filesystem ----
    let cfg = HsqConfig::builder()
        .epsilon(0.01)
        .merge_threshold(4)
        .io_depth(4) // 4 I/O workers per shard device
        .build();
    let mut engine = ShardedEngine::<u64, _>::with_shards(2, cfg, |_| {
        FileDevice::new_temp(4096).expect("temp device")
    });
    let mut logs: Vec<ManifestLog<u64, FileDevice>> = (0..2)
        .map(|i| ManifestLog::create(engine.shard(i).warehouse()).expect("log"))
        .collect();

    for step in 0..6u64 {
        let batch: Vec<u64> = (0..20_000u64)
            .map(|i| (i * 2_654_435_761 + step) >> 12)
            .collect();
        engine.ingest_step(&batch).expect("archival");
        for (i, log) in logs.iter_mut().enumerate() {
            log.append(engine.shard(i).warehouse()).expect("append");
        }
    }
    let p99 = engine.quantile(0.99).expect("query").expect("data");
    println!("p99 over {} items: {p99}", engine.total_len());
    for (i, log) in logs.iter().enumerate() {
        let w = engine.shard(i).warehouse();
        let io = w.device().stats().snapshot();
        let sched = w.scheduler().expect("io_depth > 0").stats();
        println!(
            "shard {i}: {} writes + {} fsyncs on the device, of which {} + {} ran \
             on I/O workers; the ingest thread blocked {} times (waits + barriers), \
             log blocking syncs: {}",
            io.writes,
            io.syncs,
            sched.async_writes,
            sched.async_syncs,
            sched.blocking_waits + sched.barriers,
            log.blocking_syncs(),
        );
        assert!(sched.async_writes > 0, "archival must overlap");
    }
    drop(logs);
    for i in 0..2 {
        let _ = engine.shard(i).warehouse().device().cleanup();
    }

    // ---- Part 2: crash-stop + torn block, then recovery ----
    let cfg = HsqConfig::builder()
        .epsilon(0.05)
        .merge_threshold(2)
        .retention(RetentionPolicy::unbounded().with_max_age_steps(5))
        .io_depth(2)
        .build();
    let dev = FaultDevice::new(MemDevice::new(256));
    let mut w = Warehouse::<u64, _>::new(Arc::clone(&dev), cfg.clone());
    let mut log = ManifestLog::create(&w).expect("log");
    // Crash with a torn final block somewhere mid-workload.
    dev.arm(Fault::TornWrite(45));
    let mut completed = 0u64;
    for step in 1..=8u64 {
        let batch: Vec<u64> = (0..50).map(|i| step * 100 + i).collect();
        if w.add_batch(batch).is_err() || log.append(&w).is_err() {
            println!(
                "crash-stop at step {step} (after {} device mutations)",
                dev.mutations()
            );
            break;
        }
        completed = step;
    }
    let manifest_id = log.simulate_crash(); // process death: pins never release

    dev.revive(); // reboot
    let recovered: Warehouse<u64, FaultDevice<MemDevice>> =
        manifest::recover(Arc::clone(&dev), cfg, manifest_id).expect("recovery");
    recovered.check_invariants().expect("invariants");
    println!(
        "recovered at step {} with {} items in {} partitions (last completed step was {completed})",
        recovered.steps(),
        recovered.total_len(),
        recovered.num_partitions(),
    );
    // Every referenced file is readable — the write-ahead pins held.
    for p in recovered.partitions_newest_first() {
        p.run
            .read_all(&**recovered.device())
            .expect("partition readable");
    }
    assert!(
        completed < 8 && recovered.steps() <= completed + 1,
        "the injected fault must actually interrupt the workload"
    );
    println!("crash recovery OK: no dangling partition references");
}
