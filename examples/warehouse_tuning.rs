//! Tuning the merge threshold κ: the update-cost / query-cost /
//! window-granularity trade-off of the paper's §2.1 and Figures 7, 10
//! and 11.
//!
//! For each κ the example ingests the same 60 time steps and reports:
//! * amortized update I/O per step (drops as κ grows: fewer merges);
//! * query I/O (grows with κ: more partitions to probe);
//! * the window sizes available for time-restricted queries (richer for
//!   larger κ).
//!
//! This is the three-way trade-off the paper's conclusion highlights, on
//! your own machine.
//!
//! Run with: `cargo run --release --example warehouse_tuning`

use hsq::core::{HistStreamQuantiles, HsqConfig};
use hsq::storage::MemDevice;
use hsq::workload::{Dataset, TimeStepDriver};

fn main() {
    const STEPS: usize = 60;
    const STEP_SIZE: usize = 5_000;

    println!("kappa | avg update I/O | query I/O | levels | partitions | windows available");
    println!("------+----------------+-----------+--------+------------+------------------");
    for kappa in [2usize, 3, 5, 7, 10, 15, 30] {
        let config = HsqConfig::builder()
            .epsilon(0.01)
            .merge_threshold(kappa)
            .build();
        let mut hsq = HistStreamQuantiles::<u64, _>::new(MemDevice::new(4096), config);

        let mut update_io = 0u64;
        for batch in TimeStepDriver::new(Dataset::Normal, 1, STEP_SIZE, STEPS) {
            let rep = hsq.ingest_step(&batch).unwrap();
            update_io += rep.total_accesses();
        }
        // A live stream so queries exercise the full union path.
        for v in TimeStepDriver::new(Dataset::Normal, 2, STEP_SIZE, 1)
            .next()
            .unwrap()
        {
            hsq.stream_update(v);
        }

        let mut query_io = 0u64;
        for phi in [0.05, 0.25, 0.5, 0.75, 0.95] {
            let out = hsq
                .rank_query((phi * hsq.total_len() as f64).ceil() as u64)
                .unwrap()
                .unwrap();
            query_io += out.io.total_reads();
        }
        let windows = hsq.available_windows();
        let windows_str = if windows.len() > 6 {
            format!("{:?}.. ({} sizes)", &windows[..6], windows.len())
        } else {
            format!("{windows:?}")
        };
        println!(
            "{kappa:>5} | {:>14} | {:>9} | {:>6} | {:>10} | {windows_str}",
            update_io / STEPS as u64,
            query_io / 5,
            hsq.warehouse().num_levels(),
            hsq.warehouse().num_partitions(),
        );
    }
    println!(
        "\nReading the table: larger kappa postpones merges (cheaper updates),\n\
         spreads data over more partitions (costlier queries), and leaves more\n\
         partition boundaries intact (finer-grained window queries) — the\n\
         trade-off of the paper's Figures 7, 10 and 11."
    );
}
