//! Network monitoring over historical + live traffic — the paper's
//! intrusion-detection / network-measurement motivation (§1: "to
//! determine the skewness in the TCP round trip time", "network
//! monitoring for intrusion detection").
//!
//! Simulates an ISP link: each time step is an hour of flow records
//! (source–destination pairs from a Zipf host popularity model, packed
//! into u64 — the same substitute trace the benchmark suite uses). The
//! monitor:
//!
//! 1. archives each hour into the warehouse;
//! 2. answers quartile/extreme-tail queries over the whole trace;
//! 3. uses partition-aligned *window queries* to compare the most recent
//!    hours against the long-run distribution — a shift in the flow-pair
//!    quantiles indicates traffic redistribution (e.g. a scan or DDoS
//!    concentrating on one destination).
//!
//! Run with: `cargo run --release --example network_monitor`

use hsq::core::{HeavyHitterConfig, HistStreamQuantiles, HsqConfig};
use hsq::storage::MemDevice;
use hsq::workload::{DataGen, NetTraceGen};

fn main() {
    const FLOWS_PER_HOUR: usize = 25_000;
    const HOURS: u64 = 15; // the paper's trace covers ~15 hours

    let config = HsqConfig::builder()
        .epsilon(0.005)
        .merge_threshold(5)
        .build();
    let mut hsq = HistStreamQuantiles::<u64, _>::new(MemDevice::new(8192), config);
    // Track frequent flow pairs ("top talkers") across the union too —
    // the other primitive the paper's intro calls for.
    hsq.enable_heavy_hitters(HeavyHitterConfig::default());

    let mut normal_traffic = NetTraceGen::new(42);
    // "Attack" traffic: a much more concentrated host distribution.
    let mut attack_traffic = NetTraceGen::with_params(7, 64, 2.0);

    println!("hour | q1(flow key)        median              q3                  | note");
    println!("-----+--------------------------------------------------------------+------");
    for hour in 0..HOURS {
        let attack = hour >= 12; // the last three hours carry attack traffic
        for _ in 0..FLOWS_PER_HOUR {
            let flow = if attack && normal_traffic.next_value().is_multiple_of(4) {
                attack_traffic.next_value()
            } else {
                normal_traffic.next_value()
            };
            hsq.stream_update(flow);
        }

        let q1 = hsq.quantile(0.25).unwrap().unwrap();
        let med = hsq.quantile(0.5).unwrap().unwrap();
        let q3 = hsq.quantile(0.75).unwrap().unwrap();

        // Current hour (live stream, 0 archived steps) vs all-time median:
        // key-space displacement signals concentration shifts.
        let hour_med = hsq.quantile_window(0.5, 0).unwrap().unwrap_or(med);
        let displacement = (hour_med.abs_diff(med)) as f64 / u64::MAX as f64;
        let note = if displacement > 0.02 {
            "TRAFFIC SHIFT (possible scan/ddos)"
        } else {
            ""
        };
        println!("{hour:>4} | {q1:>19} {med:>19} {q3:>19} | {note}");

        hsq.end_time_step().unwrap();
    }

    // Interquartile skewness of the full trace (the paper's RTT-skewness
    // use case, transplanted to flow keys).
    let q1 = hsq.quantile(0.25).unwrap().unwrap() as f64;
    let med = hsq.quantile(0.5).unwrap().unwrap() as f64;
    let q3 = hsq.quantile(0.75).unwrap().unwrap() as f64;
    let bowley_skew = ((q3 - med) - (med - q1)) / (q3 - q1);
    println!("\nfull-trace Bowley skewness of flow keys: {bowley_skew:.4}");

    // Windowed drill-down: how far back can we compare?
    println!(
        "window sizes available for drill-down: {:?}",
        hsq.available_windows()
    );
    for w in hsq.available_windows() {
        let wm = hsq.quantile_window(0.5, w).unwrap().unwrap();
        println!("  median over last {w:>2} archived hour(s): {wm:>20}");
    }
    println!(
        "\nwarehouse: {} flows across {} partitions, {} words of summary memory",
        hsq.historical_len(),
        hsq.warehouse().num_partitions(),
        hsq.memory_words()
    );

    // Top talkers: flow pairs exceeding 0.1% of all traffic (historical
    // counts exact via sorted-partition probes, stream counts bounded).
    let hitters = hsq.heavy_hitters(0.001).unwrap();
    println!("\ntop talkers (> 0.1% of {} flows):", hsq.total_len());
    for h in hitters.iter().take(5) {
        println!(
            "  flow {:>20}: {:>6} archived + [{}, {}] streaming",
            h.value, h.hist_count, h.stream_lo, h.stream_hi
        );
    }
    if hitters.is_empty() {
        println!("  (none above threshold)");
    }
}
