//! Self-healing storage from the operator's seat.
//!
//! A latency dashboard keeps querying one engine while its disk
//! misbehaves in both of the ways disks misbehave:
//!
//! * **Bit-rot** — a byte flips inside an archived run block. The
//!   per-block CRC catches it, the partition is quarantined, and the
//!   dashboard keeps answering *degraded*: every response carries rank
//!   bounds widened by exactly the quarantined mass, so the operator
//!   sees precisely how much the answer can be off by. A `scrub` pass
//!   then salvages every checksum-valid block, and the widening shrinks
//!   to just the items that were truly lost. (With
//!   `HsqConfig::builder().strict(true)` the same queries would refuse
//!   with `InvalidData` instead of degrading.)
//! * **Transient read failures** — a deterministic flaky-read schedule
//!   makes ~1 in 6 device reads fail. A `RetryDevice` below the engine
//!   masks every one; the dashboard never sees an error, and the retry
//!   counter shows the absorbed failures.
//!
//! Run: `cargo run --release --example degraded_dashboard`

use std::sync::Arc;

use hsq::core::{HistStreamQuantiles, HsqConfig};
use hsq::storage::{BlockDevice, Fault, FaultDevice, MemDevice, RetryDevice, RetryPolicy};

type Dev = RetryDevice<FaultDevice<MemDevice>>;

fn dashboard(h: &HistStreamQuantiles<u64, Dev>, label: &str) {
    let n = h.total_len();
    println!("  [{label}] {} items:", n);
    for phi in [0.50, 0.95, 0.99] {
        let r = ((n as f64 * phi) as u64).max(1);
        let o = h.rank_query(r).expect("query").expect("non-empty");
        println!(
            "    p{:02}: value {:>6}  rank in [{}, {}]{}",
            (phi * 100.0) as u32,
            o.value,
            o.rank_lo,
            o.rank_hi,
            if o.degraded {
                format!("  DEGRADED ({} items quarantined)", o.quarantined)
            } else {
                String::new()
            }
        );
    }
}

fn main() {
    let cfg = HsqConfig::builder()
        .epsilon(0.01)
        .merge_threshold(4)
        .retry(RetryPolicy::immediate(16)) // per-query transient retries
        .build();
    // FaultDevice injects the failures; RetryDevice masks the transient
    // ones below the engine and counts what it absorbed.
    let fault = FaultDevice::new(MemDevice::new(256));
    let dev: Arc<Dev> = RetryDevice::new(Arc::clone(&fault), RetryPolicy::immediate(16));
    let mut hsq = HistStreamQuantiles::<u64, _>::new(dev, cfg);

    // Six archived days plus a live stream (eps * m = 200).
    for day in 0..6u64 {
        let batch: Vec<u64> = (0..20_000u64)
            .map(|i| (i * 2_654_435_761 + day) >> 14)
            .collect();
        hsq.ingest_step(&batch).expect("ingest");
    }
    let live: Vec<u64> = (0..20_000u64).map(|i| (i * 40_503 + 7) >> 14).collect();
    hsq.stream_extend(&live);
    let eps_m = (hsq.config().epsilon() * live.len() as f64).floor() as u64;

    println!("== healthy ==");
    dashboard(&hsq, "healthy");

    // ---- Bit-rot: flip one byte of the newest partition's first block ----
    let (file, part_len) = {
        let p = hsq.warehouse().partitions_newest_first()[0];
        (p.run.file(), p.run.len())
    };
    let mut buf = vec![0u8; 256];
    let n = fault.read_block(file, 0, &mut buf).expect("read");
    buf[n / 2] ^= 0x01;
    fault.write_block(file, 0, &buf[..n]).expect("write");
    println!("\n== bit-rot injected into file {file:?}, block 0 ==");

    // A scrub pass (here unbudgeted; in production, rate-limited and
    // periodic) verifies checksums and quarantines the damage.
    let found = hsq.scrub(u64::MAX).expect("scrub");
    println!(
        "  scrub: {} blocks verified, {} corrupt -> {} partition(s) quarantined",
        found.blocks_verified, found.corrupt_blocks, found.quarantined_after
    );
    assert_eq!(found.quarantined_after, 1);

    // Queries still answer — flagged, bounds widened by exactly the
    // quarantined partition's mass.
    dashboard(&hsq, "degraded");
    let o = hsq
        .rank_query(hsq.total_len() / 2)
        .expect("query")
        .expect("non-empty");
    assert!(o.degraded);
    assert_eq!(o.quarantined, part_len);
    assert_eq!(o.rank_hi - o.rank_lo, 2 * eps_m + part_len);

    // ---- Repair: salvage every checksum-valid block ----
    let healed = hsq.scrub(u64::MAX).expect("scrub");
    println!(
        "\n== repaired: {} partition(s) rebuilt, {} items salvaged, {} lost ==",
        healed.partitions_repaired, healed.items_salvaged, healed.items_lost
    );
    assert_eq!(healed.quarantined_after, 0);
    assert!(
        healed.items_lost <= 31,
        "at most one 256-byte block of items"
    );
    dashboard(&hsq, "repaired");
    let o = hsq
        .rank_query(hsq.total_len() / 2)
        .expect("query")
        .expect("non-empty");
    assert_eq!(
        o.quarantined, healed.items_lost,
        "widening shrinks to the confirmed loss"
    );

    // ---- Transient failures: flaky reads, invisibly retried ----
    fault.arm(Fault::FlakyReads { seed: 11, rate: 6 });
    let before = fault.stats().snapshot().retries;
    dashboard(&hsq, "flaky device");
    let absorbed = fault.stats().snapshot().retries - before;
    println!("\n== {absorbed} transient read failures absorbed by the retry layer ==");
    assert!(absorbed > 0, "the flaky schedule must have fired");
    println!("dashboard never saw an error: self-healing OK");
}
