//! A quantile fleet that survives its own outages.
//!
//! `served_dashboard` stands up the happy path; this example breaks it,
//! live, in escalating order:
//!
//! 1. **Replicated fleet** — 2 replica groups × 2 replicas, each group
//!    fed identical data by the coordinator's replicated writes;
//! 2. **Replica loss** — the preferred replica of group 0 is shut down
//!    mid-session: the next query rides the retry/failover ladder to
//!    the standby and the answers stay *byte-identical* (same value,
//!    same rank interval, same probe rounds);
//! 3. **Whole-group loss** — the standby dies too: queries keep
//!    answering over the reachable union, flagged `degraded`, with the
//!    upper rank bound widened by exactly the lost group's recorded
//!    weight — honest bounds, never silent wrongness;
//! 4. **Strict mode** — the same outage under
//!    `FleetConfig::strict(true)`: a typed refusal carrying the missing
//!    weight, for callers that would rather fail than widen.
//!
//! Run with: `cargo run --release --example failover_fleet`

use std::net::TcpListener;

use hsq::core::{HsqConfig, ShardedEngine};
use hsq::service::{strict_refusal_weight, Coordinator, FleetConfig, QuantileServer, ServerHandle};
use hsq::storage::MemDevice;

const GROUPS: usize = 2;
const REPLICAS: usize = 2;
const HOURS: u64 = 4;
const REQUESTS_PER_HOUR: usize = 20_000;

/// One request latency in microseconds (deterministic, heavy-tailed).
fn latency_us(i: u64) -> u64 {
    let mut x = i
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(0xD1B5_4A32_D192_ED03);
    x ^= x >> 29;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 32;
    let base = 5_000 + x % 45_000;
    let tail = if x.is_multiple_of(97) {
        (x >> 7) % 400_000
    } else {
        0
    };
    base + tail
}

fn spawn_replica() -> ServerHandle {
    let config = HsqConfig::builder()
        .epsilon(0.005)
        .merge_threshold(4)
        .build();
    let engine = ShardedEngine::<u64, _>::with_shards(2, config, |_| MemDevice::new(8192));
    QuantileServer::new(engine)
        .spawn(TcpListener::bind("127.0.0.1:0").expect("bind loopback"))
        .expect("spawn server")
}

fn main() {
    // Stand up the fleet: groups[g][r] is replica r of group g.
    let mut handles: Vec<Vec<Option<ServerHandle>>> = (0..GROUPS)
        .map(|_| (0..REPLICAS).map(|_| Some(spawn_replica())).collect())
        .collect();
    let fleet = FleetConfig::new(
        handles
            .iter()
            .map(|g| {
                g.iter()
                    .map(|h| h.as_ref().unwrap().addr().to_string())
                    .collect()
            })
            .collect(),
    )
    .expect("fleet config");
    println!("fleet up: {GROUPS} groups x {REPLICAS} replicas");
    for (g, replicas) in fleet.groups().iter().enumerate() {
        println!("  group {g}: {replicas:?}");
    }

    // Replicated ingest: each group gets its slice, every replica of the
    // group the same copy (that is what makes failover byte-identical).
    let mut coord = Coordinator::<u64>::connect_fleet(&fleet).expect("connect fleet");
    let mut group0_weight = 0u64;
    for hour in 0..HOURS {
        let mut parts: Vec<Vec<(u64, u64)>> = vec![Vec::new(); GROUPS];
        for i in 0..REQUESTS_PER_HOUR as u64 {
            let v = latency_us(hour << 32 | i);
            parts[(i % GROUPS as u64) as usize].push((v, 1));
        }
        group0_weight += parts[0].len() as u64;
        for (g, part) in parts.iter().enumerate() {
            coord.ingest(g, part).expect("ingest");
        }
        if hour + 1 < HOURS {
            coord.end_step().expect("end step");
        }
    }
    println!(
        "\ningested {} samples/hour x {HOURS} hours, replicated {REPLICAS}x\n",
        REQUESTS_PER_HOUR
    );

    // A strict coordinator watches the same fleet (sessions must open
    // while the fleet is healthy: pinning needs every group's vitals).
    let mut strict_coord =
        Coordinator::<u64>::connect_fleet(&fleet.clone().strict(true)).expect("connect strict");
    let mut strict_session = strict_coord.session(202).expect("strict session");

    // Healthy dashboard.
    let mut session = coord.session(101).expect("open session");
    println!(
        "[healthy] session over N = {} (m = {})",
        session.total_len(),
        session.stream_len()
    );
    let phis = [0.5, 0.95, 0.99];
    let healthy: Vec<_> = phis
        .iter()
        .map(|&phi| session.quantile(phi).expect("quantile").expect("non-empty"))
        .collect();
    for (phi, q) in phis.iter().zip(&healthy) {
        println!(
            "  p{:<4} = {:>7} us   ({} probe rounds, rank within [{}, {}])",
            phi * 100.0,
            q.outcome.value,
            q.probe_rounds,
            q.outcome.rank_lo,
            q.outcome.rank_hi,
        );
    }

    // --- Outage 1: the preferred replica of group 0 dies.
    handles[0][0].take().unwrap().shutdown();
    println!("\n[replica loss] group 0 preferred replica is gone; same queries:");
    let mut failovers = 0u64;
    for (phi, before) in phis.iter().zip(&healthy) {
        let after = session
            .quantile(*phi)
            .expect("quantile")
            .expect("non-empty");
        assert_eq!(before.outcome.value, after.outcome.value);
        assert_eq!(before.outcome.rank_lo, after.outcome.rank_lo);
        assert_eq!(before.outcome.rank_hi, after.outcome.rank_hi);
        assert!(!after.outcome.degraded);
        failovers += after.failovers;
        println!(
            "  p{:<4} = {:>7} us   byte-identical after failover",
            phi * 100.0,
            after.outcome.value,
        );
    }
    println!("  ({failovers} failovers absorbed, zero visible errors)");

    // --- Outage 2: the standby dies too; group 0 is unreachable.
    handles[0][1].take().unwrap().shutdown();
    println!("\n[group loss] all of group 0 is gone; queries degrade honestly:");
    for &phi in &phis {
        let q = session.quantile(phi).expect("quantile").expect("non-empty");
        assert!(q.outcome.degraded);
        assert_eq!(q.missing_weight, group0_weight);
        println!(
            "  p{:<4} = {:>7} us   degraded, rank within [{}, {}] \
             (upper bound widened by the {} lost samples)",
            phi * 100.0,
            q.outcome.value,
            q.outcome.rank_lo,
            q.outcome.rank_hi,
            q.missing_weight,
        );
    }

    // --- The same outage, strict: a typed refusal instead of widening.
    let err = strict_session
        .quantile(0.99)
        .expect_err("strict fleet must refuse");
    let missing = strict_refusal_weight(&err).expect("typed refusal");
    assert_eq!(missing, group0_weight);
    println!(
        "\n[strict] refused with typed error: {missing} samples unreachable \
         ({err})"
    );

    for g in handles.into_iter().flatten().flatten() {
        g.shutdown();
    }
    println!("\nsurviving replicas drained and shut down cleanly");
}
