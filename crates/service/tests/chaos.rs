//! Deterministic network-chaos sweep over a loopback fleet.
//!
//! The harness mirrors the storage layer's crash-point discipline: a
//! clean run through a [`FaultPlan`] with nothing armed *learns* how
//! many transport ops (`M`) and frame receives (`R`) a full
//! construct → session → query workload performs; the sweep then
//! replays the workload once per schedule point — `DropConn(n)` and
//! `Delay(n)` for every op `n < M`, `TornFrame(m)` for every receive
//! `m < R`, a kill-one-replica `Partition` starting at every op index,
//! and `SlowNode` timeouts — asserting:
//!
//! * **zero visible failures** whenever a replica of every group
//!   survives: every [`ServedQuery`] byte-matches the healthy
//!   baseline's (value, ranks, bisection steps, probe rounds, round
//!   trips), failovers and retries fully hidden under the session API;
//! * **correct widened bounds** when every replica of a group is down:
//!   the degraded interval is exactly `±ε·m_reachable` further widened
//!   by the missing group's recorded weight, it contains a true rank of
//!   the served value over the reachable union, and `strict` mode
//!   refuses with the typed error instead;
//! * a fleet whose *only* replica set is lost fails **loudly** (typed
//!   errors), never with a silently wrong answer.
//!
//! Fleets: 1×1 (no replication: transient faults must still be
//! invisible via reconnect), 2×2, and 3×2. Seeds {0, 7, 23} vary the
//! ingested data and the queried ranks; `HSQ_CHAOS_SEED` pins one seed
//! (the CI matrix splits the sweep that way).

use std::io;
use std::net::TcpListener;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use hsq_core::{HsqConfig, ShardedEngine};
use hsq_service::{
    strict_refusal_weight, Coordinator, FaultConnector, FaultPlan, FleetConfig, NetFault,
    NetRetryPolicy, QuantileServer, ServedQuery, ServerHandle, TcpConnector,
};
use hsq_storage::MemDevice;
use hsq_workload::{Dataset, SampledTelemetryGen};

const EPS: f64 = 0.02;
const STEP_ITEMS: usize = 250;
const STEPS: usize = 2; // archived steps; a live stream tail follows
const MAX_WEIGHT: u64 = 4;
const QUERIES: usize = 3;
const POLICY: NetRetryPolicy = NetRetryPolicy::fast();

fn config() -> HsqConfig {
    HsqConfig::builder()
        .epsilon(EPS)
        .merge_threshold(4)
        .cache_blocks(16)
        .build()
}

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 11
}

/// Seeds to sweep: all three by default; `HSQ_CHAOS_SEED` pins one (a
/// garbage value panics naming the variable).
fn seeds() -> Vec<u64> {
    match std::env::var("HSQ_CHAOS_SEED") {
        Err(_) => vec![0, 7, 23],
        Ok(v) if v.trim().is_empty() => vec![0, 7, 23],
        Ok(v) => vec![v
            .trim()
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("HSQ_CHAOS_SEED={v:?} is not a valid seed (want a u64)"))],
    }
}

static NEXT_TENANT: AtomicU64 = AtomicU64::new(1000);

fn next_tenant() -> u64 {
    NEXT_TENANT.fetch_add(1, Ordering::SeqCst)
}

/// A spawned fleet plus everything the assertions need to know about
/// what it holds.
struct Fleet {
    handles: Vec<ServerHandle>,
    /// Flattened replica addresses, group-major — the fault plans'
    /// replica indices point into this.
    addrs: Vec<String>,
    config: FleetConfig,
    /// All `(item, weight)` pairs ingested per group.
    group_data: Vec<Vec<(u64, u64)>>,
    /// The live-stream (unarchived) weight per group.
    group_stream_weight: Vec<u64>,
    epsilon: f64,
}

impl Fleet {
    /// Spawn `groups × replicas` single-shard nodes, feed every replica
    /// of a group identical data (the coordinator's replicated writes),
    /// and record the oracle.
    fn spawn(groups: usize, replicas: usize, seed: u64) -> Fleet {
        let mut handles = Vec::new();
        let mut addrs = Vec::new();
        let mut group_addrs = Vec::new();
        for _ in 0..groups {
            let mut g = Vec::new();
            for _ in 0..replicas {
                let engine =
                    ShardedEngine::<u64, _>::with_shards(1, config(), |_| MemDevice::new(4096));
                let handle = QuantileServer::new(engine)
                    .spawn(TcpListener::bind("127.0.0.1:0").unwrap())
                    .unwrap();
                let addr = handle.addr().to_string();
                handles.push(handle);
                addrs.push(addr.clone());
                g.push(addr);
            }
            group_addrs.push(g);
        }
        let fleet_config = FleetConfig::new(group_addrs).unwrap();

        let mut gen = SampledTelemetryGen::new(Dataset::Wikipedia, seed, MAX_WEIGHT);
        let mut coord = Coordinator::<u64>::connect_fleet_with(
            &fleet_config,
            Arc::new(TcpConnector::from_policy(&POLICY)),
            POLICY,
        )
        .unwrap();
        let mut group_data = vec![Vec::new(); groups];
        let mut group_stream_weight = vec![0u64; groups];
        for step in 0..=STEPS {
            let batch = gen.take_pairs(STEP_ITEMS);
            let mut parts = vec![Vec::new(); groups];
            for (i, &(v, w)) in batch.iter().enumerate() {
                parts[i % groups].push((v, w));
                group_data[i % groups].push((v, w));
                if step == STEPS {
                    group_stream_weight[i % groups] += w;
                }
            }
            for (g, part) in parts.iter().enumerate() {
                coord.ingest(g, part).unwrap();
            }
            if step < STEPS {
                coord.end_step().unwrap();
            }
        }
        let epsilon = coord.session(next_tenant()).unwrap().query_epsilon();
        Fleet {
            handles,
            addrs,
            config: fleet_config,
            group_data,
            group_stream_weight,
            epsilon,
        }
    }

    fn total_weight(&self) -> u64 {
        self.group_data.iter().flatten().map(|&(_, w)| w).sum()
    }

    /// Weight reachable when group 0 is lost.
    fn reachable_weight(&self) -> u64 {
        self.group_data[1..].iter().flatten().map(|&(_, w)| w).sum()
    }

    /// `(weight strictly below v, weight at or below v)` over the union
    /// of groups `from..`.
    fn weighted_rank(&self, from: usize, v: u64) -> (u64, u64) {
        let mut lt = 0u64;
        let mut le = 0u64;
        for &(x, w) in self.group_data[from..].iter().flatten() {
            if x < v {
                lt += w;
            }
            if x <= v {
                le += w;
            }
        }
        (lt, le)
    }

    /// One full workload under `plan`: construct a coordinator through
    /// a fault-injecting connector, open a session, run the rank
    /// queries.
    fn run(
        &self,
        plan: Arc<FaultPlan>,
        strict: bool,
        ranks: &[u64],
    ) -> io::Result<Vec<ServedQuery<u64>>> {
        let connector = Arc::new(FaultConnector::new(
            Arc::new(TcpConnector::from_policy(&POLICY)),
            plan,
            self.addrs.clone(),
        ));
        let fleet_config = self.config.clone().strict(strict);
        let mut coord = Coordinator::<u64>::connect_fleet_with(&fleet_config, connector, POLICY)?;
        let mut sess = coord.session(next_tenant())?;
        let mut out = Vec::with_capacity(ranks.len());
        for &r in ranks {
            out.push(sess.rank_query(r)?.expect("fleet is non-empty"));
        }
        Ok(out)
    }

    fn shutdown(self) {
        for h in self.handles {
            h.shutdown();
        }
    }
}

fn assert_same_answer(g: &ServedQuery<u64>, w: &ServedQuery<u64>, what: &str) {
    assert_eq!(g.outcome.value, w.outcome.value, "{what}: value");
    assert_eq!(
        g.outcome.estimated_rank, w.outcome.estimated_rank,
        "{what}: estimated_rank"
    );
    assert_eq!(
        g.outcome.bisection_steps, w.outcome.bisection_steps,
        "{what}: bisection_steps"
    );
    assert_eq!(g.outcome.rank_lo, w.outcome.rank_lo, "{what}: rank_lo");
    assert_eq!(g.outcome.rank_hi, w.outcome.rank_hi, "{what}: rank_hi");
    assert_eq!(g.outcome.degraded, w.outcome.degraded, "{what}: degraded");
    assert_eq!(
        g.outcome.quarantined, w.outcome.quarantined,
        "{what}: quarantined"
    );
    assert_eq!(g.probe_rounds, w.probe_rounds, "{what}: probe_rounds");
    assert_eq!(g.round_trips, w.round_trips, "{what}: round_trips");
    assert_eq!(g.missing_weight, 0, "{what}: missing_weight");
}

fn assert_same_answers(got: &[ServedQuery<u64>], want: &[ServedQuery<u64>], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: answer count");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_same_answer(g, w, &format!("{what} q{i}"));
    }
}

/// The full sweep for one fleet shape and one seed.
fn sweep(groups: usize, replicas: usize, seed: u64) {
    let fleet = Fleet::spawn(groups, replicas, seed);
    let total = fleet.total_weight();
    let ranks: Vec<u64> = {
        let mut rng = seed ^ 0xC4A05;
        (0..QUERIES).map(|_| lcg(&mut rng) % total + 1).collect()
    };

    // Clean run: learn the op/recv counts and the healthy baseline.
    let clean = FaultPlan::clean();
    let baseline = fleet
        .run(Arc::clone(&clean), false, &ranks)
        .expect("healthy fleet must serve");
    let ops = clean.ops();
    let recvs = clean.recvs();
    assert!(clean.fired().is_empty());
    for q in &baseline {
        assert_eq!(q.failovers, 0, "healthy baseline must not fail over");
        assert_eq!(q.missing_weight, 0);
        assert!(!q.outcome.degraded);
    }

    // --- One-shot link faults: invisible in EVERY fleet, including
    // 1×1 (the retry ladder reconnects to the same replica).
    for n in 0..ops {
        for (fault, label) in [
            (NetFault::DropConn { op: n }, "DropConn"),
            (NetFault::Delay { op: n }, "Delay"),
        ] {
            let plan = FaultPlan::script(vec![fault]);
            let got = fleet
                .run(plan, false, &ranks)
                .unwrap_or_else(|e| panic!("{label}({n}) was visible: {e}"));
            assert_same_answers(&got, &baseline, &format!("{label}({n})"));
        }
    }
    for m in 0..recvs {
        let plan = FaultPlan::script(vec![NetFault::TornFrame { recv: m }]);
        let got = fleet
            .run(plan, false, &ranks)
            .unwrap_or_else(|e| panic!("TornFrame({m}) was visible: {e}"));
        assert_same_answers(&got, &baseline, &format!("TornFrame({m})"));
    }

    // --- Kill one replica for good, at every schedule index.
    for rid in 0..fleet.addrs.len() {
        for n in 0..ops {
            let plan = FaultPlan::script(vec![NetFault::Partition {
                replicas: vec![rid],
                from: n,
                to: u64::MAX,
            }]);
            let result = fleet.run(plan, false, &ranks);
            if replicas > 1 {
                // A sibling survives: answers must byte-match after the
                // failover re-seed.
                let got = result
                    .unwrap_or_else(|e| panic!("kill replica {rid} at op {n} was visible: {e}"));
                assert_same_answers(&got, &baseline, &format!("kill replica {rid} at op {n}"));
            } else {
                // The group's only replica is gone: a loud typed error,
                // never a silently wrong answer.
                assert!(
                    result.is_err(),
                    "losing the only replica {rid} at op {n} must fail loudly"
                );
            }
        }
    }

    // --- Slow nodes: periodic deadline blowouts on one replica.
    // Excluded for 1×1: a persistently slow sole replica can exhaust
    // the whole retry ladder, which is a (loud) availability loss, not
    // a maskable fault.
    if replicas > 1 {
        for rid in 0..fleet.addrs.len() {
            for period in [1u64, 5] {
                let plan = FaultPlan::script(vec![NetFault::SlowNode {
                    replica: rid,
                    period,
                }]);
                let got = fleet.run(plan, false, &ranks).unwrap_or_else(|e| {
                    panic!("SlowNode(replica {rid}, period {period}) was visible: {e}")
                });
                assert_same_answers(
                    &got,
                    &baseline,
                    &format!("SlowNode(replica {rid}, period {period})"),
                );
            }
        }
    }

    // --- Whole-group loss: degraded answers with exactly-priced
    // widening (fleets with something left to serve from).
    if groups > 1 {
        let group0: Vec<usize> = (0..replicas).collect();
        let w0: u64 = fleet.group_data[0].iter().map(|&(_, w)| w).sum();
        let reach_total = fleet.reachable_weight();
        let reach_stream: u64 = fleet.group_stream_weight[1..].iter().sum();
        let eps_m = (fleet.epsilon * reach_stream as f64).floor() as u64;
        let mut degraded_queries = 0usize;
        for n in 0..ops {
            let plan = FaultPlan::script(vec![NetFault::Partition {
                replicas: group0.clone(),
                from: n,
                to: u64::MAX,
            }]);
            match fleet.run(plan, false, &ranks) {
                Err(_) => {
                    // Legitimate only while group 0's weight was never
                    // observed (the partition predates its first pin):
                    // with no recorded W the loss cannot be priced.
                    // Observation happens within the first few session
                    // ops; everything after must degrade, not fail.
                }
                Ok(got) => {
                    // The partition arms mid-run: queries finishing
                    // before op `n` reaches group 0 stay byte-identical
                    // to the healthy baseline; from the first query the
                    // loss touches, answers are degraded — and stay so
                    // (down is sticky until refresh).
                    let mut lost = false;
                    for (i, q) in got.iter().enumerate() {
                        if !q.outcome.degraded {
                            assert!(
                                !lost,
                                "group loss at op {n} q{i}: healthy answer after a degraded one"
                            );
                            assert_same_answer(
                                q,
                                &baseline[i],
                                &format!("group loss at op {n} q{i} (pre-fault)"),
                            );
                            continue;
                        }
                        lost = true;
                        degraded_queries += 1;
                        assert_eq!(
                            q.missing_weight, w0,
                            "group loss at op {n} q{i}: missing weight"
                        );
                        assert_eq!(
                            q.outcome.rank_hi,
                            q.outcome.estimated_rank + eps_m + w0,
                            "group loss at op {n} q{i}: upper bound must widen by exactly W₀"
                        );
                        assert_eq!(
                            q.outcome.rank_lo,
                            q.outcome.estimated_rank.saturating_sub(eps_m),
                            "group loss at op {n} q{i}: lower bound"
                        );
                        // The widened interval must contain a true rank
                        // of the served value over the reachable union.
                        let (lt, le) = fleet.weighted_rank(1, q.outcome.value);
                        let true_lo = lt + 1;
                        let true_hi = le.max(true_lo);
                        assert!(
                            true_lo <= q.outcome.rank_hi && true_hi >= q.outcome.rank_lo,
                            "group loss at op {n} q{i}: true ranks [{true_lo}, {true_hi}] \
                             outside degraded interval [{}, {}] (reachable total {reach_total})",
                            q.outcome.rank_lo,
                            q.outcome.rank_hi
                        );
                    }
                }
            }
        }
        assert!(
            degraded_queries > 0,
            "sweep never exercised the degraded path"
        );

        // Strict mode: same group loss, but after the session is open
        // the answer is a typed refusal carrying the missing weight.
        let plan = FaultPlan::script(vec![NetFault::Partition {
            replicas: group0.clone(),
            from: ops.saturating_sub(QUERIES as u64),
            to: u64::MAX,
        }]);
        let err = fleet
            .run(plan, true, &ranks)
            .expect_err("strict fleet must refuse degraded answers");
        assert_eq!(
            strict_refusal_weight(&err),
            Some(w0),
            "strict refusal must be typed and carry the missing weight: {err}"
        );

        // And strict mode does NOT refuse maskable faults.
        let plan = FaultPlan::script(vec![NetFault::DropConn { op: ops / 2 }]);
        let got = fleet
            .run(plan, true, &ranks)
            .expect("strict mode must still mask single-replica faults");
        assert_same_answers(&got, &baseline, "strict + DropConn");
    }

    fleet.shutdown();
}

#[test]
fn chaos_sweep_fleet_1x1() {
    for seed in seeds() {
        sweep(1, 1, seed);
    }
}

#[test]
fn chaos_sweep_fleet_2x2() {
    for seed in seeds() {
        sweep(2, 2, seed);
    }
}

#[test]
fn chaos_sweep_fleet_3x2() {
    for seed in seeds() {
        sweep(3, 2, seed);
    }
}
