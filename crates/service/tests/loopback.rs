//! Loopback integration: a [`QuantileServer`] on 127.0.0.1 must serve
//! answers **byte-identical** to the in-process [`ShardedSnapshot`] fed
//! the same data — same value, same estimated rank, same bisection step
//! count, same rank interval — because the coordinator rebuilds the
//! identical combined summary and runs the identical bisection, just
//! with probes over TCP. A multi-node fleet (differently partitioned
//! data) is additionally held to Theorem 2's `ε·m` bound against a
//! sorted oracle.

use std::net::TcpListener;

use hsq_core::{HsqConfig, QueryOutcome, ShardedEngine};
use hsq_service::{Coordinator, QuantileServer, ServedQuery, ServerHandle};
use hsq_storage::MemDevice;
use hsq_workload::{Dataset, SampledTelemetryGen};

const EPS: f64 = 0.02;
const STEP_ITEMS: usize = 2_500;
const STEPS: usize = 3; // archived steps; a live stream tail follows
const MAX_WEIGHT: u64 = 4;

fn config() -> HsqConfig {
    // query_epsilon = 4 * (EPS / 2) = 2 * EPS; small cache budget keeps
    // the probe paths honest.
    HsqConfig::builder()
        .epsilon(EPS)
        .merge_threshold(4)
        .cache_blocks(16)
        .build()
}

fn mk_engine(shards: usize) -> ShardedEngine<u64, MemDevice> {
    ShardedEngine::with_shards(shards, config(), |_| MemDevice::new(4096))
}

/// The per-step weighted batches every engine in a test ingests.
fn batches(seed: u64) -> Vec<Vec<(u64, u64)>> {
    let mut gen = SampledTelemetryGen::new(Dataset::Wikipedia, seed, MAX_WEIGHT);
    (0..=STEPS).map(|_| gen.take_pairs(STEP_ITEMS)).collect()
}

/// Feed the same batches to an in-process engine and to served nodes
/// (`route(step_batch)` splits each batch across nodes), archiving all
/// but the last batch.
fn feed(
    local: &mut ShardedEngine<u64, MemDevice>,
    coord: &mut Coordinator<u64>,
    seed: u64,
    route: impl Fn(&[(u64, u64)], usize) -> Vec<Vec<(u64, u64)>>,
) {
    let nodes = coord.num_nodes();
    for (i, batch) in batches(seed).iter().enumerate() {
        local.stream_extend_weighted(batch);
        for (node, part) in route(batch, nodes).iter().enumerate() {
            coord.ingest(node, part).unwrap();
        }
        if i < STEPS {
            local.end_time_step().unwrap();
            coord.end_step().unwrap();
        }
    }
}

fn spawn_node(engine: ShardedEngine<u64, MemDevice>) -> ServerHandle {
    QuantileServer::new(engine)
        .spawn(TcpListener::bind("127.0.0.1:0").unwrap())
        .unwrap()
}

/// Everything except `io` (disk reads happen on the node, not the
/// coordinator) must match bit for bit.
fn assert_outcome_eq(served: &QueryOutcome<u64>, local: &QueryOutcome<u64>, what: &str) {
    assert_eq!(served.value, local.value, "{what}: value");
    assert_eq!(
        served.estimated_rank, local.estimated_rank,
        "{what}: estimated_rank"
    );
    assert_eq!(
        served.bisection_steps, local.bisection_steps,
        "{what}: bisection_steps"
    );
    assert_eq!(served.rank_lo, local.rank_lo, "{what}: rank_lo");
    assert_eq!(served.rank_hi, local.rank_hi, "{what}: rank_hi");
    assert_eq!(served.degraded, local.degraded, "{what}: degraded");
    assert_eq!(served.quarantined, local.quarantined, "{what}: quarantined");
}

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 11
}

/// Single node hosting the same shard count as the in-process engine:
/// every query class must byte-match, across a seeded random rank
/// sweep, and p50 probe rounds must stay ≤ 4.
fn parity_for_shards(shards: usize) {
    let mut local = mk_engine(shards);
    let handle = spawn_node(mk_engine(shards));
    let mut coord = Coordinator::<u64>::connect(&[handle.addr()]).unwrap();
    feed(&mut local, &mut coord, 0xA11CE + shards as u64, |b, _| {
        vec![b.to_vec()]
    });

    let snap = local.snapshot();
    let mut sess = coord.session(1).unwrap();
    assert_eq!(sess.total_len(), snap.total_len(), "session total");
    assert_eq!(
        sess.stream_len(),
        snap.stream_len(),
        "session stream weight"
    );
    assert_eq!(
        sess.query_epsilon().to_bits(),
        snap.query_epsilon().to_bits(),
        "session epsilon"
    );

    // Property sweep: seeded random ranks across the whole domain.
    let total = snap.total_len();
    let mut rng = 0xDEAD_0000 + shards as u64;
    let mut rounds = Vec::new();
    for _ in 0..30 {
        let r = lcg(&mut rng) % total + 1;
        let served = sess.rank_query(r).unwrap().unwrap();
        let local_o = snap.rank_query(r).unwrap().unwrap();
        assert_outcome_eq(
            &served.outcome,
            &local_o,
            &format!("rank {r} ({shards} shards)"),
        );
        assert_eq!(
            served.round_trips, served.probe_rounds as u64,
            "single node: one trip per round"
        );
        rounds.push(served.probe_rounds);
    }
    rounds.sort_unstable();
    let p50 = rounds[rounds.len() / 2];
    assert!(p50 <= 4, "{shards} shards: p50 probe rounds {p50} > 4");

    // Quantiles, quick path, and windows.
    for phi in [0.01, 0.25, 0.5, 0.75, 0.95, 1.0] {
        let served = sess.quantile(phi).unwrap().unwrap();
        let local_v = snap.quantile(phi).unwrap().unwrap();
        assert_eq!(served.outcome.value, local_v, "phi {phi}");
        assert_eq!(
            sess.quantile_quick(phi).unwrap(),
            snap.quantile_quick(phi),
            "quick phi {phi}"
        );
    }
    let windows = snap.available_windows();
    assert!(!windows.is_empty(), "test needs at least one exact window");
    for &w in &windows {
        let mut rng = 0xAB5 + w;
        let wtotal = snap.window_total(w).unwrap();
        for _ in 0..6 {
            let r = lcg(&mut rng) % wtotal + 1;
            let served = sess.rank_in_window(w, r).unwrap().unwrap();
            let local_o = snap.rank_in_window(w, r).unwrap().unwrap();
            assert_outcome_eq(&served.outcome, &local_o, &format!("window {w} rank {r}"));
        }
        for phi in [0.1, 0.5, 0.9] {
            let served = sess.quantile_in_window(w, phi).unwrap().unwrap();
            let local_v = snap.quantile_in_window(w, phi).unwrap().unwrap();
            assert_eq!(served.outcome.value, local_v, "window {w} phi {phi}");
        }
    }
    // A window no node can answer exactly is None on both sides.
    let bogus = windows.iter().max().unwrap() + 1000;
    assert!(snap.rank_in_window(bogus, 1).unwrap().is_none());
    assert!(sess.rank_in_window(bogus, 1).unwrap().is_none());

    handle.shutdown();
}

#[test]
fn served_answers_byte_match_in_process_1_shard() {
    parity_for_shards(1);
}

#[test]
fn served_answers_byte_match_in_process_2_shards() {
    parity_for_shards(2);
}

#[test]
fn served_answers_byte_match_in_process_8_shards() {
    parity_for_shards(8);
}

/// Two nodes, data split between them: the union answer must hold
/// Theorem 2's bound against the weighted sorted oracle, and the
/// byte-match still holds versus an in-process engine sharded the same
/// way the fleet is (node 0's data on shards 0..2, node 1's on 2..4 is
/// not expressible in-process, so the oracle is the referee here).
#[test]
fn two_node_fleet_holds_the_eps_m_bound() {
    let handles = [spawn_node(mk_engine(2)), spawn_node(mk_engine(2))];
    let addrs = [handles[0].addr(), handles[1].addr()];
    let mut coord = Coordinator::<u64>::connect(&addrs).unwrap();

    // Alternate items between the nodes; keep the weighted oracle.
    let mut oracle: Vec<(u64, u64)> = Vec::new();
    let mut stream_weight = 0u64;
    for (i, batch) in batches(0xFEED).iter().enumerate() {
        let mut parts = [Vec::new(), Vec::new()];
        for (j, &(v, w)) in batch.iter().enumerate() {
            parts[j % 2].push((v, w));
            oracle.push((v, w));
            if i == STEPS {
                stream_weight += w;
            }
        }
        for (node, part) in parts.iter().enumerate() {
            coord.ingest(node, part).unwrap();
        }
        if i < STEPS {
            coord.end_step().unwrap();
        }
    }
    oracle.sort_unstable();
    let total: u64 = oracle.iter().map(|&(_, w)| w).sum();
    let mut sess = coord.session(9).unwrap();
    assert_eq!(sess.total_len(), total, "fleet total is the weighted sum");
    let eps_m = (sess.query_epsilon() * stream_weight as f64).floor() as u64;
    assert_eq!(sess.stream_len(), stream_weight);

    let weighted_rank = |v: u64| {
        // (weight strictly below v, weight at or below v)
        let mut lt = 0u64;
        let mut le = 0u64;
        for &(x, w) in &oracle {
            if x < v {
                lt += w;
            }
            if x <= v {
                le += w;
            }
        }
        (lt, le)
    };

    let mut rng = 0xBEEF;
    for _ in 0..25 {
        let r = lcg(&mut rng) % total + 1;
        let served = sess.rank_query(r).unwrap().unwrap();
        let ServedQuery {
            outcome,
            round_trips,
            probe_rounds,
            ..
        } = &served;
        assert_eq!(*round_trips, *probe_rounds as u64 * 2, "2 nodes per round");
        let (lt, le) = weighted_rank(outcome.value);
        assert!(
            lt < r + eps_m && le.max(lt + 1) >= r.saturating_sub(eps_m),
            "rank {r}: served value {} has true ranks [{}, {}], outside ±{eps_m}",
            outcome.value,
            lt + 1,
            le
        );
    }

    for h in handles {
        h.shutdown();
    }
}

/// Concurrent tenants, each on its own connection: sessions are
/// isolated, answers still byte-match the precomputed in-process ones,
/// and refresh() re-pins to current engine state.
#[test]
fn concurrent_tenant_sessions_serve_identical_answers() {
    let mut local = mk_engine(2);
    let handle = spawn_node(mk_engine(2));
    let addr = handle.addr();
    {
        let mut coord = Coordinator::<u64>::connect(&[addr]).unwrap();
        feed(&mut local, &mut coord, 0xC0FFEE, |b, _| vec![b.to_vec()]);
    }
    let snap = local.snapshot();
    let total = snap.total_len();

    // Expected answers precomputed in-process.
    let ranks: Vec<u64> = {
        let mut rng = 0x5EED;
        (0..12).map(|_| lcg(&mut rng) % total + 1).collect()
    };
    let expected: Vec<QueryOutcome<u64>> = ranks
        .iter()
        .map(|&r| snap.rank_query(r).unwrap().unwrap())
        .collect();

    let threads: Vec<_> = (0..4u64)
        .map(|tenant| {
            let ranks = ranks.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut coord = Coordinator::<u64>::connect(&[addr]).unwrap();
                let mut sess = coord.session(tenant).unwrap();
                for (r, want) in ranks.iter().zip(&expected) {
                    let served = sess.rank_query(*r).unwrap().unwrap();
                    assert_outcome_eq(&served.outcome, want, &format!("tenant {tenant} rank {r}"));
                }
                // Refresh sees the same (unchanged) engine state.
                sess.refresh().unwrap();
                let served = sess.rank_query(ranks[0]).unwrap().unwrap();
                assert_outcome_eq(&served.outcome, &expected[0], "post-refresh");
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    handle.shutdown();
}

/// A stale session keeps answering over its pinned snapshot while new
/// data arrives; refresh() then folds the new data in.
#[test]
fn sessions_pin_snapshots_until_refresh() {
    let handle = spawn_node(mk_engine(1));
    let mut coord = Coordinator::<u64>::connect(&[handle.addr()]).unwrap();
    coord.ingest(0, &[(10, 1), (20, 1), (30, 1)]).unwrap();
    let mut sess = coord.session(5).unwrap();
    assert_eq!(sess.total_len(), 3);

    coord2_ingest(handle.addr(), &[(40, 1), (50, 1)]);
    // Pinned: new items are invisible until refresh.
    assert_eq!(sess.total_len(), 3);
    assert_eq!(sess.quantile(1.0).unwrap().unwrap().outcome.value, 30);
    sess.refresh().unwrap();
    assert_eq!(sess.total_len(), 5);
    assert_eq!(sess.quantile(1.0).unwrap().unwrap().outcome.value, 50);
    handle.shutdown();
}

/// Ingest through a second connection (the session above holds the
/// first mutably).
fn coord2_ingest(addr: std::net::SocketAddr, items: &[(u64, u64)]) {
    let mut c = Coordinator::<u64>::connect(&[addr]).unwrap();
    c.ingest(0, items).unwrap();
}

/// A peer that sends half a frame and then goes silent — while keeping
/// the connection open — must not wedge shutdown: the server's stall
/// budget abandons the read, so `shutdown()` joins promptly instead of
/// blocking until the hung peer goes away.
#[test]
fn shutdown_joins_promptly_with_hung_peer() {
    use std::io::Write;
    use std::net::TcpStream;
    use std::time::Instant;

    let handle = spawn_node(mk_engine(1));

    // Promise a 100-byte frame, deliver 10 bytes, then stall (the
    // connection stays open — no FIN, unlike the torn-frame test).
    let mut hung = TcpStream::connect(handle.addr()).unwrap();
    hung.write_all(&100u32.to_le_bytes()).unwrap();
    hung.write_all(&[0u8; 10]).unwrap();
    hung.flush().unwrap();

    // A healthy client is still served while the hung peer stalls.
    let mut coord = Coordinator::<u64>::connect(&[handle.addr()]).unwrap();
    coord.ping().unwrap();
    drop(coord);

    let start = Instant::now();
    handle.shutdown();
    let took = start.elapsed();
    assert!(
        took.as_secs_f64() < 2.0,
        "shutdown took {took:?} with a hung peer (stall budget not enforced?)"
    );
    drop(hung);
}

/// Garbage and torn frames on the wire: the server answers framed
/// garbage with an Error response and keeps the connection; a torn
/// frame drops the connection; neither wedges the server for the next
/// client.
#[test]
fn server_survives_garbage_and_torn_frames() {
    use hsq_service::proto::{read_frame, write_frame, Request, Response};
    use std::io::Write;
    use std::net::TcpStream;

    let handle = spawn_node(mk_engine(1));

    // Framed garbage: valid length prefix, junk payload → Error reply,
    // connection stays usable.
    let mut s = TcpStream::connect(handle.addr()).unwrap();
    write_frame(&mut s, b"this is not a frame").unwrap();
    match Response::<u64>::decode(&read_frame(&mut s).unwrap()).unwrap() {
        Response::Error { message } => assert!(message.contains("bad request"), "{message}"),
        other => panic!("expected Error, got {other:?}"),
    }
    let ping: Request<u64> = Request::Ping;
    write_frame(&mut s, &ping.encode()).unwrap();
    match Response::<u64>::decode(&read_frame(&mut s).unwrap()).unwrap() {
        Response::Pong => {}
        other => panic!("expected Pong, got {other:?}"),
    }

    // Torn frame: length prefix promises more than arrives. The server
    // reports and closes; a fresh client still gets served.
    let mut torn = TcpStream::connect(handle.addr()).unwrap();
    torn.write_all(&100u32.to_le_bytes()).unwrap();
    torn.write_all(&[0u8; 10]).unwrap();
    drop(torn);

    let mut coord = Coordinator::<u64>::connect(&[handle.addr()]).unwrap();
    coord.ping().unwrap();

    // Probing a tenant that never opened a session is an Error
    // response, not a hang or a dropped connection.
    let mut s = TcpStream::connect(handle.addr()).unwrap();
    let probe: Request<u64> = Request::Probe {
        tenant: 404,
        window: None,
        zs: vec![7],
    };
    write_frame(&mut s, &probe.encode()).unwrap();
    match Response::<u64>::decode(&read_frame(&mut s).unwrap()).unwrap() {
        Response::Error { message } => assert!(message.contains("unknown tenant"), "{message}"),
        other => panic!("expected Error, got {other:?}"),
    }
    handle.shutdown();
}
