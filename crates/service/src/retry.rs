//! Typed network errors and the coordinator's retry/backoff policy.
//!
//! Mirrors the storage-side taxonomy ([`hsq_storage::StorageError`] /
//! [`hsq_storage::RetryPolicy`], re-exported from `hsq_core`): every
//! fallible signature stays `io::Result`, a typed [`NetError`] rides
//! *inside* `io::Error`, and classification of a foreign error falls
//! back on its [`io::ErrorKind`]. The classes drive the coordinator's
//! failover loop:
//!
//! * [`NetErrorKind::Transient`] — the *link* hiccuped (timeout, reset,
//!   torn frame). The connection is framing-unsafe afterwards, so a
//!   retry means reconnect → re-pin the session → resend, on the **same
//!   replica**, up to [`NetRetryPolicy::max_attempts`] with
//!   decorrelated-jitter backoff.
//! * [`NetErrorKind::NodeDown`] — the *node* refused us (connection
//!   refused, host unreachable). Retrying the same replica is pointless;
//!   fail over to the next replica in the group immediately.
//! * [`NetErrorKind::Fatal`] — a semantic failure (an `Error` response,
//!   vitals divergence, a mixed-ε fleet). Surfaced unchanged; neither
//!   retried nor failed over, because every replica would answer the
//!   same.
//!
//! A fourth typed payload, [`NetError::StrictRefusal`], is not a link
//! failure at all: it is the answer a `strict`-mode fleet gives instead
//! of a degraded (bound-widened) response when a whole replica group is
//! unreachable. [`strict_refusal_weight`] recovers the missing mass.

use std::fmt;
use std::io;
use std::time::Duration;

/// A classified network failure (see module docs).
#[derive(Debug)]
pub enum NetError {
    /// A retryable link hiccup; the connection must be re-established.
    Transient(String),
    /// The node actively refused; fail over, don't retry.
    NodeDown(String),
    /// A semantic failure every replica would repeat.
    Fatal(String),
    /// `strict` mode refusing to serve a degraded answer: a whole
    /// replica group is down and its `missing_weight` items cannot be
    /// bounded away.
    StrictRefusal {
        /// Total weight of the unreachable groups' data.
        missing_weight: u64,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Transient(m) => write!(f, "transient network error: {m}"),
            NetError::NodeDown(m) => write!(f, "node down: {m}"),
            NetError::Fatal(m) => write!(f, "fatal service error: {m}"),
            NetError::StrictRefusal { missing_weight } => write!(
                f,
                "strict fleet refuses degraded answer: {missing_weight} weight unreachable"
            ),
        }
    }
}

impl std::error::Error for NetError {}

impl From<NetError> for io::Error {
    fn from(e: NetError) -> io::Error {
        let kind = match &e {
            NetError::Transient(_) => io::ErrorKind::TimedOut,
            NetError::NodeDown(_) => io::ErrorKind::ConnectionRefused,
            NetError::Fatal(_) => io::ErrorKind::Other,
            NetError::StrictRefusal { .. } => io::ErrorKind::Other,
        };
        io::Error::new(kind, e)
    }
}

/// The class of a network failure, extracted by [`classify_net`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetErrorKind {
    /// Reconnect and retry the same replica.
    Transient,
    /// Fail over to the next replica.
    NodeDown,
    /// Surface unchanged.
    Fatal,
}

/// Classify an `io::Error`: unwrap a typed [`NetError`] if one is
/// inside, otherwise map the error kind. `InvalidData` counts as
/// transient here — a response frame that fails its CRC or decode is
/// link corruption (the server never *sends* invalid frames), and the
/// remedy is the same reconnect a timeout gets.
pub fn classify_net(e: &io::Error) -> NetErrorKind {
    if let Some(inner) = e.get_ref() {
        if let Some(ne) = inner.downcast_ref::<NetError>() {
            return match ne {
                NetError::Transient(_) => NetErrorKind::Transient,
                NetError::NodeDown(_) => NetErrorKind::NodeDown,
                NetError::Fatal(_) | NetError::StrictRefusal { .. } => NetErrorKind::Fatal,
            };
        }
    }
    match e.kind() {
        io::ErrorKind::ConnectionRefused => NetErrorKind::NodeDown,
        io::ErrorKind::TimedOut
        | io::ErrorKind::WouldBlock
        | io::ErrorKind::ConnectionReset
        | io::ErrorKind::ConnectionAborted
        | io::ErrorKind::BrokenPipe
        | io::ErrorKind::UnexpectedEof
        | io::ErrorKind::Interrupted
        | io::ErrorKind::InvalidData => NetErrorKind::Transient,
        _ => NetErrorKind::Fatal,
    }
}

/// Build the typed strict-mode refusal for `missing_weight` unreachable
/// mass.
pub fn strict_refusal(missing_weight: u64) -> io::Error {
    NetError::StrictRefusal { missing_weight }.into()
}

/// If `e` is a strict-mode degraded-answer refusal, the missing weight
/// it refused over. The typed hook callers use to distinguish "the
/// fleet is degraded and I asked for strict" from real failures.
pub fn strict_refusal_weight(e: &io::Error) -> Option<u64> {
    let inner = e.get_ref()?;
    match inner.downcast_ref::<NetError>()? {
        NetError::StrictRefusal { missing_weight } => Some(*missing_weight),
        _ => None,
    }
}

/// Retry/timeout/backoff policy for coordinator-side network ops —
/// the wire-facing sibling of the storage layer's
/// [`hsq_storage::RetryPolicy`].
///
/// * `max_attempts` bounds tries **per replica per op** (1 = no
///   retries); exhausting them fails over to the next replica of the
///   group, and exhausting every replica marks the group down.
/// * Backoff between attempts uses *decorrelated jitter*: each delay is
///   drawn uniformly from `[base_delay, 3 × previous]` (capped at
///   `max_delay`) by a seeded LCG, so retry storms from many
///   coordinators decorrelate while any single schedule replays exactly
///   given the seed.
/// * `connect_timeout` bounds connection establishment;  `op_timeout`
///   is applied to every established socket as its read *and* write
///   timeout (`SO_RCVTIMEO`/`SO_SNDTIMEO`), turning a stalled peer into
///   a classified [`NetErrorKind::Transient`] instead of a hung thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetRetryPolicy {
    /// Attempts per replica per op (minimum 1).
    pub max_attempts: u32,
    /// Backoff floor (and first draw's lower bound).
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
    /// Deadline for establishing a TCP connection.
    pub connect_timeout: Duration,
    /// Per-operation socket deadline (`SO_RCVTIMEO`/`SO_SNDTIMEO`).
    pub op_timeout: Duration,
    /// Seed for the decorrelated-jitter draws.
    pub jitter_seed: u64,
}

impl Default for NetRetryPolicy {
    fn default() -> Self {
        NetRetryPolicy::standard()
    }
}

impl NetRetryPolicy {
    /// Production-shaped defaults: 3 attempts, 1 ms → 50 ms jittered
    /// backoff, 2 s connects, 10 s ops.
    pub const fn standard() -> Self {
        NetRetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(50),
            connect_timeout: Duration::from_secs(2),
            op_timeout: Duration::from_secs(10),
            jitter_seed: 0x5EED_F1EE,
        }
    }

    /// Deterministic-test configuration: 3 attempts, zero backoff,
    /// short (but not flaky-short) deadlines.
    pub const fn fast() -> Self {
        NetRetryPolicy {
            max_attempts: 3,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            connect_timeout: Duration::from_millis(500),
            op_timeout: Duration::from_secs(5),
            jitter_seed: 0,
        }
    }

    /// Fail-fast: one attempt, no backoff.
    pub const fn none() -> Self {
        NetRetryPolicy {
            max_attempts: 1,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            connect_timeout: Duration::from_secs(2),
            op_timeout: Duration::from_secs(10),
            jitter_seed: 0,
        }
    }

    /// Next decorrelated-jitter delay. `rng` is the caller-held LCG
    /// state (seed it from `jitter_seed`), `prev` the previous delay
    /// (pass `base_delay` for the first retry).
    pub fn next_backoff(&self, rng: &mut u64, prev: Duration) -> Duration {
        if self.base_delay.is_zero() && self.max_delay.is_zero() {
            return Duration::ZERO;
        }
        *rng = rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let base = self.base_delay.as_micros() as u64;
        let hi = (prev.as_micros() as u64).saturating_mul(3).max(base + 1);
        let draw = base + (*rng >> 11) % (hi - base);
        Duration::from_micros(draw)
            .min(self.max_delay)
            .max(self.base_delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_errors_roundtrip_through_io_error() {
        let e: io::Error = NetError::Transient("probe timeout".into()).into();
        assert_eq!(classify_net(&e), NetErrorKind::Transient);
        let e: io::Error = NetError::NodeDown("refused".into()).into();
        assert_eq!(classify_net(&e), NetErrorKind::NodeDown);
        let e: io::Error = NetError::Fatal("mixed epsilon".into()).into();
        assert_eq!(classify_net(&e), NetErrorKind::Fatal);
        let e = strict_refusal(1234);
        assert_eq!(classify_net(&e), NetErrorKind::Fatal);
        assert_eq!(strict_refusal_weight(&e), Some(1234));
        assert_eq!(
            strict_refusal_weight(&io::Error::other("nope")),
            None,
            "foreign errors are not refusals"
        );
    }

    #[test]
    fn foreign_errors_classify_by_kind() {
        for kind in [
            io::ErrorKind::TimedOut,
            io::ErrorKind::WouldBlock,
            io::ErrorKind::ConnectionReset,
            io::ErrorKind::ConnectionAborted,
            io::ErrorKind::BrokenPipe,
            io::ErrorKind::UnexpectedEof,
            io::ErrorKind::Interrupted,
            io::ErrorKind::InvalidData,
        ] {
            let e = io::Error::new(kind, "x");
            assert_eq!(classify_net(&e), NetErrorKind::Transient, "{kind:?}");
        }
        let e = io::Error::new(io::ErrorKind::ConnectionRefused, "x");
        assert_eq!(classify_net(&e), NetErrorKind::NodeDown);
        let e = io::Error::other("x");
        assert_eq!(classify_net(&e), NetErrorKind::Fatal);
    }

    #[test]
    fn jitter_is_seeded_bounded_and_replayable() {
        let p = NetRetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_micros(100),
            max_delay: Duration::from_millis(10),
            connect_timeout: Duration::from_secs(1),
            op_timeout: Duration::from_secs(1),
            jitter_seed: 42,
        };
        let run = |seed: u64| {
            let mut rng = seed;
            let mut prev = p.base_delay;
            let mut out = Vec::new();
            for _ in 0..16 {
                prev = p.next_backoff(&mut rng, prev);
                assert!(prev >= p.base_delay && prev <= p.max_delay);
                out.push(prev);
            }
            out
        };
        assert_eq!(run(42), run(42), "same seed replays the same schedule");
        assert_ne!(run(42), run(43), "different seeds decorrelate");
        // Zero-delay policies never sleep.
        let mut rng = 7;
        assert_eq!(
            NetRetryPolicy::fast().next_backoff(&mut rng, Duration::ZERO),
            Duration::ZERO
        );
    }
}
