//! The serving node: a [`QuantileServer`] hosts a sharded engine behind
//! a `TcpListener` and answers [`crate::proto`] frames.
//!
//! ## Threading
//!
//! There is no async runtime in the build environment, so the server
//! reuses the crate's `std::thread` idiom ([`hsq_core::parallel`]):
//! `worker_count` acceptor threads each block in `accept()` on a cloned
//! listener handle and hand every connection to its own serving thread
//! — thread-per-connection, which matches the intended deployment (a
//! handful of coordinator connections, not the open internet). Shutdown
//! sets a flag and self-connects once per acceptor to unblock the
//! accepts; serving threads poll the flag between frames via a 100 ms
//! read timeout and are joined before shutdown returns.
//!
//! ## Sessions
//!
//! [`Request::OpenSession`] pins a per-tenant snapshot epoch shared by
//! every connection: repeated dashboard queries from one tenant keep
//! hitting the same [`ShardedSnapshot`] and therefore its cached
//! combined summary and window plans (the ~25× cached-summary path),
//! until the tenant refreshes. Block caches are *per connection*, keyed
//! by `(tenant, epoch, window)`, so concurrent connections never
//! contend on cache state.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use hsq_core::parallel::worker_count;
use hsq_core::{ShardedEngine, ShardedSnapshot};
use hsq_storage::{BlockCache, BlockDevice, Item};

use crate::proto::{read_frame_bounded, write_frame, FrameLimits, FrameRead, Request, Response};

/// How long a serving thread waits for the next frame before polling
/// the shutdown flag.
const IDLE_POLL: Duration = Duration::from_millis(100);

/// Write deadline per response (`SO_SNDTIMEO`): a peer that stops
/// draining its socket gets its connection dropped instead of pinning a
/// serving thread in `write()` forever.
const WRITE_TIMEOUT: Duration = Duration::from_secs(10);

struct SessionEntry<T: Item, D: BlockDevice> {
    epoch: u64,
    snapshot: Arc<ShardedSnapshot<T, D>>,
}

struct ServerState<T: Item, D: BlockDevice> {
    engine: Mutex<ShardedEngine<T, D>>,
    sessions: Mutex<HashMap<u64, SessionEntry<T, D>>>,
    next_epoch: Mutex<u64>,
}

impl<T: Item, D: BlockDevice> ServerState<T, D> {
    /// Pin (or reuse) the tenant's session snapshot.
    fn open_session(&self, tenant: u64, refresh: bool) -> Response<T> {
        let mut sessions = self.sessions.lock().unwrap();
        if refresh || !sessions.contains_key(&tenant) {
            let snapshot = Arc::new(self.engine.lock().unwrap().snapshot());
            let mut next = self.next_epoch.lock().unwrap();
            *next += 1;
            sessions.insert(
                tenant,
                SessionEntry {
                    epoch: *next,
                    snapshot,
                },
            );
        }
        let entry = &sessions[&tenant];
        let snap = &entry.snapshot;
        Response::Session {
            epoch: entry.epoch,
            total: snap.total_len(),
            stream_weight: snap.stream_len(),
            quarantined: snap.quarantined_total(),
            epsilon: snap.query_epsilon(),
            shards: snap.num_shards() as u64,
        }
    }

    fn session_snapshot(&self, tenant: u64) -> Option<(u64, Arc<ShardedSnapshot<T, D>>)> {
        let sessions = self.sessions.lock().unwrap();
        sessions
            .get(&tenant)
            .map(|e| (e.epoch, Arc::clone(&e.snapshot)))
    }
}

/// A networked quantile node: a [`ShardedEngine`] served over TCP via
/// the [`crate::proto`] wire protocol. See the module docs for the
/// threading and session model.
pub struct QuantileServer<T: Item, D: BlockDevice> {
    state: Arc<ServerState<T, D>>,
}

/// A running server: its bound address plus the shutdown control.
/// Dropping the handle without calling [`ServerHandle::shutdown`] leaves
/// the acceptor threads running for the life of the process.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The address the server is accepting on (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, unblock the acceptor threads, and join every
    /// thread. In-flight connections are drained: serving threads
    /// notice the flag at their next idle poll (≤ 100 ms) and close.
    pub fn shutdown(self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for _ in &self.workers {
            // Unblock one accept() per worker; errors just mean the
            // listener is already gone.
            let _ = TcpStream::connect(self.addr);
        }
        for w in self.workers {
            let _ = w.join();
        }
        let conns = std::mem::take(&mut *self.conns.lock().unwrap());
        for c in conns {
            let _ = c.join();
        }
    }
}

impl<T: Item, D: BlockDevice> QuantileServer<T, D> {
    /// Wrap an engine for serving. The engine stays fully owned by the
    /// server; remote ingest and `end_time_step` go through the wire.
    pub fn new(engine: ShardedEngine<T, D>) -> Self {
        QuantileServer {
            state: Arc::new(ServerState {
                engine: Mutex::new(engine),
                sessions: Mutex::new(HashMap::new()),
                next_epoch: Mutex::new(0),
            }),
        }
    }

    /// Start serving on `listener` with a small acceptor pool; returns
    /// the handle controlling the server's lifetime.
    pub fn spawn(self, listener: TcpListener) -> io::Result<ServerHandle> {
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let n = worker_count(4).max(1);
        let mut workers = Vec::with_capacity(n);
        for _ in 0..n {
            let listener = listener.try_clone()?;
            let state = Arc::clone(&self.state);
            let shutdown = Arc::clone(&shutdown);
            let conns = Arc::clone(&conns);
            workers.push(std::thread::spawn(move || {
                accept_loop(listener, state, shutdown, conns)
            }));
        }
        Ok(ServerHandle {
            addr,
            shutdown,
            workers,
            conns,
        })
    }
}

fn accept_loop<T: Item, D: BlockDevice>(
    listener: TcpListener,
    state: Arc<ServerState<T, D>>,
    shutdown: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        let conn = listener.accept();
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        match conn {
            Ok((stream, _)) => {
                // Thread-per-connection: acceptors must never serve
                // inline, or concurrent clients would serialize behind
                // (and on a small machine, deadlock against) each other.
                let state = Arc::clone(&state);
                let stop = Arc::clone(&shutdown);
                let handle = std::thread::spawn(move || {
                    let _ = serve_conn(stream, &state, &stop);
                });
                let mut conns = conns.lock().unwrap();
                // Reap finished serving threads so a long-lived server
                // doesn't accumulate handles.
                conns.retain(|c| !c.is_finished());
                conns.push(handle);
            }
            Err(_) => {
                // Transient accept failure (e.g. aborted handshake);
                // keep accepting.
            }
        }
    }
}

/// Per-connection probe caches, keyed by `(tenant, epoch, window)` so a
/// session refresh or a different window never reuses stale-shaped
/// caches. Block caches only ever hold verified decoded blocks, so
/// reuse across requests is purely a hit-rate matter.
type CacheKey = (u64, u64, Option<u64>);

fn serve_conn<T: Item, D: BlockDevice>(
    mut stream: TcpStream,
    state: &ServerState<T, D>,
    shutdown: &AtomicBool,
) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(IDLE_POLL))?;
    stream.set_write_timeout(Some(WRITE_TIMEOUT))?;
    let mut caches: HashMap<CacheKey, Vec<Vec<BlockCache<T>>>> = HashMap::new();
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        // The tight server stall budget (≈ 1 s of IDLE_POLLs) is what
        // lets shutdown join promptly even when a peer hangs mid-frame.
        let raw = match read_frame_bounded(&mut stream, FrameLimits::server()) {
            Ok(FrameRead::Frame(raw)) => raw,
            Ok(FrameRead::Eof) => return Ok(()),
            Ok(FrameRead::Idle) => continue,
            Err(e) => {
                // Torn or oversized frame: tell the peer (best effort)
                // and drop the connection — resync is not attempted.
                let resp: Response<T> = Response::Error {
                    message: format!("bad frame: {e}"),
                };
                let _ = write_frame(&mut stream, &resp.encode());
                return Err(e);
            }
        };
        let resp = match Request::<T>::decode(&raw) {
            Ok(req) => handle_request(req, state, &mut caches),
            Err(e) => {
                // The frame arrived whole but failed validation; the
                // stream itself is still framed, so answer and go on.
                Response::Error {
                    message: format!("bad request: {e}"),
                }
            }
        };
        write_frame(&mut stream, &resp.encode())?;
    }
}

fn handle_request<T: Item, D: BlockDevice>(
    req: Request<T>,
    state: &ServerState<T, D>,
    caches: &mut HashMap<CacheKey, Vec<Vec<BlockCache<T>>>>,
) -> Response<T> {
    match req {
        Request::Ping => Response::Pong,
        Request::Ingest { items } => {
            let weight: u64 = items.iter().map(|&(_, w)| w).sum();
            let count = items.len() as u64;
            state.engine.lock().unwrap().stream_extend_weighted(&items);
            Response::Ingested {
                items: count,
                weight,
            }
        }
        Request::EndStep => match state.engine.lock().unwrap().end_time_step() {
            Ok(reports) => Response::StepEnded {
                shards: reports.len() as u64,
            },
            Err(e) => Response::Error {
                message: format!("end_time_step failed: {e}"),
            },
        },
        Request::OpenSession { tenant, refresh } => state.open_session(tenant, refresh),
        Request::Extract { tenant, window } => {
            let Some((_, snap)) = state.session_snapshot(tenant) else {
                return unknown_tenant(tenant);
            };
            match window {
                None => Response::Extract {
                    total: snap.total_len(),
                    sources: snap.source_views(),
                },
                Some(w) => match snap.window_source_views(w) {
                    Some((sources, total)) => Response::Extract { total, sources },
                    None => Response::WindowUnavailable,
                },
            }
        }
        Request::Probe { tenant, window, zs } => {
            let Some((epoch, snap)) = state.session_snapshot(tenant) else {
                return unknown_tenant(tenant);
            };
            let key = (tenant, epoch, window);
            let set = match caches.entry(key) {
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::hash_map::Entry::Vacant(e) => {
                    let set = match window {
                        None => snap.new_cache_set(),
                        Some(w) => match snap.window_cache_set(w) {
                            Some(set) => set,
                            None => return Response::WindowUnavailable,
                        },
                    };
                    e.insert(set)
                }
            };
            let mut bounds = Vec::with_capacity(zs.len());
            for z in zs {
                let b = match window {
                    None => snap.probe_bounds(z, set),
                    Some(w) => match snap.window_probe_bounds(w, z, set) {
                        Ok(Some(b)) => Ok(b),
                        Ok(None) => return Response::WindowUnavailable,
                        Err(e) => Err(e),
                    },
                };
                match b {
                    Ok(b) => bounds.push(b),
                    Err(e) => {
                        return Response::Error {
                            message: format!("probe failed: {e}"),
                        }
                    }
                }
            }
            Response::Bounds { bounds }
        }
    }
}

fn unknown_tenant<T>(tenant: u64) -> Response<T> {
    Response::Error {
        message: format!("unknown tenant {tenant}: open a session first"),
    }
}
