//! Fleet topology: which replica set serves each shard-range.
//!
//! A [`FleetConfig`] is an ordered list of *replica groups*. Group `g`
//! owns shard-range `g` of the fleet (the coordinator routes ingest to
//! groups exactly as it previously routed to single nodes), and lists
//! its replicas in preference order: the coordinator reads from the
//! first reachable replica and fails over down the list. Every replica
//! of a group must be fed the same data — the coordinator's writes go
//! to all of them — which is what makes failover answers byte-identical
//! to healthy ones.
//!
//! Three ways to build one:
//! * programmatically — [`FleetConfig::new`];
//! * from a spec string (the `HSQ_FLEET` env var, see
//!   [`FleetConfig::from_env`]) — groups separated by `;`, replicas
//!   within a group by `,`: `"a:7001,b:7001;a:7002,b:7002"` is two
//!   groups × two replicas;
//! * from a config file ([`FleetConfig::from_file`]) — one group per
//!   line, `#` comments and blank lines ignored.
//!
//! `strict` mode (the `HSQ_FLEET_STRICT` env var, or
//! [`FleetConfig::strict`]) controls what happens when *every* replica
//! of a group is down: degraded bound-widened answers (default) or a
//! typed refusal.

use std::fs;
use std::io;
use std::path::Path;

fn bad(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidInput, format!("fleet: {msg}"))
}

/// Replica-group topology for a coordinator (see module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetConfig {
    groups: Vec<Vec<String>>,
    strict: bool,
}

impl FleetConfig {
    /// Build from explicit groups: `groups[g]` lists group `g`'s
    /// replica addresses in failover-preference order.
    pub fn new(groups: Vec<Vec<String>>) -> io::Result<FleetConfig> {
        if groups.is_empty() {
            return Err(bad("no replica groups".into()));
        }
        for (g, replicas) in groups.iter().enumerate() {
            if replicas.is_empty() {
                return Err(bad(format!("group {g} has no replicas")));
            }
            for addr in replicas {
                if addr.is_empty() || !addr.contains(':') {
                    return Err(bad(format!(
                        "group {g} has malformed address {addr:?} (want host:port)"
                    )));
                }
            }
        }
        Ok(FleetConfig {
            groups,
            strict: false,
        })
    }

    /// Parse a spec string: groups split on `;`, replicas on `,`,
    /// whitespace trimmed. `"a:1,b:1;a:2,b:2"` = two groups × two
    /// replicas.
    pub fn parse(spec: &str) -> io::Result<FleetConfig> {
        let groups: Vec<Vec<String>> = spec
            .split(';')
            .map(|g| {
                g.split(',')
                    .map(str::trim)
                    .filter(|a| !a.is_empty())
                    .map(String::from)
                    .collect()
            })
            .filter(|g: &Vec<String>| !g.is_empty())
            .collect();
        FleetConfig::new(groups).map_err(|e| bad(format!("spec {spec:?}: {e}")))
    }

    /// Load from a config file: one group per line (replicas separated
    /// by commas or whitespace), `#` comments and blank lines skipped.
    pub fn from_file(path: impl AsRef<Path>) -> io::Result<FleetConfig> {
        let path = path.as_ref();
        let text = fs::read_to_string(path)?;
        let groups: Vec<Vec<String>> = text
            .lines()
            .map(|line| line.split('#').next().unwrap_or("").trim())
            .filter(|line| !line.is_empty())
            .map(|line| {
                line.split(|c: char| c == ',' || c.is_whitespace())
                    .map(str::trim)
                    .filter(|a| !a.is_empty())
                    .map(String::from)
                    .collect()
            })
            .collect();
        FleetConfig::new(groups).map_err(|e| bad(format!("{}: {e}", path.display())))
    }

    /// Read `HSQ_FLEET` (a [`FleetConfig::parse`] spec) and
    /// `HSQ_FLEET_STRICT` (`0`/`false` or `1`/`true`). Returns `None`
    /// when `HSQ_FLEET` is unset or empty. A set-but-garbage value
    /// panics, naming the variable — a typo must not silently run a
    /// different topology.
    pub fn from_env() -> Option<FleetConfig> {
        let spec = std::env::var("HSQ_FLEET").ok()?;
        if spec.trim().is_empty() {
            return None;
        }
        let config = FleetConfig::parse(&spec)
            .unwrap_or_else(|e| panic!("HSQ_FLEET={spec:?} is not a valid fleet spec: {e}"));
        Some(config.strict(strict_from_env()))
    }

    /// Set strict mode: refuse (typed) instead of answering degraded
    /// when a whole replica group is unreachable.
    pub fn strict(mut self, strict: bool) -> FleetConfig {
        self.strict = strict;
        self
    }

    /// The replica groups, in shard-range order.
    pub fn groups(&self) -> &[Vec<String>] {
        &self.groups
    }

    /// Whether degraded answers are refused.
    pub fn is_strict(&self) -> bool {
        self.strict
    }
}

/// Parse `HSQ_FLEET_STRICT`; unset/empty means `false`, garbage panics
/// naming the variable.
pub(crate) fn strict_from_env() -> bool {
    match std::env::var("HSQ_FLEET_STRICT") {
        Err(_) => false,
        Ok(v) if v.trim().is_empty() => false,
        Ok(v) => match v.trim() {
            "0" | "false" | "no" => false,
            "1" | "true" | "yes" => true,
            other => panic!(
                "HSQ_FLEET_STRICT={other:?} is not a valid flag (want 0/false/no or 1/true/yes)"
            ),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_groups_and_replicas() {
        let f = FleetConfig::parse("a:7001,b:7001;a:7002, b:7002").unwrap();
        assert_eq!(
            f.groups(),
            &[
                vec!["a:7001".to_string(), "b:7001".to_string()],
                vec!["a:7002".to_string(), "b:7002".to_string()],
            ]
        );
        assert!(!f.is_strict());
        assert!(f.clone().strict(true).is_strict());
        // Single group, single replica.
        let f = FleetConfig::parse("localhost:9000").unwrap();
        assert_eq!(f.groups().len(), 1);
        assert_eq!(f.groups()[0].len(), 1);
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for spec in ["", ";", ",", "noport", "a:1;noport"] {
            assert!(FleetConfig::parse(spec).is_err(), "accepted {spec:?}");
        }
        // Stray separators are tolerated, like trailing commas.
        assert_eq!(FleetConfig::parse("a:1,,;").unwrap().groups().len(), 1);
        assert!(FleetConfig::new(vec![]).is_err());
        assert!(FleetConfig::new(vec![vec![]]).is_err());
        assert!(FleetConfig::new(vec![vec!["".into()]]).is_err());
    }

    #[test]
    fn file_loading_skips_comments_and_blanks() {
        let dir = std::env::temp_dir().join(format!("hsq-fleet-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fleet.conf");
        fs::write(
            &path,
            "# primary shard-range\na:7001, b:7001\n\na:7002 b:7002  # second range\n",
        )
        .unwrap();
        let f = FleetConfig::from_file(&path).unwrap();
        assert_eq!(
            f.groups(),
            &[
                vec!["a:7001".to_string(), "b:7001".to_string()],
                vec!["a:7002".to_string(), "b:7002".to_string()],
            ]
        );
        fs::write(&path, "# only comments\n").unwrap();
        assert!(FleetConfig::from_file(&path).is_err());
        fs::remove_dir_all(&dir).ok();
    }
}
