//! # hsq-service — quantiles over the network
//!
//! Scales the [`hsq_core`] engine *out*: a fleet of serving nodes, each
//! hosting a [`hsq_core::ShardedEngine`] over its own slice of the
//! data, answers union-wide φ-quantile / rank / window queries driven
//! by a [`Coordinator`] — with the same `ε·m` rank guarantee as a
//! single in-process engine, because rank bounds over disjoint data
//! **add** and the coordinator runs the identical value-space bisection
//! over node-summed bounds.
//!
//! The moving parts:
//!
//! * [`proto`] — a length-prefixed, CRC-framed wire protocol (versioned
//!   frames, validating decoders; torn/truncated/garbage frames surface
//!   as `InvalidData`, never as a wrong answer);
//! * [`QuantileServer`] — a node: engine shards behind a
//!   `std::net::TcpListener`, a thread-pool accept loop (no async
//!   runtime), per-tenant pinned snapshot sessions;
//! * [`Coordinator`] / [`TenantSession`] — the client: opens per-tenant
//!   sessions, fetches each group's summary extract once, rebuilds the
//!   union's combined summary locally (bit-identical to the in-process
//!   build), then answers queries in **~3 batched probe rounds** — each
//!   round one RTT, all groups probed back-to-back;
//! * [`fleet`] / [`transport`] / [`retry`] — fault tolerance: a
//!   [`FleetConfig`] maps each shard-range to an ordered replica set
//!   (writes replicated to all, reads failing over between them), a
//!   [`NetRetryPolicy`] governs attempts/backoff/deadlines with a typed
//!   `Transient`/`NodeDown`/`Fatal` error taxonomy, and a [`Transport`]
//!   seam lets the deterministic [`FaultTransport`] chaos harness
//!   replay seeded failure schedules in CI. When every replica of a
//!   group is down, answers widen rank bounds by exactly the missing
//!   weight (strict mode refuses instead, typed via
//!   [`strict_refusal_weight`]).
//!
//! Repeated queries from one tenant reuse the pinned snapshots and the
//! locally rebuilt summary, so a dashboard's steady state rides the
//! same cached-summary fast path that makes in-process repeated queries
//! ~25× cheaper than cold ones.
//!
//! See the root crate's "Serving quantiles over the network" and
//! "Running a fault-tolerant fleet" quickstarts for end-to-end loopback
//! examples.

#![warn(missing_docs)]

pub mod coordinator;
pub mod fleet;
pub mod proto;
pub mod retry;
pub mod server;
pub mod transport;

pub use coordinator::{Coordinator, ServedQuery, TenantSession};
pub use fleet::FleetConfig;
pub use retry::{
    classify_net, strict_refusal, strict_refusal_weight, NetError, NetErrorKind, NetRetryPolicy,
};
pub use server::{QuantileServer, ServerHandle};
pub use transport::{
    Connector, FaultConnector, FaultPlan, FaultTransport, NetFault, TcpConnector, TcpTransport,
    Transport,
};
