//! The length-prefixed, CRC-framed wire protocol between
//! [`crate::QuantileServer`] and [`crate::Coordinator`].
//!
//! ## Frame layout
//!
//! Every message travels as one frame on the TCP stream:
//!
//! ```text
//! u32 LE        frame length (bytes that follow; bounded by MAX_FRAME_LEN)
//! 4 bytes       magic "HSQS"
//! u64 LE        protocol version
//! u64 LE        message kind
//! ...           kind-specific body
//! u64 LE        CRC-64/ECMA of everything from the magic to here
//! ```
//!
//! Decoding follows the manifest-v4 idiom: a validating constructor per
//! message that checks the magic, the trailing CRC, the version (zero or
//! future versions are rejected), the kind, every count against the
//! bytes actually present (a hostile length can't force an allocation),
//! enum discriminants against their domain, and that the body is
//! consumed exactly — torn, truncated, bit-flipped and garbage frames
//! all surface as [`std::io::ErrorKind::InvalidData`], never as a panic
//! or a silently wrong message.
//!
//! Payload-level invariants are re-validated too: summary extracts go
//! through [`SourceView::try_from_raw`] (sorted values, `lo ≤ hi ≤
//! total`), epsilons through [`hsq_core::validate_epsilon`], and probe
//! bounds must satisfy `lo ≤ hi` — a corrupt frame that *parses* must
//! still not smuggle unsound rank bounds into a bisection.

use std::io::{self, Read, Write};

use hsq_core::SourceView;
use hsq_storage::{crc64, Item};

/// Frame magic: **HSQ** **S**ervice.
pub const MAGIC: &[u8; 4] = b"HSQS";
/// Current protocol version.
pub const VERSION: u64 = 1;
/// Upper bound on one frame's length (excluding the u32 prefix): big
/// enough for any realistic summary extract or ingest batch, small
/// enough that a hostile length prefix cannot balloon memory.
pub const MAX_FRAME_LEN: usize = 1 << 26; // 64 MiB

/// A request from coordinator to node.
#[derive(Clone, Debug, PartialEq)]
pub enum Request<T> {
    /// Liveness / handshake round-trip.
    Ping,
    /// Weighted stream ingest into the node's engine shards.
    Ingest {
        /// `(item, weight)` pairs, routed by the node's shard hash.
        items: Vec<(T, u64)>,
    },
    /// Archive the node's current stream into a time-step partition.
    EndStep,
    /// Open (or reuse) the per-tenant session: pins a snapshot epoch on
    /// the node so the tenant's queries hit the cached-summary path.
    OpenSession {
        /// Tenant id; sessions are keyed by it, server-side.
        tenant: u64,
        /// Force a fresh snapshot (advancing the epoch) instead of
        /// reusing the tenant's current one.
        refresh: bool,
    },
    /// Fetch the session snapshot's summary extract (the per-source
    /// views the combined summary is built from), full-union or
    /// windowed.
    Extract {
        /// Tenant id of an open session.
        tenant: u64,
        /// `None` = full union; `Some(w)` = newest `w` steps.
        window: Option<u64>,
    },
    /// One batched probe round: rank bounds for each `z`, summed over
    /// the node's shards.
    Probe {
        /// Tenant id of an open session.
        tenant: u64,
        /// `None` = full union; `Some(w)` = windowed probe.
        window: Option<u64>,
        /// Probe values for this round.
        zs: Vec<T>,
    },
}

/// A response from node to coordinator.
#[derive(Clone, Debug, PartialEq)]
pub enum Response<T> {
    /// Reply to [`Request::Ping`].
    Pong,
    /// Reply to [`Request::Ingest`].
    Ingested {
        /// Items ingested.
        items: u64,
        /// Total weight ingested.
        weight: u64,
    },
    /// Reply to [`Request::EndStep`].
    StepEnded {
        /// Number of engine shards that archived the step.
        shards: u64,
    },
    /// Reply to [`Request::OpenSession`]: the pinned snapshot's vitals.
    Session {
        /// Snapshot epoch (bumped by refresh; stable across reuse).
        epoch: u64,
        /// Total size `N` at snapshot time.
        total: u64,
        /// Stream weight `m` at snapshot time (the `ε·m` denominator).
        stream_weight: u64,
        /// Quarantined mass excluded from answers (bound widening).
        quarantined: u64,
        /// The node's accurate-response error parameter (`4ε₂`).
        epsilon: f64,
        /// Engine shards hosted by the node.
        shards: u64,
    },
    /// Reply to [`Request::Extract`]: per-source views plus the
    /// (windowed) total.
    Extract {
        /// Total size over the extract's scope.
        total: u64,
        /// Per-source views, in the node's canonical source order.
        sources: Vec<SourceView<T>>,
    },
    /// Reply to a windowed [`Request::Extract`]/[`Request::Probe`] when
    /// the window misaligns with partition boundaries on some shard.
    WindowUnavailable,
    /// Reply to [`Request::Probe`]: one `(lo, hi)` per probed `z`.
    Bounds {
        /// Summed rank bounds over the node's shards, `lo ≤ hi`.
        bounds: Vec<(u64, u64)>,
    },
    /// Request-level failure (unknown tenant, engine I/O error, ...).
    Error {
        /// Human-readable cause.
        message: String,
    },
}

fn corrupt(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("proto: {msg}"))
}

// ---------------------------------------------------------------------
// Frame body writer/reader (manifest idiom).

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn frame(kind: u64) -> Writer {
        let mut w = Writer {
            buf: Vec::with_capacity(64),
        };
        w.buf.extend_from_slice(MAGIC);
        w.u64(VERSION);
        w.u64(kind);
        w
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn item<T: Item>(&mut self, v: T) {
        let old = self.buf.len();
        self.buf.resize(old + T::ENCODED_LEN, 0);
        v.encode(&mut self.buf[old..]);
    }

    fn bytes(&mut self, b: &[u8]) {
        self.u64(b.len() as u64);
        self.buf.extend_from_slice(b);
    }

    fn seal(mut self) -> Vec<u8> {
        let crc = crc64(&self.buf);
        self.u64(crc);
        assert!(
            self.buf.len() <= MAX_FRAME_LEN,
            "frame exceeds MAX_FRAME_LEN"
        );
        self.buf
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u64(&mut self) -> io::Result<u64> {
        if self.pos + 8 > self.buf.len() {
            return Err(corrupt("truncated frame body"));
        }
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.buf[self.pos..self.pos + 8]);
        self.pos += 8;
        Ok(u64::from_le_bytes(b))
    }

    fn flag(&mut self, what: &str) -> io::Result<bool> {
        match self.u64()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(corrupt(what)),
        }
    }

    fn item<T: Item>(&mut self) -> io::Result<T> {
        if self.pos + T::ENCODED_LEN > self.buf.len() {
            return Err(corrupt("truncated frame body"));
        }
        let v = T::decode(&self.buf[self.pos..self.pos + T::ENCODED_LEN]);
        self.pos += T::ENCODED_LEN;
        Ok(v)
    }

    /// A count of records `entry_len` bytes each: bounded by the bytes
    /// actually remaining, so a hostile count cannot force a huge
    /// allocation before the (failing) reads would catch it.
    fn count(&mut self, entry_len: usize) -> io::Result<usize> {
        let n = self.u64()?;
        let remaining = (self.buf.len() - self.pos) as u64;
        if entry_len == 0 || n > remaining / entry_len.max(1) as u64 {
            return Err(corrupt("count exceeds frame size"));
        }
        Ok(n as usize)
    }

    fn bytes(&mut self) -> io::Result<&'a [u8]> {
        let n = self.count(1)?;
        let b = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(b)
    }

    fn finish(self) -> io::Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(corrupt("trailing bytes after message body"))
        }
    }
}

/// Verify magic + CRC + version and return `(kind, body reader)`.
fn open_frame(raw: &[u8]) -> io::Result<(u64, Reader<'_>)> {
    if raw.len() < MAGIC.len() + 8 + 8 + 8 {
        return Err(corrupt("frame too short"));
    }
    if &raw[..MAGIC.len()] != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let body_end = raw.len() - 8;
    let mut crc_bytes = [0u8; 8];
    crc_bytes.copy_from_slice(&raw[body_end..]);
    if crc64(&raw[..body_end]) != u64::from_le_bytes(crc_bytes) {
        return Err(corrupt("frame checksum mismatch"));
    }
    let mut r = Reader {
        buf: &raw[..body_end],
        pos: MAGIC.len(),
    };
    let version = r.u64()?;
    if version == 0 || version > VERSION {
        return Err(corrupt("unsupported protocol version"));
    }
    let kind = r.u64()?;
    Ok((kind, r))
}

const K_PING: u64 = 1;
const K_INGEST: u64 = 2;
const K_END_STEP: u64 = 3;
const K_OPEN_SESSION: u64 = 4;
const K_EXTRACT: u64 = 5;
const K_PROBE: u64 = 6;

const K_PONG: u64 = 101;
const K_INGESTED: u64 = 102;
const K_STEP_ENDED: u64 = 103;
const K_SESSION: u64 = 104;
const K_EXTRACT_RESP: u64 = 105;
const K_WINDOW_UNAVAILABLE: u64 = 106;
const K_BOUNDS: u64 = 107;
const K_ERROR: u64 = 108;

fn write_window(w: &mut Writer, window: Option<u64>) {
    match window {
        Some(v) => {
            w.u64(1);
            w.u64(v);
        }
        None => {
            w.u64(0);
            w.u64(0);
        }
    }
}

fn read_window(r: &mut Reader<'_>) -> io::Result<Option<u64>> {
    let has = r.flag("window flag out of domain")?;
    let v = r.u64()?;
    Ok(if has { Some(v) } else { None })
}

impl<T: Item> Request<T> {
    /// Encode into a sealed frame (magic + version + kind + body + CRC).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Request::Ping => Writer::frame(K_PING).seal(),
            Request::Ingest { items } => {
                let mut w = Writer::frame(K_INGEST);
                w.u64(items.len() as u64);
                for &(v, weight) in items {
                    w.item(v);
                    w.u64(weight);
                }
                w.seal()
            }
            Request::EndStep => Writer::frame(K_END_STEP).seal(),
            Request::OpenSession { tenant, refresh } => {
                let mut w = Writer::frame(K_OPEN_SESSION);
                w.u64(*tenant);
                w.u64(u64::from(*refresh));
                w.seal()
            }
            Request::Extract { tenant, window } => {
                let mut w = Writer::frame(K_EXTRACT);
                w.u64(*tenant);
                write_window(&mut w, *window);
                w.seal()
            }
            Request::Probe { tenant, window, zs } => {
                let mut w = Writer::frame(K_PROBE);
                w.u64(*tenant);
                write_window(&mut w, *window);
                w.u64(zs.len() as u64);
                for &z in zs {
                    w.item(z);
                }
                w.seal()
            }
        }
    }

    /// Validating decode of a received frame.
    pub fn decode(raw: &[u8]) -> io::Result<Request<T>> {
        let (kind, mut r) = open_frame(raw)?;
        let req = match kind {
            K_PING => Request::Ping,
            K_INGEST => {
                let n = r.count(T::ENCODED_LEN + 8)?;
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    let v = r.item()?;
                    let weight = r.u64()?;
                    items.push((v, weight));
                }
                Request::Ingest { items }
            }
            K_END_STEP => Request::EndStep,
            K_OPEN_SESSION => Request::OpenSession {
                tenant: r.u64()?,
                refresh: r.flag("refresh flag out of domain")?,
            },
            K_EXTRACT => Request::Extract {
                tenant: r.u64()?,
                window: read_window(&mut r)?,
            },
            K_PROBE => {
                let tenant = r.u64()?;
                let window = read_window(&mut r)?;
                let n = r.count(T::ENCODED_LEN)?;
                let mut zs = Vec::with_capacity(n);
                for _ in 0..n {
                    zs.push(r.item()?);
                }
                Request::Probe { tenant, window, zs }
            }
            _ => return Err(corrupt("unknown request kind")),
        };
        r.finish()?;
        Ok(req)
    }
}

impl<T: Item> Response<T> {
    /// Encode into a sealed frame (magic + version + kind + body + CRC).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::Pong => Writer::frame(K_PONG).seal(),
            Response::Ingested { items, weight } => {
                let mut w = Writer::frame(K_INGESTED);
                w.u64(*items);
                w.u64(*weight);
                w.seal()
            }
            Response::StepEnded { shards } => {
                let mut w = Writer::frame(K_STEP_ENDED);
                w.u64(*shards);
                w.seal()
            }
            Response::Session {
                epoch,
                total,
                stream_weight,
                quarantined,
                epsilon,
                shards,
            } => {
                let mut w = Writer::frame(K_SESSION);
                w.u64(*epoch);
                w.u64(*total);
                w.u64(*stream_weight);
                w.u64(*quarantined);
                w.u64(epsilon.to_bits());
                w.u64(*shards);
                w.seal()
            }
            Response::Extract { total, sources } => {
                let mut w = Writer::frame(K_EXTRACT_RESP);
                w.u64(*total);
                w.u64(sources.len() as u64);
                for s in sources {
                    w.u64(s.total());
                    w.u64(s.entries().len() as u64);
                    for &(v, lo, hi) in s.entries() {
                        w.item(v);
                        w.u64(lo);
                        w.u64(hi);
                    }
                }
                w.seal()
            }
            Response::WindowUnavailable => Writer::frame(K_WINDOW_UNAVAILABLE).seal(),
            Response::Bounds { bounds } => {
                let mut w = Writer::frame(K_BOUNDS);
                w.u64(bounds.len() as u64);
                for &(lo, hi) in bounds {
                    w.u64(lo);
                    w.u64(hi);
                }
                w.seal()
            }
            Response::Error { message } => {
                let mut w = Writer::frame(K_ERROR);
                w.bytes(message.as_bytes());
                w.seal()
            }
        }
    }

    /// Validating decode of a received frame. Payload invariants are
    /// checked too: extracts re-validate through
    /// [`SourceView::try_from_raw`], epsilons through
    /// [`hsq_core::validate_epsilon`], probe bounds must be ordered.
    pub fn decode(raw: &[u8]) -> io::Result<Response<T>> {
        let (kind, mut r) = open_frame(raw)?;
        let resp = match kind {
            K_PONG => Response::Pong,
            K_INGESTED => Response::Ingested {
                items: r.u64()?,
                weight: r.u64()?,
            },
            K_STEP_ENDED => Response::StepEnded { shards: r.u64()? },
            K_SESSION => {
                let epoch = r.u64()?;
                let total = r.u64()?;
                let stream_weight = r.u64()?;
                let quarantined = r.u64()?;
                let epsilon = hsq_core::validate_epsilon(f64::from_bits(r.u64()?))
                    .map_err(|e| corrupt(&e.to_string()))?;
                let shards = r.u64()?;
                if shards == 0 {
                    return Err(corrupt("session with zero shards"));
                }
                Response::Session {
                    epoch,
                    total,
                    stream_weight,
                    quarantined,
                    epsilon,
                    shards,
                }
            }
            K_EXTRACT_RESP => {
                let total = r.u64()?;
                // Each source costs at least 16 bytes (total + count).
                let n = r.count(16)?;
                let mut sources = Vec::with_capacity(n);
                for _ in 0..n {
                    let src_total = r.u64()?;
                    let entries_n = r.count(T::ENCODED_LEN + 16)?;
                    let mut entries = Vec::with_capacity(entries_n);
                    for _ in 0..entries_n {
                        let v: T = r.item()?;
                        let lo = r.u64()?;
                        let hi = r.u64()?;
                        entries.push((v, lo, hi));
                    }
                    sources.push(SourceView::try_from_raw(entries, src_total).map_err(corrupt)?);
                }
                Response::Extract { total, sources }
            }
            K_WINDOW_UNAVAILABLE => Response::WindowUnavailable,
            K_BOUNDS => {
                let n = r.count(16)?;
                let mut bounds = Vec::with_capacity(n);
                for _ in 0..n {
                    let lo = r.u64()?;
                    let hi = r.u64()?;
                    if lo > hi {
                        return Err(corrupt("probe bounds out of order"));
                    }
                    bounds.push((lo, hi));
                }
                Response::Bounds { bounds }
            }
            K_ERROR => {
                let message = std::str::from_utf8(r.bytes()?)
                    .map_err(|_| corrupt("error message not utf-8"))?
                    .to_string();
                Response::Error { message }
            }
            _ => return Err(corrupt("unknown response kind")),
        };
        r.finish()?;
        Ok(resp)
    }
}

// ---------------------------------------------------------------------
// Stream framing.

/// Outcome of one non-blocking-ish frame read on a server connection.
#[derive(Debug)]
pub enum FrameRead {
    /// A whole frame arrived.
    Frame(Vec<u8>),
    /// The peer closed the connection cleanly (EOF at a frame boundary).
    Eof,
    /// The read timed out before the frame *started* (idle connection —
    /// the serve loop uses this to poll its shutdown flag).
    Idle,
}

/// Write one frame: `u32 LE` length prefix, then the sealed frame, in a
/// single buffered write (one packet on loopback with `TCP_NODELAY`).
pub fn write_frame(w: &mut impl Write, frame: &[u8]) -> io::Result<()> {
    debug_assert!(frame.len() <= MAX_FRAME_LEN);
    let mut buf = Vec::with_capacity(4 + frame.len());
    buf.extend_from_slice(&(frame.len() as u32).to_le_bytes());
    buf.extend_from_slice(frame);
    w.write_all(&buf)?;
    w.flush()
}

/// Blocking frame read for the coordinator side: a response is expected,
/// so EOF (clean or torn) is an error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    match read_frame_or_eof(r)? {
        FrameRead::Frame(f) => Ok(f),
        FrameRead::Eof => Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "proto: connection closed while awaiting a response",
        )),
        FrameRead::Idle => unreachable!("Idle only arises under a read timeout"),
    }
}

/// Limits on one bounded frame read ([`read_frame_bounded`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameLimits {
    /// Reject a length prefix above this *before* allocating anything —
    /// a hostile 4 GiB prefix costs four bytes of reading, not an
    /// allocation. At most [`MAX_FRAME_LEN`] (the encoder's own cap).
    pub max_len: usize,
    /// How many timed-out reads to tolerate *inside* a frame (after the
    /// first length byte) before declaring it torn. Each poll lasts one
    /// socket read-timeout, so `stall_polls × SO_RCVTIMEO` bounds how
    /// long a half-sent frame can pin the reader.
    pub stall_polls: u32,
}

impl FrameLimits {
    /// Coordinator-side defaults: full `MAX_FRAME_LEN`, a generous
    /// (but finite) stall budget.
    pub const fn standard() -> Self {
        FrameLimits {
            max_len: MAX_FRAME_LEN,
            stall_polls: 600,
        }
    }

    /// Server-side defaults: a tight stall budget so a hung peer
    /// mid-frame releases its connection thread after ~1 s (10 polls of
    /// the server's 100 ms idle timeout) instead of pinning it forever.
    pub const fn server() -> Self {
        FrameLimits {
            max_len: MAX_FRAME_LEN,
            stall_polls: 10,
        }
    }
}

impl Default for FrameLimits {
    fn default() -> Self {
        FrameLimits::standard()
    }
}

/// Frame read for the server side with [`FrameLimits::standard`]
/// limits; see [`read_frame_bounded`].
pub fn read_frame_or_eof(r: &mut impl Read) -> io::Result<FrameRead> {
    read_frame_bounded(r, FrameLimits::standard())
}

/// Chunk size for incremental frame-body allocation: memory is
/// committed as bytes actually arrive, never on the peer's say-so.
const BODY_CHUNK: usize = 64 * 1024;

/// Frame read distinguishing a clean EOF (peer done), an idle timeout
/// before the first length byte (poll shutdown and retry), and a torn
/// frame (error). A timeout that strikes *inside* a frame consumes one
/// unit of `limits.stall_polls`; exhausting the budget is a torn frame —
/// the length prefix promised bytes that never came. A declared length
/// above `limits.max_len` is rejected before any body allocation.
pub fn read_frame_bounded(r: &mut impl Read, limits: FrameLimits) -> io::Result<FrameRead> {
    let mut len_buf = [0u8; 4];
    let mut got = 0usize;
    let mut stalls = 0u32;
    while got < 4 {
        match r.read(&mut len_buf[got..]) {
            Ok(0) if got == 0 => return Ok(FrameRead::Eof),
            Ok(0) => return Err(corrupt("torn frame length prefix")),
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if got == 0 {
                    return Ok(FrameRead::Idle);
                }
                stalls += 1;
                if stalls >= limits.stall_polls {
                    return Err(corrupt("peer stalled mid length prefix"));
                }
            }
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > limits.max_len.min(MAX_FRAME_LEN) {
        return Err(corrupt("oversized frame"));
    }
    // Grow the body buffer chunk-by-chunk as bytes arrive instead of
    // trusting `len` with one up-front allocation.
    let mut buf: Vec<u8> = Vec::new();
    let mut filled = 0usize;
    while filled < len {
        if filled == buf.len() {
            let grow = (len - filled).min(BODY_CHUNK);
            buf.resize(filled + grow, 0);
        }
        match r.read(&mut buf[filled..]) {
            Ok(0) => return Err(corrupt("torn frame body")),
            Ok(n) => {
                filled += n;
                stalls = 0;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                stalls += 1;
                if stalls >= limits.stall_polls {
                    return Err(corrupt("peer stalled mid frame body"));
                }
            }
            Err(e) => return Err(e),
        }
    }
    buf.truncate(len);
    Ok(FrameRead::Frame(buf))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_requests() -> Vec<Request<u64>> {
        vec![
            Request::Ping,
            Request::Ingest {
                items: vec![(5, 1), (9, 3), (u64::MAX, 7)],
            },
            Request::EndStep,
            Request::OpenSession {
                tenant: 42,
                refresh: true,
            },
            Request::Extract {
                tenant: 42,
                window: None,
            },
            Request::Extract {
                tenant: 7,
                window: Some(3),
            },
            Request::Probe {
                tenant: 42,
                window: Some(2),
                zs: vec![1, 2, 3, u64::MAX],
            },
            Request::Probe {
                tenant: 0,
                window: None,
                zs: vec![],
            },
        ]
    }

    fn sample_responses() -> Vec<Response<u64>> {
        vec![
            Response::Pong,
            Response::Ingested {
                items: 3,
                weight: 11,
            },
            Response::StepEnded { shards: 8 },
            Response::Session {
                epoch: 2,
                total: 1000,
                stream_weight: 100,
                quarantined: 0,
                epsilon: 0.05,
                shards: 4,
            },
            Response::Extract {
                total: 30,
                sources: vec![
                    SourceView::try_from_raw(vec![(1u64, 1, 1), (9, 10, 10)], 10).unwrap(),
                    SourceView::try_from_raw(vec![(4u64, 2, 5)], 20).unwrap(),
                ],
            },
            Response::WindowUnavailable,
            Response::Bounds {
                bounds: vec![(0, 5), (7, 7)],
            },
            Response::Error {
                message: "unknown tenant 9".into(),
            },
        ]
    }

    #[test]
    fn request_roundtrip() {
        for req in sample_requests() {
            let raw = req.encode();
            assert_eq!(Request::<u64>::decode(&raw).unwrap(), req);
        }
    }

    #[test]
    fn response_roundtrip() {
        for resp in sample_responses() {
            let raw = resp.encode();
            assert_eq!(Response::<u64>::decode(&raw).unwrap(), resp);
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        for req in sample_requests() {
            let raw = req.encode();
            for cut in 0..raw.len() {
                assert!(
                    Request::<u64>::decode(&raw[..cut]).is_err(),
                    "truncation at {cut}/{} accepted",
                    raw.len()
                );
            }
        }
        for resp in sample_responses() {
            let raw = resp.encode();
            for cut in 0..raw.len() {
                assert!(
                    Response::<u64>::decode(&raw[..cut]).is_err(),
                    "truncation at {cut}/{} accepted",
                    raw.len()
                );
            }
        }
    }

    #[test]
    fn every_bit_flip_is_rejected_or_reencodes_differently() {
        // A single flipped bit anywhere must be caught by the CRC: the
        // decode either errors or (never) returns the original message.
        for resp in sample_responses() {
            let raw = resp.encode();
            for byte in 0..raw.len() {
                for bit in 0..8 {
                    let mut bad = raw.clone();
                    bad[byte] ^= 1 << bit;
                    assert!(
                        Response::<u64>::decode(&bad).is_err(),
                        "bit flip at {byte}.{bit} accepted"
                    );
                }
            }
        }
        for req in sample_requests() {
            let raw = req.encode();
            for byte in 0..raw.len() {
                for bit in 0..8 {
                    let mut bad = raw.clone();
                    bad[byte] ^= 1 << bit;
                    assert!(
                        Request::<u64>::decode(&bad).is_err(),
                        "bit flip at {byte}.{bit} accepted"
                    );
                }
            }
        }
    }

    #[test]
    fn garbage_frames_are_rejected() {
        // Deterministic pseudo-random garbage of assorted lengths.
        let mut rng = 0x243F_6A88_85A3_08D3u64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for len in [0usize, 1, 3, 11, 28, 64, 257, 4096] {
            let garbage: Vec<u8> = (0..len).map(|_| next() as u8).collect();
            assert!(Request::<u64>::decode(&garbage).is_err());
            assert!(Response::<u64>::decode(&garbage).is_err());
        }
    }

    /// Re-seal a frame body after tampering, so the CRC is valid and the
    /// *semantic* validation has to do the rejecting.
    fn reseal(raw: &[u8], edit: impl FnOnce(&mut Vec<u8>)) -> Vec<u8> {
        let mut body = raw[..raw.len() - 8].to_vec();
        edit(&mut body);
        let crc = crc64(&body);
        body.extend_from_slice(&crc.to_le_bytes());
        body
    }

    #[test]
    fn semantic_validation_behind_a_valid_crc() {
        // Future version.
        let raw = Request::<u64>::encode(&Request::Ping);
        let bad = reseal(&raw, |b| b[4..12].copy_from_slice(&2u64.to_le_bytes()));
        assert!(Request::<u64>::decode(&bad).is_err());
        // Version zero.
        let bad = reseal(&raw, |b| b[4..12].copy_from_slice(&0u64.to_le_bytes()));
        assert!(Request::<u64>::decode(&bad).is_err());
        // Unknown kind.
        let bad = reseal(&raw, |b| b[12..20].copy_from_slice(&99u64.to_le_bytes()));
        assert!(Request::<u64>::decode(&bad).is_err());
        // Hostile count: claims 2^40 probe values in a tiny frame.
        let raw = Request::<u64>::encode(&Request::Probe {
            tenant: 1,
            window: None,
            zs: vec![7],
        });
        let count_at = raw.len() - 8 - 8 - 8; // before the one item + crc
        let bad = reseal(&raw, |b| {
            b[count_at..count_at + 8].copy_from_slice(&(1u64 << 40).to_le_bytes())
        });
        assert!(Request::<u64>::decode(&bad).is_err());
        // Out-of-domain flag.
        let raw = Request::<u64>::encode(&Request::OpenSession {
            tenant: 1,
            refresh: false,
        });
        let flag_at = raw.len() - 8 - 8;
        let bad = reseal(&raw, |b| {
            b[flag_at..flag_at + 8].copy_from_slice(&7u64.to_le_bytes())
        });
        assert!(Request::<u64>::decode(&bad).is_err());
        // Trailing bytes after a complete body.
        let raw = Request::<u64>::encode(&Request::Ping);
        let bad = reseal(&raw, |b| b.extend_from_slice(&[0u8; 8]));
        assert!(Request::<u64>::decode(&bad).is_err());
    }

    #[test]
    fn unsound_payloads_are_rejected() {
        // Unsorted extract entries survive the CRC but not try_from_raw.
        let good = Response::<u64>::encode(&Response::Extract {
            total: 10,
            sources: vec![SourceView::try_from_raw(vec![(3u64, 1, 2), (9, 3, 4)], 10).unwrap()],
        });
        // entries start after: magic(4) ver(8) kind(8) total(8) nsrc(8)
        // src_total(8) count(8); first entry value is 8 bytes BE.
        let first_value_at = 4 + 8 + 8 + 8 + 8 + 8 + 8;
        let bad = reseal(&good, |b| {
            b[first_value_at..first_value_at + 8].copy_from_slice(&u64::MAX.to_be_bytes())
        });
        assert!(Response::<u64>::decode(&bad).is_err());
        // lo > hi probe bounds.
        let good = Response::<u64>::encode(&Response::Bounds {
            bounds: vec![(5, 5)],
        });
        let lo_at = 4 + 8 + 8 + 8;
        let bad = reseal(&good, |b| {
            b[lo_at..lo_at + 8].copy_from_slice(&9u64.to_le_bytes())
        });
        assert!(Response::<u64>::decode(&bad).is_err());
        // Garbage epsilon bits (NaN) behind a valid CRC.
        let good = Response::<u64>::encode(&Response::Session {
            epoch: 1,
            total: 10,
            stream_weight: 5,
            quarantined: 0,
            epsilon: 0.1,
            shards: 1,
        });
        let eps_at = 4 + 8 + 8 + 8 + 8 + 8 + 8;
        let bad = reseal(&good, |b| {
            b[eps_at..eps_at + 8].copy_from_slice(&f64::NAN.to_bits().to_le_bytes())
        });
        assert!(Response::<u64>::decode(&bad).is_err());
    }

    #[test]
    fn stream_framing_roundtrip_and_torn_tail() {
        let frames: Vec<Vec<u8>> = sample_requests().iter().map(|r| r.encode()).collect();
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).unwrap();
        }
        let mut cursor = io::Cursor::new(&wire[..]);
        for f in &frames {
            assert_eq!(&read_frame(&mut cursor).unwrap(), f);
        }
        // Clean EOF at a frame boundary.
        match read_frame_or_eof(&mut cursor).unwrap() {
            FrameRead::Eof => {}
            other => panic!("expected Eof, got {other:?}"),
        }
        // A torn tail (every proper prefix of the wire) errors or EOFs,
        // never yields a phantom frame beyond those fully present.
        for cut in 1..wire.len() {
            let mut c = io::Cursor::new(&wire[..cut]);
            let mut seen = 0usize;
            loop {
                match read_frame_or_eof(&mut c) {
                    Ok(FrameRead::Frame(f)) => {
                        assert_eq!(&f, &frames[seen], "phantom frame from torn wire");
                        seen += 1;
                    }
                    Ok(FrameRead::Eof) | Err(_) => break,
                    Ok(FrameRead::Idle) => unreachable!(),
                }
            }
            assert!(seen <= frames.len());
        }
        // An oversized length prefix is rejected outright.
        let mut huge = Vec::new();
        huge.extend_from_slice(&(MAX_FRAME_LEN as u32 + 1).to_le_bytes());
        huge.extend_from_slice(&[0u8; 16]);
        assert!(read_frame(&mut io::Cursor::new(&huge[..])).is_err());
    }

    /// A reader that hands out its bytes one at a time, then reports
    /// `WouldBlock` forever — a peer that went quiet mid-frame.
    struct StalledPeer {
        data: Vec<u8>,
        pos: usize,
        reads: usize,
    }

    impl Read for StalledPeer {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.reads += 1;
            if self.pos < self.data.len() && !buf.is_empty() {
                buf[0] = self.data[self.pos];
                self.pos += 1;
                Ok(1)
            } else {
                Err(io::Error::new(io::ErrorKind::WouldBlock, "stalled"))
            }
        }
    }

    #[test]
    fn hostile_length_prefix_is_rejected_before_allocating() {
        // A ~4 GiB declared length: the reader must reject after the
        // four prefix bytes, without ever asking the peer for a body
        // byte (which is the observable proxy for "no allocation was
        // sized by the hostile prefix").
        let mut peer = StalledPeer {
            data: u32::MAX.to_le_bytes().to_vec(),
            pos: 0,
            reads: 0,
        };
        let err = read_frame_bounded(&mut peer, FrameLimits::standard()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert_eq!(peer.pos, 4, "only the prefix was consumed");

        // The cap is configurable below MAX_FRAME_LEN...
        let tight = FrameLimits {
            max_len: 1024,
            stall_polls: 4,
        };
        let mut wire = Vec::new();
        wire.extend_from_slice(&2048u32.to_le_bytes());
        wire.extend_from_slice(&[0u8; 2048]);
        assert!(read_frame_bounded(&mut io::Cursor::new(&wire[..]), tight).is_err());
        // ...and cannot be raised above it.
        let loose = FrameLimits {
            max_len: usize::MAX,
            stall_polls: 4,
        };
        let mut huge = Vec::new();
        huge.extend_from_slice(&(MAX_FRAME_LEN as u32 + 1).to_le_bytes());
        assert!(read_frame_bounded(&mut io::Cursor::new(&huge[..]), loose).is_err());

        // A frame within the cap still round-trips through the bounded
        // reader, including bodies larger than one allocation chunk.
        let big = Request::<u64>::encode(&Request::Ingest {
            items: (0..16384u64).map(|v| (v, 1)).collect(),
        });
        assert!(big.len() > super::BODY_CHUNK);
        let mut wire = Vec::new();
        write_frame(&mut wire, &big).unwrap();
        match read_frame_bounded(&mut io::Cursor::new(&wire[..]), FrameLimits::standard()).unwrap()
        {
            FrameRead::Frame(f) => assert_eq!(f, big),
            other => panic!("expected frame, got {other:?}"),
        }
    }

    #[test]
    fn mid_frame_stall_budget_is_finite() {
        // Half a frame then silence: the bounded reader gives up after
        // `stall_polls` timed-out reads instead of looping forever.
        let frame = Request::<u64>::encode(&Request::Ping);
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame).unwrap();
        let half = 4 + frame.len() / 2;
        let limits = FrameLimits {
            max_len: MAX_FRAME_LEN,
            stall_polls: 5,
        };
        let mut peer = StalledPeer {
            data: wire[..half].to_vec(),
            pos: 0,
            reads: 0,
        };
        let err = read_frame_bounded(&mut peer, limits).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(
            peer.reads <= half + 5 + 1,
            "reader kept polling past its stall budget ({} reads)",
            peer.reads
        );
        // A stall before any prefix byte is Idle, not an error — that is
        // the server's shutdown-poll signal.
        let mut quiet = StalledPeer {
            data: Vec::new(),
            pos: 0,
            reads: 0,
        };
        match read_frame_bounded(&mut quiet, limits).unwrap() {
            FrameRead::Idle => {}
            other => panic!("expected Idle, got {other:?}"),
        }
        // And a stall budget applies to a torn length prefix too.
        let mut torn = StalledPeer {
            data: wire[..2].to_vec(),
            pos: 0,
            reads: 0,
        };
        assert!(read_frame_bounded(&mut torn, limits).is_err());
    }
}
