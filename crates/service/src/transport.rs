//! The transport seam under the coordinator, and its deterministic
//! fault-injecting double.
//!
//! [`Connector`] establishes a [`Transport`] — one framed, ordered,
//! deadline-bounded connection to a replica. Production code uses
//! [`TcpConnector`]/[`TcpTransport`] (real sockets with
//! `SO_RCVTIMEO`/`SO_SNDTIMEO` deadlines from the
//! [`NetRetryPolicy`](crate::NetRetryPolicy)); the chaos harness wraps
//! any connector in a [`FaultConnector`] driven by a seeded
//! [`FaultPlan`] — the network sibling of the storage layer's
//! `FaultDevice`: faults are *armed against operation counters*, not
//! timers, so a schedule replays bit-identically and a sweep can place
//! each fault at every op index a clean run performs.
//!
//! Fault vocabulary ([`NetFault`]):
//! * `DropConn { op }` — the connection resets at global op `op`.
//! * `Delay { op }` — op `op` exceeds its deadline (surfaces as
//!   `TimedOut` immediately; determinism forbids real sleeping).
//! * `TornFrame { recv }` — the `recv`-th frame receive (its own
//!   counter) yields a truncated frame, as a half-delivered TCP segment
//!   would.
//! * `Partition { replicas, from, to }` — ops in `from..to` against the
//!   listed replica indices fail as unreachable (connects refused,
//!   established-connection I/O reset).
//! * `SlowNode { replica, period }` — every `period`-th global op
//!   against one replica times out: a node that is up but drowning.
//!
//! Every fault that fires also kills the transport it fired on
//! (subsequent ops fail), because a real timeout or reset leaves the
//! framing unrecoverable — the coordinator must reconnect, exactly as
//! it would in production.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::proto::{self, FrameLimits, FrameRead};

/// One framed, ordered connection to a replica.
pub trait Transport: Send {
    /// Send one sealed frame.
    fn send_frame(&mut self, frame: &[u8]) -> io::Result<()>;
    /// Receive one frame; a response is always expected, so EOF and
    /// deadline expiry are errors.
    fn recv_frame(&mut self) -> io::Result<Vec<u8>>;
}

/// Establishes [`Transport`]s by replica address.
pub trait Connector: Send + Sync {
    /// Connect to `addr` (a `host:port` string).
    fn connect(&self, addr: &str) -> io::Result<Box<dyn Transport>>;
}

// ---------------------------------------------------------------------
// Real sockets.

/// [`Connector`] for real TCP sockets with per-op deadlines.
#[derive(Debug, Clone)]
pub struct TcpConnector {
    /// Deadline for connection establishment.
    pub connect_timeout: Duration,
    /// `SO_RCVTIMEO`/`SO_SNDTIMEO` applied to every connection.
    pub op_timeout: Duration,
    /// Frame-length cap for received frames.
    pub max_frame_len: usize,
}

impl TcpConnector {
    /// Connector configured from a retry policy's deadlines.
    pub fn from_policy(policy: &crate::NetRetryPolicy) -> TcpConnector {
        TcpConnector {
            connect_timeout: policy.connect_timeout,
            op_timeout: policy.op_timeout,
            max_frame_len: proto::MAX_FRAME_LEN,
        }
    }
}

impl Connector for TcpConnector {
    fn connect(&self, addr: &str) -> io::Result<Box<dyn Transport>> {
        let mut last = None;
        for sa in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&sa, self.connect_timeout) {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    stream.set_read_timeout(Some(self.op_timeout))?;
                    stream.set_write_timeout(Some(self.op_timeout))?;
                    return Ok(Box::new(TcpTransport {
                        stream,
                        limits: FrameLimits {
                            max_len: self.max_frame_len,
                            // One stall poll: with SO_RCVTIMEO armed, the
                            // first timed-out read *is* the op deadline.
                            stall_polls: 1,
                        },
                    }));
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| {
            io::Error::new(
                io::ErrorKind::AddrNotAvailable,
                format!("transport: {addr} resolved to no addresses"),
            )
        }))
    }
}

/// A real socket transport; deadlines come from the socket options the
/// [`TcpConnector`] armed.
pub struct TcpTransport {
    stream: TcpStream,
    limits: FrameLimits,
}

impl Transport for TcpTransport {
    fn send_frame(&mut self, frame: &[u8]) -> io::Result<()> {
        proto::write_frame(&mut self.stream, frame)
    }

    fn recv_frame(&mut self) -> io::Result<Vec<u8>> {
        match proto::read_frame_bounded(&mut self.stream, self.limits)? {
            FrameRead::Frame(f) => Ok(f),
            FrameRead::Eof => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "transport: connection closed while awaiting a response",
            )),
            FrameRead::Idle => Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "transport: response deadline exceeded",
            )),
        }
    }
}

// ---------------------------------------------------------------------
// Deterministic fault injection.

/// One scheduled network fault (see module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetFault {
    /// Reset the connection at global op index `op`.
    DropConn {
        /// Global op index (connects + sends + recvs, all replicas).
        op: u64,
    },
    /// Blow the deadline of global op index `op`.
    Delay {
        /// Global op index.
        op: u64,
    },
    /// Truncate the payload of the `recv`-th frame receive.
    TornFrame {
        /// Frame-receive index (its own counter, all replicas).
        recv: u64,
    },
    /// Make the listed replicas unreachable for global ops in
    /// `from..to`.
    Partition {
        /// Replica indices (the connector's addressing order).
        replicas: Vec<usize>,
        /// First global op index affected.
        from: u64,
        /// One past the last affected op (`u64::MAX` = forever).
        to: u64,
    },
    /// Time out every `period`-th global op against one replica.
    SlowNode {
        /// Replica index.
        replica: usize,
        /// Fault fires when `op % period == 0` (period ≥ 1).
        period: u64,
    },
}

/// What a fired fault does to the op it hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultAction {
    /// `ECONNRESET`.
    Reset,
    /// Deadline exceeded.
    Timeout,
    /// `ECONNREFUSED` (connects under a partition).
    Refuse,
    /// Deliver a truncated frame (recv ops only).
    Torn,
}

/// A seeded, counter-armed schedule of [`NetFault`]s shared by every
/// [`FaultConnector`]/[`FaultTransport`] of one chaos run.
#[derive(Debug, Default)]
pub struct FaultPlan {
    faults: Mutex<Vec<NetFault>>,
    ops: AtomicU64,
    recvs: AtomicU64,
    fired: Mutex<Vec<String>>,
}

impl FaultPlan {
    /// A plan with no faults armed (the clean run that learns op
    /// counts).
    pub fn clean() -> Arc<FaultPlan> {
        Arc::new(FaultPlan::default())
    }

    /// A plan armed with `faults`.
    pub fn script(faults: Vec<NetFault>) -> Arc<FaultPlan> {
        let plan = FaultPlan::default();
        *plan.faults.lock().unwrap() = faults;
        Arc::new(plan)
    }

    /// Global ops observed so far (connects + sends + recvs).
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::SeqCst)
    }

    /// Frame receives observed so far.
    pub fn recvs(&self) -> u64 {
        self.recvs.load(Ordering::SeqCst)
    }

    /// Human-readable log of every fault that actually fired.
    pub fn fired(&self) -> Vec<String> {
        self.fired.lock().unwrap().clone()
    }

    /// Account one global op against `replica` and decide its fate.
    fn next_op(&self, replica: usize, is_recv: bool, what: &str) -> Option<FaultAction> {
        let op = self.ops.fetch_add(1, Ordering::SeqCst);
        let recv = if is_recv {
            Some(self.recvs.fetch_add(1, Ordering::SeqCst))
        } else {
            None
        };
        let action = {
            let faults = self.faults.lock().unwrap();
            faults.iter().find_map(|f| match f {
                NetFault::DropConn { op: at } => (*at == op).then_some(FaultAction::Reset),
                NetFault::Delay { op: at } => (*at == op).then_some(FaultAction::Timeout),
                NetFault::TornFrame { recv: at } => {
                    (recv == Some(*at)).then_some(FaultAction::Torn)
                }
                NetFault::Partition { replicas, from, to } => (replicas.contains(&replica)
                    && op >= *from
                    && op < *to)
                    .then_some(if what == "connect" {
                        FaultAction::Refuse
                    } else {
                        FaultAction::Reset
                    }),
                NetFault::SlowNode {
                    replica: slow,
                    period,
                } => (*slow == replica && *period >= 1 && op.is_multiple_of(*period))
                    .then_some(FaultAction::Timeout),
            })
        };
        if let Some(a) = action {
            self.fired
                .lock()
                .unwrap()
                .push(format!("op {op} ({what}, replica {replica}): {a:?}"));
        }
        action
    }
}

fn fault_err(action: FaultAction, what: &str) -> io::Error {
    match action {
        FaultAction::Reset => io::Error::new(
            io::ErrorKind::ConnectionReset,
            format!("fault: connection reset during {what}"),
        ),
        FaultAction::Timeout => io::Error::new(
            io::ErrorKind::TimedOut,
            format!("fault: {what} deadline exceeded"),
        ),
        FaultAction::Refuse => io::Error::new(
            io::ErrorKind::ConnectionRefused,
            format!("fault: {what} refused (partitioned)"),
        ),
        FaultAction::Torn => unreachable!("torn frames are delivered, not raised"),
    }
}

/// [`Connector`] double that routes every op through a [`FaultPlan`].
pub struct FaultConnector {
    inner: Arc<dyn Connector>,
    plan: Arc<FaultPlan>,
    replicas: Vec<String>,
}

impl FaultConnector {
    /// Wrap `inner`; `replicas` maps addresses to the replica indices
    /// the plan's faults name (every address the coordinator may dial
    /// must be listed).
    pub fn new(
        inner: Arc<dyn Connector>,
        plan: Arc<FaultPlan>,
        replicas: Vec<String>,
    ) -> FaultConnector {
        FaultConnector {
            inner,
            plan,
            replicas,
        }
    }

    fn rid(&self, addr: &str) -> usize {
        self.replicas
            .iter()
            .position(|a| a == addr)
            .unwrap_or_else(|| panic!("FaultConnector: unmapped replica address {addr}"))
    }
}

impl Connector for FaultConnector {
    fn connect(&self, addr: &str) -> io::Result<Box<dyn Transport>> {
        let rid = self.rid(addr);
        if let Some(action) = self.plan.next_op(rid, false, "connect") {
            return Err(fault_err(action, "connect"));
        }
        let inner = self.inner.connect(addr)?;
        Ok(Box::new(FaultTransport {
            inner,
            plan: Arc::clone(&self.plan),
            rid,
            dead: false,
        }))
    }
}

/// [`Transport`] double produced by [`FaultConnector`].
pub struct FaultTransport {
    inner: Box<dyn Transport>,
    plan: Arc<FaultPlan>,
    rid: usize,
    dead: bool,
}

impl Transport for FaultTransport {
    fn send_frame(&mut self, frame: &[u8]) -> io::Result<()> {
        if self.dead {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "fault: connection already dropped",
            ));
        }
        if let Some(action) = self.plan.next_op(self.rid, false, "send") {
            self.dead = true;
            return Err(fault_err(action, "send"));
        }
        self.inner.send_frame(frame)
    }

    fn recv_frame(&mut self) -> io::Result<Vec<u8>> {
        if self.dead {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "fault: connection already dropped",
            ));
        }
        match self.plan.next_op(self.rid, true, "recv") {
            Some(FaultAction::Torn) => {
                // Deliver the real frame torn in half. The stream itself
                // is drained (the server's full frame left the socket),
                // but the caller sees a truncated payload that fails its
                // CRC — and this link is framing-unsafe from here on.
                let frame = self.inner.recv_frame()?;
                self.dead = true;
                Ok(frame[..frame.len() / 2].to_vec())
            }
            Some(action) => {
                self.dead = true;
                Err(fault_err(action, "recv"))
            }
            None => self.inner.recv_frame(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// In-memory transport echoing canned frames, for plan tests.
    struct EchoTransport;

    impl Transport for EchoTransport {
        fn send_frame(&mut self, _frame: &[u8]) -> io::Result<()> {
            Ok(())
        }
        fn recv_frame(&mut self) -> io::Result<Vec<u8>> {
            Ok(vec![0xAB; 32])
        }
    }

    struct EchoConnector;

    impl Connector for EchoConnector {
        fn connect(&self, _addr: &str) -> io::Result<Box<dyn Transport>> {
            Ok(Box::new(EchoTransport))
        }
    }

    fn faulted(faults: Vec<NetFault>) -> (FaultConnector, Arc<FaultPlan>) {
        let plan = FaultPlan::script(faults);
        (
            FaultConnector::new(
                Arc::new(EchoConnector),
                Arc::clone(&plan),
                vec!["a:1".into(), "b:1".into()],
            ),
            plan,
        )
    }

    #[test]
    fn clean_plan_counts_ops_and_recvs() {
        let (conn, plan) = faulted(vec![]);
        let mut t = conn.connect("a:1").unwrap(); // op 0
        t.send_frame(&[1]).unwrap(); // op 1
        t.recv_frame().unwrap(); // op 2, recv 0
        t.recv_frame().unwrap(); // op 3, recv 1
        assert_eq!(plan.ops(), 4);
        assert_eq!(plan.recvs(), 2);
        assert!(plan.fired().is_empty());
    }

    #[test]
    fn drop_conn_fires_once_and_kills_the_transport() {
        let (conn, plan) = faulted(vec![NetFault::DropConn { op: 1 }]);
        let mut t = conn.connect("a:1").unwrap(); // op 0
        let err = t.send_frame(&[1]).unwrap_err(); // op 1: dropped
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        // The dead link fails everything after, without consuming ops.
        assert!(t.recv_frame().is_err());
        assert_eq!(plan.ops(), 2);
        // A reconnect works: the fault was one-shot.
        let mut t2 = conn.connect("a:1").unwrap(); // op 2
        t2.send_frame(&[1]).unwrap(); // op 3
        assert_eq!(plan.fired().len(), 1);
    }

    #[test]
    fn delay_and_torn_frame_and_slow_node() {
        let (conn, _plan) = faulted(vec![NetFault::Delay { op: 2 }]);
        let mut t = conn.connect("a:1").unwrap(); // op 0
        t.send_frame(&[1]).unwrap(); // op 1
        let err = t.recv_frame().unwrap_err(); // op 2: delayed
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);

        // Torn frame: counted on the recv counter, not the op counter.
        let (conn, plan) = faulted(vec![NetFault::TornFrame { recv: 1 }]);
        let mut t = conn.connect("a:1").unwrap();
        assert_eq!(t.recv_frame().unwrap().len(), 32); // recv 0: intact
        assert_eq!(t.recv_frame().unwrap().len(), 16); // recv 1: torn
        assert_eq!(plan.fired().len(), 1);

        // Slow node: periodic timeouts on one replica only.
        let (conn, _plan) = faulted(vec![NetFault::SlowNode {
            replica: 1,
            period: 2,
        }]);
        assert!(conn.connect("a:1").is_ok()); // op 0: replica 0 untouched
        let mut t1 = conn.connect("b:1").unwrap(); // op 1: odd, passes
        let err = t1.send_frame(&[1]).unwrap_err(); // op 2: fires
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    }

    #[test]
    fn partition_refuses_connects_and_resets_io_within_its_window() {
        let (conn, _plan) = faulted(vec![NetFault::Partition {
            replicas: vec![0],
            from: 1,
            to: 3,
        }]);
        let mut t = conn.connect("a:1").unwrap(); // op 0: before window
        let err = t.send_frame(&[1]).unwrap_err(); // op 1: reset
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        let err = conn.connect("a:1").err().expect("op 2 must be refused");
        assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);
        assert!(conn.connect("b:1").is_ok()); // op 3: window over... other replica anyway
        assert!(conn.connect("a:1").is_ok()); // op 4: healed
    }

    #[test]
    fn tcp_connector_times_out_stalled_responses() {
        use std::net::TcpListener;
        // A listener that accepts and never replies: recv must return
        // TimedOut (classified transient) rather than blocking forever.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let hold = std::thread::spawn(move || {
            let (conn, _) = listener.accept().unwrap();
            std::thread::sleep(Duration::from_millis(400));
            drop(conn);
        });
        let connector = TcpConnector {
            connect_timeout: Duration::from_millis(500),
            op_timeout: Duration::from_millis(50),
            max_frame_len: proto::MAX_FRAME_LEN,
        };
        let mut t = connector.connect(&addr).unwrap();
        let start = std::time::Instant::now();
        let err = t.recv_frame().unwrap_err();
        assert!(
            matches!(
                err.kind(),
                io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
            ),
            "unexpected kind {:?}",
            err.kind()
        );
        assert!(
            start.elapsed() < Duration::from_millis(300),
            "deadline did not bound the read"
        );
        hold.join().unwrap();
    }
}
