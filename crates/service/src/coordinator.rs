//! The query-side client: a [`Coordinator`] fans one logical query out
//! across serving nodes and merges their answers into a single
//! [`QueryOutcome`] carrying the union-wide `ε·m` guarantee.
//!
//! ## Probe-round protocol
//!
//! Ranks over disjoint unions **add**: if node `i` bounds `rank(z)` over
//! its data by `(lo_i, hi_i)`, then `(Σ lo_i, Σ hi_i)` bounds `rank(z)`
//! over the union. The coordinator therefore runs the *same* value-space
//! bisection as the in-process engine
//! ([`hsq_core::query::bisect_summed_rank`], via the
//! [`RankProbeSource`] seam), with each probe answered by one *round*:
//! the probe value is written to every node back-to-back, then all
//! responses are collected and summed — so a round costs one RTT
//! regardless of node count, and `round_trips = rounds × nodes`.
//!
//! ## Why so few rounds
//!
//! Before bisecting, the session fetches each node's *summary extract*
//! (its per-source views) and rebuilds the union's combined summary
//! locally. Because [`CombinedSummary::build`] sorts a value multiset
//! and sums order-independent per-source bounds, the rebuilt summary is
//! bit-identical to what a single in-process engine over the same
//! sources would build — so the bisection starts from the same tight
//! summary-seeded bracket `(u, v)` and accepts under the same
//! `ε·m − unc` tolerance. Empirically that means **~3 probe rounds at
//! the median** (≤ 4 at p50 is asserted in the loopback tests): the
//! bracket is already within a few summary gaps of the answer, and each
//! round halves it. The extract is fetched once per session and reused
//! across every subsequent query (the dashboard pattern), so steady
//! state is pure probe rounds.

use std::collections::HashMap;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

use hsq_core::query::bisect_summed_rank;
use hsq_core::{CombinedSummary, QueryOutcome, RankProbeSource, SourceView};
use hsq_storage::{IoSnapshot, Item};

use crate::proto::{read_frame, write_frame, Request, Response};

fn svc_err(msg: impl Into<String>) -> io::Error {
    io::Error::other(msg.into())
}

/// An accurate answer served over the network, plus what it cost on the
/// wire. `outcome.io` is always zero — disk I/O happens on the nodes.
#[derive(Clone, Debug)]
pub struct ServedQuery<T> {
    /// The merged outcome, same semantics as the in-process
    /// [`hsq_core::ShardedSnapshot::rank_query`].
    pub outcome: QueryOutcome<T>,
    /// Bisection probe rounds this query spent (one RTT each).
    pub probe_rounds: u32,
    /// Total request/response pairs on the wire (`rounds × nodes`).
    pub round_trips: u64,
}

/// A client connected to a set of serving nodes, each holding a disjoint
/// part of the dataset. All queries go through a per-tenant
/// [`TenantSession`].
pub struct Coordinator<T: Item> {
    nodes: Vec<TcpStream>,
    _items: std::marker::PhantomData<fn() -> T>,
}

impl<T: Item> Coordinator<T> {
    /// Connect to every node; the union of their datasets is what
    /// queries answer over. Errors if `addrs` is empty or any
    /// connection fails.
    pub fn connect<A: ToSocketAddrs>(addrs: &[A]) -> io::Result<Coordinator<T>> {
        if addrs.is_empty() {
            return Err(svc_err("coordinator needs at least one node"));
        }
        let mut nodes = Vec::with_capacity(addrs.len());
        for a in addrs {
            let s = TcpStream::connect(a)?;
            s.set_nodelay(true)?;
            nodes.push(s);
        }
        Ok(Coordinator {
            nodes,
            _items: std::marker::PhantomData,
        })
    }

    /// Number of connected nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// One batched round: the frame goes to every node back-to-back,
    /// then all responses are read — one RTT total on the wire.
    fn broadcast(&mut self, req: &Request<T>) -> io::Result<Vec<Response<T>>> {
        let frame = req.encode();
        for n in &mut self.nodes {
            write_frame(n, &frame)?;
        }
        self.nodes
            .iter_mut()
            .map(|n| Response::decode(&read_frame(n)?))
            .collect()
    }

    /// Liveness round-trip to every node.
    pub fn ping(&mut self) -> io::Result<()> {
        for resp in self.broadcast(&Request::Ping)? {
            match resp {
                Response::Pong => {}
                other => return Err(unexpected("Pong", &other)),
            }
        }
        Ok(())
    }

    /// Weighted stream ingest into one node's engine. Returns
    /// `(items, weight)` acknowledged.
    pub fn ingest(&mut self, node: usize, items: &[(T, u64)]) -> io::Result<(u64, u64)> {
        let req = Request::Ingest {
            items: items.to_vec(),
        };
        let frame = req.encode();
        let n = self
            .nodes
            .get_mut(node)
            .ok_or_else(|| svc_err(format!("no node {node}")))?;
        write_frame(n, &frame)?;
        match Response::<T>::decode(&read_frame(n)?)? {
            Response::Ingested { items, weight } => Ok((items, weight)),
            Response::Error { message } => Err(svc_err(message)),
            other => Err(unexpected("Ingested", &other)),
        }
    }

    /// Archive the current stream into a time-step partition on every
    /// node. Returns per-node shard counts.
    pub fn end_step(&mut self) -> io::Result<Vec<u64>> {
        self.broadcast(&Request::EndStep)?
            .into_iter()
            .map(|resp| match resp {
                Response::StepEnded { shards } => Ok(shards),
                Response::Error { message } => Err(svc_err(message)),
                other => Err(unexpected("StepEnded", &other)),
            })
            .collect()
    }

    /// Open (or resume) the tenant's session on every node, pinning one
    /// snapshot epoch per node. Repeated sessions for the same tenant
    /// reuse the pinned snapshots — and therefore the nodes' cached
    /// summaries — until [`TenantSession::refresh`].
    pub fn session(&mut self, tenant: u64) -> io::Result<TenantSession<'_, T>> {
        let vitals = open_sessions(self, tenant, false)?;
        Ok(TenantSession {
            coord: self,
            tenant,
            vitals,
            summary: None,
            windows: HashMap::new(),
        })
    }
}

/// Session-wide vitals merged from every node's `Session` response.
#[derive(Clone, Debug)]
struct SessionVitals {
    total: u64,
    stream_weight: u64,
    quarantined: u64,
    epsilon: f64,
}

fn unexpected<T>(wanted: &str, got: &Response<T>) -> io::Error {
    let kind = match got {
        Response::Pong => "Pong",
        Response::Ingested { .. } => "Ingested",
        Response::StepEnded { .. } => "StepEnded",
        Response::Session { .. } => "Session",
        Response::Extract { .. } => "Extract",
        Response::WindowUnavailable => "WindowUnavailable",
        Response::Bounds { .. } => "Bounds",
        Response::Error { .. } => "Error",
    };
    svc_err(format!("expected {wanted} response, got {kind}"))
}

fn open_sessions<T: Item>(
    coord: &mut Coordinator<T>,
    tenant: u64,
    refresh: bool,
) -> io::Result<SessionVitals> {
    let responses = coord.broadcast(&Request::OpenSession { tenant, refresh })?;
    let mut vitals = SessionVitals {
        total: 0,
        stream_weight: 0,
        quarantined: 0,
        epsilon: 0.0,
    };
    for (i, resp) in responses.into_iter().enumerate() {
        match resp {
            Response::Session {
                total,
                stream_weight,
                quarantined,
                epsilon,
                ..
            } => {
                vitals.total += total;
                vitals.stream_weight += stream_weight;
                vitals.quarantined += quarantined;
                if i == 0 {
                    vitals.epsilon = epsilon;
                } else if epsilon.to_bits() != vitals.epsilon.to_bits() {
                    // A mixed-ε fleet has no single acceptance window;
                    // refuse rather than serve a bound nobody holds.
                    return Err(svc_err(format!(
                        "node {i} runs query epsilon {epsilon}, node 0 runs {}",
                        vitals.epsilon
                    )));
                }
            }
            Response::Error { message } => return Err(svc_err(message)),
            other => return Err(unexpected("Session", &other)),
        }
    }
    Ok(vitals)
}

/// The remote [`RankProbeSource`]: each probe is one batched round over
/// every node, bounds summed.
struct RemoteProbes<'a, T: Item> {
    nodes: &'a mut [TcpStream],
    tenant: u64,
    window: Option<u64>,
    rounds: u32,
    trips: u64,
    _items: std::marker::PhantomData<fn() -> T>,
}

impl<T: Item> RankProbeSource<T> for RemoteProbes<'_, T> {
    fn probe(&mut self, z: T) -> io::Result<(u64, u64)> {
        let req: Request<T> = Request::Probe {
            tenant: self.tenant,
            window: self.window,
            zs: vec![z],
        };
        let frame = req.encode();
        for n in self.nodes.iter_mut() {
            write_frame(n, &frame)?;
        }
        let mut lo = 0u64;
        let mut hi = 0u64;
        for n in self.nodes.iter_mut() {
            match Response::<T>::decode(&read_frame(n)?)? {
                Response::Bounds { bounds } if bounds.len() == 1 => {
                    lo += bounds[0].0;
                    hi += bounds[0].1;
                }
                Response::Bounds { bounds } => {
                    return Err(svc_err(format!(
                        "probe round answered {} bounds for 1 probe",
                        bounds.len()
                    )))
                }
                Response::Error { message } => return Err(svc_err(message)),
                other => return Err(unexpected("Bounds", &other)),
            }
        }
        self.rounds += 1;
        self.trips += self.nodes.len() as u64;
        Ok((lo, hi))
    }
}

/// One tenant's query session: pinned node snapshots, a locally rebuilt
/// combined summary (fetched once, reused across queries), and the
/// query API mirroring [`hsq_core::ShardedSnapshot`].
pub struct TenantSession<'a, T: Item> {
    coord: &'a mut Coordinator<T>,
    tenant: u64,
    vitals: SessionVitals,
    summary: Option<CombinedSummary<T>>,
    windows: HashMap<u64, Option<(CombinedSummary<T>, u64)>>,
}

impl<T: Item> TenantSession<'_, T> {
    /// Total size `N` of the union at session-pin time.
    pub fn total_len(&self) -> u64 {
        self.vitals.total
    }

    /// Stream weight `m` at session-pin time — the `ε·m` denominator.
    pub fn stream_len(&self) -> u64 {
        self.vitals.stream_weight
    }

    /// The fleet's accurate-response error parameter.
    pub fn query_epsilon(&self) -> f64 {
        self.vitals.epsilon
    }

    /// Re-pin every node's snapshot to current engine state and drop the
    /// locally cached summaries.
    pub fn refresh(&mut self) -> io::Result<()> {
        self.vitals = open_sessions(self.coord, self.tenant, true)?;
        self.summary = None;
        self.windows.clear();
        Ok(())
    }

    /// Fetch-and-rebuild the union's combined summary (once per
    /// session): every node's extract, concatenated in node order.
    fn ensure_summary(&mut self) -> io::Result<()> {
        if self.summary.is_some() {
            return Ok(());
        }
        let responses = self.coord.broadcast(&Request::Extract {
            tenant: self.tenant,
            window: None,
        })?;
        let mut sources: Vec<SourceView<T>> = Vec::new();
        let mut total = 0u64;
        for resp in responses {
            match resp {
                Response::Extract {
                    total: t,
                    sources: s,
                } => {
                    total += t;
                    sources.extend(s);
                }
                Response::Error { message } => return Err(svc_err(message)),
                other => return Err(unexpected("Extract", &other)),
            }
        }
        if total != self.vitals.total {
            return Err(svc_err(format!(
                "extract total {total} disagrees with session total {}",
                self.vitals.total
            )));
        }
        self.summary = Some(CombinedSummary::build(&sources));
        Ok(())
    }

    /// Fetch-and-rebuild the windowed summary for `window_steps` (once
    /// per session per window). `None` — cached — when any node reports
    /// the window unavailable.
    fn ensure_window(&mut self, window_steps: u64) -> io::Result<()> {
        if self.windows.contains_key(&window_steps) {
            return Ok(());
        }
        let responses = self.coord.broadcast(&Request::Extract {
            tenant: self.tenant,
            window: Some(window_steps),
        })?;
        let mut sources: Vec<SourceView<T>> = Vec::new();
        let mut total = 0u64;
        let mut available = true;
        for resp in responses {
            match resp {
                Response::Extract {
                    total: t,
                    sources: s,
                } => {
                    total += t;
                    sources.extend(s);
                }
                Response::WindowUnavailable => available = false,
                Response::Error { message } => return Err(svc_err(message)),
                other => return Err(unexpected("Extract", &other)),
            }
        }
        let entry = if available {
            Some((CombinedSummary::build(&sources), total))
        } else {
            None
        };
        self.windows.insert(window_steps, entry);
        Ok(())
    }

    fn outcome(&self, value: T, estimated_rank: u64, steps: u32) -> QueryOutcome<T> {
        let eps_m = self.eps_m();
        let quarantined = self.vitals.quarantined;
        QueryOutcome {
            value,
            io: IoSnapshot::default(),
            bisection_steps: steps,
            estimated_rank,
            prefetch_hits: 0,
            prefetch_wasted: 0,
            rank_lo: estimated_rank.saturating_sub(eps_m),
            rank_hi: estimated_rank + eps_m + quarantined,
            degraded: quarantined > 0,
            quarantined,
        }
    }

    /// `⌊ε·m⌋` — same rounding as the in-process acceptance rule, so
    /// remote and in-process bisections accept identically.
    fn eps_m(&self) -> u64 {
        (self.vitals.epsilon * self.vitals.stream_weight as f64).floor() as u64
    }

    /// Accurate cross-node rank query: same bisection, same seed
    /// bracket, same tolerance as
    /// [`hsq_core::ShardedSnapshot::rank_query`] — the probes just
    /// travel over TCP.
    pub fn rank_query(&mut self, r: u64) -> io::Result<Option<ServedQuery<T>>> {
        if self.vitals.total == 0 {
            return Ok(None);
        }
        let r = r.clamp(1, self.vitals.total);
        self.ensure_summary()?;
        let ts = self.summary.as_ref().expect("summary just ensured");
        let (u, v) = ts.seed_bracket(r);
        let eps_m = self.eps_m();
        let mut probes = RemoteProbes {
            nodes: &mut self.coord.nodes,
            tenant: self.tenant,
            window: None,
            rounds: 0,
            trips: 0,
            _items: std::marker::PhantomData,
        };
        let (value, estimated_rank, steps) = bisect_summed_rank(r, eps_m, u, v, &mut probes)?;
        let (probe_rounds, round_trips) = (probes.rounds, probes.trips);
        Ok(Some(ServedQuery {
            outcome: self.outcome(value, estimated_rank, steps),
            probe_rounds,
            round_trips,
        }))
    }

    /// Accurate φ-quantile over the union of every node's data.
    pub fn quantile(&mut self, phi: f64) -> io::Result<Option<ServedQuery<T>>> {
        assert!(phi > 0.0 && phi <= 1.0, "phi must be in (0, 1]");
        let r = (phi * self.vitals.total as f64).ceil() as u64;
        self.rank_query(r)
    }

    /// Quick response from the locally rebuilt combined summary: no
    /// probe rounds at all (after the one-time extract fetch), error
    /// ≤ 1.5·ε·N — the dashboard fast path.
    pub fn quantile_quick(&mut self, phi: f64) -> io::Result<Option<T>> {
        assert!(phi > 0.0 && phi <= 1.0, "phi must be in (0, 1]");
        let r = (phi * self.vitals.total as f64).ceil() as u64;
        self.ensure_summary()?;
        let ts = self.summary.as_ref().expect("summary just ensured");
        Ok(ts.quick_response(r.clamp(1, ts.total().max(1))))
    }

    /// Windowed accurate rank query (newest `window_steps` steps on
    /// every node). `Ok(None)` when any node's partitions misalign with
    /// the window boundary, mirroring
    /// [`hsq_core::ShardedSnapshot::rank_in_window`].
    pub fn rank_in_window(
        &mut self,
        window_steps: u64,
        r: u64,
    ) -> io::Result<Option<ServedQuery<T>>> {
        self.ensure_window(window_steps)?;
        let Some((ts, wtotal)) = self.windows[&window_steps].as_ref() else {
            return Ok(None);
        };
        let wtotal = *wtotal;
        if wtotal == 0 {
            return Ok(None);
        }
        let r = r.clamp(1, wtotal);
        let (u, v) = ts.seed_bracket(r);
        // ε·m over the FULL stream weight, exactly as in-process windowed
        // queries: the stream is entirely inside every window.
        let eps_m = self.eps_m();
        let mut probes = RemoteProbes {
            nodes: &mut self.coord.nodes,
            tenant: self.tenant,
            window: Some(window_steps),
            rounds: 0,
            trips: 0,
            _items: std::marker::PhantomData,
        };
        let (value, estimated_rank, steps) = bisect_summed_rank(r, eps_m, u, v, &mut probes)?;
        let (probe_rounds, round_trips) = (probes.rounds, probes.trips);
        Ok(Some(ServedQuery {
            outcome: self.outcome(value, estimated_rank, steps),
            probe_rounds,
            round_trips,
        }))
    }

    /// Windowed accurate φ-quantile; `Ok(None)` when the window
    /// misaligns on any node or holds no data.
    pub fn quantile_in_window(
        &mut self,
        window_steps: u64,
        phi: f64,
    ) -> io::Result<Option<ServedQuery<T>>> {
        assert!(phi > 0.0 && phi <= 1.0, "phi must be in (0, 1]");
        self.ensure_window(window_steps)?;
        let Some((_, wtotal)) = self.windows[&window_steps].as_ref() else {
            return Ok(None);
        };
        let wtotal = *wtotal;
        if wtotal == 0 {
            return Ok(None);
        }
        let r = (phi * wtotal as f64).ceil() as u64;
        self.rank_in_window(window_steps, r)
    }
}
