//! The query-side client: a [`Coordinator`] fans one logical query out
//! across replica groups and merges their answers into a single
//! [`QueryOutcome`] carrying the union-wide `ε·m` guarantee.
//!
//! ## Probe-round protocol
//!
//! Ranks over disjoint unions **add**: if group `g` bounds `rank(z)`
//! over its shard-range by `(lo_g, hi_g)`, then `(Σ lo_g, Σ hi_g)`
//! bounds `rank(z)` over the union. The coordinator therefore runs the
//! *same* value-space bisection as the in-process engine
//! ([`hsq_core::query::bisect_summed_rank`], via the
//! [`RankProbeSource`] seam), with each probe answered by one *round*:
//! the probe value is written to every group's preferred replica
//! back-to-back, then all responses are collected and summed — so a
//! round costs one RTT regardless of group count, and
//! `round_trips = rounds × groups`.
//!
//! ## Replication and failover
//!
//! Each shard-range is served by an ordered *replica group*
//! ([`FleetConfig`]): writes go to **every** replica of the group, so
//! replicas hold bit-identical data; reads go to the group's preferred
//! replica and fail over down the list on error or timeout, governed by
//! the [`NetRetryPolicy`] (transient link faults retry the same replica
//! after a reconnect + session re-pin; refused connections skip to the
//! next replica immediately). Because replicas are identical and the
//! extract/probe protocol is stateless per pinned epoch, a failover
//! mid-bisection re-issues the same probe to the replacement and gets
//! the same bounds — served answers stay **byte-identical** to the
//! healthy fleet's. On every re-pin the replica's vitals are checked
//! bit-for-bit against the group's recorded ones; any divergence
//! re-seeds the session (summaries re-fetched, query restarted) instead
//! of silently mixing snapshots.
//!
//! ## Degraded answers
//!
//! When *every* replica of a group is down, the coordinator keeps
//! serving from the reachable union and widens each answer's rank
//! bounds by exactly the missing groups' recorded weight — the same
//! principled degradation the storage layer applies to quarantined
//! runs, riding the paper's interval arithmetic: a true rank over the
//! full union can exceed one over the reachable union by at most the
//! missing mass. [`ServedQuery::missing_weight`] carries the widening;
//! `strict` mode ([`FleetConfig::strict`]) refuses with a typed error
//! ([`crate::strict_refusal_weight`]) instead. A group whose weight was
//! never observed cannot be bounded away — losing it is an error, not a
//! degraded answer.
//!
//! ## Why so few rounds
//!
//! Before bisecting, the session fetches each group's *summary extract*
//! (its per-source views) and rebuilds the union's combined summary
//! locally. Because [`CombinedSummary::build`] sorts a value multiset
//! and sums order-independent per-source bounds, the rebuilt summary is
//! bit-identical to what a single in-process engine over the same
//! sources would build — so the bisection starts from the same tight
//! summary-seeded bracket `(u, v)` and accepts under the same
//! `ε·m − unc` tolerance. Empirically that means **~3 probe rounds at
//! the median** (≤ 4 at p50 is asserted in the loopback tests). The
//! extract is fetched once per session and reused across every
//! subsequent query (the dashboard pattern), so steady state is pure
//! probe rounds.

use std::collections::HashMap;
use std::io;
use std::net::ToSocketAddrs;
use std::sync::Arc;

use hsq_core::query::bisect_summed_rank;
use hsq_core::{CombinedSummary, QueryOutcome, RankProbeSource, SourceView};
use hsq_storage::{IoSnapshot, Item};

use crate::fleet::FleetConfig;
use crate::proto::{Request, Response};
use crate::retry::{classify_net, strict_refusal, NetError, NetErrorKind, NetRetryPolicy};
use crate::transport::{Connector, TcpConnector, Transport};

fn svc_err(msg: impl Into<String>) -> io::Error {
    io::Error::other(msg.into())
}

/// Internal marker: fleet membership (or a replica's vitals) changed
/// mid-query; the query must re-sync and restart. Never escapes the
/// session API.
#[derive(Debug)]
struct QueryInterrupted;

impl std::fmt::Display for QueryInterrupted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fleet membership changed mid-query")
    }
}

impl std::error::Error for QueryInterrupted {}

fn interrupted() -> io::Error {
    io::Error::other(QueryInterrupted)
}

fn is_interrupted(e: &io::Error) -> bool {
    e.get_ref()
        .is_some_and(|inner| inner.downcast_ref::<QueryInterrupted>().is_some())
}

/// An accurate answer served over the network, plus what it cost on the
/// wire. `outcome.io` is always zero — disk I/O happens on the nodes.
#[derive(Clone, Debug)]
pub struct ServedQuery<T> {
    /// The merged outcome, same semantics as the in-process
    /// [`hsq_core::ShardedSnapshot::rank_query`]. When `missing_weight`
    /// is non-zero, `rank_hi` is widened by it and `degraded` is set.
    pub outcome: QueryOutcome<T>,
    /// Bisection probe rounds this query spent (one RTT each).
    pub probe_rounds: u32,
    /// Total request/response pairs on the wire (`rounds × up groups`).
    pub round_trips: u64,
    /// Summed recorded weight of replica groups that were unreachable
    /// when this answer was computed (folded into `outcome.rank_hi`).
    pub missing_weight: u64,
    /// Replica failovers the coordinator performed during this query.
    pub failovers: u64,
}

/// Last observed session vitals for one replica group — the per-group
/// `W` cache that prices degraded answers when the group later
/// disappears.
#[derive(Clone, Copy, Debug)]
struct GroupVitals {
    total: u64,
    stream_weight: u64,
    quarantined: u64,
    epsilon: f64,
}

/// One replica group: ordered replicas, lazily established transports,
/// and failover state.
struct Group {
    replicas: Vec<String>,
    conns: Vec<Option<Box<dyn Transport>>>,
    /// Which tenant's session is pinned on each replica connection.
    pinned: Vec<Option<u64>>,
    /// Preferred replica for reads (sticky across failovers).
    active: usize,
    /// Every replica exhausted; excluded from queries until a refresh.
    down: bool,
    vitals: Option<GroupVitals>,
}

impl Group {
    fn new(replicas: Vec<String>) -> Group {
        let n = replicas.len();
        Group {
            replicas,
            conns: (0..n).map(|_| None).collect(),
            pinned: vec![None; n],
            active: 0,
            down: false,
            vitals: None,
        }
    }
}

/// Per-coordinator session context (one tenant at a time — the session
/// API takes `&mut Coordinator`).
struct SessionCtx {
    tenant: u64,
    /// Per group: the next pin must ask the server for a fresh snapshot.
    refresh_pending: Vec<bool>,
    /// A re-pin observed vitals diverging from the group's recorded
    /// ones; sessions must drop caches and restart in-flight queries.
    reseeded: bool,
}

/// What a group produced for one op.
enum GroupReply<T> {
    /// A decoded response from some replica of the group.
    Resp(Response<T>),
    /// Pin-only op (no frame) succeeded.
    Pinned,
    /// The group is down (strict mode never reaches this — marking a
    /// group down under `strict` is an error).
    Down,
}

/// A client connected to a fleet of replica groups, each serving a
/// disjoint part of the dataset. All queries go through a per-tenant
/// [`TenantSession`].
pub struct Coordinator<T: Item> {
    groups: Vec<Group>,
    connector: Arc<dyn Connector>,
    retry: NetRetryPolicy,
    strict: bool,
    /// Decorrelated-jitter state for backoff draws.
    rng: u64,
    /// Bumped whenever the set of down groups changes; sessions use it
    /// to notice mid-query membership changes.
    down_epoch: u64,
    failovers: u64,
    session: Option<SessionCtx>,
    _items: std::marker::PhantomData<fn() -> T>,
}

impl<T: Item> Coordinator<T> {
    /// Connect to an unreplicated fleet: each address is a
    /// single-replica group (the pre-replication topology). Errors if
    /// `addrs` is empty or any node is unreachable.
    pub fn connect<A: ToSocketAddrs>(addrs: &[A]) -> io::Result<Coordinator<T>> {
        let mut groups = Vec::with_capacity(addrs.len());
        for a in addrs {
            let sa = a
                .to_socket_addrs()?
                .next()
                .ok_or_else(|| svc_err("address resolved to nothing"))?;
            groups.push(vec![sa.to_string()]);
        }
        let config =
            FleetConfig::new(groups).map_err(|_| svc_err("coordinator needs at least one node"))?;
        Coordinator::connect_fleet(&config)
    }

    /// Connect to a replicated fleet over real TCP with the standard
    /// retry policy.
    pub fn connect_fleet(config: &FleetConfig) -> io::Result<Coordinator<T>> {
        let retry = NetRetryPolicy::standard();
        Coordinator::connect_fleet_with(config, Arc::new(TcpConnector::from_policy(&retry)), retry)
    }

    /// Connect to a replicated fleet over an explicit [`Connector`]
    /// (the chaos harness injects its [`crate::FaultConnector`] here)
    /// with an explicit [`NetRetryPolicy`]. Every group must be
    /// reachable through at least one replica at construction — until a
    /// group's weight has been observed once, losing it cannot be
    /// priced into a degraded answer.
    pub fn connect_fleet_with(
        config: &FleetConfig,
        connector: Arc<dyn Connector>,
        retry: NetRetryPolicy,
    ) -> io::Result<Coordinator<T>> {
        let mut coord = Coordinator {
            groups: config
                .groups()
                .iter()
                .map(|replicas| Group::new(replicas.clone()))
                .collect(),
            connector,
            retry,
            strict: config.is_strict(),
            rng: retry.jitter_seed,
            down_epoch: 0,
            failovers: 0,
            session: None,
            _items: std::marker::PhantomData,
        };
        for g in 0..coord.groups.len() {
            if let GroupReply::Down = coord.group_op(g, None)? {
                // Unreachable with no vitals recorded is always an
                // error inside group_op; reaching Down here means a
                // logic bug, not a network condition.
                return Err(svc_err(format!("group {g} down at construction")));
            }
        }
        Ok(coord)
    }

    /// Number of replica groups (formerly: nodes) — the unit of shard
    /// routing for [`Coordinator::ingest`].
    pub fn num_nodes(&self) -> usize {
        self.groups.len()
    }

    /// Number of replica groups.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Replica failovers performed so far.
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// Groups currently marked down.
    pub fn down_groups(&self) -> Vec<usize> {
        self.groups
            .iter()
            .enumerate()
            .filter_map(|(g, grp)| grp.down.then_some(g))
            .collect()
    }

    /// Summed recorded weight of the down groups — what degraded
    /// answers widen their upper rank bound by.
    pub fn missing_weight(&self) -> u64 {
        self.groups
            .iter()
            .filter(|grp| grp.down)
            .map(|grp| grp.vitals.expect("down groups always have vitals").total)
            .sum()
    }

    /// Whether degraded answers are refused ([`FleetConfig::strict`]).
    pub fn is_strict(&self) -> bool {
        self.strict
    }

    // -----------------------------------------------------------------
    // Failover op engine.

    /// Try one op (or a pin-only touch, `frame = None`) on one replica:
    /// connect if needed, re-pin the session if needed, send, receive,
    /// decode.
    fn try_replica(
        &mut self,
        g: usize,
        rid: usize,
        frame: Option<&[u8]>,
    ) -> io::Result<Option<Response<T>>> {
        if self.groups[g].conns[rid].is_none() {
            let addr = self.groups[g].replicas[rid].clone();
            let t = self.connector.connect(&addr)?;
            self.groups[g].conns[rid] = Some(t);
            self.groups[g].pinned[rid] = None;
        }
        // Session re-establishment: a replica this session has never
        // pinned (fresh connection, or a failover target) gets the
        // tenant's OpenSession first, and its vitals are verified
        // bit-for-bit against the group's recorded ones.
        let pin = match &self.session {
            Some(ctx)
                if self.groups[g].pinned[rid] != Some(ctx.tenant) || ctx.refresh_pending[g] =>
            {
                Some((ctx.tenant, ctx.refresh_pending[g]))
            }
            _ => None,
        };
        if let Some((tenant, refresh)) = pin {
            let pin_frame = Request::<T>::OpenSession { tenant, refresh }.encode();
            let conn = self.groups[g].conns[rid].as_mut().expect("just ensured");
            conn.send_frame(&pin_frame)?;
            let raw = conn.recv_frame()?;
            let vitals = match Response::<T>::decode(&raw)? {
                Response::Session {
                    total,
                    stream_weight,
                    quarantined,
                    epsilon,
                    ..
                } => GroupVitals {
                    total,
                    stream_weight,
                    quarantined,
                    epsilon,
                },
                Response::Error { message } => return Err(svc_err(message)),
                other => return Err(unexpected("Session", &other)),
            };
            if !refresh {
                if let Some(old) = self.groups[g].vitals {
                    let same = old.total == vitals.total
                        && old.stream_weight == vitals.stream_weight
                        && old.quarantined == vitals.quarantined
                        && old.epsilon.to_bits() == vitals.epsilon.to_bits();
                    if !same {
                        // The replacement replica pinned a different
                        // snapshot than the session was built on: flag a
                        // re-seed so cached summaries are re-fetched and
                        // in-flight bisections restart.
                        if let Some(ctx) = &mut self.session {
                            ctx.reseeded = true;
                        }
                    }
                }
            }
            self.groups[g].vitals = Some(vitals);
            self.groups[g].pinned[rid] = Some(tenant);
            if refresh {
                if let Some(ctx) = &mut self.session {
                    ctx.refresh_pending[g] = false;
                }
            }
        }
        match frame {
            Some(frame) => {
                let conn = self.groups[g].conns[rid].as_mut().expect("just ensured");
                conn.send_frame(frame)?;
                let raw = conn.recv_frame()?;
                Ok(Some(Response::decode(&raw)?))
            }
            None => Ok(None),
        }
    }

    /// One read op against group `g` with the full retry/failover
    /// ladder: transient faults reconnect and retry the same replica up
    /// to `max_attempts` (decorrelated-jitter backoff between tries),
    /// refused nodes fail over immediately, and exhausting every
    /// replica marks the group down.
    fn group_op(&mut self, g: usize, frame: Option<&[u8]>) -> io::Result<GroupReply<T>> {
        if self.groups[g].down {
            return Ok(GroupReply::Down);
        }
        let n = self.groups[g].replicas.len();
        let start = self.groups[g].active;
        let mut last_err: Option<io::Error> = None;
        for k in 0..n {
            let rid = (start + k) % n;
            let mut prev_delay = self.retry.base_delay;
            for attempt in 1..=self.retry.max_attempts.max(1) {
                match self.try_replica(g, rid, frame) {
                    Ok(resp) => {
                        if self.groups[g].active != rid {
                            self.groups[g].active = rid;
                            self.failovers += 1;
                        }
                        return Ok(match resp {
                            Some(r) => GroupReply::Resp(r),
                            None => GroupReply::Pinned,
                        });
                    }
                    Err(e) => {
                        // Whatever failed, this link is framing-unsafe.
                        self.groups[g].conns[rid] = None;
                        self.groups[g].pinned[rid] = None;
                        match classify_net(&e) {
                            NetErrorKind::Fatal => return Err(e),
                            NetErrorKind::NodeDown => {
                                last_err = Some(e);
                                break;
                            }
                            NetErrorKind::Transient => {
                                last_err = Some(e);
                                if attempt < self.retry.max_attempts.max(1) {
                                    prev_delay = self.retry.next_backoff(&mut self.rng, prev_delay);
                                    if !prev_delay.is_zero() {
                                        std::thread::sleep(prev_delay);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        self.mark_down(g, last_err)
    }

    /// Every replica of group `g` is exhausted: price the loss (needs
    /// recorded vitals), refuse under `strict`, otherwise mark the
    /// group down and let degraded accounting take over.
    fn mark_down(&mut self, g: usize, last_err: Option<io::Error>) -> io::Result<GroupReply<T>> {
        let cause = last_err
            .map(|e| e.to_string())
            .unwrap_or_else(|| "all replicas failed".into());
        if self.groups[g].vitals.is_none() {
            return Err(NetError::Fatal(format!(
                "replica group {g} is unreachable and its weight was never observed; \
                 cannot bound the union without it (last error: {cause})"
            ))
            .into());
        }
        self.groups[g].down = true;
        self.down_epoch += 1;
        if self.strict {
            return Err(strict_refusal(self.missing_weight()));
        }
        Ok(GroupReply::Down)
    }

    /// One batched round: the frame goes to every up group's preferred
    /// replica back-to-back, then all responses are read — one RTT
    /// total on the healthy path. Groups whose preferred link fails
    /// drop to the sequential [`Coordinator::group_op`] ladder.
    /// `None` entries are down groups.
    fn round(&mut self, frame: &[u8]) -> io::Result<Vec<Option<Response<T>>>> {
        let n = self.groups.len();
        let mut out: Vec<Option<Response<T>>> = (0..n).map(|_| None).collect();
        let mut inflight: Vec<usize> = Vec::new();
        let mut pending: Vec<usize> = Vec::new();
        for g in 0..n {
            if self.groups[g].down {
                continue;
            }
            let rid = self.groups[g].active;
            let ready = self.groups[g].conns[rid].is_some()
                && match &self.session {
                    Some(ctx) => {
                        self.groups[g].pinned[rid] == Some(ctx.tenant) && !ctx.refresh_pending[g]
                    }
                    None => true,
                };
            if !ready {
                pending.push(g);
                continue;
            }
            match self.groups[g].conns[rid]
                .as_mut()
                .expect("checked ready")
                .send_frame(frame)
            {
                Ok(()) => inflight.push(g),
                Err(e) => {
                    if classify_net(&e) == NetErrorKind::Fatal {
                        return Err(e);
                    }
                    self.groups[g].conns[rid] = None;
                    self.groups[g].pinned[rid] = None;
                    pending.push(g);
                }
            }
        }
        for g in inflight {
            let rid = self.groups[g].active;
            let resp = self.groups[g].conns[rid]
                .as_mut()
                .expect("sent on this link")
                .recv_frame()
                .and_then(|raw| Response::decode(&raw));
            match resp {
                Ok(r) => out[g] = Some(r),
                Err(e) => {
                    if classify_net(&e) == NetErrorKind::Fatal {
                        return Err(e);
                    }
                    self.groups[g].conns[rid] = None;
                    self.groups[g].pinned[rid] = None;
                    pending.push(g);
                }
            }
        }
        for g in pending {
            out[g] = match self.group_op(g, Some(frame))? {
                GroupReply::Resp(r) => Some(r),
                GroupReply::Pinned => unreachable!("frame was provided"),
                GroupReply::Down => None,
            };
        }
        Ok(out)
    }

    // -----------------------------------------------------------------
    // Write path: replicated, at-most-once.

    /// One write op to one replica. Connect errors retry under the
    /// policy, but once the frame has been sent there is **no** retry —
    /// writes are not idempotent, and a replica that cannot acknowledge
    /// a write is an error, not a failover (the replication contract
    /// requires every replica to apply it).
    fn write_replica(&mut self, g: usize, rid: usize, frame: &[u8]) -> io::Result<Response<T>> {
        let mut prev_delay = self.retry.base_delay;
        for attempt in 1..=self.retry.max_attempts.max(1) {
            if self.groups[g].conns[rid].is_none() {
                let addr = self.groups[g].replicas[rid].clone();
                match self.connector.connect(&addr) {
                    Ok(t) => {
                        self.groups[g].conns[rid] = Some(t);
                        self.groups[g].pinned[rid] = None;
                    }
                    Err(e) => {
                        if classify_net(&e) == NetErrorKind::Transient
                            && attempt < self.retry.max_attempts.max(1)
                        {
                            prev_delay = self.retry.next_backoff(&mut self.rng, prev_delay);
                            if !prev_delay.is_zero() {
                                std::thread::sleep(prev_delay);
                            }
                            continue;
                        }
                        return Err(e);
                    }
                }
            }
            let conn = self.groups[g].conns[rid].as_mut().expect("just ensured");
            let sent = conn
                .send_frame(frame)
                .and_then(|()| conn.recv_frame())
                .and_then(|raw| Response::decode(&raw));
            return match sent {
                Ok(resp) => Ok(resp),
                Err(e) => {
                    self.groups[g].conns[rid] = None;
                    self.groups[g].pinned[rid] = None;
                    Err(e)
                }
            };
        }
        unreachable!("loop always returns")
    }

    /// Liveness round-trip to every group (one reachable replica each);
    /// errors if any group is down.
    pub fn ping(&mut self) -> io::Result<()> {
        let frame = Request::<T>::Ping.encode();
        for (g, resp) in self.round(&frame)?.into_iter().enumerate() {
            match resp {
                Some(Response::Pong) => {}
                Some(other) => return Err(unexpected("Pong", &other)),
                None => return Err(svc_err(format!("replica group {g} is down"))),
            }
        }
        Ok(())
    }

    /// Weighted stream ingest into one group's engine — applied to
    /// **every** replica of the group, which is what entitles reads to
    /// fail over between them. Returns `(items, weight)` acknowledged.
    pub fn ingest(&mut self, group: usize, items: &[(T, u64)]) -> io::Result<(u64, u64)> {
        if group >= self.groups.len() {
            return Err(svc_err(format!("no group {group}")));
        }
        let frame = Request::Ingest {
            items: items.to_vec(),
        }
        .encode();
        let mut acked = None;
        for rid in 0..self.groups[group].replicas.len() {
            match self.write_replica(group, rid, &frame)? {
                Response::Ingested { items, weight } => acked = Some((items, weight)),
                Response::Error { message } => return Err(svc_err(message)),
                other => return Err(unexpected("Ingested", &other)),
            }
        }
        Ok(acked.expect("groups have at least one replica"))
    }

    /// Archive the current stream into a time-step partition on every
    /// replica of every group. Returns per-group shard counts.
    pub fn end_step(&mut self) -> io::Result<Vec<u64>> {
        let frame = Request::<T>::EndStep.encode();
        let mut out = Vec::with_capacity(self.groups.len());
        for g in 0..self.groups.len() {
            let mut group_shards = None;
            for rid in 0..self.groups[g].replicas.len() {
                match self.write_replica(g, rid, &frame)? {
                    Response::StepEnded { shards } => group_shards = Some(shards),
                    Response::Error { message } => return Err(svc_err(message)),
                    other => return Err(unexpected("StepEnded", &other)),
                }
            }
            out.push(group_shards.expect("groups have at least one replica"));
        }
        Ok(out)
    }

    // -----------------------------------------------------------------
    // Sessions.

    /// Pin (or re-pin) `tenant`'s session on every group's preferred
    /// replica; `refresh` asks the servers for fresh snapshots and
    /// re-attempts down groups (the one healing point).
    fn open_sessions(&mut self, tenant: u64, refresh: bool) -> io::Result<()> {
        let n = self.groups.len();
        self.session = Some(SessionCtx {
            tenant,
            refresh_pending: vec![refresh; n],
            reseeded: false,
        });
        if refresh {
            let mut healed = false;
            for grp in &mut self.groups {
                healed |= grp.down;
                grp.down = false;
                // Force a fresh pin everywhere so every replica that
                // serves this session observes the refreshed epoch.
                for p in &mut grp.pinned {
                    *p = None;
                }
            }
            if healed {
                self.down_epoch += 1;
            }
        }
        for g in 0..n {
            self.group_op(g, None)?;
        }
        Ok(())
    }

    /// Merge up-group vitals into session vitals; errors when no group
    /// is reachable or the up groups disagree on ε (a mixed-ε fleet has
    /// no single acceptance window).
    fn fleet_vitals(&self) -> io::Result<SessionVitals> {
        let mut vitals = SessionVitals {
            total: 0,
            stream_weight: 0,
            quarantined: 0,
            epsilon: 0.0,
            missing_weight: self.missing_weight(),
        };
        let mut first_eps: Option<(usize, f64)> = None;
        for (g, grp) in self.groups.iter().enumerate() {
            if grp.down {
                continue;
            }
            let v = grp
                .vitals
                .ok_or_else(|| svc_err(format!("group {g} has no recorded vitals")))?;
            vitals.total += v.total;
            vitals.stream_weight += v.stream_weight;
            vitals.quarantined += v.quarantined;
            match first_eps {
                None => {
                    first_eps = Some((g, v.epsilon));
                    vitals.epsilon = v.epsilon;
                }
                Some((g0, eps0)) if eps0.to_bits() != v.epsilon.to_bits() => {
                    return Err(svc_err(format!(
                        "group {g} runs query epsilon {}, group {g0} runs {eps0}",
                        v.epsilon
                    )));
                }
                Some(_) => {}
            }
        }
        if first_eps.is_none() {
            return Err(NetError::Fatal(
                "every replica group is down; nothing reachable to answer from".into(),
            )
            .into());
        }
        Ok(vitals)
    }

    /// Non-destructive peek at the session's re-seed flag.
    fn session_reseeded(&self) -> bool {
        self.session.as_ref().is_some_and(|ctx| ctx.reseeded)
    }

    fn clear_reseeded(&mut self) {
        if let Some(ctx) = &mut self.session {
            ctx.reseeded = false;
        }
    }

    /// Open (or resume) the tenant's session on every group, pinning
    /// one snapshot epoch per group. Repeated sessions for the same
    /// tenant reuse the pinned snapshots — and therefore the nodes'
    /// cached summaries — until [`TenantSession::refresh`].
    pub fn session(&mut self, tenant: u64) -> io::Result<TenantSession<'_, T>> {
        self.open_sessions(tenant, false)?;
        self.clear_reseeded();
        if self.strict && self.missing_weight() > 0 {
            return Err(strict_refusal(self.missing_weight()));
        }
        let vitals = self.fleet_vitals()?;
        let seen_down_epoch = self.down_epoch;
        Ok(TenantSession {
            coord: self,
            tenant,
            vitals,
            seen_down_epoch,
            summary: None,
            windows: HashMap::new(),
        })
    }
}

/// Session-wide vitals merged from every up group's recorded vitals.
#[derive(Clone, Debug)]
struct SessionVitals {
    total: u64,
    stream_weight: u64,
    quarantined: u64,
    epsilon: f64,
    missing_weight: u64,
}

fn unexpected<T>(wanted: &str, got: &Response<T>) -> io::Error {
    let kind = match got {
        Response::Pong => "Pong",
        Response::Ingested { .. } => "Ingested",
        Response::StepEnded { .. } => "StepEnded",
        Response::Session { .. } => "Session",
        Response::Extract { .. } => "Extract",
        Response::WindowUnavailable => "WindowUnavailable",
        Response::Bounds { .. } => "Bounds",
        Response::Error { .. } => "Error",
    };
    svc_err(format!("expected {wanted} response, got {kind}"))
}

/// The remote [`RankProbeSource`]: each probe is one batched round over
/// every up group, bounds summed. A membership change or session
/// re-seed mid-bisection surfaces as [`QueryInterrupted`] so the query
/// loop can re-sync and restart against the surviving fleet.
struct RemoteProbes<'a, T: Item> {
    coord: &'a mut Coordinator<T>,
    tenant: u64,
    window: Option<u64>,
    rounds: u32,
    trips: u64,
}

impl<T: Item> RankProbeSource<T> for RemoteProbes<'_, T> {
    fn probe(&mut self, z: T) -> io::Result<(u64, u64)> {
        let epoch0 = self.coord.down_epoch;
        let req: Request<T> = Request::Probe {
            tenant: self.tenant,
            window: self.window,
            zs: vec![z],
        };
        let frame = req.encode();
        let responses = self.coord.round(&frame)?;
        if self.coord.down_epoch != epoch0 || self.coord.session_reseeded() {
            return Err(interrupted());
        }
        let mut lo = 0u64;
        let mut hi = 0u64;
        let mut up = 0u64;
        for resp in responses.into_iter().flatten() {
            match resp {
                Response::Bounds { bounds } if bounds.len() == 1 => {
                    lo += bounds[0].0;
                    hi += bounds[0].1;
                    up += 1;
                }
                Response::Bounds { bounds } => {
                    return Err(svc_err(format!(
                        "probe round answered {} bounds for 1 probe",
                        bounds.len()
                    )))
                }
                Response::Error { message } => return Err(svc_err(message)),
                other => return Err(unexpected("Bounds", &other)),
            }
        }
        self.rounds += 1;
        self.trips += up;
        Ok((lo, hi))
    }
}

/// One tenant's query session: pinned group snapshots, a locally
/// rebuilt combined summary (fetched once, reused across queries), and
/// the query API mirroring [`hsq_core::ShardedSnapshot`]. Failovers,
/// retries, and degraded accounting all happen underneath this API —
/// callers only see them in [`ServedQuery`]'s metadata.
pub struct TenantSession<'a, T: Item> {
    coord: &'a mut Coordinator<T>,
    tenant: u64,
    vitals: SessionVitals,
    seen_down_epoch: u64,
    summary: Option<CombinedSummary<T>>,
    windows: HashMap<u64, Option<(CombinedSummary<T>, u64)>>,
}

impl<T: Item> TenantSession<'_, T> {
    /// Total size `N` of the *reachable* union at session-pin time.
    pub fn total_len(&self) -> u64 {
        self.vitals.total
    }

    /// Stream weight `m` over the reachable union — the `ε·m`
    /// denominator.
    pub fn stream_len(&self) -> u64 {
        self.vitals.stream_weight
    }

    /// The fleet's accurate-response error parameter.
    pub fn query_epsilon(&self) -> f64 {
        self.vitals.epsilon
    }

    /// Summed recorded weight of unreachable groups; non-zero means
    /// answers are degraded (or refused, under strict mode).
    pub fn missing_weight(&self) -> u64 {
        self.vitals.missing_weight
    }

    /// Re-pin every group's snapshot to current engine state, re-attempt
    /// down groups, and drop the locally cached summaries.
    pub fn refresh(&mut self) -> io::Result<()> {
        self.coord.open_sessions(self.tenant, true)?;
        self.coord.clear_reseeded();
        if self.coord.strict && self.coord.missing_weight() > 0 {
            return Err(strict_refusal(self.coord.missing_weight()));
        }
        self.vitals = self.coord.fleet_vitals()?;
        self.seen_down_epoch = self.coord.down_epoch;
        self.summary = None;
        self.windows.clear();
        Ok(())
    }

    /// Fold fleet changes (groups lost, sessions re-seeded after
    /// failover) into this session: drop stale caches and recompute
    /// vitals over the reachable union.
    fn sync(&mut self) -> io::Result<()> {
        if self.coord.strict && self.coord.missing_weight() > 0 {
            return Err(strict_refusal(self.coord.missing_weight()));
        }
        if self.seen_down_epoch != self.coord.down_epoch || self.coord.session_reseeded() {
            self.coord.clear_reseeded();
            self.seen_down_epoch = self.coord.down_epoch;
            self.summary = None;
            self.windows.clear();
            self.vitals = self.coord.fleet_vitals()?;
        }
        Ok(())
    }

    /// Fetch-and-rebuild the reachable union's combined summary (once
    /// per session): every up group's extract, concatenated in group
    /// order.
    fn ensure_summary(&mut self) -> io::Result<()> {
        if self.summary.is_some() {
            return Ok(());
        }
        let epoch0 = self.coord.down_epoch;
        let frame = Request::<T>::Extract {
            tenant: self.tenant,
            window: None,
        }
        .encode();
        let responses = self.coord.round(&frame)?;
        if self.coord.down_epoch != epoch0 || self.coord.session_reseeded() {
            return Err(interrupted());
        }
        let mut sources: Vec<SourceView<T>> = Vec::new();
        let mut total = 0u64;
        for resp in responses.into_iter().flatten() {
            match resp {
                Response::Extract {
                    total: t,
                    sources: s,
                } => {
                    total += t;
                    sources.extend(s);
                }
                Response::Error { message } => return Err(svc_err(message)),
                other => return Err(unexpected("Extract", &other)),
            }
        }
        if total != self.vitals.total {
            return Err(svc_err(format!(
                "extract total {total} disagrees with session total {}",
                self.vitals.total
            )));
        }
        self.summary = Some(CombinedSummary::build(&sources));
        Ok(())
    }

    /// Fetch-and-rebuild the windowed summary for `window_steps` (once
    /// per session per window). `None` — cached — when any up group
    /// reports the window unavailable.
    fn ensure_window(&mut self, window_steps: u64) -> io::Result<()> {
        if self.windows.contains_key(&window_steps) {
            return Ok(());
        }
        let epoch0 = self.coord.down_epoch;
        let frame = Request::<T>::Extract {
            tenant: self.tenant,
            window: Some(window_steps),
        }
        .encode();
        let responses = self.coord.round(&frame)?;
        if self.coord.down_epoch != epoch0 || self.coord.session_reseeded() {
            return Err(interrupted());
        }
        let mut sources: Vec<SourceView<T>> = Vec::new();
        let mut total = 0u64;
        let mut available = true;
        for resp in responses.into_iter().flatten() {
            match resp {
                Response::Extract {
                    total: t,
                    sources: s,
                } => {
                    total += t;
                    sources.extend(s);
                }
                Response::WindowUnavailable => available = false,
                Response::Error { message } => return Err(svc_err(message)),
                other => return Err(unexpected("Extract", &other)),
            }
        }
        let entry = if available {
            Some((CombinedSummary::build(&sources), total))
        } else {
            None
        };
        self.windows.insert(window_steps, entry);
        Ok(())
    }

    fn outcome(&self, value: T, estimated_rank: u64, steps: u32) -> QueryOutcome<T> {
        let eps_m = self.eps_m();
        let quarantined = self.vitals.quarantined;
        let missing = self.vitals.missing_weight;
        QueryOutcome {
            value,
            io: IoSnapshot::default(),
            bisection_steps: steps,
            estimated_rank,
            prefetch_hits: 0,
            prefetch_wasted: 0,
            rank_lo: estimated_rank.saturating_sub(eps_m),
            // One-sided widening, exactly as for quarantined mass: the
            // unreachable groups' items can only push a true full-union
            // rank up, never below the reachable-union lower bound.
            rank_hi: estimated_rank + eps_m + quarantined + missing,
            degraded: quarantined > 0 || missing > 0,
            quarantined,
        }
    }

    /// `⌊ε·m⌋` — same rounding as the in-process acceptance rule, so
    /// remote and in-process bisections accept identically.
    fn eps_m(&self) -> u64 {
        (self.vitals.epsilon * self.vitals.stream_weight as f64).floor() as u64
    }

    /// Restart budget for one query: each restart needs a membership
    /// change or re-seed, both of which are bounded, but keep a hard
    /// cap against pathological flapping.
    fn restart_budget(&self) -> u32 {
        let replicas: usize = self.coord.groups.iter().map(|g| g.replicas.len()).sum();
        replicas as u32 + 8
    }

    /// Accurate cross-group rank query: same bisection, same seed
    /// bracket, same tolerance as
    /// [`hsq_core::ShardedSnapshot::rank_query`] — the probes just
    /// travel over TCP, with failover/degradation handled underneath.
    pub fn rank_query(&mut self, r: u64) -> io::Result<Option<ServedQuery<T>>> {
        let failovers0 = self.coord.failovers;
        let mut rounds = 0u32;
        let mut trips = 0u64;
        for _ in 0..self.restart_budget() {
            self.sync()?;
            if self.vitals.total == 0 {
                return Ok(None);
            }
            let r = r.clamp(1, self.vitals.total);
            match self.ensure_summary() {
                Ok(()) => {}
                Err(e) if is_interrupted(&e) => continue,
                Err(e) => return Err(e),
            }
            let ts = self.summary.as_ref().expect("summary just ensured");
            let (u, v) = ts.seed_bracket(r);
            let eps_m = self.eps_m();
            let mut probes = RemoteProbes {
                coord: self.coord,
                tenant: self.tenant,
                window: None,
                rounds: 0,
                trips: 0,
            };
            let result = bisect_summed_rank(r, eps_m, u, v, &mut probes);
            rounds += probes.rounds;
            trips += probes.trips;
            match result {
                Ok((value, estimated_rank, steps)) => {
                    return Ok(Some(ServedQuery {
                        outcome: self.outcome(value, estimated_rank, steps),
                        probe_rounds: rounds,
                        round_trips: trips,
                        missing_weight: self.vitals.missing_weight,
                        failovers: self.coord.failovers - failovers0,
                    }));
                }
                Err(e) if is_interrupted(&e) => continue,
                Err(e) => return Err(e),
            }
        }
        Err(svc_err("query restarted too many times; fleet is flapping"))
    }

    /// Accurate φ-quantile over the reachable union.
    pub fn quantile(&mut self, phi: f64) -> io::Result<Option<ServedQuery<T>>> {
        assert!(phi > 0.0 && phi <= 1.0, "phi must be in (0, 1]");
        self.sync()?;
        let r = (phi * self.vitals.total as f64).ceil() as u64;
        self.rank_query(r)
    }

    /// Quick response from the locally rebuilt combined summary: no
    /// probe rounds at all (after the one-time extract fetch), error
    /// ≤ 1.5·ε·N — the dashboard fast path.
    pub fn quantile_quick(&mut self, phi: f64) -> io::Result<Option<T>> {
        assert!(phi > 0.0 && phi <= 1.0, "phi must be in (0, 1]");
        for _ in 0..self.restart_budget() {
            self.sync()?;
            let r = (phi * self.vitals.total as f64).ceil() as u64;
            match self.ensure_summary() {
                Ok(()) => {}
                Err(e) if is_interrupted(&e) => continue,
                Err(e) => return Err(e),
            }
            let ts = self.summary.as_ref().expect("summary just ensured");
            return Ok(ts.quick_response(r.clamp(1, ts.total().max(1))));
        }
        Err(svc_err("query restarted too many times; fleet is flapping"))
    }

    /// Windowed accurate rank query (newest `window_steps` steps on
    /// every up group). `Ok(None)` when any group's partitions misalign
    /// with the window boundary, mirroring
    /// [`hsq_core::ShardedSnapshot::rank_in_window`].
    pub fn rank_in_window(
        &mut self,
        window_steps: u64,
        r: u64,
    ) -> io::Result<Option<ServedQuery<T>>> {
        let failovers0 = self.coord.failovers;
        let mut rounds = 0u32;
        let mut trips = 0u64;
        for _ in 0..self.restart_budget() {
            self.sync()?;
            match self.ensure_window(window_steps) {
                Ok(()) => {}
                Err(e) if is_interrupted(&e) => continue,
                Err(e) => return Err(e),
            }
            let Some((ts, wtotal)) = self.windows[&window_steps].as_ref() else {
                return Ok(None);
            };
            let wtotal = *wtotal;
            if wtotal == 0 {
                return Ok(None);
            }
            let r = r.clamp(1, wtotal);
            let (u, v) = ts.seed_bracket(r);
            // ε·m over the FULL stream weight, exactly as in-process
            // windowed queries: the stream is entirely inside every
            // window.
            let eps_m = self.eps_m();
            let mut probes = RemoteProbes {
                coord: self.coord,
                tenant: self.tenant,
                window: Some(window_steps),
                rounds: 0,
                trips: 0,
            };
            let result = bisect_summed_rank(r, eps_m, u, v, &mut probes);
            rounds += probes.rounds;
            trips += probes.trips;
            match result {
                Ok((value, estimated_rank, steps)) => {
                    return Ok(Some(ServedQuery {
                        outcome: self.outcome(value, estimated_rank, steps),
                        probe_rounds: rounds,
                        round_trips: trips,
                        missing_weight: self.vitals.missing_weight,
                        failovers: self.coord.failovers - failovers0,
                    }));
                }
                Err(e) if is_interrupted(&e) => continue,
                Err(e) => return Err(e),
            }
        }
        Err(svc_err("query restarted too many times; fleet is flapping"))
    }

    /// Windowed accurate φ-quantile; `Ok(None)` when the window
    /// misaligns on any up group or holds no data.
    pub fn quantile_in_window(
        &mut self,
        window_steps: u64,
        phi: f64,
    ) -> io::Result<Option<ServedQuery<T>>> {
        assert!(phi > 0.0 && phi <= 1.0, "phi must be in (0, 1]");
        for _ in 0..self.restart_budget() {
            self.sync()?;
            match self.ensure_window(window_steps) {
                Ok(()) => {}
                Err(e) if is_interrupted(&e) => continue,
                Err(e) => return Err(e),
            }
            let Some((_, wtotal)) = self.windows[&window_steps].as_ref() else {
                return Ok(None);
            };
            let wtotal = *wtotal;
            if wtotal == 0 {
                return Ok(None);
            }
            let r = (phi * wtotal as f64).ceil() as u64;
            return self.rank_in_window(window_steps, r);
        }
        Err(svc_err("query restarted too many times; fleet is flapping"))
    }
}
