//! # hsq-workload — evaluation datasets for the VLDB'16 reproduction
//!
//! Generators for the four datasets of the paper's §3.1, all emitting
//! `u64` values and all deterministic under a seed:
//!
//! * [`NormalGen`] — "generated using normal distribution with a mean of
//!   100 million and a standard deviation of 10 million";
//! * [`UniformGen`] — "elements uniformly at random from a universe of
//!   integers ranging from 10⁸ to 10⁹";
//! * [`WikipediaGen`] — substitute for the Wikipedia page-view dump
//!   (tuples are response sizes): heavy-tailed log-normal page sizes.
//!   See DESIGN.md for the substitution rationale;
//! * [`NetTraceGen`] — substitute for the OC48 ISP trace (tuples are
//!   source–destination pairs): Zipf-popular hosts over a 2³² address
//!   space, packed as `src·2³² + dst`.
//!
//! [`TimeStepDriver`] slices any generator into the paper's processing
//! model: a stream of per-time-step batches (§1.1, Figure 1).
//! [`SampledTelemetryGen`] wraps any generator into weighted
//! `(value, weight)` pairs — sampled telemetry where each record stands
//! in for `w` originals — for the engine's weighted ingestion path.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod zipf;

pub use zipf::Zipf;

/// A deterministic, endless source of `u64` data values.
pub trait DataGen {
    /// Produce the next value.
    fn next_value(&mut self) -> u64;

    /// Produce `n` values into a fresh vector.
    fn take_vec(&mut self, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.next_value()).collect()
    }
}

/// The paper's "Normal" dataset: `N(10⁸, 10⁷)`, truncated at zero and
/// rounded to integers.
#[derive(Clone, Debug)]
pub struct NormalGen {
    rng: StdRng,
    mean: f64,
    std: f64,
    /// Second deviate from the Box–Muller pair, if buffered.
    spare: Option<f64>,
}

impl NormalGen {
    /// Paper parameters: mean 10⁸, standard deviation 10⁷.
    pub fn new(seed: u64) -> Self {
        Self::with_params(seed, 1e8, 1e7)
    }

    /// Custom mean/std (std must be positive).
    pub fn with_params(seed: u64, mean: f64, std: f64) -> Self {
        assert!(std > 0.0, "std must be positive");
        NormalGen {
            rng: StdRng::seed_from_u64(seed),
            mean,
            std,
            spare: None,
        }
    }

    /// One standard normal deviate (Box–Muller).
    fn std_normal(&mut self) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        loop {
            let u1: f64 = self.rng.gen::<f64>();
            let u2: f64 = self.rng.gen::<f64>();
            if u1 <= f64::MIN_POSITIVE {
                continue;
            }
            let r = (-2.0 * u1.ln()).sqrt();
            let (s, c) = (2.0 * std::f64::consts::PI * u2).sin_cos();
            self.spare = Some(r * s);
            return r * c;
        }
    }
}

impl DataGen for NormalGen {
    fn next_value(&mut self) -> u64 {
        let v = self.mean + self.std * self.std_normal();
        v.max(0.0).round() as u64
    }
}

/// The paper's "Uniform Random" dataset: integers uniform in `[10⁸, 10⁹)`.
#[derive(Clone, Debug)]
pub struct UniformGen {
    rng: StdRng,
    lo: u64,
    hi: u64,
}

impl UniformGen {
    /// Paper parameters: `[10⁸, 10⁹)`.
    pub fn new(seed: u64) -> Self {
        Self::with_range(seed, 100_000_000, 1_000_000_000)
    }

    /// Uniform over `[lo, hi)`.
    pub fn with_range(seed: u64, lo: u64, hi: u64) -> Self {
        assert!(lo < hi, "empty range");
        UniformGen {
            rng: StdRng::seed_from_u64(seed),
            lo,
            hi,
        }
    }
}

impl DataGen for UniformGen {
    fn next_value(&mut self) -> u64 {
        self.rng.gen_range(self.lo..self.hi)
    }
}

/// Substitute for the paper's Wikipedia page-view dataset.
///
/// The real dataset's tuples are "the size of the page returned by a
/// request to Wikipedia" — response sizes, which are classically
/// heavy-tailed. We model them as `⌊exp(N(μ, σ))⌋` bytes with
/// `μ = ln(8 KiB)`, `σ = 1.7`, clamped to `[64 B, 1 GiB]`: a long right
/// tail, heavy duplication at the head, values spanning ~7 orders of
/// magnitude — the properties the quantile structures actually exercise.
#[derive(Clone, Debug)]
pub struct WikipediaGen {
    normal: NormalGen,
}

impl WikipediaGen {
    /// Default parameters (see type docs).
    pub fn new(seed: u64) -> Self {
        WikipediaGen {
            normal: NormalGen::with_params(seed, (8192.0f64).ln(), 1.7),
        }
    }
}

impl DataGen for WikipediaGen {
    fn next_value(&mut self) -> u64 {
        // Use the raw deviate: NormalGen::next_value would round/clamp in
        // linear space, we exponentiate first.
        let z = self.normal.std_normal();
        let ln_size = self.normal.mean + self.normal.std * z;
        (ln_size.exp().round() as u64).clamp(64, 1 << 30)
    }
}

/// Substitute for the paper's OC48 network trace.
///
/// The real dataset's tuples are anonymized source–destination pairs. We
/// draw source and destination hosts from a Zipf(α = 1.1) popularity
/// distribution over `2¹⁶` distinct hosts mapped into a 2³² address
/// space, and pack the pair as `src·2³² + dst`. This preserves what the
/// algorithms see: a huge, extremely skewed integer universe with heavy
/// key repetition (the regime where Q-Digest's `log U` factor and GK's
/// duplicate handling matter).
#[derive(Clone, Debug)]
pub struct NetTraceGen {
    rng: StdRng,
    zipf: Zipf,
    /// Pseudorandom but fixed host-id -> 32-bit address mapping.
    addr_salt: u64,
}

impl NetTraceGen {
    /// Default parameters: 2¹⁶ hosts, α = 1.1.
    pub fn new(seed: u64) -> Self {
        Self::with_params(seed, 1 << 16, 1.1)
    }

    /// Custom host count and skew.
    pub fn with_params(seed: u64, hosts: usize, alpha: f64) -> Self {
        NetTraceGen {
            rng: StdRng::seed_from_u64(seed),
            zipf: Zipf::new(hosts, alpha),
            addr_salt: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
        }
    }

    /// Map a host rank to a stable 32-bit address (splitmix-style hash).
    fn host_addr(&self, host: u64) -> u64 {
        let mut x = host.wrapping_add(self.addr_salt);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (x ^ (x >> 31)) & 0xFFFF_FFFF
    }
}

impl DataGen for NetTraceGen {
    fn next_value(&mut self) -> u64 {
        let src = self.zipf.sample(&mut self.rng) as u64;
        let dst = self.zipf.sample(&mut self.rng) as u64;
        (self.host_addr(src) << 32) | self.host_addr(dst)
    }
}

/// Weighted `(value, weight)` pairs modeling *sampled telemetry*: each
/// record stands in for `w` identical originals (the inverse sampling
/// rate), the regime the engine's weighted ingestion
/// (`stream_update_weighted`) targets.
///
/// Weights are powers of two — `w = 2^k` with probability `2^-(k+1)`,
/// capped at `max_weight` — mirroring how samplers typically halve their
/// rate under load: most records arrive unsampled (`w = 1`) while a
/// geometric tail carries large weights, so the *weight mass* is spread
/// far more evenly than the record count. Values come from any wrapped
/// [`DataGen`]; weights come from an independent LCG, so the value
/// stream is identical to the unweighted generator under the same seed.
pub struct SampledTelemetryGen {
    gen: Box<dyn DataGen + Send>,
    /// LCG state for the weight channel (kept separate from the value
    /// generator so weighting never perturbs the values).
    lcg: u64,
    max_weight: u64,
}

impl SampledTelemetryGen {
    /// Wrap `dataset`'s generator; weights capped at `max_weight`
    /// (rounded down to a power of two, at least 1).
    pub fn new(dataset: Dataset, seed: u64, max_weight: u64) -> Self {
        Self::wrapping(dataset.generator(seed), seed, max_weight)
    }

    /// Wrap an arbitrary generator (same weight channel semantics).
    pub fn wrapping(gen: Box<dyn DataGen + Send>, seed: u64, max_weight: u64) -> Self {
        assert!(max_weight >= 1, "max_weight must be at least 1");
        SampledTelemetryGen {
            gen,
            lcg: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
            max_weight: max_weight.next_power_of_two().min(1 << 62),
        }
    }

    /// Produce the next `(value, weight)` pair.
    pub fn next_pair(&mut self) -> (u64, u64) {
        self.lcg = self
            .lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        // Trailing-zero count of uniform bits is geometric(1/2): k zeros
        // with probability 2^-(k+1).
        let k = ((self.lcg >> 33) | (1 << 30)).trailing_zeros();
        let w = (1u64 << k).min(self.max_weight);
        (self.gen.next_value(), w)
    }

    /// Produce `n` pairs into a fresh vector.
    pub fn take_pairs(&mut self, n: usize) -> Vec<(u64, u64)> {
        (0..n).map(|_| self.next_pair()).collect()
    }
}

/// The four evaluation datasets of the paper's §3.1, by name.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Normal(10⁸, 10⁷) synthetic data.
    Normal,
    /// Uniform over [10⁸, 10⁹) synthetic data.
    Uniform,
    /// Wikipedia-like page sizes (heavy-tailed log-normal).
    Wikipedia,
    /// Network-trace-like source–destination pairs (Zipf hosts).
    NetTrace,
}

impl Dataset {
    /// All four datasets, in the paper's figure order.
    pub const ALL: [Dataset; 4] = [
        Dataset::Uniform,
        Dataset::Normal,
        Dataset::Wikipedia,
        Dataset::NetTrace,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Normal => "Normal",
            Dataset::Uniform => "Uniform Random",
            Dataset::Wikipedia => "Wikipedia",
            Dataset::NetTrace => "Network Trace",
        }
    }

    /// Build the generator with a seed.
    pub fn generator(self, seed: u64) -> Box<dyn DataGen + Send> {
        match self {
            Dataset::Normal => Box::new(NormalGen::new(seed)),
            Dataset::Uniform => Box::new(UniformGen::new(seed)),
            Dataset::Wikipedia => Box::new(WikipediaGen::new(seed)),
            Dataset::NetTrace => Box::new(NetTraceGen::new(seed)),
        }
    }
}

impl std::str::FromStr for Dataset {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "normal" => Ok(Dataset::Normal),
            "uniform" => Ok(Dataset::Uniform),
            "wikipedia" | "wiki" => Ok(Dataset::Wikipedia),
            "nettrace" | "network" | "trace" => Ok(Dataset::NetTrace),
            other => Err(format!(
                "unknown dataset '{other}' (expected normal|uniform|wikipedia|nettrace)"
            )),
        }
    }
}

/// Slices a generator into the paper's processing model: `T` time steps,
/// each delivering a batch of `step_size` streaming elements that is
/// subsequently archived (§1.1, Figure 1).
pub struct TimeStepDriver {
    gen: Box<dyn DataGen + Send>,
    step_size: usize,
    steps_emitted: usize,
    total_steps: usize,
}

impl TimeStepDriver {
    /// Driver over `dataset` emitting `total_steps` batches of
    /// `step_size` elements.
    pub fn new(dataset: Dataset, seed: u64, step_size: usize, total_steps: usize) -> Self {
        TimeStepDriver {
            gen: dataset.generator(seed),
            step_size,
            steps_emitted: 0,
            total_steps,
        }
    }

    /// Batches already emitted.
    pub fn steps_emitted(&self) -> usize {
        self.steps_emitted
    }

    /// Batches remaining.
    pub fn steps_remaining(&self) -> usize {
        self.total_steps - self.steps_emitted
    }
}

impl Iterator for TimeStepDriver {
    type Item = Vec<u64>;

    fn next(&mut self) -> Option<Vec<u64>> {
        if self.steps_emitted >= self.total_steps {
            return None;
        }
        self.steps_emitted += 1;
        Some(self.gen.take_vec(self.step_size))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.steps_remaining();
        (rem, Some(rem))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_moments() {
        let mut g = NormalGen::new(1);
        let n = 200_000;
        let vals = g.take_vec(n);
        let mean = vals.iter().map(|&v| v as f64).sum::<f64>() / n as f64;
        let var = vals.iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 1e8).abs() < 1e8 * 0.01, "mean {mean}");
        assert!((var.sqrt() - 1e7).abs() < 1e7 * 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn uniform_range_and_spread() {
        let mut g = UniformGen::new(2);
        let vals = g.take_vec(100_000);
        assert!(vals
            .iter()
            .all(|&v| (100_000_000..1_000_000_000).contains(&v)));
        let mean = vals.iter().map(|&v| v as f64).sum::<f64>() / vals.len() as f64;
        assert!((mean - 5.5e8).abs() < 5.5e8 * 0.02, "mean {mean}");
    }

    #[test]
    fn wikipedia_heavy_tail() {
        let mut g = WikipediaGen::new(3);
        let mut vals = g.take_vec(100_000);
        vals.sort_unstable();
        let p50 = vals[vals.len() / 2];
        let p99 = vals[vals.len() * 99 / 100];
        // Median near 8 KiB, long tail: p99/p50 should exceed 10x.
        assert!((2048..32_768).contains(&p50), "p50 {p50}");
        assert!(p99 > p50 * 10, "tail not heavy: p99={p99} p50={p50}");
        assert!(vals.iter().all(|&v| (64..=(1 << 30)).contains(&v)));
    }

    #[test]
    fn nettrace_skew_and_universe() {
        let mut g = NetTraceGen::new(4);
        let vals = g.take_vec(100_000);
        // Universe is huge (64-bit packed pairs)...
        let max = *vals.iter().max().unwrap();
        assert!(max > 1 << 40, "max {max}");
        // ...but keys repeat heavily (Zipf skew).
        let mut uniq = vals.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert!(
            uniq.len() < vals.len() * 9 / 10,
            "expected heavy repetition, got {} uniques / {}",
            uniq.len(),
            vals.len()
        );
    }

    #[test]
    fn generators_are_deterministic() {
        for ds in Dataset::ALL {
            let a = ds.generator(99).take_vec(1000);
            let b = ds.generator(99).take_vec(1000);
            assert_eq!(a, b, "{:?} not deterministic", ds);
            let c = ds.generator(100).take_vec(1000);
            assert_ne!(a, c, "{:?} ignores seed", ds);
        }
    }

    #[test]
    fn sampled_telemetry_weights_are_geometric_and_deterministic() {
        let mut g = SampledTelemetryGen::new(Dataset::Uniform, 7, 64);
        let pairs = g.take_pairs(50_000);
        assert!(pairs.iter().all(|&(_, w)| (1..=64).contains(&w)));
        assert!(pairs.iter().all(|&(_, w)| w.is_power_of_two()));
        // Roughly half the records are unsampled (w = 1)...
        let ones = pairs.iter().filter(|&&(_, w)| w == 1).count();
        assert!(
            (20_000..30_000).contains(&ones),
            "w=1 share off: {ones}/50000"
        );
        // ...yet the heavy tail carries real mass.
        let total: u64 = pairs.iter().map(|&(_, w)| w).sum();
        assert!(total > 50_000 * 2, "total weight {total} not heavy enough");
        // Deterministic, and the value channel matches the unweighted
        // generator under the same seed.
        let again = SampledTelemetryGen::new(Dataset::Uniform, 7, 64).take_pairs(50_000);
        assert_eq!(pairs, again);
        let plain = Dataset::Uniform.generator(7).take_vec(100);
        let values: Vec<u64> = pairs[..100].iter().map(|&(v, _)| v).collect();
        assert_eq!(values, plain, "weighting must not perturb values");
    }

    #[test]
    fn driver_emits_exact_batches() {
        let mut d = TimeStepDriver::new(Dataset::Uniform, 5, 128, 7);
        let mut count = 0;
        for batch in d.by_ref() {
            assert_eq!(batch.len(), 128);
            count += 1;
        }
        assert_eq!(count, 7);
        assert_eq!(d.steps_remaining(), 0);
    }

    #[test]
    fn dataset_from_str() {
        assert_eq!("normal".parse::<Dataset>().unwrap(), Dataset::Normal);
        assert_eq!("WIKI".parse::<Dataset>().unwrap(), Dataset::Wikipedia);
        assert!("bogus".parse::<Dataset>().is_err());
    }
}
