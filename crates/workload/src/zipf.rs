//! Zipf-distributed sampling via inverse-CDF table lookup.
//!
//! Used by the network-trace generator: host popularity in real traffic is
//! famously Zipfian, so the substitute trace draws hosts from
//! `P(rank = i) ∝ 1 / i^α`.

use rand::Rng;

/// A Zipf(α) distribution over ranks `0..n`, sampled in `O(log n)` by
/// binary search over the precomputed CDF.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Distribution over `n ≥ 1` ranks with exponent `alpha > 0`.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n >= 1, "need at least one rank");
        assert!(alpha > 0.0, "alpha must be positive");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 1..=n {
            acc += 1.0 / (i as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True iff the distribution has a single rank.
    pub fn is_empty(&self) -> bool {
        false // n >= 1 by construction
    }

    /// Draw one rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rank_zero_dominates() {
        let z = Zipf::new(1000, 1.1);
        let mut rng = StdRng::seed_from_u64(8);
        let mut counts = vec![0u64; 1000];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[500]);
        // Rank 0 should capture a noticeable share under alpha=1.1.
        assert!(counts[0] > 100_000 / 20, "head count {}", counts[0]);
    }

    #[test]
    fn all_ranks_in_range() {
        let z = Zipf::new(10, 2.0);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 10);
        }
    }

    #[test]
    fn single_rank() {
        let z = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(10);
        assert_eq!(z.sample(&mut rng), 0);
    }
}
