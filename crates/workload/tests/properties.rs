//! Property-based tests for the workload generators.

use hsq_workload::{DataGen, Dataset, NormalGen, TimeStepDriver, UniformGen, Zipf};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any seed yields a deterministic, reproducible sequence.
    #[test]
    fn any_seed_is_deterministic(seed in any::<u64>()) {
        for ds in Dataset::ALL {
            let a = ds.generator(seed).take_vec(200);
            let b = ds.generator(seed).take_vec(200);
            prop_assert_eq!(a, b);
        }
    }

    /// Uniform generator respects arbitrary ranges.
    #[test]
    fn uniform_respects_range(seed in any::<u64>(), lo in 0u64..1_000_000, span in 1u64..1_000_000) {
        let hi = lo + span;
        let mut g = UniformGen::with_range(seed, lo, hi);
        for _ in 0..500 {
            let v = g.next_value();
            prop_assert!((lo..hi).contains(&v));
        }
    }

    /// Normal generator tracks its configured mean for any parameters.
    #[test]
    fn normal_tracks_mean(seed in any::<u64>(), mean in 1_000.0f64..1e7, std_frac in 0.01f64..0.2) {
        let std = mean * std_frac;
        let mut g = NormalGen::with_params(seed, mean, std);
        let n = 5_000;
        let sum: f64 = (0..n).map(|_| g.next_value() as f64).sum();
        let sample_mean = sum / n as f64;
        // 5000 samples: mean within ~5 standard errors.
        let tolerance = 5.0 * std / (n as f64).sqrt() + 1.0;
        prop_assert!(
            (sample_mean - mean).abs() < tolerance,
            "sample mean {sample_mean} vs {mean} (tol {tolerance})"
        );
    }

    /// Zipf samples are in range and rank-0 dominates for alpha > 1.
    #[test]
    fn zipf_in_range(n in 2usize..5_000, alpha_deci in 11u32..30, seed in any::<u64>()) {
        let z = Zipf::new(n, alpha_deci as f64 / 10.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut head = 0;
        let draws = 2_000;
        for _ in 0..draws {
            let r = z.sample(&mut rng);
            prop_assert!(r < n);
            if r == 0 {
                head += 1;
            }
        }
        // alpha >= 1.1 over n >= 2 ranks: rank 0 gets a clear plurality.
        prop_assert!(head * n >= draws, "head {head}/{draws} too small for n={n}");
    }

    /// The driver partitions the generator stream without gaps or overlap.
    #[test]
    fn driver_equals_flat_generation(steps in 1usize..10, step_size in 1usize..200, seed in any::<u64>()) {
        let flat = Dataset::Normal.generator(seed).take_vec(steps * step_size);
        let chunked: Vec<u64> = TimeStepDriver::new(Dataset::Normal, seed, step_size, steps)
            .flatten()
            .collect();
        prop_assert_eq!(flat, chunked);
    }
}
