//! Sharded multi-tenant engine: hash-partitioned [`HistStreamQuantiles`]
//! shards with mergeable cross-shard queries.
//!
//! **Extension beyond the paper**, which serves one stream against one
//! warehouse. A production deployment (TidalRace-style, §1) serves many
//! independent streams at once; the standard lever for scaling sketch
//! systems is *mergeability* — KLL-style compactor sketches are designed
//! around merge, and the same property holds here because ranks over a
//! disjoint union add:
//!
//! `rank(z, T) = Σ_s rank(z, T_s)`  for any partitioning of `T` into
//! shards `T_s`.
//!
//! [`ShardedEngine`] hash-partitions items across `k` independent engine
//! shards (each with its own GK stream sketch and warehouse), fans
//! ingestion out per shard (parallel, via the bounded pool in
//! [`crate::parallel`]), and answers quantile/rank queries by *fan-in*: a
//! global value-space bisection over the summed per-shard
//! `(rank_lo, rank_hi)` bounds. Each shard contributes uncertainty at
//! most `ε·m_s`, so the summed bounds carry uncertainty at most
//! `ε·Σm_s = ε·m` — the combined answer keeps the exact same Theorem-2
//! guarantee as a single engine fed the union.
//!
//! Queries run against a [`ShardedSnapshot`] (one pinned
//! [`EngineSnapshot`] per shard), so readers proceed concurrently with
//! ingestion: take the snapshot under the writer's lock, query it
//! lock-free while `end_time_step` archives and merges underneath.

use std::collections::HashMap;
use std::io;
use std::sync::{Arc, Mutex};

use hsq_storage::{BlockCache, BlockDevice, FileId, IoSnapshot, Item};

use crate::bounds::CombinedSummary;
use crate::config::HsqConfig;
use crate::engine::{EngineSnapshot, HistStreamQuantiles};
use crate::query::QueryOutcome;
use crate::stream::StreamSummary;
use crate::warehouse::UpdateReport;

/// Shard index of item `e` among `shards`: a multiplicative hash of the
/// order-preserving key. Deterministic across runs and processes, so a
/// persisted sharded engine routes identically after recovery.
#[inline]
pub fn shard_index<T: Item>(e: T, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    // Fibonacci multiplicative hashing: cheap (one multiply) and mixes
    // sequential keys well; the top bits carry the entropy.
    let h = e.to_ordered_u64().wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ((h >> 32) as usize) % shards
}

/// A weighted fan-out unit: one shard paired with its routed chunk of
/// `(item, weight)` pairs.
type WeightedShardTask<'a, T, D> = (&'a mut HistStreamQuantiles<T, D>, &'a [(T, u64)]);

/// `k` independent engine shards behind one ingestion/query facade.
///
/// See the module docs for the design; see the crate-level quickstart for
/// an end-to-end example.
pub struct ShardedEngine<T: Item, D: BlockDevice> {
    shards: Vec<HistStreamQuantiles<T, D>>,
    config: HsqConfig,
    /// Reusable per-shard split buffers for [`ShardedEngine::stream_extend`].
    scratch: Vec<Vec<T>>,
}

impl<T: Item, D: BlockDevice> ShardedEngine<T, D> {
    /// One shard per device in `devices` (typically one device — disk,
    /// directory, or memory arena — per shard so their I/O is
    /// independent). All shards share `config`. Panics if `devices` is
    /// empty.
    pub fn new(devices: Vec<Arc<D>>, config: HsqConfig) -> Self {
        assert!(!devices.is_empty(), "at least one shard device required");
        let shards: Vec<_> = devices
            .into_iter()
            .map(|d| HistStreamQuantiles::new(d, config.clone()))
            .collect();
        let scratch = shards.iter().map(|_| Vec::new()).collect();
        ShardedEngine {
            shards,
            config,
            scratch,
        }
    }

    /// Convenience: `n` shards on devices produced by `mk(shard_index)`.
    pub fn with_shards(n: usize, config: HsqConfig, mut mk: impl FnMut(usize) -> Arc<D>) -> Self {
        assert!(n > 0, "at least one shard required");
        Self::new((0..n).map(&mut mk).collect(), config)
    }

    /// The configuration shared by every shard.
    pub fn config(&self) -> &HsqConfig {
        &self.config
    }

    /// Number of shards `k`.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Read access to shard `i`.
    pub fn shard(&self, i: usize) -> &HistStreamQuantiles<T, D> {
        &self.shards[i]
    }

    /// Read access to all shards.
    pub fn shards(&self) -> &[HistStreamQuantiles<T, D>] {
        &self.shards
    }

    /// Total size `N` across shards.
    pub fn total_len(&self) -> u64 {
        self.shards.iter().map(|s| s.total_len()).sum()
    }

    /// Live stream size `m` across shards.
    pub fn stream_len(&self) -> u64 {
        self.shards.iter().map(|s| s.stream_len()).sum()
    }

    /// Historical size `n` across shards.
    pub fn historical_len(&self) -> u64 {
        self.shards.iter().map(|s| s.historical_len()).sum()
    }

    /// Summed summary/sketch memory across shards.
    pub fn memory_words(&self) -> usize {
        self.shards.iter().map(|s| s.memory_words()).sum()
    }

    /// Per-shard total sizes (balance inspection).
    pub fn shard_lens(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.total_len()).collect()
    }

    /// The shard that owns item `e`.
    pub fn shard_of(&self, e: T) -> usize {
        shard_index(e, self.shards.len())
    }

    /// `StreamUpdate(e)`: route one element to its shard.
    #[inline]
    pub fn stream_update(&mut self, e: T) {
        let i = self.shard_of(e);
        self.shards[i].stream_update(e);
    }

    /// Batched `StreamUpdate`: split `batch` by shard hash, then run each
    /// shard's [`HistStreamQuantiles::stream_extend`] — up to
    /// [`crate::parallel::worker_count`] shards concurrently. Equivalent
    /// to routing every element through [`ShardedEngine::stream_update`],
    /// several times faster for batches of a few hundred and up.
    pub fn stream_extend(&mut self, batch: &[T]) {
        if batch.is_empty() {
            return;
        }
        if self.shards.len() == 1 {
            self.shards[0].stream_extend(batch);
            return;
        }
        let k = self.shards.len();
        for bucket in &mut self.scratch {
            bucket.clear();
            bucket.reserve(batch.len() / k + 16);
        }
        for &e in batch {
            self.scratch[shard_index(e, k)].push(e);
        }
        let mut tasks: Vec<(&mut HistStreamQuantiles<T, D>, &[T])> = self
            .shards
            .iter_mut()
            .zip(self.scratch.iter().map(Vec::as_slice))
            .collect();
        crate::parallel::par_map_mut(&mut tasks, |_, (shard, chunk)| {
            if !chunk.is_empty() {
                shard.stream_extend(chunk);
            }
        });
        for bucket in &mut self.scratch {
            bucket.clear();
        }
    }

    /// Weighted `StreamUpdate(e, w)`: route one `(item, weight)` pair to
    /// its shard. Equivalent to `w` calls to
    /// [`ShardedEngine::stream_update`]; the shard's sketch ingests the
    /// weight natively (see [`HistStreamQuantiles::stream_update_weighted`]).
    #[inline]
    pub fn stream_update_weighted(&mut self, e: T, w: u64) {
        let i = self.shard_of(e);
        self.shards[i].stream_update_weighted(e, w);
    }

    /// Batched weighted `StreamUpdate`: split `batch` by shard hash (the
    /// hash depends only on the item, so weighted routing agrees with
    /// unweighted), then fan out each shard's
    /// [`HistStreamQuantiles::stream_extend_weighted`] over the bounded
    /// pool. Rank bounds still sum across shards with `m` now the total
    /// *weight*, so cross-shard queries keep the `ε·W` guarantee.
    pub fn stream_extend_weighted(&mut self, batch: &[(T, u64)]) {
        if batch.is_empty() {
            return;
        }
        if self.shards.len() == 1 {
            self.shards[0].stream_extend_weighted(batch);
            return;
        }
        let k = self.shards.len();
        let mut buckets: Vec<Vec<(T, u64)>> = (0..k)
            .map(|_| Vec::with_capacity(batch.len() / k + 16))
            .collect();
        for &(e, w) in batch {
            buckets[shard_index(e, k)].push((e, w));
        }
        let mut tasks: Vec<WeightedShardTask<'_, T, D>> = self
            .shards
            .iter_mut()
            .zip(buckets.iter().map(Vec::as_slice))
            .collect();
        crate::parallel::par_map_mut(&mut tasks, |_, (shard, chunk)| {
            if !chunk.is_empty() {
                shard.stream_extend_weighted(chunk);
            }
        });
    }

    /// End the time step on **every** shard (shards advance in lockstep,
    /// so per-shard partition layouts — and hence window alignment — stay
    /// identical). Archival runs up to [`crate::parallel::worker_count`]
    /// shards concurrently; with overlapped I/O configured
    /// (`io_depth > 0`) each shard only *submits* its run writes, so the
    /// writes overlap across shards even when the fan-out pool is down
    /// to one thread — the per-shard completion barriers at the end
    /// settle everything before this returns. Returns one report per
    /// shard.
    pub fn end_time_step(&mut self) -> io::Result<Vec<UpdateReport>> {
        let reports =
            crate::parallel::par_map_mut(&mut self.shards, |_, s| s.end_time_step_deferred());
        // Barrier every shard before surfacing any error: no shard may
        // be left with unsettled writes.
        let mut barrier_err = None;
        for s in &self.shards {
            if let Err(e) = s.io_barrier() {
                barrier_err.get_or_insert(e);
            }
        }
        let reports = reports.into_iter().collect::<io::Result<Vec<_>>>()?;
        match barrier_err {
            Some(e) => Err(e),
            None => Ok(reports),
        }
    }

    /// Convenience: stream a whole batch, then end the time step.
    pub fn ingest_step(&mut self, batch: &[T]) -> io::Result<Vec<UpdateReport>> {
        self.stream_extend(batch);
        self.end_time_step()
    }

    /// Immutable cross-shard view for concurrent readers: one pinned
    /// [`EngineSnapshot`] per shard. See [`HistStreamQuantiles::snapshot`].
    ///
    /// The snapshot caches its cross-shard [`CombinedSummary`] and its
    /// per-window query plans on first use, so *reusing one snapshot* for
    /// a dashboard's worth of queries builds the filters once — see the
    /// crate-level perf notes.
    pub fn snapshot(&self) -> ShardedSnapshot<T, D> {
        ShardedSnapshot {
            shards: self.shards.iter().map(|s| s.snapshot()).collect(),
            epsilon: self.config.query_epsilon(),
            parallel: self.config.parallel_query,
            ts: std::sync::OnceLock::new(),
            window_plans: Mutex::new(HashMap::new()),
        }
    }

    /// Accurate φ-quantile over the union of all shards (same `εm`
    /// guarantee as a single engine over the same data; see module docs).
    pub fn quantile(&self, phi: f64) -> io::Result<Option<T>> {
        self.snapshot().quantile(phi)
    }

    /// Accurate rank query over the union of all shards.
    pub fn rank_query(&self, r: u64) -> io::Result<Option<QueryOutcome<T>>> {
        self.snapshot().rank_query(r)
    }

    /// Batch of φ-quantiles over one shared snapshot.
    pub fn quantiles(&self, phis: &[f64]) -> io::Result<Vec<Option<T>>> {
        self.snapshot().quantiles(phis)
    }

    /// Quick φ-quantile (in-memory, error ≤ 1.5εN) over all shards.
    pub fn quantile_quick(&self, phi: f64) -> Option<T> {
        self.snapshot().quantile_quick(phi)
    }

    /// Window sizes answerable exactly across every shard, ascending.
    /// Shards advance in lockstep (shared step clock and retention
    /// policy), so this normally equals any single shard's windows.
    pub fn available_windows(&self) -> Vec<u64> {
        self.snapshot().available_windows()
    }

    /// Accurate φ-quantile over the union of every shard's live stream
    /// and newest `window_steps` retained steps (see
    /// [`ShardedSnapshot::quantile_in_window`]).
    pub fn quantile_in_window(&self, window_steps: u64, phi: f64) -> io::Result<Option<T>> {
        self.snapshot().quantile_in_window(window_steps, phi)
    }

    /// Accurate cross-shard windowed rank query (see
    /// [`ShardedSnapshot::rank_in_window`]).
    pub fn rank_in_window(&self, window_steps: u64, r: u64) -> io::Result<Option<QueryOutcome<T>>> {
        self.snapshot().rank_in_window(window_steps, r)
    }

    /// Persist every shard's warehouse metadata; returns one manifest
    /// [`FileId`] per shard (on that shard's device). Recover with
    /// [`ShardedEngine::recover`], passing the devices and manifests in
    /// the same shard order — routing is deterministic, so recovered
    /// shards keep receiving the same key ranges.
    pub fn persist(&self) -> io::Result<Vec<FileId>> {
        self.shards.iter().map(|s| s.persist()).collect()
    }

    /// Reopen a sharded engine persisted by [`ShardedEngine::persist`].
    pub fn recover(
        devices: Vec<Arc<D>>,
        config: HsqConfig,
        manifests: &[FileId],
    ) -> io::Result<Self> {
        assert_eq!(
            devices.len(),
            manifests.len(),
            "one manifest per shard device"
        );
        assert!(!devices.is_empty(), "at least one shard required");
        let shards = devices
            .into_iter()
            .zip(manifests)
            .map(|(d, &m)| HistStreamQuantiles::recover(d, config.clone(), m))
            .collect::<io::Result<Vec<_>>>()?;
        let scratch = shards.iter().map(|_| Vec::new()).collect();
        Ok(ShardedEngine {
            shards,
            config,
            scratch,
        })
    }
}

/// An immutable cross-shard view (see [`ShardedEngine::snapshot`]):
/// per-shard pinned snapshots plus the fan-in query machinery.
///
/// The snapshot is also the **query-plan cache**: the cross-shard
/// combined summary (every partition summary plus every shard's stream
/// summary, sorted and bounded — the expensive per-query setup) is built
/// once on first use, and each window size's plan (per-shard partition
/// selection plus the windowed combined summary) likewise. Repeated
/// quantile/rank/window queries against one snapshot therefore skip
/// straight to the bisection.
pub struct ShardedSnapshot<T: Item, D: BlockDevice> {
    shards: Vec<EngineSnapshot<T, D>>,
    epsilon: f64,
    /// Probe shards concurrently (from the config's `parallel_query`):
    /// worth it when shard devices overlap real I/O; serial probing is
    /// cheaper when everything is cache-resident.
    parallel: bool,
    /// Lazily built cross-shard combined summary (full union).
    ts: std::sync::OnceLock<CombinedSummary<T>>,
    /// Lazily built per-window query plans, keyed by window size;
    /// misaligned windows cache as `None` so repeats stay cheap too.
    window_plans: Mutex<HashMap<u64, Option<Arc<WindowPlan<T>>>>>,
}

/// A cached plan for one window size on one [`ShardedSnapshot`].
struct WindowPlan<T> {
    /// Per shard: indices into that shard's pinned partition list.
    parts: Vec<Vec<usize>>,
    /// History inside the window plus the live stream at snapshot time.
    total: u64,
    /// Combined summary over the windowed sources (filter generation).
    ts: CombinedSummary<T>,
}

impl<T: Item, D: BlockDevice> ShardedSnapshot<T, D> {
    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The snapshot of shard `i`.
    pub fn shard(&self, i: usize) -> &EngineSnapshot<T, D> {
        &self.shards[i]
    }

    /// Total size `N` at snapshot time.
    pub fn total_len(&self) -> u64 {
        self.shards.iter().map(|s| s.total_len()).sum()
    }

    /// Stream size `m` at snapshot time.
    pub fn stream_len(&self) -> u64 {
        self.shards.iter().map(|s| s.stream_len()).sum()
    }

    /// Historical size `n` at snapshot time.
    pub fn historical_len(&self) -> u64 {
        self.shards.iter().map(|s| s.historical_len()).sum()
    }

    /// The combined summary `TS` over **all** shards' sources — every
    /// partition summary plus every shard's stream summary. Bounds add
    /// across disjoint sources, so this is exactly the single-engine `TS`
    /// of the union (paper §2.3.1) and powers quick responses and filter
    /// generation.
    ///
    /// Built once per snapshot, on first use: the snapshot is immutable,
    /// so every later query (from any thread) reuses the same summary.
    pub fn combined_summary(&self) -> &CombinedSummary<T> {
        self.ts.get_or_init(|| {
            let sources: Vec<_> = self.shards.iter().flat_map(|s| s.sources()).collect();
            CombinedSummary::build(&sources)
        })
    }

    /// One global stream summary, merged from the per-shard summaries
    /// (see [`StreamSummary::merge`]).
    pub fn merged_stream_summary(&self) -> StreamSummary<T> {
        self.shards
            .iter()
            .map(|s| s.stream_summary().clone())
            .reduce(|a, b| a.merge(&b))
            .unwrap_or_default()
    }

    /// Quick response (Algorithm 5 over the cross-shard `TS`): in-memory
    /// only, error ≤ 1.5·ε·N.
    pub fn quick_rank(&self, r: u64) -> Option<T> {
        let ts = self.combined_summary();
        ts.quick_response(r.clamp(1, ts.total().max(1)))
    }

    /// Quick φ-quantile over all shards.
    pub fn quantile_quick(&self, phi: f64) -> Option<T> {
        assert!(phi > 0.0 && phi <= 1.0, "phi must be in (0, 1]");
        let r = (phi * self.total_len() as f64).ceil() as u64;
        self.quick_rank(r)
    }

    /// Accurate φ-quantile over the union of all shards.
    pub fn quantile(&self, phi: f64) -> io::Result<Option<T>> {
        assert!(phi > 0.0 && phi <= 1.0, "phi must be in (0, 1]");
        let r = (phi * self.total_len() as f64).ceil() as u64;
        Ok(self.rank_query(r)?.map(|o| o.value))
    }

    /// Batch of φ-quantiles over this snapshot, sharing one cross-shard
    /// combined-summary build and one set of block caches across the
    /// whole batch (mirrors [`EngineSnapshot::quantiles`]).
    pub fn quantiles(&self, phis: &[f64]) -> io::Result<Vec<Option<T>>> {
        let ts = self.combined_summary();
        let mut caches: Vec<Vec<BlockCache<T>>> =
            self.shards.iter().map(|s| s.new_caches()).collect();
        let n = self.total_len();
        phis.iter()
            .map(|&phi| {
                assert!(phi > 0.0 && phi <= 1.0, "phi must be in (0, 1]");
                let r = (phi * n as f64).ceil() as u64;
                Ok(self.rank_query_with(r, ts, &mut caches)?.map(|o| o.value))
            })
            .collect()
    }

    /// Summed `rank(z)` bounds across shards — concurrently over the
    /// bounded pool when `parallel_query` is configured, serially
    /// otherwise. `caches` = one cache set per shard, from
    /// [`ShardedSnapshot::new_cache_set`].
    ///
    /// Public because it is the per-node probe of the networked fan-in:
    /// a serving node answers each probe round with exactly this sum,
    /// and bounds from disjoint nodes add, so a coordinator bisecting
    /// over node-summed bounds inherits the in-process guarantee.
    pub fn probe_bounds(&self, z: T, caches: &mut [Vec<BlockCache<T>>]) -> io::Result<(u64, u64)> {
        let results = if self.parallel && self.shards.len() > 1 {
            crate::parallel::par_map_mut(caches, |i, c| self.shards[i].rank_bounds(z, c))
        } else {
            self.shards
                .iter()
                .zip(caches.iter_mut())
                .map(|(s, c)| s.rank_bounds(z, c))
                .collect()
        };
        let mut lo = 0u64;
        let mut hi = 0u64;
        for r in results {
            let (l, h) = r?;
            lo += l;
            hi += h;
        }
        Ok((lo, hi))
    }

    /// I/O counters of every distinct shard device (shards may share one).
    fn io_marks(&self) -> Vec<(*const (), IoSnapshot)> {
        let mut marks: Vec<(*const (), IoSnapshot)> = Vec::new();
        for s in &self.shards {
            let ptr = Arc::as_ptr(s.device()) as *const ();
            if !marks.iter().any(|&(p, _)| p == ptr) {
                marks.push((ptr, s.device().stats().snapshot()));
            }
        }
        marks
    }

    fn io_since(&self, marks: &[(*const (), IoSnapshot)]) -> IoSnapshot {
        // Iterate the deduped marks (not the shards) so a device shared
        // by several shards is counted exactly once.
        let mut total = IoSnapshot::default();
        for &(ptr, before) in marks {
            if let Some(s) = self
                .shards
                .iter()
                .find(|s| Arc::as_ptr(s.device()) as *const () == ptr)
            {
                total = total + (s.device().stats().snapshot() - before);
            }
        }
        total
    }

    /// Accurate cross-shard rank query (the fan-in described in the
    /// module docs): value-space bisection over summed per-shard rank
    /// bounds, filters seeded from the cross-shard combined summary.
    /// Error ≤ ε·m over the union, `m` = total stream size at snapshot
    /// time.
    pub fn rank_query(&self, r: u64) -> io::Result<Option<QueryOutcome<T>>> {
        let ts = self.combined_summary();
        let mut caches: Vec<Vec<BlockCache<T>>> =
            self.shards.iter().map(|s| s.new_caches()).collect();
        self.rank_query_with(r, ts, &mut caches)
    }

    /// [`ShardedSnapshot::rank_query`] against a prebuilt combined
    /// summary and cache set (shared across a batch of queries).
    fn rank_query_with(
        &self,
        r: u64,
        ts: &CombinedSummary<T>,
        caches: &mut [Vec<BlockCache<T>>],
    ) -> io::Result<Option<QueryOutcome<T>>> {
        let total = self.total_len();
        if total == 0 {
            return Ok(None);
        }
        let r = r.clamp(1, total);
        let marks = self.io_marks();

        // Tightest summary bracket (filters with extreme-value fallback).
        let (u, v) = ts.seed_bracket(r);

        // Same acceptance rule as the single-engine accurate response: the
        // probe's midpoint estimate carries up to `unc = Σ unc_s ≤ ε·m`
        // uncertainty, so accept when |ρ − r| ≤ ε·m − unc and otherwise
        // bisect to value collapse (Definition 1's boundary answer).
        let eps_m = (self.epsilon * self.stream_len() as f64).floor() as u64;
        let mut probe = |z| self.probe_bounds(z, caches);
        let (value, estimated_rank, steps) =
            crate::query::bisect_summed_rank(r, eps_m, u, v, &mut probe)?;

        let quarantined = self.quarantined_total();
        Ok(Some(QueryOutcome {
            value,
            io: self.io_since(&marks),
            bisection_steps: steps,
            estimated_rank,
            prefetch_hits: 0,
            prefetch_wasted: 0,
            rank_lo: estimated_rank.saturating_sub(eps_m),
            rank_hi: estimated_rank + eps_m + quarantined,
            degraded: quarantined > 0,
            quarantined,
        }))
    }

    /// Items excluded by quarantine across every shard — the `rank_hi`
    /// widening cross-shard outcomes carry.
    pub fn quarantined_total(&self) -> u64 {
        self.shards.iter().map(|s| s.quarantined_mass()).sum()
    }

    /// The error parameter governing this snapshot's accurate responses
    /// (`4ε₂`, from [`crate::HsqConfig::query_epsilon`]): outcomes are
    /// rank-correct within `ε·m`, `m` = stream weight at snapshot time.
    /// A serving node hands this to its coordinator so remote and
    /// in-process acceptance windows are bit-identical.
    pub fn query_epsilon(&self) -> f64 {
        self.epsilon
    }

    /// One block-cache set per shard, for [`ShardedSnapshot::probe_bounds`].
    /// Callers probing concurrently (e.g. one serving connection per
    /// tenant) hold their own set; the snapshot itself stays shared.
    pub fn new_cache_set(&self) -> Vec<Vec<BlockCache<T>>> {
        self.shards.iter().map(|s| s.new_caches()).collect()
    }

    /// Every per-source view this snapshot's combined summary is built
    /// from — each shard's partition summaries plus its stream summary,
    /// in shard order. This is the *summary extract* a serving node
    /// ships to a coordinator: rebuilding [`CombinedSummary::build`]
    /// over the concatenated extracts of disjoint nodes reproduces the
    /// union's summary exactly (values are a sorted multiset, bounds are
    /// order-independent sums), so remotely seeded bisection brackets
    /// match the in-process ones bit for bit.
    pub fn source_views(&self) -> Vec<crate::bounds::SourceView<T>> {
        self.shards.iter().flat_map(|s| s.sources()).collect()
    }

    /// The windowed counterpart of [`ShardedSnapshot::source_views`]:
    /// per-source views over the newest `window_steps` steps (each
    /// shard's in-window, non-quarantined partition summaries plus its
    /// stream summary) and the windowed total. `None` when the window
    /// misaligns with partition boundaries on any shard. Built in the
    /// same source order as the cached window plan, so a summary rebuilt
    /// from the extract equals the plan's.
    pub fn window_source_views(
        &self,
        window_steps: u64,
    ) -> Option<(Vec<crate::bounds::SourceView<T>>, u64)> {
        let plan = self.window_plan(window_steps)?;
        let mut sources = Vec::new();
        for (s, idx) in self.shards.iter().zip(&plan.parts) {
            for &i in idx {
                sources.push(crate::bounds::SourceView::from_partition(
                    &s.partition_at(i).summary,
                ));
            }
            sources.push(crate::bounds::SourceView::from_stream(s.stream_summary()));
        }
        Some((sources, plan.total))
    }

    /// Block caches shaped for [`ShardedSnapshot::window_probe_bounds`]
    /// (per shard, one cache per in-window partition, the shard's cache
    /// budget split across them). `None` when the window misaligns.
    pub fn window_cache_set(&self, window_steps: u64) -> Option<Vec<Vec<BlockCache<T>>>> {
        let plan = self.window_plan(window_steps)?;
        Some(
            self.shards
                .iter()
                .zip(&plan.parts)
                .map(|(s, idx)| {
                    let per = (s.cache_blocks() / idx.len().max(1)).max(2);
                    idx.iter().map(|_| BlockCache::new(per)).collect()
                })
                .collect(),
        )
    }

    /// Summed windowed `rank(z)` bounds across shards — the per-node
    /// probe of the networked *windowed* fan-in, summing
    /// [`crate::query::union_rank_bounds`] over each shard's in-window
    /// partitions plus its stream summary (exactly the sum
    /// [`ShardedSnapshot::rank_in_window`] bisects over). `caches` from
    /// [`ShardedSnapshot::window_cache_set`]; `None` when the window
    /// misaligns.
    pub fn window_probe_bounds(
        &self,
        window_steps: u64,
        z: T,
        caches: &mut [Vec<BlockCache<T>>],
    ) -> io::Result<Option<(u64, u64)>> {
        let Some(plan) = self.window_plan(window_steps) else {
            return Ok(None);
        };
        let per_shard: Vec<Vec<&crate::warehouse::StoredPartition<T>>> = plan
            .parts
            .iter()
            .zip(&self.shards)
            .map(|(idx, s)| idx.iter().map(|&i| s.partition_at(i)).collect())
            .collect();
        let per_shard = &per_shard;
        let probe_one = |i: usize, cache: &mut Vec<BlockCache<T>>| {
            crate::query::union_rank_bounds(
                &**self.shards[i].device(),
                &per_shard[i],
                self.shards[i].stream_summary(),
                z,
                cache,
            )
        };
        let results = if self.parallel && self.shards.len() > 1 {
            crate::parallel::par_map_mut(caches, |i, c| probe_one(i, c))
        } else {
            caches
                .iter_mut()
                .enumerate()
                .map(|(i, c)| probe_one(i, c))
                .collect()
        };
        let mut lo = 0u64;
        let mut hi = 0u64;
        for res in results {
            let (l, h) = res?;
            lo += l;
            hi += h;
        }
        Ok(Some((lo, hi)))
    }

    /// Window sizes (in snapshot-time steps) answerable exactly across
    /// **every** shard, ascending. Shards normally advance in lockstep so
    /// their partition layouts align; byte-driven retention can retire
    /// different step ranges per shard, in which case only windows aligned
    /// on all shards are offered.
    pub fn available_windows(&self) -> Vec<u64> {
        let mut iter = self.shards.iter();
        let Some(first) = iter.next() else {
            return Vec::new();
        };
        let mut common: Vec<u64> = first.available_windows();
        for s in iter {
            let w = s.available_windows();
            common.retain(|x| w.contains(x));
        }
        common
    }

    /// The cached query plan for `window_steps`: every shard's window
    /// partition selection plus the windowed combined summary and total,
    /// computed once per (snapshot, window size). `None` — also cached —
    /// when any shard's partitions misalign with the boundary.
    fn window_plan(&self, window_steps: u64) -> Option<Arc<WindowPlan<T>>> {
        if let Some(cached) = self.window_plans.lock().unwrap().get(&window_steps) {
            return cached.clone();
        }
        // Build outside the lock so concurrent readers of *other* window
        // sizes never serialize on one plan's construction; a racing
        // duplicate build produces an identical plan and the first insert
        // wins.
        let plan = self.build_window_plan(window_steps).map(Arc::new);
        self.window_plans
            .lock()
            .unwrap()
            .entry(window_steps)
            .or_insert(plan)
            .clone()
    }

    fn build_window_plan(&self, window_steps: u64) -> Option<WindowPlan<T>> {
        let mut parts = Vec::with_capacity(self.shards.len());
        let mut total = self.stream_len();
        let mut sources: Vec<crate::bounds::SourceView<T>> = Vec::new();
        for s in &self.shards {
            // Quarantined partitions stay out of the plan: windowed
            // queries answer over readable data with widened bounds.
            let idx: Vec<usize> = s
                .window_partition_indices(window_steps)?
                .into_iter()
                .filter(|&i| !s.is_quarantined(s.partition_at(i).run.file()))
                .collect();
            for &i in &idx {
                let p = s.partition_at(i);
                total += p.run.len();
                sources.push(crate::bounds::SourceView::from_partition(&p.summary));
            }
            sources.push(crate::bounds::SourceView::from_stream(s.stream_summary()));
            parts.push(idx);
        }
        Some(WindowPlan {
            parts,
            total,
            ts: CombinedSummary::build(&sources),
        })
    }

    /// Total items (history + stream) inside the newest `window_steps`
    /// steps across all shards; `None` when any shard's partitions
    /// misalign with the window boundary.
    pub fn window_total(&self, window_steps: u64) -> Option<u64> {
        self.window_plan(window_steps).map(|p| p.total)
    }

    /// Accurate φ-quantile over the union of every shard's live stream
    /// and newest `window_steps` retained steps. `Ok(None)` when the
    /// window misaligns with partition boundaries on any shard. Same
    /// `ε·m` guarantee as [`ShardedSnapshot::quantile`], over the
    /// windowed union.
    pub fn quantile_in_window(&self, window_steps: u64, phi: f64) -> io::Result<Option<T>> {
        assert!(phi > 0.0 && phi <= 1.0, "phi must be in (0, 1]");
        let Some(plan) = self.window_plan(window_steps) else {
            return Ok(None);
        };
        if plan.total == 0 {
            return Ok(None);
        }
        let r = (phi * plan.total as f64).ceil() as u64;
        Ok(self.rank_in_window_over(&plan, r)?.map(|o| o.value))
    }

    /// Accurate cross-shard rank query over a window: the same fan-in
    /// bisection as [`ShardedSnapshot::rank_query`], with per-shard
    /// bounds summed over each shard's window partitions plus its stream
    /// summary.
    pub fn rank_in_window(&self, window_steps: u64, r: u64) -> io::Result<Option<QueryOutcome<T>>> {
        let Some(plan) = self.window_plan(window_steps) else {
            return Ok(None);
        };
        if plan.total == 0 {
            return Ok(None);
        }
        self.rank_in_window_over(&plan, r)
    }

    /// The windowed fan-in over a cached [`WindowPlan`]: honors the
    /// configured cache budget (each shard's `cache_blocks` split across
    /// its window partitions, as in [`EngineSnapshot::new_caches`]) and
    /// probes shards concurrently when `parallel_query` is set, exactly
    /// like the full-union path.
    fn rank_in_window_over(
        &self,
        plan: &WindowPlan<T>,
        r: u64,
    ) -> io::Result<Option<QueryOutcome<T>>> {
        let m = self.stream_len();
        let r = r.clamp(1, plan.total);
        let marks = self.io_marks();

        // Per-shard partition refs resolved from the plan's indices.
        let per_shard: Vec<Vec<&crate::warehouse::StoredPartition<T>>> = plan
            .parts
            .iter()
            .zip(&self.shards)
            .map(|(idx, s)| idx.iter().map(|&i| s.partition_at(i)).collect())
            .collect();
        let per_shard = &per_shard;
        // Filters from the plan's cached windowed combined summary.
        let (u, v) = plan.ts.seed_bracket(r);

        let mut caches: Vec<Vec<BlockCache<T>>> = self
            .shards
            .iter()
            .zip(per_shard)
            .map(|(s, parts)| {
                let per = (s.cache_blocks() / parts.len().max(1)).max(2);
                parts.iter().map(|_| BlockCache::new(per)).collect()
            })
            .collect();
        let eps_m = (self.epsilon * m as f64).floor() as u64;
        let probe_one = |i: usize, cache: &mut Vec<BlockCache<T>>, z: T| {
            crate::query::union_rank_bounds(
                &**self.shards[i].device(),
                &per_shard[i],
                self.shards[i].stream_summary(),
                z,
                cache,
            )
        };
        let mut probe = |z| {
            let results = if self.parallel && self.shards.len() > 1 {
                crate::parallel::par_map_mut(&mut caches, |i, c| probe_one(i, c, z))
            } else {
                caches
                    .iter_mut()
                    .enumerate()
                    .map(|(i, c)| probe_one(i, c, z))
                    .collect()
            };
            let mut lo = 0u64;
            let mut hi = 0u64;
            for res in results {
                let (l, h) = res?;
                lo += l;
                hi += h;
            }
            Ok((lo, hi))
        };
        let (value, estimated_rank, steps) =
            crate::query::bisect_summed_rank(r, eps_m, u, v, &mut probe)?;

        let quarantined = self.quarantined_total();
        Ok(Some(QueryOutcome {
            value,
            io: self.io_since(&marks),
            bisection_steps: steps,
            estimated_rank,
            prefetch_hits: 0,
            prefetch_wasted: 0,
            rank_lo: estimated_rank.saturating_sub(eps_m),
            rank_hi: estimated_rank + eps_m + quarantined,
            degraded: quarantined > 0,
            quarantined,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsq_storage::MemDevice;

    fn sharded(n: usize, eps: f64, kappa: usize) -> ShardedEngine<u64, MemDevice> {
        let cfg = HsqConfig::builder()
            .epsilon(eps)
            .merge_threshold(kappa)
            .build();
        ShardedEngine::with_shards(n, cfg, |_| MemDevice::new(256))
    }

    fn gen_stream(seed: u64, len: usize) -> Vec<u64> {
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                x >> 33
            })
            .collect()
    }

    fn rank_distance(sorted: &[u64], v: u64, r: u64) -> u64 {
        let hi = sorted.partition_point(|&x| x <= v) as u64;
        let lo = sorted.partition_point(|&x| x < v) as u64 + 1;
        if lo > hi {
            return r.abs_diff(hi);
        }
        if r < lo {
            lo - r
        } else {
            r.saturating_sub(hi)
        }
    }

    #[test]
    fn routing_is_deterministic_and_total() {
        let e = sharded(4, 0.1, 3);
        for v in gen_stream(9, 500) {
            let i = e.shard_of(v);
            assert!(i < 4);
            assert_eq!(i, e.shard_of(v));
            assert_eq!(i, shard_index(v, 4));
        }
        assert_eq!(shard_index(12345u64, 1), 0);
    }

    #[test]
    fn hash_split_is_roughly_balanced() {
        let mut e = sharded(4, 0.1, 4);
        e.stream_extend(&gen_stream(77, 8000));
        let lens: Vec<u64> = e.shards().iter().map(|s| s.stream_len()).collect();
        assert_eq!(lens.iter().sum::<u64>(), 8000);
        for &l in &lens {
            assert!(
                (1000..3000).contains(&l),
                "imbalanced shard sizes: {lens:?}"
            );
        }
    }

    #[test]
    fn sharded_matches_exact_within_guarantee() {
        for n in [1usize, 2, 4] {
            let eps = 0.05;
            let mut e = sharded(n, eps, 3);
            let mut all: Vec<u64> = Vec::new();
            for step in 0..6u64 {
                let batch = gen_stream(step + 1, 400);
                all.extend(&batch);
                e.ingest_step(&batch).unwrap();
            }
            let stream = gen_stream(99, 400);
            all.extend(&stream);
            e.stream_extend(&stream);
            assert_eq!(e.total_len(), all.len() as u64);
            all.sort_unstable();
            let m = 400u64;
            let allowed = (eps * m as f64).ceil() as u64 + 1;
            for phi in [0.01, 0.25, 0.5, 0.75, 0.99, 1.0] {
                let v = e.quantile(phi).unwrap().unwrap();
                let r = ((phi * all.len() as f64).ceil() as u64).clamp(1, all.len() as u64);
                let dist = rank_distance(&all, v, r);
                assert!(
                    dist <= allowed,
                    "n={n} phi={phi}: off by {dist} (allowed {allowed})"
                );
            }
        }
    }

    #[test]
    fn scalar_and_batched_routes_agree() {
        let data = gen_stream(5, 600);
        let mut a = sharded(3, 0.1, 3);
        let mut b = sharded(3, 0.1, 3);
        for &v in &data {
            a.stream_update(v);
        }
        b.stream_extend(&data);
        assert_eq!(a.shard_lens(), b.shard_lens());
        assert_eq!(a.total_len(), 600);
    }

    #[test]
    fn weighted_sharded_matches_replicated() {
        // Weighted ingest across shards ≡ replicated unweighted ingest:
        // same routing (the hash ignores the weight), quantiles within
        // ε·W of the replicated exact answer, for 1, 2 and 8 shards.
        for n in [1usize, 2, 8] {
            let eps = 0.05;
            let mut e = sharded(n, eps, 3);
            let items = gen_stream(41, 1200);
            let pairs: Vec<(u64, u64)> = items
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, (i as u64 % 5) + 1))
                .collect();
            // Interleave batched and scalar weighted routes.
            e.stream_extend_weighted(&pairs[..800]);
            for &(v, w) in &pairs[800..] {
                e.stream_update_weighted(v, w);
            }
            let mut replicated: Vec<u64> = Vec::new();
            for &(v, w) in &pairs {
                replicated.extend(std::iter::repeat_n(v, w as usize));
            }
            let total_w: u64 = pairs.iter().map(|&(_, w)| w).sum();
            assert_eq!(e.stream_len(), total_w, "n={n}: m must be summed weight");
            replicated.sort_unstable();
            let allowed = (eps * total_w as f64).ceil() as u64 + 1;
            for phi in [0.1, 0.5, 0.9, 1.0] {
                let v = e.quantile(phi).unwrap().unwrap();
                let r = ((phi * total_w as f64).ceil() as u64).clamp(1, total_w);
                let dist = rank_distance(&replicated, v, r);
                assert!(
                    dist <= allowed,
                    "n={n} phi={phi}: off by {dist} (allowed {allowed})"
                );
            }
            // Zero-weight pairs are dropped everywhere.
            e.stream_extend_weighted(&[(7, 0), (9, 0)]);
            e.stream_update_weighted(11, 0);
            assert_eq!(e.stream_len(), total_w);
        }
    }

    #[test]
    fn quick_queries_touch_no_disk() {
        let mut e = sharded(4, 0.05, 3);
        for step in 0..4u64 {
            e.ingest_step(&gen_stream(step + 1, 500)).unwrap();
        }
        let before: u64 = e
            .shards()
            .iter()
            .map(|s| s.warehouse().device().stats().snapshot().total_reads())
            .sum();
        let snap = e.snapshot();
        let _ = snap.quantile_quick(0.5);
        let _ = snap.quantile_quick(0.95);
        let after: u64 = e
            .shards()
            .iter()
            .map(|s| s.warehouse().device().stats().snapshot().total_reads())
            .sum();
        assert_eq!(after, before, "quick responses must stay in memory");
    }

    #[test]
    fn snapshot_outlives_merges() {
        let mut e = sharded(2, 0.1, 2);
        for step in 0..3u64 {
            let batch: Vec<u64> = (0..300).map(|i| step * 300 + i).collect();
            e.ingest_step(&batch).unwrap();
        }
        let snap = e.snapshot();
        let before = snap.quantile(0.5).unwrap().unwrap();
        // Trigger cascade merges on both shards.
        for step in 3..9u64 {
            let batch: Vec<u64> = (0..300).map(|i| step * 300 + i).collect();
            e.ingest_step(&batch).unwrap();
        }
        assert_eq!(snap.total_len(), 900);
        assert_eq!(snap.quantile(0.5).unwrap().unwrap(), before);
        assert!((before as i64 - 450).abs() <= 5, "median {before}");
    }

    #[test]
    fn merged_stream_summary_covers_union() {
        let mut e = sharded(4, 0.1, 3);
        let data = gen_stream(31, 3000);
        e.stream_extend(&data);
        let snap = e.snapshot();
        let merged = snap.merged_stream_summary();
        assert_eq!(merged.stream_len(), 3000);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        for probe in sorted.iter().step_by(293) {
            let truth = sorted.partition_point(|&x| x <= *probe) as u64;
            let (lo, hi) = merged.rank_bounds(*probe);
            assert!(lo <= truth && truth <= hi, "{truth} outside [{lo},{hi}]");
        }
    }

    #[test]
    fn persist_recover_roundtrip() {
        let mut e = sharded(3, 0.1, 3);
        let mut all: Vec<u64> = Vec::new();
        for step in 0..5u64 {
            let batch = gen_stream(step + 11, 300);
            all.extend(&batch);
            e.ingest_step(&batch).unwrap();
        }
        let manifests = e.persist().unwrap();
        let devices: Vec<_> = e
            .shards()
            .iter()
            .map(|s| Arc::clone(s.warehouse().device()))
            .collect();
        let cfg = e.config().clone();
        let recovered = ShardedEngine::<u64, _>::recover(devices, cfg, &manifests).unwrap();
        assert_eq!(recovered.total_len(), e.total_len());
        assert_eq!(recovered.num_shards(), 3);
        all.sort_unstable();
        // History-only: recovered queries are near exact (m = 0).
        let med = recovered.quantile(0.5).unwrap().unwrap();
        let r = (all.len() as u64).div_ceil(2);
        assert!(rank_distance(&all, med, r) <= 1, "median {med}");
    }

    #[test]
    fn empty_and_degenerate() {
        let e = sharded(4, 0.1, 3);
        assert!(e.quantile(0.5).unwrap().is_none());
        assert!(e.quantile_quick(0.5).is_none());
        assert_eq!(e.total_len(), 0);
        let mut e = e;
        e.stream_extend(&[]);
        let reports = e.end_time_step().unwrap();
        assert_eq!(reports.len(), 4);
        // One value total: every quantile answers it.
        e.stream_update(42);
        assert_eq!(e.quantile(0.5).unwrap(), Some(42));
        assert_eq!(e.quantile(1.0).unwrap(), Some(42));
    }

    #[test]
    fn windowed_cross_shard_queries_match_window_data() {
        for n in [1usize, 2, 4] {
            let mut e = sharded(n, 0.05, 2);
            let mut steps: Vec<Vec<u64>> = Vec::new();
            for step in 0..13u64 {
                let batch: Vec<u64> = (0..120).map(|i| step * 120 + i).collect();
                steps.push(batch.clone());
                e.ingest_step(&batch).unwrap();
            }
            let windows = e.available_windows();
            assert_eq!(windows, vec![1, 4, 13], "n={n}");
            for &w in &windows {
                let mut win: Vec<u64> = steps[steps.len() - w as usize..]
                    .iter()
                    .flatten()
                    .copied()
                    .collect();
                win.sort_unstable();
                // Empty stream: answers over the window are exact.
                let med = e.quantile_in_window(w, 0.5).unwrap().unwrap();
                let r = (win.len() as u64).div_ceil(2);
                assert_eq!(med, win[r as usize - 1], "n={n} w={w}");
                let out = e.rank_in_window(w, 1).unwrap().unwrap();
                assert_eq!(out.value, win[0], "n={n} w={w} min");
            }
            // Misaligned window refused, matching the single-engine API.
            assert!(e.quantile_in_window(2, 0.5).unwrap().is_none());
        }
    }

    #[test]
    fn windowed_cross_shard_includes_live_stream() {
        let mut e = sharded(3, 0.05, 3);
        for step in 0..3u64 {
            let batch: Vec<u64> = (0..200).map(|i| step * 200 + i).collect();
            e.ingest_step(&batch).unwrap();
        }
        let live: Vec<u64> = (600..800).collect();
        e.stream_extend(&live);
        // Window 1 = step 3 (400..600) + stream (600..800): median ~600.
        let med = e.quantile_in_window(1, 0.5).unwrap().unwrap();
        assert!((580..630).contains(&med), "median {med}");
    }

    #[test]
    fn parallel_windowed_queries_match_serial() {
        let mk = |parallel: bool| {
            let cfg = HsqConfig::builder()
                .epsilon(0.05)
                .merge_threshold(2)
                .cache_blocks(128)
                .parallel_query(parallel)
                .build();
            let mut e = ShardedEngine::<u64, _>::with_shards(4, cfg, |_| MemDevice::new(256));
            for step in 0..13u64 {
                e.ingest_step(&gen_stream(step + 3, 300)).unwrap();
            }
            e.stream_extend(&gen_stream(777, 150));
            e
        };
        let serial = mk(false);
        let parallel = mk(true);
        for w in serial.available_windows() {
            for phi in [0.1, 0.5, 0.9] {
                assert_eq!(
                    serial.quantile_in_window(w, phi).unwrap(),
                    parallel.quantile_in_window(w, phi).unwrap(),
                    "window {w} phi {phi}"
                );
            }
            let a = serial.rank_in_window(w, 100).unwrap().unwrap();
            let b = parallel.rank_in_window(w, 100).unwrap().unwrap();
            assert_eq!(a.value, b.value);
            assert_eq!(a.estimated_rank, b.estimated_rank);
        }
    }

    #[test]
    fn sharded_retention_applies_per_shard() {
        let cfg = HsqConfig::builder()
            .epsilon(0.1)
            .merge_threshold(3)
            .retention(crate::retention::RetentionPolicy::unbounded().with_max_age_steps(4))
            .build();
        let mut e = ShardedEngine::<u64, _>::with_shards(4, cfg, |_| MemDevice::new(256));
        for step in 0..16u64 {
            e.ingest_step(&gen_stream(step + 1, 400)).unwrap();
        }
        for s in e.shards() {
            let horizon = s.warehouse().steps().saturating_sub(4);
            for p in s.warehouse().partitions_newest_first() {
                assert!(p.last_step > horizon, "shard retained expired data");
            }
        }
        // Shards advance in lockstep: windows still align across shards.
        let windows = e.available_windows();
        assert!(!windows.is_empty());
        assert!(*windows.last().unwrap() <= 4);
        let med = e.quantile_in_window(*windows.last().unwrap(), 0.5).unwrap();
        assert!(med.is_some());
    }

    #[test]
    fn cached_snapshot_queries_are_identical_to_fresh() {
        // The snapshot's cached combined summary and window plans must
        // change nothing: repeated queries on one snapshot answer exactly
        // like first queries on fresh snapshots, for 1, 2 and 8 shards.
        for n in [1usize, 2, 8] {
            let mut e = sharded(n, 0.05, 2);
            for step in 0..13u64 {
                e.ingest_step(&gen_stream(step + 3, 250)).unwrap();
            }
            e.stream_extend(&gen_stream(500, 200));
            let reused = e.snapshot();
            for round in 0..3 {
                for r in [1u64, 300, 1500, 3000] {
                    let fresh = e.snapshot().rank_query(r).unwrap().unwrap();
                    let cached = reused.rank_query(r).unwrap().unwrap();
                    assert_eq!(fresh.value, cached.value, "n={n} round={round} r={r}");
                    assert_eq!(fresh.estimated_rank, cached.estimated_rank);
                    assert_eq!(fresh.bisection_steps, cached.bisection_steps);
                }
                for w in reused.available_windows() {
                    let fresh = e.snapshot().rank_in_window(w, 100).unwrap().unwrap();
                    let cached = reused.rank_in_window(w, 100).unwrap().unwrap();
                    assert_eq!(fresh.value, cached.value, "n={n} w={w}");
                    assert_eq!(fresh.estimated_rank, cached.estimated_rank);
                }
                // Misaligned windows stay refused (and cache as None).
                assert!(reused.rank_in_window(2, 10).unwrap().is_none());
            }
        }
    }

    #[test]
    fn snapshot_summary_is_built_once_and_shared() {
        let mut e = sharded(4, 0.1, 3);
        for step in 0..6u64 {
            e.ingest_step(&gen_stream(step + 1, 300)).unwrap();
        }
        let snap = e.snapshot();
        let a = snap.combined_summary() as *const _;
        let _ = snap.quantile(0.5).unwrap();
        let _ = snap.quantile(0.9).unwrap();
        let b = snap.combined_summary() as *const _;
        assert_eq!(a, b, "combined summary must be cached, not rebuilt");
        // Window plans likewise: totals are stable across calls.
        let w = *snap.available_windows().first().unwrap();
        assert_eq!(snap.window_total(w), snap.window_total(w));
    }

    #[test]
    fn rank_query_reports_estimated_rank() {
        let mut e = sharded(2, 0.05, 3);
        for step in 0..4u64 {
            let batch: Vec<u64> = (0..500).map(|i| step * 500 + i).collect();
            e.ingest_step(&batch).unwrap();
        }
        // No stream: estimates are exact.
        let out = e.rank_query(1000).unwrap().unwrap();
        assert_eq!(out.estimated_rank, 1000);
        assert_eq!(out.value, 999);
    }
}
