//! The top-level engine: integrated quantile processing over historical
//! plus streaming data (the paper's full system, Figure 1).
//!
//! [`HistStreamQuantiles`] owns:
//! * a [`Warehouse`] (`HD` + `HS`) on a caller-supplied block device;
//! * a [`StreamProcessor`] (pluggable GK or KLL sketch, selected by
//!   [`HsqConfig`]'s `sketch` knob) absorbing the live stream;
//! * the staging buffer holding the current time step's raw data, which is
//!   archived into the warehouse when [`HistStreamQuantiles::end_time_step`]
//!   is called (and the stream sketch reset — Algorithm 4's `StreamReset`).
//!
//! Queries (Theorem 2's guarantee: rank error ≤ `εm`) are answered over
//! `T = H ∪ R` by [`HistStreamQuantiles::quantile`] /
//! [`HistStreamQuantiles::rank_query`]; cheap in-memory answers with error
//! `O(εN)` by the `*_quick` variants; partition-aligned window queries by
//! the `*_window` variants.

use std::io;
use std::sync::Arc;
use std::time::Instant;

use hsq_storage::{corruption_in, is_transient, BlockCache, BlockDevice, FileId, Item};

use crate::config::HsqConfig;
use crate::query::{QueryContext, QueryOutcome};
use crate::stream::{StreamProcessor, StreamSummary};
use crate::warehouse::{PinGuard, StoredPartition, UpdateReport, Warehouse};

/// Integrated quantile engine over the union of historical and streaming
/// data.
///
/// See the crate-level docs for a full example.
pub struct HistStreamQuantiles<T: Item, D: BlockDevice> {
    warehouse: Warehouse<T, D>,
    stream: StreamProcessor<T>,
    staging: Vec<T>,
    /// End offsets of sorted segments inside `staging`; everything past
    /// the last offset is the unsorted tail fed by scalar
    /// [`HistStreamQuantiles::stream_update`] calls. Batched ingestion
    /// appends pre-sorted segments so [`HistStreamQuantiles::end_time_step`]
    /// archives with a linear segment merge instead of a full re-sort.
    staging_segments: Vec<usize>,
    /// Time spent sorting staging segments during the current step,
    /// folded into the next `UpdateReport::sort_time`.
    staging_sort_time: std::time::Duration,
    config: HsqConfig,
    /// Optional heavy-hitter tracking (extension; see [`crate::heavy`]).
    heavy: Option<crate::heavy::HeavyTracker<T>>,
}

impl<T: Item, D: BlockDevice> HistStreamQuantiles<T, D> {
    /// Create an engine on `dev` with the given configuration
    /// (Algorithm 1's initialization).
    pub fn new(dev: Arc<D>, config: HsqConfig) -> Self {
        let stream = StreamProcessor::with_compaction(
            config.sketch,
            config.sketch_compaction,
            config.epsilon2,
            config.beta2,
        );
        HistStreamQuantiles {
            warehouse: Warehouse::new(dev, config.clone()),
            stream,
            staging: Vec::new(),
            staging_segments: Vec::new(),
            staging_sort_time: std::time::Duration::ZERO,
            config,
            heavy: None,
        }
    }

    /// Enable φ-heavy-hitter queries over the union (extension beyond the
    /// paper's figures; see [`crate::heavy`]). Call before streaming data:
    /// the stream-side sketch only sees elements from this point on.
    pub fn enable_heavy_hitters(&mut self, config: crate::heavy::HeavyHitterConfig) {
        self.heavy = Some(crate::heavy::HeavyTracker::new(config));
    }

    /// Values occurring more than `phi * N` times in `T = H ∪ R`, most
    /// frequent first, with exact historical counts and bounded stream
    /// counts. Requires [`Self::enable_heavy_hitters`].
    pub fn heavy_hitters(&self, phi: f64) -> io::Result<Vec<crate::heavy::HeavyHitter<T>>> {
        assert!(phi > 0.0 && phi <= 1.0, "phi must be in (0, 1]");
        let tracker = self
            .heavy
            .as_ref()
            .expect("call enable_heavy_hitters() before querying heavy hitters");
        let threshold = ((phi * self.total_len() as f64).ceil() as u64).max(1);
        self.warehouse.io_barrier()?;
        tracker.heavy_hitters(&self.warehouse, threshold, self.config.cache_blocks)
    }

    /// The configuration in effect.
    pub fn config(&self) -> &HsqConfig {
        &self.config
    }

    /// The historical warehouse (read access for inspection).
    pub fn warehouse(&self) -> &Warehouse<T, D> {
        &self.warehouse
    }

    /// The live stream processor (read access for inspection).
    pub fn stream(&self) -> &StreamProcessor<T> {
        &self.stream
    }

    /// Current stream size `m`.
    pub fn stream_len(&self) -> u64 {
        self.stream.len()
    }

    /// Historical size `n`.
    pub fn historical_len(&self) -> u64 {
        self.warehouse.total_len()
    }

    /// Total size `N = n + m`.
    pub fn total_len(&self) -> u64 {
        self.historical_len() + self.stream_len()
    }

    /// Words of main memory held by the algorithm's summaries
    /// (`HS` + stream sketch; Observation 1's quantity).
    pub fn memory_words(&self) -> usize {
        self.warehouse.summary_memory_words() + self.stream.memory_words()
    }

    /// `StreamUpdate(e)`: one streaming element arrives.
    #[inline]
    pub fn stream_update(&mut self, e: T) {
        self.stream.update(e);
        if let Some(h) = &mut self.heavy {
            h.update(e);
        }
        self.staging.push(e);
    }

    /// Batched `StreamUpdate`: absorb a whole slice of streaming elements
    /// at once. The batch is sorted once; the sorted copy feeds the stream
    /// sketch in one sorted-batch absorption (a linear merge for GK, a
    /// buffered append for KLL — see [`hsq_sketch::QuantileSketch`])
    /// and is kept as a sorted staging segment, so the following
    /// [`HistStreamQuantiles::end_time_step`] archives without re-sorting
    /// it. Equivalent (same multiset, same `ε` guarantees) to calling
    /// [`HistStreamQuantiles::stream_update`] per element, several times
    /// faster for batches of a few hundred elements and up.
    pub fn stream_extend(&mut self, batch: &[T]) {
        if batch.is_empty() {
            return;
        }
        if let Some(h) = &mut self.heavy {
            for &e in batch {
                h.update(e);
            }
        }
        self.seal_staging_tail();
        let start = self.staging.len();
        self.staging.extend_from_slice(batch);
        let t0 = Instant::now();
        hsq_storage::sort_items(&mut self.staging[start..]);
        self.staging_sort_time += t0.elapsed();
        self.stream.ingest_sorted_batch(&self.staging[start..]);
        self.staging_segments.push(self.staging.len());
    }

    /// `StreamUpdate(e, w)`: one streaming element with multiplicity `w`
    /// (sampled or pre-aggregated telemetry). Counts `w` toward the
    /// stream size `m` and stages `w` raw copies for archival, so every
    /// guarantee stays `ε·m` with `m` the summed weight and the archived
    /// multiset is exactly what the sketch absorbed.
    pub fn stream_update_weighted(&mut self, e: T, w: u64) {
        if w == 0 {
            return;
        }
        self.stream.update_weighted(e, w);
        if let Some(h) = &mut self.heavy {
            for _ in 0..w {
                h.update(e);
            }
        }
        self.staging.extend(std::iter::repeat_n(e, w as usize));
    }

    /// Batched weighted `StreamUpdate`: absorb `(value, weight)` pairs at
    /// once. The sketch ingests the weights natively — KLL decomposes each
    /// onto its levels in O(log w), GK splices with exact rank arithmetic
    /// — while staging expands them into replicated raw copies (sorted,
    /// recorded as one segment) so archival and recovery see the exact
    /// multiset. Equivalent to `w`-fold [`HistStreamQuantiles::stream_update`]
    /// per pair, without paying `Σw` sketch updates.
    pub fn stream_extend_weighted(&mut self, batch: &[(T, u64)]) {
        let total: u64 = batch.iter().map(|&(_, w)| w).sum();
        if total == 0 {
            return;
        }
        if let Some(h) = &mut self.heavy {
            for &(e, w) in batch {
                for _ in 0..w {
                    h.update(e);
                }
            }
        }
        self.seal_staging_tail();
        let mut pairs: Vec<(T, u64)> = batch.iter().copied().filter(|&(_, w)| w > 0).collect();
        let t0 = Instant::now();
        pairs.sort_unstable_by_key(|a| a.0);
        self.staging.reserve(total as usize);
        for &(v, w) in &pairs {
            self.staging.extend(std::iter::repeat_n(v, w as usize));
        }
        self.staging_sort_time += t0.elapsed();
        self.stream.ingest_weighted_sorted_batch(&pairs);
        self.staging_segments.push(self.staging.len());
    }

    /// Sort the unsorted staging tail (scalar updates since the last
    /// batch) and record it as a sorted segment.
    fn seal_staging_tail(&mut self) {
        let sealed = self.staging_segments.last().copied().unwrap_or(0);
        if self.staging.len() > sealed {
            let t0 = Instant::now();
            hsq_storage::sort_items(&mut self.staging[sealed..]);
            self.staging_sort_time += t0.elapsed();
            self.staging_segments.push(self.staging.len());
        }
    }

    /// End the current time step: archive the staged batch into the
    /// warehouse (Algorithm 3 `HistUpdate`) and reset the stream summary
    /// (Algorithm 4 `StreamReset`). Returns the update's cost breakdown.
    ///
    /// Staging is kept as sorted segments, so archival costs one linear
    /// merge of the segments (zero-copy when the stream arrived in
    /// nondecreasing segment order) plus the sorted store — the full
    /// `O(η log η)` re-sort only ever touches the scalar tail. The
    /// reported `sort_time` includes the staging sorts paid during
    /// streaming, so per-step cost accounting matches the scalar era.
    ///
    /// A step larger than the configured `sort_budget_items` takes the
    /// warehouse's external-sort path instead, honoring the working-set
    /// bound and keeping spill I/O in the report.
    ///
    /// With overlapped I/O configured (`io_depth > 0`) the partition's
    /// block writes run on scheduler workers, overlapping the summary
    /// and merge CPU work; this method still returns only after the
    /// completion barrier, so everything the step wrote is on the device.
    /// [`HistStreamQuantiles::end_time_step_deferred`] skips that final
    /// barrier (the cross-shard overlap primitive).
    pub fn end_time_step(&mut self) -> io::Result<UpdateReport> {
        let report = self.end_time_step_deferred()?;
        self.warehouse.io_barrier()?;
        Ok(report)
    }

    /// [`HistStreamQuantiles::end_time_step`] without the trailing
    /// completion barrier: the archived run's writes may still be in
    /// flight when this returns. Callers must pass
    /// [`HistStreamQuantiles::io_barrier`] before reading — queries,
    /// snapshots, and the next manifest append do so themselves. This is
    /// how [`crate::ShardedEngine`] overlaps archival *across* shards:
    /// every shard submits its writes, then one barrier per shard device
    /// settles them all.
    pub fn end_time_step_deferred(&mut self) -> io::Result<UpdateReport> {
        self.seal_staging_tail();
        let data = std::mem::take(&mut self.staging);
        let segments = std::mem::take(&mut self.staging_segments);
        let staging_sort = std::mem::take(&mut self.staging_sort_time);
        let mut report = if data.len() > self.config.sort_budget_items {
            self.warehouse.add_batch(data)?
        } else {
            let t0 = Instant::now();
            let sorted = merge_sorted_segments(data, &segments);
            let merge_elapsed = t0.elapsed();
            let mut r = self.warehouse.add_sorted_batch(sorted)?;
            r.sort_time += merge_elapsed;
            r
        };
        report.sort_time += staging_sort;
        self.stream.reset();
        if let Some(h) = &mut self.heavy {
            h.reset();
        }
        Ok(report)
    }

    /// Convenience: stream a whole batch, then end the time step. Runs on
    /// the batched fast path end to end.
    pub fn ingest_step(&mut self, batch: &[T]) -> io::Result<UpdateReport> {
        self.stream_extend(batch);
        self.end_time_step()
    }

    /// Completion barrier over the warehouse's overlapped I/O (no-op when
    /// `io_depth == 0`): after `Ok`, every submitted write is on the
    /// device. Pairs with [`HistStreamQuantiles::end_time_step_deferred`].
    pub fn io_barrier(&self) -> io::Result<()> {
        self.warehouse.io_barrier()
    }

    fn context(
        &self,
    ) -> (
        crate::stream::StreamSummary<T>,
        Vec<&crate::warehouse::StoredPartition<T>>,
    ) {
        // Queries read partition blocks: settle any writes a deferred
        // step left in flight. Errors are not lost — a failed write
        // resurfaces when the probe touches the affected run.
        let _ = self.warehouse.io_barrier();
        // Quarantined (confirmed-corrupt) partitions are excluded; the
        // outcome's rank bounds widen by their mass instead.
        (
            self.stream.summary(),
            self.warehouse.healthy_partitions_newest_first(),
        )
    }

    /// Strict-mode gate: refuse to answer over quarantined data.
    fn strict_check(&self) -> io::Result<()> {
        let q = self.warehouse.quarantined_mass();
        if self.config.strict && q > 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("query refused: {q} items quarantined (strict mode)"),
            ));
        }
        Ok(())
    }

    /// Run a query probe with self-healing: a confirmed-corrupt block
    /// quarantines its partition and re-runs the probe over the remaining
    /// healthy set (degraded, bounds widened); a transient failure that
    /// survived the device-level retries re-runs the whole probe under
    /// the configured attempt cap. Anything else propagates.
    fn with_recovery<R>(&self, mut probe: impl FnMut() -> io::Result<R>) -> io::Result<R> {
        let mut transient_left = self.config.retry.max_retries;
        loop {
            match probe() {
                Ok(r) => return Ok(r),
                Err(e) => {
                    if let Some((file, _)) = corruption_in(&e) {
                        if self.warehouse.quarantine(file) {
                            self.strict_check()?;
                            continue;
                        }
                        return Err(e);
                    }
                    if is_transient(&e) && transient_left > 0 {
                        transient_left -= 1;
                        continue;
                    }
                    return Err(e);
                }
            }
        }
    }

    /// Accurate φ-quantile over `T = H ∪ R` (Theorem 2): the returned
    /// element's rank is within `εm` of `⌈φN⌉`.
    pub fn quantile(&self, phi: f64) -> io::Result<Option<T>> {
        assert!(phi > 0.0 && phi <= 1.0, "phi must be in (0, 1]");
        let r = (phi * self.total_len() as f64).ceil() as u64;
        Ok(self.rank_query(r)?.map(|o| o.value))
    }

    /// Accurate rank query with cost reporting. With overlapped I/O
    /// configured (`io_depth > 0`) the bisection speculatively prefetches
    /// both candidate half-probes of each next step through the
    /// warehouse's scheduler (see [`QueryContext::with_prefetch`]).
    pub fn rank_query(&self, r: u64) -> io::Result<Option<QueryOutcome<T>>> {
        self.strict_check()?;
        self.with_recovery(|| {
            let (ss, parts) = self.context();
            let ctx = QueryContext::new(
                &**self.warehouse.device(),
                parts,
                &ss,
                self.config.query_epsilon(),
                self.config.cache_blocks,
            )
            .with_parallel(self.config.parallel_query)
            .with_prefetch(self.warehouse.scheduler().map(|s| &**s))
            .with_degraded(self.warehouse.quarantined_mass());
            ctx.accurate_rank(r)
        })
    }

    /// Batch of φ-quantiles sharing one stream-summary extraction and one
    /// combined-summary build: cheaper than separate [`Self::quantile`]
    /// calls when reporting e.g. p50/p95/p99 together.
    pub fn quantiles(&self, phis: &[f64]) -> io::Result<Vec<Option<T>>> {
        self.strict_check()?;
        let n = self.total_len();
        self.with_recovery(|| {
            let (ss, parts) = self.context();
            let ctx = QueryContext::new(
                &**self.warehouse.device(),
                parts,
                &ss,
                self.config.query_epsilon(),
                self.config.cache_blocks,
            )
            .with_parallel(self.config.parallel_query)
            .with_prefetch(self.warehouse.scheduler().map(|s| &**s))
            .with_degraded(self.warehouse.quarantined_mass());
            phis.iter()
                .map(|&phi| {
                    assert!(phi > 0.0 && phi <= 1.0, "phi must be in (0, 1]");
                    let r = (phi * n as f64).ceil() as u64;
                    Ok(ctx.accurate_rank(r)?.map(|o| o.value))
                })
                .collect()
        })
    }

    /// An immutable, self-contained view of everything ingested so far:
    /// the stream summary is extracted (cloned) from the GK sketch and the
    /// partition list is cloned with its backing files *pinned*, so the
    /// snapshot keeps answering queries — with the same `εm` guarantee,
    /// where `m` is the stream size at snapshot time — while this engine
    /// continues to ingest, archive, and merge partitions underneath.
    /// (The summary is extracted from whichever sketch backend the stream
    /// runs on — snapshots are backend-oblivious.)
    ///
    /// This is the concurrent-reader primitive: hold the engine's lock
    /// just long enough to take the snapshot, then query it lock-free.
    pub fn snapshot(&self) -> EngineSnapshot<T, D> {
        // Snapshot readers probe the pinned runs directly: settle any
        // deferred writes first (see `context`).
        let _ = self.warehouse.io_barrier();
        let (parts, pins) = self.warehouse.pinned_partitions();
        EngineSnapshot {
            dev: Arc::clone(self.warehouse.device()),
            parts,
            stream: self.stream.summary(),
            steps: self.warehouse.steps(),
            historical_len: self.warehouse.total_len(),
            epsilon: self.config.query_epsilon(),
            cache_blocks: self.config.cache_blocks,
            parallel: self.config.parallel_query,
            sched: self.warehouse.scheduler().cloned(),
            lost: self.warehouse.lost_items(),
            quarantined_files: self.warehouse.quarantined_files(),
            _pins: pins,
        }
    }

    /// Persist the full engine state (see [`crate::manifest`]): the
    /// warehouse's metadata plus the live stream — sketch and staging
    /// buffer — so [`Self::recover`] resumes *mid-step* with identical
    /// query answers, under either sketch backend. The optional
    /// heavy-hitter tracker is not persisted; re-enable it after
    /// recovery (it sees elements from that point on).
    pub fn persist(&self) -> io::Result<hsq_storage::FileId> {
        // A manifest must never reference a run whose blocks are still
        // in flight: settle them first.
        self.warehouse.io_barrier()?;
        crate::manifest::persist_engine(
            &self.warehouse,
            &self.stream,
            &self.staging,
            &self.staging_segments,
        )
    }

    /// Reopen an engine from a manifest written by [`Self::persist`]
    /// (the stream is restored, resuming mid-step). Warehouse-only
    /// manifests — [`crate::manifest::persist`] /
    /// [`crate::manifest::persist_snapshot`] backups,
    /// [`crate::manifest::ManifestLog`] files, and pre-version-3
    /// manifests — recover with an empty stream. A stream written under
    /// one sketch backend recovers under either build; the configured
    /// backend takes over at the next step boundary.
    pub fn recover(
        dev: Arc<D>,
        config: HsqConfig,
        manifest: hsq_storage::FileId,
    ) -> io::Result<Self> {
        let (warehouse, recovered) =
            crate::manifest::recover_with_stream(dev, config.clone(), manifest)?;
        let (stream, staging, staging_segments) = match recovered {
            Some(s) => (s.proc, s.staging, s.segments),
            None => (
                StreamProcessor::with_compaction(
                    config.sketch,
                    config.sketch_compaction,
                    config.epsilon2,
                    config.beta2,
                ),
                Vec::new(),
                Vec::new(),
            ),
        };
        Ok(HistStreamQuantiles {
            warehouse,
            stream,
            staging,
            staging_segments,
            staging_sort_time: std::time::Duration::ZERO,
            config,
            heavy: None,
        })
    }

    /// Quick φ-quantile (Algorithm 5): in-memory only, error ≤ 1.5εN.
    pub fn quantile_quick(&self, phi: f64) -> Option<T> {
        assert!(phi > 0.0 && phi <= 1.0, "phi must be in (0, 1]");
        let r = (phi * self.total_len() as f64).ceil() as u64;
        self.rank_query_quick(r)
    }

    /// Quick rank query (Algorithm 5).
    pub fn rank_query_quick(&self, r: u64) -> Option<T> {
        let (ss, parts) = self.context();
        let ctx = QueryContext::new(
            &**self.warehouse.device(),
            parts,
            &ss,
            self.config.query_epsilon(),
            self.config.cache_blocks,
        );
        ctx.quick_rank(r)
    }

    /// Window sizes (archived time steps) available for exact window
    /// queries right now; the live stream is always included on top.
    pub fn available_windows(&self) -> Vec<u64> {
        self.warehouse.available_windows()
    }

    /// Accurate φ-quantile over the union of the live stream and the last
    /// `window_steps` archived steps. `Ok(None)` if the window does not
    /// align with partition boundaries (§2.4: windowed queries are
    /// supported "if the window sizes are aligned with the partition
    /// boundaries").
    pub fn quantile_window(&self, phi: f64, window_steps: u64) -> io::Result<Option<T>> {
        assert!(phi > 0.0 && phi <= 1.0, "phi must be in (0, 1]");
        Ok(self
            .window_query(window_steps, |ctx, window_n| {
                let r = (phi * (window_n + self.stream_len()) as f64).ceil() as u64;
                ctx.accurate_rank(r)
            })?
            .map(|o| o.value))
    }

    /// Rank query over a window, with cost reporting.
    pub fn rank_query_window(
        &self,
        r: u64,
        window_steps: u64,
    ) -> io::Result<Option<QueryOutcome<T>>> {
        self.window_query(window_steps, |ctx, _| ctx.accurate_rank(r))
    }

    /// Shared window-query driver: resolve the window's partitions, drop
    /// quarantined ones (widening the outcome by the full quarantined
    /// mass — conservative but sound for any window), and run `f` under
    /// the self-healing recovery loop.
    fn window_query<R>(
        &self,
        window_steps: u64,
        f: impl Fn(&QueryContext<'_, T, D>, u64) -> io::Result<Option<R>>,
    ) -> io::Result<Option<R>> {
        self.strict_check()?;
        self.warehouse.io_barrier()?;
        self.with_recovery(|| {
            let Some(mut parts) = self.warehouse.window_partitions(window_steps) else {
                return Ok(None);
            };
            parts.retain(|p| !self.warehouse.is_quarantined(p.run.file()));
            let window_n: u64 = parts.iter().map(|p| p.run.len()).sum();
            let ss = self.stream.summary();
            let ctx = QueryContext::new(
                &**self.warehouse.device(),
                parts,
                &ss,
                self.config.query_epsilon(),
                self.config.cache_blocks,
            )
            .with_prefetch(self.warehouse.scheduler().map(|s| &**s))
            .with_degraded(self.warehouse.quarantined_mass());
            f(&ctx, window_n)
        })
    }

    /// First-class windowed quantile: the φ-quantile over the live stream
    /// plus the newest `window_steps` *retained* steps. Equivalent to
    /// [`HistStreamQuantiles::quantile_window`] with window-first argument
    /// order; with retention enabled (see [`crate::retention`]) this is
    /// the "p99 over the last 24h" query shape — the window can cover at
    /// most the retained horizon.
    pub fn quantile_in_window(&self, window_steps: u64, phi: f64) -> io::Result<Option<T>> {
        self.quantile_window(phi, window_steps)
    }

    /// First-class windowed rank query (window-first argument order; see
    /// [`HistStreamQuantiles::quantile_in_window`]).
    pub fn rank_in_window(&self, window_steps: u64, r: u64) -> io::Result<Option<QueryOutcome<T>>> {
        self.rank_query_window(r, window_steps)
    }

    /// One rate-limited self-healing pass over the warehouse: repair
    /// quarantined partitions by salvaging their checksum-valid blocks,
    /// then verify healthy partitions round-robin (see
    /// [`Warehouse::scrub`]). Call periodically from an operations loop;
    /// `budget_blocks` bounds the pass's read I/O.
    pub fn scrub(&mut self, budget_blocks: u64) -> io::Result<crate::warehouse::ScrubReport> {
        self.warehouse.scrub(budget_blocks)
    }
}

/// An immutable view of one engine at a point in time (see
/// [`HistStreamQuantiles::snapshot`]).
///
/// Owns a cloned [`StreamSummary`] and a pinned copy of the partition
/// list; queries run against it without touching — or blocking — the live
/// engine. Dropping the snapshot releases the pins (deferred partition
/// files are then deleted).
pub struct EngineSnapshot<T: Item, D: BlockDevice> {
    dev: Arc<D>,
    /// `(level, partition)` pairs, level-major, oldest first within a
    /// level — the same order the manifest serializes.
    parts: Vec<(usize, StoredPartition<T>)>,
    stream: StreamSummary<T>,
    steps: u64,
    historical_len: u64,
    epsilon: f64,
    cache_blocks: usize,
    parallel: bool,
    /// The warehouse's overlapped-I/O scheduler at snapshot time, if any:
    /// snapshot queries speculatively prefetch bisection probes through
    /// it exactly like live-engine queries.
    sched: Option<Arc<hsq_storage::IoScheduler>>,
    /// Confirmed-lost item count at snapshot time (see
    /// [`Warehouse::lost_items`]).
    lost: u64,
    /// Quarantined partition files at snapshot time, sorted — snapshot
    /// queries exclude them and widen their bounds like the live engine.
    quarantined_files: Vec<FileId>,
    _pins: PinGuard<D>,
}

impl<T: Item, D: BlockDevice> EngineSnapshot<T, D> {
    /// The block device the pinned partitions live on.
    pub fn device(&self) -> &Arc<D> {
        &self.dev
    }

    /// Time steps archived when the snapshot was taken.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Historical size `n` at snapshot time.
    pub fn historical_len(&self) -> u64 {
        self.historical_len
    }

    /// Stream size `m` at snapshot time.
    pub fn stream_len(&self) -> u64 {
        self.stream.stream_len()
    }

    /// Total size `N = n + m` at snapshot time.
    pub fn total_len(&self) -> u64 {
        self.historical_len + self.stream_len()
    }

    /// The pinned partitions with their levels (manifest order).
    pub fn leveled_partitions(&self) -> &[(usize, StoredPartition<T>)] {
        &self.parts
    }

    /// Items confirmed lost to corruption at snapshot time.
    pub fn lost_items(&self) -> u64 {
        self.lost
    }

    /// Quarantined partition files at snapshot time, sorted.
    pub fn quarantined_files(&self) -> &[FileId] {
        &self.quarantined_files
    }

    pub(crate) fn is_quarantined(&self, file: FileId) -> bool {
        self.quarantined_files.binary_search(&file).is_ok()
    }

    /// Items this snapshot's queries exclude (quarantined partitions'
    /// mass + confirmed-lost items): the exact `rank_hi` widening every
    /// outcome carries.
    pub fn quarantined_mass(&self) -> u64 {
        self.parts
            .iter()
            .filter(|(_, p)| self.is_quarantined(p.run.file()))
            .map(|(_, p)| p.run.len())
            .sum::<u64>()
            + self.lost
    }

    /// The pinned partitions that are NOT quarantined.
    fn healthy(&self) -> Vec<&StoredPartition<T>> {
        self.parts
            .iter()
            .filter(|(_, p)| !self.is_quarantined(p.run.file()))
            .map(|(_, p)| p)
            .collect()
    }

    /// The extracted stream summary.
    pub fn stream_summary(&self) -> &StreamSummary<T> {
        &self.stream
    }

    /// The configured decoded-block cache budget (blocks per query).
    pub(crate) fn cache_blocks(&self) -> usize {
        self.cache_blocks
    }

    /// Per-source rank-bound views (partitions + stream), the inputs a
    /// cross-shard [`crate::bounds::CombinedSummary`] is assembled from.
    pub fn sources(&self) -> Vec<crate::bounds::SourceView<T>> {
        let mut out: Vec<crate::bounds::SourceView<T>> = self
            .healthy()
            .into_iter()
            .map(|p| crate::bounds::SourceView::from_partition(&p.summary))
            .collect();
        out.push(crate::bounds::SourceView::from_stream(&self.stream));
        out
    }

    /// One decoded-block cache per (healthy) partition, splitting the
    /// configured budget — reuse across probes of one logical query.
    pub fn new_caches(&self) -> Vec<BlockCache<T>> {
        let healthy = self.healthy();
        let per = (self.cache_blocks / healthy.len().max(1)).max(2);
        healthy.iter().map(|_| BlockCache::new(per)).collect()
    }

    /// Rigorous bounds on `rank(z, T)` at snapshot time: exact disk ranks
    /// (summary-narrowed, cache-served) plus the stream's tracked interval.
    /// Quarantined partitions are skipped; the upper bound widens by the
    /// quarantined mass, since every unreadable item could be ≤ `z`.
    /// `caches` must come from [`EngineSnapshot::new_caches`].
    pub fn rank_bounds(&self, z: T, caches: &mut [BlockCache<T>]) -> io::Result<(u64, u64)> {
        let parts = self.healthy();
        let (lo, hi) =
            crate::query::union_rank_bounds(&*self.dev, &parts, &self.stream, z, caches)?;
        Ok((lo, hi + self.quarantined_mass()))
    }

    fn context(&self) -> QueryContext<'_, T, D> {
        QueryContext::new(
            &*self.dev,
            self.healthy(),
            &self.stream,
            self.epsilon,
            self.cache_blocks,
        )
        .with_parallel(self.parallel)
        .with_prefetch(self.sched.as_deref())
        .with_degraded(self.quarantined_mass())
    }

    /// Accurate φ-quantile over the snapshot (Theorem 2 at snapshot time).
    pub fn quantile(&self, phi: f64) -> io::Result<Option<T>> {
        assert!(phi > 0.0 && phi <= 1.0, "phi must be in (0, 1]");
        let r = (phi * self.total_len() as f64).ceil() as u64;
        Ok(self.rank_query(r)?.map(|o| o.value))
    }

    /// Accurate rank query over the snapshot, with cost reporting.
    pub fn rank_query(&self, r: u64) -> io::Result<Option<QueryOutcome<T>>> {
        self.context().accurate_rank(r)
    }

    /// Batch of φ-quantiles sharing one combined-summary build.
    pub fn quantiles(&self, phis: &[f64]) -> io::Result<Vec<Option<T>>> {
        let ctx = self.context();
        let n = self.total_len();
        phis.iter()
            .map(|&phi| {
                assert!(phi > 0.0 && phi <= 1.0, "phi must be in (0, 1]");
                let r = (phi * n as f64).ceil() as u64;
                Ok(ctx.accurate_rank(r)?.map(|o| o.value))
            })
            .collect()
    }

    /// Quick φ-quantile over the snapshot (in-memory, error ≤ 1.5εN).
    pub fn quantile_quick(&self, phi: f64) -> Option<T> {
        assert!(phi > 0.0 && phi <= 1.0, "phi must be in (0, 1]");
        let r = (phi * self.total_len() as f64).ceil() as u64;
        self.context().quick_rank(r)
    }

    /// Window sizes (in snapshot-time steps) answerable exactly from the
    /// pinned partitions, ascending.
    pub fn available_windows(&self) -> Vec<u64> {
        let mut spans: Vec<(u64, u64)> = self
            .parts
            .iter()
            .map(|(_, p)| (p.first_step, p.last_step))
            .collect();
        spans.sort_unstable_by_key(|s| std::cmp::Reverse(s.0));
        let mut out = Vec::with_capacity(spans.len());
        let mut acc = 0;
        for (first, last) in spans {
            acc += last - first + 1;
            out.push(acc);
        }
        out
    }

    /// The pinned partitions covering exactly the newest `window_steps`
    /// snapshot-time steps, newest first; `None` on misalignment.
    pub fn window_partitions(&self, window_steps: u64) -> Option<Vec<&StoredPartition<T>>> {
        crate::warehouse::window_suffix(self.parts.iter().map(|(_, p)| p).collect(), window_steps)
    }

    /// Like [`EngineSnapshot::window_partitions`], but returning indices
    /// into the pinned partition list — the storable form a cached
    /// cross-shard window plan keeps (see [`crate::sharded`]).
    pub(crate) fn window_partition_indices(&self, window_steps: u64) -> Option<Vec<usize>> {
        let spans: Vec<(u64, u64)> = self
            .parts
            .iter()
            .map(|(_, p)| (p.first_step, p.last_step))
            .collect();
        crate::warehouse::window_suffix_indices(&spans, window_steps)
    }

    /// The pinned partition at index `i` (see
    /// [`EngineSnapshot::window_partition_indices`]).
    pub(crate) fn partition_at(&self, i: usize) -> &StoredPartition<T> {
        &self.parts[i].1
    }

    /// Windowed φ-quantile over the snapshot: live-stream summary plus the
    /// newest `window_steps` pinned steps. Because the partitions are
    /// pinned, the answer is stable even while the live engine's
    /// retention expires those steps underneath.
    pub fn quantile_in_window(&self, window_steps: u64, phi: f64) -> io::Result<Option<T>> {
        assert!(phi > 0.0 && phi <= 1.0, "phi must be in (0, 1]");
        let Some(mut parts) = self.window_partitions(window_steps) else {
            return Ok(None);
        };
        parts.retain(|p| !self.is_quarantined(p.run.file()));
        let window_n: u64 = parts.iter().map(|p| p.run.len()).sum::<u64>() + self.stream_len();
        let r = (phi * window_n as f64).ceil() as u64;
        let ctx = QueryContext::new(
            &*self.dev,
            parts,
            &self.stream,
            self.epsilon,
            self.cache_blocks,
        )
        .with_prefetch(self.sched.as_deref())
        .with_degraded(self.quarantined_mass());
        Ok(ctx.accurate_rank(r)?.map(|o| o.value))
    }

    /// Windowed rank query over the snapshot, with cost reporting.
    pub fn rank_in_window(&self, window_steps: u64, r: u64) -> io::Result<Option<QueryOutcome<T>>> {
        let Some(mut parts) = self.window_partitions(window_steps) else {
            return Ok(None);
        };
        parts.retain(|p| !self.is_quarantined(p.run.file()));
        let ctx = QueryContext::new(
            &*self.dev,
            parts,
            &self.stream,
            self.epsilon,
            self.cache_blocks,
        )
        .with_prefetch(self.sched.as_deref())
        .with_degraded(self.quarantined_mass());
        ctx.accurate_rank(r)
    }
}

/// Merge the sorted segments of `data` (`seg_ends` = exclusive end offset
/// of each segment, ascending, last == `data.len()`) into one sorted
/// vector.
///
/// Boundaries that are already in order are coalesced first, so a stream
/// that arrived as nondecreasing batches (or one big batch) returns `data`
/// unchanged — zero copies, zero comparisons beyond the boundary checks.
/// Otherwise a cursor-heap k-way merge costs `O(n log k)` for `k` true
/// segments, versus `O(n log n)` for a full re-sort.
fn merge_sorted_segments<T: Item>(data: Vec<T>, seg_ends: &[usize]) -> Vec<T> {
    // Collapse empty segments and boundaries already in sorted order.
    let mut ranges: Vec<(usize, usize)> = Vec::with_capacity(seg_ends.len());
    let mut start = 0;
    for &end in seg_ends {
        debug_assert!(end >= start && end <= data.len());
        if end == start {
            continue;
        }
        match ranges.last_mut() {
            Some((_, prev_end)) if data[*prev_end - 1] <= data[start] => *prev_end = end,
            _ => ranges.push((start, end)),
        }
        start = end;
    }
    if ranges.len() <= 1 {
        return data;
    }
    let mut out = Vec::with_capacity(data.len());
    let mut cursors: Vec<usize> = ranges.iter().map(|&(s, _)| s).collect();
    // Min-heap of (next value, segment index); ties broken by segment
    // index for determinism.
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(T, usize)>> = ranges
        .iter()
        .enumerate()
        .map(|(i, &(s, _))| std::cmp::Reverse((data[s], i)))
        .collect();
    while let Some(std::cmp::Reverse((v, i))) = heap.pop() {
        out.push(v);
        cursors[i] += 1;
        if cursors[i] < ranges[i].1 {
            heap.push(std::cmp::Reverse((data[cursors[i]], i)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsq_storage::MemDevice;

    fn engine(eps: f64, kappa: usize) -> HistStreamQuantiles<u64, MemDevice> {
        let cfg = HsqConfig::builder()
            .epsilon(eps)
            .merge_threshold(kappa)
            .build();
        HistStreamQuantiles::new(MemDevice::new(256), cfg)
    }

    fn rank_distance(data: &[u64], v: u64, r: u64) -> u64 {
        let hi = data.iter().filter(|&&x| x <= v).count() as u64;
        let lo = data.iter().filter(|&&x| x < v).count() as u64 + 1;
        if r < lo {
            lo - r
        } else {
            r.saturating_sub(hi)
        }
    }

    #[test]
    fn end_to_end_accuracy() {
        let mut h = engine(0.05, 3);
        let mut all = Vec::new();
        let mut x = 7u64;
        let mut gen = || {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            x >> 32
        };
        for _ in 0..10 {
            for _ in 0..300 {
                let v = gen();
                all.push(v);
                h.stream_update(v);
            }
            h.end_time_step().unwrap();
        }
        for _ in 0..300 {
            let v = gen();
            all.push(v);
            h.stream_update(v);
        }
        assert_eq!(h.total_len(), 3300);
        assert_eq!(h.stream_len(), 300);

        let m = 300u64;
        let allowed = (0.05 * m as f64).ceil() as u64 + 1;
        for phi in [0.01, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let v = h.quantile(phi).unwrap().unwrap();
            let r = (phi * 3300.0).ceil() as u64;
            let dist = rank_distance(&all, v, r);
            assert!(
                dist <= allowed,
                "phi={phi}: off by {dist} (allowed {allowed})"
            );
        }
    }

    #[test]
    fn quick_and_accurate_agree_roughly() {
        let mut h = engine(0.1, 4);
        for step in 0..5u64 {
            let batch: Vec<u64> = (0..500).map(|i| step * 500 + i).collect();
            h.ingest_step(&batch).unwrap();
        }
        for v in 2500..2600u64 {
            h.stream_update(v);
        }
        let quick = h.quantile_quick(0.5).unwrap();
        let accurate = h.quantile(0.5).unwrap().unwrap();
        // Values 0..2600: median ~1300. Quick within 1.5*eps*N = 390,
        // accurate within eps*m = 10.
        assert!((accurate as i64 - 1300).abs() <= 12, "accurate {accurate}");
        assert!((quick as i64 - 1300).abs() <= 400, "quick {quick}");
    }

    #[test]
    fn empty_engine() {
        let h = engine(0.1, 3);
        assert!(h.quantile(0.5).unwrap().is_none());
        assert!(h.quantile_quick(0.5).is_none());
        assert_eq!(h.total_len(), 0);
    }

    #[test]
    fn stream_only_no_history() {
        let mut h = engine(0.05, 3);
        for v in 0..1000u64 {
            h.stream_update(v);
        }
        let med = h.quantile(0.5).unwrap().unwrap();
        assert!((med as i64 - 500).abs() <= 51, "median {med}");
    }

    #[test]
    fn history_only_no_stream() {
        let mut h = engine(0.05, 3);
        for step in 0..4u64 {
            let batch: Vec<u64> = (0..250).map(|i| step * 250 + i).collect();
            h.ingest_step(&batch).unwrap();
        }
        assert_eq!(h.stream_len(), 0);
        // With m = 0 the guarantee is exact (Definition 1 semantics).
        let med = h.quantile(0.5).unwrap().unwrap();
        assert_eq!(med, 499);
        let q1 = h.quantile(0.25).unwrap().unwrap();
        assert_eq!(q1, 249);
    }

    #[test]
    fn window_queries() {
        let mut h = engine(0.1, 2);
        // 13 steps of disjoint ranges (Figure 2's partition layout).
        for step in 0..13u64 {
            let batch: Vec<u64> = (0..100).map(|i| step * 100 + i).collect();
            h.ingest_step(&batch).unwrap();
        }
        assert_eq!(h.available_windows(), vec![1, 4, 13]);
        // Window of 1 step = values 1200..1300 (step 13), plus empty stream.
        let med = h.quantile_window(0.5, 1).unwrap().unwrap();
        assert!((1200..1300).contains(&med), "window median {med}");
        // Non-aligned window.
        assert!(h.quantile_window(0.5, 2).unwrap().is_none());
        // Window of 4: steps 10..13 -> values 900..1300.
        let med4 = h.quantile_window(0.5, 4).unwrap().unwrap();
        assert!((1050..1150).contains(&med4), "window-4 median {med4}");
    }

    #[test]
    fn window_includes_live_stream() {
        // kappa = 3 keeps three level-0 partitions, so a 1-step window
        // aligns with the newest partition.
        let mut h = engine(0.1, 3);
        for step in 0..3u64 {
            let batch: Vec<u64> = (0..100).map(|i| step * 100 + i).collect();
            h.ingest_step(&batch).unwrap();
        }
        for v in 300..400u64 {
            h.stream_update(v);
        }
        // Window 1 = step 3 (200..300) + stream (300..400): median ~300.
        let med = h.quantile_window(0.5, 1).unwrap().unwrap();
        assert!((280..330).contains(&med), "median {med}");
    }

    #[test]
    fn window_first_api_matches_legacy_order() {
        let mut h = engine(0.1, 2);
        for step in 0..13u64 {
            let batch: Vec<u64> = (0..100).map(|i| step * 100 + i).collect();
            h.ingest_step(&batch).unwrap();
        }
        for w in h.available_windows() {
            assert_eq!(
                h.quantile_in_window(w, 0.5).unwrap(),
                h.quantile_window(0.5, w).unwrap()
            );
            let a = h.rank_in_window(w, 42).unwrap().unwrap();
            let b = h.rank_query_window(42, w).unwrap().unwrap();
            assert_eq!(a.value, b.value);
        }
        assert!(h.quantile_in_window(2, 0.5).unwrap().is_none());
    }

    #[test]
    fn retention_bounds_engine_history() {
        let cfg = HsqConfig::builder()
            .epsilon(0.1)
            .merge_threshold(3)
            .retention(crate::retention::RetentionPolicy::unbounded().with_max_age_steps(4))
            .build();
        let mut h = HistStreamQuantiles::<u64, _>::new(MemDevice::new(256), cfg);
        let mut retired = 0u64;
        for step in 0..20u64 {
            let batch: Vec<u64> = (0..50).map(|i| step * 50 + i).collect();
            let report = h.ingest_step(&batch).unwrap();
            retired += report.retention.retired_items;
        }
        assert!(h.historical_len() <= 4 * 50, "n = {}", h.historical_len());
        assert_eq!(h.historical_len() + retired, 20 * 50);
        // Queries answer over the retained union only: the minimum is the
        // oldest retained value, not 0.
        let min = h.rank_query(1).unwrap().unwrap().value;
        let oldest_step = h.warehouse().first_retained_step().unwrap() - 1;
        assert_eq!(min, oldest_step * 50);
        // Windowed p99-style query over the retained horizon.
        let max_window = *h.available_windows().last().unwrap();
        let p99 = h.quantile_in_window(max_window, 0.99).unwrap().unwrap();
        assert!(p99 >= 19 * 50, "p99 {p99} not in the newest data");
    }

    #[test]
    fn snapshot_windows_stable_under_expiry() {
        let cfg = HsqConfig::builder()
            .epsilon(0.1)
            .merge_threshold(3)
            .retention(crate::retention::RetentionPolicy::unbounded().with_max_age_steps(3))
            .build();
        let mut h = HistStreamQuantiles::<u64, _>::new(MemDevice::new(256), cfg);
        for step in 0..6u64 {
            let batch: Vec<u64> = (0..80).map(|i| step * 80 + i).collect();
            h.ingest_step(&batch).unwrap();
        }
        let snap = h.snapshot();
        let windows = snap.available_windows();
        assert_eq!(windows, h.available_windows());
        let w = *windows.first().unwrap();
        let before = snap.quantile_in_window(w, 0.5).unwrap().unwrap();
        let rank_before = snap.rank_in_window(w, 10).unwrap().unwrap().value;
        // Expire everything the snapshot pins.
        for step in 6..14u64 {
            let batch: Vec<u64> = (0..80).map(|i| step * 80 + i).collect();
            h.ingest_step(&batch).unwrap();
        }
        assert_eq!(snap.quantile_in_window(w, 0.5).unwrap().unwrap(), before);
        assert_eq!(
            snap.rank_in_window(w, 10).unwrap().unwrap().value,
            rank_before
        );
        assert_eq!(snap.available_windows(), windows);
    }

    #[test]
    fn memory_words_reported() {
        let mut h = engine(0.05, 3);
        for step in 0..6u64 {
            let batch: Vec<u64> = (0..200).map(|i| step * 200 + i).collect();
            h.ingest_step(&batch).unwrap();
        }
        for v in 0..100u64 {
            h.stream_update(v);
        }
        let words = h.memory_words();
        assert!(words > 0);
        // Far below the data size (sketches, not storage).
        assert!(words < 1300, "memory {words} words too large");
    }

    #[test]
    fn theorem2_rank_window() {
        // Returned rank estimate within eps*m of request.
        let mut h = engine(0.1, 3);
        let mut all = Vec::new();
        for step in 0..8u64 {
            let batch: Vec<u64> = (0..200).map(|i| (i * 13 + step * 7) % 10_000).collect();
            all.extend(&batch);
            h.ingest_step(&batch).unwrap();
        }
        for i in 0..200u64 {
            let v = (i * 31) % 10_000;
            all.push(v);
            h.stream_update(v);
        }
        let m = 200u64;
        let allowed = (0.1 * m as f64).ceil() as u64 + 1;
        for r in [1u64, 400, 850, 1200, 1700] {
            let out = h.rank_query(r).unwrap().unwrap();
            let dist = rank_distance(&all, out.value, r);
            assert!(dist <= allowed, "r={r}: off by {dist}");
        }
    }

    #[test]
    fn quick_queries_never_touch_disk() {
        let mut h = engine(0.05, 3);
        for step in 0..6u64 {
            let batch: Vec<u64> = (0..300).map(|i| step * 300 + i).collect();
            h.ingest_step(&batch).unwrap();
        }
        let before = h.warehouse().device().stats().snapshot();
        for phi in [0.1, 0.5, 0.9] {
            let _ = h.quantile_quick(phi);
        }
        let after = h.warehouse().device().stats().snapshot();
        assert_eq!((after - before).total_reads(), 0);
    }

    #[test]
    fn rank_queries_clamp_out_of_range() {
        let mut h = engine(0.1, 3);
        h.ingest_step(&(0..100u64).collect::<Vec<_>>()).unwrap();
        // r = 0 clamps to 1 (minimum), huge r clamps to N (maximum).
        let lo = h.rank_query(0).unwrap().unwrap();
        assert!(lo.value <= 5, "rank 0 should clamp to the minimum region");
        let hi = h.rank_query(u64::MAX).unwrap().unwrap();
        assert!(
            hi.value >= 95,
            "rank MAX should clamp to the maximum region"
        );
    }

    #[test]
    fn batch_quantiles_are_monotone() {
        let mut h = engine(0.05, 4);
        for step in 0..5u64 {
            let batch: Vec<u64> = (0..400).map(|i| (i * 7919 + step) % 100_000).collect();
            h.ingest_step(&batch).unwrap();
        }
        for v in 0..200u64 {
            h.stream_update(v * 500);
        }
        let phis = [0.05, 0.25, 0.5, 0.75, 0.95, 1.0];
        let qs = h.quantiles(&phis).unwrap();
        for w in qs.windows(2) {
            assert!(
                w[0].unwrap() <= w[1].unwrap(),
                "quantiles not monotone: {qs:?}"
            );
        }
    }

    #[test]
    fn ingesting_between_queries_is_consistent() {
        // Interleave archiving and querying; each answer must reflect all
        // data seen so far.
        let mut h = engine(0.1, 2);
        let mut count = 0u64;
        for step in 0..7u64 {
            let batch: Vec<u64> = (0..100).map(|i| step * 100 + i).collect();
            count += batch.len() as u64;
            h.ingest_step(&batch).unwrap();
            assert_eq!(h.total_len(), count);
            let max = h.quantile(1.0).unwrap().unwrap();
            assert_eq!(max, step * 100 + 99, "max after step {step}");
            let min = h.rank_query(1).unwrap().unwrap().value;
            assert_eq!(min, 0, "min after step {step}");
        }
    }

    #[test]
    fn merge_sorted_segments_zero_copy_when_ordered() {
        // Segments already in global order coalesce without any merge.
        let data: Vec<u64> = (0..100).collect();
        let out = merge_sorted_segments(data.clone(), &[30, 60, 100]);
        assert_eq!(out, data);
        // Single segment: returned unchanged.
        let out = merge_sorted_segments(data.clone(), &[100]);
        assert_eq!(out, data);
        // Empty segments are skipped.
        let out = merge_sorted_segments(data.clone(), &[0, 30, 30, 100]);
        assert_eq!(out, data);
    }

    #[test]
    fn merge_sorted_segments_interleaved() {
        // Two interleaved sorted segments.
        let mut data: Vec<u64> = (0..50).map(|i| i * 2).collect();
        data.extend((0..50).map(|i| i * 2 + 1));
        let out = merge_sorted_segments(data, &[50, 100]);
        assert_eq!(out, (0..100).collect::<Vec<u64>>());
        // Three segments with duplicates.
        let out = merge_sorted_segments(vec![1, 5, 5, 2, 5, 9, 1, 3], &[3, 6, 8]);
        assert_eq!(out, vec![1, 1, 2, 3, 5, 5, 5, 9]);
    }

    #[test]
    fn stream_extend_interleaves_with_scalar_updates() {
        let mut h = engine(0.05, 3);
        let mut all: Vec<u64> = Vec::new();
        // Mixed arrival: scalar, batch, scalar, batch.
        for v in [900u64, 100, 500] {
            all.push(v);
            h.stream_update(v);
        }
        let batch: Vec<u64> = (0..200).map(|i| (i * 37) % 1000).collect();
        all.extend(&batch);
        h.stream_extend(&batch);
        for v in [7u64, 993] {
            all.push(v);
            h.stream_update(v);
        }
        h.stream_extend(&[42, 4, 998]);
        all.extend([42, 4, 998]);
        assert_eq!(h.stream_len(), all.len() as u64);

        // Mid-step queries see everything streamed so far.
        all.sort_unstable();
        let med = h.quantile(0.5).unwrap().unwrap();
        let r = all.partition_point(|&x| x <= med) as i64;
        assert!((r - all.len() as i64 / 2).abs() <= 12, "median rank {r}");

        // Archival stores the exact multiset.
        h.end_time_step().unwrap();
        let stored = h.warehouse().partitions_newest_first()[0]
            .run
            .read_all(&**h.warehouse().device())
            .unwrap();
        assert_eq!(stored, all);
    }

    #[test]
    fn oversized_step_takes_external_sort_path() {
        // A step bigger than sort_budget_items must go through the
        // warehouse's external sort: spill I/O shows up in the report.
        let cfg = HsqConfig::builder()
            .epsilon(0.1)
            .merge_threshold(3)
            .sort_budget_items(64)
            .build();
        let mut h = HistStreamQuantiles::<u64, _>::new(MemDevice::new(256), cfg);
        let batch: Vec<u64> = (0..500u64).rev().collect();
        h.stream_extend(&batch);
        let report = h.end_time_step().unwrap();
        assert!(report.sort_io.writes > 0, "expected spill writes");
        let stored = h.warehouse().partitions_newest_first()[0]
            .run
            .read_all(&**h.warehouse().device())
            .unwrap();
        assert_eq!(stored, (0..500).collect::<Vec<u64>>());
    }

    #[test]
    fn sort_time_attributed_to_report() {
        // The staging sorts paid during streaming must surface in the
        // step's report, not vanish from the cost breakdown.
        let mut h = engine(0.05, 3);
        let batch: Vec<u64> = (0..50_000u64).rev().collect();
        h.stream_extend(&batch);
        let report = h.end_time_step().unwrap();
        assert!(
            report.sort_time > std::time::Duration::ZERO,
            "sort_time must include staging sorts"
        );
    }

    #[test]
    fn stream_extend_empty_batch_is_noop() {
        let mut h = engine(0.1, 3);
        h.stream_extend(&[]);
        assert_eq!(h.stream_len(), 0);
        let report = h.end_time_step().unwrap();
        assert_eq!(report.total_accesses(), 0);
        assert_eq!(h.warehouse().steps(), 1);
    }

    #[test]
    fn snapshot_is_immutable_under_ingestion() {
        let mut h = engine(0.05, 2);
        for step in 0..4u64 {
            let batch: Vec<u64> = (0..250).map(|i| step * 250 + i).collect();
            h.ingest_step(&batch).unwrap();
        }
        for v in 1000..1100u64 {
            h.stream_update(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.total_len(), 1100);
        assert_eq!(snap.stream_len(), 100);
        let med_before = snap.quantile(0.5).unwrap().unwrap();

        // Keep ingesting: kappa = 2 forces merges that retire the pinned
        // runs; the snapshot must keep answering over the OLD data.
        for step in 4..12u64 {
            let batch: Vec<u64> = (0..250).map(|i| step * 250 + i).collect();
            h.ingest_step(&batch).unwrap();
        }
        assert_eq!(snap.total_len(), 1100);
        let med_after = snap.quantile(0.5).unwrap().unwrap();
        assert_eq!(med_before, med_after);
        assert!((med_after as i64 - 550).abs() <= 10, "median {med_after}");
        // The live engine reflects the new data: 3000 archived values
        // 0..3000 plus the 100 streamed duplicates of 1000..1100 put the
        // median near 1450.
        let live = h.quantile(0.5).unwrap().unwrap();
        assert!((live as i64 - 1450).abs() <= 20, "live median {live}");
    }

    #[test]
    fn snapshot_quick_and_batch_queries() {
        let mut h = engine(0.1, 3);
        for step in 0..5u64 {
            let batch: Vec<u64> = (0..200).map(|i| step * 200 + i).collect();
            h.ingest_step(&batch).unwrap();
        }
        let snap = h.snapshot();
        let qs = snap.quantiles(&[0.25, 0.5, 0.75]).unwrap();
        for w in qs.windows(2) {
            assert!(w[0].unwrap() <= w[1].unwrap());
        }
        let quick = snap.quantile_quick(0.5).unwrap();
        assert!((quick as i64 - 500).abs() <= 160, "quick {quick}");
    }

    #[test]
    fn snapshot_rank_bounds_are_sound() {
        let mut h = engine(0.1, 3);
        let mut all: Vec<u64> = Vec::new();
        for step in 0..6u64 {
            let batch: Vec<u64> = (0..150).map(|i| (i * 31 + step * 7) % 2000).collect();
            all.extend(&batch);
            h.ingest_step(&batch).unwrap();
        }
        for i in 0..150u64 {
            let v = (i * 17) % 2000;
            all.push(v);
            h.stream_update(v);
        }
        let snap = h.snapshot();
        let mut caches = snap.new_caches();
        for z in [0u64, 123, 999, 1500, 1999, 5000] {
            let truth = all.iter().filter(|&&x| x <= z).count() as u64;
            let (lo, hi) = snap.rank_bounds(z, &mut caches).unwrap();
            assert!(
                lo <= truth && truth <= hi,
                "z={z}: {truth} outside [{lo},{hi}]"
            );
        }
    }

    #[test]
    fn empty_snapshot() {
        let h = engine(0.1, 3);
        let snap = h.snapshot();
        assert_eq!(snap.total_len(), 0);
        assert!(snap.quantile(0.5).unwrap().is_none());
        assert!(snap.quantile_quick(0.5).is_none());
    }

    #[test]
    fn weighted_stream_matches_replicated() {
        // Weighted ingest must be indistinguishable (same multiset, same
        // ε·m guarantee, same archived bytes) from replicated scalar
        // ingest — across a step boundary and mid-step.
        let mut h = engine(0.05, 3);
        let mut all: Vec<u64> = Vec::new();
        let pairs: Vec<(u64, u64)> = (0..500u64)
            .map(|i| {
                let v = i.wrapping_mul(2654435761) % 10_000;
                (v, (v % 5) + 1)
            })
            .collect();
        for &(v, w) in &pairs {
            all.extend(std::iter::repeat_n(v, w as usize));
        }
        h.stream_extend_weighted(&pairs[..250]);
        h.end_time_step().unwrap();
        h.stream_extend_weighted(&pairs[250..400]);
        for &(v, w) in &pairs[400..] {
            h.stream_update_weighted(v, w);
        }
        let total: u64 = pairs.iter().map(|&(_, w)| w).sum();
        assert_eq!(h.total_len(), total);
        let m = h.stream_len();
        let allowed = (0.05 * m as f64).ceil() as u64 + 1;
        for phi in [0.1, 0.5, 0.9, 1.0] {
            let v = h.quantile(phi).unwrap().unwrap();
            let r = (phi * total as f64).ceil() as u64;
            let dist = rank_distance(&all, v, r);
            assert!(dist <= allowed, "phi={phi}: off by {dist}");
        }
        // The archived partition holds the replicated multiset.
        let stored = h.warehouse().partitions_newest_first()[0]
            .run
            .read_all(&**h.warehouse().device())
            .unwrap();
        let mut expect: Vec<u64> = Vec::new();
        for &(v, w) in &pairs[..250] {
            expect.extend(std::iter::repeat_n(v, w as usize));
        }
        expect.sort_unstable();
        assert_eq!(stored, expect);
        // Zero-weight pairs are dropped, not staged.
        let before = h.stream_len();
        h.stream_extend_weighted(&[(1, 0), (2, 0)]);
        h.stream_update_weighted(3, 0);
        assert_eq!(h.stream_len(), before);
    }

    #[test]
    fn heavy_hitters_see_batched_updates() {
        let mut h = engine(0.1, 3);
        h.enable_heavy_hitters(crate::heavy::HeavyHitterConfig::default());
        let mut batch = vec![7u64; 300];
        batch.extend(0..700u64);
        h.stream_extend(&batch);
        let hits = h.heavy_hitters(0.2).unwrap();
        let top = hits.first().expect("7 must be reported");
        assert_eq!(top.value, 7);
        assert!(top.stream_lo <= 301 && 301 <= top.stream_hi);
    }

    #[test]
    fn heavy_hitter_tracker_survives_time_steps() {
        let mut h = engine(0.1, 3);
        h.enable_heavy_hitters(crate::heavy::HeavyHitterConfig::default());
        // Heavy value spread across archived steps AND the live stream.
        for _ in 0..3 {
            let mut batch = vec![99u64; 300];
            batch.extend(0..700u64);
            h.ingest_step(&batch).unwrap();
        }
        for _ in 0..100 {
            h.stream_update(99u64);
        }
        let hits = h.heavy_hitters(0.1).unwrap();
        let top = hits.first().expect("99 must be reported");
        assert_eq!(top.value, 99);
        // 300 planted copies + one natural 99 from 0..700, per batch.
        assert_eq!(top.hist_count, 903);
        assert!(top.stream_lo <= 100 && 100 <= top.stream_hi);
    }
}
