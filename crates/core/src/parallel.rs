//! Bounded-thread fan-out helpers: parallel partition probing (paper §4,
//! future work: "different disk partitions can be processed in parallel")
//! and the generic [`par_map_mut`] pool the sharded engine uses for
//! per-shard ingestion and cross-shard query fan-in.
//!
//! [`par_partition_ranks`] computes the per-partition exact ranks of the
//! bisection midpoint concurrently, each partition with its own
//! decoded-block cache. Enabled via [`crate::HsqConfig`]'s
//! `parallel_query` flag or [`crate::query::QueryContext::with_parallel`].
//! I/O *counts* are unchanged — only wall-clock latency overlaps.
//!
//! All helpers bound their thread count by [`worker_count`]:
//! `available_parallelism()` unless the `HSQ_WORKERS` environment
//! variable overrides it (raise it to overlap blocking device I/O across
//! shards even on few cores).

use std::io;

use hsq_storage::{BlockCache, BlockDevice, Item};

use crate::query::partition_rank;
use crate::warehouse::StoredPartition;

/// Worker-thread bound shared by every fan-out helper in this module:
/// `available_parallelism()`, clamped to `[1, tasks]`, overridable with
/// the `HSQ_WORKERS` environment variable (useful to overlap blocking
/// device I/O across shards even on few cores).
///
/// An unset variable falls back to `available_parallelism()`; a set but
/// invalid one (non-numeric, or `0`) panics. Silently ignoring a typo'd
/// override would run a benchmark at the wrong width and corrupt its
/// numbers without any signal.
pub fn worker_count(tasks: usize) -> usize {
    let default = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let workers = std::env::var("HSQ_WORKERS")
        .ok()
        .map(|s| parse_workers(&s))
        .unwrap_or(default);
    workers.clamp(1, tasks.max(1))
}

/// Parse an `HSQ_WORKERS` override; panics loudly on anything that is not
/// a positive integer.
fn parse_workers(s: &str) -> usize {
    match s.trim().parse::<usize>() {
        Ok(w) if w > 0 => w,
        _ => panic!("invalid HSQ_WORKERS {s:?} (want a positive integer)"),
    }
}

/// Apply `f` to every item of `items` (with its index), running up to
/// [`worker_count`] scoped threads over contiguous chunks; results are
/// returned in input order. Runs inline when one worker suffices.
///
/// The shard fan-out primitive: [`crate::sharded::ShardedEngine`] uses it
/// to ingest per-shard batches and to probe shard snapshots concurrently.
pub fn par_map_mut<I, R, F>(items: &mut [I], f: F) -> Vec<R>
where
    I: Send,
    R: Send,
    F: Fn(usize, &mut I) -> R + Sync,
{
    let n = items.len();
    let workers = worker_count(n);
    if workers <= 1 || n <= 1 {
        return items
            .iter_mut()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    let chunk = n.div_ceil(workers);
    let results: Vec<Vec<R>> = std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks_mut(chunk)
            .enumerate()
            .map(|(ci, chunk_items)| {
                let f = &f;
                s.spawn(move || {
                    chunk_items
                        .iter_mut()
                        .enumerate()
                        .map(|(j, item)| f(ci * chunk + j, item))
                        .collect()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("par_map_mut worker panicked"))
            .collect()
    });
    results.into_iter().flatten().collect()
}

/// Compute `rank(z, P)` for every partition concurrently.
///
/// Equivalent to the serial loop in
/// `QueryContext::rank_in_partitions`, including cache reuse across
/// bisection iterations (each partition owns its cache).
///
/// Work is chunked over at most `available_parallelism()` scoped threads
/// (not one thread per partition): with `κ·log_κ T` partitions a query
/// would otherwise spawn far more threads than cores at every bisection
/// step, and the spawn overhead swamps the overlapped I/O it buys.
pub fn par_partition_ranks<T: Item, D: BlockDevice>(
    dev: &D,
    partitions: &[&StoredPartition<T>],
    z: T,
    windows: &[(u64, u64)],
    caches: &mut [BlockCache<T>],
) -> io::Result<Vec<u64>> {
    assert_eq!(partitions.len(), windows.len());
    assert_eq!(partitions.len(), caches.len());
    let n = partitions.len();
    let workers = worker_count(n);
    if workers <= 1 || n <= 1 {
        let mut per = Vec::with_capacity(n);
        for ((&p, &w), cache) in partitions.iter().zip(windows).zip(caches.iter_mut()) {
            per.push(partition_rank(dev, p, z, w, cache)?);
        }
        return Ok(per);
    }
    let chunk = n.div_ceil(workers);
    let results: Vec<io::Result<Vec<u64>>> = std::thread::scope(|s| {
        let handles: Vec<_> = partitions
            .chunks(chunk)
            .zip(windows.chunks(chunk))
            .zip(caches.chunks_mut(chunk))
            .map(|((ps, ws), cs)| {
                s.spawn(move || -> io::Result<Vec<u64>> {
                    ps.iter()
                        .zip(ws)
                        .zip(cs.iter_mut())
                        .map(|((&p, &w), cache)| partition_rank(dev, p, z, w, cache))
                        .collect()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("partition rank thread panicked"))
            .collect()
    });
    let mut per = Vec::with_capacity(n);
    for r in results {
        per.extend(r?);
    }
    Ok(per)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HsqConfig;
    use crate::query::QueryContext;
    use crate::stream::StreamProcessor;
    use crate::warehouse::Warehouse;
    use hsq_storage::MemDevice;

    #[test]
    fn parallel_matches_serial() {
        let mut cfg = HsqConfig::with_epsilon(0.05);
        cfg.kappa = 3;
        let mut w = Warehouse::new(MemDevice::new(256), cfg.clone());
        let mut x = 99u64;
        let mut gen = || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            x >> 33
        };
        for _ in 0..9 {
            let batch: Vec<u64> = (0..300).map(|_| gen()).collect();
            w.add_batch(batch).unwrap();
        }
        let mut sp = StreamProcessor::new(cfg.epsilon2, cfg.beta2);
        for _ in 0..200 {
            sp.update(gen());
        }
        let ss = sp.summary();

        for r in [1u64, 700, 1450, 2900] {
            let serial = QueryContext::new(
                &**w.device(),
                w.partitions_newest_first(),
                &ss,
                cfg.epsilon(),
                cfg.cache_blocks,
            )
            .accurate_rank(r)
            .unwrap()
            .unwrap();
            let parallel = QueryContext::new(
                &**w.device(),
                w.partitions_newest_first(),
                &ss,
                cfg.epsilon(),
                cfg.cache_blocks,
            )
            .with_parallel(true)
            .accurate_rank(r)
            .unwrap()
            .unwrap();
            assert_eq!(serial.value, parallel.value, "r = {r}");
            assert_eq!(serial.estimated_rank, parallel.estimated_rank);
        }
    }

    #[test]
    fn par_map_mut_preserves_order() {
        let mut items: Vec<u64> = (0..37).collect();
        let out = par_map_mut(&mut items, |i, v| {
            *v += 1;
            (i as u64, *v)
        });
        for (i, &(idx, v)) in out.iter().enumerate() {
            assert_eq!(idx, i as u64);
            assert_eq!(v, i as u64 + 1);
        }
        assert_eq!(items, (1..38).collect::<Vec<u64>>());
    }

    #[test]
    fn worker_count_bounds() {
        assert_eq!(worker_count(0), 1);
        assert_eq!(worker_count(1), 1);
        assert!(worker_count(64) >= 1);
    }

    #[test]
    fn worker_override_parses_positive() {
        assert_eq!(parse_workers("1"), 1);
        assert_eq!(parse_workers(" 8 "), 8);
    }

    #[test]
    #[should_panic(expected = "HSQ_WORKERS")]
    fn worker_override_zero_panics() {
        let _ = parse_workers("0");
    }

    #[test]
    #[should_panic(expected = "HSQ_WORKERS")]
    fn worker_override_garbage_panics() {
        let _ = parse_workers("eight");
    }

    #[test]
    fn par_ranks_direct() {
        let dev = MemDevice::new(64);
        let mut parts = Vec::new();
        for s in 0..4u64 {
            let data: Vec<u64> = (0..100).map(|i| i * 4 + s).collect();
            let run = hsq_storage::write_run(&*dev, &data).unwrap();
            let summary = crate::summary::summarize_sorted(&data, 0.1, 11, 64);
            parts.push(StoredPartition {
                run,
                summary,
                first_step: s + 1,
                last_step: s + 1,
            });
        }
        let part_refs: Vec<&StoredPartition<u64>> = parts.iter().collect();
        let windows: Vec<(u64, u64)> = parts.iter().map(|p| (0, p.run.len())).collect();
        let mut caches: Vec<BlockCache<u64>> = parts.iter().map(|_| BlockCache::new(4)).collect();
        let ranks = par_partition_ranks(&*dev, &part_refs, 200, &windows, &mut caches).unwrap();
        for (s, &rank) in ranks.iter().enumerate() {
            let expect = (0..100).filter(|i| i * 4 + s as u64 <= 200).count() as u64;
            assert_eq!(rank, expect, "partition {s}");
        }
    }
}
