//! Warehouse persistence: serialize `HD`'s metadata and `HS`'s summaries
//! so a warehouse can be reopened after a restart.
//!
//! **Extension beyond the paper**, which describes an in-process system;
//! any data-stream warehouse deployment (TidalRace-style, §1) needs the
//! index to survive restarts. The manifest records, per partition: level,
//! backing file, length, extrema, time-step interval, and the full
//! summary entries — so recovery costs `O(manifest size)` sequential
//! block reads and **zero** partition scans.
//!
//! Format (all integers little-endian `u64`, values in `Item` encoding):
//!
//! ```text
//! magic "HSQM"  version  item_width  steps  total_len  num_partitions
//! per partition:
//!   level  file_id  run_len  first_step  last_step  min  max
//!   num_entries  (value rank block)*
//! crc64 (of everything above)
//! ```
//!
//! The stream (`R`) is deliberately *not* persisted: in the paper's model
//! (§1.1) un-archived data is the volatile stream; recovery is at
//! time-step granularity.

use std::io;
use std::sync::Arc;

use hsq_storage::{BlockDevice, FileId, Item, SortedRun};

use crate::config::HsqConfig;
use crate::summary::{PartitionSummary, SummaryEntry};
use crate::warehouse::{StoredPartition, Warehouse};

const MAGIC: &[u8; 4] = b"HSQM";
const VERSION: u64 = 1;

/// Simple CRC-64 (ECMA polynomial, bitwise) for manifest integrity.
fn crc64(data: &[u8]) -> u64 {
    const POLY: u64 = 0x42F0_E1EB_A9EA_3693;
    let mut crc = !0u64;
    for &b in data {
        crc ^= (b as u64) << 56;
        for _ in 0..8 {
            crc = if crc >> 63 == 1 {
                (crc << 1) ^ POLY
            } else {
                crc << 1
            };
        }
    }
    !crc
}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer {
            buf: Vec::with_capacity(4096),
        }
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn item<T: Item>(&mut self, v: T) {
        let start = self.buf.len();
        self.buf.resize(start + T::ENCODED_LEN, 0);
        v.encode(&mut self.buf[start..]);
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u64(&mut self) -> io::Result<u64> {
        let end = self.pos + 8;
        let slice = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| corrupt("truncated manifest"))?;
        self.pos = end;
        Ok(u64::from_le_bytes(slice.try_into().unwrap()))
    }

    fn item<T: Item>(&mut self) -> io::Result<T> {
        let end = self.pos + T::ENCODED_LEN;
        let slice = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| corrupt("truncated manifest"))?;
        self.pos = end;
        Ok(T::decode(slice))
    }
}

fn corrupt(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("manifest: {msg}"))
}

/// Serialize the warehouse's metadata into a new file on its device;
/// returns the manifest's [`FileId`] (persist it out of band, e.g. in a
/// config file — it is the only thing recovery needs besides the device).
pub fn persist<T: Item, D: BlockDevice>(w: &Warehouse<T, D>) -> io::Result<FileId> {
    let mut parts: Vec<(u64, &StoredPartition<T>)> = Vec::new();
    for level in 0..w.num_levels() {
        for p in w.level(level) {
            parts.push((level as u64, p));
        }
    }
    write_manifest(&**w.device(), w.steps(), w.total_len(), &parts)
}

/// Serialize an [`crate::engine::EngineSnapshot`]'s pinned partition list
/// as a manifest on the snapshot's device: a *consistent online backup*
/// taken without pausing ingestion — the snapshot's pins guarantee every
/// referenced file exists at write time.
///
/// The manifest stays recoverable for as long as its partition files
/// live. Files are only ever deleted when a cascade merge retires them
/// *and* the last snapshot pinning them drops — so either recover (or
/// copy the device) before dropping the snapshot, or rely on the common
/// case that upper-level partitions persist across many time steps.
pub fn persist_snapshot<T: Item, D: BlockDevice>(
    snap: &crate::engine::EngineSnapshot<T, D>,
) -> io::Result<FileId> {
    let parts: Vec<(u64, &StoredPartition<T>)> = snap
        .leveled_partitions()
        .iter()
        .map(|(l, p)| (*l as u64, p))
        .collect();
    write_manifest(
        &**snap.device(),
        snap.steps(),
        snap.historical_len(),
        &parts,
    )
}

/// Shared serializer behind [`persist`] and [`persist_snapshot`].
fn write_manifest<T: Item, D: BlockDevice>(
    dev: &D,
    steps: u64,
    total_len: u64,
    parts: &[(u64, &StoredPartition<T>)],
) -> io::Result<FileId> {
    let mut out = Writer::new();
    out.buf.extend_from_slice(MAGIC);
    out.u64(VERSION);
    out.u64(T::ENCODED_LEN as u64);
    out.u64(steps);
    out.u64(total_len);

    out.u64(parts.len() as u64);
    for &(level, p) in parts {
        out.u64(level);
        out.u64(p.run.file());
        out.u64(p.run.len());
        out.u64(p.first_step);
        out.u64(p.last_step);
        out.item(p.run.min());
        out.item(p.run.max());
        out.u64(p.summary.entries().len() as u64);
        for e in p.summary.entries() {
            out.item(e.value);
            out.u64(e.rank);
            out.u64(e.block);
        }
    }
    let crc = crc64(&out.buf);
    out.u64(crc);

    // Write chunked into device blocks.
    let file = dev.create()?;
    for (i, chunk) in out.buf.chunks(dev.block_size()).enumerate() {
        dev.write_block(file, i as u64, chunk)?;
    }
    Ok(file)
}

/// Reopen a warehouse from a manifest written by [`persist`].
///
/// `config` must carry the same `ε₁`/`β₁` the warehouse was built with
/// (summaries are restored verbatim, so a mismatch only affects future
/// partitions). Fails with `InvalidData` on magic/version/CRC mismatch.
pub fn recover<T: Item, D: BlockDevice>(
    dev: Arc<D>,
    config: HsqConfig,
    manifest: FileId,
) -> io::Result<Warehouse<T, D>> {
    // Read the manifest file fully.
    let blocks = dev.num_blocks(manifest)?;
    let mut raw = Vec::with_capacity((blocks as usize) * dev.block_size());
    let mut buf = vec![0u8; dev.block_size()];
    for b in 0..blocks {
        let got = dev.read_block(manifest, b, &mut buf)?;
        raw.extend_from_slice(&buf[..got]);
    }
    if raw.len() < 4 + 8 || &raw[..4] != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let body_end = raw.len() - 8;
    let stored_crc = u64::from_le_bytes(raw[body_end..].try_into().unwrap());
    if crc64(&raw[..body_end]) != stored_crc {
        return Err(corrupt("checksum mismatch"));
    }

    let mut r = Reader {
        buf: &raw[..body_end],
        pos: 4,
    };
    if r.u64()? != VERSION {
        return Err(corrupt("unsupported version"));
    }
    if r.u64()? != T::ENCODED_LEN as u64 {
        return Err(corrupt("item width mismatch"));
    }
    let steps = r.u64()?;
    let total_len = r.u64()?;
    let num_parts = r.u64()?;

    let mut partitions: Vec<(usize, StoredPartition<T>)> = Vec::new();
    for _ in 0..num_parts {
        let level = r.u64()? as usize;
        let file = r.u64()?;
        let run_len = r.u64()?;
        let first_step = r.u64()?;
        let last_step = r.u64()?;
        let min: T = r.item()?;
        let max: T = r.item()?;
        let num_entries = r.u64()?;
        let mut entries = Vec::with_capacity(num_entries as usize);
        for _ in 0..num_entries {
            let value: T = r.item()?;
            let rank = r.u64()?;
            let block = r.u64()?;
            if rank == 0 || rank > run_len {
                return Err(corrupt("summary rank out of range"));
            }
            entries.push(SummaryEntry { value, rank, block });
        }
        // Sanity: the backing file must exist on the device.
        let file_blocks = dev.num_blocks(file)?;
        if file_blocks == 0 && run_len > 0 {
            return Err(corrupt("partition file missing or empty"));
        }
        partitions.push((
            level,
            StoredPartition {
                run: SortedRun::from_raw_parts(file, run_len, min, max),
                summary: PartitionSummary::from_raw_parts(entries, run_len),
                first_step,
                last_step,
            },
        ));
    }

    let w = Warehouse::from_recovered_parts(dev, config, partitions, steps, total_len);
    w.check_invariants()
        .map_err(|e| corrupt(&format!("recovered state invalid: {e}")))?;
    Ok(w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsq_storage::{FileDevice, MemDevice};

    fn build(kappa: usize) -> Warehouse<u64, MemDevice> {
        let mut cfg = HsqConfig::with_epsilon(0.1);
        cfg.kappa = kappa;
        let mut w = Warehouse::new(MemDevice::new(256), cfg);
        for s in 0..13u64 {
            w.add_batch((0..200).map(|i| s * 200 + i).collect())
                .unwrap();
        }
        w
    }

    #[test]
    fn roundtrip_on_mem_device() {
        let w = build(2);
        let manifest = persist(&w).unwrap();
        let cfg = HsqConfig::with_epsilon(0.1);
        let recovered: Warehouse<u64, MemDevice> =
            recover(Arc::clone(w.device()), cfg, manifest).unwrap();
        assert_eq!(recovered.steps(), w.steps());
        assert_eq!(recovered.total_len(), w.total_len());
        assert_eq!(recovered.num_partitions(), w.num_partitions());
        assert_eq!(recovered.available_windows(), w.available_windows());
        // Partition data identical.
        let a: Vec<_> = w
            .partitions_newest_first()
            .iter()
            .map(|p| p.run.read_all(&**w.device()).unwrap())
            .collect();
        let b: Vec<_> = recovered
            .partitions_newest_first()
            .iter()
            .map(|p| p.run.read_all(&**recovered.device()).unwrap())
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn recovery_continues_ingesting() {
        let w = build(3);
        let manifest = persist(&w).unwrap();
        let mut cfg = HsqConfig::with_epsilon(0.1);
        cfg.kappa = 3;
        let mut recovered: Warehouse<u64, MemDevice> =
            recover(Arc::clone(w.device()), cfg, manifest).unwrap();
        recovered.add_batch((10_000..10_500u64).collect()).unwrap();
        recovered.check_invariants().unwrap();
        assert_eq!(recovered.total_len(), w.total_len() + 500);
    }

    #[test]
    fn snapshot_backup_recovers_old_state() {
        // Persist from a snapshot, keep ingesting (merges retire pinned
        // runs — deletion deferred while the snapshot lives), then recover
        // the backup: it must reflect the snapshot-time state.
        let mut cfg = HsqConfig::with_epsilon(0.1);
        cfg.kappa = 2;
        let dev = MemDevice::new(256);
        let mut engine = crate::engine::HistStreamQuantiles::<u64, _>::new(Arc::clone(&dev), {
            let mut c = HsqConfig::with_epsilon(0.1);
            c.kappa = 2;
            c
        });
        for s in 0..5u64 {
            engine
                .ingest_step(&(s * 100..s * 100 + 100).collect::<Vec<_>>())
                .unwrap();
        }
        let snap = engine.snapshot();
        let manifest = persist_snapshot(&snap).unwrap();
        for s in 5..8u64 {
            engine
                .ingest_step(&(s * 100..s * 100 + 100).collect::<Vec<_>>())
                .unwrap();
        }
        // Recover while the snapshot still pins the old files.
        let recovered: Warehouse<u64, MemDevice> =
            recover(Arc::clone(&dev), cfg, manifest).unwrap();
        assert_eq!(recovered.total_len(), 500);
        assert_eq!(recovered.steps(), 5);
        drop(snap);
    }

    #[test]
    fn corrupted_manifest_rejected() {
        let w = build(2);
        let manifest = persist(&w).unwrap();
        // Flip a byte in the middle of the manifest.
        let dev = w.device();
        let mut buf = vec![0u8; dev.block_size()];
        let got = dev.read_block(manifest, 0, &mut buf).unwrap();
        buf[got / 2] ^= 0xFF;
        dev.write_block(manifest, 0, &buf[..got]).unwrap();
        let cfg = HsqConfig::with_epsilon(0.1);
        let err = recover::<u64, _>(Arc::clone(dev), cfg, manifest).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn wrong_item_width_rejected() {
        let w = build(2);
        let manifest = persist(&w).unwrap();
        let cfg = HsqConfig::with_epsilon(0.1);
        let err = recover::<u32, _>(Arc::clone(w.device()), cfg, manifest).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn full_restart_cycle_on_real_filesystem() {
        let dir = std::env::temp_dir().join(format!("hsq-manifest-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let manifest;
        let windows;
        {
            let dev = FileDevice::new(&dir, 256).unwrap();
            let mut cfg = HsqConfig::with_epsilon(0.1);
            cfg.kappa = 2;
            let mut w = Warehouse::<u64, _>::new(dev, cfg);
            for s in 0..13u64 {
                w.add_batch((0..100).map(|i| s * 100 + i).collect())
                    .unwrap();
            }
            manifest = persist(&w).unwrap();
            windows = w.available_windows();
            // Device handles dropped here: simulated process exit.
        }
        {
            // Fresh device over the same directory: files re-registered.
            let dev = FileDevice::new(&dir, 256).unwrap();
            let mut cfg = HsqConfig::with_epsilon(0.1);
            cfg.kappa = 2;
            let recovered: Warehouse<u64, _> = recover(dev, cfg.clone(), manifest).unwrap();
            assert_eq!(recovered.total_len(), 1300);
            assert_eq!(recovered.available_windows(), windows);
            // Queries over recovered data are exact (no stream).
            let parts = recovered.partitions_newest_first();
            let ss = crate::stream::StreamProcessor::<u64>::new(cfg.epsilon2, cfg.beta2).summary();
            let ctx = crate::query::QueryContext::new(
                &**recovered.device(),
                parts,
                &ss,
                cfg.query_epsilon(),
                cfg.cache_blocks,
            );
            let med = ctx.accurate_rank(650).unwrap().unwrap();
            assert_eq!(med.estimated_rank, 650);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
