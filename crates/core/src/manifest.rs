//! Warehouse persistence: serialize `HD`'s metadata and `HS`'s summaries
//! so a warehouse can be reopened after a restart.
//!
//! **Extension beyond the paper**, which describes an in-process system;
//! any data-stream warehouse deployment (TidalRace-style, §1) needs the
//! index to survive restarts. The manifest records, per partition: level,
//! backing file, length, extrema, time-step interval, and the full
//! summary entries — so recovery costs `O(manifest size)` sequential
//! block reads and **zero** partition scans.
//!
//! Two on-disk forms share one partition codec:
//!
//! **Snapshot manifest** (magic `HSQM`) — one self-contained state dump,
//! written by [`persist`] / [`persist_snapshot`]:
//!
//! ```text
//! magic "HSQM"  version  item_width  steps  total_len
//! quarantine: lost_items num_files file*
//! num_partitions
//! per partition:
//!   format  level  file_id  run_len  first_step  last_step  min  max
//!   num_entries  (value rank block)*
//! stream_flag (0|1); if 1 (version ≥ 3):
//!   kind  epsilon  n  [min max]  sketch payload (GK tuples | KLL levels;
//!   version ≥ 4 KLL adds: compaction tag, seed, rng cursor)
//!   num_staged  item*  num_segments  segment_end*
//! crc64 (of everything above)
//! ```
//!
//! **Manifest log** (magic `HSQL`) — an append-only record stream kept by
//! [`ManifestLog`] for long-running engines: one `Base` record (a full
//! state dump) followed by per-step `Delta` records (partitions added,
//! files retired — by cascade merges *or* retention expiry). Records are
//! block-aligned and individually CRC-framed, so a torn tail record (a
//! crash mid-append) is detected and ignored on replay. Because every
//! step appends a bounded delta while retention retires old partitions,
//! the log grows without bound unless compacted:
//! [`ManifestLog::compact`] rewrites a fresh `Base` of only the *live*
//! partitions into a **new** file and hands the old log back to the
//! caller for deletion — recovery then replays live partitions only.
//! The two-file handoff is crash-safe: until the caller durably records
//! the new log's id and deletes the old one, both files recover to
//! identical states.
//!
//! The log follows **write-ahead discipline** via the warehouse's pin
//! registry: every partition file the last durable record references is
//! pinned, so deletions a step defers (cascade merges, retention expiry)
//! only execute *after* the record superseding them is appended **and
//! synced** ([`hsq_storage::BlockDevice::sync`] — an fsync barrier on
//! [`hsq_storage::FileDevice`]). A crash at any point — process death or
//! power loss — therefore leaves a log whose referenced files all exist:
//! recovery never dangles. Orderly shutdown protocol: append (or
//! compact) at the final step boundary, then drop the log; dropping
//! releases the pins, deleting only files already superseded by the
//! last record.
//!
//! [`recover`] accepts either form (it dispatches on the magic), so
//! engine-level recovery is oblivious to which one produced the file.
//!
//! Version 3 adds an optional **stream section** after the partition
//! list: the live sketch (kind-tagged — GK tuples or KLL compactor
//! levels, per [`hsq_sketch::SketchKind`]) plus the staging buffer with
//! its sorted-segment boundaries. The engine-level
//! [`crate::engine::HistStreamQuantiles::persist`] writes it, so recovery
//! resumes *mid-step* with identical query answers — whichever sketch
//! backend wrote the state, under whichever backend recovers it.
//! Warehouse-level [`persist`] / [`persist_snapshot`] still write
//! warehouse-only manifests (stream flag 0), and version-1/2 files
//! (which predate the section) recover with an empty stream — the
//! paper's §1.1 model, where un-archived data is the volatile stream and
//! recovery is at time-step granularity.

use std::collections::{HashMap, HashSet};
use std::io;
use std::sync::Arc;

use hsq_sketch::{AnySketch, GkSketch, KllSketch, QuantileSketch, SketchCompaction, SketchKind};
use hsq_storage::{crc64, BlockDevice, FileId, Item, RunFormat, SortedRun};

use crate::config::HsqConfig;
use crate::stream::StreamProcessor;
use crate::summary::{PartitionSummary, SummaryEntry};
use crate::warehouse::{StoredPartition, Warehouse};

const MAGIC: &[u8; 4] = b"HSQM";
const LOG_MAGIC: &[u8; 4] = b"HSQL";
/// Current format version. Version 2 added the per-partition run-format
/// byte (checksummed V2 runs vs legacy V1), the quarantine state in the
/// snapshot header / `Base` payload, and the `Quarantine` log record.
/// Version 3 added the optional stream-state section (kind-tagged sketch
/// blob + staging buffer) after the partition list. Version 4 appends
/// the KLL compaction descriptor (mode tag, seed, RNG cursor) to the KLL
/// sketch blob, so a randomized-compaction stream resumes its coin-flip
/// sequence mid-step and replays byte-identically. Version-1 and
/// version-2 files still recover — with an empty stream; version-3 KLL
/// streams recover as deterministic (the only mode that version wrote).
const VERSION: u64 = 4;

/// Stream-sketch kind tags of the version-3 stream section.
const SKETCH_GK: u64 = 0;
const SKETCH_KLL: u64 = 1;

/// Record kinds of the [`ManifestLog`].
const REC_BASE: u64 = 0;
const REC_DELTA: u64 = 1;
/// Full quarantine state (lost item count + every quarantined file),
/// replayed by replacement. Appended whenever the state changed since
/// the last record; version-2 logs only.
const REC_QUARANTINE: u64 = 2;

/// Recovered quarantine state: `(lost_items, quarantined files)`.
type QuarantineParts = (u64, Vec<FileId>);

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer {
            buf: Vec::with_capacity(4096),
        }
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn item<T: Item>(&mut self, v: T) {
        let start = self.buf.len();
        self.buf.resize(start + T::ENCODED_LEN, 0);
        v.encode(&mut self.buf[start..]);
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u64(&mut self) -> io::Result<u64> {
        let end = self.pos + 8;
        let slice = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| corrupt("truncated manifest"))?;
        self.pos = end;
        Ok(u64::from_le_bytes(slice.try_into().unwrap()))
    }

    fn item<T: Item>(&mut self) -> io::Result<T> {
        let end = self.pos + T::ENCODED_LEN;
        let slice = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| corrupt("truncated manifest"))?;
        self.pos = end;
        Ok(T::decode(slice))
    }
}

fn corrupt(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("manifest: {msg}"))
}

/// Serialize the warehouse's metadata into a new file on its device;
/// returns the manifest's [`FileId`] (persist it out of band, e.g. in a
/// config file — it is the only thing recovery needs besides the device).
pub fn persist<T: Item, D: BlockDevice>(w: &Warehouse<T, D>) -> io::Result<FileId> {
    let mut parts: Vec<(u64, &StoredPartition<T>)> = Vec::new();
    for level in 0..w.num_levels() {
        for p in w.level(level) {
            parts.push((level as u64, p));
        }
    }
    write_manifest(
        &**w.device(),
        w.steps(),
        w.total_len(),
        w.lost_items(),
        &w.quarantined_files(),
        &parts,
        None,
    )
}

/// Serialize an [`crate::engine::EngineSnapshot`]'s pinned partition list
/// as a manifest on the snapshot's device: a *consistent online backup*
/// taken without pausing ingestion — the snapshot's pins guarantee every
/// referenced file exists at write time.
///
/// The manifest stays recoverable for as long as its partition files
/// live. Files are only ever deleted when a cascade merge retires them
/// *and* the last snapshot pinning them drops — so either recover (or
/// copy the device) before dropping the snapshot, or rely on the common
/// case that upper-level partitions persist across many time steps.
pub fn persist_snapshot<T: Item, D: BlockDevice>(
    snap: &crate::engine::EngineSnapshot<T, D>,
) -> io::Result<FileId> {
    let parts: Vec<(u64, &StoredPartition<T>)> = snap
        .leveled_partitions()
        .iter()
        .map(|(l, p)| (*l as u64, p))
        .collect();
    write_manifest(
        &**snap.device(),
        snap.steps(),
        snap.historical_len(),
        snap.lost_items(),
        snap.quarantined_files(),
        &parts,
        None,
    )
}

/// Encode one partition (run format + level + run metadata + full
/// summary). The leading format byte is a version-2 addition.
fn encode_partition<T: Item>(out: &mut Writer, level: u64, p: &StoredPartition<T>) {
    out.u64(p.run.format().as_byte() as u64);
    out.u64(level);
    out.u64(p.run.file());
    out.u64(p.run.len());
    out.u64(p.first_step);
    out.u64(p.last_step);
    out.item(p.run.min());
    out.item(p.run.max());
    out.u64(p.summary.entries().len() as u64);
    for e in p.summary.entries() {
        out.item(e.value);
        out.u64(e.rank);
        out.u64(e.block);
    }
}

/// Decode one partition written by [`encode_partition`] at the given
/// manifest `version` (version-1 manifests predate the format byte — all
/// their runs use the legacy unchecksummed layout). Backing-file
/// existence is *not* checked here — log replay may remove the partition
/// again before the final state is validated.
fn decode_partition<T: Item>(
    r: &mut Reader,
    version: u64,
) -> io::Result<(usize, StoredPartition<T>)> {
    let format = if version >= 2 {
        let b = r.u64()?;
        u8::try_from(b)
            .ok()
            .and_then(RunFormat::from_byte)
            .ok_or_else(|| corrupt("bad run format byte"))?
    } else {
        RunFormat::V1
    };
    let level = r.u64()? as usize;
    let file = r.u64()?;
    let run_len = r.u64()?;
    let first_step = r.u64()?;
    let last_step = r.u64()?;
    let min: T = r.item()?;
    let max: T = r.item()?;
    let num_entries = r.u64()?;
    // A garbled (but CRC-valid, e.g. crafted) count must not drive a huge
    // allocation: each entry occupies ENCODED_LEN + 16 bytes, so the
    // count can never exceed what the remaining buffer holds.
    let entry_bytes = T::ENCODED_LEN + 16;
    let remaining = r.buf.len().saturating_sub(r.pos);
    if (num_entries as usize).saturating_mul(entry_bytes) > remaining {
        return Err(corrupt("summary entry count overruns buffer"));
    }
    let mut entries: Vec<SummaryEntry<T>> = Vec::with_capacity(num_entries as usize);
    for _ in 0..num_entries {
        let value: T = r.item()?;
        let rank = r.u64()?;
        let block = r.u64()?;
        if rank == 0 || rank > run_len {
            return Err(corrupt("summary rank out of range"));
        }
        if let Some(prev) = entries.last() {
            if prev.rank >= rank || prev.value > value {
                return Err(corrupt("summary entries out of order"));
            }
        }
        entries.push(SummaryEntry { value, rank, block });
    }
    Ok((
        level,
        StoredPartition {
            run: SortedRun::from_raw_parts(file, run_len, min, max).with_format(format),
            summary: PartitionSummary::from_raw_parts(entries, run_len),
            first_step,
            last_step,
        },
    ))
}

/// Decode a quarantine block (`lost_items`, count, file ids) — shared by
/// the version-2 snapshot header, `Base` payload, and `Quarantine`
/// record.
fn decode_quarantine(r: &mut Reader) -> io::Result<QuarantineParts> {
    let lost = r.u64()?;
    let num = r.u64()?;
    let remaining = r.buf.len().saturating_sub(r.pos);
    if (num as usize).saturating_mul(8) > remaining {
        return Err(corrupt("quarantine file count overruns buffer"));
    }
    let mut files = Vec::with_capacity(num as usize);
    for _ in 0..num {
        files.push(r.u64()?);
    }
    Ok((lost, files))
}

/// Encode the quarantine block written by [`decode_quarantine`]'s reader.
fn encode_quarantine(out: &mut Writer, lost: u64, files: &[FileId]) {
    out.u64(lost);
    out.u64(files.len() as u64);
    for &f in files {
        out.u64(f);
    }
}

/// Borrowed live-stream state handed to [`persist_engine`]'s serializer.
struct StreamRefs<'a, T: Item> {
    proc: &'a StreamProcessor<T>,
    staging: &'a [T],
    segments: &'a [usize],
}

/// A stream state decoded from a version-3 manifest: the live sketch
/// (restored verbatim, like partition summaries) plus the staging buffer
/// the interrupted step had accumulated.
pub(crate) struct RecoveredStream<T: Copy + Ord> {
    pub(crate) proc: StreamProcessor<T>,
    pub(crate) staging: Vec<T>,
    pub(crate) segments: Vec<usize>,
}

/// Encode the version-3 stream section: the kind-tagged sketch blob plus
/// the staging buffer with its sorted-segment boundaries.
fn encode_stream_state<T: Item>(out: &mut Writer, s: &StreamRefs<'_, T>) {
    let sketch = s.proc.sketch();
    out.u64(match sketch.kind() {
        SketchKind::Gk => SKETCH_GK,
        SketchKind::Kll => SKETCH_KLL,
    });
    out.u64(sketch.epsilon().to_bits());
    out.u64(sketch.len());
    if let (Some(lo), Some(hi)) = (sketch.min(), sketch.max()) {
        out.item(lo);
        out.item(hi);
    }
    match sketch {
        AnySketch::Gk(gk) => {
            out.u64(gk.tuple_parts().count() as u64);
            for (v, g, delta) in gk.tuple_parts() {
                out.item(v);
                out.u64(g);
                out.u64(delta);
            }
        }
        AnySketch::Kll(kll) => {
            out.u64(kll.tracked_err());
            out.u64(kll.parity_mask());
            out.u64(kll.raw_levels().len() as u64);
            for level in kll.raw_levels() {
                out.u64(level.len() as u64);
                for &v in level {
                    out.item(v);
                }
            }
            // Version-4 compaction descriptor: mode tag, seed, RNG
            // cursor — what lets a randomized sketch resume its coin-flip
            // sequence exactly where the persisted state left off.
            let (tag, seed) = match kll.compaction() {
                SketchCompaction::Deterministic => (0u64, 0u64),
                SketchCompaction::Randomized { seed } => (1, seed),
            };
            out.u64(tag);
            out.u64(seed);
            out.u64(kll.rng_state());
        }
    }
    out.u64(s.staging.len() as u64);
    for &v in s.staging {
        out.item(v);
    }
    out.u64(s.segments.len() as u64);
    for &end in s.segments {
        out.u64(end as u64);
    }
}

/// Decode the stream section written by [`encode_stream_state`]. The
/// sketch is rebuilt through its backend's validating constructor, so a
/// CRC-valid but crafted blob cannot install an unsound summary; counts
/// are bounded by the remaining buffer before any allocation.
fn decode_stream_state<T: Item>(
    r: &mut Reader,
    config: &HsqConfig,
    version: u64,
) -> io::Result<RecoveredStream<T>> {
    let kind = match r.u64()? {
        SKETCH_GK => SketchKind::Gk,
        SKETCH_KLL => SketchKind::Kll,
        _ => return Err(corrupt("unknown stream sketch kind")),
    };
    let epsilon = f64::from_bits(r.u64()?);
    if !(epsilon > 0.0 && epsilon <= 1.0) {
        return Err(corrupt("stream sketch epsilon out of range"));
    }
    let n = r.u64()?;
    let (min, max) = if n > 0 {
        (Some(r.item()?), Some(r.item()?))
    } else {
        (None, None)
    };
    let sketch = match kind {
        SketchKind::Gk => {
            let num = r.u64()?;
            let tuple_bytes = T::ENCODED_LEN + 16;
            let remaining = r.buf.len().saturating_sub(r.pos);
            if (num as usize).saturating_mul(tuple_bytes) > remaining {
                return Err(corrupt("sketch tuple count overruns buffer"));
            }
            let mut parts = Vec::with_capacity(num as usize);
            for _ in 0..num {
                let v: T = r.item()?;
                let g = r.u64()?;
                let delta = r.u64()?;
                parts.push((v, g, delta));
            }
            AnySketch::Gk(
                GkSketch::from_tuple_parts(epsilon, n, min, max, parts)
                    .map_err(|e| corrupt(&format!("stream sketch invalid: {e}")))?,
            )
        }
        SketchKind::Kll => {
            let err = r.u64()?;
            let parity = r.u64()?;
            let num_levels = r.u64()?;
            if num_levels > 64 {
                return Err(corrupt("sketch level count out of range"));
            }
            let mut levels = Vec::with_capacity(num_levels as usize);
            for _ in 0..num_levels {
                let len = r.u64()?;
                let remaining = r.buf.len().saturating_sub(r.pos);
                if (len as usize).saturating_mul(T::ENCODED_LEN) > remaining {
                    return Err(corrupt("sketch level length overruns buffer"));
                }
                let mut level = Vec::with_capacity(len as usize);
                for _ in 0..len {
                    level.push(r.item::<T>()?);
                }
                levels.push(level);
            }
            let mut kll = KllSketch::from_raw_parts(epsilon, n, min, max, err, parity, levels)
                .map_err(|e| corrupt(&format!("stream sketch invalid: {e}")))?;
            if version >= 4 {
                let tag = r.u64()?;
                let seed = r.u64()?;
                let rng = r.u64()?;
                let mode = match tag {
                    0 => SketchCompaction::Deterministic,
                    1 => SketchCompaction::Randomized { seed },
                    _ => return Err(corrupt("unknown compaction mode tag")),
                };
                kll.restore_compaction(mode, rng);
            }
            // Version-3 KLL blobs predate the descriptor: deterministic
            // was the only mode that version could write.
            AnySketch::Kll(kll)
        }
    };
    let num_staged = r.u64()?;
    let remaining = r.buf.len().saturating_sub(r.pos);
    if (num_staged as usize).saturating_mul(T::ENCODED_LEN) > remaining {
        return Err(corrupt("staging length overruns buffer"));
    }
    let mut staging = Vec::with_capacity(num_staged as usize);
    for _ in 0..num_staged {
        staging.push(r.item::<T>()?);
    }
    // Every streamed element lands in both the sketch and staging, so
    // the two sizes agree in any state an engine actually persisted.
    if sketch.len() != staging.len() as u64 {
        return Err(corrupt("stream sketch size disagrees with staging"));
    }
    let num_segments = r.u64()?;
    let remaining = r.buf.len().saturating_sub(r.pos);
    if (num_segments as usize).saturating_mul(8) > remaining {
        return Err(corrupt("segment count overruns buffer"));
    }
    let mut segments = Vec::with_capacity(num_segments as usize);
    let mut prev = 0usize;
    for _ in 0..num_segments {
        let end = r.u64()? as usize;
        if end <= prev || end > staging.len() {
            return Err(corrupt("staging segments out of order"));
        }
        if staging[prev..end].windows(2).any(|w| w[0] > w[1]) {
            return Err(corrupt("staging segment not sorted"));
        }
        segments.push(end);
        prev = end;
    }
    let proc = StreamProcessor::from_recovered(
        sketch,
        config.sketch,
        config.sketch_compaction,
        config.epsilon2,
        config.beta2,
    );
    Ok(RecoveredStream {
        proc,
        staging,
        segments,
    })
}

/// Serialize the warehouse's metadata *plus* the engine's live stream
/// state (sketch + staging buffer): the full-fidelity form behind
/// [`crate::engine::HistStreamQuantiles::persist`]. Recovery restores the
/// stream mid-step, so queries answer identically before and after a
/// restart — under either sketch backend.
pub(crate) fn persist_engine<T: Item, D: BlockDevice>(
    w: &Warehouse<T, D>,
    proc: &StreamProcessor<T>,
    staging: &[T],
    segments: &[usize],
) -> io::Result<FileId> {
    let mut parts: Vec<(u64, &StoredPartition<T>)> = Vec::new();
    for level in 0..w.num_levels() {
        for p in w.level(level) {
            parts.push((level as u64, p));
        }
    }
    write_manifest(
        &**w.device(),
        w.steps(),
        w.total_len(),
        w.lost_items(),
        &w.quarantined_files(),
        &parts,
        Some(StreamRefs {
            proc,
            staging,
            segments,
        }),
    )
}

/// Check that every live partition's backing file exists, then rebuild
/// the warehouse and verify its structural invariants.
fn validate_and_build<T: Item, D: BlockDevice>(
    dev: Arc<D>,
    config: HsqConfig,
    partitions: Vec<(usize, StoredPartition<T>)>,
    steps: u64,
    total_len: u64,
    quarantine: QuarantineParts,
) -> io::Result<Warehouse<T, D>> {
    for (_, p) in &partitions {
        let file_blocks = dev.num_blocks(p.run.file())?;
        if file_blocks == 0 && !p.run.is_empty() {
            return Err(corrupt("partition file missing or empty"));
        }
    }
    let w = Warehouse::from_recovered_parts(dev, config, partitions, steps, total_len);
    // Install quarantine before checking invariants: a quarantined level
    // is legitimately allowed to exceed the merge threshold.
    let (lost, files) = quarantine;
    w.set_quarantine(lost, files);
    w.check_invariants()
        .map_err(|e| corrupt(&format!("recovered state invalid: {e}")))?;
    Ok(w)
}

/// Shared serializer behind [`persist`], [`persist_snapshot`] and
/// [`persist_engine`] (the only caller passing a stream section).
fn write_manifest<T: Item, D: BlockDevice>(
    dev: &D,
    steps: u64,
    total_len: u64,
    lost_items: u64,
    quarantined: &[FileId],
    parts: &[(u64, &StoredPartition<T>)],
    stream: Option<StreamRefs<'_, T>>,
) -> io::Result<FileId> {
    let mut out = Writer::new();
    out.buf.extend_from_slice(MAGIC);
    out.u64(VERSION);
    out.u64(T::ENCODED_LEN as u64);
    out.u64(steps);
    out.u64(total_len);
    encode_quarantine(&mut out, lost_items, quarantined);

    out.u64(parts.len() as u64);
    for &(level, p) in parts {
        encode_partition(&mut out, level, p);
    }
    match &stream {
        Some(s) => {
            out.u64(1);
            encode_stream_state(&mut out, s);
        }
        None => out.u64(0),
    }
    let crc = crc64(&out.buf);
    out.u64(crc);

    // Write chunked into device blocks.
    let file = dev.create()?;
    for (i, chunk) in out.buf.chunks(dev.block_size()).enumerate() {
        dev.write_block(file, i as u64, chunk)?;
    }
    Ok(file)
}

/// Reopen a warehouse from a [`persist`]ed snapshot manifest **or** a
/// [`ManifestLog`] file (dispatches on the magic).
///
/// `config` must carry the same `ε₁`/`β₁` the warehouse was built with
/// (summaries are restored verbatim, so a mismatch only affects future
/// partitions). Fails with `InvalidData` on magic/version/CRC mismatch.
pub fn recover<T: Item, D: BlockDevice>(
    dev: Arc<D>,
    config: HsqConfig,
    manifest: FileId,
) -> io::Result<Warehouse<T, D>> {
    recover_with_stream(dev, config, manifest).map(|(w, _)| w)
}

/// [`recover`], additionally returning the stream section when the
/// manifest carries one (version-3 engine manifests) — the full path
/// behind [`crate::engine::HistStreamQuantiles::recover`].
#[allow(clippy::type_complexity)]
pub(crate) fn recover_with_stream<T: Item, D: BlockDevice>(
    dev: Arc<D>,
    config: HsqConfig,
    manifest: FileId,
) -> io::Result<(Warehouse<T, D>, Option<RecoveredStream<T>>)> {
    // Read the manifest file fully.
    let blocks = dev.num_blocks(manifest)?;
    let mut raw = Vec::with_capacity((blocks as usize) * dev.block_size());
    let mut buf = vec![0u8; dev.block_size()];
    for b in 0..blocks {
        let got = dev.read_block(manifest, b, &mut buf)?;
        raw.extend_from_slice(&buf[..got]);
    }
    if raw.len() >= 4 && &raw[..4] == LOG_MAGIC {
        // Log records never carry a stream section: logs checkpoint at
        // step boundaries, where the stream is empty by definition.
        return replay_log(dev, config, &raw).map(|w| (w, None));
    }
    if raw.len() < 4 + 8 || &raw[..4] != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let body_end = raw.len() - 8;
    let stored_crc = u64::from_le_bytes(raw[body_end..].try_into().unwrap());
    if crc64(&raw[..body_end]) != stored_crc {
        return Err(corrupt("checksum mismatch"));
    }

    let mut r = Reader {
        buf: &raw[..body_end],
        pos: 4,
    };
    let version = r.u64()?;
    if version == 0 || version > VERSION {
        return Err(corrupt("unsupported version"));
    }
    if r.u64()? != T::ENCODED_LEN as u64 {
        return Err(corrupt("item width mismatch"));
    }
    let steps = r.u64()?;
    let total_len = r.u64()?;
    let quarantine = if version >= 2 {
        decode_quarantine(&mut r)?
    } else {
        (0, Vec::new())
    };
    let num_parts = r.u64()?;

    let mut partitions: Vec<(usize, StoredPartition<T>)> = Vec::new();
    for _ in 0..num_parts {
        partitions.push(decode_partition(&mut r, version)?);
    }
    let stream = if version >= 3 {
        match r.u64()? {
            0 => None,
            1 => Some(decode_stream_state(&mut r, &config, version)?),
            _ => return Err(corrupt("bad stream flag")),
        }
    } else {
        None
    };
    let w = validate_and_build(dev, config, partitions, steps, total_len, quarantine)?;
    Ok((w, stream))
}

/// Replay an `HSQL` log image: apply the `Base` record then every valid
/// `Delta`, stopping cleanly at a torn tail record.
fn replay_log<T: Item, D: BlockDevice>(
    dev: Arc<D>,
    config: HsqConfig,
    raw: &[u8],
) -> io::Result<Warehouse<T, D>> {
    let bs = dev.block_size();
    // Header block: magic, version, item width.
    let version = {
        let mut r = Reader { buf: raw, pos: 4 };
        let version = r.u64()?;
        if version == 0 || version > VERSION {
            return Err(corrupt("unsupported log version"));
        }
        if r.u64()? != T::ENCODED_LEN as u64 {
            return Err(corrupt("item width mismatch"));
        }
        version
    };

    let mut state: HashMap<FileId, (usize, StoredPartition<T>)> = HashMap::new();
    let mut steps = 0u64;
    let mut total_len = 0u64;
    let mut quarantine: QuarantineParts = (0, Vec::new());
    let mut applied = 0usize;

    let mut pos = bs; // records start at block 1
    while pos + 8 <= raw.len() {
        let body_len = u64::from_le_bytes(raw[pos..pos + 8].try_into().unwrap()) as usize;
        if body_len < 16 || pos + 8 + body_len > raw.len() {
            break; // torn or padding tail
        }
        let body = &raw[pos + 8..pos + 8 + body_len];
        let crc_at = body_len - 8;
        let stored_crc = u64::from_le_bytes(body[crc_at..].try_into().unwrap());
        if crc64(&body[..crc_at]) != stored_crc {
            break; // torn record: ignore it and everything after
        }
        let mut r = Reader {
            buf: &body[..crc_at],
            pos: 0,
        };
        let kind = r.u64()?;
        match kind {
            REC_BASE => {
                state.clear();
                steps = r.u64()?;
                total_len = r.u64()?;
                quarantine = if version >= 2 {
                    decode_quarantine(&mut r)?
                } else {
                    (0, Vec::new())
                };
                let num = r.u64()?;
                for _ in 0..num {
                    let (level, p) = decode_partition(&mut r, version)?;
                    state.insert(p.run.file(), (level, p));
                }
            }
            REC_DELTA => {
                steps = r.u64()?;
                total_len = r.u64()?;
                let removed = r.u64()?;
                for _ in 0..removed {
                    let gone = r.u64()?;
                    state.remove(&gone);
                    // A retired quarantined file (retention expiry) stops
                    // being quarantined — its mass left the warehouse.
                    quarantine.1.retain(|&f| f != gone);
                }
                let added = r.u64()?;
                for _ in 0..added {
                    let (level, p) = decode_partition(&mut r, version)?;
                    state.insert(p.run.file(), (level, p));
                }
            }
            REC_QUARANTINE => {
                // Full state, replayed by replacement.
                quarantine = decode_quarantine(&mut r)?;
            }
            _ => return Err(corrupt("unknown log record kind")),
        }
        applied += 1;
        // Records are block-aligned: advance to the next block boundary.
        pos += (8 + body_len).div_ceil(bs) * bs;
    }
    if applied == 0 {
        return Err(corrupt("log holds no valid records"));
    }
    let partitions: Vec<(usize, StoredPartition<T>)> = state.into_values().collect();
    validate_and_build(dev, config, partitions, steps, total_len, quarantine)
}

/// An append-only manifest for long-running engines: one file holding a
/// `Base` state record plus one `Delta` record per archived step, with
/// compaction to keep the log bounded and write-ahead pinning so the
/// last durable record's files always exist (see the module docs).
///
/// Call [`ManifestLog::append`] once per step boundary. Typical loop:
///
/// ```
/// use std::sync::Arc;
/// use hsq_core::{manifest::ManifestLog, HistStreamQuantiles, HsqConfig, RetentionPolicy};
/// use hsq_storage::{BlockDevice, MemDevice};
///
/// let cfg = HsqConfig::builder()
///     .epsilon(0.1)
///     .merge_threshold(3)
///     .retention(RetentionPolicy::unbounded().with_max_age_steps(8))
///     .build();
/// let dev = MemDevice::new(256);
/// let mut engine = HistStreamQuantiles::<u64, _>::new(Arc::clone(&dev), cfg.clone());
/// let mut log = ManifestLog::create(engine.warehouse()).unwrap();
/// for step in 0..20u64 {
///     engine.ingest_step(&(step * 100..step * 100 + 100).collect::<Vec<_>>()).unwrap();
///     log.append(engine.warehouse()).unwrap();
///     if log.should_compact() {
///         let old = log.compact(engine.warehouse()).unwrap();
///         // ...durably record log.file() out of band, then:
///         dev.delete(old).unwrap();
///     }
/// }
/// let recovered = HistStreamQuantiles::<u64, _>::recover(dev, cfg, log.file()).unwrap();
/// assert_eq!(recovered.historical_len(), engine.historical_len());
/// ```
pub struct ManifestLog<T: Item, D: BlockDevice> {
    dev: Arc<D>,
    file: FileId,
    next_block: u64,
    /// The warehouse's overlapped-I/O scheduler, when it has one: fsync
    /// barriers become submitted [`hsq_storage::IoOp::Sync`]s plus one
    /// completion barrier (independent files fsync concurrently, the
    /// caller blocks once) instead of one blocking `sync` per file.
    sched: Option<Arc<hsq_storage::IoScheduler>>,
    /// Calls that blocked this log on durability: per-file `sync`s on
    /// the serial path, completion barriers on the overlapped path. The
    /// overlapped count per step is bounded by a constant; the serial
    /// count grows with the number of partitions a step adds.
    blocking_syncs: u64,
    /// File ids recorded live as of the last record, for delta diffing.
    known: HashSet<FileId>,
    /// Write-ahead pin over `known`: every file the last durable record
    /// references stays on the device (deletion deferred) until the
    /// record superseding it is written, so recovery from the log never
    /// dangles — even if the process dies between a step boundary (which
    /// retires files via merges or retention) and the next `append`.
    /// Swapped after each record: the old guard's drop executes the
    /// deletions the step deferred.
    guard: Option<crate::warehouse::PinGuard<D>>,
    /// Delta records appended since the last `Base`.
    delta_records: u64,
    /// Quarantine state as of the last record (`lost`, sorted files); a
    /// change appends a `Quarantine` record alongside the next delta.
    last_quarantine: QuarantineParts,
    _t: std::marker::PhantomData<T>,
}

impl<T: Item, D: BlockDevice> ManifestLog<T, D> {
    /// Start a new log on the warehouse's device, writing the header and
    /// a `Base` record of the warehouse's current state.
    pub fn create(w: &Warehouse<T, D>) -> io::Result<Self> {
        let dev = Arc::clone(w.device());
        let file = dev.create()?;
        let mut log = ManifestLog {
            dev,
            file,
            next_block: 0,
            sched: w.scheduler().cloned(),
            blocking_syncs: 0,
            known: HashSet::new(),
            guard: None,
            delta_records: 0,
            last_quarantine: (0, Vec::new()),
            _t: std::marker::PhantomData,
        };
        log.write_header()?;
        log.write_base(w)?;
        Ok(log)
    }

    /// Durability calls that blocked this log so far (see the field docs;
    /// the overlapped-vs-serial comparison the bench's `io` section
    /// gates on).
    pub fn blocking_syncs(&self) -> u64 {
        self.blocking_syncs
    }

    /// Simulate process death for crash testing: leak the write-ahead
    /// pins — exactly what a real crash does, since `Drop` never runs —
    /// while still releasing ordinary resources (the I/O scheduler
    /// handle, buffers). Returns the log's file id, the recovery handle.
    /// Prefer this over `std::mem::forget(log)`, which would also leak
    /// the scheduler's worker threads.
    pub fn simulate_crash(mut self) -> FileId {
        if let Some(guard) = self.guard.take() {
            std::mem::forget(guard);
        }
        self.file
    }

    /// Make `files` durable before a record referencing them lands.
    /// Serial: one blocking `sync` per file. Overlapped: submit the
    /// syncs — each queues after its file's in-flight writes — and block
    /// once at the completion barrier while the fsyncs run concurrently.
    fn sync_files(&mut self, files: &[FileId]) -> io::Result<()> {
        match &self.sched {
            Some(sched) => {
                for &f in files {
                    sched.submit(hsq_storage::IoOp::Sync { file: f });
                }
                // Barrier even with no added file: the step's submitted
                // run writes must settle before the record lands.
                sched.barrier()?;
                self.blocking_syncs += 1;
            }
            None => {
                for &f in files {
                    self.dev.sync(f)?;
                    self.blocking_syncs += 1;
                }
            }
        }
        Ok(())
    }

    /// The durability barrier on the log file itself, after a record is
    /// written.
    fn sync_log(&mut self) -> io::Result<()> {
        self.dev.sync(self.file)?;
        self.blocking_syncs += 1;
        Ok(())
    }

    /// The log's file id — what [`recover`] (and hence
    /// [`crate::engine::HistStreamQuantiles::recover`]) takes.
    pub fn file(&self) -> FileId {
        self.file
    }

    /// Delta records appended since the last `Base` record.
    pub fn delta_records(&self) -> u64 {
        self.delta_records
    }

    /// Bytes currently occupied by the log file.
    pub fn log_bytes(&self) -> io::Result<u64> {
        self.dev.file_len(self.file)
    }

    /// Compaction heuristic: the replay cost (and file size) grows with
    /// every delta, so compact once a batch of them has accumulated.
    pub fn should_compact(&self) -> bool {
        self.delta_records >= 32
    }

    fn write_header(&mut self) -> io::Result<()> {
        let mut out = Writer::new();
        out.buf.extend_from_slice(LOG_MAGIC);
        out.u64(VERSION);
        out.u64(T::ENCODED_LEN as u64);
        self.write_padded_blocks(&out.buf)
    }

    /// Frame `payload` as one record (`len | kind+payload | crc`) and
    /// append it on a fresh block boundary.
    fn write_record(&mut self, kind: u64, payload: &[u8]) -> io::Result<()> {
        let mut body = Writer::new();
        body.u64(kind);
        body.buf.extend_from_slice(payload);
        let crc = crc64(&body.buf);
        body.u64(crc);
        let mut framed = Writer::new();
        framed.u64(body.buf.len() as u64);
        framed.buf.extend_from_slice(&body.buf);
        self.write_padded_blocks(&framed.buf)
    }

    /// Write `buf` as whole zero-padded blocks (the device only allows a
    /// short block at the very end of a file, and the log keeps
    /// appending).
    fn write_padded_blocks(&mut self, buf: &[u8]) -> io::Result<()> {
        let bs = self.dev.block_size();
        let mut block = vec![0u8; bs];
        for chunk in buf.chunks(bs) {
            block[..chunk.len()].copy_from_slice(chunk);
            block[chunk.len()..].fill(0);
            self.dev.write_block(self.file, self.next_block, &block)?;
            self.next_block += 1;
        }
        Ok(())
    }

    fn encode_state(w: &Warehouse<T, D>) -> (Vec<u8>, HashSet<FileId>) {
        let mut out = Writer::new();
        out.u64(w.steps());
        out.u64(w.total_len());
        encode_quarantine(&mut out, w.lost_items(), &w.quarantined_files());
        let mut parts: Vec<(u64, &StoredPartition<T>)> = Vec::new();
        for level in 0..w.num_levels() {
            for p in w.level(level) {
                parts.push((level as u64, p));
            }
        }
        out.u64(parts.len() as u64);
        let mut files = HashSet::with_capacity(parts.len());
        for &(level, p) in &parts {
            encode_partition(&mut out, level, p);
            files.insert(p.run.file());
        }
        (out.buf, files)
    }

    fn write_base(&mut self, w: &Warehouse<T, D>) -> io::Result<()> {
        let (payload, files) = Self::encode_state(w);
        // Every file the base references must be settled (its in-flight
        // writes completed) before the record lands; with no scheduler
        // this is a no-op — serial writes already completed.
        if self.sched.is_some() {
            let files: Vec<FileId> = files.iter().copied().collect();
            self.sync_files(&files)?;
        }
        self.write_record(REC_BASE, &payload)?;
        // Durability barrier before acting on the record: pins are only
        // released (deleting superseded files) once the record that
        // supersedes them has actually reached storage.
        self.sync_log()?;
        // Pin the newly referenced set *before* releasing the previous
        // pins, so no referenced file is ever deletable in between.
        let new_guard = w.pin_files(files.iter().copied().collect());
        self.guard = Some(new_guard);
        self.known = files;
        self.delta_records = 0;
        self.last_quarantine = (w.lost_items(), w.quarantined_files());
        Ok(())
    }

    /// Append a `Delta` record capturing every partition added or retired
    /// (by merges or retention) since the last record. Call once per
    /// archived step, after
    /// [`crate::engine::HistStreamQuantiles::end_time_step`]. A no-change
    /// step still appends (it advances the recovered step clock).
    pub fn append(&mut self, w: &Warehouse<T, D>) -> io::Result<()> {
        let mut current: HashMap<FileId, (u64, &StoredPartition<T>)> = HashMap::new();
        for level in 0..w.num_levels() {
            for p in w.level(level) {
                current.insert(p.run.file(), (level as u64, p));
            }
        }
        let removed: Vec<FileId> = self
            .known
            .iter()
            .copied()
            .filter(|f| !current.contains_key(f))
            .collect();
        let added: Vec<(u64, &StoredPartition<T>)> = current
            .iter()
            .filter(|(f, _)| !self.known.contains(*f))
            .map(|(_, &(l, p))| (l, p))
            .collect();

        // A record must never reference a partition whose data could be
        // lost with it: the added runs reach durable storage before the
        // record lands. On the overlapped path their writes + fsyncs run
        // concurrently behind one completion barrier.
        let added_files: Vec<FileId> = added.iter().map(|&(_, p)| p.run.file()).collect();
        self.sync_files(&added_files)?;

        let mut out = Writer::new();
        out.u64(w.steps());
        out.u64(w.total_len());
        out.u64(removed.len() as u64);
        for f in &removed {
            out.u64(*f);
        }
        out.u64(added.len() as u64);
        for &(level, p) in &added {
            encode_partition(&mut out, level, p);
        }
        self.write_record(REC_DELTA, &out.buf)?;
        // Quarantine changes (scrub repairs, new corruption finds) ride
        // as a full-state record whenever the state moved since the last
        // record — replayed by replacement, so one record suffices.
        let quarantine = (w.lost_items(), w.quarantined_files());
        if quarantine != self.last_quarantine {
            let mut q = Writer::new();
            encode_quarantine(&mut q, quarantine.0, &quarantine.1);
            self.write_record(REC_QUARANTINE, &q.buf)?;
            self.last_quarantine = quarantine;
        }
        // Durability barrier, then swap pins: the delta is on storage, so
        // re-pin the now-referenced set and drop the old pins — which
        // executes the deletions this step's merges and retention
        // deferred on the log's behalf.
        self.sync_log()?;
        let new_guard = w.pin_files(current.keys().copied().collect());
        self.guard = Some(new_guard);
        self.known = current.keys().copied().collect();
        self.delta_records += 1;
        Ok(())
    }

    /// Compact: write the warehouse's current state as a fresh `Base`
    /// into a **new** log file and switch this handle to it. Returns the
    /// *old* log's file id, which the caller deletes once the new id is
    /// durably recorded — until then both files recover to the same
    /// state, so a crash anywhere in the handoff loses nothing.
    pub fn compact(&mut self, w: &Warehouse<T, D>) -> io::Result<FileId> {
        let old = self.file;
        self.file = self.dev.create()?;
        self.next_block = 0;
        self.write_header()?;
        self.write_base(w)?;
        Ok(old)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsq_storage::{FileDevice, MemDevice};

    fn build(kappa: usize) -> Warehouse<u64, MemDevice> {
        let mut cfg = HsqConfig::with_epsilon(0.1);
        cfg.kappa = kappa;
        let mut w = Warehouse::new(MemDevice::new(256), cfg);
        for s in 0..13u64 {
            w.add_batch((0..200).map(|i| s * 200 + i).collect())
                .unwrap();
        }
        w
    }

    #[test]
    fn roundtrip_on_mem_device() {
        let w = build(2);
        let manifest = persist(&w).unwrap();
        let cfg = HsqConfig::with_epsilon(0.1);
        let recovered: Warehouse<u64, MemDevice> =
            recover(Arc::clone(w.device()), cfg, manifest).unwrap();
        assert_eq!(recovered.steps(), w.steps());
        assert_eq!(recovered.total_len(), w.total_len());
        assert_eq!(recovered.num_partitions(), w.num_partitions());
        assert_eq!(recovered.available_windows(), w.available_windows());
        // Partition data identical.
        let a: Vec<_> = w
            .partitions_newest_first()
            .iter()
            .map(|p| p.run.read_all(&**w.device()).unwrap())
            .collect();
        let b: Vec<_> = recovered
            .partitions_newest_first()
            .iter()
            .map(|p| p.run.read_all(&**recovered.device()).unwrap())
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn recovery_continues_ingesting() {
        let w = build(3);
        let manifest = persist(&w).unwrap();
        let mut cfg = HsqConfig::with_epsilon(0.1);
        cfg.kappa = 3;
        let mut recovered: Warehouse<u64, MemDevice> =
            recover(Arc::clone(w.device()), cfg, manifest).unwrap();
        recovered.add_batch((10_000..10_500u64).collect()).unwrap();
        recovered.check_invariants().unwrap();
        assert_eq!(recovered.total_len(), w.total_len() + 500);
    }

    #[test]
    fn snapshot_backup_recovers_old_state() {
        // Persist from a snapshot, keep ingesting (merges retire pinned
        // runs — deletion deferred while the snapshot lives), then recover
        // the backup: it must reflect the snapshot-time state.
        let mut cfg = HsqConfig::with_epsilon(0.1);
        cfg.kappa = 2;
        let dev = MemDevice::new(256);
        let mut engine = crate::engine::HistStreamQuantiles::<u64, _>::new(Arc::clone(&dev), {
            let mut c = HsqConfig::with_epsilon(0.1);
            c.kappa = 2;
            c
        });
        for s in 0..5u64 {
            engine
                .ingest_step(&(s * 100..s * 100 + 100).collect::<Vec<_>>())
                .unwrap();
        }
        let snap = engine.snapshot();
        let manifest = persist_snapshot(&snap).unwrap();
        for s in 5..8u64 {
            engine
                .ingest_step(&(s * 100..s * 100 + 100).collect::<Vec<_>>())
                .unwrap();
        }
        // Recover while the snapshot still pins the old files.
        let recovered: Warehouse<u64, MemDevice> =
            recover(Arc::clone(&dev), cfg, manifest).unwrap();
        assert_eq!(recovered.total_len(), 500);
        assert_eq!(recovered.steps(), 5);
        drop(snap);
    }

    #[test]
    fn corrupted_manifest_rejected() {
        let w = build(2);
        let manifest = persist(&w).unwrap();
        // Flip a byte in the middle of the manifest.
        let dev = w.device();
        let mut buf = vec![0u8; dev.block_size()];
        let got = dev.read_block(manifest, 0, &mut buf).unwrap();
        buf[got / 2] ^= 0xFF;
        dev.write_block(manifest, 0, &buf[..got]).unwrap();
        let cfg = HsqConfig::with_epsilon(0.1);
        let err = recover::<u64, _>(Arc::clone(dev), cfg, manifest).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn wrong_item_width_rejected() {
        let w = build(2);
        let manifest = persist(&w).unwrap();
        let cfg = HsqConfig::with_epsilon(0.1);
        let err = recover::<u32, _>(Arc::clone(w.device()), cfg, manifest).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    /// Quantiles of a history-only warehouse (m = 0: exact), for
    /// comparing recovered states by answers rather than layout.
    fn exact_quantiles(w: &Warehouse<u64, MemDevice>) -> Vec<u64> {
        let cfg = HsqConfig::with_epsilon(0.1);
        let ss = crate::stream::StreamProcessor::<u64>::new(cfg.epsilon2, cfg.beta2).summary();
        let ctx = crate::query::QueryContext::new(
            &**w.device(),
            w.partitions_newest_first(),
            &ss,
            cfg.query_epsilon(),
            cfg.cache_blocks,
        );
        [0.01, 0.25, 0.5, 0.75, 0.99]
            .iter()
            .map(|&phi| {
                let r = ((phi * w.total_len() as f64).ceil() as u64).max(1);
                ctx.accurate_rank(r).unwrap().unwrap().value
            })
            .collect()
    }

    fn log_config(kappa: usize, max_age: u64) -> HsqConfig {
        let mut cfg = HsqConfig::with_epsilon(0.1);
        cfg.kappa = kappa;
        cfg.retention = crate::retention::RetentionPolicy::unbounded().with_max_age_steps(max_age);
        cfg
    }

    #[test]
    fn log_replay_matches_live_state() {
        // Deltas under cascade merges AND retention expiry: replay must
        // land on exactly the live partition set.
        let cfg = log_config(2, 6);
        let mut w = Warehouse::<u64, _>::new(MemDevice::new(256), cfg.clone());
        let mut log = ManifestLog::create(&w).unwrap();
        for s in 0..15u64 {
            w.add_batch((0..100).map(|i| s * 100 + i).collect())
                .unwrap();
            log.append(&w).unwrap();
        }
        let recovered: Warehouse<u64, MemDevice> =
            recover(Arc::clone(w.device()), cfg, log.file()).unwrap();
        assert_eq!(recovered.steps(), w.steps());
        assert_eq!(recovered.total_len(), w.total_len());
        assert_eq!(recovered.num_partitions(), w.num_partitions());
        assert_eq!(recovered.available_windows(), w.available_windows());
        assert_eq!(exact_quantiles(&recovered), exact_quantiles(&w));
    }

    #[test]
    fn log_compaction_shrinks_and_preserves_state() {
        let cfg = log_config(2, 4);
        let mut w = Warehouse::<u64, _>::new(MemDevice::new(256), cfg.clone());
        let mut log = ManifestLog::create(&w).unwrap();
        for s in 0..40u64 {
            w.add_batch((0..50).map(|i| s * 50 + i).collect()).unwrap();
            log.append(&w).unwrap();
        }
        let before = log.log_bytes().unwrap();
        assert_eq!(log.delta_records(), 40);
        assert!(log.should_compact());
        let old = log.compact(&w).unwrap();
        w.device().delete(old).unwrap();
        assert_eq!(log.delta_records(), 0);
        let after = log.log_bytes().unwrap();
        assert!(
            after < before / 2,
            "compaction must shrink the log: {before} -> {after}"
        );
        let recovered: Warehouse<u64, MemDevice> =
            recover(Arc::clone(w.device()), cfg, log.file()).unwrap();
        recovered.check_invariants().unwrap();
        assert_eq!(recovered.total_len(), w.total_len());
        assert_eq!(exact_quantiles(&recovered), exact_quantiles(&w));
    }

    #[test]
    fn crash_between_compaction_write_and_old_log_removal() {
        // The satellite crash test: compaction writes the new base file,
        // then the process dies BEFORE the old log is removed. Both files
        // exist; recovery from either must yield a valid warehouse with
        // identical query answers (the uncompacted log is the control).
        let cfg = log_config(2, 5);
        let mut w = Warehouse::<u64, _>::new(MemDevice::new(256), cfg.clone());
        let mut log = ManifestLog::create(&w).unwrap();
        for s in 0..23u64 {
            w.add_batch((0..80).map(|i| (i * 131 + s * 17) % 10_000).collect())
                .unwrap();
            log.append(&w).unwrap();
        }
        let old = log.compact(&w).unwrap();
        // -- simulated crash: old log NOT removed, new id maybe not yet
        // recorded. Recover from both files.
        let from_old: Warehouse<u64, MemDevice> =
            recover(Arc::clone(w.device()), cfg.clone(), old).unwrap();
        let from_new: Warehouse<u64, MemDevice> =
            recover(Arc::clone(w.device()), cfg.clone(), log.file()).unwrap();
        from_old.check_invariants().unwrap();
        from_new.check_invariants().unwrap();
        assert_eq!(from_old.steps(), from_new.steps());
        assert_eq!(from_old.total_len(), from_new.total_len());
        assert_eq!(from_old.available_windows(), from_new.available_windows());
        assert_eq!(exact_quantiles(&from_old), exact_quantiles(&from_new));
        // After the handoff completes (old removed), the new log still
        // recovers; the old id no longer resolves.
        w.device().delete(old).unwrap();
        let again: Warehouse<u64, MemDevice> =
            recover(Arc::clone(w.device()), cfg.clone(), log.file()).unwrap();
        assert_eq!(again.total_len(), from_new.total_len());
        assert!(recover::<u64, _>(Arc::clone(w.device()), cfg, old).is_err());
    }

    #[test]
    fn crash_between_step_and_append_recovers_from_stale_log() {
        // Retention retires (and would delete) files during
        // end_time_step; the log's write-ahead pins must keep every file
        // its last record references until the NEXT append is durable.
        // Crash in that window -> recovery from the stale log must work.
        let cfg = log_config(2, 2); // aggressive TTL + merges
        let mut w = Warehouse::<u64, _>::new(MemDevice::new(256), cfg.clone());
        let mut log = ManifestLog::create(&w).unwrap();
        for s in 0..6u64 {
            w.add_batch((0..60).map(|i| s * 60 + i).collect()).unwrap();
            log.append(&w).unwrap();
        }
        let logged_len = w.total_len();
        // Three more steps WITHOUT appending: retention retires the very
        // partitions the last record references.
        for s in 6..9u64 {
            w.add_batch((0..60).map(|i| s * 60 + i).collect()).unwrap();
        }
        // Simulated process crash: pins never release.
        let file = log.simulate_crash();
        let recovered: Warehouse<u64, MemDevice> =
            recover(Arc::clone(w.device()), cfg, file).unwrap();
        recovered.check_invariants().unwrap();
        assert_eq!(
            recovered.total_len(),
            logged_len,
            "stale-log recovery must land on the last appended state"
        );
    }

    #[test]
    fn append_releases_superseded_files() {
        // Orderly protocol: once a delta records a file's removal, the
        // deferred deletion runs — the log must not leak storage.
        let cfg = log_config(2, 2);
        let dev = MemDevice::new(256);
        let mut w = Warehouse::<u64, _>::new(Arc::clone(&dev), cfg);
        let mut log = ManifestLog::create(&w).unwrap();
        for s in 0..20u64 {
            w.add_batch((0..60).map(|i| s * 60 + i).collect()).unwrap();
            log.append(&w).unwrap();
        }
        // Device holds: live partitions + the log file only.
        let live = w.partition_bytes().unwrap();
        let log_bytes = log.log_bytes().unwrap();
        assert_eq!(
            dev.resident_bytes(),
            live + log_bytes,
            "append must delete files superseded by the last record"
        );
    }

    #[test]
    fn overlapped_log_syncs_are_completion_barriers() {
        // Append every third step: each delta then references several new
        // runs. Serially that costs one blocking sync per added file plus
        // the log sync; overlapped it is one completion barrier (the
        // fsyncs run concurrently on the pool) plus the log sync — a
        // constant per record, however many partitions a delta adds.
        let drive = |io_depth: usize| {
            let mut cfg = log_config(3, 64);
            cfg.io_depth = io_depth;
            let mut w = Warehouse::<u64, _>::new(MemDevice::new(256), cfg.clone());
            let mut log = ManifestLog::create(&w).unwrap();
            let mut records = 1u64; // the base
            for s in 0..12u64 {
                w.add_batch((0..64).map(|i| s * 64 + i).collect()).unwrap();
                if (s + 1) % 3 == 0 {
                    log.append(&w).unwrap();
                    records += 1;
                }
            }
            let recovered: Warehouse<u64, MemDevice> =
                recover(Arc::clone(w.device()), cfg, log.file()).unwrap();
            (log.blocking_syncs(), records, exact_quantiles(&recovered))
        };
        let (serial_syncs, records, serial_answers) = drive(0);
        let (overlapped_syncs, _, overlapped_answers) = drive(4);
        assert_eq!(serial_answers, overlapped_answers, "states must agree");
        // Overlapped: exactly (barrier + log sync) per record.
        assert_eq!(overlapped_syncs, 2 * records);
        // Serial: every 3-partition delta pays 3 + 1 blocking syncs.
        assert!(
            serial_syncs > overlapped_syncs,
            "serial {serial_syncs} vs overlapped {overlapped_syncs}"
        );
    }

    #[test]
    fn overlapped_log_crash_between_step_and_append() {
        // The mem::forget crash regression (PR 3) on the overlapped path:
        // write-ahead pins must hold across submitted writes and barrier
        // syncs exactly as they do serially.
        let mut cfg = log_config(2, 2);
        cfg.io_depth = 2;
        let mut w = Warehouse::<u64, _>::new(MemDevice::new(256), cfg.clone());
        let mut log = ManifestLog::create(&w).unwrap();
        for s in 0..6u64 {
            w.add_batch((0..60).map(|i| s * 60 + i).collect()).unwrap();
            log.append(&w).unwrap();
        }
        let logged_len = w.total_len();
        for s in 6..9u64 {
            w.add_batch((0..60).map(|i| s * 60 + i).collect()).unwrap();
        }
        let file = log.simulate_crash();
        w.io_barrier().unwrap();
        let recovered: Warehouse<u64, MemDevice> =
            recover(Arc::clone(w.device()), cfg, file).unwrap();
        recovered.check_invariants().unwrap();
        assert_eq!(recovered.total_len(), logged_len);
    }

    #[test]
    fn torn_tail_record_is_ignored() {
        // A crash mid-append leaves a trailing record with a bad CRC; the
        // replay must stop there and recover the pre-append state.
        let cfg = log_config(3, 10);
        let mut w = Warehouse::<u64, _>::new(MemDevice::new(256), cfg.clone());
        let mut log = ManifestLog::create(&w).unwrap();
        for s in 0..5u64 {
            w.add_batch((0..60).map(|i| s * 60 + i).collect()).unwrap();
            log.append(&w).unwrap();
        }
        let steps_before = w.steps();
        let len_before = w.total_len();
        // Append one more step's record, then corrupt its bytes.
        let tail_start = w.device().num_blocks(log.file()).unwrap();
        w.add_batch((300..360u64).collect()).unwrap();
        log.append(&w).unwrap();
        let dev = w.device();
        let bs = dev.block_size();
        let mut buf = vec![0u8; bs];
        dev.read_block(log.file(), tail_start, &mut buf).unwrap();
        for b in buf[16..].iter_mut() {
            *b ^= 0xFF;
        }
        dev.write_block(log.file(), tail_start, &buf).unwrap();
        let recovered: Warehouse<u64, MemDevice> =
            recover(Arc::clone(dev), cfg, log.file()).unwrap();
        assert_eq!(recovered.steps(), steps_before);
        assert_eq!(recovered.total_len(), len_before);
    }

    #[test]
    fn engine_recovers_from_log_file() {
        // Engine::recover dispatches on the magic: a log file works in
        // place of a snapshot manifest.
        let cfg = log_config(2, 8);
        let dev = MemDevice::new(256);
        let mut engine =
            crate::engine::HistStreamQuantiles::<u64, _>::new(Arc::clone(&dev), cfg.clone());
        let mut log = ManifestLog::create(engine.warehouse()).unwrap();
        for s in 0..12u64 {
            engine
                .ingest_step(&(s * 100..s * 100 + 100).collect::<Vec<_>>())
                .unwrap();
            log.append(engine.warehouse()).unwrap();
        }
        let recovered =
            crate::engine::HistStreamQuantiles::<u64, _>::recover(dev, cfg, log.file()).unwrap();
        assert_eq!(recovered.historical_len(), engine.historical_len());
        assert_eq!(
            recovered.quantile(0.5).unwrap(),
            engine.quantile(0.5).unwrap()
        );
    }

    #[test]
    fn full_restart_cycle_on_real_filesystem() {
        let dir = std::env::temp_dir().join(format!("hsq-manifest-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let manifest;
        let windows;
        {
            let dev = FileDevice::new(&dir, 256).unwrap();
            let mut cfg = HsqConfig::with_epsilon(0.1);
            cfg.kappa = 2;
            let mut w = Warehouse::<u64, _>::new(dev, cfg);
            for s in 0..13u64 {
                w.add_batch((0..100).map(|i| s * 100 + i).collect())
                    .unwrap();
            }
            manifest = persist(&w).unwrap();
            windows = w.available_windows();
            // Device handles dropped here: simulated process exit.
        }
        {
            // Fresh device over the same directory: files re-registered.
            let dev = FileDevice::new(&dir, 256).unwrap();
            let mut cfg = HsqConfig::with_epsilon(0.1);
            cfg.kappa = 2;
            let recovered: Warehouse<u64, _> = recover(dev, cfg.clone(), manifest).unwrap();
            assert_eq!(recovered.total_len(), 1300);
            assert_eq!(recovered.available_windows(), windows);
            // Queries over recovered data are exact (no stream).
            let parts = recovered.partitions_newest_first();
            let ss = crate::stream::StreamProcessor::<u64>::new(cfg.epsilon2, cfg.beta2).summary();
            let ctx = crate::query::QueryContext::new(
                &**recovered.device(),
                parts,
                &ss,
                cfg.query_epsilon(),
                cfg.cache_blocks,
            );
            let med = ctx.accurate_rank(650).unwrap().unwrap();
            assert_eq!(med.estimated_rank, 650);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Read a manifest/log file's full byte image.
    fn read_image(dev: &MemDevice, file: FileId) -> Vec<u8> {
        let bs = dev.block_size();
        let mut raw = Vec::new();
        let mut buf = vec![0u8; bs];
        for b in 0..dev.num_blocks(file).unwrap() {
            let got = dev.read_block(file, b, &mut buf).unwrap();
            raw.extend_from_slice(&buf[..got]);
        }
        raw
    }

    /// Write a byte image as a fresh file on the device.
    fn write_image(dev: &MemDevice, raw: &[u8]) -> FileId {
        let file = dev.create().unwrap();
        for (i, chunk) in raw.chunks(dev.block_size()).enumerate() {
            dev.write_block(file, i as u64, chunk).unwrap();
        }
        file
    }

    #[test]
    fn quarantine_state_survives_persist_recover() {
        let w = build(2);
        let file = w.partitions_newest_first()[0].run.file();
        w.set_quarantine(17, vec![file]);
        let manifest = persist(&w).unwrap();
        let cfg = HsqConfig::with_epsilon(0.1);
        let r: Warehouse<u64, MemDevice> = recover(Arc::clone(w.device()), cfg, manifest).unwrap();
        assert_eq!(r.lost_items(), 17);
        assert_eq!(r.quarantined_files(), vec![file]);
        assert_eq!(r.quarantined_mass(), w.quarantined_mass());
        assert_eq!(
            r.healthy_partitions_newest_first().len(),
            w.num_partitions() - 1
        );
    }

    #[test]
    fn quarantine_rides_the_log_through_detection_and_repair() {
        let cfg = log_config(3, 64);
        let mut w = Warehouse::<u64, _>::new(MemDevice::new(256), cfg.clone());
        let mut log = ManifestLog::create(&w).unwrap();
        for s in 0..4u64 {
            w.add_batch((0..62).map(|i| s * 62 + i).collect()).unwrap();
            log.append(&w).unwrap();
        }
        // Rot a block; the scrub's verify pass quarantines the partition
        // and the next append records it as a Quarantine record.
        let file = w.partitions_newest_first()[0].run.file();
        let dev = Arc::clone(w.device());
        let mut buf = vec![0u8; dev.block_size()];
        let got = dev.read_block(file, 1, &mut buf).unwrap();
        buf[got / 2] ^= 0x01;
        dev.write_block(file, 1, &buf[..got]).unwrap();
        assert_eq!(w.scrub(1_000).unwrap().quarantined_after, 1);
        w.add_batch((500..562u64).collect()).unwrap();
        log.append(&w).unwrap();
        let mid: Warehouse<u64, MemDevice> =
            recover(Arc::clone(&dev), cfg.clone(), log.file()).unwrap();
        assert_eq!(mid.quarantined_files(), vec![file]);
        assert_eq!(mid.quarantined_mass(), w.quarantined_mass());

        // Repair, append again: replay must land on the healed state —
        // suspect file gone, only the confirmed loss remaining.
        let healed = w.scrub(1_000).unwrap();
        assert_eq!(healed.partitions_repaired, 1);
        w.add_batch((600..662u64).collect()).unwrap();
        log.append(&w).unwrap();
        let end: Warehouse<u64, MemDevice> = recover(Arc::clone(&dev), cfg, log.file()).unwrap();
        assert!(end.quarantined_files().is_empty());
        assert_eq!(end.lost_items(), healed.items_lost);
        assert_eq!(end.total_len(), w.total_len());
        end.check_invariants().unwrap();
    }

    #[test]
    fn version1_manifest_accepted() {
        // A hand-built version-1 image (no quarantine block, no run
        // format bytes): the reader must still accept it.
        let dev = MemDevice::new(256);
        let mut out = Writer::new();
        out.buf.extend_from_slice(MAGIC);
        out.u64(1); // version 1
        out.u64(8); // u64 item width
        out.u64(4); // steps
        out.u64(0); // total_len
        out.u64(0); // num partitions
        let crc = crc64(&out.buf);
        out.u64(crc);
        let file = write_image(&dev, &out.buf);
        let w: Warehouse<u64, MemDevice> =
            recover(dev, HsqConfig::with_epsilon(0.1), file).unwrap();
        assert_eq!(w.steps(), 4);
        assert_eq!(w.total_len(), 0);
        assert_eq!(w.quarantined_mass(), 0);
    }

    #[test]
    fn version2_manifest_without_stream_section_accepted() {
        // A hand-built version-2 image — quarantine block and run-format
        // bytes, but no stream section — must recover exactly as before
        // this format version existed (empty stream).
        let dev = MemDevice::new(256);
        let mut out = Writer::new();
        out.buf.extend_from_slice(MAGIC);
        out.u64(2); // version 2
        out.u64(8); // u64 item width
        out.u64(7); // steps
        out.u64(0); // total_len
        out.u64(3); // lost items
        out.u64(0); // no quarantined files
        out.u64(0); // num partitions
        let crc = crc64(&out.buf);
        out.u64(crc);
        let file = write_image(&dev, &out.buf);
        let (w, stream) =
            recover_with_stream::<u64, _>(dev, HsqConfig::with_epsilon(0.1), file).unwrap();
        assert_eq!(w.steps(), 7);
        assert_eq!(w.lost_items(), 3);
        assert!(stream.is_none(), "v2 manifests carry no stream");
    }

    #[test]
    fn engine_manifest_roundtrips_stream_state() {
        // persist() mid-step: the recovered engine must hold the same
        // sketch, staging and segment boundaries, for both backends.
        for kind in [hsq_sketch::SketchKind::Gk, hsq_sketch::SketchKind::Kll] {
            let cfg = HsqConfig::builder()
                .epsilon(0.1)
                .merge_threshold(3)
                .sketch(kind)
                .build();
            let dev = MemDevice::new(256);
            let mut engine =
                crate::engine::HistStreamQuantiles::<u64, _>::new(Arc::clone(&dev), cfg.clone());
            for s in 0..4u64 {
                engine
                    .ingest_step(&(s * 100..s * 100 + 100).collect::<Vec<_>>())
                    .unwrap();
            }
            // Mid-step state: one sorted batch segment + a scalar tail.
            engine.stream_extend(&(400..450u64).collect::<Vec<_>>());
            for v in [777u64, 5, 450] {
                engine.stream_update(v);
            }
            let manifest = engine.persist().unwrap();
            let recovered =
                crate::engine::HistStreamQuantiles::<u64, _>::recover(dev, cfg, manifest).unwrap();
            assert_eq!(recovered.stream_len(), engine.stream_len());
            assert_eq!(recovered.total_len(), engine.total_len());
            assert_eq!(recovered.stream().sketch().kind(), kind);
            for phi in [0.1, 0.5, 0.9, 1.0] {
                assert_eq!(
                    recovered.quantile(phi).unwrap(),
                    engine.quantile(phi).unwrap(),
                    "kind {kind}, phi {phi}"
                );
            }
        }
    }

    #[test]
    fn engine_manifest_recovers_under_other_backend() {
        // A GK-written stream recovers under a KLL-configured build (and
        // vice versa): the persisted sketch is used as-is, the configured
        // backend takes over at the next step boundary.
        for (wrote, reopens) in [
            (hsq_sketch::SketchKind::Gk, hsq_sketch::SketchKind::Kll),
            (hsq_sketch::SketchKind::Kll, hsq_sketch::SketchKind::Gk),
        ] {
            let cfg = |k| {
                HsqConfig::builder()
                    .epsilon(0.1)
                    .merge_threshold(3)
                    .sketch(k)
                    .build()
            };
            let dev = MemDevice::new(256);
            let mut engine =
                crate::engine::HistStreamQuantiles::<u64, _>::new(Arc::clone(&dev), cfg(wrote));
            engine
                .ingest_step(&(0..300u64).collect::<Vec<_>>())
                .unwrap();
            engine.stream_extend(&(300..400u64).collect::<Vec<_>>());
            let manifest = engine.persist().unwrap();
            let mut recovered =
                crate::engine::HistStreamQuantiles::<u64, _>::recover(dev, cfg(reopens), manifest)
                    .unwrap();
            assert_eq!(recovered.stream().sketch().kind(), wrote);
            assert_eq!(
                recovered.quantile(0.5).unwrap(),
                engine.quantile(0.5).unwrap()
            );
            // The interrupted step finishes; the configured backend takes
            // over from the reset.
            recovered.end_time_step().unwrap();
            assert_eq!(recovered.stream().sketch().kind(), reopens);
            assert_eq!(recovered.historical_len(), 400);
        }
    }

    #[test]
    fn randomized_kll_stream_resumes_mid_step() {
        // Persist mid-step under randomized compaction, recover, and run
        // both engines through the same suffix: the recovered RNG cursor
        // must continue the exact coin-flip sequence, so the two sketches
        // stay byte-identical.
        let mode = hsq_sketch::SketchCompaction::Randomized { seed: 23 };
        let cfg = HsqConfig::builder()
            .epsilon(0.05)
            .merge_threshold(3)
            .sketch(hsq_sketch::SketchKind::Kll)
            .sketch_compaction(mode)
            .build();
        let dev = MemDevice::new(256);
        let mut engine =
            crate::engine::HistStreamQuantiles::<u64, _>::new(Arc::clone(&dev), cfg.clone());
        let data: Vec<u64> = (0..30_000u64)
            .map(|i| i.wrapping_mul(2654435761) % 100_000)
            .collect();
        engine.stream_extend(&data[..20_000]);
        let manifest = engine.persist().unwrap();
        let mut recovered =
            crate::engine::HistStreamQuantiles::<u64, _>::recover(dev, cfg, manifest).unwrap();
        engine.stream_extend(&data[20_000..]);
        recovered.stream_extend(&data[20_000..]);
        match (engine.stream().sketch(), recovered.stream().sketch()) {
            (AnySketch::Kll(x), AnySketch::Kll(y)) => {
                assert_eq!(x.compaction(), mode);
                assert_eq!(y.compaction(), mode);
                assert_eq!(x.rng_state(), y.rng_state(), "RNG cursor must resume");
                assert_eq!(x.raw_levels(), y.raw_levels());
                assert_eq!(x.tracked_err(), y.tracked_err());
            }
            _ => panic!("expected KLL on both sides"),
        }
        for phi in [0.1, 0.5, 0.9] {
            assert_eq!(
                engine.quantile(phi).unwrap(),
                recovered.quantile(phi).unwrap()
            );
        }
    }

    #[test]
    fn version3_kll_stream_recovers_as_deterministic() {
        // A hand-built version-3 image with a KLL stream blob (no
        // compaction descriptor — that version couldn't write one) must
        // recover as a deterministic-compaction sketch.
        let dev = MemDevice::new(256);
        let mut out = Writer::new();
        out.buf.extend_from_slice(MAGIC);
        out.u64(3); // version 3
        out.u64(8); // u64 item width
        out.u64(0); // steps
        out.u64(0); // total_len
        out.u64(0); // lost items
        out.u64(0); // no quarantined files
        out.u64(0); // num partitions
        out.u64(1); // stream flag
        out.u64(SKETCH_KLL);
        out.u64(0.05f64.to_bits());
        out.u64(1); // n
        out.item(5u64); // min
        out.item(5u64); // max
        out.u64(0); // tracked err
        out.u64(0); // parity
        out.u64(1); // one level...
        out.u64(1); // ...of one item
        out.item(5u64);
        out.u64(1); // staging length
        out.item(5u64);
        out.u64(1); // one segment
        out.u64(1); // ending at 1
        let crc = crc64(&out.buf);
        out.u64(crc);
        let file = write_image(&dev, &out.buf);
        let (_, stream) =
            recover_with_stream::<u64, _>(dev, HsqConfig::with_epsilon(0.1), file).unwrap();
        let s = stream.expect("v3 stream section must recover");
        match s.proc.sketch() {
            AnySketch::Kll(k) => {
                assert_eq!(k.compaction(), SketchCompaction::Deterministic);
                assert_eq!(k.len(), 1);
            }
            _ => panic!("expected KLL"),
        }
    }

    #[test]
    fn future_version_rejected() {
        let dev = MemDevice::new(256);
        let mut out = Writer::new();
        out.buf.extend_from_slice(MAGIC);
        out.u64(VERSION + 1);
        out.u64(8);
        out.u64(0);
        out.u64(0);
        out.u64(0);
        let crc = crc64(&out.buf);
        out.u64(crc);
        let file = write_image(&dev, &out.buf);
        let err = recover::<u64, _>(dev, HsqConfig::with_epsilon(0.1), file).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_manifest_never_panics() {
        // Fuzz-style sweep: every strict prefix of a valid snapshot
        // manifest must be rejected with an error — never a panic, never
        // a bogus warehouse.
        let w = build(2);
        let manifest = persist(&w).unwrap();
        let dev = w.device();
        let raw = read_image(dev, manifest);
        let cfg = HsqConfig::with_epsilon(0.1);
        for len in 0..raw.len() {
            let trunc = write_image(dev, &raw[..len]);
            assert!(
                recover::<u64, _>(Arc::clone(dev), cfg.clone(), trunc).is_err(),
                "a {len}-byte prefix of a {}-byte manifest must be rejected",
                raw.len()
            );
            dev.delete(trunc).unwrap();
        }
    }

    #[test]
    fn bit_flipped_manifest_never_panics() {
        // The whole-image CRC makes every single-bit flip detectable.
        let w = build(2);
        let manifest = persist(&w).unwrap();
        let dev = w.device();
        let raw = read_image(dev, manifest);
        let cfg = HsqConfig::with_epsilon(0.1);
        for pos in (0..raw.len()).step_by(7) {
            let mut img = raw.clone();
            img[pos] ^= 1 << (pos % 8);
            let f = write_image(dev, &img);
            assert!(
                recover::<u64, _>(Arc::clone(dev), cfg.clone(), f).is_err(),
                "bit flip at byte {pos} must be rejected"
            );
            dev.delete(f).unwrap();
        }
    }

    #[test]
    fn bit_flipped_log_recovers_cleanly_or_rejects() {
        // Log replay treats a record failing its CRC as a torn tail: a
        // flip may legitimately roll recovery back to an earlier record,
        // but must never panic or yield an invalid warehouse.
        let cfg = log_config(3, 64);
        let mut w = Warehouse::<u64, _>::new(MemDevice::new(256), cfg.clone());
        let mut log = ManifestLog::create(&w).unwrap();
        for s in 0..6u64 {
            w.add_batch((0..60).map(|i| s * 60 + i).collect()).unwrap();
            log.append(&w).unwrap();
        }
        let dev = w.device();
        let raw = read_image(dev, log.file());
        let final_len = w.total_len();
        for pos in (0..raw.len()).step_by(13) {
            let mut img = raw.clone();
            img[pos] ^= 1 << (pos % 8);
            let f = write_image(dev, &img);
            // An error is a clean rejection (InvalidData for garbled
            // bytes, NotFound when a flipped file id dangles).
            if let Ok(r) = recover::<u64, _>(Arc::clone(dev), cfg.clone(), f) {
                r.check_invariants().unwrap();
                assert!(
                    r.total_len() <= final_len,
                    "rolled-back state can only be a prefix of history"
                );
            }
            dev.delete(f).unwrap();
        }
    }
}
