//! The on-disk historical structure `HD` and its in-memory summary `HS`
//! (paper §2.1, Algorithm 3).
//!
//! Each time step's batch becomes a sorted partition at level 0. Whenever a
//! level exceeds `κ` partitions, *all* partitions at that level are
//! multi-way merged into a single partition at the next level (the
//! recursive cascade of Figure 2), keeping:
//!
//! * at most `κ` partitions per level, hence at most
//!   `κ·(⌈log_κ T⌉ + 1)` partitions total;
//! * each element involved in at most `log_κ T` merges, giving Lemma 6's
//!   amortized update cost `O((n/(B·T))·log_κ T)` sequential I/Os.
//!
//! Every partition carries its [`PartitionSummary`] (built while the
//! partition's blocks are being written — zero additional reads) and its
//! time-step interval, which powers window queries (§2.4).

use std::collections::{HashMap, HashSet};
use std::io;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use hsq_storage::{
    corruption_in, BlockDevice, FileId, IoScheduler, IoSnapshot, Item, RunWriter, SortedRun,
};

use crate::config::HsqConfig;
use crate::retention::RetentionReport;
use crate::summary::{summarize_sorted, PartitionSummary, SummaryBuilder};

/// A partition of `HD`: a sorted run plus its summary and provenance.
#[derive(Debug, Clone)]
pub struct StoredPartition<T: Item> {
    /// The on-disk sorted data.
    pub run: SortedRun<T>,
    /// In-memory summary (the `HS` entry for this partition).
    pub summary: PartitionSummary<T>,
    /// First time step whose data this partition contains (1-based).
    pub first_step: u64,
    /// Last time step whose data this partition contains (inclusive).
    pub last_step: u64,
}

impl<T: Item> StoredPartition<T> {
    /// Number of time steps spanned.
    pub fn span(&self) -> u64 {
        self.last_step - self.first_step + 1
    }
}

/// Cost breakdown of one warehouse update (one time step), matching the
/// paper's Figure 6/7 decomposition into Load / Sort / Merge / Summary.
#[derive(Debug, Clone, Copy, Default)]
pub struct UpdateReport {
    /// I/O to write the new sorted partition ("Load").
    pub load_io: IoSnapshot,
    /// I/O of external-sort spill runs ("Sort"; zero for in-memory sorts).
    pub sort_io: IoSnapshot,
    /// I/O of partition merging ("Merge").
    pub merge_io: IoSnapshot,
    /// Wall time of the load phase.
    pub load_time: Duration,
    /// Wall time of the sort phase.
    pub sort_time: Duration,
    /// Wall time of the merge phase.
    pub merge_time: Duration,
    /// Wall time spent building summaries.
    pub summary_time: Duration,
    /// Number of level merges triggered by this update.
    pub merges: usize,
    /// What the step-boundary retention pass retired (all-zero when the
    /// policy is unbounded or nothing expired).
    pub retention: RetentionReport,
}

impl UpdateReport {
    /// All block accesses for the step (the paper's per-step disk count).
    pub fn total_accesses(&self) -> u64 {
        (self.load_io + self.sort_io + self.merge_io).total_accesses()
    }

    /// Total wall time of the update.
    pub fn total_time(&self) -> Duration {
        self.load_time + self.sort_time + self.merge_time + self.summary_time
    }
}

/// Reference counts for partition files pinned by live snapshots
/// (see [`crate::engine::EngineSnapshot`]).
///
/// The warehouse *retires* a run when a cascade merge replaces it; a
/// retired run's file is deleted immediately if unpinned, otherwise the
/// deletion is deferred until the last [`PinGuard`] holding it drops. This
/// is what lets snapshot readers keep probing partitions while
/// `end_time_step` restructures the warehouse underneath them.
#[derive(Debug, Default)]
pub(crate) struct PinRegistry {
    inner: Mutex<HashMap<FileId, PinEntry>>,
}

#[derive(Debug, Default, Clone, Copy)]
struct PinEntry {
    pins: usize,
    retired: bool,
}

impl PinRegistry {
    /// Pin `files`: their deletion is deferred while the pin is held.
    fn pin(&self, files: &[FileId]) {
        let mut inner = self.inner.lock().unwrap();
        for &f in files {
            inner.entry(f).or_default().pins += 1;
        }
    }

    /// A merged-away run should disappear. Returns `true` when the caller
    /// must delete the file now; `false` when pinned readers defer it.
    fn retire(&self, file: FileId) -> bool {
        let mut inner = self.inner.lock().unwrap();
        match inner.get_mut(&file) {
            Some(e) => {
                e.retired = true;
                false
            }
            None => true,
        }
    }

    /// Drop one pin from each of `files`; returns the files that are now
    /// both retired and unpinned — the caller deletes them.
    fn unpin(&self, files: &[FileId]) -> Vec<FileId> {
        let mut inner = self.inner.lock().unwrap();
        let mut deletable = Vec::new();
        for &f in files {
            if let Some(e) = inner.get_mut(&f) {
                e.pins = e.pins.saturating_sub(1);
                if e.pins == 0 {
                    let retired = e.retired;
                    inner.remove(&f);
                    if retired {
                        deletable.push(f);
                    }
                }
            }
        }
        deletable
    }
}

/// RAII pin over a snapshot's partition files: while alive, the warehouse
/// defers deleting those files even if cascade merges replace them; on
/// drop, any deferred deletions are carried out (best effort).
pub struct PinGuard<D: BlockDevice> {
    registry: Arc<PinRegistry>,
    dev: Arc<D>,
    files: Vec<FileId>,
}

impl<D: BlockDevice> std::fmt::Debug for PinGuard<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PinGuard")
            .field("files", &self.files)
            .finish()
    }
}

impl<D: BlockDevice> Drop for PinGuard<D> {
    fn drop(&mut self) {
        for f in self.registry.unpin(&self.files) {
            // The run was merged away while we were reading it; nobody
            // else can reference the file, so a failed delete only leaks
            // space, never correctness.
            let _ = self.dev.delete(f);
        }
    }
}

/// Corruption-quarantine bookkeeping: the files whose runs failed a
/// checksum (still on disk, excluded from queries and merges until
/// [`Warehouse::scrub`] repairs them) and the item mass already confirmed
/// unrecoverable by past repairs.
#[derive(Debug, Default)]
struct QuarantineState {
    files: HashSet<FileId>,
    lost: u64,
}

/// What one [`Warehouse::scrub`] pass did.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ScrubReport {
    /// Checksummed blocks read and verified (healthy partitions).
    pub blocks_verified: u64,
    /// Blocks that failed verification during this pass.
    pub corrupt_blocks: u64,
    /// Quarantined partitions rebuilt from their readable blocks.
    pub partitions_repaired: u64,
    /// Items salvaged into fresh runs by those repairs.
    pub items_salvaged: u64,
    /// Items confirmed unrecoverable by those repairs.
    pub items_lost: u64,
    /// Files still quarantined when the pass ended.
    pub quarantined_after: u64,
}

/// `HD` + `HS`: the historical store (Algorithm 3).
pub struct Warehouse<T: Item, D: BlockDevice> {
    dev: Arc<D>,
    config: HsqConfig,
    /// `levels[l]` = partitions at level `l`, oldest first.
    levels: Vec<Vec<StoredPartition<T>>>,
    total_len: u64,
    steps: u64,
    /// Snapshot pins over partition files (deferred deletion).
    pins: Arc<PinRegistry>,
    /// Overlapped-I/O scheduler (`config.io_depth > 0`): level-0 run
    /// writes are submitted rather than awaited, merges prefetch their
    /// input windows, and the manifest log turns per-file syncs into
    /// completion barriers. `None` = every device call is synchronous.
    sched: Option<Arc<IoScheduler>>,
    /// Interior-mutable because corruption is *discovered* on read paths
    /// that take `&self` (the engine's query loop quarantines and
    /// retries without a write lock on the warehouse).
    quarantine: Mutex<QuarantineState>,
    /// Where the next [`Warehouse::scrub`] verify pass resumes, as an
    /// index into the level-major partition list (wraps; approximate
    /// under concurrent restructuring, which is fine for a rate-limited
    /// background pass).
    scrub_cursor: usize,
}

/// The per-warehouse scheduler for `dev` when `config` asks for one.
/// Workers retry transient failures per `config.retry`.
fn make_sched<D: BlockDevice>(dev: &Arc<D>, config: &HsqConfig) -> Option<Arc<IoScheduler>> {
    (config.io_depth > 0).then(|| {
        Arc::new(IoScheduler::with_retry(
            Arc::clone(dev) as Arc<dyn BlockDevice>,
            config.io_depth,
            None,
            config.retry,
        ))
    })
}

impl<T: Item, D: BlockDevice> std::fmt::Debug for Warehouse<T, D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Warehouse")
            .field("steps", &self.steps)
            .field("total_len", &self.total_len)
            .field(
                "levels",
                &self.levels.iter().map(Vec::len).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl<T: Item, D: BlockDevice> Warehouse<T, D> {
    /// `HistInit(ε₁, β₁)`: an empty warehouse on `dev`.
    pub fn new(dev: Arc<D>, config: HsqConfig) -> Self {
        let sched = make_sched(&dev, &config);
        Warehouse {
            dev,
            config,
            levels: Vec::new(),
            total_len: 0,
            steps: 0,
            pins: Arc::new(PinRegistry::default()),
            sched,
            quarantine: Mutex::new(QuarantineState::default()),
            scrub_cursor: 0,
        }
    }

    /// The block device.
    pub fn device(&self) -> &Arc<D> {
        &self.dev
    }

    /// The overlapped-I/O scheduler, when `io_depth > 0`.
    pub fn scheduler(&self) -> Option<&Arc<IoScheduler>> {
        self.sched.as_ref()
    }

    /// Wait for every submitted device op to complete (no-op when
    /// synchronous). Callers that read partitions directly after
    /// [`Warehouse::add_sorted_batch`] under overlapped I/O must pass
    /// this barrier first; the engine layer does it automatically.
    pub fn io_barrier(&self) -> io::Result<()> {
        match &self.sched {
            Some(s) => s.barrier(),
            None => Ok(()),
        }
    }

    /// Reassemble a warehouse from recovered parts (manifest recovery;
    /// see [`crate::manifest`]). `partitions` carries `(level, partition)`
    /// pairs; levels may arrive in any order.
    pub fn from_recovered_parts(
        dev: Arc<D>,
        config: HsqConfig,
        partitions: Vec<(usize, StoredPartition<T>)>,
        steps: u64,
        total_len: u64,
    ) -> Self {
        let max_level = partitions.iter().map(|(l, _)| *l + 1).max().unwrap_or(0);
        let mut levels: Vec<Vec<StoredPartition<T>>> = (0..max_level).map(|_| Vec::new()).collect();
        for (level, p) in partitions {
            levels[level].push(p);
        }
        // Within a level, arrival order = oldest first.
        for level in &mut levels {
            level.sort_by_key(|p| p.first_step);
        }
        let sched = make_sched(&dev, &config);
        Warehouse {
            dev,
            config,
            levels,
            total_len,
            steps,
            pins: Arc::new(PinRegistry::default()),
            sched,
            quarantine: Mutex::new(QuarantineState::default()),
            scrub_cursor: 0,
        }
    }

    /// Install recovered quarantine state (manifest recovery): the lost
    /// item count and the files quarantined when the state was persisted.
    /// Files no longer backing a live partition are dropped.
    pub(crate) fn set_quarantine(&self, lost: u64, files: Vec<FileId>) {
        let live: HashSet<FileId> = self.levels.iter().flatten().map(|p| p.run.file()).collect();
        let mut q = self.quarantine.lock().unwrap();
        q.lost = lost;
        q.files = files.into_iter().filter(|f| live.contains(f)).collect();
    }

    /// Historical data size `n`.
    pub fn total_len(&self) -> u64 {
        self.total_len
    }

    /// Time steps archived so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Number of levels currently in use.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Number of live partitions.
    pub fn num_partitions(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// Partitions at `level`, oldest first.
    pub fn level(&self, level: usize) -> &[StoredPartition<T>] {
        self.levels.get(level).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All partitions, newest data first (level 0 backwards, then level 1
    /// backwards, ...). The order window queries consume.
    pub fn partitions_newest_first(&self) -> Vec<&StoredPartition<T>> {
        let mut out = Vec::with_capacity(self.num_partitions());
        for level in &self.levels {
            for p in level.iter().rev() {
                out.push(p);
            }
        }
        out
    }

    /// Quarantine the partition backed by `file` after a confirmed
    /// checksum failure: it is excluded from queries (which widen their
    /// rank bounds by its item count instead — see
    /// [`crate::query::QueryOutcome`]) and from cascade merges until
    /// [`Warehouse::scrub`] repairs it. Returns `true` if `file` backs a
    /// live partition and was not already quarantined.
    pub fn quarantine(&self, file: FileId) -> bool {
        if !self.levels.iter().flatten().any(|p| p.run.file() == file) {
            return false;
        }
        self.quarantine.lock().unwrap().files.insert(file)
    }

    /// Is `file` currently quarantined?
    pub fn is_quarantined(&self, file: FileId) -> bool {
        self.quarantine.lock().unwrap().files.contains(&file)
    }

    /// Files currently quarantined, sorted (deterministic order).
    pub fn quarantined_files(&self) -> Vec<FileId> {
        let mut files: Vec<FileId> = self
            .quarantine
            .lock()
            .unwrap()
            .files
            .iter()
            .copied()
            .collect();
        files.sort_unstable();
        files
    }

    /// Items confirmed unrecoverable by past [`Warehouse::scrub`] repairs
    /// (the permanent part of the degraded-query widening).
    pub fn lost_items(&self) -> u64 {
        self.quarantine.lock().unwrap().lost
    }

    /// Total item mass queries cannot currently see: items in quarantined
    /// partitions plus items already confirmed lost. Degraded queries
    /// widen their rank bounds by **exactly** this amount.
    pub fn quarantined_mass(&self) -> u64 {
        let q = self.quarantine.lock().unwrap();
        let suspect: u64 = self
            .levels
            .iter()
            .flatten()
            .filter(|p| q.files.contains(&p.run.file()))
            .map(|p| p.run.len())
            .sum();
        suspect + q.lost
    }

    /// [`Warehouse::partitions_newest_first`] minus quarantined
    /// partitions — the set degraded queries answer over.
    pub fn healthy_partitions_newest_first(&self) -> Vec<&StoredPartition<T>> {
        let q = self.quarantine.lock().unwrap();
        self.partitions_newest_first()
            .into_iter()
            .filter(|p| !q.files.contains(&p.run.file()))
            .collect()
    }

    /// Pin an explicit file set (no partition cloning): the returned
    /// [`PinGuard`] defers deletion of those files until it drops. Used
    /// by [`crate::manifest::ManifestLog`] to keep every file its last
    /// durable record references alive — write-ahead discipline — so a
    /// crash between a step boundary and the next log append never
    /// leaves the log pointing at deleted files.
    pub(crate) fn pin_files(&self, files: Vec<FileId>) -> PinGuard<D> {
        self.pins.pin(&files);
        PinGuard {
            registry: Arc::clone(&self.pins),
            dev: Arc::clone(&self.dev),
            files,
        }
    }

    /// Clone the current partition list (with levels) and pin its backing
    /// files: the returned [`PinGuard`] keeps every file readable even if
    /// later updates merge the partitions away. The building block of
    /// [`crate::engine::HistStreamQuantiles::snapshot`].
    pub fn pinned_partitions(&self) -> (Vec<(usize, StoredPartition<T>)>, PinGuard<D>) {
        let mut parts = Vec::with_capacity(self.num_partitions());
        for (level, ps) in self.levels.iter().enumerate() {
            for p in ps {
                parts.push((level, p.clone()));
            }
        }
        let files: Vec<FileId> = parts.iter().map(|(_, p)| p.run.file()).collect();
        self.pins.pin(&files);
        let guard = PinGuard {
            registry: Arc::clone(&self.pins),
            dev: Arc::clone(&self.dev),
            files,
        };
        (parts, guard)
    }

    /// Words of main memory used by `HS` (Lemma 8's quantity).
    pub fn summary_memory_words(&self) -> usize {
        self.levels
            .iter()
            .flatten()
            .map(|p| p.summary.memory_words())
            .sum()
    }

    /// `HistUpdate(D)` (Algorithm 3): archive one time step's batch.
    ///
    /// Sorts the batch (externally if it exceeds the configured budget),
    /// writes it as a level-0 partition with its summary built in-stream,
    /// then cascades merges while any level holds more than `κ` partitions.
    pub fn add_batch(&mut self, mut batch: Vec<T>) -> io::Result<UpdateReport> {
        if batch.len() <= self.config.sort_budget_items {
            // In-memory sort (radix for radix-keyed items), then the
            // shared sorted-store path.
            let t0 = Instant::now();
            hsq_storage::sort_items(&mut batch);
            let sort_time = t0.elapsed();
            let mut report = self.add_sorted_batch(batch)?;
            report.sort_time += sort_time;
            return Ok(report);
        }
        let mut report = UpdateReport::default();
        self.steps += 1;
        let eta = batch.len() as u64;
        self.total_len += eta;

        let (run, summary) = {
            // External sort: spill budget-sized sorted runs, then stream
            // one multi-way merge into the final partition, tapping it for
            // the summary (no extra reads).
            let t0 = Instant::now();
            let before_sort = self.dev.stats().snapshot();
            let mut spills = Vec::new();
            for chunk in batch.chunks_mut(self.config.sort_budget_items) {
                hsq_storage::sort_items(chunk);
                spills.push(hsq_storage::write_run(&*self.dev, chunk)?);
            }
            report.sort_time = t0.elapsed();

            let t1 = Instant::now();
            let before_load = self.dev.stats().snapshot();
            report.sort_io = before_load - before_sort;
            let mut writer = RunWriter::new(&*self.dev)?;
            let mut sb = SummaryBuilder::new(
                eta,
                self.config.epsilon1,
                self.config.beta1,
                self.dev.block_size(),
            );
            hsq_storage::merge_into_prefetch(&*self.dev, self.sched.as_deref(), &spills, |v| {
                sb.push(v);
                writer.push(v)
            })?;
            let run = writer.finish()?;
            for s in spills {
                s.delete(&*self.dev)?;
            }
            report.load_io = self.dev.stats().snapshot() - before_load;
            report.load_time = t1.elapsed();
            (run, sb.finish())
        };
        drop(batch);

        self.push_level0(StoredPartition {
            run,
            summary,
            first_step: self.steps,
            last_step: self.steps,
        });

        // Cascade merges (Algorithm 3, lines 8-13).
        let t3 = Instant::now();
        let before_merge = self.dev.stats().snapshot();
        report.merges = self.cascade_merges()?;
        report.merge_io = self.dev.stats().snapshot() - before_merge;
        report.merge_time = t3.elapsed();
        report.retention = self.apply_retention()?;
        Ok(report)
    }

    /// [`Warehouse::add_batch`] for a batch that is **already sorted**
    /// (nondecreasing), skipping the sort entirely. This is the fast path
    /// the engine's batched ingestion uses: staged stream batches are kept
    /// as sorted segments, so archiving costs one linear merge of segments
    /// plus this sorted store — no `O(η log η)` re-sort.
    pub fn add_sorted_batch(&mut self, batch: Vec<T>) -> io::Result<UpdateReport> {
        debug_assert!(batch.windows(2).all(|w| w[0] <= w[1]), "batch not sorted");
        let mut report = UpdateReport::default();
        self.steps += 1;
        let eta = batch.len() as u64;
        if eta == 0 {
            // A step with no data stores nothing, but the step clock still
            // advances, so age-based retention may expire partitions.
            report.retention = self.apply_retention()?;
            return Ok(report);
        }
        self.total_len += eta;

        // Load = writing the sorted blocks. Overlapped mode *submits*
        // them instead: the writes run on scheduler workers while summary
        // construction (and, for a sharded engine, neighboring shards)
        // proceed on CPU. `load_io` then counts the ops that completed
        // inside the window — the totals reconcile at the next barrier.
        let t1 = Instant::now();
        let before = self.dev.stats().snapshot();
        let run = match &self.sched {
            Some(sched) => hsq_storage::write_run_overlapped(sched, &batch)?,
            None => hsq_storage::write_run(&*self.dev, &batch)?,
        };
        report.load_io = self.dev.stats().snapshot() - before;
        report.load_time = t1.elapsed();

        let t2 = Instant::now();
        let summary = summarize_sorted(
            &batch,
            self.config.epsilon1,
            self.config.beta1,
            self.dev.block_size(),
        );
        report.summary_time = t2.elapsed();
        drop(batch);

        self.push_level0(StoredPartition {
            run,
            summary,
            first_step: self.steps,
            last_step: self.steps,
        });

        // Cascade merges (Algorithm 3, lines 8-13).
        let t3 = Instant::now();
        let before_merge = self.dev.stats().snapshot();
        report.merges = self.cascade_merges()?;
        report.merge_io = self.dev.stats().snapshot() - before_merge;
        report.merge_time = t3.elapsed();
        report.retention = self.apply_retention()?;
        Ok(report)
    }

    fn push_level0(&mut self, p: StoredPartition<T>) {
        if self.levels.is_empty() {
            self.levels.push(Vec::new());
        }
        self.levels[0].push(p);
    }

    /// While any level holds more than `κ` partitions, merge the whole
    /// level into one partition at the next level. Returns the number of
    /// level merges performed.
    fn cascade_merges(&mut self) -> io::Result<usize> {
        // A merge reads the partitions it collapses — including a level-0
        // run whose writes may still be in flight. Reach the completion
        // barrier before the first read.
        if self
            .levels
            .iter()
            .any(|level| level.len() > self.config.kappa)
        {
            self.io_barrier()?;
        }
        let mut merges = 0;
        let mut level = 0;
        while level < self.levels.len() {
            if self.levels[level].len() <= self.config.kappa {
                level += 1;
                continue;
            }
            // A level holding a quarantined partition stays unmerged (the
            // merge would have to read the corrupt blocks); it may exceed
            // kappa until scrub repairs the partition.
            if self.levels[level]
                .iter()
                .any(|p| self.is_quarantined(p.run.file()))
            {
                level += 1;
                continue;
            }
            let olds: Vec<StoredPartition<T>> = std::mem::take(&mut self.levels[level]);
            let merged = match self.merge_partitions(&olds) {
                Ok(m) => m,
                Err(e) => {
                    // Put the sources back; on confirmed corruption,
                    // quarantine the bad run and carry on — the step
                    // still succeeds, queries degrade, scrub repairs.
                    self.levels[level] = olds;
                    if let Some((file, _)) = corruption_in(&e) {
                        self.quarantine(file);
                        level += 1;
                        continue;
                    }
                    return Err(e);
                }
            };
            for p in olds {
                // Snapshot readers may still hold the run: deletion is
                // deferred to the last pin if so.
                if self.pins.retire(p.run.file()) {
                    p.run.delete(&*self.dev)?;
                }
            }
            if self.levels.len() <= level + 1 {
                self.levels.push(Vec::new());
            }
            self.levels[level + 1].push(merged);
            merges += 1;
            level += 1;
        }
        Ok(merges)
    }

    /// Multi-way merge `parts` into one partition, building its summary
    /// from the merge stream (Algorithm 3 line 10-11).
    fn merge_partitions(&self, parts: &[StoredPartition<T>]) -> io::Result<StoredPartition<T>> {
        let eta: u64 = parts.iter().map(|p| p.run.len()).sum();
        let runs: Vec<SortedRun<T>> = parts.iter().map(|p| p.run).collect();
        let mut writer = RunWriter::new(&*self.dev)?;
        let mut sb = SummaryBuilder::new(
            eta,
            self.config.epsilon1,
            self.config.beta1,
            self.dev.block_size(),
        );
        // With a scheduler, input windows prefetch ahead of the heap
        // merge: each run's next window is in flight while the current
        // one drains through the sink.
        hsq_storage::merge_into_prefetch(&*self.dev, self.sched.as_deref(), &runs, |v| {
            sb.push(v);
            writer.push(v)
        })?;
        Ok(StoredPartition {
            run: writer.finish()?,
            summary: sb.finish(),
            first_step: parts.iter().map(|p| p.first_step).min().unwrap_or(0),
            last_step: parts.iter().map(|p| p.last_step).max().unwrap_or(0),
        })
    }

    /// Total on-device bytes of all live partitions (the quantity the
    /// [`crate::retention::RetentionPolicy::max_bytes`] cap governs).
    pub fn partition_bytes(&self) -> io::Result<u64> {
        let mut total = 0u64;
        for p in self.levels.iter().flatten() {
            total += self.dev.file_len(p.run.file())?;
        }
        Ok(total)
    }

    /// First (oldest) retained time step, `None` when no partitions are
    /// live. With retention enabled this is the start of the horizon
    /// queries can still see.
    pub fn first_retained_step(&self) -> Option<u64> {
        self.levels.iter().flatten().map(|p| p.first_step).min()
    }

    /// Enforce the configured [`crate::retention::RetentionPolicy`]:
    /// retire whole partitions oldest-first until every limit holds.
    /// Called on every step boundary by [`Warehouse::add_batch`] /
    /// [`Warehouse::add_sorted_batch`]; callable directly after changing
    /// the policy out of band.
    ///
    /// Retired files pinned by live snapshots are *not* deleted here —
    /// deletion defers to the last [`PinGuard`] drop, exactly as with
    /// cascade merges, so concurrent readers never observe a missing
    /// file.
    pub fn apply_retention(&mut self) -> io::Result<RetentionReport> {
        let mut report = RetentionReport::default();
        let policy = self.config.retention.clone();
        if policy.is_unbounded() {
            return Ok(report);
        }
        // Only a byte cap needs the current step's submitted writes
        // settled: it sizes the just-written run via `file_len`. Age and
        // count policies touch only *older* partitions, whose writes
        // earlier barriers settled (the newest partition is never
        // retired by them — except by a zero partition cap), so they
        // keep the deferred-step overlap intact.
        if policy.max_bytes.is_some() || policy.max_partitions == Some(0) {
            self.io_barrier()?;
        }

        // Age: every partition wholly older than the horizon expires.
        if let Some(max_age) = policy.max_age_steps {
            let horizon = self.steps.saturating_sub(max_age); // keep last_step > horizon
            loop {
                let expired = self
                    .oldest_partition()
                    .is_some_and(|(_, _, last)| last <= horizon);
                if !expired {
                    break;
                }
                self.retire_oldest(&mut report)?;
            }
        }

        // Count: oldest-first until at most `max_partitions` remain.
        if let Some(max_parts) = policy.max_partitions {
            while self.num_partitions() > max_parts {
                self.retire_oldest(&mut report)?;
            }
        }

        // Bytes: oldest-first while over the cap. The newest partition is
        // never retired (dropping the data just written would make the
        // engine lie about the current step), so a single oversized
        // partition can transiently exceed the cap.
        if let Some(max_bytes) = policy.max_bytes {
            let mut total = self.partition_bytes()?;
            while total > max_bytes && self.num_partitions() > 1 {
                let before = report.retired_bytes;
                self.retire_oldest(&mut report)?;
                total -= report.retired_bytes - before;
            }
        }
        Ok(report)
    }

    /// Locate the globally oldest live partition: `(level, index within
    /// level, last_step)`.
    fn oldest_partition(&self) -> Option<(usize, usize, u64)> {
        let mut best: Option<(usize, usize, u64, u64)> = None; // + first_step
        for (l, level) in self.levels.iter().enumerate() {
            for (i, p) in level.iter().enumerate() {
                if best.is_none() || p.first_step < best.unwrap().3 {
                    best = Some((l, i, p.last_step, p.first_step));
                }
            }
        }
        best.map(|(l, i, last, _)| (l, i, last))
    }

    /// Remove the oldest partition and retire its file through the pin
    /// registry (immediate delete when unpinned, deferred otherwise).
    fn retire_oldest(&mut self, report: &mut RetentionReport) -> io::Result<()> {
        let Some((level, idx, _)) = self.oldest_partition() else {
            return Ok(());
        };
        let p = self.levels[level].remove(idx);
        // A retained-out partition leaves quarantine: its data is gone by
        // policy, not by corruption, so it no longer widens queries.
        self.quarantine.lock().unwrap().files.remove(&p.run.file());
        report.retired_partitions += 1;
        report.retired_items += p.run.len();
        report.retired_bytes += self.dev.file_len(p.run.file()).unwrap_or(0);
        report.retired_steps += p.span();
        self.total_len -= p.run.len();
        if self.pins.retire(p.run.file()) {
            match &self.sched {
                // Submitted: the per-file FIFO queues the delete after
                // any of the file's still-in-flight writes, so expiring
                // a partition never races its own archival.
                Some(sched) => {
                    sched.submit(hsq_storage::IoOp::Delete { file: p.run.file() });
                }
                None => p.run.delete(&*self.dev)?,
            }
        }
        Ok(())
    }

    /// Background self-healing pass, rate-limited to about
    /// `budget_blocks` block reads.
    ///
    /// Two phases:
    /// 1. **Repair**: every quarantined partition (budget permitting) is
    ///    rebuilt by salvaging each block that still passes its checksum
    ///    into a fresh checksummed run with a rebuilt summary; the mass
    ///    of unreadable blocks moves from "suspect" to "confirmed lost",
    ///    shrinking the degraded-query widening to truly lost items. A
    ///    started repair always completes, so the budget is a soft cap.
    /// 2. **Verify**: healthy partitions' blocks are read and
    ///    checksum-verified (through the overlapped-I/O scheduler when
    ///    one is configured), resuming where the previous pass stopped;
    ///    a failing block quarantines its partition for the next pass's
    ///    repair phase.
    ///
    /// Returns what the pass did; `quarantined_after > 0` means another
    /// pass has repair work left.
    pub fn scrub(&mut self, budget_blocks: u64) -> io::Result<ScrubReport> {
        self.io_barrier()?;
        let mut report = ScrubReport::default();
        let mut budget = budget_blocks;

        for file in self.quarantined_files() {
            if budget == 0 {
                break;
            }
            self.repair_partition(file, &mut budget, &mut report)?;
        }

        let total = self.num_partitions();
        let start = if total == 0 {
            0
        } else {
            self.scrub_cursor % total
        };
        'verify: for off in 0..total {
            let pos = (start + off) % total;
            if budget == 0 {
                self.scrub_cursor = pos;
                break 'verify;
            }
            let (level, idx) = self.nth_partition(pos);
            let file = self.levels[level][idx].run.file();
            if self.is_quarantined(file) {
                continue;
            }
            if let Some(bad) = self.verify_partition(level, idx, &mut budget, &mut report)? {
                self.quarantine(bad);
            }
            self.scrub_cursor = (pos + 1) % total.max(1);
        }

        report.quarantined_after = self.quarantined_files().len() as u64;
        Ok(report)
    }

    /// `(level, index)` of the `pos`-th partition in level-major order.
    fn nth_partition(&self, pos: usize) -> (usize, usize) {
        let mut rem = pos;
        for (l, level) in self.levels.iter().enumerate() {
            if rem < level.len() {
                return (l, rem);
            }
            rem -= level.len();
        }
        unreachable!("partition position {pos} out of range");
    }

    /// Checksum-verify the blocks of the partition at `(level, idx)`,
    /// consuming `budget`. Returns the file to quarantine if a block
    /// failed. Transient/fatal device errors propagate.
    fn verify_partition(
        &self,
        level: usize,
        idx: usize,
        budget: &mut u64,
        report: &mut ScrubReport,
    ) -> io::Result<Option<FileId>> {
        let p = &self.levels[level][idx];
        let bs = self.dev.block_size();
        let per = p.run.items_per_block(bs) as u64;
        let blocks = p.run.len().div_ceil(per);
        let file = p.run.file();
        match &self.sched {
            Some(sched) => {
                // Pipeline the reads through the scheduler: keep up to
                // `depth` block reads in flight while decoding.
                let depth = sched.depth().max(1) as u64;
                let mut tickets = std::collections::VecDeque::new();
                let mut next = 0u64;
                let mut checked = 0u64;
                while checked < blocks {
                    while next < blocks && (tickets.len() as u64) < depth && *budget > 0 {
                        *budget -= 1;
                        tickets.push_back((
                            next,
                            sched.submit(hsq_storage::IoOp::ReadBlocks {
                                file,
                                first: next,
                                count: 1,
                            }),
                        ));
                        next += 1;
                    }
                    let Some((block, t)) = tickets.pop_front() else {
                        break; // budget exhausted
                    };
                    let hsq_storage::IoOutcome::Read { data, len } = sched.wait(t)? else {
                        unreachable!("read op completed with non-read outcome")
                    };
                    report.blocks_verified += 1;
                    checked += 1;
                    if let Err(e) = p.run.decode_block_items(block, bs, &data[..len]) {
                        if corruption_in(&e).is_none() {
                            return Err(e);
                        }
                        report.corrupt_blocks += 1;
                        // Drain the in-flight tail before bailing.
                        for (_, t) in tickets {
                            let _ = sched.wait(t);
                        }
                        return Ok(Some(file));
                    }
                }
            }
            None => {
                for block in 0..blocks {
                    if *budget == 0 {
                        break;
                    }
                    *budget -= 1;
                    report.blocks_verified += 1;
                    if let Err(e) = p.run.read_block_items(&*self.dev, block) {
                        if corruption_in(&e).is_none() {
                            return Err(e);
                        }
                        report.corrupt_blocks += 1;
                        return Ok(Some(file));
                    }
                }
            }
        }
        Ok(None)
    }

    /// Rebuild the quarantined partition backed by `file` from its
    /// readable blocks (see [`Warehouse::scrub`], phase 1).
    fn repair_partition(
        &mut self,
        file: FileId,
        budget: &mut u64,
        report: &mut ScrubReport,
    ) -> io::Result<()> {
        let located = self.levels.iter().enumerate().find_map(|(l, level)| {
            level
                .iter()
                .position(|p| p.run.file() == file)
                .map(|i| (l, i))
        });
        let Some((level, idx)) = located else {
            // The partition was merged or retained away; nothing to heal.
            self.quarantine.lock().unwrap().files.remove(&file);
            return Ok(());
        };
        let old = self.levels[level][idx].clone();
        let bs = self.dev.block_size();
        let per = old.run.items_per_block(bs) as u64;
        let blocks = old.run.len().div_ceil(per);
        let mut salvaged: Vec<T> = Vec::with_capacity(old.run.len() as usize);
        for block in 0..blocks {
            *budget = budget.saturating_sub(1);
            match old.run.read_block_items(&*self.dev, block) {
                Ok(items) => salvaged.extend(items),
                Err(e) => {
                    if corruption_in(&e).is_none() {
                        return Err(e);
                    }
                    report.corrupt_blocks += 1;
                }
            }
        }
        let lost = old.run.len() - salvaged.len() as u64;
        let run = hsq_storage::write_run(&*self.dev, &salvaged)?;
        let summary = summarize_sorted(&salvaged, self.config.epsilon1, self.config.beta1, bs);
        self.levels[level][idx] = StoredPartition {
            run,
            summary,
            first_step: old.first_step,
            last_step: old.last_step,
        };
        {
            let mut q = self.quarantine.lock().unwrap();
            q.files.remove(&file);
            q.lost += lost;
        }
        self.total_len -= lost;
        report.partitions_repaired += 1;
        report.items_salvaged += salvaged.len() as u64;
        report.items_lost += lost;
        if self.pins.retire(file) {
            self.dev.delete(file)?;
        }
        Ok(())
    }

    /// Window sizes (in time steps) over which exact partition-aligned
    /// queries are possible right now (§2.4 "Queries Over Windows"),
    /// ascending. The current (un-archived) stream is always included on
    /// top of these.
    pub fn available_windows(&self) -> Vec<u64> {
        let mut spans: Vec<(u64, u64)> = self
            .levels
            .iter()
            .flatten()
            .map(|p| (p.first_step, p.last_step))
            .collect();
        // Newest first.
        spans.sort_unstable_by_key(|s| std::cmp::Reverse(s.0));
        let mut out = Vec::with_capacity(spans.len());
        let mut acc = 0;
        for (first, last) in spans {
            acc += last - first + 1;
            out.push(acc);
        }
        out
    }

    /// The partitions covering exactly the last `window_steps` *retained*
    /// steps, newest first; `None` if the window does not align with
    /// partition boundaries.
    pub fn window_partitions(&self, window_steps: u64) -> Option<Vec<&StoredPartition<T>>> {
        window_suffix(self.partitions_newest_first(), window_steps)
    }

    /// Verify the structural invariants of §2.1 (tests/debugging):
    /// ≤ κ partitions per level, partitions sorted and summarized,
    /// step ranges disjoint and collectively contiguous.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (l, level) in self.levels.iter().enumerate() {
            // A quarantined partition legitimately blocks its level's
            // merge, so the kappa cap is only enforced on clean levels.
            if level.len() > self.config.kappa
                && !level.iter().any(|p| self.is_quarantined(p.run.file()))
            {
                return Err(format!(
                    "level {l} has {} partitions > kappa = {}",
                    level.len(),
                    self.config.kappa
                ));
            }
            for p in level {
                if p.summary.partition_len() != p.run.len() {
                    return Err(format!(
                        "level {l}: summary len {} != run len {}",
                        p.summary.partition_len(),
                        p.run.len()
                    ));
                }
                if p.first_step > p.last_step {
                    return Err(format!("level {l}: inverted step range"));
                }
            }
        }
        let mut spans: Vec<(u64, u64)> = self
            .levels
            .iter()
            .flatten()
            .map(|p| (p.first_step, p.last_step))
            .collect();
        spans.sort_unstable();
        for w in spans.windows(2) {
            if w[0].1 >= w[1].0 {
                return Err(format!("overlapping step ranges {:?} and {:?}", w[0], w[1]));
            }
        }
        let covered: u64 = spans.iter().map(|(f, l)| l - f + 1).sum();
        if covered > self.steps {
            return Err(format!(
                "{covered} steps covered by partitions, only {} elapsed",
                self.steps
            ));
        }
        Ok(())
    }
}

/// The suffix of `parts` covering exactly the newest `window_steps` time
/// steps, newest first; `None` when the boundary falls inside a
/// partition. Shared by [`Warehouse::window_partitions`] and
/// [`crate::engine::EngineSnapshot::window_partitions`].
pub(crate) fn window_suffix<T: Item>(
    parts: Vec<&StoredPartition<T>>,
    window_steps: u64,
) -> Option<Vec<&StoredPartition<T>>> {
    let spans: Vec<(u64, u64)> = parts.iter().map(|p| (p.first_step, p.last_step)).collect();
    window_suffix_indices(&spans, window_steps)
        .map(|idx| idx.into_iter().map(|i| parts[i]).collect())
}

/// Index form of [`window_suffix`] — the **single** copy of the
/// partition-aligned window rule: positions (into `spans`, newest first)
/// of the partitions covering exactly the newest `window_steps` steps,
/// `None` when the boundary falls inside a partition. `spans` holds each
/// partition's `(first_step, last_step)`, in any order.
pub(crate) fn window_suffix_indices(spans: &[(u64, u64)], window_steps: u64) -> Option<Vec<usize>> {
    let mut order: Vec<usize> = (0..spans.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(spans[i].0));
    let mut out = Vec::new();
    let mut acc = 0;
    for i in order {
        if acc == window_steps {
            break;
        }
        acc += spans[i].1 - spans[i].0 + 1;
        out.push(i);
        if acc > window_steps {
            return None; // boundary falls inside this partition
        }
    }
    (acc == window_steps).then_some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsq_storage::MemDevice;

    fn warehouse(kappa: usize) -> Warehouse<u64, MemDevice> {
        let mut cfg = HsqConfig::with_epsilon(0.1);
        cfg.kappa = kappa;
        Warehouse::new(MemDevice::new(256), cfg)
    }

    fn batch(step: u64, size: u64) -> Vec<u64> {
        (0..size).map(|i| step * 10_000 + i).collect()
    }

    #[test]
    fn figure2_evolution() {
        // Paper Figure 2: kappa = 2, 13 time steps. Final state:
        // level 2 = {P1-9}, level 1 = {P10-12}, level 0 = {P13}.
        let mut w = warehouse(2);
        for step in 1..=13u64 {
            w.add_batch(batch(step, 10)).unwrap();
            w.check_invariants().unwrap();
        }
        assert_eq!(w.num_levels(), 3);
        assert_eq!(w.level(0).len(), 1);
        assert_eq!(
            (w.level(0)[0].first_step, w.level(0)[0].last_step),
            (13, 13)
        );
        assert_eq!(w.level(1).len(), 1);
        assert_eq!(
            (w.level(1)[0].first_step, w.level(1)[0].last_step),
            (10, 12)
        );
        assert_eq!(w.level(2).len(), 1);
        assert_eq!((w.level(2)[0].first_step, w.level(2)[0].last_step), (1, 9));
        assert_eq!(w.total_len(), 130);
    }

    #[test]
    fn figure2_intermediate_states() {
        // After 8 steps: level 1 = {P1-3, P4-6}, level 0 = {P7, P8}.
        let mut w = warehouse(2);
        for step in 1..=8u64 {
            w.add_batch(batch(step, 5)).unwrap();
        }
        assert_eq!(w.level(0).len(), 2);
        assert_eq!(w.level(1).len(), 2);
        assert_eq!((w.level(1)[0].first_step, w.level(1)[0].last_step), (1, 3));
        assert_eq!((w.level(1)[1].first_step, w.level(1)[1].last_step), (4, 6));
    }

    #[test]
    fn merged_partition_is_sorted_union() {
        let mut w = warehouse(2);
        // Interleaved values across steps force real merging.
        w.add_batch(vec![1, 4, 7]).unwrap();
        w.add_batch(vec![2, 5, 8]).unwrap();
        w.add_batch(vec![3, 6, 9]).unwrap(); // triggers merge of all three
        assert_eq!(w.level(0).len(), 0);
        assert_eq!(w.level(1).len(), 1);
        let all = w.level(1)[0].run.read_all(&**w.device()).unwrap();
        assert_eq!(all, (1..=9).collect::<Vec<u64>>());
        // Summary spans the merged data.
        let s = &w.level(1)[0].summary;
        assert_eq!(s.partition_len(), 9);
        assert_eq!(s.entries().first().unwrap().value, 1);
        assert_eq!(s.entries().last().unwrap().value, 9);
    }

    #[test]
    fn level_count_is_logarithmic() {
        let mut w = warehouse(3);
        for step in 1..=81u64 {
            w.add_batch(batch(step, 4)).unwrap();
            w.check_invariants().unwrap();
        }
        // log_3(81) = 4 levels of data at most (plus level 0).
        assert!(w.num_levels() <= 5, "levels = {}", w.num_levels());
        assert!(w.num_partitions() <= 3 * 5);
    }

    #[test]
    fn external_sort_path_matches_in_memory() {
        let mut cfg = HsqConfig::with_epsilon(0.1);
        cfg.kappa = 4;
        cfg.sort_budget_items = 16; // force spills for a 100-element batch
        let mut w = Warehouse::<u64, _>::new(MemDevice::new(128), cfg);
        let data: Vec<u64> = (0..100).rev().collect();
        let report = w.add_batch(data).unwrap();
        assert!(report.sort_io.writes > 0, "expected spill writes");
        let stored = w.level(0)[0].run.read_all(&**w.device()).unwrap();
        assert_eq!(stored, (0..100).collect::<Vec<u64>>());
        // Summary was built from the merge tap with correct positions.
        for e in w.level(0)[0].summary.entries() {
            assert_eq!(e.value, e.rank - 1);
        }
    }

    #[test]
    fn empty_batch_counts_step_but_stores_nothing() {
        let mut w = warehouse(2);
        w.add_batch(Vec::new()).unwrap();
        assert_eq!(w.steps(), 1);
        assert_eq!(w.num_partitions(), 0);
        w.add_batch(vec![5]).unwrap();
        assert_eq!(w.steps(), 2);
        assert_eq!(w.total_len(), 1);
    }

    #[test]
    fn update_io_accounting() {
        // 256-byte checksummed blocks: 31 u64 + CRC trailer per block.
        // 320 items = ceil(320/31) = 11 blocks.
        let mut w = warehouse(4);
        let report = w.add_batch((0..320u64).rev().collect()).unwrap();
        assert_eq!(report.load_io.writes, 11);
        assert_eq!(report.merge_io.total_accesses(), 0);
        assert_eq!(report.merges, 0);

        // Four more batches trigger one cascade at kappa=4.
        let mut merge_seen = 0;
        for s in 2..=5u64 {
            let r = w.add_batch(batch(s, 320)).unwrap();
            merge_seen += r.merges;
        }
        assert_eq!(merge_seen, 1);
        w.check_invariants().unwrap();
    }

    #[test]
    fn available_windows_figure2_state() {
        let mut w = warehouse(2);
        for step in 1..=13u64 {
            w.add_batch(batch(step, 3)).unwrap();
        }
        // Partitions: P13 (1 step), P10-12 (3), P1-9 (9).
        assert_eq!(w.available_windows(), vec![1, 4, 13]);
        assert!(w.window_partitions(1).is_some());
        assert!(w.window_partitions(4).is_some());
        assert!(w.window_partitions(13).is_some());
        assert!(w.window_partitions(2).is_none());
        assert_eq!(w.window_partitions(4).unwrap().len(), 2);
    }

    #[test]
    fn larger_kappa_gives_more_windows() {
        let mut w2 = warehouse(2);
        let mut w10 = warehouse(10);
        for step in 1..=30u64 {
            w2.add_batch(batch(step, 2)).unwrap();
            w10.add_batch(batch(step, 2)).unwrap();
        }
        assert!(
            w10.available_windows().len() >= w2.available_windows().len(),
            "kappa=10 windows {:?} vs kappa=2 {:?}",
            w10.available_windows(),
            w2.available_windows()
        );
    }

    #[test]
    fn partitions_newest_first_ordering() {
        let mut w = warehouse(2);
        for step in 1..=13u64 {
            w.add_batch(batch(step, 2)).unwrap();
        }
        let parts = w.partitions_newest_first();
        let firsts: Vec<u64> = parts.iter().map(|p| p.first_step).collect();
        assert_eq!(firsts, vec![13, 10, 1]);
    }

    #[test]
    fn pinned_runs_survive_cascade_merges() {
        // kappa = 2: the third batch merges all level-0 partitions away.
        let mut w = warehouse(2);
        w.add_batch(vec![1, 4, 7]).unwrap();
        w.add_batch(vec![2, 5, 8]).unwrap();
        let (parts, guard) = w.pinned_partitions();
        assert_eq!(parts.len(), 2);
        let files_before = w.device().num_files();
        w.add_batch(vec![3, 6, 9]).unwrap(); // merges both pinned runs away
        assert_eq!(w.level(0).len(), 0);
        // The pinned runs are still readable, with their old contents.
        let a = parts[0].1.run.read_all(&**w.device()).unwrap();
        let b = parts[1].1.run.read_all(&**w.device()).unwrap();
        assert_eq!(a, vec![1, 4, 7]);
        assert_eq!(b, vec![2, 5, 8]);
        // Dropping the guard performs the deferred deletions.
        drop(guard);
        assert!(
            w.device().num_files() < files_before + 1,
            "retired runs must be deleted once unpinned"
        );
        assert!(parts[0].1.run.read_all(&**w.device()).is_err());
    }

    #[test]
    fn unretired_pins_delete_nothing_on_drop() {
        let mut w = warehouse(4);
        w.add_batch(vec![1, 2, 3]).unwrap();
        let (parts, guard) = w.pinned_partitions();
        drop(guard);
        // No merge happened: the partition stays readable.
        let a = parts[0].1.run.read_all(&**w.device()).unwrap();
        assert_eq!(a, vec![1, 2, 3]);
    }

    #[test]
    fn overlapping_pins_defer_until_last_guard() {
        let mut w = warehouse(2);
        w.add_batch(vec![10, 20]).unwrap();
        w.add_batch(vec![11, 21]).unwrap();
        let (parts1, g1) = w.pinned_partitions();
        let (_parts2, g2) = w.pinned_partitions();
        w.add_batch(vec![12, 22]).unwrap(); // retires both pinned runs
        drop(g1);
        // Still pinned by g2.
        assert_eq!(
            parts1[0].1.run.read_all(&**w.device()).unwrap(),
            vec![10, 20]
        );
        drop(g2);
        assert!(parts1[0].1.run.read_all(&**w.device()).is_err());
    }

    fn retention_warehouse(
        kappa: usize,
        policy: crate::retention::RetentionPolicy,
    ) -> Warehouse<u64, MemDevice> {
        let mut cfg = HsqConfig::with_epsilon(0.1);
        cfg.kappa = kappa;
        cfg.retention = policy;
        Warehouse::new(MemDevice::new(256), cfg)
    }

    #[test]
    fn age_policy_keeps_only_horizon() {
        let policy = crate::retention::RetentionPolicy::unbounded().with_max_age_steps(4);
        let mut w = retention_warehouse(3, policy);
        let mut retired_items = 0;
        for step in 1..=20u64 {
            let r = w.add_batch(batch(step, 10)).unwrap();
            retired_items += r.retention.retired_items;
            w.check_invariants().unwrap();
            // Every retained partition's newest step is inside the horizon.
            let horizon = w.steps().saturating_sub(4);
            for p in w.partitions_newest_first() {
                assert!(
                    p.last_step > horizon,
                    "step {step}: partition (.. {}) outlived horizon {horizon}",
                    p.last_step
                );
            }
        }
        // The horizon can cover at most 4 steps of data.
        assert!(w.total_len() <= 4 * 10, "total {}", w.total_len());
        assert_eq!(w.total_len() + retired_items, 200, "items lost or doubled");
        assert_eq!(w.first_retained_step(), Some(w.steps() - 3));
    }

    #[test]
    fn partition_count_policy() {
        let policy = crate::retention::RetentionPolicy::unbounded().with_max_partitions(2);
        let mut w = retention_warehouse(4, policy);
        for step in 1..=17u64 {
            w.add_batch(batch(step, 8)).unwrap();
            w.check_invariants().unwrap();
            assert!(w.num_partitions() <= 2, "step {step}: {w:?}");
        }
        assert!(w.total_len() >= 8, "newest data must survive");
    }

    #[test]
    fn byte_cap_policy_bounds_storage() {
        // 256-byte blocks; 40-item steps = 320 bytes + merges. Cap at ~6
        // steps' worth: steady state must stay at or under the cap.
        let cap = 2048u64;
        let policy = crate::retention::RetentionPolicy::unbounded().with_max_bytes(cap);
        let mut w = retention_warehouse(3, policy);
        for step in 1..=40u64 {
            w.add_batch(batch(step, 40)).unwrap();
            w.check_invariants().unwrap();
            assert!(
                w.partition_bytes().unwrap() <= cap,
                "step {step}: {} bytes over cap {cap}",
                w.partition_bytes().unwrap()
            );
        }
        assert!(w.total_len() > 0, "cap must not drop everything");
    }

    #[test]
    fn composed_policy_most_restrictive_wins() {
        let policy = crate::retention::RetentionPolicy::unbounded()
            .with_max_age_steps(6)
            .with_max_partitions(3)
            .with_max_bytes(1 << 20);
        let mut w = retention_warehouse(2, policy);
        for step in 1..=30u64 {
            w.add_batch(batch(step, 5)).unwrap();
            w.check_invariants().unwrap();
            assert!(w.num_partitions() <= 3);
            let horizon = w.steps().saturating_sub(6);
            for p in w.partitions_newest_first() {
                assert!(p.last_step > horizon);
            }
        }
    }

    #[test]
    fn retention_defers_deletion_under_pins() {
        let policy = crate::retention::RetentionPolicy::unbounded().with_max_age_steps(2);
        let mut w = retention_warehouse(4, policy);
        w.add_batch(vec![1, 2, 3]).unwrap();
        let (parts, guard) = w.pinned_partitions();
        // Three more steps expire step 1 under the pin.
        for step in 2..=4u64 {
            let r = w.add_batch(batch(step, 3)).unwrap();
            if step == 3 {
                assert_eq!(r.retention.retired_partitions, 1);
            }
        }
        // The expired run stays readable while pinned...
        assert_eq!(
            parts[0].1.run.read_all(&**w.device()).unwrap(),
            vec![1, 2, 3]
        );
        // ...and is deleted once the last pin drops.
        drop(guard);
        assert!(parts[0].1.run.read_all(&**w.device()).is_err());
    }

    #[test]
    fn unbounded_policy_is_noop() {
        let mut w = warehouse(3);
        for step in 1..=10u64 {
            let r = w.add_batch(batch(step, 10)).unwrap();
            assert_eq!(r.retention, crate::retention::RetentionReport::default());
        }
        assert_eq!(w.total_len(), 100);
    }

    #[test]
    fn retention_report_accounts_bytes_and_steps() {
        let policy = crate::retention::RetentionPolicy::unbounded().with_max_age_steps(1);
        let mut w = retention_warehouse(4, policy);
        // 32 u64 in 256-byte checksummed blocks: 31 in a full block plus
        // a short tail block of 1 item + CRC trailer = 256 + 16 bytes.
        w.add_batch(batch(1, 32)).unwrap();
        let r = w.add_batch(batch(2, 32)).unwrap();
        assert_eq!(r.retention.retired_partitions, 1);
        assert_eq!(r.retention.retired_items, 32);
        assert_eq!(r.retention.retired_bytes, 272);
        assert_eq!(r.retention.retired_steps, 1);
        assert_eq!(w.total_len(), 32);
    }

    #[test]
    fn windows_follow_retention() {
        let policy = crate::retention::RetentionPolicy::unbounded().with_max_age_steps(4);
        let mut w = retention_warehouse(3, policy);
        for step in 1..=12u64 {
            w.add_batch(batch(step, 6)).unwrap();
        }
        // Windows only cover retained steps.
        let windows = w.available_windows();
        assert!(!windows.is_empty());
        assert!(*windows.last().unwrap() <= 4, "windows {windows:?}");
        for &win in &windows {
            let parts = w.window_partitions(win).unwrap();
            let covered: u64 = parts.iter().map(|p| p.span()).sum();
            assert_eq!(covered, win);
        }
    }

    #[test]
    fn summary_memory_is_bounded() {
        let mut w = warehouse(10);
        for step in 1..=100u64 {
            w.add_batch(batch(step, 50)).unwrap();
        }
        // Lemma 8: O(kappa * log_kappa(T) / eps1) words.
        let bound = 3 * 10 * 3 * (w.config.beta1 + 2); // kappa * levels * entries
        assert!(
            w.summary_memory_words() <= bound,
            "{} words > bound {bound}",
            w.summary_memory_words()
        );
    }

    /// Flip one payload byte of a run's block in place: the silent
    /// corruption the per-block CRC trailer exists to catch.
    fn rot_block(dev: &MemDevice, file: hsq_storage::FileId, block: u64) {
        let mut buf = vec![0u8; dev.block_size()];
        let n = dev.read_block(file, block, &mut buf).unwrap();
        buf[n / 2] ^= 0x01;
        dev.write_block(file, block, &buf[..n]).unwrap();
    }

    #[test]
    fn quarantine_excludes_partition_and_accounts_mass() {
        let mut w = warehouse(4);
        for s in 1..=3u64 {
            w.add_batch(batch(s, 50)).unwrap();
        }
        let file = w.partitions_newest_first()[0].run.file();
        assert!(!w.is_quarantined(file));
        assert!(w.quarantine(file));
        assert!(!w.quarantine(file), "re-quarantine must be a no-op");
        assert!(!w.quarantine(999_999), "unknown file must be refused");
        assert!(w.is_quarantined(file));
        assert_eq!(w.quarantined_files(), vec![file]);
        // Suspect (not yet confirmed-lost) mass: the whole partition.
        assert_eq!(w.quarantined_mass(), 50);
        assert_eq!(w.lost_items(), 0);
        assert_eq!(w.total_len(), 150, "total_len shrinks only on repair");
        let healthy = w.healthy_partitions_newest_first();
        assert_eq!(healthy.len(), 2);
        assert!(healthy.iter().all(|p| p.run.file() != file));
        w.check_invariants().unwrap();
    }

    #[test]
    fn scrub_detects_bit_rot_then_repairs_salvaging_good_blocks() {
        let mut w = warehouse(4);
        // 62 items per partition = exactly two 31-item checksummed blocks.
        for s in 1..=2u64 {
            w.add_batch(batch(s, 62)).unwrap();
        }
        let file = w.partitions_newest_first()[0].run.file();
        rot_block(w.device(), file, 1);

        // Pass 1: verify phase finds the rotted block and quarantines.
        let r1 = w.scrub(1_000).unwrap();
        assert_eq!(r1.corrupt_blocks, 1);
        assert_eq!(r1.partitions_repaired, 0);
        assert_eq!(r1.quarantined_after, 1);
        assert!(w.is_quarantined(file));
        assert_eq!(w.quarantined_mass(), 62, "whole partition suspect");

        // Pass 2: repair phase salvages the clean block, confirms the
        // rotted one lost, and the partition leaves quarantine.
        let r2 = w.scrub(1_000).unwrap();
        assert_eq!(r2.partitions_repaired, 1);
        assert_eq!(r2.items_salvaged, 31);
        assert_eq!(r2.items_lost, 31);
        assert_eq!(r2.quarantined_after, 0);
        assert_eq!(w.lost_items(), 31);
        assert_eq!(w.quarantined_mass(), 31, "only confirmed loss remains");
        assert_eq!(w.total_len(), 2 * 62 - 31);
        assert!(!w.is_quarantined(file));
        w.check_invariants().unwrap();

        // The replacement run reads back clean and sorted.
        let healthy = w.healthy_partitions_newest_first();
        assert_eq!(healthy.len(), 2);
        for p in healthy {
            let items = p.run.read_all(&**w.device()).unwrap();
            assert!(items.windows(2).all(|x| x[0] <= x[1]));
        }

        // A further pass is pure verification: nothing left to heal.
        let r3 = w.scrub(1_000).unwrap();
        assert_eq!(r3.corrupt_blocks, 0);
        assert_eq!(r3.partitions_repaired, 0);
    }

    #[test]
    fn scrub_budget_bounds_reads_and_cursor_resumes() {
        let mut w = warehouse(8);
        // Four single-block partitions, all on level 0.
        for s in 1..=4u64 {
            w.add_batch(batch(s, 31)).unwrap();
        }
        // Rot the newest partition — the last position in level-major
        // order, reached only after the cursor advances past the others.
        let file = w.partitions_newest_first()[0].run.file();
        rot_block(w.device(), file, 0);

        let r1 = w.scrub(2).unwrap();
        assert_eq!(r1.blocks_verified, 2, "budget caps the pass");
        assert_eq!(r1.quarantined_after, 0, "rot not reached yet");
        let r2 = w.scrub(2).unwrap();
        assert_eq!(r2.quarantined_after, 1, "resumed pass reaches the rot");
        assert!(w.is_quarantined(file));
    }

    #[test]
    fn merge_skips_quarantined_level_and_invariants_hold() {
        // kappa = 2: a third level-0 partition would normally cascade.
        // With one of them quarantined the level must stay unmerged (a
        // merge would read the corrupt run), tolerated by the invariant
        // checker, and heal back to normal after repair.
        let mut w = warehouse(2);
        w.add_batch(batch(1, 62)).unwrap();
        w.add_batch(batch(2, 62)).unwrap();
        let file = w.partitions_newest_first()[0].run.file();
        rot_block(w.device(), file, 0);
        assert!(w.quarantine(file));

        w.add_batch(batch(3, 62)).unwrap();
        assert!(
            w.level(0).len() > w.config.kappa,
            "quarantined level must not merge"
        );
        w.check_invariants().unwrap();

        // Repair, then the next step's cascade drains the level.
        let r = w.scrub(1_000).unwrap();
        assert_eq!(r.partitions_repaired, 1);
        w.add_batch(batch(4, 62)).unwrap();
        assert!(w.level(0).len() <= w.config.kappa);
        w.check_invariants().unwrap();
        assert_eq!(w.total_len(), 4 * 62 - r.items_lost);
    }

    #[test]
    fn retention_expiry_clears_quarantine() {
        let policy = crate::retention::RetentionPolicy::unbounded().with_max_age_steps(2);
        let mut w = retention_warehouse(4, policy);
        w.add_batch(batch(1, 31)).unwrap();
        let file = w.partitions_newest_first()[0].run.file();
        assert!(w.quarantine(file));
        // Two more steps expire step 1, taking its quarantine entry along.
        for s in 2..=4u64 {
            w.add_batch(batch(s, 31)).unwrap();
        }
        assert!(!w.is_quarantined(file));
        assert_eq!(w.quarantined_mass(), 0);
        w.check_invariants().unwrap();
    }
}
