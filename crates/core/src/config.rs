//! Algorithm configuration.
//!
//! Mirrors the paper's Algorithm 1 (*Initialize Data Structures*):
//! given the error parameter `ε`, set `ε₁ = ε/2`, `ε₂ = ε/4`,
//! `β₁ = ⌈1/ε₁ + 1⌉`, `β₂ = ⌈1/ε₂ + 1⌉`, then initialize the historical
//! structures with `(ε₁, β₁)` and the stream structures with `(ε₂, β₂)`.
//! The merge threshold `κ` (§2.1) and operational knobs (external-sort
//! memory, query block-cache size, retention policy) are also carried
//! here.

use std::fmt;

use crate::retention::RetentionPolicy;
use hsq_sketch::{SketchCompaction, SketchKind};
use hsq_storage::RetryPolicy;

/// Typed rejection of an invalid configuration value, so embedders can
/// surface misconfiguration without parsing panic strings. The builder's
/// panicking setters go through the same validation and panic with this
/// error's `Display` message.
#[derive(Clone, Debug, PartialEq)]
pub enum ConfigError {
    /// The overall error parameter must be finite and in `(0, 1]` —
    /// NaN, infinities, zero and negatives would all turn the downstream
    /// `f64 → usize` capacity formulas (KLL's `⌈2·budget/ε⌉`, GK's
    /// `⌊1/2ε⌋` cadence) into garbage sizes.
    InvalidEpsilon(f64),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::InvalidEpsilon(e) => {
                write!(f, "epsilon must be finite and in (0, 1], got {e}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Validate an overall error parameter `ε`: finite and in `(0, 1]`.
///
/// The single gate for every path an ε can enter the system through —
/// the [`HsqConfigBuilder`] setters and values decoded from service
/// handshake frames (a coordinator must reject a garbage ε before using
/// it to size acceptance windows, exactly as a local builder would).
/// `NaN` fails every comparison, so the check is an explicit accept-list
/// rather than a rejection of `epsilon <= 0.0`.
pub fn validate_epsilon(epsilon: f64) -> Result<f64, ConfigError> {
    if epsilon.is_finite() && epsilon > 0.0 && epsilon <= 1.0 {
        Ok(epsilon)
    } else {
        Err(ConfigError::InvalidEpsilon(epsilon))
    }
}

/// Configuration for [`crate::HistStreamQuantiles`] and its parts.
#[derive(Clone, Debug, PartialEq)]
pub struct HsqConfig {
    /// Historical-summary error parameter (`ε₁ = ε/2` in Algorithm 1).
    pub epsilon1: f64,
    /// Stream-summary error parameter (`ε₂ = ε/4` in Algorithm 1).
    pub epsilon2: f64,
    /// Per-partition summary length `β₁ = ⌈1/ε₁ + 1⌉`.
    pub beta1: usize,
    /// Stream summary length `β₂ = ⌈1/ε₂ + 1⌉`.
    pub beta2: usize,
    /// Merge threshold `κ ≥ 2`: a level holding more than `κ` partitions
    /// collapses into one partition at the next level (§2.1).
    pub kappa: usize,
    /// Working memory (in items) for external sort of incoming batches.
    pub sort_budget_items: usize,
    /// Decoded-block cache capacity (blocks) for query processing — the
    /// paper's single-block optimization (§2.4).
    pub cache_blocks: usize,
    /// Answer queries by probing partitions in parallel (paper §4's
    /// future-work direction; see `crate::parallel`).
    pub parallel_query: bool,
    /// Overlapped-I/O depth: worker threads of the per-warehouse
    /// [`hsq_storage::IoScheduler`]. `0` (the default) keeps every device
    /// call synchronous; `> 0` overlaps archival block writes and fsync
    /// barriers with the ingest path's CPU work (run encoding, summary
    /// construction, neighboring shards) and turns manifest-log syncs
    /// into completion barriers. Queries and recovery are unaffected —
    /// the engine inserts barriers before anything reads a pending run.
    pub io_depth: usize,
    /// Retention limits enforced on every step boundary (see
    /// [`crate::retention`]). Default: unbounded (the paper's grow-only
    /// warehouse).
    pub retention: RetentionPolicy,
    /// Retry policy for transient I/O failures. Applied to every
    /// scheduler worker (`io_depth > 0`) via
    /// [`hsq_storage::IoScheduler::with_retry`]; synchronous device
    /// reads retry the same way when the device is wrapped in
    /// [`hsq_storage::RetryDevice`], and the engine's query loop
    /// re-runs a whole probe on a transient error under this policy's
    /// attempt cap. Default: [`RetryPolicy::none`] (fail fast, the
    /// pre-existing behavior).
    pub retry: RetryPolicy,
    /// Strict corruption handling: when `true`, queries over a warehouse
    /// with quarantined (confirmed-corrupt) partitions return the
    /// corruption error instead of a degraded answer with widened rank
    /// bounds. Default `false` (answer with explicit bound widening).
    pub strict: bool,
    /// Which [`hsq_sketch::QuantileSketch`] backend absorbs the live
    /// stream: [`SketchKind::Gk`] (the paper-faithful default) or
    /// [`SketchKind::Kll`] (O(1) amortized updates, exact merges). The
    /// builder default honors the `HSQ_SKETCH` environment variable
    /// (`"gk"` / `"kll"`), which is how CI runs the whole property suite
    /// under both backends without per-test plumbing.
    pub sketch: SketchKind,
    /// Compaction policy for the KLL stream sketch (ignored by GK):
    /// [`SketchCompaction::Deterministic`] (the default; alternating
    /// parity per level) or [`SketchCompaction::Randomized`] (seeded
    /// coin-flip parity, the classic KLL analysis). The builder default
    /// honors the `HSQ_COMPACTION` / `HSQ_SEED` environment variables so
    /// CI can sweep the randomized mode without per-test plumbing; both
    /// modes replay byte-identically for a fixed seed.
    pub sketch_compaction: SketchCompaction,
}

impl HsqConfig {
    /// Start building a config from the overall error parameter `ε`.
    pub fn builder() -> HsqConfigBuilder {
        HsqConfigBuilder::default()
    }

    /// The paper's Algorithm 1 with defaults for operational knobs.
    pub fn with_epsilon(epsilon: f64) -> Self {
        Self::builder().epsilon(epsilon).build()
    }

    /// The overall error parameter `ε = max(2ε₁, 4ε₂)` (inverse of
    /// Algorithm 1's split). Quick responses err by up to `1.5·ε·N`.
    pub fn epsilon(&self) -> f64 {
        (2.0 * self.epsilon1).max(4.0 * self.epsilon2)
    }

    /// The error parameter governing *accurate* responses: `4ε₂`.
    ///
    /// The accurate response's error is purely stream-side — `ρ₁` is
    /// computed exactly on disk, only the stream rank `ρ₂` is approximate
    /// (Lemma 5's argument) — so its acceptance window is `4ε₂·m`.
    /// Under Algorithm 1's split this equals `ε` exactly; under
    /// memory-driven budgeting (where `ε₁` may be coarser) it keeps the
    /// accuracy independent of `κ`, which is what the paper's Figure 5
    /// observes. Historical summary resolution `ε₁` then only affects
    /// query I/O (wider initial filters), not the answer's error.
    pub fn query_epsilon(&self) -> f64 {
        4.0 * self.epsilon2
    }

    /// Explicit `(ε₁, ε₂)` construction, used when memory budgeting picks
    /// the two error parameters independently (see [`crate::budget`]).
    pub fn with_epsilons(epsilon1: f64, epsilon2: f64) -> Self {
        assert!(epsilon1 > 0.0 && epsilon1 <= 1.0, "epsilon1 in (0,1]");
        assert!(epsilon2 > 0.0 && epsilon2 <= 1.0, "epsilon2 in (0,1]");
        let beta1 = (1.0 / epsilon1 + 1.0).ceil() as usize;
        let beta2 = (1.0 / epsilon2 + 1.0).ceil() as usize;
        HsqConfig {
            epsilon1,
            epsilon2,
            beta1,
            beta2,
            kappa: 10,
            sort_budget_items: 1 << 20,
            cache_blocks: 64,
            parallel_query: false,
            io_depth: 0,
            retention: RetentionPolicy::unbounded(),
            retry: RetryPolicy::none(),
            strict: false,
            sketch: SketchKind::from_env_or(SketchKind::Gk),
            sketch_compaction: SketchCompaction::from_env_or(SketchCompaction::Deterministic),
        }
    }
}

/// Builder for [`HsqConfig`].
#[derive(Clone, Debug)]
pub struct HsqConfigBuilder {
    epsilon: f64,
    kappa: usize,
    sort_budget_items: usize,
    cache_blocks: usize,
    parallel_query: bool,
    io_depth: usize,
    retention: RetentionPolicy,
    retry: RetryPolicy,
    strict: bool,
    sketch: SketchKind,
    sketch_compaction: SketchCompaction,
}

impl Default for HsqConfigBuilder {
    fn default() -> Self {
        HsqConfigBuilder {
            epsilon: 0.01,
            kappa: 10,
            sort_budget_items: 1 << 20,
            cache_blocks: 64,
            parallel_query: false,
            io_depth: 0,
            retention: RetentionPolicy::unbounded(),
            retry: RetryPolicy::none(),
            strict: false,
            sketch: SketchKind::from_env_or(SketchKind::Gk),
            sketch_compaction: SketchCompaction::from_env_or(SketchCompaction::Deterministic),
        }
    }
}

impl HsqConfigBuilder {
    /// Overall error parameter `ε ∈ (0, 1]`: accurate quantile queries are
    /// answered within rank error `εm`, `m` = stream size.
    ///
    /// Panics on invalid input; use [`Self::try_epsilon`] for a typed
    /// rejection.
    pub fn epsilon(self, epsilon: f64) -> Self {
        match self.try_epsilon(epsilon) {
            Ok(b) => b,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`Self::epsilon`]: rejects NaN, infinities and
    /// anything outside `(0, 1]` with [`ConfigError::InvalidEpsilon`]
    /// instead of panicking. `NaN` fails every comparison, so the check
    /// must be an explicit accept-list — `is_finite` plus the open/closed
    /// interval test — rather than a rejection of `epsilon <= 0.0`.
    pub fn try_epsilon(mut self, epsilon: f64) -> Result<Self, ConfigError> {
        self.epsilon = validate_epsilon(epsilon)?;
        Ok(self)
    }

    /// Merge threshold `κ ≥ 2` (paper default in experiments: 10).
    pub fn merge_threshold(mut self, kappa: usize) -> Self {
        assert!(kappa >= 2, "kappa must be >= 2");
        self.kappa = kappa;
        self
    }

    /// Items of working memory for external sort.
    pub fn sort_budget_items(mut self, items: usize) -> Self {
        assert!(items >= 2, "sort budget must be >= 2 items");
        self.sort_budget_items = items;
        self
    }

    /// Blocks of decoded cache available to each query.
    pub fn cache_blocks(mut self, blocks: usize) -> Self {
        assert!(blocks >= 1, "cache must hold at least one block");
        self.cache_blocks = blocks;
        self
    }

    /// Probe partitions in parallel during accurate queries.
    pub fn parallel_query(mut self, yes: bool) -> Self {
        self.parallel_query = yes;
        self
    }

    /// Overlapped-I/O worker depth (`0` = synchronous device calls; see
    /// [`HsqConfig::io_depth`]).
    pub fn io_depth(mut self, depth: usize) -> Self {
        self.io_depth = depth;
        self
    }

    /// Retention limits enforced on every step boundary.
    pub fn retention(mut self, policy: RetentionPolicy) -> Self {
        self.retention = policy;
        self
    }

    /// Retry policy for transient I/O failures (see
    /// [`HsqConfig::retry`]). Default: no retries.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Strict corruption handling (see [`HsqConfig::strict`]): error out
    /// instead of answering degraded queries over quarantined data.
    pub fn strict(mut self, yes: bool) -> Self {
        self.strict = yes;
        self
    }

    /// Select the stream-sketch backend (see [`HsqConfig::sketch`]).
    pub fn sketch(mut self, kind: SketchKind) -> Self {
        self.sketch = kind;
        self
    }

    /// Select the KLL compaction policy (see
    /// [`HsqConfig::sketch_compaction`]); no effect under GK.
    pub fn sketch_compaction(mut self, mode: SketchCompaction) -> Self {
        self.sketch_compaction = mode;
        self
    }

    /// Finalize, applying Algorithm 1's parameter split.
    pub fn build(self) -> HsqConfig {
        let mut cfg = HsqConfig::with_epsilons(self.epsilon / 2.0, self.epsilon / 4.0);
        cfg.sketch = self.sketch;
        cfg.sketch_compaction = self.sketch_compaction;
        cfg.kappa = self.kappa;
        cfg.sort_budget_items = self.sort_budget_items;
        cfg.cache_blocks = self.cache_blocks;
        cfg.parallel_query = self.parallel_query;
        cfg.io_depth = self.io_depth;
        cfg.retention = self.retention;
        cfg.retry = self.retry;
        cfg.strict = self.strict;
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_one_split() {
        let cfg = HsqConfig::with_epsilon(0.5);
        assert!((cfg.epsilon1 - 0.25).abs() < 1e-12);
        assert!((cfg.epsilon2 - 0.125).abs() < 1e-12);
        assert_eq!(cfg.beta1, 5); // ceil(1/0.25 + 1) = 5
        assert_eq!(cfg.beta2, 9); // ceil(1/0.125 + 1) = 9
        assert!((cfg.epsilon() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn figure3_parameters() {
        // The paper's worked example (Figure 3): eps = 1/2 -> summaries of
        // length 5 per partition and 9 for the stream.
        let cfg = HsqConfig::with_epsilon(0.5);
        assert_eq!(cfg.beta1, 5);
        assert_eq!(cfg.beta2, 9);
    }

    #[test]
    fn builder_knobs() {
        let cfg = HsqConfig::builder()
            .epsilon(0.1)
            .merge_threshold(3)
            .sort_budget_items(1024)
            .cache_blocks(7)
            .parallel_query(true)
            .io_depth(4)
            .build();
        assert_eq!(cfg.kappa, 3);
        assert_eq!(cfg.sort_budget_items, 1024);
        assert_eq!(cfg.cache_blocks, 7);
        assert!(cfg.parallel_query);
        assert_eq!(cfg.io_depth, 4);
        assert_eq!(HsqConfig::with_epsilon(0.1).io_depth, 0, "sync default");
    }

    #[test]
    fn retry_and_strict_knobs() {
        let cfg = HsqConfig::builder()
            .epsilon(0.1)
            .retry(RetryPolicy::standard(5))
            .strict(true)
            .build();
        assert_eq!(cfg.retry.max_retries, 5);
        assert!(cfg.strict);
        let default = HsqConfig::with_epsilon(0.1);
        assert_eq!(default.retry, RetryPolicy::none(), "fail-fast default");
        assert!(!default.strict);
    }

    #[test]
    fn sketch_knob() {
        let cfg = HsqConfig::builder()
            .epsilon(0.1)
            .sketch(SketchKind::Kll)
            .build();
        assert_eq!(cfg.sketch, SketchKind::Kll);
        let gk = HsqConfig::builder()
            .epsilon(0.1)
            .sketch(SketchKind::Gk)
            .build();
        assert_eq!(gk.sketch, SketchKind::Gk);
        // The default honors HSQ_SKETCH (the CI matrix may set it), with
        // GK as the fallback.
        let default = HsqConfig::with_epsilon(0.1);
        assert_eq!(default.sketch, SketchKind::from_env_or(SketchKind::Gk));
    }

    #[test]
    #[should_panic(expected = "kappa")]
    fn kappa_one_rejected() {
        let _ = HsqConfig::builder().merge_threshold(1);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn zero_epsilon_rejected() {
        let _ = HsqConfig::builder().epsilon(0.0);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn nan_epsilon_rejected() {
        let _ = HsqConfig::builder().epsilon(f64::NAN);
    }

    #[test]
    fn try_epsilon_is_typed() {
        for bad in [0.0, -0.5, 1.5, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = HsqConfig::builder().try_epsilon(bad).unwrap_err();
            match err {
                ConfigError::InvalidEpsilon(e) => {
                    assert!(e.is_nan() && bad.is_nan() || e == bad)
                }
            }
            assert!(err.to_string().contains("epsilon"));
        }
        let cfg = HsqConfig::builder().try_epsilon(0.2).unwrap().build();
        assert!((cfg.epsilon() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn sketch_compaction_knob() {
        let cfg = HsqConfig::builder()
            .epsilon(0.1)
            .sketch(SketchKind::Kll)
            .sketch_compaction(SketchCompaction::Randomized { seed: 7 })
            .build();
        assert_eq!(
            cfg.sketch_compaction,
            SketchCompaction::Randomized { seed: 7 }
        );
        // The default honors HSQ_COMPACTION/HSQ_SEED (the CI matrix may
        // set them), with deterministic alternation as the fallback.
        let default = HsqConfig::with_epsilon(0.1);
        assert_eq!(
            default.sketch_compaction,
            SketchCompaction::from_env_or(SketchCompaction::Deterministic)
        );
    }
}
