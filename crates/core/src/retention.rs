//! Time-windowed retention: TTL/byte/count policies bounding the
//! warehouse.
//!
//! **Extension beyond the paper**, whose warehouse model only ever grows
//! (§1.1). A production union-quantile service must bound storage: real
//! deployments answer "p99 over the last 24 hours" while partitions older
//! than the retention horizon age out. A [`RetentionPolicy`] carries up to
//! three composable limits — maximum age in time steps, maximum total
//! partition bytes, maximum partition count — and the warehouse enforces
//! *all* of them on every step boundary (the most restrictive limit
//! wins), retiring whole partitions oldest-first.
//!
//! Design rules that keep the estimator honest as data is dropped:
//!
//! * **Partition-aligned expiry.** A partition is only retired when *all*
//!   of it is out of policy; retention never splits a partition. The
//!   retained set is therefore always a contiguous suffix of the step
//!   history, so window queries ([`crate::engine::HistStreamQuantiles::
//!   quantile_in_window`]) keep their partition-alignment semantics and
//!   the `ε·m` guarantee holds over the *retained* union — exactly the
//!   window-query argument of §2.4 applied to the retention horizon.
//! * **Deferred deletion.** Retired partitions go through the same
//!   [`crate::warehouse::PinGuard`] machinery as cascade merges: a file
//!   pinned by a live [`crate::engine::EngineSnapshot`] is never deleted
//!   under the reader — expiry defers until the last pin drops, so
//!   in-flight queries are never corrupted.
//! * **Stream/history boundary.** The live stream is always the *current*
//!   step — age zero — so no retention policy can expire stream mass.
//!   Expiry only ever removes archived history; the stream sketch needs
//!   no adjustment (see [`crate::stream`]'s module docs).
//!
//! Retention pairs with [`crate::manifest::ManifestLog`]: per-step delta
//! records mark partitions retired, and compaction rewrites the log so
//! recovery replays only live partitions.

/// Composable retention limits applied by the warehouse on every step
/// boundary. The default ([`RetentionPolicy::unbounded`]) retains
/// everything, reproducing the paper's grow-only model.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RetentionPolicy {
    /// Keep only the newest `max_age_steps` time steps: a partition is
    /// expired once its newest step (`last_step`) falls out of the
    /// `(steps − max_age_steps, steps]` window. Must be ≥ 1.
    pub max_age_steps: Option<u64>,
    /// Keep total partition bytes at or under this cap, retiring the
    /// oldest partitions while over it. The newest partition is never
    /// retired, so a single partition larger than the cap can transiently
    /// exceed it (choose the cap well above one step's bytes).
    pub max_bytes: Option<u64>,
    /// Keep at most this many partitions, retiring oldest-first.
    /// Must be ≥ 1.
    pub max_partitions: Option<usize>,
}

impl RetentionPolicy {
    /// Retain everything (the paper's grow-only warehouse).
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// Keep only the newest `steps` time steps (TTL in step units).
    pub fn with_max_age_steps(mut self, steps: u64) -> Self {
        assert!(steps >= 1, "max_age_steps must be >= 1");
        self.max_age_steps = Some(steps);
        self
    }

    /// Cap total partition bytes.
    pub fn with_max_bytes(mut self, bytes: u64) -> Self {
        assert!(bytes >= 1, "max_bytes must be >= 1");
        self.max_bytes = Some(bytes);
        self
    }

    /// Cap the number of live partitions.
    pub fn with_max_partitions(mut self, partitions: usize) -> Self {
        assert!(partitions >= 1, "max_partitions must be >= 1");
        self.max_partitions = Some(partitions);
        self
    }

    /// True iff no limit is set (retention disabled).
    pub fn is_unbounded(&self) -> bool {
        self.max_age_steps.is_none() && self.max_bytes.is_none() && self.max_partitions.is_none()
    }
}

/// What one retention pass retired (part of
/// [`crate::warehouse::UpdateReport`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RetentionReport {
    /// Partitions retired by this pass.
    pub retired_partitions: usize,
    /// Items dropped from the historical total.
    pub retired_items: u64,
    /// On-device bytes released (deferred while snapshots pin the files).
    pub retired_bytes: u64,
    /// Time steps whose data was dropped.
    pub retired_steps: u64,
}

impl RetentionReport {
    /// Fold another pass's counts into this one.
    pub fn absorb(&mut self, other: RetentionReport) {
        self.retired_partitions += other.retired_partitions;
        self.retired_items += other.retired_items;
        self.retired_bytes += other.retired_bytes;
        self.retired_steps += other.retired_steps;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_unbounded() {
        assert!(RetentionPolicy::default().is_unbounded());
        assert!(RetentionPolicy::unbounded().is_unbounded());
    }

    #[test]
    fn limits_compose() {
        let p = RetentionPolicy::unbounded()
            .with_max_age_steps(24)
            .with_max_bytes(1 << 20)
            .with_max_partitions(16);
        assert!(!p.is_unbounded());
        assert_eq!(p.max_age_steps, Some(24));
        assert_eq!(p.max_bytes, Some(1 << 20));
        assert_eq!(p.max_partitions, Some(16));
    }

    #[test]
    #[should_panic(expected = "max_age_steps")]
    fn zero_age_rejected() {
        let _ = RetentionPolicy::unbounded().with_max_age_steps(0);
    }

    #[test]
    #[should_panic(expected = "max_partitions")]
    fn zero_partitions_rejected() {
        let _ = RetentionPolicy::unbounded().with_max_partitions(0);
    }

    #[test]
    fn report_absorbs() {
        let mut a = RetentionReport {
            retired_partitions: 1,
            retired_items: 10,
            retired_bytes: 80,
            retired_steps: 2,
        };
        a.absorb(RetentionReport {
            retired_partitions: 2,
            retired_items: 5,
            retired_bytes: 40,
            retired_steps: 1,
        });
        assert_eq!(a.retired_partitions, 3);
        assert_eq!(a.retired_items, 15);
        assert_eq!(a.retired_bytes, 120);
        assert_eq!(a.retired_steps, 3);
    }
}
