//! Stream processing and the stream summary `SS` (paper §2.2, Algorithm 4).
//!
//! The live stream `R` is absorbed by a pluggable
//! [`hsq_sketch::QuantileSketch`] backend — Greenwald–Khanna (the
//! paper-faithful default) or the KLL compactor ladder, selected by
//! [`hsq_sketch::SketchKind`] via `HsqConfig::builder().sketch(..)`. When
//! a query arrives, `StreamSummary` extracts `β₂` elements at approximate
//! ranks `i·ε₂·m` (`StreamSummary` in Algorithm 4). Lemma 1 needs the
//! one-sided guarantee `i·ε₂·m ≤ rank(SS[i]) ≤ (i+1)·ε₂·m`; the paper
//! obtains it by quoting Theorem 1's one-sided form. Textbook GK is
//! two-sided (`±εn`), so we run the sketch at `ε₂/2` and, in addition,
//! record the sketch's *tracked* rank interval `[rmin, rmax]` for every
//! extracted element — bounds that hold unconditionally and are what the
//! combined-summary computation consumes (see `crate::bounds`). The KLL
//! backend reports tracked intervals of the same shape (widened by its
//! exact compaction-error counter), so everything downstream of the
//! extract — seeding, bisection, union bounds — is backend-agnostic.
//!
//! ## Stream/history boundary under retention
//!
//! The live stream is always the *current* time step: its age is zero by
//! definition, so no [`crate::retention::RetentionPolicy`] can expire
//! stream mass — expiry acts purely on archived partitions, at step
//! boundaries, before the stream's contents are ever archived. The
//! sketch therefore needs no expired-mass accounting: `m` always counts
//! exactly the live elements, every one of which is inside any retention
//! window, and `StreamReset` (end of step) empties the sketch at the
//! same boundary where its data enters the warehouse as the newest —
//! hence last-to-expire — partition. Queries over the retained union
//! keep Theorem 2's `ε·m` error with `m` the live stream size.

use hsq_sketch::{AnySketch, QuantileSketch, RankEstimate, SketchCompaction, SketchKind};
use hsq_storage::Item;

/// One extracted stream-summary element with rigorous rank bounds in `R`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SsEntry<T> {
    /// The element value (an element that appeared in the stream).
    pub value: T,
    /// Lower bound on `rank(value, R)`.
    pub rmin: u64,
    /// Upper bound on `rank(value, R)`.
    pub rmax: u64,
}

/// The extracted stream summary `SS`: `β₂` entries in nondecreasing value
/// order, plus the stream size `m`.
#[derive(Clone, Debug)]
pub struct StreamSummary<T> {
    entries: Vec<SsEntry<T>>,
    m: u64,
}

impl<T> Default for StreamSummary<T> {
    fn default() -> Self {
        StreamSummary {
            entries: Vec::new(),
            m: 0,
        }
    }
}

impl<T: Item> StreamSummary<T> {
    /// Entries in value order.
    pub fn entries(&self) -> &[SsEntry<T>] {
        &self.entries
    }

    /// Stream size `m` at extraction time.
    pub fn stream_len(&self) -> u64 {
        self.m
    }

    /// Largest entry with `value <= v`.
    pub fn last_le(&self, v: T) -> Option<&SsEntry<T>> {
        let idx = self.entries.partition_point(|e| e.value <= v);
        idx.checked_sub(1).map(|i| &self.entries[i])
    }

    /// Smallest entry with `value > v`.
    pub fn first_gt(&self, v: T) -> Option<&SsEntry<T>> {
        let idx = self.entries.partition_point(|e| e.value <= v);
        self.entries.get(idx)
    }

    /// Rigorous bounds on `rank(z, R)` from the summary alone:
    /// `lo` from the last entry ≤ z, `hi` from the first entry > z.
    pub fn rank_bounds(&self, z: T) -> (u64, u64) {
        let lo = self.last_le(z).map(|e| e.rmin).unwrap_or(0);
        let hi = self
            .first_gt(z)
            .map(|e| e.rmax.saturating_sub(1))
            .unwrap_or(self.m);
        (lo.min(hi), hi.max(lo))
    }

    /// Merge with the summary of a *disjoint* stream: ranks over a
    /// disjoint union add, so each merged entry carries
    /// `Σ rank_bounds(value)` of the two inputs and the result summarizes
    /// `R₁ ∪ R₂` (size `m₁ + m₂`) with the summed uncertainty.
    ///
    /// This is what makes per-shard stream summaries composable: a
    /// [`crate::sharded::ShardedSnapshot`] can expose one global stream
    /// view no matter how many shards contributed. Associative and
    /// commutative (up to bound tightness).
    ///
    /// Implemented as one linear two-pointer sweep over the two entry
    /// lists (both already in value order): for each distinct value the
    /// sweep carries the running "last entry ≤ v" lower bound per side
    /// and reads the "first entry > v" upper bound from the unconsumed
    /// head — the same quantities [`StreamSummary::rank_bounds`] would
    /// binary-search for, at O(β₂) total instead of O(β₂ log β₂).
    pub fn merge(&self, other: &Self) -> Self {
        if self.m == 0 {
            return other.clone();
        }
        if other.m == 0 {
            return self.clone();
        }
        let (a, b) = (&self.entries[..], &other.entries[..]);
        let mut entries = Vec::with_capacity(a.len() + b.len());
        let (mut ja, mut jb) = (0usize, 0usize); // heads: first entry > v
        let (mut la, mut lb) = (0u64, 0u64); // rmin of last entry ≤ v
        while ja < a.len() || jb < b.len() {
            let v = match (a.get(ja), b.get(jb)) {
                (Some(x), Some(y)) => x.value.min(y.value),
                (Some(x), None) => x.value,
                (None, Some(y)) => y.value,
                (None, None) => unreachable!(),
            };
            while ja < a.len() && a[ja].value <= v {
                la = a[ja].rmin;
                ja += 1;
            }
            while jb < b.len() && b[jb].value <= v {
                lb = b[jb].rmin;
                jb += 1;
            }
            let ha = a
                .get(ja)
                .map(|e| e.rmax.saturating_sub(1))
                .unwrap_or(self.m);
            let hb = b
                .get(jb)
                .map(|e| e.rmax.saturating_sub(1))
                .unwrap_or(other.m);
            // Per-side clamp, exactly as `rank_bounds` applies it.
            let (a_lo, a_hi) = (la.min(ha), ha.max(la));
            let (b_lo, b_hi) = (lb.min(hb), hb.max(lb));
            entries.push(SsEntry {
                value: v,
                rmin: a_lo + b_lo,
                rmax: a_hi + b_hi,
            });
        }
        StreamSummary {
            entries,
            m: self.m + other.m,
        }
    }
}

#[cfg(test)]
impl<T: Item> StreamSummary<T> {
    /// Test-only constructor for replaying fixtures (e.g. Figure 3's
    /// idealized stream summary).
    pub(crate) fn from_parts_for_tests(entries: Vec<SsEntry<T>>, m: u64) -> Self {
        StreamSummary { entries, m }
    }
}

/// Live processor for the current time step's stream (Algorithm 4),
/// generic at runtime over the [`hsq_sketch::QuantileSketch`] backend.
#[derive(Clone, Debug)]
pub struct StreamProcessor<T: Copy + Ord> {
    sketch: AnySketch<T>,
    /// The *configured* backend: [`StreamProcessor::reset`] re-creates
    /// the sketch at this kind, so a recovered foreign-backend sketch
    /// switches over at the next step boundary.
    kind: SketchKind,
    /// Configured KLL compaction policy (carried so [`Self::reset`] and
    /// cross-backend switchovers preserve it; GK ignores it).
    compaction: SketchCompaction,
    epsilon2: f64,
    beta2: usize,
}

impl<T: Item> StreamProcessor<T> {
    /// `StreamInit(ε₂, β₂)` on the paper-faithful GK backend: the
    /// internal sketch runs at `ε₂/2` (see module docs).
    pub fn new(epsilon2: f64, beta2: usize) -> Self {
        Self::with_kind(SketchKind::Gk, epsilon2, beta2)
    }

    /// `StreamInit(ε₂, β₂)` on an explicitly chosen sketch backend.
    pub fn with_kind(kind: SketchKind, epsilon2: f64, beta2: usize) -> Self {
        Self::with_compaction(kind, SketchCompaction::Deterministic, epsilon2, beta2)
    }

    /// `StreamInit(ε₂, β₂)` on an explicitly chosen backend *and* KLL
    /// compaction policy (GK ignores the policy).
    pub fn with_compaction(
        kind: SketchKind,
        compaction: SketchCompaction,
        epsilon2: f64,
        beta2: usize,
    ) -> Self {
        StreamProcessor {
            sketch: AnySketch::with_compaction(kind, epsilon2 / 2.0, compaction),
            kind,
            compaction,
            epsilon2,
            beta2,
        }
    }

    /// Adopt a recovered sketch (whose kind may differ from the
    /// configured `kind` when a manifest written under one backend is
    /// recovered under another — it is used as-is until the next
    /// [`StreamProcessor::reset`]).
    pub(crate) fn from_recovered(
        sketch: AnySketch<T>,
        kind: SketchKind,
        compaction: SketchCompaction,
        epsilon2: f64,
        beta2: usize,
    ) -> Self {
        StreamProcessor {
            sketch,
            kind,
            compaction,
            epsilon2,
            beta2,
        }
    }

    /// `StreamUpdate(e)`: absorb one streaming element.
    #[inline]
    pub fn update(&mut self, e: T) {
        self.sketch.insert(e);
    }

    /// Absorb a whole batch at once: one linear merge into the sketch
    /// (GK — sorts `batch` in place via the radix kernel) or a buffer
    /// append (KLL) instead of `batch.len()` scalar updates. Same `ε₂`
    /// guarantee; see [`hsq_sketch::QuantileSketch::insert_batch`].
    #[inline]
    pub fn ingest_batch(&mut self, batch: &mut [T]) {
        self.sketch.insert_batch(batch);
    }

    /// [`StreamProcessor::ingest_batch`] for an already-sorted batch.
    #[inline]
    pub fn ingest_sorted_batch(&mut self, batch: &[T]) {
        self.sketch.insert_sorted_batch(batch);
    }

    /// `StreamUpdate(e)` with multiplicity: absorb `w` copies of one
    /// element at once (sampled/pre-aggregated telemetry). Counts `w`
    /// toward the stream size `m`; every downstream guarantee is `ε·m`
    /// with `m` the *summed weight*. KLL decomposes the weight onto its
    /// levels in O(log w); GK splices it in with exact rank arithmetic.
    #[inline]
    pub fn update_weighted(&mut self, e: T, w: u64) {
        self.sketch.insert_weighted(e, w);
    }

    /// Absorb a whole weighted batch at once (may reorder `batch`).
    #[inline]
    pub fn ingest_weighted_batch(&mut self, batch: &mut [(T, u64)]) {
        self.sketch.insert_weighted_batch(batch);
    }

    /// [`StreamProcessor::ingest_weighted_batch`] for pairs already
    /// sorted by value.
    #[inline]
    pub fn ingest_weighted_sorted_batch(&mut self, batch: &[(T, u64)]) {
        self.sketch.insert_weighted_sorted_batch(batch);
    }

    /// Elements in the current stream (`m`).
    pub fn len(&self) -> u64 {
        self.sketch.len()
    }

    /// True iff the current stream is empty.
    pub fn is_empty(&self) -> bool {
        self.sketch.is_empty()
    }

    /// Direct access to the underlying sketch (rank bounds for query
    /// refinement — Algorithm 8's ρ₂ computation uses these).
    pub fn sketch(&self) -> &AnySketch<T> {
        &self.sketch
    }

    /// The backend this processor is configured to run on. The live
    /// sketch may transiently differ right after a cross-backend
    /// recovery; see [`StreamProcessor::reset`].
    pub fn kind(&self) -> SketchKind {
        self.kind
    }

    /// The configured KLL compaction policy.
    pub fn compaction(&self) -> SketchCompaction {
        self.compaction
    }

    /// Words of memory used by the sketch (Lemma 9's budget unit).
    pub fn memory_words(&self) -> usize {
        self.sketch.memory_words()
    }

    /// `StreamSummary()`: extract `SS` (Algorithm 4 lines 6–11).
    ///
    /// GK answers each of the `β₂` rank targets from its tuple list
    /// directly; KLL compiles its ladder into a cumulative view once and
    /// answers every target from it, so the extract stays O(size + β₂
    /// log size) rather than re-flattening per target.
    pub fn summary(&self) -> StreamSummary<T> {
        let m = self.sketch.len();
        if m == 0 {
            return StreamSummary {
                entries: Vec::new(),
                m: 0,
            };
        }
        let min = self.sketch.min().expect("non-empty");
        let max = self.sketch.max().expect("non-empty");
        match &self.sketch {
            AnySketch::Gk(gk) => {
                self.summary_from(m, min, max, |r| gk.rank_query(r).expect("non-empty"))
            }
            AnySketch::Kll(kll) => {
                let cum = kll.cumulative();
                self.summary_from(m, min, max, |r| cum.rank_query(r).expect("non-empty"))
            }
        }
    }

    /// The backend-independent extract loop behind
    /// [`StreamProcessor::summary`]: probe `β₂` rank targets through
    /// `rank_query`, anchor the exact extremes, and monotonize.
    fn summary_from(
        &self,
        m: u64,
        min: T,
        max: T,
        rank_query: impl Fn(u64) -> RankEstimate<T>,
    ) -> StreamSummary<T> {
        let mut entries = Vec::with_capacity(self.beta2 + 1);
        // SS[0]: the smallest element in the stream so far (tracked
        // exactly by the sketch). rmin = 1; rank(min) may exceed 1 with
        // duplicates, but 1 is the sound lower bound and `rmax = 1` makes
        // the "elements strictly below min" upper contribution zero.
        entries.push(SsEntry {
            value: min,
            rmin: 1,
            rmax: 1,
        });
        for i in 1..self.beta2 as u64 {
            let target = ((i as f64) * self.epsilon2 * m as f64).floor() as u64;
            let target = target.clamp(1, m);
            let est = rank_query(target);
            entries.push(SsEntry {
                value: est.value,
                rmin: est.rmin,
                rmax: est.rmax,
            });
            if target == m {
                break;
            }
        }
        // Ensure the maximum is represented (rank m exactly: the sketch
        // tracks max, and rank(max) = m by definition).
        if entries.last().map(|e| e.value) != Some(max) {
            entries.push(SsEntry {
                value: max,
                rmin: m,
                rmax: m,
            });
        }
        // Rank queries at increasing targets return nondecreasing values,
        // but duplicates can interleave bounds; normalize monotonicity.
        entries.sort_by(|a, b| a.value.cmp(&b.value).then(a.rmin.cmp(&b.rmin)));
        // Monotonize the bounds: rank() is monotone in value, so a later
        // entry's rank is at least any earlier rmin (forward running max)
        // and an earlier entry's rank is at most any later rmax (backward
        // running min). This only tightens, and it makes the per-source
        // bound contributions monotone — which the combined summary's
        // binary searches rely on.
        let mut run = 0u64;
        for e in &mut entries {
            run = run.max(e.rmin);
            e.rmin = run;
        }
        let mut run = u64::MAX;
        for e in entries.iter_mut().rev() {
            run = run.min(e.rmax);
            e.rmax = run;
        }
        StreamSummary { entries, m }
    }

    /// `StreamReset()`: called at the end of each time step once the batch
    /// has been archived (Algorithm 4 lines 12–13). If the live sketch's
    /// backend differs from the configured one (possible only right after
    /// a cross-backend recovery), the step boundary is where the
    /// configured backend takes over.
    pub fn reset(&mut self) {
        if self.sketch.kind() == self.kind {
            // KLL's reset keeps its configured compaction mode (and, in
            // randomized mode, re-derives the RNG from the seed).
            self.sketch.reset();
        } else {
            self.sketch =
                AnySketch::with_compaction(self.kind, self.epsilon2 / 2.0, self.compaction);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn processor_with(data: &[u64], eps2: f64) -> StreamProcessor<u64> {
        let beta2 = (1.0 / eps2 + 1.0).ceil() as usize;
        let mut sp = StreamProcessor::new(eps2, beta2);
        for &v in data {
            sp.update(v);
        }
        sp
    }

    #[test]
    fn empty_stream_summary() {
        let sp = StreamProcessor::<u64>::new(0.125, 9);
        let ss = sp.summary();
        assert!(ss.entries().is_empty());
        assert_eq!(ss.stream_len(), 0);
        assert_eq!(ss.rank_bounds(42), (0, 0));
    }

    #[test]
    fn summary_has_min_and_max() {
        let data: Vec<u64> = (401..=600).collect();
        let sp = processor_with(&data, 0.125);
        let ss = sp.summary();
        assert_eq!(ss.entries().first().unwrap().value, 401);
        assert_eq!(ss.entries().last().unwrap().value, 600);
        assert_eq!(ss.stream_len(), 200);
    }

    #[test]
    fn lemma1_style_spacing() {
        // Entries' true ranks must be spaced ~eps2*m apart, each within
        // the tracked bounds.
        let m = 10_000u64;
        let data: Vec<u64> = (0..m).collect(); // value v has rank v+1
        let eps2 = 0.05;
        let sp = processor_with(&data, eps2);
        let ss = sp.summary();
        for e in ss.entries() {
            let true_rank = e.value + 1;
            assert!(
                e.rmin <= true_rank && true_rank <= e.rmax,
                "tracked bounds [{},{}] miss true rank {true_rank}",
                e.rmin,
                e.rmax
            );
        }
        // Consecutive entries no farther apart than ~2*eps2*m in rank.
        let cap = (2.0 * eps2 * m as f64).ceil() as u64 + 2;
        for w in ss.entries().windows(2) {
            let gap = (w[1].value + 1) - (w[0].value + 1);
            assert!(gap <= cap, "rank gap {gap} exceeds {cap}");
        }
    }

    #[test]
    fn rank_bounds_sound_on_random_values() {
        let data: Vec<u64> = (0..5000).map(|i| (i * 7919) % 100_000).collect();
        let sp = processor_with(&data, 0.1);
        let ss = sp.summary();
        for probe in (0..100_000).step_by(9973) {
            let truth = data.iter().filter(|&&x| x <= probe).count() as u64;
            let (lo, hi) = ss.rank_bounds(probe);
            assert!(
                lo <= truth && truth <= hi,
                "probe {probe}: {truth} outside [{lo},{hi}]"
            );
        }
    }

    #[test]
    fn reset_then_reuse() {
        let mut sp = processor_with(&[1, 2, 3], 0.25);
        assert_eq!(sp.len(), 3);
        sp.reset();
        assert!(sp.is_empty());
        sp.update(9);
        let ss = sp.summary();
        assert_eq!(ss.entries().first().unwrap().value, 9);
        assert_eq!(ss.stream_len(), 1);
    }

    #[test]
    fn merged_summaries_bound_union_ranks() {
        // Two disjoint streams; the merged summary's bounds must bracket
        // ranks in the union.
        let a: Vec<u64> = (0..3000).map(|i| (i * 7) % 10_000).collect();
        let b: Vec<u64> = (0..2000).map(|i| (i * 13 + 1) % 10_000).collect();
        let sa = processor_with(&a, 0.1).summary();
        let sb = processor_with(&b, 0.1).summary();
        let merged = sa.merge(&sb);
        assert_eq!(merged.stream_len(), 5000);
        let mut union: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        union.sort_unstable();
        for probe in (0..10_000).step_by(397) {
            let truth = union.partition_point(|&x| x <= probe) as u64;
            let (lo, hi) = merged.rank_bounds(probe);
            assert!(
                lo <= truth && truth <= hi,
                "probe {probe}: {truth} outside [{lo},{hi}]"
            );
        }
        // Merged uncertainty stays summary-quality: O(eps * total m).
        let (mlo, mhi) = merged.rank_bounds(5000);
        assert!(
            mhi - mlo <= (0.25 * 5000.0) as u64,
            "merged width {} too loose",
            mhi - mlo
        );
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let a = processor_with(&[5, 7, 9], 0.25).summary();
        let empty = StreamProcessor::<u64>::new(0.25, 5).summary();
        let m1 = a.merge(&empty);
        let m2 = empty.merge(&a);
        assert_eq!(m1.stream_len(), 3);
        assert_eq!(m2.stream_len(), 3);
        assert_eq!(m1.entries(), a.entries());
        assert_eq!(m2.entries(), a.entries());
    }

    #[test]
    fn summary_size_near_beta2() {
        let data: Vec<u64> = (0..100_000u64)
            .map(|i| i.wrapping_mul(2654435761))
            .collect();
        let sp = processor_with(&data, 1.0 / 64.0);
        let ss = sp.summary();
        // beta2 = 65 targets (+ possibly max): small and bounded.
        assert!(ss.entries().len() <= 67, "got {}", ss.entries().len());
        assert!(ss.entries().len() >= 60);
    }

    fn kll_processor_with(data: &[u64], eps2: f64) -> StreamProcessor<u64> {
        let beta2 = (1.0 / eps2 + 1.0).ceil() as usize;
        let mut sp = StreamProcessor::with_kind(SketchKind::Kll, eps2, beta2);
        for &v in data {
            sp.update(v);
        }
        sp
    }

    /// The KLL-backed extract satisfies the same tracked-bound and
    /// spacing contract as the GK-backed one.
    #[test]
    fn kll_summary_bounds_and_extremes() {
        let data: Vec<u64> = (0..20_000).map(|i| (i * 7919) % 100_000).collect();
        let sp = kll_processor_with(&data, 0.05);
        assert_eq!(sp.kind(), SketchKind::Kll);
        assert_eq!(sp.sketch().kind(), SketchKind::Kll);
        let ss = sp.summary();
        assert_eq!(ss.stream_len(), 20_000);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        assert_eq!(ss.entries().first().unwrap().value, sorted[0]);
        assert_eq!(ss.entries().last().unwrap().value, *sorted.last().unwrap());
        for e in ss.entries() {
            let truth = sorted.partition_point(|&x| x <= e.value) as u64;
            assert!(
                e.rmin <= truth && truth <= e.rmax,
                "entry {} tracked [{},{}] misses rank {truth}",
                e.value,
                e.rmin,
                e.rmax
            );
        }
        for probe in (0..100_000).step_by(9973) {
            let truth = sorted.partition_point(|&x| x <= probe) as u64;
            let (lo, hi) = ss.rank_bounds(probe);
            assert!(lo <= truth && truth <= hi);
        }
    }

    /// Reset is where the configured backend takes over after a
    /// cross-backend recovery.
    #[test]
    fn reset_switches_to_configured_kind() {
        let mut sp = StreamProcessor::<u64>::from_recovered(
            hsq_sketch::AnySketch::new(SketchKind::Gk, 0.05),
            SketchKind::Kll,
            SketchCompaction::Deterministic,
            0.1,
            11,
        );
        sp.update(7);
        assert_eq!(sp.sketch().kind(), SketchKind::Gk);
        assert_eq!(sp.kind(), SketchKind::Kll);
        sp.reset();
        assert_eq!(sp.sketch().kind(), SketchKind::Kll);
        sp.update(9);
        assert_eq!(sp.len(), 1);
    }

    /// Weighted ingest must summarize exactly like the replicated stream:
    /// `m` counts summed weight and every extracted bound brackets the
    /// replicated truth, on both backends and all three ingest paths.
    #[test]
    fn weighted_updates_match_replication() {
        let eps2 = 0.1f64;
        let beta2 = (1.0 / eps2 + 1.0).ceil() as usize;
        let pairs: Vec<(u64, u64)> = (0..4000u64)
            .map(|i| {
                let v = i.wrapping_mul(2654435761) % 30_000;
                (v, (v % 7) + 1)
            })
            .collect();
        let total: u64 = pairs.iter().map(|&(_, w)| w).sum();
        let mut replicated: Vec<u64> = Vec::new();
        for &(v, w) in &pairs {
            replicated.extend(std::iter::repeat_n(v, w as usize));
        }
        replicated.sort_unstable();
        for kind in [SketchKind::Gk, SketchKind::Kll] {
            let mut sp = StreamProcessor::with_kind(kind, eps2, beta2);
            let third = pairs.len() / 3;
            for &(v, w) in &pairs[..third] {
                sp.update_weighted(v, w);
            }
            let mut mid: Vec<(u64, u64)> = pairs[third..2 * third].to_vec();
            sp.ingest_weighted_batch(&mut mid);
            let mut tail: Vec<(u64, u64)> = pairs[2 * third..].to_vec();
            tail.sort_unstable_by_key(|a| a.0);
            sp.ingest_weighted_sorted_batch(&tail);
            assert_eq!(sp.len(), total, "{kind:?}: m must be summed weight");
            let ss = sp.summary();
            assert_eq!(ss.stream_len(), total);
            for probe in (0..30_000u64).step_by(911) {
                let truth = replicated.partition_point(|&x| x <= probe) as u64;
                let (lo, hi) = ss.rank_bounds(probe);
                assert!(
                    lo <= truth && truth <= hi,
                    "{kind:?}: probe {probe} truth {truth} outside [{lo},{hi}]"
                );
            }
        }
    }

    /// The configured compaction policy survives both reset arms.
    #[test]
    fn reset_preserves_compaction_policy() {
        let mode = SketchCompaction::Randomized { seed: 23 };
        let mut sp = StreamProcessor::<u64>::with_compaction(SketchKind::Kll, mode, 0.1, 11);
        assert_eq!(sp.compaction(), mode);
        for v in 0..5000u64 {
            sp.update(v);
        }
        sp.reset();
        assert!(sp.is_empty());
        assert_eq!(sp.compaction(), mode);
        match sp.sketch() {
            hsq_sketch::AnySketch::Kll(k) => assert_eq!(k.compaction(), mode),
            other => panic!("expected KLL, got {:?}", other.kind()),
        }
        // Cross-backend switchover also lands on the configured mode.
        let mut sp = StreamProcessor::<u64>::from_recovered(
            hsq_sketch::AnySketch::new(SketchKind::Gk, 0.05),
            SketchKind::Kll,
            mode,
            0.1,
            11,
        );
        sp.reset();
        match sp.sketch() {
            hsq_sketch::AnySketch::Kll(k) => assert_eq!(k.compaction(), mode),
            other => panic!("expected KLL, got {:?}", other.kind()),
        }
    }

    /// Regression for the linear merge rewrite: an N-way shard merge must
    /// answer like single-stream insertion, within ε·m (plus the
    /// per-shard quantization slack), for both backends.
    #[test]
    fn n_way_shard_merge_matches_single_stream() {
        let eps2 = 0.1f64;
        let m = 12_000u64;
        let data: Vec<u64> = (0..m)
            .map(|i| i.wrapping_mul(2654435761) % 50_000)
            .collect();
        let mut sorted = data.clone();
        sorted.sort_unstable();
        let beta2 = (1.0 / eps2 + 1.0).ceil() as usize;
        for kind in [SketchKind::Gk, SketchKind::Kll] {
            for shards in [2usize, 4, 8] {
                let mut parts: Vec<StreamProcessor<u64>> = (0..shards)
                    .map(|_| StreamProcessor::with_kind(kind, eps2, beta2))
                    .collect();
                for (i, &v) in data.iter().enumerate() {
                    parts[i % shards].update(v);
                }
                let merged = parts
                    .iter()
                    .map(|p| p.summary())
                    .reduce(|acc, s| acc.merge(&s))
                    .unwrap();
                assert_eq!(merged.stream_len(), m);
                let single = if kind == SketchKind::Gk {
                    processor_with(&data, eps2).summary()
                } else {
                    kll_processor_with(&data, eps2).summary()
                };
                // Each side's bound overshoots truth by at most one rank-
                // target spacing (ε₂·m — Algorithm 4's extraction grid)
                // plus its sketch interval (≤ ε₂·m/2 summed over shards),
                // so two brackets of the same truth sit within 2·ε₂·m of
                // each other, modulo per-shard rounding units.
                let slack = 2 * (eps2 * m as f64).ceil() as u64 + 2 * shards as u64 + 2;
                for probe in (0..50_000u64).step_by(701) {
                    let truth = sorted.partition_point(|&x| x <= probe) as u64;
                    let (mlo, mhi) = merged.rank_bounds(probe);
                    let (slo, shi) = single.rank_bounds(probe);
                    assert!(
                        mlo <= truth && truth <= mhi,
                        "{kind:?}/{shards}: merged [{mlo},{mhi}] misses {truth} at {probe}"
                    );
                    assert!(slo <= truth && truth <= shi);
                    // Merged bounds within eps*m of the single-stream ones.
                    assert!(
                        mlo.abs_diff(slo) <= slack && mhi.abs_diff(shi) <= slack,
                        "{kind:?}/{shards}: merged [{mlo},{mhi}] vs single [{slo},{shi}] \
                         exceeds slack {slack} at {probe}"
                    );
                    // And the merged width stays summary-quality.
                    assert!(mhi - mlo <= 2 * slack);
                }
            }
        }
    }
}
