//! Per-partition in-memory summaries (paper Algorithm 2 and §2.1, "Summary
//! of Historical Data HS").
//!
//! For a sorted partition of `η` elements, the summary holds `β₁` entries:
//! `S[0]` is the smallest element, and `S[i]` is the element at rank
//! `i·ε₁·η` for `i = 1 … β₁−1`. Each entry additionally records its exact
//! rank within the partition and the on-disk block holding it ("a pointer
//! to the on-disk address, for fast lookup", §2.1).
//!
//! Summaries are built by *tapping the write stream* of the partition —
//! during initial sorting or during a multi-way merge — so, as the paper
//! notes, "no additional disk access is required for computing the
//! summary".

use hsq_storage::{Item, RunFormat};

/// One summary entry: a value, its exact 1-based rank in the partition,
/// and the index of the disk block that holds that rank.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SummaryEntry<T> {
    /// The element value.
    pub value: T,
    /// Exact 1-based rank (position) of this element in the partition.
    pub rank: u64,
    /// Block index within the partition file holding this rank.
    pub block: u64,
}

/// In-memory summary of one on-disk partition (Algorithm 2's output).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionSummary<T> {
    entries: Vec<SummaryEntry<T>>,
    partition_len: u64,
}

impl<T: Item> PartitionSummary<T> {
    /// Reassemble from persisted parts (manifest recovery). Entries must
    /// be in value/rank order with 1-based ranks in `[1, partition_len]`;
    /// debug-asserted here, range-checked by the manifest reader.
    pub fn from_raw_parts(entries: Vec<SummaryEntry<T>>, partition_len: u64) -> Self {
        debug_assert!(entries.windows(2).all(|w| w[0].rank < w[1].rank));
        debug_assert!(entries.windows(2).all(|w| w[0].value <= w[1].value));
        PartitionSummary {
            entries,
            partition_len,
        }
    }

    /// Entries in value order (equal to rank order).
    pub fn entries(&self) -> &[SummaryEntry<T>] {
        &self.entries
    }

    /// Size of the summarized partition.
    pub fn partition_len(&self) -> u64 {
        self.partition_len
    }

    /// Memory in words (3 words per entry, as budgeted by Lemma 8).
    pub fn memory_words(&self) -> usize {
        3 * self.entries.len() + 2
    }

    /// Largest entry with `value <= v`, if any.
    pub fn last_le(&self, v: T) -> Option<&SummaryEntry<T>> {
        let idx = self.entries.partition_point(|e| e.value <= v);
        idx.checked_sub(1).map(|i| &self.entries[i])
    }

    /// Smallest entry with `value > v`, if any.
    pub fn first_gt(&self, v: T) -> Option<&SummaryEntry<T>> {
        let idx = self.entries.partition_point(|e| e.value <= v);
        self.entries.get(idx)
    }

    /// Smallest entry with `value >= v`, if any.
    pub fn first_ge(&self, v: T) -> Option<&SummaryEntry<T>> {
        let idx = self.entries.partition_point(|e| e.value < v);
        self.entries.get(idx)
    }

    /// Narrow the range that can contain the rank of any `z ∈ [u, v]`
    /// (paper Algorithm 8, line 5: the `l` and `p` endpoints).
    ///
    /// Returns `(lo, hi)` such that `lo ≤ rank(z, P) ≤ hi` (`rank` =
    /// count of elements ≤ z):
    /// * the last summary entry with value ≤ `u` sits at position `lo`,
    ///   and everything at or before it is ≤ u ≤ z;
    /// * the first summary entry with value > `v` bounds from above —
    ///   every element from its position on is > v ≥ z.
    pub fn narrow(&self, u: T, v: T) -> (u64, u64) {
        debug_assert!(u <= v);
        let lo = self.last_le(u).map(|e| e.rank).unwrap_or(0);
        let hi = self
            .first_gt(v)
            .map(|e| e.rank - 1)
            .unwrap_or(self.partition_len);
        (lo.min(hi), hi.max(lo))
    }
}

/// Streaming builder: feed the partition's elements in sorted order (with
/// their positions implied), collect the summary with zero extra I/O.
#[derive(Debug)]
pub struct SummaryBuilder<T> {
    eta: u64,
    items_per_block: u64,
    /// Target ranks, ascending, deduplicated.
    targets: Vec<u64>,
    next_target: usize,
    pos: u64,
    entries: Vec<SummaryEntry<T>>,
}

impl<T: Item> SummaryBuilder<T> {
    /// Builder for a partition that will contain exactly `eta` elements,
    /// with summary resolution `(epsilon1, beta1)` on a device with
    /// `block_size`-byte blocks.
    pub fn new(eta: u64, epsilon1: f64, beta1: usize, block_size: usize) -> Self {
        // Freshly written partitions always use the checksummed run
        // layout, so block pointers follow its (reduced) capacity.
        // Summaries for legacy V1 runs are only ever reloaded from a
        // manifest, never rebuilt through this builder.
        let per = RunFormat::V2.items_per_block::<T>(block_size) as u64;
        let mut targets = Vec::with_capacity(beta1);
        if eta > 0 {
            targets.push(1); // S[0]: the smallest element
            for i in 1..beta1 as u64 {
                let r = ((i as f64) * epsilon1 * eta as f64).floor() as u64;
                targets.push(r.clamp(1, eta));
            }
            // Always include the maximum: queries narrow against it.
            targets.push(eta);
            targets.sort_unstable();
            targets.dedup();
        }
        SummaryBuilder {
            eta,
            items_per_block: per,
            targets,
            next_target: 0,
            pos: 0,
            entries: Vec::new(),
        }
    }

    /// Observe the next element of the partition (in sorted order).
    #[inline]
    pub fn push(&mut self, v: T) {
        self.pos += 1;
        debug_assert!(self.pos <= self.eta, "more items than declared");
        while self.next_target < self.targets.len() && self.targets[self.next_target] == self.pos {
            self.entries.push(SummaryEntry {
                value: v,
                rank: self.pos,
                block: (self.pos - 1) / self.items_per_block,
            });
            self.next_target += 1;
        }
    }

    /// Finish; panics if fewer than `eta` elements were pushed.
    pub fn finish(self) -> PartitionSummary<T> {
        assert_eq!(
            self.pos, self.eta,
            "summary builder saw {} of {} items",
            self.pos, self.eta
        );
        PartitionSummary {
            entries: self.entries,
            partition_len: self.eta,
        }
    }
}

/// Build a summary directly from an in-memory sorted slice (used for the
/// in-memory sort path of batch loading).
pub fn summarize_sorted<T: Item>(
    sorted: &[T],
    epsilon1: f64,
    beta1: usize,
    block_size: usize,
) -> PartitionSummary<T> {
    let mut b = SummaryBuilder::new(sorted.len() as u64, epsilon1, beta1, block_size);
    for &v in sorted {
        b.push(v);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_summaries() {
        // Paper Figure 3: eps = 1/2 -> eps1 = 1/4, beta1 = 5.
        // P1 = 1..=100  -> summary {1, 25, 50, 75, 100}
        // P2 = 101..=200 -> summary {101, 125, 150, 175, 200}
        // P3 = 2..=201  -> summary {2, 51, 101, 151, 201} (ranks 1,50,100,150,200)
        let eps1 = 0.25;
        let beta1 = 5;
        let p1: Vec<u64> = (1..=100).collect();
        let s1 = summarize_sorted(&p1, eps1, beta1, 4096);
        let vals: Vec<u64> = s1.entries().iter().map(|e| e.value).collect();
        assert_eq!(vals, vec![1, 25, 50, 75, 100]);

        let p2: Vec<u64> = (101..=200).collect();
        let s2 = summarize_sorted(&p2, eps1, beta1, 4096);
        let vals: Vec<u64> = s2.entries().iter().map(|e| e.value).collect();
        assert_eq!(vals, vec![101, 125, 150, 175, 200]);

        let p3: Vec<u64> = (2..=201).collect();
        let s3 = summarize_sorted(&p3, eps1, beta1, 4096);
        let vals: Vec<u64> = s3.entries().iter().map(|e| e.value).collect();
        assert_eq!(vals, vec![2, 51, 101, 151, 201]);
        let ranks: Vec<u64> = s3.entries().iter().map(|e| e.rank).collect();
        assert_eq!(ranks, vec![1, 50, 100, 150, 200]);
    }

    #[test]
    fn ranks_are_exact_positions() {
        let data: Vec<u64> = (0..1000).map(|i| i * 2).collect();
        let s = summarize_sorted(&data, 0.1, 11, 64);
        for e in s.entries() {
            assert_eq!(data[(e.rank - 1) as usize], e.value);
        }
        // First and last elements are always present.
        assert_eq!(s.entries().first().unwrap().rank, 1);
        assert_eq!(s.entries().last().unwrap().rank, 1000);
    }

    #[test]
    fn block_pointers_match_geometry() {
        // 64-byte checksummed blocks of u64 -> 7 items per block.
        let data: Vec<u64> = (0..100).collect();
        let s = summarize_sorted(&data, 0.25, 5, 64);
        for e in s.entries() {
            assert_eq!(e.block, (e.rank - 1) / 7);
        }
    }

    #[test]
    fn tiny_partition_dedupes_targets() {
        // eta smaller than beta1: targets collapse, but min and max remain.
        let data = vec![7u64, 9, 11];
        let s = summarize_sorted(&data, 0.01, 101, 64);
        assert_eq!(s.entries().len(), 3);
        assert_eq!(s.entries()[0].value, 7);
        assert_eq!(s.entries()[2].value, 11);
    }

    #[test]
    fn empty_partition() {
        let s = summarize_sorted::<u64>(&[], 0.1, 11, 64);
        assert!(s.entries().is_empty());
        assert_eq!(s.partition_len(), 0);
        assert_eq!(s.last_le(5), None);
        assert_eq!(s.narrow(1, 2), (0, 0));
    }

    #[test]
    fn lookup_helpers() {
        let data: Vec<u64> = (0..=100).map(|i| i * 10).collect(); // 0,10,...,1000
        let s = summarize_sorted(&data, 0.1, 11, 4096);
        let le = s.last_le(305).unwrap();
        assert!(le.value <= 305);
        let gt = s.first_gt(305).unwrap();
        assert!(gt.value > 305);
        assert!(le.rank < gt.rank);
        assert_eq!(s.last_le(u64::MAX).unwrap().value, 1000);
        assert_eq!(s.first_gt(u64::MAX), None);
        assert_eq!(s.last_le(0).unwrap().value, 0);
    }

    #[test]
    fn narrow_brackets_the_true_rank() {
        let data: Vec<u64> = (0..500).map(|i| i * 3).collect();
        let s = summarize_sorted(&data, 0.05, 21, 64);
        for (u, v) in [(10u64, 700u64), (0, 0), (1497, 1497), (200, 220)] {
            let (lo, hi) = s.narrow(u, v);
            for z in [u, v, (u + v) / 2] {
                let rank = data.iter().filter(|&&x| x <= z).count() as u64;
                assert!(
                    lo <= rank && rank <= hi,
                    "z={z}: rank {rank} outside [{lo},{hi}]"
                );
            }
        }
    }

    #[test]
    fn duplicate_heavy_partition() {
        let mut data = vec![5u64; 500];
        data.extend(vec![9u64; 500]);
        let s = summarize_sorted(&data, 0.1, 11, 64);
        // Entries exist at both values; ranks are positions.
        assert_eq!(s.entries().first().unwrap().value, 5);
        assert_eq!(s.entries().last().unwrap().value, 9);
        assert_eq!(s.entries().last().unwrap().rank, 1000);
        let (lo, hi) = s.narrow(5, 5);
        assert!(lo <= 500 && 500 <= hi);
    }
}
