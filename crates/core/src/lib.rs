//! # hsq-core — quantiles over the union of historical and streaming data
//!
//! A faithful Rust implementation of:
//!
//! > Sneha Aman Singh, Divesh Srivastava, Srikanta Tirthapura.
//! > *Estimating quantiles from the union of historical and streaming
//! > data.* PVLDB 10(4): 433–444, 2016.
//!
//! The system answers φ-quantile queries over `T = H ∪ R` — the union of
//! a disk-resident historical warehouse `H` and an in-flight data stream
//! `R` — with rank error `εm` proportional to the *stream* size `m`, not
//! the total size `N`. It does so by combining:
//!
//! * **`HD`** ([`warehouse::Warehouse`]): historical data in sorted
//!   partitions organized into levels with at most `κ` partitions each;
//!   overflowing levels are multi-way merged upward (LSM-flavoured, but
//!   optimized for quantile queries rather than point lookups — §1.3);
//! * **`HS`** ([`summary::PartitionSummary`]): per-partition in-memory
//!   summaries of `β₁` evenly spaced elements with exact ranks and block
//!   pointers;
//! * **`SS`** ([`stream::StreamProcessor`]): a pluggable quantile sketch
//!   over the live stream — Greenwald–Khanna by default (the paper's
//!   choice), or a KLL compactor ladder selected via the [`HsqConfig`]
//!   builder's `sketch` knob ([`SketchKind`]) — from which a
//!   `β₂`-element summary is extracted at query time;
//! * **queries** ([`query::QueryContext`]): a quick in-memory response
//!   (Algorithm 5, error ≤ 1.5εN) and an accurate response (Algorithms
//!   6–8) that bisects the value space between summary-derived filters,
//!   probing partitions with narrowed, block-cached binary searches —
//!   error ≤ εm (Theorem 2).
//!
//! Baselines ([`baseline`]), window queries, memory budgeting
//! ([`budget`]), the analytic cost model ([`costmodel`]) and parallel
//! probing ([`parallel`]) complete the reproduction.
//!
//! Beyond the paper, the crate scales the engine out: [`sharded`]
//! hash-partitions items across independent engine shards with mergeable
//! cross-shard queries (per-shard rank bounds add, preserving the `εm`
//! guarantee over the union), and [`engine::EngineSnapshot`] gives
//! readers immutable pinned views so queries run concurrently with
//! ingestion; [`manifest`] persists warehouses — including consistent
//! online backups taken from a snapshot and an append-only
//! [`manifest::ManifestLog`] with compaction; [`retention`] bounds the
//! warehouse with TTL/byte/count policies while windowed queries
//! (`quantile_in_window`) keep the `ε·m` guarantee over the retained
//! union.
//!
//! ## Quickstart
//!
//! ```
//! use hsq_core::{HistStreamQuantiles, HsqConfig};
//! use hsq_storage::MemDevice;
//!
//! let config = HsqConfig::builder().epsilon(0.02).merge_threshold(4).build();
//! let mut hsq = HistStreamQuantiles::<u64, _>::new(MemDevice::new(4096), config);
//!
//! // Three archived time steps...
//! for day in 0..3u64 {
//!     for i in 0..5_000u64 {
//!         hsq.stream_update(day * 5_000 + i);
//!     }
//!     hsq.end_time_step().unwrap();
//! }
//! // ...and a live stream.
//! for i in 15_000..20_000u64 {
//!     hsq.stream_update(i);
//! }
//!
//! let p95 = hsq.quantile(0.95).unwrap().unwrap();
//! assert!((p95 as i64 - 19_000).abs() <= 100); // error <= eps * m = 100
//! ```

#![warn(missing_docs)]

pub mod baseline;
pub mod bounds;
pub mod budget;
pub mod config;
pub mod costmodel;
pub mod engine;
pub mod heavy;
pub mod manifest;
pub mod parallel;
pub mod query;
pub mod retention;
pub mod sharded;
pub mod stream;
pub mod summary;
pub mod warehouse;

pub use baseline::{PureStreaming, Strawman, StreamingAlgo};
pub use bounds::{CombinedSummary, SourceView};
pub use budget::{plan_memory, MemoryPlan};
pub use config::{validate_epsilon, ConfigError, HsqConfig, HsqConfigBuilder};
pub use engine::{EngineSnapshot, HistStreamQuantiles};
pub use heavy::{HeavyHitter, HeavyHitterConfig, HeavyTracker};
// The storage error taxonomy, re-exported so downstream layers (the
// networked service's `NetRetryPolicy` mirrors `RetryPolicy`) classify
// failures with one vocabulary.
pub use hsq_sketch::{SketchCompaction, SketchKind};
pub use hsq_storage::{
    corruption_in, is_transient, RetryDevice, RetryPolicy, StorageError, StorageErrorKind,
};
pub use query::{QueryContext, QueryOutcome, RankProbeSource, SeedMode};
pub use retention::{RetentionPolicy, RetentionReport};
pub use sharded::{ShardedEngine, ShardedSnapshot};
pub use stream::{StreamProcessor, StreamSummary};
pub use summary::{PartitionSummary, SummaryEntry};
pub use warehouse::{PinGuard, ScrubReport, StoredPartition, UpdateReport, Warehouse};
