//! Heavy hitters over the union of historical and streaming data.
//!
//! **Extension beyond the paper's figures.** The paper's introduction
//! names heavy hitters next to quantiles as the fundamental primitives
//! with "no prior work … in this setting" (§1), and its conclusion lists
//! "other classes of aggregates" as future work (§4). This module answers
//! φ-heavy-hitter queries — *which values occur more than `φN` times in
//! `T = H ∪ R`?* — reusing exactly the machinery the quantile path built:
//!
//! * **streaming side**: a Misra–Gries sketch over `R` (reset each time
//!   step like the GK sketch) yields candidates and count bounds;
//! * **historical side**: partitions are *sorted*, so the exact
//!   multiplicity of any value `v` in a partition is
//!   `rank(v) − rank(pred(v))` — two summary-narrowed, block-cached
//!   binary searches (the same [`crate::query::partition_rank`] the
//!   accurate quantile response uses). Candidate generation is also free:
//!   any value with ≥ `ε₁·η + 1` duplicates in a partition must occupy
//!   one of the `β₁` evenly spaced summary positions, so the summary
//!   values themselves are a complete historical candidate set.
//!
//! The result is sound and complete: every value with
//! `count > φN` is returned (given `φ ≥ threshold floor`, see
//! [`HeavyHitterConfig`]), with exact historical counts and rigorously
//! bounded stream counts.

use std::collections::BTreeSet;
use std::io;

use hsq_sketch::MisraGries;
use hsq_storage::{BlockCache, BlockDevice, Item};

use crate::query::partition_rank;
use crate::warehouse::{StoredPartition, Warehouse};

/// Configuration for the heavy-hitter tracker.
#[derive(Clone, Copy, Debug)]
pub struct HeavyHitterConfig {
    /// Misra–Gries counters for the live stream: catches every value with
    /// stream frequency `> m/(counters+1)`.
    pub stream_counters: usize,
}

impl Default for HeavyHitterConfig {
    fn default() -> Self {
        HeavyHitterConfig {
            stream_counters: 256,
        }
    }
}

/// A reported heavy hitter with its count decomposition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HeavyHitter<T> {
    /// The value.
    pub value: T,
    /// Exact occurrences in the historical warehouse.
    pub hist_count: u64,
    /// Lower bound on occurrences in the live stream.
    pub stream_lo: u64,
    /// Upper bound on occurrences in the live stream.
    pub stream_hi: u64,
}

impl<T> HeavyHitter<T> {
    /// Guaranteed total count lower bound.
    pub fn count_lo(&self) -> u64 {
        self.hist_count + self.stream_lo
    }

    /// Total count upper bound.
    pub fn count_hi(&self) -> u64 {
        self.hist_count + self.stream_hi
    }
}

/// Streaming-side state: a Misra–Gries sketch kept alongside the GK
/// sketch and reset at each time-step boundary.
#[derive(Clone, Debug)]
pub struct HeavyTracker<T> {
    mg: MisraGries<T>,
}

impl<T: Item> HeavyTracker<T> {
    /// New tracker.
    pub fn new(config: HeavyHitterConfig) -> Self {
        HeavyTracker {
            mg: MisraGries::new(config.stream_counters),
        }
    }

    /// Observe one streaming element.
    #[inline]
    pub fn update(&mut self, v: T) {
        self.mg.insert(v);
    }

    /// Reset at the end of a time step (the batch moves to the warehouse,
    /// where its duplicates become exactly countable).
    pub fn reset(&mut self) {
        self.mg.reset();
    }

    /// Words of memory used.
    pub fn memory_words(&self) -> usize {
        self.mg.memory_words()
    }

    /// Report every value whose total count in `warehouse ∪ stream` may
    /// exceed `threshold` occurrences, with per-side counts. Sound
    /// (`count_hi ≥ true count ≥ count_lo`) and complete for any
    /// `threshold ≥ Σ_P ⌈ε₁·η_P⌉ + m/(counters+1)` (candidate coverage;
    /// in φN terms: φ ≳ ε₁ + 1/counters).
    pub fn heavy_hitters<D: BlockDevice>(
        &self,
        warehouse: &Warehouse<T, D>,
        threshold: u64,
        cache_blocks: usize,
    ) -> io::Result<Vec<HeavyHitter<T>>> {
        let partitions = warehouse.partitions_newest_first();

        // Candidate set: stream MG candidates + every summary value that
        // repeats or could hide a long duplicate run. (Taking *all*
        // summary values is complete and cheap — |HS| values.)
        let mut candidates: BTreeSet<T> = self.mg.candidates().map(|(v, _)| v).collect();
        for p in &partitions {
            for e in p.summary.entries() {
                candidates.insert(e.value);
            }
        }

        let dev = &**warehouse.device();
        let mut cache: BlockCache<T> = BlockCache::new(cache_blocks.max(2));
        let mut out = Vec::new();
        for v in candidates {
            let mut hist = 0u64;
            for p in &partitions {
                hist += count_in_partition(dev, p, v, &mut cache)?;
            }
            let (slo, shi) = self.mg.count_bounds(v);
            if hist + shi >= threshold {
                out.push(HeavyHitter {
                    value: v,
                    hist_count: hist,
                    stream_lo: slo,
                    stream_hi: shi,
                });
            }
        }
        // Most frequent first (by guaranteed count).
        out.sort_by_key(|h| std::cmp::Reverse(h.count_lo()));
        Ok(out)
    }
}

/// Exact multiplicity of `v` in one sorted partition:
/// `rank(v) − |{x < v}|`, each side a summary-narrowed binary search.
pub fn count_in_partition<T: Item, D: BlockDevice>(
    dev: &D,
    p: &StoredPartition<T>,
    v: T,
    cache: &mut BlockCache<T>,
) -> io::Result<u64> {
    let rank_le = partition_rank(dev, p, v, p.summary.narrow(v, v), cache)?;
    // Elements strictly below v = rank of the predecessor value, searched
    // within its own summary window capped above by rank(v).
    let below = match predecessor(v) {
        None => 0, // v is the universe minimum: nothing below
        Some(pred) => {
            let (plo, phi) = p.summary.narrow(pred, pred);
            partition_rank(dev, p, pred, (plo.min(rank_le), phi.min(rank_le)), cache)?
        }
    };
    Ok(rank_le - below)
}

/// The largest universe value strictly below `v`, if any.
fn predecessor<T: Item>(v: T) -> Option<T> {
    if v == T::MIN {
        return None;
    }
    // midpoint(MIN, v) < v unless v = MIN+1-ish; walk down via bisection:
    // the predecessor in an integer-like universe is midpoint(prev, v)
    // converged. Cheaper: exploit ordered-u64 mapping.
    let key = v.to_ordered_u64();
    debug_assert!(key > T::MIN.to_ordered_u64());
    Some(T::from_ordered_u64(key - 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HsqConfig;
    use hsq_storage::MemDevice;

    fn warehouse_with(batches: Vec<Vec<u64>>, kappa: usize) -> Warehouse<u64, MemDevice> {
        let mut cfg = HsqConfig::with_epsilon(0.05);
        cfg.kappa = kappa;
        let mut w = Warehouse::new(MemDevice::new(256), cfg);
        for b in batches {
            w.add_batch(b).unwrap();
        }
        w
    }

    #[test]
    fn count_in_partition_exact() {
        let mut batch: Vec<u64> = (0..500).collect();
        batch.extend(vec![250u64; 300]); // 301 copies of 250 total
        let w = warehouse_with(vec![batch], 4);
        let p = &w.partitions_newest_first()[0];
        let mut cache = BlockCache::new(8);
        assert_eq!(
            count_in_partition(&**w.device(), p, 250, &mut cache).unwrap(),
            301
        );
        assert_eq!(
            count_in_partition(&**w.device(), p, 0, &mut cache).unwrap(),
            1
        );
        assert_eq!(
            count_in_partition(&**w.device(), p, 9999, &mut cache).unwrap(),
            0
        );
    }

    #[test]
    fn finds_historical_heavy_hitter() {
        // 40% of history is the value 777; spread across merged batches.
        let mut batches = Vec::new();
        for s in 0..6u64 {
            let mut b = vec![777u64; 400];
            b.extend((0..600).map(|i| s * 1000 + i));
            batches.push(b);
        }
        let w = warehouse_with(batches, 2);
        let tracker = HeavyTracker::<u64>::new(HeavyHitterConfig::default());
        let n = w.total_len();
        let hits = tracker.heavy_hitters(&w, n / 10, 16).unwrap();
        let top = hits.first().expect("777 must be found");
        assert_eq!(top.value, 777);
        assert_eq!(top.hist_count, 2400);
        assert_eq!(top.stream_lo, 0);
    }

    #[test]
    fn finds_stream_heavy_hitter() {
        let w = warehouse_with(vec![(0..1000u64).collect()], 3);
        let mut tracker = HeavyTracker::<u64>::new(HeavyHitterConfig::default());
        for i in 0..900u64 {
            tracker.update(if i % 3 == 0 { 42 } else { 10_000 + i });
        }
        let hits = tracker.heavy_hitters(&w, 250, 16).unwrap();
        let hit = hits.iter().find(|h| h.value == 42).expect("42 missing");
        assert!(hit.stream_lo <= 300 && 300 <= hit.stream_hi);
        // 42 also appears once in history (value 42 in 0..1000).
        assert_eq!(hit.hist_count, 1);
    }

    #[test]
    fn combined_counts_across_union() {
        // Value heavy in BOTH history and stream: counts must add up.
        let mut batches = Vec::new();
        for _ in 0..3 {
            let mut b = vec![5u64; 200];
            b.extend(0..800u64);
            batches.push(b);
        }
        let w = warehouse_with(batches, 2);
        let mut tracker = HeavyTracker::<u64>::new(HeavyHitterConfig::default());
        for _ in 0..150 {
            tracker.update(5u64);
        }
        let hits = tracker.heavy_hitters(&w, 500, 16).unwrap();
        let hit = hits.iter().find(|h| h.value == 5).expect("5 missing");
        assert_eq!(hit.hist_count, 600 + 3); // 3 extra: value 5 in 0..800 per batch
        assert!(hit.count_lo() >= 700 && hit.count_hi() >= 750);
    }

    #[test]
    fn no_false_heavy_hitters_below_threshold() {
        // Uniform data: nothing repeats more than a handful of times.
        let batches: Vec<Vec<u64>> = (0..4)
            .map(|s| (0..1000u64).map(|i| s * 1000 + i).collect())
            .collect();
        let w = warehouse_with(batches, 3);
        let tracker = HeavyTracker::<u64>::new(HeavyHitterConfig::default());
        let hits = tracker.heavy_hitters(&w, 100, 16).unwrap();
        assert!(
            hits.is_empty(),
            "uniform data produced {} supposed heavy hitters",
            hits.len()
        );
    }

    #[test]
    fn reset_clears_stream_side() {
        let w = warehouse_with(vec![(0..100u64).collect()], 3);
        let mut tracker = HeavyTracker::<u64>::new(HeavyHitterConfig::default());
        for _ in 0..500 {
            tracker.update(9u64);
        }
        tracker.reset();
        let hits = tracker.heavy_hitters(&w, 50, 16).unwrap();
        assert!(hits.iter().all(|h| h.value != 9 || h.count_hi() < 50));
    }

    #[test]
    fn predecessor_edge_cases() {
        assert_eq!(predecessor(0u64), None);
        assert_eq!(predecessor(1u64), Some(0));
        assert_eq!(predecessor(i64::MIN), None);
        assert_eq!(predecessor(i64::MIN + 1), Some(i64::MIN));
        assert_eq!(predecessor(-5i64), Some(-6));
    }
}
