//! The combined summary `TS` and its rank bounds `Lᵢ`, `Uᵢ` (paper §2.3.1,
//! Lemma 2).
//!
//! `TS` is the sorted union of every partition summary in `HS` and the
//! stream summary `SS`. For each `TS[i]`, the algorithm derives a lower
//! bound `Lᵢ` and an upper bound `Uᵢ` on `rank(TS[i], T)` by summing
//! per-source contributions.
//!
//! Two variants are implemented:
//!
//! * [`CombinedSummary::build`] — the production path. Every summary entry
//!   carries *rigorous* rank bounds within its own source (exact positions
//!   for partitions, GK-tracked intervals for the stream), so the per-source
//!   contribution of "the largest entry ≤ x" / "the first entry > x" is
//!   provably correct with no distributional assumption. These bounds are
//!   at least as tight as the paper's formulas.
//! * [`paper_li_ui`] — the paper's closed-form formulas in terms of the
//!   counts `α_S`, `α_P` (with a switch for the figure's idealized variant
//!   versus Lemma 2's safe variant), used to replay the Figure 3 worked
//!   example verbatim and as documentation of the original arithmetic.

use hsq_storage::Item;

use crate::stream::StreamSummary;
use crate::summary::PartitionSummary;

/// A per-source view used to assemble `TS`: entries sorted by value, each
/// with bounds on its rank *within that source*, plus the source's size.
///
/// Semantics required of each entry `(value, lo, hi)`:
/// * at least `lo` elements of the source are `≤ value`;
/// * at most `hi − 1` elements of the source are `< value`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SourceView<T> {
    entries: Vec<(T, u64, u64)>,
    total: u64,
}

impl<T: Item> SourceView<T> {
    /// View of a historical partition summary: positions are exact.
    pub fn from_partition(s: &PartitionSummary<T>) -> Self {
        SourceView {
            entries: s
                .entries()
                .iter()
                .map(|e| (e.value, e.rank, e.rank))
                .collect(),
            total: s.partition_len(),
        }
    }

    /// View of the stream summary: GK-tracked intervals.
    pub fn from_stream(s: &StreamSummary<T>) -> Self {
        SourceView {
            entries: s
                .entries()
                .iter()
                .map(|e| (e.value, e.rmin, e.rmax))
                .collect(),
            total: s.stream_len(),
        }
    }

    /// Raw construction (tests).
    pub fn from_raw(entries: Vec<(T, u64, u64)>, total: u64) -> Self {
        debug_assert!(entries.windows(2).all(|w| w[0].0 <= w[1].0));
        SourceView { entries, total }
    }

    /// Validating construction for views that crossed a trust boundary
    /// (e.g. decoded from a wire frame): entries must be sorted by value
    /// with `lo ≤ hi ≤ total` — the invariants
    /// [`CombinedSummary::build`]'s two-pointer sweep and the bisection's
    /// soundness argument rely on. Anything else is rejected rather than
    /// silently producing unsound rank bounds.
    pub fn try_from_raw(entries: Vec<(T, u64, u64)>, total: u64) -> Result<Self, &'static str> {
        if !entries.windows(2).all(|w| w[0].0 <= w[1].0) {
            return Err("source view entries not sorted by value");
        }
        for &(_, lo, hi) in &entries {
            if lo > hi {
                return Err("source view entry has lo > hi");
            }
            if hi > total {
                return Err("source view entry bound exceeds source total");
            }
        }
        Ok(SourceView { entries, total })
    }

    /// The `(value, lo, hi)` entries, sorted by value — the serializable
    /// form a serving node ships to a coordinator.
    pub fn entries(&self) -> &[(T, u64, u64)] {
        &self.entries
    }

    /// The source's total size (summed weight).
    pub fn total(&self) -> u64 {
        self.total
    }
}

/// `TS` with per-element rank bounds over `T = H ∪ R`.
#[derive(Clone, Debug)]
pub struct CombinedSummary<T> {
    values: Vec<T>,
    lower: Vec<u64>,
    upper: Vec<u64>,
    total: u64,
}

impl<T: Item> CombinedSummary<T> {
    /// Assemble `TS` from all sources and compute `Lᵢ`/`Uᵢ`.
    pub fn build(sources: &[SourceView<T>]) -> Self {
        let total: u64 = sources.iter().map(|s| s.total).sum();
        let mut values: Vec<T> = sources
            .iter()
            .flat_map(|s| s.entries.iter().map(|&(v, _, _)| v))
            .collect();
        values.sort_unstable();

        let delta = values.len();
        let mut lower = vec![0u64; delta];
        let mut upper = vec![0u64; delta];
        for src in sources {
            // Two-pointer sweep: for each TS value x, find the number of
            // src entries with value <= x.
            let mut ptr = 0usize;
            for (i, &x) in values.iter().enumerate() {
                while ptr < src.entries.len() && src.entries[ptr].0 <= x {
                    ptr += 1;
                }
                // Lower: the largest entry <= x guarantees `lo` elements <= x.
                if ptr > 0 {
                    lower[i] += src.entries[ptr - 1].1;
                }
                // Upper: the first entry > x caps elements <= x at hi - 1;
                // if none, every element of the source may be <= x.
                if ptr < src.entries.len() {
                    upper[i] += src.entries[ptr].2.saturating_sub(1);
                } else {
                    upper[i] += src.total;
                }
            }
        }
        CombinedSummary {
            values,
            lower,
            upper,
            total,
        }
    }

    /// Number of entries `δ`.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True iff no summaries contributed entries.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total data size `N`.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// `TS[i]`.
    pub fn value(&self, i: usize) -> T {
        self.values[i]
    }

    /// `Lᵢ`: lower bound on `rank(TS[i], T)`.
    pub fn lower(&self, i: usize) -> u64 {
        self.lower[i]
    }

    /// `Uᵢ`: upper bound on `rank(TS[i], T)`.
    pub fn upper(&self, i: usize) -> u64 {
        self.upper[i]
    }

    /// Algorithm 5 (`QuantilesQuickResponse`): the element at the smallest
    /// `j` with `Lⱼ ≥ r`, else the last element. `None` iff empty.
    pub fn quick_response(&self, r: u64) -> Option<T> {
        if self.values.is_empty() {
            return None;
        }
        let j = self.lower.partition_point(|&l| l < r);
        Some(self.values[j.min(self.values.len() - 1)])
    }

    /// Algorithm 7 (`GenerateFilters`): `u` = `TS[x]` for the largest `x`
    /// with `Uₓ ≤ r` (or `None` if no such x — the caller widens to the
    /// universe minimum); `v` = `TS[y]` for the smallest `y` with `Lᵧ ≥ r`
    /// (or `None` — widen to the universe maximum).
    pub fn generate_filters(&self, r: u64) -> (Option<T>, Option<T>) {
        // upper is nondecreasing (sums of nondecreasing per-source terms),
        // as is lower.
        let x = self.upper.partition_point(|&u| u <= r); // first index with U > r
        let u = x.checked_sub(1).map(|i| self.values[i]);
        let y = self.lower.partition_point(|&l| l < r);
        let v = self.values.get(y).copied();
        (u, v)
    }

    /// The tightest bisection bracket `[u, v]` this summary supports for
    /// rank `r`: Algorithm 7's filters where they exist, otherwise the
    /// summary's extreme values instead of the universe bounds.
    ///
    /// The fallbacks are sound because every source summary carries its
    /// exact minimum and maximum, so `TS[0]` / `TS[δ−1]` are the union's
    /// true extremes: the Definition-1 answer (the smallest value whose
    /// rank reaches `r ≥ 1`) is never below the minimum — values below it
    /// have rank 0 — and never above the maximum, whose rank is `N ≥ r`.
    /// Seeding from them instead of `T::MIN`/`T::MAX` saves the bisection
    /// steps that would otherwise be spent walking in from the empty
    /// parts of the universe.
    pub fn seed_bracket(&self, r: u64) -> (T, T) {
        let (u, v) = self.generate_filters(r);
        (
            u.or_else(|| self.values.first().copied()).unwrap_or(T::MIN),
            v.or_else(|| self.values.last().copied()).unwrap_or(T::MAX),
        )
    }
}

/// Which flavour of the paper's `Uᵢ` formula to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PaperBoundVariant {
    /// Figure 3's arithmetic: stream entries treated as sitting at exact
    /// ranks `i·ε₂·m`, so `Uᵢ`'s stream term is `ε₂·m·α_S`.
    FigureIdealized,
    /// Lemma 2's safe form: `Uᵢ`'s stream term is `ε₂·m·(α_S + 1)`,
    /// accounting for Lemma 1's one-sided slack.
    LemmaSafe,
}

/// The paper's closed-form `Lᵢ`/`Uᵢ` (§2.3.1) for a single value `x`:
///
/// `L = ε₂·m·b·(α_S − 1) + Σ_{P : α_P > 0} ε₁·m_P·(α_P − 1)`
/// `U = ε₂·m·b·(α_S + s) + Σ_{P : α_P > 0} ε₁·m_P·α_P`
///
/// where `α_S`/`α_P` count summary entries ≤ `x`, `b = [α_S > 0]`, and
/// `s` is 0 or 1 per [`PaperBoundVariant`].
#[allow(clippy::too_many_arguments)]
pub fn paper_li_ui<T: Item>(
    x: T,
    partitions: &[&PartitionSummary<T>],
    stream: &StreamSummary<T>,
    epsilon1: f64,
    epsilon2: f64,
    variant: PaperBoundVariant,
) -> (u64, u64) {
    let m = stream.stream_len() as f64;
    let alpha_s = stream.entries().iter().filter(|e| e.value <= x).count() as f64;
    let b = if alpha_s > 0.0 { 1.0 } else { 0.0 };
    let slack = match variant {
        PaperBoundVariant::FigureIdealized => 0.0,
        PaperBoundVariant::LemmaSafe => 1.0,
    };
    let mut l = epsilon2 * m * b * (alpha_s - 1.0).max(0.0);
    let mut u = epsilon2 * m * b * (alpha_s + slack);
    for p in partitions {
        let alpha_p = p.entries().iter().filter(|e| e.value <= x).count() as f64;
        if alpha_p > 0.0 {
            let mp = p.partition_len() as f64;
            l += epsilon1 * mp * (alpha_p - 1.0);
            u += epsilon1 * mp * alpha_p;
        }
    }
    (l.round() as u64, u.round() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::StreamProcessor;
    use crate::summary::summarize_sorted;

    /// Build the paper's Figure 3 scenario: three partitions and the
    /// 401..=600 stream, with eps = 1/2 (eps1 = 1/4, eps2 = 1/8).
    fn figure3() -> (Vec<PartitionSummary<u64>>, StreamSummary<u64>) {
        let eps1 = 0.25;
        let beta1 = 5;
        let p1: Vec<u64> = (1..=100).collect();
        let p2: Vec<u64> = (101..=200).collect();
        let p3: Vec<u64> = (2..=201).collect();
        let summaries = vec![
            summarize_sorted(&p1, eps1, beta1, 4096),
            summarize_sorted(&p2, eps1, beta1, 4096),
            summarize_sorted(&p3, eps1, beta1, 4096),
        ];
        // The figure's stream summary is the idealized [401, ..., 600]; we
        // reproduce its *shape* through the real GK processor and verify
        // the min/max anchors, then use the figure's exact entries for the
        // formula replay below.
        let mut sp = StreamProcessor::new(0.125, 9);
        for v in 401..=600u64 {
            sp.update(v);
        }
        (summaries, sp.summary())
    }

    /// The figure's idealized SS: 9 entries whose assumed ranks are
    /// i * eps2 * m = 25i.
    fn figure3_idealized_ss() -> StreamSummary<u64> {
        let values = [401u64, 438, 452, 480, 520, 530, 565, 595, 600];
        let m = 200u64;
        let entries: Vec<(u64, u64, u64)> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                let r = if i == 0 { 1 } else { 25 * i as u64 };
                (v, r, r)
            })
            .collect();
        // Round-trip through SourceView is what the production code sees;
        // for paper_li_ui we need a StreamSummary, so build one manually.
        let ss_entries: Vec<crate::stream::SsEntry<u64>> = entries
            .iter()
            .map(|&(v, lo, hi)| crate::stream::SsEntry {
                value: v,
                rmin: lo,
                rmax: hi,
            })
            .collect();
        // Construct via the public-ish path: there is no constructor, so we
        // go through a tiny helper on the test side.
        StreamSummary::from_parts_for_tests(ss_entries, m)
    }

    #[test]
    fn figure3_ts_composition() {
        let (summaries, ss) = figure3();
        let mut sources: Vec<SourceView<u64>> =
            summaries.iter().map(SourceView::from_partition).collect();
        sources.push(SourceView::from_stream(&ss));
        let ts = CombinedSummary::build(&sources);
        assert_eq!(ts.total(), 600);
        // 3 partitions x 5 entries + stream entries (9..=10).
        assert!(ts.len() >= 24, "delta = {}", ts.len());
        // The historical prefix of TS matches the figure exactly.
        let expect_prefix = [
            1u64, 2, 25, 50, 51, 75, 100, 101, 101, 125, 150, 151, 175, 200, 201,
        ];
        let hist_values: Vec<u64> = (0..ts.len())
            .map(|i| ts.value(i))
            .filter(|&v| v <= 201)
            .collect();
        assert_eq!(hist_values, expect_prefix);
    }

    #[test]
    fn figure3_li_ui_replay() {
        // Replay the figure's L and U rows exactly, using the idealized SS
        // and the FigureIdealized variant.
        let (summaries, _) = figure3();
        let ss = figure3_idealized_ss();
        let parts: Vec<&PartitionSummary<u64>> = summaries.iter().collect();

        let ts_values = [
            1u64, 2, 25, 50, 51, 75, 100, 101, 101, 125, 150, 151, 175, 200, 201, 401, 438, 452,
            480, 520, 530, 565, 595, 600,
        ];
        let expect_l = [
            0u64, 0, 25, 50, 100, 125, 150, 200, 200, 225, 250, 300, 325, 350, 400, 400, 425, 450,
            475, 500, 525, 550, 575, 600,
        ];
        let expect_u = [
            25u64, 75, 100, 125, 175, 200, 225, 300, 300, 325, 350, 400, 425, 450, 500, 525, 550,
            575, 600, 625, 650, 675, 700, 725,
        ];
        for (i, &x) in ts_values.iter().enumerate() {
            let (l, u) = paper_li_ui(
                x,
                &parts,
                &ss,
                0.25,
                0.125,
                PaperBoundVariant::FigureIdealized,
            );
            assert_eq!(l, expect_l[i], "L mismatch at TS[{i}] = {x}");
            assert_eq!(u, expect_u[i], "U mismatch at TS[{i}] = {x}");
        }
    }

    #[test]
    fn lemma_safe_dominates_idealized() {
        let (summaries, _) = figure3();
        let ss = figure3_idealized_ss();
        let parts: Vec<&PartitionSummary<u64>> = summaries.iter().collect();
        for x in [1u64, 101, 401, 520, 600] {
            let (_, u_ideal) = paper_li_ui(
                x,
                &parts,
                &ss,
                0.25,
                0.125,
                PaperBoundVariant::FigureIdealized,
            );
            let (_, u_safe) =
                paper_li_ui(x, &parts, &ss, 0.25, 0.125, PaperBoundVariant::LemmaSafe);
            assert!(u_safe >= u_ideal);
        }
    }

    #[test]
    fn lemma2_bounds_sandwich_exact_ranks() {
        // Production tracked bounds: L_i <= rank(TS[i], T) <= U_i for the
        // figure's full dataset.
        let (summaries, ss) = figure3();
        let mut sources: Vec<SourceView<u64>> =
            summaries.iter().map(SourceView::from_partition).collect();
        sources.push(SourceView::from_stream(&ss));
        let ts = CombinedSummary::build(&sources);

        let mut all: Vec<u64> = (1..=100).collect();
        all.extend(101..=200u64);
        all.extend(2..=201u64);
        all.extend(401..=600u64);

        for i in 0..ts.len() {
            let v = ts.value(i);
            let rank = all.iter().filter(|&&x| x <= v).count() as u64;
            assert!(
                ts.lower(i) <= rank && rank <= ts.upper(i),
                "TS[{i}]={v}: rank {rank} outside [L={}, U={}]",
                ts.lower(i),
                ts.upper(i)
            );
        }
    }

    #[test]
    fn lemma2_width_bound() {
        // U_i - L_i <= eps * N (Lemma 2 part 2); production bounds are
        // tighter than the paper's, so the check must pass with eps = 1/2.
        let (summaries, ss) = figure3();
        let mut sources: Vec<SourceView<u64>> =
            summaries.iter().map(SourceView::from_partition).collect();
        sources.push(SourceView::from_stream(&ss));
        let ts = CombinedSummary::build(&sources);
        let n = ts.total();
        for i in 0..ts.len() {
            assert!(
                ts.upper(i) - ts.lower(i) <= n / 2,
                "width {} at {i} exceeds eps*N = {}",
                ts.upper(i) - ts.lower(i),
                n / 2
            );
        }
    }

    #[test]
    fn quick_response_monotone_and_in_range() {
        let (summaries, ss) = figure3();
        let mut sources: Vec<SourceView<u64>> =
            summaries.iter().map(SourceView::from_partition).collect();
        sources.push(SourceView::from_stream(&ss));
        let ts = CombinedSummary::build(&sources);
        let mut prev = 0u64;
        for r in [1u64, 100, 200, 300, 400, 500, 600] {
            let v = ts.quick_response(r).unwrap();
            assert!(v >= prev, "quick response must be monotone in r");
            prev = v;
        }
    }

    #[test]
    fn filters_bracket_target_rank() {
        let (summaries, ss) = figure3();
        let mut sources: Vec<SourceView<u64>> =
            summaries.iter().map(SourceView::from_partition).collect();
        sources.push(SourceView::from_stream(&ss));
        let ts = CombinedSummary::build(&sources);

        let mut all: Vec<u64> = (1..=100).collect();
        all.extend(101..=200u64);
        all.extend(2..=201u64);
        all.extend(401..=600u64);
        all.sort_unstable();

        for r in [1u64, 50, 150, 300, 450, 600] {
            let (u, v) = ts.generate_filters(r);
            let answer = all[(r - 1) as usize]; // exact element of rank r
            if let Some(u) = u {
                assert!(
                    u <= answer,
                    "filter u={u} above exact answer {answer} (r={r})"
                );
            }
            if let Some(v) = v {
                assert!(
                    v >= answer,
                    "filter v={v} below exact answer {answer} (r={r})"
                );
            }
        }
    }

    #[test]
    fn empty_summary() {
        let ts = CombinedSummary::<u64>::build(&[]);
        assert!(ts.is_empty());
        assert_eq!(ts.quick_response(1), None);
        assert_eq!(ts.generate_filters(1), (None, None));
    }
}
