//! Baselines from the paper's §2 and §3.1.
//!
//! * [`PureStreaming`] — "apply a streaming algorithm … to `T`": a single
//!   GK / Q-Digest / RANDOM sketch over the *entire* dataset, never reset.
//!   Error is proportional to `N` and keeps growing as data accumulates.
//!   For fair update-cost comparison, the baseline performs the same
//!   warehouse loading as our algorithm ("we use the same loading
//!   paradigm … and same partitioning scheme", §3.2) — batches are written
//!   to disk and re-tiered with κ-way concatenation merges — but *without
//!   sorting*, which is exactly the cost the paper's Figure 6 shows our
//!   algorithm paying on top.
//! * [`Strawman`] — "process `H` and `R` separately … `H` is kept on disk,
//!   sorted at all times": every batch is merged into one fully sorted
//!   run. Query error matches ours (`εm`), but each time step rewrites the
//!   entire history — the disk-cost extreme our leveled structure avoids.

use std::io;
use std::sync::Arc;
use std::time::Instant;

use hsq_sketch::{GkSketch, QDigest, ReservoirQuantiles};
use hsq_storage::{BlockDevice, FileId, Item, RunWriter, SortedRun};

use crate::config::HsqConfig;
use crate::query::QueryContext;
use crate::stream::{StreamProcessor, StreamSummary};
use crate::summary::SummaryBuilder;
use crate::warehouse::{StoredPartition, UpdateReport};

/// Which streaming sketch a [`PureStreaming`] baseline runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamingAlgo {
    /// Greenwald–Khanna (deterministic; the paper's strongest baseline).
    Gk,
    /// Q-Digest (deterministic, universe-structured).
    QDigest,
    /// RANDOM / reservoir sampling (probabilistic; extension baseline).
    Random,
}

enum Sketch<T> {
    Gk(GkSketch<T>),
    QDigest(QDigest),
    Random(ReservoirQuantiles<T>),
}

/// The pure-streaming approach: one sketch over all data ever seen.
pub struct PureStreaming<T: Item, D: BlockDevice> {
    sketch: Sketch<T>,
    dev: Arc<D>,
    kappa: usize,
    /// Raw (unsorted) partition files per level: (file, blocks).
    levels: Vec<Vec<(FileId, u64)>>,
    staging: Vec<T>,
    n: u64,
}

impl<T: Item, D: BlockDevice> PureStreaming<T, D> {
    /// Baseline with an explicit error parameter (GK/Q-Digest) or sample
    /// size derived from it (RANDOM).
    pub fn new(dev: Arc<D>, algo: StreamingAlgo, epsilon: f64, kappa: usize) -> Self {
        let sketch = match algo {
            StreamingAlgo::Gk => Sketch::Gk(GkSketch::new(epsilon)),
            StreamingAlgo::QDigest => {
                Sketch::QDigest(QDigest::with_error(epsilon, T::UNIVERSE_BITS.min(64)))
            }
            StreamingAlgo::Random => Sketch::Random(ReservoirQuantiles::with_seed(
                ((1.0 / (epsilon * epsilon)).ceil() as usize).clamp(16, 1 << 22),
                0xBA5E,
            )),
        };
        PureStreaming {
            sketch,
            dev,
            kappa,
            levels: Vec::new(),
            staging: Vec::new(),
            n: 0,
        }
    }

    /// Baseline sized to a memory budget in words (the paper's Figure 4
    /// methodology): the sketch gets the whole budget.
    pub fn with_memory(
        dev: Arc<D>,
        algo: StreamingAlgo,
        words: usize,
        expected_total: u64,
        kappa: usize,
    ) -> Self {
        let epsilon = match algo {
            StreamingAlgo::Gk => crate::budget::epsilon_for_gk_budget(words, expected_total),
            StreamingAlgo::QDigest => {
                // QDigest memory ~ 9k words (3k nodes of 3 words) with
                // k = bits/eps.
                let bits = T::UNIVERSE_BITS.min(64) as f64;
                (9.0 * bits / words as f64).clamp(1e-9, 1.0)
            }
            StreamingAlgo::Random => {
                // Reservoir of `words` items: eps ~ 1/sqrt(s).
                (1.0 / (words.max(16) as f64).sqrt()).clamp(1e-9, 1.0)
            }
        };
        Self::new(dev, algo, epsilon, kappa)
    }

    /// Elements observed.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// True iff nothing observed.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Words of memory the sketch uses.
    pub fn memory_words(&self) -> usize {
        match &self.sketch {
            Sketch::Gk(s) => s.memory_words(),
            Sketch::QDigest(s) => s.memory_words(),
            Sketch::Random(s) => s.memory_words(),
        }
    }

    /// Observe one element.
    pub fn insert(&mut self, v: T) {
        self.n += 1;
        match &mut self.sketch {
            Sketch::Gk(s) => s.insert(v),
            Sketch::QDigest(s) => s.insert(v.to_ordered_u64()),
            Sketch::Random(s) => s.insert(v),
        }
        self.staging.push(v);
    }

    /// End of time step: write the raw batch to the warehouse (no sort)
    /// and re-tier with concatenation merges, mirroring our loading I/O.
    pub fn end_time_step(&mut self) -> io::Result<UpdateReport> {
        let mut report = UpdateReport::default();
        let batch = std::mem::take(&mut self.staging);
        if batch.is_empty() {
            return Ok(report);
        }
        let t0 = Instant::now();
        let before = self.dev.stats().snapshot();
        let file = self.write_raw(&batch)?;
        report.load_io = self.dev.stats().snapshot() - before;
        report.load_time = t0.elapsed();

        if self.levels.is_empty() {
            self.levels.push(Vec::new());
        }
        let blocks = self.dev.num_blocks(file)?;
        self.levels[0].push((file, blocks));

        let t1 = Instant::now();
        let before = self.dev.stats().snapshot();
        report.merges = self.cascade_concat()?;
        report.merge_io = self.dev.stats().snapshot() - before;
        report.merge_time = t1.elapsed();
        Ok(report)
    }

    fn write_raw(&self, batch: &[T]) -> io::Result<FileId> {
        let file = self.dev.create()?;
        let bs = self.dev.block_size();
        let per = bs / T::ENCODED_LEN;
        let mut buf = vec![0u8; bs];
        for (b, chunk) in batch.chunks(per).enumerate() {
            for (i, v) in chunk.iter().enumerate() {
                v.encode(&mut buf[i * T::ENCODED_LEN..]);
            }
            self.dev
                .write_block(file, b as u64, &buf[..chunk.len() * T::ENCODED_LEN])?;
        }
        Ok(file)
    }

    fn cascade_concat(&mut self) -> io::Result<usize> {
        let mut merges = 0;
        let mut level = 0;
        while level < self.levels.len() {
            if self.levels[level].len() <= self.kappa {
                level += 1;
                continue;
            }
            let olds = std::mem::take(&mut self.levels[level]);
            // Concatenate: read every block, write it to the new file.
            let out = self.dev.create()?;
            let mut buf = vec![0u8; self.dev.block_size()];
            let mut out_idx = 0u64;
            for &(f, blocks) in &olds {
                for b in 0..blocks {
                    let got = self.dev.read_block(f, b, &mut buf)?;
                    self.dev.write_block(out, out_idx, &buf[..got])?;
                    out_idx += 1;
                }
                self.dev.delete(f)?;
            }
            if self.levels.len() <= level + 1 {
                self.levels.push(Vec::new());
            }
            self.levels[level + 1].push((out, out_idx));
            merges += 1;
            level += 1;
        }
        Ok(merges)
    }

    /// φ-quantile from the sketch (no disk access).
    pub fn quantile(&mut self, phi: f64) -> Option<T> {
        assert!(phi > 0.0 && phi <= 1.0);
        match &mut self.sketch {
            Sketch::Gk(s) => s.quantile(phi),
            Sketch::QDigest(s) => s.quantile(phi).map(T::from_ordered_u64),
            Sketch::Random(s) => s.quantile(phi),
        }
    }
}

/// The strawman: fully sorted history, rebuilt every time step.
pub struct Strawman<T: Item, D: BlockDevice> {
    dev: Arc<D>,
    config: HsqConfig,
    history: Option<StoredPartition<T>>,
    stream: StreamProcessor<T>,
    staging: Vec<T>,
    steps: u64,
}

impl<T: Item, D: BlockDevice> Strawman<T, D> {
    /// New strawman with the same `(ε₁, ε₂)` machinery as the real engine.
    pub fn new(dev: Arc<D>, config: HsqConfig) -> Self {
        let stream = StreamProcessor::new(config.epsilon2, config.beta2);
        Strawman {
            dev,
            config,
            history: None,
            stream,
            staging: Vec::new(),
            steps: 0,
        }
    }

    /// Historical + streaming size.
    pub fn total_len(&self) -> u64 {
        self.history.as_ref().map(|p| p.run.len()).unwrap_or(0) + self.stream.len()
    }

    /// Observe one streaming element.
    pub fn stream_update(&mut self, v: T) {
        self.stream.update(v);
        self.staging.push(v);
    }

    /// End of time step: sort the batch and merge it into the single
    /// sorted history run (full rewrite).
    pub fn end_time_step(&mut self) -> io::Result<UpdateReport> {
        let mut report = UpdateReport::default();
        self.steps += 1;
        let mut batch = std::mem::take(&mut self.staging);
        self.stream.reset();
        if batch.is_empty() {
            return Ok(report);
        }
        let t0 = Instant::now();
        batch.sort_unstable();
        report.sort_time = t0.elapsed();

        let t1 = Instant::now();
        let before = self.dev.stats().snapshot();
        let batch_run = hsq_storage::write_run(&*self.dev, &batch)?;
        report.load_io = self.dev.stats().snapshot() - before;
        report.load_time = t1.elapsed();
        drop(batch);

        let t2 = Instant::now();
        let before = self.dev.stats().snapshot();
        let merged = match self.history.take() {
            None => {
                // First batch: summary from the run without re-reading is
                // not possible here (write_run consumed the data), so pay
                // one pass — only ever on the very first step.
                let mut sb = SummaryBuilder::new(
                    batch_run.len(),
                    self.config.epsilon1,
                    self.config.beta1,
                    self.dev.block_size(),
                );
                for item in batch_run.iter(&*self.dev) {
                    sb.push(item?);
                }
                StoredPartition {
                    run: batch_run,
                    summary: sb.finish(),
                    first_step: self.steps,
                    last_step: self.steps,
                }
            }
            Some(old) => {
                let eta = old.run.len() + batch_run.len();
                let mut writer = RunWriter::new(&*self.dev)?;
                let mut sb = SummaryBuilder::new(
                    eta,
                    self.config.epsilon1,
                    self.config.beta1,
                    self.dev.block_size(),
                );
                let runs: Vec<SortedRun<T>> = vec![old.run, batch_run];
                hsq_storage::merge_into(&*self.dev, &runs, |v| {
                    sb.push(v);
                    writer.push(v)
                })?;
                for r in runs {
                    r.delete(&*self.dev)?;
                }
                StoredPartition {
                    run: writer.finish()?,
                    summary: sb.finish(),
                    first_step: old.first_step,
                    last_step: self.steps,
                }
            }
        };
        self.history = Some(merged);
        report.merge_io = self.dev.stats().snapshot() - before;
        report.merge_time = t2.elapsed();
        Ok(report)
    }

    /// Accurate φ-quantile (same query machinery as the real engine, over
    /// the single sorted partition).
    pub fn quantile(&self, phi: f64) -> io::Result<Option<T>> {
        assert!(phi > 0.0 && phi <= 1.0);
        let total = self.total_len();
        if total == 0 {
            return Ok(None);
        }
        let r = (phi * total as f64).ceil() as u64;
        let ss: StreamSummary<T> = self.stream.summary();
        let parts: Vec<&StoredPartition<T>> = self.history.iter().collect();
        let ctx = QueryContext::new(
            &*self.dev,
            parts,
            &ss,
            self.config.query_epsilon(),
            self.config.cache_blocks,
        );
        Ok(ctx.accurate_rank(r)?.map(|o| o.value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsq_storage::MemDevice;

    #[test]
    fn pure_streaming_gk_tracks_all_data() {
        let dev = MemDevice::new(256);
        let mut b = PureStreaming::<u64, _>::new(Arc::clone(&dev), StreamingAlgo::Gk, 0.02, 4);
        for step in 0..5u64 {
            for i in 0..400u64 {
                b.insert(step * 400 + i);
            }
            b.end_time_step().unwrap();
        }
        assert_eq!(b.len(), 2000);
        let med = b.quantile(0.5).unwrap();
        // Error is eps * N = 40 over the full history.
        assert!((med as i64 - 1000).abs() <= 45, "median {med}");
    }

    #[test]
    fn pure_streaming_loading_io_matches_batch_size() {
        // 256-byte blocks of u64 -> 32/block; 320 items = 10 blocks.
        let dev = MemDevice::new(256);
        let mut b = PureStreaming::<u64, _>::new(Arc::clone(&dev), StreamingAlgo::Gk, 0.05, 4);
        for i in 0..320u64 {
            b.insert(i);
        }
        let rep = b.end_time_step().unwrap();
        assert_eq!(rep.load_io.writes, 10);
        assert_eq!(rep.merges, 0);
    }

    #[test]
    fn pure_streaming_concat_merges_trigger() {
        let dev = MemDevice::new(256);
        let mut b = PureStreaming::<u64, _>::new(Arc::clone(&dev), StreamingAlgo::Gk, 0.05, 2);
        let mut merges = 0;
        for step in 0..9u64 {
            for i in 0..64u64 {
                b.insert(step * 64 + i);
            }
            merges += b.end_time_step().unwrap().merges;
        }
        assert!(
            merges >= 2,
            "expected cascading concat merges, got {merges}"
        );
    }

    #[test]
    fn qdigest_and_random_baselines_answer() {
        let dev = MemDevice::new(256);
        for algo in [StreamingAlgo::QDigest, StreamingAlgo::Random] {
            let mut b = PureStreaming::<u64, _>::new(Arc::clone(&dev), algo, 0.05, 4);
            for i in 0..2000u64 {
                b.insert(i);
            }
            b.end_time_step().unwrap();
            let med = b.quantile(0.5).unwrap();
            assert!(
                (med as i64 - 1000).abs() <= 250,
                "{algo:?} median {med} too far off"
            );
        }
    }

    #[test]
    fn with_memory_constructors() {
        let dev = MemDevice::new(256);
        for algo in [
            StreamingAlgo::Gk,
            StreamingAlgo::QDigest,
            StreamingAlgo::Random,
        ] {
            let mut b =
                PureStreaming::<u64, _>::with_memory(Arc::clone(&dev), algo, 20_000, 100_000, 4);
            for i in 0..20_000u64 {
                b.insert(i);
            }
            let med = b.quantile(0.5).unwrap();
            assert!(
                (med as i64 - 10_000).abs() <= 2_000,
                "{algo:?}: median {med}"
            );
            // Sketch should stay in the neighbourhood of its budget.
            assert!(
                b.memory_words() <= 60_000,
                "{algo:?}: {} words",
                b.memory_words()
            );
        }
    }

    #[test]
    fn strawman_exact_history_small_stream_error() {
        let dev = MemDevice::new(256);
        let cfg = HsqConfig::with_epsilon(0.1);
        let mut s = Strawman::<u64, _>::new(Arc::clone(&dev), cfg);
        for step in 0..5u64 {
            for i in 0..200u64 {
                s.stream_update(step * 200 + i);
            }
            s.end_time_step().unwrap();
        }
        for v in 1000..1100u64 {
            s.stream_update(v);
        }
        assert_eq!(s.total_len(), 1100);
        let med = s.quantile(0.5).unwrap().unwrap();
        // eps*m = 10.
        assert!((med as i64 - 550).abs() <= 12, "median {med}");
    }

    #[test]
    fn strawman_update_io_grows_with_history() {
        let dev = MemDevice::new(256);
        let cfg = HsqConfig::with_epsilon(0.1);
        let mut s = Strawman::<u64, _>::new(Arc::clone(&dev), cfg);
        let mut last_io = 0;
        for step in 0..6u64 {
            for i in 0..320u64 {
                s.stream_update(step * 320 + i);
            }
            let rep = s.end_time_step().unwrap();
            let io = rep.total_accesses();
            if step >= 2 {
                assert!(
                    io > last_io,
                    "strawman I/O should grow every step: {io} <= {last_io}"
                );
            }
            last_io = io;
        }
    }
}
