//! Query processing: the quick response (Algorithm 5) and the accurate
//! response (Algorithms 6–8).
//!
//! The accurate path takes the filter pair from
//! [`CombinedSummary::generate_filters`] (Algorithm 7) and bisects the
//! *value space* between them (Algorithm 8): at each step it computes the
//! exact rank `ρ₁` of the midpoint `z` in every partition (a narrowed
//! binary search over disk blocks) and an approximate rank `ρ₂` in the
//! stream (from the stream summary's rigorous bounds), recursing left or
//! right until `ρ = ρ₁ + ρ₂` lands within the acceptance window of the
//! target rank.
//!
//! Ranks throughout this module are *summed weights*, not item counts:
//! with weighted ingestion (`stream_update_weighted`) an item of weight
//! `w` contributes `w` to every `rank(z)` with `z ≥ item`, the total
//! size `N` and stream size `m` are summed weights, and every error
//! bound reads `ε·m` with `m = W`, the total stream weight. Unweighted
//! ingestion is the `w = 1` special case, where weights and counts
//! coincide — nothing below changes shape either way, because archived
//! partitions materialize weight as replication while the stream sketch
//! carries it natively.
//!
//! Two paper optimizations are implemented:
//! * per-partition search windows start from the summary's `narrow`
//!   (Algorithm 8 line 5) and tighten monotonically as the filters move;
//! * all block reads go through a [`BlockCache`], so once a partition's
//!   window falls inside one block no further I/O is charged for it
//!   (§2.4 "Optimization").

use std::io;
use std::sync::Arc;

use hsq_storage::{
    BlockCache, BlockDevice, IoOp, IoOutcome, IoScheduler, IoSnapshot, IoTicket, Item,
};

use crate::bounds::{CombinedSummary, SourceView};
use crate::stream::StreamSummary;
use crate::warehouse::StoredPartition;

/// The answer to a rank/quantile query, with its observed cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryOutcome<T> {
    /// The answering value (see module docs on Definition 1 semantics).
    pub value: T,
    /// Disk I/O consumed by this query.
    pub io: IoSnapshot,
    /// Value-space bisection steps executed.
    pub bisection_steps: u32,
    /// The algorithm's final rank estimate for `value` in `T`.
    pub estimated_rank: u64,
    /// Speculative probe-prefetch reads consumed by a later bisection
    /// step (0 unless the query ran with `io_depth > 0`).
    pub prefetch_hits: u32,
    /// Speculative probe-prefetch reads that went unused (the candidate
    /// direction the bisection did not take).
    pub prefetch_wasted: u32,
    /// Rigorous lower bound on `rank(value, T)`: `estimated_rank − ε·m`.
    pub rank_lo: u64,
    /// Rigorous upper bound on `rank(value, T)`:
    /// `estimated_rank + ε·m + quarantined` — degraded queries widen the
    /// upper bound by **exactly** the quarantined item count, since every
    /// unreadable item could fall at or below `value`.
    pub rank_hi: u64,
    /// `true` when the context excluded quarantined (confirmed-corrupt)
    /// partitions: the answer is still rank-correct within
    /// `[rank_lo, rank_hi]`, just wider than the healthy-path `ε·m`.
    pub degraded: bool,
    /// Items excluded by quarantine (suspect partitions + confirmed-lost
    /// mass) — the exact widening applied to `rank_hi`.
    pub quarantined: u64,
}

/// How [`QueryContext::accurate_rank`] seeds its bisection bracket.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SeedMode {
    /// Seed `[u, v]` from the combined summary's tightest bracket
    /// (Algorithm 7 filters with extreme-value fallback) — the default.
    #[default]
    Summary,
    /// Seed from the full universe `[T::MIN, T::MAX]`, ignoring the
    /// summary (the unoptimized Algorithm 8 baseline; kept for the
    /// step-count comparison in tests and benches).
    Domain,
}

/// Per-query evaluation context over a fixed set of partitions.
///
/// Borrows the warehouse's partitions (all of them, or a window's worth)
/// and the extracted stream summary.
pub struct QueryContext<'a, T: Item, D: BlockDevice> {
    dev: &'a D,
    partitions: Vec<&'a StoredPartition<T>>,
    stream: &'a StreamSummary<T>,
    ts: CombinedSummary<T>,
    epsilon: f64,
    cache_blocks: usize,
    /// Probe partitions concurrently (crossbeam scoped threads); see
    /// `crate::parallel`.
    parallel: bool,
    /// Overlapped-I/O scheduler for speculative bisection prefetch; when
    /// set, both candidate half-probes of the next bisection step are
    /// submitted while the current step finishes, so the next probe's
    /// first block read is (ideally) already complete.
    sched: Option<&'a IoScheduler>,
    /// Bisection bracket seeding (see [`SeedMode`]).
    seed: SeedMode,
    /// Items quarantined (excluded) from this context's partition set;
    /// widens every outcome's `rank_hi` and sets its `degraded` flag.
    quarantined: u64,
}

impl<'a, T: Item, D: BlockDevice> QueryContext<'a, T, D> {
    /// Build the combined summary `TS` over `partitions` ∪ stream.
    pub fn new(
        dev: &'a D,
        partitions: Vec<&'a StoredPartition<T>>,
        stream: &'a StreamSummary<T>,
        epsilon: f64,
        cache_blocks: usize,
    ) -> Self {
        let mut sources: Vec<SourceView<T>> = partitions
            .iter()
            .map(|p| SourceView::from_partition(&p.summary))
            .collect();
        sources.push(SourceView::from_stream(stream));
        let ts = CombinedSummary::build(&sources);
        QueryContext {
            dev,
            partitions,
            stream,
            ts,
            epsilon,
            cache_blocks,
            parallel: false,
            sched: None,
            seed: SeedMode::default(),
            quarantined: 0,
        }
    }

    /// Enable parallel partition probing (paper §4's future-work
    /// direction: "different disk partitions can be processed in
    /// parallel").
    pub fn with_parallel(mut self, yes: bool) -> Self {
        self.parallel = yes;
        self
    }

    /// Enable speculative bisection prefetch through `sched` (must
    /// schedule over the same device as this context): each bisection
    /// step submits the first block read of **both** candidate
    /// half-probes of the next step, so whichever direction the search
    /// takes finds its block warm. Answers are identical with or without
    /// prefetch — only the device round-trip latency moves off the
    /// critical path. No-op when `None`.
    pub fn with_prefetch(mut self, sched: Option<&'a IoScheduler>) -> Self {
        self.sched = sched;
        self
    }

    /// Select the bisection bracket seeding (default
    /// [`SeedMode::Summary`]).
    pub fn with_seed_mode(mut self, seed: SeedMode) -> Self {
        self.seed = seed;
        self
    }

    /// Mark this context as degraded: `quarantined` items were excluded
    /// from its partition set (corruption quarantine). Outcomes widen
    /// `rank_hi` by exactly this amount and set their `degraded` flag.
    /// No-op at 0 (the healthy path).
    pub fn with_degraded(mut self, quarantined: u64) -> Self {
        self.quarantined = quarantined;
        self
    }

    /// Total data size `N` covered by this context.
    pub fn total(&self) -> u64 {
        self.ts.total()
    }

    /// The combined summary (exposed for inspection/tests).
    pub fn combined_summary(&self) -> &CombinedSummary<T> {
        &self.ts
    }

    /// Algorithm 5: quick response for 1-based rank `r`, using only
    /// in-memory structures. Error ≤ 1.5·ε·N (Lemma 3).
    pub fn quick_rank(&self, r: u64) -> Option<T> {
        self.ts.quick_response(r.clamp(1, self.total().max(1)))
    }

    /// Algorithm 6: accurate response for 1-based rank `r`.
    /// Error O(ε·m) (Lemma 5, Theorem 2).
    pub fn accurate_rank(&self, r: u64) -> io::Result<Option<QueryOutcome<T>>> {
        let total = self.total();
        if total == 0 {
            return Ok(None);
        }
        let r = r.clamp(1, total);
        let before = self.dev.stats().snapshot();

        let (mut u, mut v) = match self.seed {
            SeedMode::Summary => self.ts.seed_bracket(r),
            SeedMode::Domain => (T::MIN, T::MAX),
        };
        // One decoded-block cache per partition so parallel probes don't
        // contend; capacity split across partitions.
        let per_cache = (self.cache_blocks / self.partitions.len().max(1)).max(2);
        let mut caches: Vec<BlockCache<T>> = self
            .partitions
            .iter()
            .map(|_| BlockCache::new(per_cache))
            .collect();
        if v <= u {
            // Both filters pin rank r exactly (possible when L and U meet
            // at r); v is Definition 1's answer.
            let mut windows: Vec<(u64, u64)> = self
                .partitions
                .iter()
                .map(|p| p.summary.narrow(v, v))
                .collect();
            let rho = self.estimate_rank(v, &mut windows, &mut caches)?;
            let eps_m = (self.epsilon * self.stream.stream_len() as f64).floor() as u64;
            return Ok(Some(QueryOutcome {
                value: v,
                io: self.dev.stats().snapshot() - before,
                bisection_steps: 0,
                estimated_rank: rho,
                prefetch_hits: 0,
                prefetch_wasted: 0,
                rank_lo: rho.saturating_sub(eps_m),
                rank_hi: rho + eps_m + self.quarantined,
                degraded: self.quarantined > 0,
                quarantined: self.quarantined,
            }));
        }

        // Per-partition rank windows from the summaries (Alg. 8 line 5).
        let mut windows: Vec<(u64, u64)> = self
            .partitions
            .iter()
            .map(|p| p.summary.narrow(u, v))
            .collect();

        let m = self.stream.stream_len();
        // Acceptance tolerance: the final guarantee is |rank(z) - r| <=
        // eps*m; since rho2 carries up to `unc` uncertainty, accept when
        // |rho - r| <= eps*m - unc (floored at 0; bisection then runs to
        // value collapse and returns the boundary, which is the
        // Definition-1 answer).
        let eps_m = (self.epsilon * m as f64).floor() as u64;
        let bs = self.dev.block_size();
        let mut prefetch = self.sched.map(SpecPrefetcher::new);

        let mut steps = 0u32;
        let (value, estimated_rank) = loop {
            steps += 1;
            if steps > T::UNIVERSE_BITS + 2 {
                // Value space exhausted; v is the smallest value whose
                // estimated rank reaches r (Definition 1's choice).
                let rho = self.estimate_rank(v, &mut windows, &mut caches)?;
                break (v, rho);
            }
            let z = T::midpoint(u, v);
            if z == u && z == v {
                let rho = self.estimate_rank(v, &mut windows, &mut caches)?;
                break (v, rho);
            }

            // Consume the speculative reads matching this step's probes
            // before the synchronous path looks for their blocks.
            if let Some(pf) = prefetch.as_mut() {
                pf.harvest(&self.partitions, &windows, bs, &mut caches);
            }
            let (rho1, part_ranks) = self.rank_in_partitions(z, &windows, &mut caches)?;
            // Speculate on the next step: submit the first-probe block of
            // both candidate half-windows (left: v=z tightens the upper
            // rank bound to the probe's result; right: u=z raises the
            // lower) while the acceptance arithmetic below runs. One of
            // them is the next step's first read — already in flight.
            if let Some(pf) = prefetch.as_mut() {
                pf.speculate(&self.partitions, &windows, &part_ranks, bs, &caches);
            }
            let (lo2, hi2) = self.stream.rank_bounds(z);
            let rho2 = lo2 + (hi2 - lo2) / 2;
            let unc = hi2 - rho2;
            let rho = rho1 + rho2;
            let tol = eps_m.saturating_sub(unc);

            if r < rho && rho - r > tol {
                // Too high: recurse left (Alg. 8 line 13).
                v = z;
                for (w, &pr) in windows.iter_mut().zip(&part_ranks) {
                    w.1 = w.1.min(pr);
                }
            } else if rho < r && r - rho > tol {
                // Too low: recurse right (Alg. 8 line 15).
                if z == u {
                    // Interval degenerated to {u, v=u+ulp}: the answer is v.
                    let rho_v = self.estimate_rank(v, &mut windows, &mut caches)?;
                    break (v, rho_v);
                }
                u = z;
                for (w, &pr) in windows.iter_mut().zip(&part_ranks) {
                    w.0 = w.0.max(pr);
                }
            } else {
                break (z, rho);
            }
        };

        let (prefetch_hits, prefetch_wasted) = match prefetch {
            Some(pf) => pf.finish(),
            None => (0, 0),
        };
        Ok(Some(QueryOutcome {
            value,
            io: self.dev.stats().snapshot() - before,
            bisection_steps: steps,
            estimated_rank,
            prefetch_hits,
            prefetch_wasted,
            rank_lo: estimated_rank.saturating_sub(eps_m),
            rank_hi: estimated_rank + eps_m + self.quarantined,
            degraded: self.quarantined > 0,
            quarantined: self.quarantined,
        }))
    }

    /// Exact rank of `z` across all partitions, plus the per-partition
    /// ranks (for window tightening). Serial or parallel per the context.
    fn rank_in_partitions(
        &self,
        z: T,
        windows: &[(u64, u64)],
        caches: &mut [BlockCache<T>],
    ) -> io::Result<(u64, Vec<u64>)> {
        let per = if self.parallel && self.partitions.len() > 1 {
            crate::parallel::par_partition_ranks(self.dev, &self.partitions, z, windows, caches)?
        } else {
            let mut per = Vec::with_capacity(self.partitions.len());
            for ((p, &w), cache) in self.partitions.iter().zip(windows).zip(caches.iter_mut()) {
                per.push(partition_rank(self.dev, p, z, w, cache)?);
            }
            per
        };
        Ok((per.iter().sum(), per))
    }

    /// ρ(z) = exact rank in HD + midpoint estimate in R.
    fn estimate_rank(
        &self,
        z: T,
        windows: &mut [(u64, u64)],
        caches: &mut [BlockCache<T>],
    ) -> io::Result<u64> {
        let (rho1, _) = self.rank_in_partitions(z, windows, caches)?;
        let (lo2, hi2) = self.stream.rank_bounds(z);
        Ok(rho1 + lo2 + (hi2 - lo2) / 2)
    }
}

/// Speculative bisection prefetch (the "summary-guided readahead" of the
/// query path): while one bisection step's acceptance arithmetic runs,
/// the first-probe block reads of **both** candidate next steps are
/// already submitted to the [`IoScheduler`], so the step actually taken
/// finds its block warm in the per-partition cache.
///
/// The first block a narrowed [`partition_rank`] search reads is fully
/// determined by the rank window (`mid = lo + (hi-lo)/2`, block =
/// `mid / per`), and both candidate windows follow from the current
/// probe's per-partition ranks — so the speculation is exact: one of the
/// two submissions per partition is the next step's first read.
struct SpecPrefetcher<'d, T: Item> {
    sched: &'d IoScheduler,
    /// In-flight speculative single-block reads: `(partition, block,
    /// ticket)`.
    pending: Vec<(usize, u64, IoTicket)>,
    hits: u32,
    wasted: u32,
    _t: std::marker::PhantomData<T>,
}

impl<'d, T: Item> SpecPrefetcher<'d, T> {
    fn new(sched: &'d IoScheduler) -> Self {
        SpecPrefetcher {
            sched,
            pending: Vec::new(),
            hits: 0,
            wasted: 0,
            _t: std::marker::PhantomData,
        }
    }

    /// First block the narrowed binary search over `window` reads, if it
    /// reads at all.
    fn first_probe_block(window: (u64, u64), per: u64) -> Option<u64> {
        let (lo, hi) = window;
        (lo < hi).then(|| (lo + (hi - lo) / 2) / per)
    }

    /// Submit the first-probe blocks of both candidate next-step windows
    /// (left candidate caps each window's upper bound at the probed
    /// rank; right candidate raises the lower bound), skipping blocks
    /// already decoded in `caches`.
    fn speculate(
        &mut self,
        partitions: &[&StoredPartition<T>],
        windows: &[(u64, u64)],
        part_ranks: &[u64],
        bs: usize,
        caches: &[BlockCache<T>],
    ) {
        for (i, ((p, &w), &pr)) in partitions.iter().zip(windows).zip(part_ranks).enumerate() {
            let per = p.run.items_per_block(bs) as u64;
            let left = (w.0, w.1.min(pr));
            let right = (w.0.max(pr), w.1);
            let mut submit = |window: (u64, u64)| {
                let Some(block) = Self::first_probe_block(window, per) else {
                    return;
                };
                if caches[i].contains(p.run.file(), block)
                    || self.pending.iter().any(|&(pi, b, _)| pi == i && b == block)
                {
                    return;
                }
                let ticket = self.sched.submit_speculative(IoOp::ReadBlocks {
                    file: p.run.file(),
                    first: block,
                    count: 1,
                });
                self.pending.push((i, block, ticket));
            };
            submit(left);
            submit(right);
        }
    }

    /// Claim the speculative reads matching this step's first-probe
    /// blocks into `caches`; poll (without blocking) the rest, dropping
    /// any that already completed as wasted.
    fn harvest(
        &mut self,
        partitions: &[&StoredPartition<T>],
        windows: &[(u64, u64)],
        bs: usize,
        caches: &mut [BlockCache<T>],
    ) {
        let mut kept = Vec::with_capacity(self.pending.len());
        for (i, block, mut ticket) in self.pending.drain(..) {
            let p = &partitions[i];
            let per = p.run.items_per_block(bs) as u64;
            let wanted = Self::first_probe_block(windows[i], per) == Some(block)
                && !caches[i].contains(p.run.file(), block);
            if wanted {
                // The block the next synchronous read would fetch: wait
                // for the in-flight copy instead of re-reading.
                let in_block = (per.min(p.run.len() - block * per)) as usize;
                match self.sched.wait(ticket) {
                    Ok(IoOutcome::Read { data, len }) if len >= in_block * T::ENCODED_LEN => {
                        // A speculative block that fails verification is
                        // simply dropped: the synchronous path re-reads
                        // and surfaces the corruption itself.
                        match p.run.decode_block_items(block, bs, &data[..len]) {
                            Ok(items) => {
                                caches[i].insert(p.run.file(), block, Arc::new(items));
                                self.hits += 1;
                            }
                            Err(_) => self.wasted += 1,
                        }
                    }
                    // A failed or short speculative read is not an error:
                    // the synchronous path re-reads and surfaces any real
                    // device fault itself.
                    _ => self.wasted += 1,
                }
            } else {
                match self.sched.try_poll(&mut ticket) {
                    Some(_) => self.wasted += 1,
                    None => kept.push((i, block, ticket)),
                }
            }
        }
        self.pending = kept;
    }

    /// Claim every outstanding speculative read as wasted and return
    /// `(hits, wasted)`. Claiming (rather than abandoning) keeps the
    /// scheduler's completion map bounded even when no barrier ever runs
    /// — the advertised long-lived-snapshot dashboard pattern; each wait
    /// is bounded by the read's own device latency, and a ticket an
    /// intervening barrier already drained resolves immediately.
    fn finish(mut self) -> (u32, u32) {
        for (_, _, ticket) in self.pending.drain(..) {
            let _ = self.sched.wait(ticket);
            self.wasted += 1;
        }
        (self.hits, self.wasted)
    }
}

/// A source of rigorous rank bounds for the value-space bisection
/// ([`bisect_summed_rank`]): `probe(z)` returns `(lo, hi)` with
/// `lo ≤ rank(z, union) ≤ hi` (summed weights under weighted ingestion)
/// over whatever union the source fronts.
///
/// The trait is the seam between *where the data lives* and *how the
/// query runs*: an in-process [`crate::ShardedSnapshot`] probes its
/// shards directly (any `FnMut(T) -> io::Result<(u64, u64)>` closure
/// implements the trait), while a networked coordinator batches one
/// probe round per call across remote nodes — bounds from disjoint
/// sources add, so both drive the *same* bisection and inherit the same
/// `ε·m` guarantee.
pub trait RankProbeSource<T: Item> {
    /// Rigorous `(lo, hi)` bounds on `rank(z)` over the fronted union.
    fn probe(&mut self, z: T) -> io::Result<(u64, u64)>;
}

impl<T: Item, F: FnMut(T) -> io::Result<(u64, u64)>> RankProbeSource<T> for F {
    fn probe(&mut self, z: T) -> io::Result<(u64, u64)> {
        self(z)
    }
}

/// Value-space bisection over *summed* rank bounds (the cross-shard
/// fan-in of [`crate::sharded`], shared by full and windowed queries —
/// and, through the [`RankProbeSource`] seam, by remote coordinators
/// probing nodes over the wire).
///
/// `probe` returns rigorous `(lo, hi)` bounds on `rank(z)` — summed
/// weights under weighted ingestion — over the queried union; the
/// midpoint estimate carries up to `hi − mid`
/// uncertainty, so a probe is accepted when `|ρ − r| ≤ eps_m − unc` and
/// the search otherwise bisects `[u, v]` to value collapse (Definition
/// 1's boundary answer). Returns `(value, estimated_rank,
/// bisection_steps)`.
pub fn bisect_summed_rank<T: Item>(
    r: u64,
    eps_m: u64,
    mut u: T,
    mut v: T,
    probe: &mut dyn RankProbeSource<T>,
) -> io::Result<(T, u64, u32)> {
    fn midpoint_estimate((lo, hi): (u64, u64)) -> u64 {
        lo + (hi - lo) / 2
    }
    if v <= u {
        // Both filters pin rank r exactly; v is Definition 1's answer.
        return Ok((v, midpoint_estimate(probe.probe(v)?), 0));
    }
    let mut steps = 0u32;
    loop {
        steps += 1;
        if steps > T::UNIVERSE_BITS + 2 {
            // Value space exhausted; v is the smallest value whose
            // estimated rank reaches r.
            break Ok((v, midpoint_estimate(probe.probe(v)?), steps));
        }
        let z = T::midpoint(u, v);
        if z == u && z == v {
            break Ok((v, midpoint_estimate(probe.probe(v)?), steps));
        }
        let (lo, hi) = probe.probe(z)?;
        let rho = lo + (hi - lo) / 2;
        let unc = hi - rho;
        let tol = eps_m.saturating_sub(unc);
        if r < rho && rho - r > tol {
            v = z; // too high: recurse left
        } else if rho < r && r - rho > tol {
            if z == u {
                // Interval degenerated to {u, v = u+ulp}: answer is v.
                break Ok((v, midpoint_estimate(probe.probe(v)?), steps));
            }
            u = z; // too low: recurse right
        } else {
            break Ok((z, rho, steps));
        }
    }
}

/// Rigorous bounds on `rank(z, T)` over `partitions ∪ stream`: the exact
/// disk-side rank (each partition probed inside its summary-narrowed
/// window, block reads served through the per-partition `caches`) plus the
/// stream summary's tracked interval.
///
/// This is the per-shard probe of the cross-shard fan-in
/// ([`crate::sharded`]): bounds from disjoint shards *add*, so a global
/// bisection over the summed bounds inherits each shard's guarantee.
pub fn union_rank_bounds<T: Item, D: BlockDevice>(
    dev: &D,
    partitions: &[&StoredPartition<T>],
    stream: &StreamSummary<T>,
    z: T,
    caches: &mut [BlockCache<T>],
) -> io::Result<(u64, u64)> {
    debug_assert_eq!(partitions.len(), caches.len());
    let mut rho1 = 0u64;
    for (p, cache) in partitions.iter().zip(caches.iter_mut()) {
        let w = p.summary.narrow(z, z);
        rho1 += partition_rank(dev, p, z, w, cache)?;
    }
    let (lo, hi) = stream.rank_bounds(z);
    Ok((rho1 + lo, rho1 + hi))
}

/// Exact `rank(z, P)` (summed weight of elements ≤ z — archived runs
/// materialize weight as replicated copies, so the count *is* the
/// weight) with the search confined to the window `[lo, hi]`, probing
/// whole blocks through the cache.
///
/// Each loop iteration reads the block containing the middle candidate
/// position and uses *all* of its items to shrink the window, so a
/// partition costs `O(log₂(window/items_per_block))` block reads — and
/// zero once the window sits inside a cached block.
pub fn partition_rank<T: Item, D: BlockDevice>(
    dev: &D,
    p: &StoredPartition<T>,
    z: T,
    window: (u64, u64),
    cache: &mut BlockCache<T>,
) -> io::Result<u64> {
    let (mut lo, mut hi) = window;
    debug_assert!(hi <= p.run.len());
    let per = p.run.items_per_block(dev.block_size()) as u64;
    loop {
        if lo >= hi {
            return Ok(lo);
        }
        let mid = lo + (hi - lo) / 2; // candidate position in [lo, hi)
        let block = mid / per;
        let items = cache.get_block(dev, &p.run, block)?;
        let base = block * per;
        let lo_in = lo.max(base);
        let hi_in = hi.min(base + items.len() as u64);
        debug_assert!(lo_in <= mid && mid < hi_in);
        let slice = &items[(lo_in - base) as usize..(hi_in - base) as usize];
        let j = slice.partition_point(|&x| x <= z) as u64;
        if j == hi_in - lo_in {
            // Everything in range ≤ z: the boundary is at or right of hi_in.
            lo = hi_in;
        } else if j == 0 {
            // First in-range item > z: boundary at or left of lo_in.
            hi = lo_in;
        } else {
            // The boundary is inside this block: exact.
            return Ok(lo_in + j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HsqConfig;
    use crate::stream::StreamProcessor;
    use crate::warehouse::Warehouse;
    use hsq_storage::MemDevice;
    use std::sync::Arc;

    fn build_scene(
        kappa: usize,
        steps: u64,
        step_size: u64,
        eps: f64,
    ) -> (
        Warehouse<u64, MemDevice>,
        StreamProcessor<u64>,
        Vec<u64>,
        HsqConfig,
    ) {
        let mut cfg = HsqConfig::with_epsilon(eps);
        cfg.kappa = kappa;
        let mut w = Warehouse::new(MemDevice::new(256), cfg.clone());
        let mut all = Vec::new();
        let mut x = 12345u64;
        let mut gen = || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x >> 33
        };
        for _ in 0..steps {
            let batch: Vec<u64> = (0..step_size).map(|_| gen()).collect();
            all.extend(&batch);
            w.add_batch(batch).unwrap();
        }
        let mut sp = StreamProcessor::new(cfg.epsilon2, cfg.beta2);
        for _ in 0..step_size {
            let v = gen();
            all.push(v);
            sp.update(v);
        }
        (w, sp, all, cfg)
    }

    fn rank_distance(data: &[u64], v: u64, r: u64) -> u64 {
        let hi = data.iter().filter(|&&x| x <= v).count() as u64;
        let lo = data.iter().filter(|&&x| x < v).count() as u64 + 1;
        if r < lo {
            lo - r
        } else {
            r.saturating_sub(hi)
        }
    }

    #[test]
    fn partition_rank_exact() {
        let dev = MemDevice::new(64); // 8 u64/block
        let data: Vec<u64> = (0..500).map(|i| i * 2).collect();
        let run = hsq_storage::write_run(&*dev, &data).unwrap();
        let summary = crate::summary::summarize_sorted(&data, 0.1, 11, 64);
        let p = StoredPartition {
            run,
            summary,
            first_step: 1,
            last_step: 1,
        };
        let mut cache = BlockCache::new(8);
        for z in [0u64, 1, 2, 499, 500, 998, 999, 5000] {
            let expect = data.iter().filter(|&&x| x <= z).count() as u64;
            let got = partition_rank(&*dev, &p, z, (0, 500), &mut cache).unwrap();
            assert_eq!(got, expect, "z = {z}");
        }
    }

    #[test]
    fn partition_rank_respects_window() {
        let dev = MemDevice::new(64);
        let data: Vec<u64> = (0..100).collect();
        let run = hsq_storage::write_run(&*dev, &data).unwrap();
        let summary = crate::summary::summarize_sorted(&data, 0.25, 5, 64);
        let p = StoredPartition {
            run,
            summary,
            first_step: 1,
            last_step: 1,
        };
        let mut cache = BlockCache::new(8);
        // True rank of 50 is 51; window [40, 60] contains it.
        let got = partition_rank(&*dev, &p, 50, (40, 60), &mut cache).unwrap();
        assert_eq!(got, 51);
        // Degenerate window answers with no I/O.
        let before = dev.stats().snapshot();
        let got = partition_rank(&*dev, &p, 123, (77, 77), &mut cache).unwrap();
        assert_eq!(got, 77);
        assert_eq!((dev.stats().snapshot() - before).total_reads(), 0);
    }

    #[test]
    fn accurate_query_error_bound() {
        let (w, sp, mut all, cfg) = build_scene(3, 12, 400, 0.05);
        let ss = sp.summary();
        let ctx = QueryContext::new(
            &**w.device(),
            w.partitions_newest_first(),
            &ss,
            cfg.epsilon(),
            cfg.cache_blocks,
        );
        all.sort_unstable();
        let n = all.len() as u64;
        let m = 400u64;
        let allowed = (cfg.epsilon() * m as f64).ceil() as u64 + 1;
        for r in [1, n / 10, n / 4, n / 2, 3 * n / 4, n] {
            let out = ctx.accurate_rank(r).unwrap().unwrap();
            let dist = rank_distance(&all, out.value, r.max(1));
            assert!(
                dist <= allowed,
                "r={r}: value {} off by {dist} ranks (allowed {allowed})",
                out.value
            );
        }
    }

    #[test]
    fn quick_query_error_bound() {
        let (w, sp, mut all, cfg) = build_scene(3, 12, 400, 0.05);
        let ss = sp.summary();
        let ctx = QueryContext::new(
            &**w.device(),
            w.partitions_newest_first(),
            &ss,
            cfg.epsilon(),
            cfg.cache_blocks,
        );
        all.sort_unstable();
        let n = all.len() as u64;
        // Lemma 3: error <= 1.5 * eps * N.
        let allowed = (1.5 * cfg.epsilon() * n as f64).ceil() as u64 + 1;
        for r in [1, n / 4, n / 2, n] {
            let v = ctx.quick_rank(r).unwrap();
            let dist = rank_distance(&all, v, r.max(1));
            assert!(dist <= allowed, "r={r}: quick off by {dist} > {allowed}");
        }
    }

    #[test]
    fn accurate_query_uses_no_io_when_summaries_suffice() {
        // With a single tiny partition that fits entirely in summary
        // resolution, queries should cost few (possibly zero) reads after
        // the first block is cached.
        let (w, sp, _, cfg) = build_scene(2, 1, 64, 0.25);
        let ss = sp.summary();
        let ctx = QueryContext::new(
            &**w.device(),
            w.partitions_newest_first(),
            &ss,
            cfg.epsilon(),
            cfg.cache_blocks,
        );
        let out = ctx.accurate_rank(64).unwrap().unwrap();
        assert!(
            out.io.total_reads() <= 12,
            "tiny dataset needed {} reads",
            out.io.total_reads()
        );
    }

    #[test]
    fn duplicate_mass_definition_one() {
        // Half the data is one repeated value; the quantile at its rank
        // range must return that value (Definition 1's smallest-element).
        let mut cfg = HsqConfig::with_epsilon(0.02);
        cfg.kappa = 3;
        let dev = MemDevice::new(256);
        let mut w = Warehouse::new(Arc::clone(&dev), cfg.clone());
        let mut all = Vec::new();
        for _ in 0..4 {
            let mut batch = vec![500_000u64; 500];
            batch.extend((0..500u64).map(|i| i * 10));
            all.extend(&batch);
            w.add_batch(batch).unwrap();
        }
        let mut sp = StreamProcessor::new(cfg.epsilon2, cfg.beta2);
        for v in 0..100u64 {
            sp.update(v * 7 + 1_000_000);
            all.push(v * 7 + 1_000_000);
        }
        let ss = sp.summary();
        let ctx = QueryContext::new(
            &*dev,
            w.partitions_newest_first(),
            &ss,
            cfg.epsilon(),
            cfg.cache_blocks,
        );
        // Rank in the middle of the duplicate plateau.
        let r = 3000;
        let out = ctx.accurate_rank(r).unwrap().unwrap();
        let dist = rank_distance(&all, out.value, r);
        let allowed = (cfg.epsilon() * 100.0).ceil() as u64 + 1;
        assert!(dist <= allowed, "plateau query off by {dist}");
    }

    #[test]
    fn prefetched_queries_match_synchronous_and_hit() {
        // Speculative bisection prefetch must change nothing about the
        // answer — only warm the caches — and must record hits.
        use hsq_storage::IoScheduler;
        let (w, sp, _, cfg) = build_scene(3, 12, 400, 0.05);
        let ss = sp.summary();
        let dev = Arc::clone(w.device());
        let sched = IoScheduler::with_reorder(
            Arc::clone(&dev) as Arc<dyn hsq_storage::BlockDevice>,
            2,
            None,
        );
        let mut total_hits = 0u32;
        for r in [1u64, 480, 1200, 2400, 4799] {
            let plain = QueryContext::new(
                &*dev,
                w.partitions_newest_first(),
                &ss,
                cfg.epsilon(),
                cfg.cache_blocks,
            )
            .accurate_rank(r)
            .unwrap()
            .unwrap();
            let prefetched = QueryContext::new(
                &*dev,
                w.partitions_newest_first(),
                &ss,
                cfg.epsilon(),
                cfg.cache_blocks,
            )
            .with_prefetch(Some(&sched))
            .accurate_rank(r)
            .unwrap()
            .unwrap();
            assert_eq!(plain.value, prefetched.value, "r={r}");
            assert_eq!(plain.estimated_rank, prefetched.estimated_rank, "r={r}");
            assert_eq!(plain.bisection_steps, prefetched.bisection_steps, "r={r}");
            assert_eq!(plain.prefetch_hits, 0);
            total_hits += prefetched.prefetch_hits;
        }
        assert!(total_hits > 0, "no speculative read was ever consumed");
        // Nothing may leak into a later barrier epoch.
        sched.barrier().unwrap();
    }

    #[test]
    fn summary_seeding_never_bisects_more_than_domain() {
        let (w, sp, _, cfg) = build_scene(3, 10, 300, 0.05);
        let ss = sp.summary();
        let ctx = |seed| {
            QueryContext::new(
                &**w.device(),
                w.partitions_newest_first(),
                &ss,
                cfg.epsilon(),
                cfg.cache_blocks,
            )
            .with_seed_mode(seed)
        };
        let n = 33 * 100; // just query across the range
        let mut strictly_fewer = false;
        for r in [1u64, n / 10, n / 4, n / 2, 3 * n / 4, n] {
            let s = ctx(SeedMode::Summary).accurate_rank(r).unwrap().unwrap();
            let d = ctx(SeedMode::Domain).accurate_rank(r).unwrap().unwrap();
            assert!(
                s.bisection_steps <= d.bisection_steps,
                "r={r}: summary {} > domain {} steps",
                s.bisection_steps,
                d.bisection_steps
            );
            strictly_fewer |= s.bisection_steps < d.bisection_steps;
        }
        assert!(strictly_fewer, "summary seeding never saved a step");
    }

    #[test]
    fn seed_bracket_falls_back_to_summary_extremes() {
        // Duplicate-heavy minimum: no TS entry has U <= 1, so the u
        // filter is undefined — the bracket must fall back to the exact
        // minimum, not the universe minimum.
        let dev = MemDevice::new(256);
        let mut w = Warehouse::new(Arc::clone(&dev), HsqConfig::with_epsilon(0.1));
        w.add_batch(vec![500u64; 100]).unwrap();
        let mut sp = StreamProcessor::new(0.05, 21);
        for _ in 0..50 {
            sp.update(500u64);
        }
        let ss = sp.summary();
        let ctx = QueryContext::new(&*dev, w.partitions_newest_first(), &ss, 0.1, 8);
        let (u, v) = ctx.combined_summary().seed_bracket(1);
        assert_eq!(u, 500, "u must fall back to the data minimum");
        assert_eq!(v, 500);
        let out = ctx.accurate_rank(1).unwrap().unwrap();
        assert_eq!(out.value, 500);
        assert_eq!(out.bisection_steps, 0, "degenerate bracket needs no search");
    }

    #[test]
    fn empty_context() {
        let dev = MemDevice::new(256);
        let ss = StreamSummary::<u64>::default();
        let ctx = QueryContext::new(&*dev, Vec::new(), &ss, 0.1, 4);
        assert!(ctx.accurate_rank(1).unwrap().is_none());
        assert!(ctx.quick_rank(1).is_none());
    }

    #[test]
    fn stream_only_context() {
        let dev = MemDevice::new(256);
        let mut sp = StreamProcessor::new(0.025, 41);
        let data: Vec<u64> = (0..2000).map(|i| (i * 37) % 5000).collect();
        for &v in &data {
            sp.update(v);
        }
        let ss = sp.summary();
        let ctx = QueryContext::new(&*dev, Vec::new(), &ss, 0.1, 4);
        let out = ctx.accurate_rank(1000).unwrap().unwrap();
        let dist = rank_distance(&data, out.value, 1000);
        assert!(dist <= (0.1 * 2000.0) as u64 + 1, "off by {dist}");
        assert_eq!(
            out.io.total_reads(),
            0,
            "stream-only query must not hit disk"
        );
    }
}
