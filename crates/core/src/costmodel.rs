//! Analytic cost model: Lemmas 6–9, Observation 1, Theorem 2 and the
//! back-of-envelope example of §2.4.
//!
//! These closed forms are what the experiment harness compares measured
//! block counts against, and what `sec24_cost_model` (the §2.4
//! illustration binary) evaluates at warehouse scale.

/// `⌈log_κ T⌉`, the number of merge levels (≥ 1 once data exists).
pub fn merge_levels(kappa: usize, time_steps: u64) -> u32 {
    assert!(kappa >= 2);
    if time_steps <= 1 {
        return 1;
    }
    let mut levels = 0u32;
    let mut cap = 1u64;
    while cap < time_steps {
        cap = cap.saturating_mul(kappa as u64);
        levels += 1;
    }
    levels
}

/// Maximum number of live partitions: `κ` per level (§2.1 invariant).
pub fn max_partitions(kappa: usize, time_steps: u64) -> u64 {
    kappa as u64 * (merge_levels(kappa, time_steps) as u64 + 1)
}

/// Lemma 6: amortized disk accesses per time step to update `HD`,
/// `O((n/(B·T))·log_κ T)`, evaluated with constant 1 — the paper's own
/// §2.4 arithmetic. `n_blocks` = total historical data in blocks.
pub fn update_ios_per_step(n_blocks: f64, time_steps: u64, kappa: usize) -> f64 {
    assert!(time_steps >= 1);
    // One write of each block (load + sort) plus one read+write per merge
    // level.
    let levels = merge_levels(kappa, time_steps) as f64;
    (n_blocks / time_steps as f64) * (1.0 + 2.0 * levels)
}

/// Lemma 7: worst-case disk accesses for one accurate query,
/// `O(log_κ T · log₂(n/B) · log₂ |U|)`.
pub fn query_ios_bound(time_steps: u64, kappa: usize, n_blocks: f64, universe_bits: u32) -> f64 {
    let levels = merge_levels(kappa, time_steps) as f64;
    levels * n_blocks.max(2.0).log2() * universe_bits as f64
}

/// Practical query estimate: the bisection stops after a constant number
/// of effective rounds (the acceptance window plus the block cache cut
/// recursion early — §2.4 Optimization), so the working estimate is
/// `partitions · log₂(blocks-per-partition)` random reads.
pub fn query_ios_estimate(time_steps: u64, kappa: usize, n_blocks: f64) -> f64 {
    let parts = max_partitions(kappa, time_steps) as f64;
    let per_part_blocks = (n_blocks / parts).max(2.0);
    parts * per_part_blocks.log2()
}

/// Lemma 8: words of memory for `HS`: `O(κ·log_κ T / ε₁)`.
pub fn hist_memory_words(epsilon1: f64, kappa: usize, time_steps: u64) -> f64 {
    let levels = merge_levels(kappa, time_steps) as f64 + 1.0;
    3.0 * kappa as f64 * levels * (1.0 / epsilon1 + 2.0)
}

/// Lemma 9 / Theorem 1: words of memory for the stream sketch plus `SS`:
/// `O(log(ε₂·m)/ε₂)`.
pub fn stream_memory_words(epsilon2: f64, m: u64) -> f64 {
    let log_term = (epsilon2 * m as f64 + 2.0).log2().max(1.0);
    3.0 * log_term / epsilon2 + 3.0 / epsilon2
}

/// Observation 1: total memory `O((1/ε)(log(ε m) + κ·log_κ T))` in words,
/// with `ε₁ = ε/2`, `ε₂ = ε/4` per Algorithm 1.
pub fn total_memory_words(epsilon: f64, m: u64, kappa: usize, time_steps: u64) -> f64 {
    hist_memory_words(epsilon / 2.0, kappa, time_steps) + stream_memory_words(epsilon / 4.0, m)
}

/// The §2.4 illustration, parameterized: returns
/// `(update_ios_per_step, query_ios_estimate, memory_words)`.
///
/// Paper instance: time step = 1 day for 3 years (T = 1095), 10 TB per
/// step... evaluated as 10⁸ total blocks of B = 100 KB (the paper's own
/// arithmetic — see EXPERIMENTS.md), κ = 2, ε = 10⁻⁶, m = one step's
/// data. Paper's reported orders: ~10⁶ update I/Os/day, ~350 query I/Os,
/// ~3·10⁵ words.
pub fn section24_example(
    total_blocks: f64,
    time_steps: u64,
    kappa: usize,
    epsilon: f64,
    stream_items: u64,
) -> (f64, f64, f64) {
    (
        update_ios_per_step(total_blocks, time_steps, kappa),
        query_ios_estimate(time_steps, kappa, total_blocks),
        total_memory_words(epsilon, stream_items, kappa, time_steps),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_levels_basics() {
        assert_eq!(merge_levels(2, 1), 1);
        assert_eq!(merge_levels(2, 2), 1);
        assert_eq!(merge_levels(2, 3), 2);
        assert_eq!(merge_levels(2, 100), 7); // 2^7 = 128 >= 100
        assert_eq!(merge_levels(10, 100), 2);
        assert_eq!(merge_levels(10, 1000), 3);
    }

    #[test]
    fn update_cost_decreases_with_kappa() {
        let small = update_ios_per_step(1e8, 100, 2);
        let large = update_ios_per_step(1e8, 100, 10);
        assert!(large < small);
    }

    #[test]
    fn section24_orders_of_magnitude() {
        // The paper's instance: 10^8 blocks over T = 3*365 steps, kappa=2.
        let t = 3 * 365;
        let (update, query, memory) = section24_example(1e8, t, 2, 1e-6, 10u64.pow(9));
        // "of the order of 10^6" update I/Os per day.
        assert!(
            (1e5..1e8).contains(&update),
            "update {update} outside 10^5..10^8"
        );
        // "of the order of 350" query I/Os: our estimate within ~10x.
        assert!((30.0..6000.0).contains(&query), "query {query}");
        // "order of 300000 words": within ~100x given the 1/eps term
        // dominates at eps = 1e-6 (see EXPERIMENTS.md note).
        assert!(memory > 1e5, "memory {memory}");
    }

    #[test]
    fn memory_grows_as_epsilon_shrinks() {
        let a = total_memory_words(1e-2, 1 << 30, 10, 100);
        let b = total_memory_words(1e-4, 1 << 30, 10, 100);
        assert!(b > a);
    }

    #[test]
    fn query_bound_dominates_estimate() {
        let bound = query_ios_bound(100, 10, 1e6, 64);
        let est = query_ios_estimate(100, 10, 1e6);
        assert!(bound > est);
    }
}
