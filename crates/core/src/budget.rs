//! Memory budgeting: bytes of main memory → `(ε₁, ε₂)`.
//!
//! The paper's experiments are driven by a *memory budget*, not by ε:
//! "Given a memory budget, we allocate 50 percent of the memory to the
//! stream summary and 50 percent of the memory to the historical summary"
//! (§3.1 Implementation Details), noting this is at most a factor 2 from
//! the optimal split. This module inverts the two memory formulas:
//!
//! * historical summary `HS`: ≤ `κ·(⌈log_κ T⌉+1)` partitions, each with a
//!   `β₁`-entry summary of ~3 words/entry (Lemma 8) →
//!   `β₁ = budget/(3·partitions)`, `ε₁ = 1/(β₁−1)`;
//! * stream summary: a GK sketch of `O((1/ε₂)·log(ε₂m))` tuples of 3 words
//!   (Lemma 9, Theorem 1) → solve `3·(c/ε₂)·log₂(ε₂m+2) = budget` for `ε₂`
//!   by fixed-point iteration.

use crate::config::HsqConfig;

/// A derived memory plan: error parameters chosen to fit a byte budget.
#[derive(Clone, Copy, Debug)]
pub struct MemoryPlan {
    /// Historical-summary error parameter.
    pub epsilon1: f64,
    /// Stream-summary error parameter.
    pub epsilon2: f64,
    /// Words given to the historical summary.
    pub hist_words: usize,
    /// Words given to the stream summary.
    pub stream_words: usize,
}

/// Bytes per "word" in the paper's accounting (64-bit values/pointers).
pub const WORD_BYTES: usize = 8;

/// Empirical GK space constant: `tuples ≈ (GK_SPACE_CONST/ε)·log₂(εn + 2)`.
///
/// The worst-case bound has constant 11/2; measured behaviour of this
/// implementation on the four evaluation datasets is ≈ 0.9; we budget with
/// 1.0 so the sketch stays within its allocation.
pub const GK_SPACE_CONST: f64 = 1.0;

/// Plan a memory split for a deployment expecting `expected_steps` time
/// steps of about `expected_step_items` elements each, with merge
/// threshold `kappa`.
pub fn plan_memory(
    budget_bytes: usize,
    kappa: usize,
    expected_steps: u64,
    expected_step_items: u64,
) -> MemoryPlan {
    assert!(budget_bytes >= 64 * WORD_BYTES, "budget too small");
    assert!(kappa >= 2);
    let total_words = budget_bytes / WORD_BYTES;
    let hist_words = total_words / 2;
    let stream_words = total_words - hist_words;

    // Historical side: partitions ≤ kappa * (levels + 1).
    let levels = (expected_steps.max(2) as f64).log(kappa as f64).ceil() as usize + 1;
    let max_partitions = kappa * levels;
    let beta1 = (hist_words / (3 * max_partitions)).max(2);
    let epsilon1 = 1.0 / (beta1 as f64 - 1.0);

    // Stream side: fixed-point for epsilon2.
    let epsilon2 = epsilon_for_gk_budget(stream_words, expected_step_items);

    MemoryPlan {
        epsilon1,
        epsilon2,
        hist_words,
        stream_words,
    }
}

/// Solve `3·(c/ε)·log₂(εm + 2) + 3/ε ≈ words` for `ε` (the `3/ε` term is
/// the extracted summary `SS` of `β₂` entries).
pub fn epsilon_for_gk_budget(words: usize, expected_m: u64) -> f64 {
    let words = words.max(32) as f64;
    let m = expected_m.max(16) as f64;
    let mut eps = 0.01f64;
    for _ in 0..40 {
        let log_term = (eps * m + 2.0).log2().max(1.0);
        let next = (3.0 * GK_SPACE_CONST * log_term + 3.0) / words;
        let next = next.clamp(1e-9, 1.0);
        if (next - eps).abs() < 1e-12 {
            eps = next;
            break;
        }
        eps = next;
    }
    eps
}

impl MemoryPlan {
    /// Materialize an [`HsqConfig`] from the plan.
    pub fn into_config(self, kappa: usize) -> HsqConfig {
        let mut cfg = HsqConfig::with_epsilons(self.epsilon1, self.epsilon2);
        cfg.kappa = kappa;
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_splits_half_and_half() {
        let plan = plan_memory(1 << 20, 10, 100, 1 << 20);
        assert_eq!(plan.hist_words + plan.stream_words, (1 << 20) / WORD_BYTES);
        assert!((plan.hist_words as i64 - plan.stream_words as i64).abs() <= 1);
    }

    #[test]
    fn bigger_budget_means_smaller_epsilons() {
        let small = plan_memory(1 << 16, 10, 100, 1 << 20);
        let large = plan_memory(1 << 22, 10, 100, 1 << 20);
        assert!(large.epsilon1 < small.epsilon1);
        assert!(large.epsilon2 < small.epsilon2);
    }

    #[test]
    fn gk_budget_inversion_is_consistent() {
        // The epsilon chosen for a budget should imply memory close to it.
        for &words in &[1000usize, 10_000, 100_000] {
            let m = 1_000_000u64;
            let eps = epsilon_for_gk_budget(words, m);
            let implied =
                3.0 * GK_SPACE_CONST / eps * (eps * m as f64 + 2.0).log2().max(1.0) + 3.0 / eps;
            let ratio = implied / words as f64;
            assert!(
                (0.5..2.0).contains(&ratio),
                "words={words}: eps={eps}, implied {implied}"
            );
        }
    }

    #[test]
    fn larger_kappa_means_more_partitions_smaller_beta1() {
        let a = plan_memory(1 << 20, 2, 100, 1 << 20);
        let b = plan_memory(1 << 20, 30, 100, 1 << 20);
        // More partitions to summarize at kappa=30 -> coarser per-partition
        // summaries (bigger epsilon1).
        assert!(b.epsilon1 > a.epsilon1);
    }

    #[test]
    fn into_config_propagates() {
        let plan = plan_memory(1 << 20, 7, 50, 1 << 16);
        let cfg = plan.into_config(7);
        assert_eq!(cfg.kappa, 7);
        assert!((cfg.epsilon1 - plan.epsilon1).abs() < 1e-12);
    }
}
