//! Expiry-under-query property harness: retention never corrupts an
//! answer.
//!
//! The harness (module [`harness`]) is reusable machinery for any test
//! that ingests a random schedule under a random [`RetentionPolicy`] and
//! wants to know three things:
//!
//! 1. **Policy soundness** — every limit the policy declares actually
//!    holds on every shard after every step (age horizon, partition
//!    count, byte cap);
//! 2. **Accounting** — the engine's reported sizes equal the exact
//!    retained multiset, reconstructed *independently* from the input
//!    schedule, the shard hash, and the partitions' step ranges;
//! 3. **Accuracy under expiry** — every full and windowed quantile stays
//!    within `ε·m` of the exact quantile computed over retained items
//!    only (Theorem 2 restricted to the retained union), across shard
//!    counts N ∈ {1, 2, 8}.
//!
//! Plus the acceptance check: a byte-capped engine ingesting indefinitely
//! holds steady-state partition bytes at or under the cap.

use hsq_core::retention::RetentionPolicy;
use hsq_core::sharded::shard_index;
use hsq_core::{HistStreamQuantiles, HsqConfig, ShardedEngine};
use hsq_storage::MemDevice;
use proptest::prelude::*;

mod harness {
    use super::*;

    /// Shard counts every property sweeps (the ISSUE's N ∈ {1, 2, 8}).
    pub const SHARD_COUNTS: [usize; 3] = [1, 2, 8];

    /// Rank distance from target `r` to the occupied rank interval of `v`.
    pub fn rank_distance(sorted: &[u64], v: u64, r: u64) -> u64 {
        let hi = sorted.partition_point(|&x| x <= v) as u64;
        let lo = sorted.partition_point(|&x| x < v) as u64 + 1;
        if lo > hi {
            return r.abs_diff(hi); // v not present: rank(v) = hi
        }
        if r < lo {
            lo - r
        } else {
            r.saturating_sub(hi)
        }
    }

    /// Derive a policy from raw generated integers: kind selects a single
    /// limit or a composition of all three.
    pub fn make_policy(kind: u8, age: u64, parts: usize, cap_blocks: u64) -> RetentionPolicy {
        let bytes = cap_blocks * 256; // device block size used by the harness
        match kind % 4 {
            0 => RetentionPolicy::unbounded().with_max_age_steps(age),
            1 => RetentionPolicy::unbounded().with_max_partitions(parts),
            2 => RetentionPolicy::unbounded().with_max_bytes(bytes),
            _ => RetentionPolicy::unbounded()
                .with_max_age_steps(age)
                .with_max_partitions(parts)
                .with_max_bytes(bytes),
        }
    }

    pub fn config(eps: f64, kappa: usize, policy: RetentionPolicy) -> HsqConfig {
        HsqConfig::builder()
            .epsilon(eps)
            .merge_threshold(kappa)
            .retention(policy)
            .build()
    }

    /// Every declared limit must hold on every shard (age horizon, count
    /// cap, byte cap — the latter with the documented newest-partition
    /// exception).
    pub fn assert_policy_holds(e: &ShardedEngine<u64, MemDevice>, policy: &RetentionPolicy) {
        for (s, shard) in e.shards().iter().enumerate() {
            let wh = shard.warehouse();
            if let Some(age) = policy.max_age_steps {
                let horizon = wh.steps().saturating_sub(age);
                for p in wh.partitions_newest_first() {
                    assert!(
                        p.last_step > horizon,
                        "shard {s}: partition ending at step {} outlived horizon {horizon}",
                        p.last_step
                    );
                }
            }
            if let Some(max_parts) = policy.max_partitions {
                assert!(
                    wh.num_partitions() <= max_parts,
                    "shard {s}: {} partitions > cap {max_parts}",
                    wh.num_partitions()
                );
            }
            if let Some(max_bytes) = policy.max_bytes {
                let bytes = wh.partition_bytes().unwrap();
                assert!(
                    bytes <= max_bytes || wh.num_partitions() <= 1,
                    "shard {s}: {bytes} bytes > cap {max_bytes} with {} partitions",
                    wh.num_partitions()
                );
            }
        }
    }

    /// The exact multiset a shard retains, reconstructed independently:
    /// items of the input schedule that hash to the shard and whose step
    /// is covered by one of the shard's retained partition ranges.
    fn shard_retained(e: &ShardedEngine<u64, MemDevice>, steps: &[Vec<u64>], s: usize) -> Vec<u64> {
        let n = e.num_shards();
        let mut out = Vec::new();
        for p in e.shard(s).warehouse().partitions_newest_first() {
            for step in p.first_step..=p.last_step {
                out.extend(
                    steps[(step - 1) as usize]
                        .iter()
                        .copied()
                        .filter(|&v| shard_index(v, n) == s),
                );
            }
        }
        out
    }

    /// Exact retained union across all shards plus the live stream,
    /// sorted. Also cross-checks the engine's size accounting.
    pub fn retained_union(
        e: &ShardedEngine<u64, MemDevice>,
        steps: &[Vec<u64>],
        live: &[u64],
    ) -> Vec<u64> {
        let mut all = Vec::new();
        for s in 0..e.num_shards() {
            all.extend(shard_retained(e, steps, s));
        }
        assert_eq!(
            all.len() as u64,
            e.historical_len(),
            "retained accounting drifted from the exact multiset"
        );
        all.extend(live.iter().copied());
        assert_eq!(all.len() as u64, e.total_len());
        all.sort_unstable();
        all
    }

    /// Exact content of the newest `w`-step window (per shard) plus the
    /// live stream, sorted; `None` when any shard's partitions misalign.
    pub fn window_union(
        e: &ShardedEngine<u64, MemDevice>,
        steps: &[Vec<u64>],
        live: &[u64],
        w: u64,
    ) -> Option<Vec<u64>> {
        let n = e.num_shards();
        let mut out = Vec::new();
        for s in 0..n {
            let parts = e.shard(s).warehouse().window_partitions(w)?;
            for p in parts {
                for step in p.first_step..=p.last_step {
                    out.extend(
                        steps[(step - 1) as usize]
                            .iter()
                            .copied()
                            .filter(|&v| shard_index(v, n) == s),
                    );
                }
            }
        }
        out.extend(live.iter().copied());
        out.sort_unstable();
        Some(out)
    }

    /// The full expiry-under-query check on one engine: policy holds,
    /// accounting is exact, and every full + windowed quantile stays
    /// within `ε·m` of the exact quantile over retained items only.
    pub fn check_expiry_under_query(
        e: &ShardedEngine<u64, MemDevice>,
        policy: &RetentionPolicy,
        steps: &[Vec<u64>],
        live: &[u64],
        eps: f64,
    ) {
        assert_policy_holds(e, policy);
        let m = live.len() as u64;
        let allowed = (eps * m as f64).ceil() as u64 + 1;

        // Full queries over the retained union.
        let retained = retained_union(e, steps, live);
        if retained.is_empty() {
            assert!(e.quantile(0.5).unwrap().is_none());
        } else {
            for phi in [0.05, 0.5, 0.95, 1.0] {
                let v = e.quantile(phi).unwrap().unwrap();
                let r =
                    ((phi * retained.len() as f64).ceil() as u64).clamp(1, retained.len() as u64);
                let dist = rank_distance(&retained, v, r);
                assert!(
                    dist <= allowed,
                    "full: shards={} phi={phi}: off by {dist} (allowed {allowed})",
                    e.num_shards()
                );
            }
        }

        // Windowed queries over every exactly-answerable window.
        for w in e.available_windows() {
            let win = window_union(e, steps, live, w)
                .expect("advertised window must align on every shard");
            if win.is_empty() {
                continue;
            }
            for phi in [0.1, 0.5, 0.9, 1.0] {
                let v = e
                    .quantile_in_window(w, phi)
                    .unwrap()
                    .expect("advertised window must answer");
                let r = ((phi * win.len() as f64).ceil() as u64).clamp(1, win.len() as u64);
                let dist = rank_distance(&win, v, r);
                assert!(
                    dist <= allowed,
                    "window {w}: shards={} phi={phi}: value {v} off by {dist} (allowed {allowed})",
                    e.num_shards()
                );
            }
            // Windowed rank queries agree with the window's extremes.
            let lo = e.rank_in_window(w, 1).unwrap().unwrap().value;
            let dist = rank_distance(&win, lo, 1);
            assert!(dist <= allowed, "window {w} min off by {dist}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The headline property: for random ingest schedules and random
    /// retention policies, every windowed quantile stays within eps*m of
    /// the exact quantile over retained items only — shards N in {1,2,8}.
    #[test]
    fn expiry_under_query_random_schedules(
        steps in proptest::collection::vec(
            proptest::collection::vec(0u64..100_000, 0..120), 4..16),
        live in proptest::collection::vec(0u64..100_000, 0..100),
        kind in 0u8..4,
        age in 1u64..6,
        max_parts in 1usize..5,
        cap_blocks in 4u64..40,
        kappa in 2usize..5,
    ) {
        let eps = 0.05;
        let policy = harness::make_policy(kind, age, max_parts, cap_blocks);
        for &n in &harness::SHARD_COUNTS {
            let cfg = harness::config(eps, kappa, policy.clone());
            let mut e = ShardedEngine::<u64, _>::with_shards(n, cfg, |_| MemDevice::new(256));
            for b in &steps {
                e.ingest_step(b).unwrap();
            }
            e.stream_extend(&live);
            for s in e.shards() {
                s.warehouse().check_invariants().unwrap();
            }
            harness::check_expiry_under_query(&e, &policy, &steps, &live, eps);
        }
    }

    /// The same property through the plain (unsharded) engine API, which
    /// exercises `QueryContext` windows rather than the fan-in path.
    #[test]
    fn single_engine_expiry_under_query(
        steps in proptest::collection::vec(
            proptest::collection::vec(0u64..50_000, 1..100), 3..14),
        live in proptest::collection::vec(0u64..50_000, 0..80),
        age in 1u64..6,
        kappa in 2usize..5,
    ) {
        let eps = 0.1;
        let policy = RetentionPolicy::unbounded().with_max_age_steps(age);
        let cfg = harness::config(eps, kappa, policy);
        let mut h = HistStreamQuantiles::<u64, _>::new(MemDevice::new(256), cfg);
        for b in &steps {
            h.ingest_step(b).unwrap();
        }
        for chunk in live.chunks(37) {
            h.stream_extend(chunk);
        }
        h.warehouse().check_invariants().unwrap();
        let m = live.len() as u64;
        let allowed = (eps * m as f64).ceil() as u64 + 1;

        // Exact retained multiset from the schedule + partition ranges.
        let mut retained: Vec<u64> = Vec::new();
        for p in h.warehouse().partitions_newest_first() {
            for step in p.first_step..=p.last_step {
                retained.extend(&steps[(step - 1) as usize]);
            }
        }
        prop_assert_eq!(retained.len() as u64, h.historical_len());
        retained.extend(&live);
        retained.sort_unstable();

        for w in h.available_windows() {
            let mut win: Vec<u64> = Vec::new();
            for p in h.warehouse().window_partitions(w).unwrap() {
                for step in p.first_step..=p.last_step {
                    win.extend(&steps[(step - 1) as usize]);
                }
            }
            win.extend(&live);
            win.sort_unstable();
            if win.is_empty() {
                continue;
            }
            for phi in [0.25, 0.5, 0.75, 1.0] {
                let v = h.quantile_in_window(w, phi).unwrap().unwrap();
                let r = ((phi * win.len() as f64).ceil() as u64).clamp(1, win.len() as u64);
                let dist = harness::rank_distance(&win, v, r);
                prop_assert!(
                    dist <= allowed,
                    "window {w} phi={phi}: off by {dist} (allowed {allowed})"
                );
            }
        }
        if !retained.is_empty() {
            let v = h.quantile(0.5).unwrap().unwrap();
            let r = (retained.len() as u64).div_ceil(2).max(1);
            let dist = harness::rank_distance(&retained, v, r);
            prop_assert!(dist <= allowed, "full median off by {dist}");
        }
    }

    /// Snapshots taken before expiry keep answering from the pinned,
    /// pre-expiry state: retention must never change a snapshot's answer.
    #[test]
    fn snapshots_immune_to_expiry(
        steps in proptest::collection::vec(
            proptest::collection::vec(0u64..80_000, 5..80), 3..8),
        more in proptest::collection::vec(
            proptest::collection::vec(0u64..80_000, 5..80), 4..10),
        age in 1u64..4,
        kappa in 2usize..4,
    ) {
        let policy = RetentionPolicy::unbounded().with_max_age_steps(age);
        let cfg = harness::config(0.1, kappa, policy);
        let mut h = HistStreamQuantiles::<u64, _>::new(MemDevice::new(256), cfg);
        for b in &steps {
            h.ingest_step(b).unwrap();
        }
        let snap = h.snapshot();
        let n_before = snap.total_len();
        let answers_before: Vec<_> = [0.1, 0.5, 0.9]
            .iter()
            .map(|&phi| snap.quantile(phi).unwrap())
            .collect();
        // Enough further steps to expire everything the snapshot pins.
        for b in &more {
            h.ingest_step(b).unwrap();
        }
        let answers_after: Vec<_> = [0.1, 0.5, 0.9]
            .iter()
            .map(|&phi| snap.quantile(phi).unwrap())
            .collect();
        prop_assert_eq!(snap.total_len(), n_before);
        prop_assert_eq!(answers_before, answers_after);
    }
}

/// Acceptance criterion: a policy-bounded engine ingesting indefinitely
/// holds steady-state partition bytes at or under the configured cap, on
/// every step boundary, while still answering windowed queries.
#[test]
fn byte_capped_engine_holds_steady_state() {
    let cap = 16 * 1024u64; // 16 KiB on a 256-byte-block device
    let policy = RetentionPolicy::unbounded().with_max_bytes(cap);
    let cfg = HsqConfig::builder()
        .epsilon(0.05)
        .merge_threshold(4)
        .retention(policy)
        .build();
    let dev = MemDevice::new(256);
    let mut h = HistStreamQuantiles::<u64, _>::new(std::sync::Arc::clone(&dev), cfg);
    let mut x = 3u64;
    let mut gen = || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        x >> 33
    };
    for step in 0..300u64 {
        let batch: Vec<u64> = (0..150).map(|_| gen()).collect();
        h.ingest_step(&batch).unwrap();
        let bytes = h.warehouse().partition_bytes().unwrap();
        assert!(
            bytes <= cap,
            "step {step}: {bytes} partition bytes over the {cap} cap"
        );
        // No snapshots are live, so the device holds the partitions only:
        // resident bytes are bounded too (no deferred-deletion leak).
        assert!(
            dev.resident_bytes() <= cap,
            "step {step}: {} resident bytes over the {cap} cap",
            dev.resident_bytes()
        );
        if step % 37 == 0 {
            if let Some(&w) = h.available_windows().first() {
                assert!(h.quantile_in_window(w, 0.99).unwrap().is_some());
            }
        }
    }
    // The engine did not degenerate: a healthy share of the cap is used.
    assert!(
        h.warehouse().partition_bytes().unwrap() >= cap / 4,
        "steady state should sit near the cap"
    );
    assert!(h.historical_len() > 0);
}

/// The same steady-state guarantee through the sharded facade: every
/// shard independently respects the cap on the shared step boundary.
#[test]
fn sharded_byte_cap_steady_state() {
    let cap = 8 * 1024u64;
    let policy = RetentionPolicy::unbounded().with_max_bytes(cap);
    let cfg = HsqConfig::builder()
        .epsilon(0.05)
        .merge_threshold(3)
        .retention(policy)
        .build();
    let mut e = ShardedEngine::<u64, _>::with_shards(4, cfg, |_| MemDevice::new(256));
    let mut x = 11u64;
    let mut gen = || {
        x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        x >> 32
    };
    for step in 0..120u64 {
        let batch: Vec<u64> = (0..400).map(|_| gen()).collect();
        e.ingest_step(&batch).unwrap();
        for (s, shard) in e.shards().iter().enumerate() {
            let bytes = shard.warehouse().partition_bytes().unwrap();
            assert!(
                bytes <= cap,
                "step {step} shard {s}: {bytes} bytes over cap {cap}"
            );
        }
    }
    // Cross-shard queries still answer over the retained union.
    assert!(e.quantile(0.5).unwrap().is_some());
    let windows = e.available_windows();
    assert!(!windows.is_empty());
}
