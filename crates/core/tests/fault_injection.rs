//! Deterministic fault-injection & interleaving harness for the storage
//! path (the test-archetype centerpiece of the overlapped-I/O PR).
//!
//! The durability claim under test is PR 3's write-ahead discipline, now
//! that writes are concurrent: *a [`ManifestLog`]'s last durable record
//! never references a missing partition file, at **any** crash point* —
//! process death or power loss between any two device mutations, torn
//! final blocks included, with archival either serial or overlapped.
//!
//! The harness shape:
//!
//! 1. run the append→sync→compact workload once un-faulted to learn the
//!    total mutation count `M` and the non-crashing oracle state at
//!    every step;
//! 2. for **every** crash point `k ∈ 0..=M`, rerun the workload on a
//!    fresh [`FaultDevice`] armed with `CrashAfter(k)` (or
//!    `TornWrite(k)`), "reboot" ([`FaultDevice::revive`]), recover from
//!    the manifest id the two-phase protocol had durably committed, and
//!    assert the recovered engine's quantile answers match the oracle
//!    within `ε·m` (the stream is empty after recovery, so the accurate
//!    response is exact — the bound degenerates to equality);
//! 3. with `io_depth > 0` the scheduler executes the same ops on worker
//!    threads — under `HSQ_IO_REORDER_SEED` (the CI seed matrix) the
//!    cross-file completion order is deterministically shuffled within
//!    each barrier epoch, so the sweep explores reordered interleavings
//!    too.

use std::sync::Arc;

use hsq_core::manifest::{self, ManifestLog};
use hsq_core::query::QueryContext;
use hsq_core::stream::StreamProcessor;
use hsq_core::{HsqConfig, RetentionPolicy, Warehouse};
use hsq_storage::{BlockDevice, Fault, FaultDevice, FileId, MemDevice};

type FDev = FaultDevice<MemDevice>;

const STEPS: u64 = 8;
const STEP_ITEMS: u64 = 48;
const COMPACT_EVERY: u64 = 3;

/// Aggressive everything: kappa = 2 merges constantly, a 5-step TTL
/// expires under the log's pins, compaction handoffs land mid-workload.
fn cfg(io_depth: usize) -> HsqConfig {
    HsqConfig::builder()
        .epsilon(0.1)
        .merge_threshold(2)
        .retention(RetentionPolicy::unbounded().with_max_age_steps(5))
        .io_depth(io_depth)
        .build()
}

/// Step `step`'s batch (deterministic, distinct values).
fn batch(step: u64) -> Vec<u64> {
    (0..STEP_ITEMS).map(|i| step * 1_000 + i * 7).collect()
}

/// All retained data of `w`, sorted (reads every partition — which is
/// itself the "no missing file" assertion).
fn sorted_data<D: BlockDevice>(w: &Warehouse<u64, D>, label: &str) -> Vec<u64> {
    let mut all = Vec::new();
    for p in w.partitions_newest_first() {
        all.extend(
            p.run
                .read_all(&**w.device())
                .unwrap_or_else(|e| panic!("{label}: partition file unreadable: {e}")),
        );
    }
    all.sort_unstable();
    all
}

/// The non-crashing oracle: retained data after `s` steps, for every `s`.
fn oracle_states() -> Vec<Vec<u64>> {
    let mut w = Warehouse::<u64, _>::new(MemDevice::new(256), cfg(0));
    let mut states = vec![Vec::new()];
    for step in 1..=STEPS {
        w.add_batch(batch(step)).unwrap();
        states.push(sorted_data(&w, "oracle"));
    }
    states
}

/// Drive the workload until completion or the first injected failure,
/// simulating process death at the failure (the log's write-ahead pins
/// are leaked via `simulate_crash` — `Drop` does not run in a crash).
/// Returns the manifest id the two-phase protocol had durably committed,
/// `None` when the crash preceded the first base record.
fn drive(dev: &Arc<FDev>, io_depth: usize) -> Option<FileId> {
    let mut w = Warehouse::<u64, _>::new(Arc::clone(dev), cfg(io_depth));
    let Ok(mut log) = ManifestLog::create(&w) else {
        return None;
    };
    let mut committed = log.file();
    for step in 1..=STEPS {
        if w.add_batch(batch(step)).is_err() || log.append(&w).is_err() {
            break;
        }
        if step % COMPACT_EVERY == 0 {
            // Two-phase handoff: write the new base, durably record its
            // id "out of band" (this variable), only then delete the old
            // log. A crash anywhere in between leaves `committed` naming
            // a file that recovers.
            match log.compact(&w) {
                Ok(old) => {
                    committed = log.file();
                    if dev.delete(old).is_err() {
                        break;
                    }
                }
                Err(_) => break,
            }
        }
    }
    let _ = log.simulate_crash(); // leak the pins, free the scheduler
    Some(committed)
}

/// "Reboot" the device and recover from `committed`; the recovered
/// warehouse must be structurally valid, reference no missing file, and
/// answer quantiles exactly like the oracle at its recovered step count.
fn assert_recovers(dev: &Arc<FDev>, committed: FileId, oracle: &[Vec<u64>], label: &str) {
    dev.revive();
    let cfg = cfg(0);
    let recovered: Warehouse<u64, FDev> =
        manifest::recover(Arc::clone(dev), cfg.clone(), committed)
            .unwrap_or_else(|e| panic!("{label}: recovery failed: {e}"));
    recovered
        .check_invariants()
        .unwrap_or_else(|e| panic!("{label}: invariants violated: {e}"));
    let data = sorted_data(&recovered, label);
    let expect = &oracle[recovered.steps() as usize];
    assert_eq!(
        &data,
        expect,
        "{label}: recovered multiset diverges from the oracle at step {}",
        recovered.steps()
    );
    if expect.is_empty() {
        return;
    }
    // Quantile answers vs the oracle: m = 0 after recovery, so the
    // accurate response's eps*m window degenerates to exact equality.
    let ss = StreamProcessor::<u64>::new(cfg.epsilon2, cfg.beta2).summary();
    let ctx = QueryContext::new(
        &**recovered.device(),
        recovered.partitions_newest_first(),
        &ss,
        cfg.query_epsilon(),
        cfg.cache_blocks,
    );
    for phi in [0.25f64, 0.5, 0.9] {
        let r = ((phi * expect.len() as f64).ceil() as u64).max(1);
        let got = ctx
            .accurate_rank(r)
            .unwrap_or_else(|e| panic!("{label}: query failed: {e}"))
            .expect("non-empty warehouse answers");
        let dist = rank_distance(expect, got.value, r);
        assert_eq!(
            dist, 0,
            "{label}: phi={phi} answer {} off the oracle by {dist} ranks",
            got.value
        );
    }
}

/// Rank distance of `v` from the requested rank `r` in `sorted` (0 when
/// `v`'s rank interval covers `r` — Definition 1's acceptance).
fn rank_distance(sorted: &[u64], v: u64, r: u64) -> u64 {
    let hi = sorted.partition_point(|&x| x <= v) as u64;
    let lo = sorted.partition_point(|&x| x < v) as u64 + 1;
    if lo > hi {
        return r.abs_diff(hi);
    }
    if r < lo {
        lo - r
    } else {
        r.saturating_sub(hi)
    }
}

/// Sweep every mutation index with `fault_of(k)` armed: satellite 1's
/// exhaustive enumeration (the PR 3 `mem::forget` crash test generalized
/// from one hand-picked window to every op).
fn crash_sweep(io_depth: usize, fault_of: fn(u64) -> Fault) {
    let oracle = oracle_states();

    // Recording pass: no fault, learn the op-index space.
    let dev = FaultDevice::new(MemDevice::new(256));
    let committed = drive(&dev, io_depth).expect("clean run commits a manifest");
    assert!(!dev.halted());
    let total = dev.mutations();
    assert!(total > 60, "workload too small to sweep: {total} ops");
    assert_recovers(&dev, committed, &oracle, "clean run");

    for k in 0..=total {
        let dev = FaultDevice::new(MemDevice::new(256));
        dev.arm(fault_of(k));
        let label = format!("{:?} (io_depth {io_depth})", fault_of(k));
        match drive(&dev, io_depth) {
            Some(committed) => assert_recovers(&dev, committed, &oracle, &label),
            None => assert!(
                k <= 12,
                "{label}: only the first few ops may precede the first base"
            ),
        }
    }
}

#[test]
fn crash_point_sweep_serial() {
    crash_sweep(0, Fault::CrashAfter);
}

#[test]
fn crash_point_sweep_overlapped() {
    crash_sweep(2, Fault::CrashAfter);
}

#[test]
fn torn_write_sweep_serial() {
    crash_sweep(0, Fault::TornWrite);
}

#[test]
fn torn_write_sweep_overlapped() {
    crash_sweep(2, Fault::TornWrite);
}

/// A transient (non-crash) failure surfaces as an error but never
/// corrupts: the workload stops, yet the committed log still recovers —
/// and an un-faulted retry from the recovered state proceeds normally.
#[test]
fn transient_fault_leaves_recoverable_state() {
    let oracle = oracle_states();
    for k in (0..80u64).step_by(7) {
        let dev = FaultDevice::new(MemDevice::new(256));
        dev.arm(Fault::FailOp(k));
        let label = format!("FailOp({k})");
        if let Some(committed) = drive(&dev, 0) {
            assert_recovers(&dev, committed, &oracle, &label);
            // The device is healthy again (the fault was one-shot):
            // recovery + continued ingestion must work.
            let mut w: Warehouse<u64, FDev> =
                manifest::recover(Arc::clone(&dev), cfg(0), committed).unwrap();
            w.add_batch(batch(99)).unwrap();
            w.check_invariants().unwrap();
        }
    }
}

/// Overlapped archival equivalence: with io_depth > 0 (and whatever
/// reorder seed the environment sets), every step's durable state is
/// byte-identical to the serial engine's.
#[test]
fn overlapped_archival_matches_serial_state() {
    let mut serial = Warehouse::<u64, _>::new(MemDevice::new(256), cfg(0));
    let mut overlapped = Warehouse::<u64, _>::new(MemDevice::new(256), cfg(3));
    for step in 1..=STEPS {
        serial.add_batch(batch(step)).unwrap();
        overlapped.add_batch(batch(step)).unwrap();
        overlapped.io_barrier().unwrap();
        assert_eq!(
            sorted_data(&serial, "serial"),
            sorted_data(&overlapped, "overlapped"),
            "divergence at step {step}"
        );
        assert_eq!(serial.available_windows(), overlapped.available_windows());
        overlapped.check_invariants().unwrap();
    }
    let sched = overlapped
        .scheduler()
        .expect("io_depth > 0 has a scheduler");
    assert!(
        sched.stats().async_writes > 0,
        "overlapped archival must actually submit writes"
    );
}
