//! Property-based tests for the core algorithm: the paper's lemmas hold
//! on arbitrary data layouts, batch counts, and parameters.

use std::sync::Arc;

use hsq_core::{
    CombinedSummary, HistStreamQuantiles, HsqConfig, QueryContext, SourceView, StreamProcessor,
    Warehouse,
};
use hsq_storage::{BlockDevice, MemDevice};
use proptest::prelude::*;

/// Rank distance from target `r` to the rank(s) of `v`: zero if `v`'s
/// occupied rank interval covers `r`; for values not in the data the rank
/// is exactly `|{x <= v}|`.
fn rank_distance(sorted: &[u64], v: u64, r: u64) -> u64 {
    let hi = sorted.partition_point(|&x| x <= v) as u64;
    let lo = sorted.partition_point(|&x| x < v) as u64 + 1;
    if lo > hi {
        return r.abs_diff(hi); // v not present: rank(v) = hi
    }
    if r < lo {
        lo - r
    } else {
        r.saturating_sub(hi)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem 2: accurate queries within eps*m on arbitrary batched data.
    #[test]
    fn accurate_query_error_bound(
        batches in proptest::collection::vec(
            proptest::collection::vec(0u64..1_000_000, 10..400), 1..8),
        stream in proptest::collection::vec(0u64..1_000_000, 1..400),
        kappa in 2usize..6,
        eps_pct in 2u32..20,
        phi_pct in 1u32..=100,
    ) {
        let eps = eps_pct as f64 / 100.0;
        let cfg = HsqConfig::builder().epsilon(eps).merge_threshold(kappa).build();
        let mut h = HistStreamQuantiles::<u64, _>::new(MemDevice::new(256), cfg);
        let mut all: Vec<u64> = Vec::new();
        for b in &batches {
            all.extend(b);
            h.ingest_step(b).unwrap();
        }
        for &v in &stream {
            all.push(v);
            h.stream_update(v);
        }
        all.sort_unstable();
        let n = all.len() as u64;
        let m = stream.len() as u64;
        let phi = phi_pct as f64 / 100.0;
        let r = ((phi * n as f64).ceil() as u64).clamp(1, n);
        let v = h.quantile(phi).unwrap().unwrap();
        let allowed = (eps * m as f64).ceil() as u64 + 1;
        let dist = rank_distance(&all, v, r);
        prop_assert!(
            dist <= allowed,
            "phi={phi}: value {v} off by {dist} ranks (allowed {allowed}, m={m})"
        );
    }

    /// Lemma 3: quick responses within 1.5*eps*N.
    #[test]
    fn quick_query_error_bound(
        batches in proptest::collection::vec(
            proptest::collection::vec(0u64..100_000, 20..300), 1..6),
        stream in proptest::collection::vec(0u64..100_000, 1..300),
        kappa in 2usize..5,
    ) {
        let eps = 0.1;
        let cfg = HsqConfig::builder().epsilon(eps).merge_threshold(kappa).build();
        let mut h = HistStreamQuantiles::<u64, _>::new(MemDevice::new(256), cfg);
        let mut all: Vec<u64> = Vec::new();
        for b in &batches {
            all.extend(b);
            h.ingest_step(b).unwrap();
        }
        for &v in &stream {
            all.push(v);
            h.stream_update(v);
        }
        all.sort_unstable();
        let n = all.len() as u64;
        let allowed = (1.5 * eps * n as f64).ceil() as u64 + 1;
        for r in [1, n / 2, n] {
            let v = h.rank_query_quick(r.max(1)).unwrap();
            let dist = rank_distance(&all, v, r.max(1));
            prop_assert!(dist <= allowed, "r={r}: off by {dist} > {allowed}");
        }
    }

    /// Lemma 2: L_i <= rank(TS[i]) <= U_i and U_i - L_i <= eps*N on
    /// arbitrary layouts.
    #[test]
    fn lemma2_bounds_on_arbitrary_data(
        batches in proptest::collection::vec(
            proptest::collection::vec(0u64..50_000, 5..200), 1..6),
        stream in proptest::collection::vec(0u64..50_000, 0..200),
        kappa in 2usize..5,
    ) {
        let eps = 0.2;
        let cfg = HsqConfig::builder().epsilon(eps).merge_threshold(kappa).build();
        let mut w = Warehouse::<u64, _>::new(MemDevice::new(256), cfg.clone());
        let mut all: Vec<u64> = Vec::new();
        for b in &batches {
            all.extend(b);
            w.add_batch(b.clone()).unwrap();
        }
        let mut sp = StreamProcessor::with_kind(cfg.sketch, cfg.epsilon2, cfg.beta2);
        for &v in &stream {
            all.push(v);
            sp.update(v);
        }
        let ss = sp.summary();
        let mut sources: Vec<SourceView<u64>> = w
            .partitions_newest_first()
            .iter()
            .map(|p| SourceView::from_partition(&p.summary))
            .collect();
        sources.push(SourceView::from_stream(&ss));
        let ts = CombinedSummary::build(&sources);
        all.sort_unstable();
        let n = all.len() as u64;
        for i in 0..ts.len() {
            let v = ts.value(i);
            let rank = all.partition_point(|&x| x <= v) as u64;
            prop_assert!(
                ts.lower(i) <= rank && rank <= ts.upper(i),
                "TS[{i}]={v}: rank {rank} outside [{}, {}]",
                ts.lower(i),
                ts.upper(i)
            );
            prop_assert!(
                ts.upper(i) - ts.lower(i) <= (eps * n as f64).ceil() as u64 + 1,
                "width violation at {i}"
            );
        }
    }

    /// Warehouse invariants hold across any update sequence; the stored
    /// multiset equals the input multiset.
    #[test]
    fn warehouse_preserves_multiset(
        batches in proptest::collection::vec(
            proptest::collection::vec(any::<u64>(), 0..150), 1..12),
        kappa in 2usize..5,
    ) {
        let cfg = HsqConfig::builder().epsilon(0.25).merge_threshold(kappa).build();
        let mut w = Warehouse::<u64, _>::new(MemDevice::new(128), cfg);
        let mut expect: Vec<u64> = Vec::new();
        for b in &batches {
            expect.extend(b);
            w.add_batch(b.clone()).unwrap();
            w.check_invariants().unwrap();
        }
        expect.sort_unstable();
        let mut got: Vec<u64> = Vec::new();
        for p in w.partitions_newest_first() {
            got.extend(p.run.read_all(&**w.device()).unwrap());
        }
        got.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    /// Window queries equal exact quantiles of the window's data (within
    /// eps*m, and exactly when the stream is empty).
    #[test]
    fn window_query_matches_window_data(
        step_vals in proptest::collection::vec(
            proptest::collection::vec(0u64..10_000, 10..60), 3..10),
        kappa in 2usize..5,
    ) {
        let cfg = HsqConfig::builder().epsilon(0.1).merge_threshold(kappa).build();
        let mut h = HistStreamQuantiles::<u64, _>::new(MemDevice::new(128), cfg);
        for b in &step_vals {
            h.ingest_step(b).unwrap();
        }
        for w in h.available_windows() {
            let mut win_data: Vec<u64> = step_vals
                [(step_vals.len() - w as usize)..]
                .iter()
                .flatten()
                .copied()
                .collect();
            win_data.sort_unstable();
            let med = h.quantile_window(0.5, w).unwrap().unwrap();
            // Stream empty -> m = 0 -> exact (Definition 1).
            let r = (0.5 * win_data.len() as f64).ceil() as u64;
            let dist = rank_distance(&win_data, med, r);
            prop_assert!(dist == 0, "window {w}: median {med} off by {dist}");
        }
    }

    /// Parallel query returns identical answers to serial.
    #[test]
    fn parallel_equals_serial(
        batches in proptest::collection::vec(
            proptest::collection::vec(0u64..100_000, 20..150), 2..6),
        stream in proptest::collection::vec(0u64..100_000, 1..150),
        r_seed in any::<u64>(),
    ) {
        let cfg = HsqConfig::builder().epsilon(0.05).merge_threshold(3).build();
        let mut w = Warehouse::<u64, _>::new(MemDevice::new(256), cfg.clone());
        let mut total = 0u64;
        for b in &batches {
            total += b.len() as u64;
            w.add_batch(b.clone()).unwrap();
        }
        let mut sp = StreamProcessor::with_kind(cfg.sketch, cfg.epsilon2, cfg.beta2);
        for &v in &stream {
            sp.update(v);
        }
        total += stream.len() as u64;
        let ss = sp.summary();
        let r = (r_seed % total) + 1;
        let dev = Arc::clone(w.device());
        let serial = QueryContext::new(
            &*dev, w.partitions_newest_first(), &ss, cfg.epsilon(), cfg.cache_blocks)
            .accurate_rank(r).unwrap().unwrap();
        let parallel = QueryContext::new(
            &*dev, w.partitions_newest_first(), &ss, cfg.epsilon(), cfg.cache_blocks)
            .with_parallel(true)
            .accurate_rank(r).unwrap().unwrap();
        prop_assert_eq!(serial.value, parallel.value);
        prop_assert_eq!(serial.estimated_rank, parallel.estimated_rank);
    }
}

/// Summary-seeded bisection never takes more steps than domain-seeded
/// bisection, and strictly fewer somewhere, for the fixed seed matrix
/// {0, 7, 23} (the same seeds the CI fault-injection matrix sweeps).
#[test]
fn summary_seeding_monotone_vs_domain_for_seed_matrix() {
    for seed in [0u64, 7, 23] {
        let mut x = seed | 1;
        let mut gen = || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x >> 33
        };
        let cfg = HsqConfig::builder()
            .epsilon(0.05)
            .merge_threshold(3)
            .build();
        let mut h = HistStreamQuantiles::<u64, _>::new(MemDevice::new(256), cfg.clone());
        for _ in 0..10 {
            let batch: Vec<u64> = (0..400).map(|_| gen()).collect();
            h.ingest_step(&batch).unwrap();
        }
        let stream: Vec<u64> = (0..400).map(|_| gen()).collect();
        h.stream_extend(&stream);

        let ss = h.stream().summary();
        let ctx = |mode| {
            QueryContext::new(
                &**h.warehouse().device(),
                h.warehouse().partitions_newest_first(),
                &ss,
                cfg.epsilon(),
                cfg.cache_blocks,
            )
            .with_seed_mode(mode)
        };
        let n = h.total_len();
        let mut strictly_fewer = false;
        for r in [1, n / 10, n / 4, n / 2, 3 * n / 4, 9 * n / 10, n] {
            let s = ctx(hsq_core::SeedMode::Summary)
                .accurate_rank(r)
                .unwrap()
                .unwrap();
            let d = ctx(hsq_core::SeedMode::Domain)
                .accurate_rank(r)
                .unwrap()
                .unwrap();
            assert!(
                s.bisection_steps <= d.bisection_steps,
                "seed {seed} r={r}: summary {} steps > domain {}",
                s.bisection_steps,
                d.bisection_steps
            );
            strictly_fewer |= s.bisection_steps < d.bisection_steps;
        }
        assert!(
            strictly_fewer,
            "seed {seed}: summary seeding never saved a bisection step"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Heavy hitters: sound count brackets and complete detection on
    /// arbitrary data with planted frequencies.
    #[test]
    fn heavy_hitters_sound_and_complete(
        batches in proptest::collection::vec(
            proptest::collection::vec(0u64..50, 20..200), 1..6),
        stream in proptest::collection::vec(0u64..50, 0..200),
        phi_milli in 20u64..300,
    ) {
        use std::collections::HashMap;
        let cfg = HsqConfig::builder().epsilon(0.05).merge_threshold(3).build();
        let mut h = HistStreamQuantiles::<u64, _>::new(MemDevice::new(256), cfg);
        h.enable_heavy_hitters(hsq_core::HeavyHitterConfig { stream_counters: 64 });
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for b in &batches {
            for &v in b {
                *truth.entry(v).or_insert(0) += 1;
            }
            h.ingest_step(b).unwrap();
        }
        for &v in &stream {
            *truth.entry(v).or_insert(0) += 1;
            h.stream_update(v);
        }
        let n = h.total_len();
        let phi = phi_milli as f64 / 1000.0;
        let threshold = ((phi * n as f64).ceil() as u64).max(1);
        let reported = h.heavy_hitters(phi).unwrap();
        for hh in &reported {
            let t = truth.get(&hh.value).copied().unwrap_or(0);
            prop_assert!(
                hh.count_lo() <= t && t <= hh.count_hi(),
                "value {}: true {t} outside [{},{}]",
                hh.value, hh.count_lo(), hh.count_hi()
            );
        }
        for (&v, &c) in &truth {
            if c >= threshold {
                prop_assert!(
                    reported.iter().any(|hh| hh.value == v),
                    "missing heavy hitter {v} (count {c} >= {threshold})"
                );
            }
        }
    }

    /// Manifest persistence: recover is lossless for any update history.
    #[test]
    fn manifest_roundtrip_lossless(
        batches in proptest::collection::vec(
            proptest::collection::vec(any::<u64>(), 1..120), 1..10),
        kappa in 2usize..5,
    ) {
        let cfg = HsqConfig::builder().epsilon(0.2).merge_threshold(kappa).build();
        let mut w = Warehouse::<u64, _>::new(MemDevice::new(128), cfg.clone());
        for b in &batches {
            w.add_batch(b.clone()).unwrap();
        }
        let manifest = hsq_core::manifest::persist(&w).unwrap();
        let r: Warehouse<u64, _> =
            hsq_core::manifest::recover(Arc::clone(w.device()), cfg, manifest).unwrap();
        prop_assert_eq!(r.steps(), w.steps());
        prop_assert_eq!(r.total_len(), w.total_len());
        prop_assert_eq!(r.available_windows(), w.available_windows());
        let before: Vec<Vec<u64>> = w
            .partitions_newest_first()
            .iter()
            .map(|p| p.run.read_all(&**w.device()).unwrap())
            .collect();
        let after: Vec<Vec<u64>> = r
            .partitions_newest_first()
            .iter()
            .map(|p| p.run.read_all(&**r.device()).unwrap())
            .collect();
        prop_assert_eq!(before, after);
        // Summaries identical too.
        let se: Vec<usize> = w
            .partitions_newest_first()
            .iter()
            .map(|p| p.summary.entries().len())
            .collect();
        let re: Vec<usize> = r
            .partitions_newest_first()
            .iter()
            .map(|p| p.summary.entries().len())
            .collect();
        prop_assert_eq!(se, re);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Batched ingestion (`stream_extend` + sorted-segment archival)
    /// produces **byte-identical** on-disk runs to the scalar path, for
    /// any mix of batch sizes and interleaved scalar updates.
    #[test]
    fn batched_end_time_step_is_byte_identical(
        steps in proptest::collection::vec(
            proptest::collection::vec(0u64..1_000_000, 1..400), 1..6),
        chunk in 1usize..150,
        kappa in 2usize..5,
    ) {
        let cfg = HsqConfig::builder().epsilon(0.05).merge_threshold(kappa).build();
        let mut scalar = HistStreamQuantiles::<u64, _>::new(MemDevice::new(256), cfg.clone());
        let mut batched = HistStreamQuantiles::<u64, _>::new(MemDevice::new(256), cfg);
        for (si, step) in steps.iter().enumerate() {
            for &v in step {
                scalar.stream_update(v);
            }
            scalar.end_time_step().unwrap();
            // Batched side: alternate stream_extend chunks with a few
            // scalar updates to exercise the mixed staging tail.
            for (ci, c) in step.chunks(chunk).enumerate() {
                if (si + ci) % 3 == 0 && c.len() > 1 {
                    batched.stream_update(c[0]);
                    batched.stream_extend(&c[1..]);
                } else {
                    batched.stream_extend(c);
                }
            }
            batched.end_time_step().unwrap();
        }
        prop_assert_eq!(scalar.total_len(), batched.total_len());

        let sp = scalar.warehouse().partitions_newest_first();
        let bp = batched.warehouse().partitions_newest_first();
        prop_assert_eq!(sp.len(), bp.len());
        let sdev = &**scalar.warehouse().device();
        let bdev = &**batched.warehouse().device();
        for (a, b) in sp.iter().zip(&bp) {
            prop_assert_eq!(a.run.len(), b.run.len());
            prop_assert_eq!((a.first_step, a.last_step), (b.first_step, b.last_step));
            prop_assert_eq!(a.summary.entries(), b.summary.entries());
            // Compare the raw device blocks, not just decoded items.
            let nblocks = sdev.num_blocks(a.run.file()).unwrap();
            prop_assert_eq!(nblocks, bdev.num_blocks(b.run.file()).unwrap());
            let mut abuf = vec![0u8; sdev.block_size()];
            let mut bbuf = vec![0u8; bdev.block_size()];
            for blk in 0..nblocks {
                let alen = sdev.read_block(a.run.file(), blk, &mut abuf).unwrap();
                let blen = bdev.read_block(b.run.file(), blk, &mut bbuf).unwrap();
                prop_assert_eq!(alen, blen, "block {} length differs", blk);
                prop_assert_eq!(&abuf[..alen], &bbuf[..blen], "block {} bytes differ", blk);
            }
        }
    }

    /// Batched and scalar ingestion answer queries identically-well: both
    /// stay within the Theorem 2 bound on the same data.
    #[test]
    fn batched_queries_meet_theorem2(
        batches in proptest::collection::vec(
            proptest::collection::vec(0u64..500_000, 10..300), 1..6),
        stream in proptest::collection::vec(0u64..500_000, 1..300),
        chunk in 1usize..120,
    ) {
        let cfg = HsqConfig::builder().epsilon(0.1).merge_threshold(3).build();
        let mut h = HistStreamQuantiles::<u64, _>::new(MemDevice::new(256), cfg);
        let mut all: Vec<u64> = Vec::new();
        for b in &batches {
            all.extend(b);
            h.ingest_step(b).unwrap();
        }
        for c in stream.chunks(chunk) {
            h.stream_extend(c);
        }
        all.extend(&stream);
        all.sort_unstable();
        let n = all.len() as u64;
        let m = stream.len() as u64;
        let allowed = (0.1 * m as f64).ceil() as u64 + 1;
        for r in [1, n / 2, n] {
            let out = h.rank_query(r.max(1)).unwrap().unwrap();
            let dist = rank_distance(&all, out.value, r.max(1));
            prop_assert!(dist <= allowed, "r={r}: off by {dist} > {allowed}");
        }
    }

    /// Radix-sorted batch archival is **byte-identical** to
    /// comparison-sorted archival: feeding pre-comparison-sorted batches
    /// (the radix kernel is a no-op on sorted input, so both engines
    /// store the multiset the comparison sort produced) matches an engine
    /// that radix-sorts raw batches, block for block — through cascade
    /// merges included.
    #[test]
    fn radix_archival_is_byte_identical(
        steps in proptest::collection::vec(
            proptest::collection::vec(any::<u64>(), 1..600), 1..7),
        kappa in 2usize..5,
    ) {
        let cfg = HsqConfig::builder().epsilon(0.05).merge_threshold(kappa).build();
        let mut radix = HistStreamQuantiles::<u64, _>::new(MemDevice::new(256), cfg.clone());
        let mut comparison = HistStreamQuantiles::<u64, _>::new(MemDevice::new(256), cfg);
        for step in &steps {
            // Radix side: raw batch, sorted by the radix path whenever the
            // segment crosses RADIX_MIN_LEN.
            radix.stream_extend(step);
            radix.end_time_step().unwrap();
            // Comparison side: the batch pre-sorted with the stdlib
            // comparison sort (stream_extend's own sort then sees sorted
            // input and cannot reorder anything).
            let mut sorted = step.clone();
            sorted.sort_unstable();
            comparison.stream_extend(&sorted);
            comparison.end_time_step().unwrap();
        }
        let rp = radix.warehouse().partitions_newest_first();
        let cp = comparison.warehouse().partitions_newest_first();
        prop_assert_eq!(rp.len(), cp.len());
        let rdev = &**radix.warehouse().device();
        let cdev = &**comparison.warehouse().device();
        for (a, b) in rp.iter().zip(&cp) {
            prop_assert_eq!(a.run.len(), b.run.len());
            prop_assert_eq!(a.summary.entries(), b.summary.entries());
            let nblocks = rdev.num_blocks(a.run.file()).unwrap();
            prop_assert_eq!(nblocks, cdev.num_blocks(b.run.file()).unwrap());
            let mut abuf = vec![0u8; rdev.block_size()];
            let mut bbuf = vec![0u8; cdev.block_size()];
            for blk in 0..nblocks {
                let alen = rdev.read_block(a.run.file(), blk, &mut abuf).unwrap();
                let blen = cdev.read_block(b.run.file(), blk, &mut bbuf).unwrap();
                prop_assert_eq!(alen, blen);
                prop_assert_eq!(&abuf[..alen], &bbuf[..blen], "block {} bytes differ", blk);
            }
        }
    }

    /// Speculative bisection prefetch is invisible in the answers: an
    /// engine with `io_depth > 0` returns exactly the same values, rank
    /// estimates and step counts as a synchronous engine on identical
    /// data — only the prefetch counters differ.
    #[test]
    fn prefetched_engine_answers_identical(
        batches in proptest::collection::vec(
            proptest::collection::vec(0u64..1_000_000, 20..300), 2..6),
        stream in proptest::collection::vec(0u64..1_000_000, 1..300),
        kappa in 2usize..5,
    ) {
        let base = HsqConfig::builder().epsilon(0.05).merge_threshold(kappa);
        let mut plain =
            HistStreamQuantiles::<u64, _>::new(MemDevice::new(256), base.clone().build());
        let mut overlapped = HistStreamQuantiles::<u64, _>::new(
            MemDevice::new(256),
            base.io_depth(2).build(),
        );
        let mut n = 0u64;
        for b in &batches {
            n += b.len() as u64;
            plain.ingest_step(b).unwrap();
            overlapped.ingest_step(b).unwrap();
        }
        n += stream.len() as u64;
        plain.stream_extend(&stream);
        overlapped.stream_extend(&stream);
        for r in [1, n / 3, n / 2, n] {
            let a = plain.rank_query(r.max(1)).unwrap().unwrap();
            let b = overlapped.rank_query(r.max(1)).unwrap().unwrap();
            prop_assert_eq!(a.value, b.value, "r = {}", r);
            prop_assert_eq!(a.estimated_rank, b.estimated_rank);
            prop_assert_eq!(a.bisection_steps, b.bisection_steps);
            prop_assert_eq!(a.prefetch_hits, 0);
        }
    }

    /// Mergeability: a ShardedEngine with N shards answers every quantile
    /// within the same eps*m guarantee as a single engine fed the
    /// identical stream — for N in {1, 2, 8} on arbitrary data.
    #[test]
    fn sharded_meets_single_engine_guarantee(
        batches in proptest::collection::vec(
            proptest::collection::vec(0u64..1_000_000, 10..300), 1..6),
        stream in proptest::collection::vec(0u64..1_000_000, 1..300),
        kappa in 2usize..5,
        phi_pct in 1u32..=100,
    ) {
        let eps = 0.1;
        let phi = phi_pct as f64 / 100.0;
        let mut all: Vec<u64> = batches.iter().flatten().copied().collect();
        all.extend(&stream);
        all.sort_unstable();
        let n = all.len() as u64;
        let m = stream.len() as u64;
        let r = ((phi * n as f64).ceil() as u64).clamp(1, n);
        // The guarantee both layouts must meet (Theorem 2).
        let allowed = (eps * m as f64).ceil() as u64 + 1;

        let cfg = HsqConfig::builder().epsilon(eps).merge_threshold(kappa).build();
        let mut single = HistStreamQuantiles::<u64, _>::new(MemDevice::new(256), cfg.clone());
        for b in &batches {
            single.ingest_step(b).unwrap();
        }
        single.stream_extend(&stream);
        let sv = single.quantile(phi).unwrap().unwrap();
        let sdist = rank_distance(&all, sv, r);
        prop_assert!(sdist <= allowed, "single: off by {sdist} > {allowed}");

        for shards in [1usize, 2, 8] {
            let mut e = hsq_core::ShardedEngine::<u64, _>::with_shards(
                shards,
                cfg.clone(),
                |_| MemDevice::new(256),
            );
            for b in &batches {
                e.ingest_step(b).unwrap();
            }
            e.stream_extend(&stream);
            prop_assert_eq!(e.total_len(), n);
            let v = e.quantile(phi).unwrap().unwrap();
            let dist = rank_distance(&all, v, r);
            prop_assert!(
                dist <= allowed,
                "shards={shards} phi={phi}: value {v} off by {dist} ranks (allowed {allowed}, m={m})"
            );
        }
    }
}
