//! Concurrency tests: snapshot readers racing `end_time_step` archival.
//!
//! The engine itself is externally synchronized (`&mut self` ingestion),
//! so the race under test is the *snapshot lifetime*: a reader takes a
//! snapshot under a short lock, releases the lock, and keeps querying
//! while the writer archives steps and cascade merges retire the very
//! partition files the snapshot pins. Every read must see exactly the
//! snapshot-time state; no read may ever error on a deleted file.

use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use hsq_core::{HistStreamQuantiles, HsqConfig, RetentionPolicy, ShardedEngine};
use hsq_storage::MemDevice;

fn config(eps: f64, kappa: usize) -> HsqConfig {
    HsqConfig::builder()
        .epsilon(eps)
        .merge_threshold(kappa)
        .build()
}

/// Writer archives disjoint ranges; readers snapshot mid-stream and check
/// that (a) totals are a consistent step boundary, (b) min/max quantiles
/// match the data that had been ingested at snapshot time, and (c) reads
/// keep working after the underlying partitions have been merged away.
#[test]
fn snapshot_reads_race_end_time_step() {
    const STEPS: u64 = 60;
    const STEP_ITEMS: u64 = 400;
    // kappa = 2 merges aggressively: pinned runs retire constantly.
    let engine = Arc::new(Mutex::new(HistStreamQuantiles::<u64, _>::new(
        MemDevice::new(256),
        config(0.05, 2),
    )));
    let stop = Arc::new(Mutex::new(false));

    let readers: Vec<_> = (0..2)
        .map(|_| {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut checked = 0u64;
                let deadline = Instant::now() + Duration::from_secs(10);
                loop {
                    if *stop.lock().unwrap() || Instant::now() > deadline {
                        break;
                    }
                    // Short lock: take the snapshot, then query lock-free.
                    let snap = engine.lock().unwrap().snapshot();
                    let n = snap.total_len();
                    if n == 0 {
                        continue;
                    }
                    // Writer archives whole steps with an empty live
                    // stream, so any snapshot sees a step boundary.
                    assert_eq!(n % STEP_ITEMS, 0, "mid-step snapshot: n = {n}");
                    let steps_seen = n / STEP_ITEMS;
                    // Data is the contiguous range 0..n (m = 0: exact).
                    let lo = snap.rank_query(1).unwrap().unwrap().value;
                    assert_eq!(lo, 0, "snapshot min after {steps_seen} steps");
                    let hi = snap.quantile(1.0).unwrap().unwrap();
                    assert_eq!(hi, n - 1, "snapshot max after {steps_seen} steps");
                    let med = snap.quantile(0.5).unwrap().unwrap();
                    assert!(
                        med.abs_diff(n / 2) <= 1,
                        "snapshot median {med} for n = {n}"
                    );
                    checked += 1;
                    // Hold the snapshot across a couple of writer steps so
                    // merges retire its files while we still read it.
                    thread::sleep(Duration::from_millis(1));
                    assert_eq!(snap.quantile(1.0).unwrap().unwrap(), n - 1);
                }
                checked
            })
        })
        .collect();

    for step in 0..STEPS {
        let batch: Vec<u64> = (step * STEP_ITEMS..(step + 1) * STEP_ITEMS).collect();
        engine.lock().unwrap().ingest_step(&batch).unwrap();
        // Give readers a chance to interleave between steps.
        thread::yield_now();
    }
    *stop.lock().unwrap() = true;

    let mut total_checked = 0;
    for r in readers {
        total_checked += r.join().expect("reader panicked");
    }
    assert!(total_checked > 0, "readers never observed a snapshot");
    assert_eq!(
        engine.lock().unwrap().total_len(),
        STEPS * STEP_ITEMS,
        "writer lost data"
    );
}

/// The same race through the sharded facade: cross-shard snapshots stay
/// consistent while all shards archive and merge concurrently.
#[test]
fn sharded_snapshot_reads_race_ingestion() {
    const STEPS: u64 = 30;
    const STEP_ITEMS: u64 = 600;
    let engine = Arc::new(Mutex::new(ShardedEngine::<u64, _>::with_shards(
        4,
        config(0.05, 2),
        |_| MemDevice::new(256),
    )));
    let stop = Arc::new(Mutex::new(false));

    let reader = {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut checked = 0u64;
            let deadline = Instant::now() + Duration::from_secs(10);
            while !*stop.lock().unwrap() && Instant::now() < deadline {
                let snap = engine.lock().unwrap().snapshot();
                let n = snap.total_len();
                if n == 0 {
                    continue;
                }
                assert_eq!(n % STEP_ITEMS, 0, "mid-step snapshot: n = {n}");
                // Contiguous range 0..n, empty stream: exact answers.
                let med = snap.quantile(0.5).unwrap().unwrap();
                assert!(med.abs_diff(n / 2) <= 1, "median {med} for n = {n}");
                let max = snap.quantile(1.0).unwrap().unwrap();
                assert_eq!(max, n - 1);
                checked += 1;
                thread::sleep(Duration::from_millis(1));
                assert_eq!(snap.quantile(1.0).unwrap().unwrap(), n - 1);
            }
            checked
        })
    };

    for step in 0..STEPS {
        let batch: Vec<u64> = (step * STEP_ITEMS..(step + 1) * STEP_ITEMS).collect();
        engine.lock().unwrap().ingest_step(&batch).unwrap();
        thread::yield_now();
    }
    *stop.lock().unwrap() = true;
    let checked = reader.join().expect("reader panicked");
    assert!(checked > 0, "reader never observed a snapshot");
}

/// Expiry-under-query stress: reader threads hold `EngineSnapshot`s while
/// an aggressive TTL policy retires the very partitions they pin. Every
/// snapshot's answers must be byte-for-byte unchanged by concurrent
/// expiry, and the retired files must stay on the device until the last
/// guard drops (deferred deletion), then disappear.
#[test]
fn snapshot_reads_race_retention_expiry() {
    const STEPS: u64 = 50;
    const STEP_ITEMS: u64 = 300;
    // TTL of 3 steps; kappa = 8 is never reached (retention prunes level
    // 0 to 3 partitions each step), so every retirement a snapshot
    // defers comes from *expiry*, not cascade merges — and the TTL is
    // exact (expiry is partition-aligned, and partitions are one step).
    let cfg = HsqConfig::builder()
        .epsilon(0.05)
        .merge_threshold(8)
        .retention(RetentionPolicy::unbounded().with_max_age_steps(3))
        .build();
    let dev = MemDevice::new(256);
    let engine = Arc::new(Mutex::new(HistStreamQuantiles::<u64, _>::new(
        Arc::clone(&dev),
        cfg,
    )));
    let stop = Arc::new(Mutex::new(false));

    let readers: Vec<_> = (0..3)
        .map(|_| {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut checked = 0u64;
                let deadline = Instant::now() + Duration::from_secs(10);
                loop {
                    if *stop.lock().unwrap() || Instant::now() > deadline {
                        break;
                    }
                    let snap = engine.lock().unwrap().snapshot();
                    let n = snap.total_len();
                    if n == 0 {
                        continue;
                    }
                    // Writer archives whole steps of STEP_ITEMS items; at
                    // most 3 steps are ever retained.
                    assert_eq!(n % STEP_ITEMS, 0, "mid-step snapshot: n = {n}");
                    assert!(n <= 3 * STEP_ITEMS, "TTL leaked: n = {n}");
                    // Freeze the snapshot's answers, then re-ask while the
                    // writer expires the pinned partitions underneath.
                    let phis = [0.1, 0.5, 1.0];
                    let before: Vec<u64> = phis
                        .iter()
                        .map(|&phi| snap.quantile(phi).unwrap().unwrap())
                        .collect();
                    let windows = snap.available_windows();
                    let win_before: Vec<Option<u64>> = windows
                        .iter()
                        .map(|&w| snap.quantile_in_window(w, 0.5).unwrap())
                        .collect();
                    thread::sleep(Duration::from_millis(2));
                    let after: Vec<u64> = phis
                        .iter()
                        .map(|&phi| snap.quantile(phi).unwrap().unwrap())
                        .collect();
                    let win_after: Vec<Option<u64>> = windows
                        .iter()
                        .map(|&w| snap.quantile_in_window(w, 0.5).unwrap())
                        .collect();
                    assert_eq!(before, after, "expiry changed a snapshot answer");
                    assert_eq!(win_before, win_after, "expiry changed a window answer");
                    checked += 1;
                }
                checked
            })
        })
        .collect();

    for step in 0..STEPS {
        let batch: Vec<u64> = (step * STEP_ITEMS..(step + 1) * STEP_ITEMS).collect();
        engine.lock().unwrap().ingest_step(&batch).unwrap();
        thread::yield_now();
    }
    *stop.lock().unwrap() = true;
    let mut total_checked = 0;
    for r in readers {
        total_checked += r.join().expect("reader panicked");
    }
    assert!(total_checked > 0, "readers never observed a snapshot");

    // All guards dropped: deferred deletions ran. Only the ≤ 3 retained
    // partitions (≤ 3*300 items * 8 bytes, block-padded) may remain.
    let engine = engine.lock().unwrap();
    assert!(engine.historical_len() <= 3 * STEP_ITEMS);
    let retained_bytes = engine.warehouse().partition_bytes().unwrap();
    assert_eq!(
        dev.resident_bytes(),
        retained_bytes,
        "expired files must be deleted once the last snapshot guard drops"
    );
}

/// Overlapped-archival stress (the io_depth > 0 variant of the expiry
/// race): reader threads hold `EngineSnapshot`s while archival *submits*
/// its run writes to the I/O scheduler and retention expires pinned
/// partitions concurrently. Seeded via `HSQ_IO_REORDER_SEED` in CI, the
/// scheduler's cross-file completion order is shuffled too. Answers must
/// be stable for the snapshot's lifetime, and expired files may only
/// disappear at the last pin drop.
#[test]
fn snapshot_reads_race_overlapped_archival_and_expiry() {
    const STEPS: u64 = 40;
    const STEP_ITEMS: u64 = 300;
    let cfg = HsqConfig::builder()
        .epsilon(0.05)
        .merge_threshold(3)
        .retention(RetentionPolicy::unbounded().with_max_age_steps(4))
        .io_depth(2)
        .build();
    let dev = MemDevice::new(256);
    let engine = Arc::new(Mutex::new(HistStreamQuantiles::<u64, _>::new(
        Arc::clone(&dev),
        cfg,
    )));
    let stop = Arc::new(Mutex::new(false));

    let readers: Vec<_> = (0..2)
        .map(|_| {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut checked = 0u64;
                let deadline = Instant::now() + Duration::from_secs(10);
                loop {
                    if *stop.lock().unwrap() || Instant::now() > deadline {
                        break;
                    }
                    let snap = engine.lock().unwrap().snapshot();
                    let n = snap.total_len();
                    if n == 0 {
                        continue;
                    }
                    // Snapshots barrier the scheduler first: a reader
                    // never sees a half-written run, so totals are step
                    // boundaries even while writes are being submitted.
                    assert_eq!(n % STEP_ITEMS, 0, "mid-step snapshot: n = {n}");
                    let phis = [0.1, 0.5, 1.0];
                    let before: Vec<u64> = phis
                        .iter()
                        .map(|&phi| snap.quantile(phi).unwrap().unwrap())
                        .collect();
                    thread::sleep(Duration::from_millis(2));
                    // The writer has archived more steps (overlapped) and
                    // expired the pinned ones: answers must not move.
                    let after: Vec<u64> = phis
                        .iter()
                        .map(|&phi| snap.quantile(phi).unwrap().unwrap())
                        .collect();
                    assert_eq!(before, after, "snapshot answer moved under overlap");
                    checked += 1;
                }
                checked
            })
        })
        .collect();

    for step in 0..STEPS {
        let batch: Vec<u64> = (step * STEP_ITEMS..(step + 1) * STEP_ITEMS).collect();
        engine.lock().unwrap().ingest_step(&batch).unwrap();
        thread::yield_now();
    }
    *stop.lock().unwrap() = true;
    let mut total_checked = 0;
    for r in readers {
        total_checked += r.join().expect("reader panicked");
    }
    assert!(total_checked > 0, "readers never observed a snapshot");

    // Guards all dropped: deferred deletions ran, the scheduler really
    // overlapped, and only retained partitions remain on the device.
    let engine = engine.lock().unwrap();
    engine.io_barrier().unwrap();
    assert!(engine.historical_len() <= 4 * STEP_ITEMS + 3 * STEP_ITEMS);
    let sched = engine
        .warehouse()
        .scheduler()
        .expect("io_depth > 0 has a scheduler");
    assert!(sched.stats().async_writes > 0, "archival never overlapped");
    assert_eq!(
        dev.resident_bytes(),
        engine.warehouse().partition_bytes().unwrap(),
        "expired files must be deleted once the last snapshot guard drops"
    );
}

/// The sharded variant: `ShardedSnapshot`s held across overlapped
/// cross-shard archival plus per-shard retention expiry.
#[test]
fn sharded_snapshot_race_overlapped_archival_and_expiry() {
    const STEPS: u64 = 25;
    const STEP_ITEMS: u64 = 400;
    let cfg = HsqConfig::builder()
        .epsilon(0.05)
        .merge_threshold(3)
        .retention(RetentionPolicy::unbounded().with_max_age_steps(4))
        .io_depth(2)
        .build();
    let engine = Arc::new(Mutex::new(ShardedEngine::<u64, _>::with_shards(
        3,
        cfg,
        |_| MemDevice::new(256),
    )));
    let stop = Arc::new(Mutex::new(false));

    let reader = {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut checked = 0u64;
            let deadline = Instant::now() + Duration::from_secs(10);
            while !*stop.lock().unwrap() && Instant::now() < deadline {
                let snap = engine.lock().unwrap().snapshot();
                let n = snap.total_len();
                if n == 0 {
                    continue;
                }
                assert_eq!(n % STEP_ITEMS, 0, "mid-step sharded snapshot: n = {n}");
                let before = snap.quantile(0.5).unwrap().unwrap();
                thread::sleep(Duration::from_millis(2));
                assert_eq!(
                    snap.quantile(0.5).unwrap().unwrap(),
                    before,
                    "cross-shard snapshot answer moved under overlap"
                );
                checked += 1;
            }
            checked
        })
    };

    for step in 0..STEPS {
        let batch: Vec<u64> = (step * STEP_ITEMS..(step + 1) * STEP_ITEMS).collect();
        engine.lock().unwrap().ingest_step(&batch).unwrap();
        thread::yield_now();
    }
    *stop.lock().unwrap() = true;
    let checked = reader.join().expect("reader panicked");
    assert!(checked > 0, "reader never observed a snapshot");

    // Every shard really overlapped its archival.
    let engine = engine.lock().unwrap();
    for s in engine.shards() {
        let st = s.warehouse().scheduler().expect("scheduler").stats();
        assert!(st.async_writes > 0, "a shard never overlapped");
    }
}

/// Deterministic deferred-deletion check: a snapshot pins partitions, the
/// TTL expires them, and the files survive exactly until the last guard
/// drops — with answers stable throughout.
#[test]
fn expired_files_live_until_last_guard_drops() {
    // kappa = 16 is never reached in 10 steps: partitions stay one step
    // each, so the 2-step TTL retires exactly the steps the snapshots
    // pin, and it is retention (not merging) doing the retiring.
    let cfg = HsqConfig::builder()
        .epsilon(0.1)
        .merge_threshold(16)
        .retention(RetentionPolicy::unbounded().with_max_age_steps(2))
        .build();
    let dev = MemDevice::new(256);
    let mut engine = HistStreamQuantiles::<u64, _>::new(Arc::clone(&dev), cfg);
    for step in 0..4u64 {
        let batch: Vec<u64> = (step * 100..(step + 1) * 100).collect();
        engine.ingest_step(&batch).unwrap();
    }
    let snap1 = engine.snapshot();
    let snap2 = engine.snapshot();
    let med1 = snap1.quantile(0.5).unwrap().unwrap();
    let files_pinned = dev.num_files();

    // Expire everything both snapshots pin.
    for step in 4..10u64 {
        let batch: Vec<u64> = (step * 100..(step + 1) * 100).collect();
        engine.ingest_step(&batch).unwrap();
    }
    assert!(engine.historical_len() <= 200, "TTL must bound history");
    // Pinned files still present and readable; answers unchanged.
    assert!(dev.num_files() >= files_pinned);
    assert_eq!(snap1.quantile(0.5).unwrap().unwrap(), med1);
    assert_eq!(snap2.quantile(0.5).unwrap().unwrap(), med1);

    // First guard drop: files still pinned by snap2.
    drop(snap1);
    assert_eq!(snap2.quantile(0.5).unwrap().unwrap(), med1);

    // Last guard drop: deferred deletions run; only retained bytes stay.
    drop(snap2);
    assert_eq!(
        dev.resident_bytes(),
        engine.warehouse().partition_bytes().unwrap(),
        "deferred deletions must run at the last guard drop"
    );
}
