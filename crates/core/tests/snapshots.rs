//! Concurrency tests: snapshot readers racing `end_time_step` archival.
//!
//! The engine itself is externally synchronized (`&mut self` ingestion),
//! so the race under test is the *snapshot lifetime*: a reader takes a
//! snapshot under a short lock, releases the lock, and keeps querying
//! while the writer archives steps and cascade merges retire the very
//! partition files the snapshot pins. Every read must see exactly the
//! snapshot-time state; no read may ever error on a deleted file.

use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use hsq_core::{HistStreamQuantiles, HsqConfig, ShardedEngine};
use hsq_storage::MemDevice;

fn config(eps: f64, kappa: usize) -> HsqConfig {
    HsqConfig::builder()
        .epsilon(eps)
        .merge_threshold(kappa)
        .build()
}

/// Writer archives disjoint ranges; readers snapshot mid-stream and check
/// that (a) totals are a consistent step boundary, (b) min/max quantiles
/// match the data that had been ingested at snapshot time, and (c) reads
/// keep working after the underlying partitions have been merged away.
#[test]
fn snapshot_reads_race_end_time_step() {
    const STEPS: u64 = 60;
    const STEP_ITEMS: u64 = 400;
    // kappa = 2 merges aggressively: pinned runs retire constantly.
    let engine = Arc::new(Mutex::new(HistStreamQuantiles::<u64, _>::new(
        MemDevice::new(256),
        config(0.05, 2),
    )));
    let stop = Arc::new(Mutex::new(false));

    let readers: Vec<_> = (0..2)
        .map(|_| {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut checked = 0u64;
                let deadline = Instant::now() + Duration::from_secs(10);
                loop {
                    if *stop.lock().unwrap() || Instant::now() > deadline {
                        break;
                    }
                    // Short lock: take the snapshot, then query lock-free.
                    let snap = engine.lock().unwrap().snapshot();
                    let n = snap.total_len();
                    if n == 0 {
                        continue;
                    }
                    // Writer archives whole steps with an empty live
                    // stream, so any snapshot sees a step boundary.
                    assert_eq!(n % STEP_ITEMS, 0, "mid-step snapshot: n = {n}");
                    let steps_seen = n / STEP_ITEMS;
                    // Data is the contiguous range 0..n (m = 0: exact).
                    let lo = snap.rank_query(1).unwrap().unwrap().value;
                    assert_eq!(lo, 0, "snapshot min after {steps_seen} steps");
                    let hi = snap.quantile(1.0).unwrap().unwrap();
                    assert_eq!(hi, n - 1, "snapshot max after {steps_seen} steps");
                    let med = snap.quantile(0.5).unwrap().unwrap();
                    assert!(
                        med.abs_diff(n / 2) <= 1,
                        "snapshot median {med} for n = {n}"
                    );
                    checked += 1;
                    // Hold the snapshot across a couple of writer steps so
                    // merges retire its files while we still read it.
                    thread::sleep(Duration::from_millis(1));
                    assert_eq!(snap.quantile(1.0).unwrap().unwrap(), n - 1);
                }
                checked
            })
        })
        .collect();

    for step in 0..STEPS {
        let batch: Vec<u64> = (step * STEP_ITEMS..(step + 1) * STEP_ITEMS).collect();
        engine.lock().unwrap().ingest_step(&batch).unwrap();
        // Give readers a chance to interleave between steps.
        thread::yield_now();
    }
    *stop.lock().unwrap() = true;

    let mut total_checked = 0;
    for r in readers {
        total_checked += r.join().expect("reader panicked");
    }
    assert!(total_checked > 0, "readers never observed a snapshot");
    assert_eq!(
        engine.lock().unwrap().total_len(),
        STEPS * STEP_ITEMS,
        "writer lost data"
    );
}

/// The same race through the sharded facade: cross-shard snapshots stay
/// consistent while all shards archive and merge concurrently.
#[test]
fn sharded_snapshot_reads_race_ingestion() {
    const STEPS: u64 = 30;
    const STEP_ITEMS: u64 = 600;
    let engine = Arc::new(Mutex::new(ShardedEngine::<u64, _>::with_shards(
        4,
        config(0.05, 2),
        |_| MemDevice::new(256),
    )));
    let stop = Arc::new(Mutex::new(false));

    let reader = {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut checked = 0u64;
            let deadline = Instant::now() + Duration::from_secs(10);
            while !*stop.lock().unwrap() && Instant::now() < deadline {
                let snap = engine.lock().unwrap().snapshot();
                let n = snap.total_len();
                if n == 0 {
                    continue;
                }
                assert_eq!(n % STEP_ITEMS, 0, "mid-step snapshot: n = {n}");
                // Contiguous range 0..n, empty stream: exact answers.
                let med = snap.quantile(0.5).unwrap().unwrap();
                assert!(med.abs_diff(n / 2) <= 1, "median {med} for n = {n}");
                let max = snap.quantile(1.0).unwrap().unwrap();
                assert_eq!(max, n - 1);
                checked += 1;
                thread::sleep(Duration::from_millis(1));
                assert_eq!(snap.quantile(1.0).unwrap().unwrap(), n - 1);
            }
            checked
        })
    };

    for step in 0..STEPS {
        let batch: Vec<u64> = (step * STEP_ITEMS..(step + 1) * STEP_ITEMS).collect();
        engine.lock().unwrap().ingest_step(&batch).unwrap();
        thread::yield_now();
    }
    *stop.lock().unwrap() = true;
    let checked = reader.join().expect("reader panicked");
    assert!(checked > 0, "reader never observed a snapshot");
}
