//! A/B property harness for the pluggable sketch layer: the GK and KLL
//! backends are driven against [`hsq_sketch::ExactQuantiles`] over
//! deterministic pseudo-random streams, across batch sizes, shard
//! counts, windowed queries, and persist/recover round-trips of both
//! sketch serializations. Every configuration must meet the same
//! Theorem 2 `ε·m` union guarantee — backend choice may change the
//! constants, never the contract.

use std::sync::Arc;

use hsq_core::{HistStreamQuantiles, HsqConfig, ShardedEngine, SketchKind};
use hsq_sketch::ExactQuantiles;
use hsq_storage::MemDevice;

const KINDS: [SketchKind; 2] = [SketchKind::Gk, SketchKind::Kll];

fn lcg(seed: u64) -> impl FnMut() -> u64 {
    let mut x = seed | 1;
    move || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        x >> 33
    }
}

/// Rank distance from target `r` to the rank interval of `v` in `sorted`
/// (zero when `v`'s occupied interval covers `r`).
fn rank_distance(sorted: &[u64], v: u64, r: u64) -> u64 {
    let hi = sorted.partition_point(|&x| x <= v) as u64;
    let lo = sorted.partition_point(|&x| x < v) as u64 + 1;
    if lo > hi {
        return r.abs_diff(hi);
    }
    if r < lo {
        lo - r
    } else {
        r.saturating_sub(hi)
    }
}

fn config(eps: f64, kind: SketchKind) -> HsqConfig {
    HsqConfig::builder()
        .epsilon(eps)
        .merge_threshold(3)
        .sketch(kind)
        .build()
}

/// Assert `engine`'s answers bracket the exact ranks within `ε·m` at a
/// sweep of quantile fractions.
fn assert_union_bound(
    h: &HistStreamQuantiles<u64, MemDevice>,
    all_sorted: &[u64],
    eps: f64,
    m: u64,
    label: &str,
) {
    let n = all_sorted.len() as u64;
    let allowed = (eps * m as f64).ceil() as u64 + 1;
    for phi_pct in [1u32, 10, 25, 50, 75, 90, 99, 100] {
        let phi = phi_pct as f64 / 100.0;
        let r = ((phi * n as f64).ceil() as u64).clamp(1, n);
        let v = h.quantile(phi).unwrap().unwrap();
        let dist = rank_distance(all_sorted, v, r);
        assert!(
            dist <= allowed,
            "{label} phi={phi}: value {v} off by {dist} ranks (allowed {allowed}, m={m})"
        );
    }
}

/// Both backends meet the union guarantee for scalar updates and every
/// batch size the radix ingest path distinguishes (tiny, sub-radix,
/// block-ish, above `RADIX_MIN_LEN`).
#[test]
fn both_backends_meet_union_bound_across_batch_sizes() {
    let eps = 0.05;
    for kind in KINDS {
        for batch in [1usize, 7, 64, 513] {
            let mut gen = lcg(0xA5A5 + batch as u64);
            let mut h = HistStreamQuantiles::<u64, _>::new(MemDevice::new(256), config(eps, kind));
            let mut all: Vec<u64> = Vec::new();
            for _ in 0..4 {
                let step: Vec<u64> = (0..700).map(|_| gen() % 1_000_000).collect();
                all.extend(&step);
                h.ingest_step(&step).unwrap();
            }
            let stream: Vec<u64> = (0..1_100).map(|_| gen() % 1_000_000).collect();
            for c in stream.chunks(batch) {
                if batch == 1 {
                    h.stream_update(c[0]);
                } else {
                    h.stream_extend(c);
                }
            }
            all.extend(&stream);
            all.sort_unstable();
            assert_eq!(h.stream().sketch().kind(), kind);
            assert_union_bound(
                &h,
                &all,
                eps,
                stream.len() as u64,
                &format!("{kind}/batch={batch}"),
            );
        }
    }
}

/// Sharded engines under either backend stay within `ε·m` of exact for
/// shard counts {1, 2, 8} — the cross-shard merge must not lose the
/// per-shard sketch bounds.
#[test]
fn both_backends_meet_union_bound_sharded() {
    let eps = 0.1;
    for kind in KINDS {
        let mut gen = lcg(0xBEEF);
        let batches: Vec<Vec<u64>> = (0..3)
            .map(|_| (0..500).map(|_| gen() % 1_000_000).collect())
            .collect();
        let stream: Vec<u64> = (0..900).map(|_| gen() % 1_000_000).collect();
        let mut all: Vec<u64> = batches.iter().flatten().copied().collect();
        all.extend(&stream);
        all.sort_unstable();
        let n = all.len() as u64;
        let m = stream.len() as u64;
        let allowed = (eps * m as f64).ceil() as u64 + 1;
        for shards in [1usize, 2, 8] {
            let mut e = ShardedEngine::<u64, _>::with_shards(shards, config(eps, kind), |_| {
                MemDevice::new(256)
            });
            for b in &batches {
                e.ingest_step(b).unwrap();
            }
            e.stream_extend(&stream);
            assert_eq!(e.total_len(), n);
            for phi_pct in [5u32, 50, 95] {
                let phi = phi_pct as f64 / 100.0;
                let r = ((phi * n as f64).ceil() as u64).clamp(1, n);
                let v = e.quantile(phi).unwrap().unwrap();
                let dist = rank_distance(&all, v, r);
                assert!(
                    dist <= allowed,
                    "{kind}/shards={shards} phi={phi}: off by {dist} > {allowed}"
                );
            }
        }
    }
}

/// Windowed queries (live stream + last `w` archived steps) meet the
/// same bound under either backend.
#[test]
fn both_backends_meet_union_bound_windowed() {
    let eps = 0.1;
    for kind in KINDS {
        let mut gen = lcg(0xD1CE);
        let mut h = HistStreamQuantiles::<u64, _>::new(MemDevice::new(256), config(eps, kind));
        let steps: Vec<Vec<u64>> = (0..5)
            .map(|_| (0..300).map(|_| gen() % 100_000).collect())
            .collect();
        for s in &steps {
            h.ingest_step(s).unwrap();
        }
        let stream: Vec<u64> = (0..400).map(|_| gen() % 100_000).collect();
        h.stream_extend(&stream);
        let m = stream.len() as u64;
        let allowed = (eps * m as f64).ceil() as u64 + 1;
        for w in h.available_windows() {
            let mut win: Vec<u64> = steps[steps.len() - w as usize..]
                .iter()
                .flatten()
                .copied()
                .collect();
            win.extend(&stream);
            win.sort_unstable();
            let n = win.len() as u64;
            for phi_pct in [10u32, 50, 90] {
                let phi = phi_pct as f64 / 100.0;
                let r = ((phi * n as f64).ceil() as u64).clamp(1, n);
                let v = h.quantile_window(phi, w).unwrap().unwrap();
                let dist = rank_distance(&win, v, r);
                assert!(
                    dist <= allowed,
                    "{kind}/window={w} phi={phi}: off by {dist} > {allowed}"
                );
            }
        }
    }
}

/// Engine persist/recover round-trips both sketch serializations
/// mid-step: the recovered engine answers identically, keeps absorbing
/// the stream, and still meets the bound against exact.
#[test]
fn persist_recover_roundtrips_both_serializations() {
    let eps = 0.05;
    for kind in KINDS {
        let cfg = config(eps, kind);
        let mut gen = lcg(0xF00D ^ kind as u64);
        let mut h = HistStreamQuantiles::<u64, _>::new(MemDevice::new(512), cfg.clone());
        let mut exact = ExactQuantiles::<u64>::new();
        for _ in 0..3 {
            let step: Vec<u64> = (0..600).map(|_| gen() % 1_000_000).collect();
            exact.extend(step.iter().copied());
            h.ingest_step(&step).unwrap();
        }
        // Leave the stream mid-step so the manifest carries live sketch
        // state in `kind`'s serialization.
        let pre: Vec<u64> = (0..500).map(|_| gen() % 1_000_000).collect();
        exact.extend(pre.iter().copied());
        h.stream_extend(&pre);
        let manifest = h.persist().unwrap();
        let dev = Arc::clone(h.warehouse().device());

        let mut r = HistStreamQuantiles::<u64, _>::recover(dev, cfg, manifest).unwrap();
        assert_eq!(r.stream().sketch().kind(), kind);
        assert_eq!(r.total_len(), h.total_len());
        assert_eq!(r.stream_len(), h.stream_len());
        for phi_pct in [1u32, 25, 50, 75, 100] {
            let phi = phi_pct as f64 / 100.0;
            assert_eq!(
                r.quantile(phi).unwrap(),
                h.quantile(phi).unwrap(),
                "{kind}: recovered engine diverges at phi={phi}"
            );
        }
        // The recovered engine keeps streaming within bounds.
        let post: Vec<u64> = (0..500).map(|_| gen() % 1_000_000).collect();
        exact.extend(post.iter().copied());
        r.stream_extend(&post);
        let m = (pre.len() + post.len()) as u64;
        let n = exact.len();
        let allowed = (eps * m as f64).ceil() as u64 + 1;
        for phi_pct in [10u32, 50, 90] {
            let phi = phi_pct as f64 / 100.0;
            let v = r.quantile(phi).unwrap().unwrap();
            // relative_error is |closest rank of v - ceil(phi*n)| / (phi*n);
            // scale back to a rank distance to compare against eps*m.
            let dist = (exact.relative_error(phi, v) * phi * n as f64).round() as u64;
            assert!(
                dist <= allowed,
                "{kind}: post-recovery phi={phi} off by {dist} > {allowed}"
            );
        }
    }
}

/// State persisted under one backend recovers under a build configured
/// for the other: answers are preserved verbatim, and the configured
/// backend takes over at the next step boundary.
#[test]
fn cross_backend_recovery_preserves_answers() {
    let eps = 0.05;
    for (wrote, reopens) in [
        (SketchKind::Gk, SketchKind::Kll),
        (SketchKind::Kll, SketchKind::Gk),
    ] {
        let mut gen = lcg(0xCAFE);
        let mut h = HistStreamQuantiles::<u64, _>::new(MemDevice::new(512), config(eps, wrote));
        for _ in 0..2 {
            let step: Vec<u64> = (0..400).map(|_| gen() % 1_000_000).collect();
            h.ingest_step(&step).unwrap();
        }
        let stream: Vec<u64> = (0..300).map(|_| gen() % 1_000_000).collect();
        h.stream_extend(&stream);
        let manifest = h.persist().unwrap();
        let dev = Arc::clone(h.warehouse().device());

        let mut r =
            HistStreamQuantiles::<u64, _>::recover(dev, config(eps, reopens), manifest).unwrap();
        // The serialized sketch keeps its own kind until a step boundary.
        assert_eq!(r.stream().sketch().kind(), wrote);
        for phi_pct in [5u32, 50, 95] {
            let phi = phi_pct as f64 / 100.0;
            assert_eq!(r.quantile(phi).unwrap(), h.quantile(phi).unwrap());
        }
        r.end_time_step().unwrap();
        assert_eq!(r.stream().sketch().kind(), reopens);
    }
}
