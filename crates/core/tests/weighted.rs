//! Property harness for weighted ingestion and seeded randomized KLL
//! compaction.
//!
//! The weighted contract under test: feeding `(item, w)` pairs through
//! the weighted ingestion paths is equivalent to feeding `w` replicated
//! copies through the unweighted paths — same `m` (now the summed
//! weight `W`), same archived bytes, and quantile answers within the
//! Theorem 2 `ε·W` bound of exact-over-replicated — for the single
//! engine, sharded engines at 1/2/8 shards, and windowed queries.
//!
//! The randomized-compaction contract: under a fixed seed the KLL
//! coin-flip sequence is a pure function of sketch state, so two engines
//! fed identical data answer identically (per seed), while each seed
//! still meets the same `ε·m` union guarantee as the deterministic
//! policy.

use std::sync::Arc;

use hsq_core::{HistStreamQuantiles, HsqConfig, ShardedEngine, SketchCompaction, SketchKind};
use hsq_storage::MemDevice;

const SEEDS: [u64; 3] = [0, 7, 23];

fn lcg(seed: u64) -> impl FnMut() -> u64 {
    let mut x = seed | 1;
    move || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        x >> 33
    }
}

/// Deterministic `(value, weight)` pairs with weights in `1..=max_w`.
fn gen_pairs(seed: u64, len: usize, max_w: u64) -> Vec<(u64, u64)> {
    let mut gen = lcg(seed);
    (0..len)
        .map(|_| {
            let v = gen() % 1_000_000;
            let w = gen() % max_w + 1;
            (v, w)
        })
        .collect()
}

fn replicate(pairs: &[(u64, u64)]) -> Vec<u64> {
    let mut out = Vec::new();
    for &(v, w) in pairs {
        out.extend(std::iter::repeat_n(v, w as usize));
    }
    out
}

/// Rank distance from target `r` to the rank interval of `v` in `sorted`
/// (zero when `v`'s occupied interval covers `r`).
fn rank_distance(sorted: &[u64], v: u64, r: u64) -> u64 {
    let hi = sorted.partition_point(|&x| x <= v) as u64;
    let lo = sorted.partition_point(|&x| x < v) as u64 + 1;
    if lo > hi {
        return r.abs_diff(hi);
    }
    if r < lo {
        lo - r
    } else {
        r.saturating_sub(hi)
    }
}

fn config(eps: f64, kind: SketchKind) -> HsqConfig {
    HsqConfig::builder()
        .epsilon(eps)
        .merge_threshold(3)
        .sketch(kind)
        .build()
}

fn assert_within(sorted: &[u64], v: u64, phi: f64, allowed: u64, label: &str) {
    let n = sorted.len() as u64;
    let r = ((phi * n as f64).ceil() as u64).clamp(1, n);
    let dist = rank_distance(sorted, v, r);
    assert!(
        dist <= allowed,
        "{label} phi={phi}: value {v} off by {dist} ranks (allowed {allowed})"
    );
}

/// Single engine: weighted ingest across archived steps and a live
/// stream answers within `ε·W` of exact over the replicated expansion,
/// under both backends.
#[test]
fn weighted_engine_matches_replicated_both_backends() {
    let eps = 0.05;
    for kind in [SketchKind::Gk, SketchKind::Kll] {
        let mut w_eng = HistStreamQuantiles::<u64, _>::new(MemDevice::new(256), config(eps, kind));
        let mut r_eng = HistStreamQuantiles::<u64, _>::new(MemDevice::new(256), config(eps, kind));
        let mut all: Vec<u64> = Vec::new();
        for step in 0..3u64 {
            let pairs = gen_pairs(step * 31 + 1, 400, 6);
            let expanded = replicate(&pairs);
            w_eng.stream_extend_weighted(&pairs);
            r_eng.stream_extend(&expanded);
            all.extend(&expanded);
            w_eng.end_time_step().unwrap();
            r_eng.end_time_step().unwrap();
        }
        // Live stream: batch then scalar weighted updates.
        let live = gen_pairs(777, 500, 6);
        w_eng.stream_extend_weighted(&live[..300]);
        for &(v, w) in &live[300..] {
            w_eng.stream_update_weighted(v, w);
        }
        let live_expanded = replicate(&live);
        r_eng.stream_extend(&live_expanded);
        all.extend(&live_expanded);

        let big_w: u64 = live.iter().map(|&(_, w)| w).sum();
        assert_eq!(w_eng.stream_len(), big_w, "{kind}: m must be summed weight");
        assert_eq!(w_eng.total_len(), r_eng.total_len(), "{kind}");
        all.sort_unstable();
        let allowed = (eps * big_w as f64).ceil() as u64 + 1;
        for phi_pct in [1u32, 10, 50, 90, 100] {
            let phi = phi_pct as f64 / 100.0;
            let v = w_eng.quantile(phi).unwrap().unwrap();
            assert_within(&all, v, phi, allowed, &format!("{kind}/weighted"));
        }
    }
}

/// Sharded engines at 1, 2 and 8 shards keep the `ε·W` bound under
/// weighted ingestion, and weighted routing agrees with unweighted
/// (the shard hash ignores the weight).
#[test]
fn weighted_sharded_matches_replicated() {
    let eps = 0.1;
    for kind in [SketchKind::Gk, SketchKind::Kll] {
        let pairs = gen_pairs(0x5EED ^ kind as u64, 1500, 5);
        let mut all = replicate(&pairs);
        let big_w = all.len() as u64;
        all.sort_unstable();
        let allowed = (eps * big_w as f64).ceil() as u64 + 1;
        for shards in [1usize, 2, 8] {
            let mut e = ShardedEngine::<u64, _>::with_shards(shards, config(eps, kind), |_| {
                MemDevice::new(256)
            });
            e.stream_extend_weighted(&pairs);
            assert_eq!(e.stream_len(), big_w, "{kind}/shards={shards}");
            for phi_pct in [5u32, 50, 95] {
                let phi = phi_pct as f64 / 100.0;
                let v = e.quantile(phi).unwrap().unwrap();
                assert_within(
                    &all,
                    v,
                    phi,
                    allowed,
                    &format!("{kind}/shards={shards}/weighted"),
                );
            }
        }
    }
}

/// Windowed queries over weighted-ingested steps answer within `ε·W` of
/// exact over the replicated window contents.
#[test]
fn weighted_windowed_matches_replicated() {
    let eps = 0.1;
    for kind in [SketchKind::Gk, SketchKind::Kll] {
        let mut h = HistStreamQuantiles::<u64, _>::new(MemDevice::new(256), config(eps, kind));
        let mut step_data: Vec<Vec<u64>> = Vec::new();
        for step in 0..5u64 {
            let pairs = gen_pairs(step * 7 + 3, 200, 4);
            h.stream_extend_weighted(&pairs);
            h.end_time_step().unwrap();
            step_data.push(replicate(&pairs));
        }
        let live = gen_pairs(999, 250, 4);
        h.stream_extend_weighted(&live);
        let live_expanded = replicate(&live);
        let m = live_expanded.len() as u64;
        let allowed = (eps * m as f64).ceil() as u64 + 1;
        for w in h.available_windows() {
            let mut win: Vec<u64> = step_data[step_data.len() - w as usize..]
                .iter()
                .flatten()
                .copied()
                .collect();
            win.extend(&live_expanded);
            win.sort_unstable();
            for phi_pct in [10u32, 50, 90] {
                let phi = phi_pct as f64 / 100.0;
                let v = h.quantile_window(phi, w).unwrap().unwrap();
                assert_within(&win, v, phi, allowed, &format!("{kind}/window={w}"));
            }
        }
    }
}

/// Deterministic vs randomized KLL compaction A/B: per seed, two engines
/// fed identical weighted data answer *identically* (the coin flips are
/// a pure function of seed and state), and every seed independently
/// meets the `ε·m` bound the deterministic policy meets.
#[test]
fn kll_randomized_replays_identically_and_meets_bound() {
    let eps = 0.05;
    let pairs = gen_pairs(0xABCD, 2000, 5);
    let mut all = replicate(&pairs);
    let m = all.len() as u64;
    all.sort_unstable();
    let allowed = (eps * m as f64).ceil() as u64 + 1;
    let phis: Vec<f64> = [1u32, 10, 25, 50, 75, 90, 99, 100]
        .iter()
        .map(|&p| p as f64 / 100.0)
        .collect();

    let run = |mode: SketchCompaction| {
        let cfg = HsqConfig::builder()
            .epsilon(eps)
            .merge_threshold(3)
            .sketch(SketchKind::Kll)
            .sketch_compaction(mode)
            .build();
        let mut h = HistStreamQuantiles::<u64, _>::new(MemDevice::new(256), cfg);
        h.stream_extend_weighted(&pairs[..1200]);
        for &(v, w) in &pairs[1200..] {
            h.stream_update_weighted(v, w);
        }
        phis.iter()
            .map(|&phi| h.quantile(phi).unwrap().unwrap())
            .collect::<Vec<u64>>()
    };

    let det = run(SketchCompaction::Deterministic);
    for (i, &phi) in phis.iter().enumerate() {
        assert_within(&all, det[i], phi, allowed, "det");
    }
    for seed in SEEDS {
        let a = run(SketchCompaction::Randomized { seed });
        let b = run(SketchCompaction::Randomized { seed });
        assert_eq!(a, b, "seed={seed}: replay must be identical");
        for (i, &phi) in phis.iter().enumerate() {
            assert_within(&all, a[i], phi, allowed, &format!("rand seed={seed}"));
        }
    }
}

/// A randomized KLL engine persisted mid-stream resumes byte-identically:
/// the recovered engine's answers match the uninterrupted original both
/// immediately and after both absorb the same suffix.
#[test]
fn randomized_kll_persist_recover_resumes_identically() {
    let eps = 0.05;
    for seed in SEEDS {
        let cfg = HsqConfig::builder()
            .epsilon(eps)
            .merge_threshold(3)
            .sketch(SketchKind::Kll)
            .sketch_compaction(SketchCompaction::Randomized { seed })
            .build();
        let pairs = gen_pairs(seed.wrapping_add(11), 1600, 4);
        let mut h = HistStreamQuantiles::<u64, _>::new(MemDevice::new(512), cfg.clone());
        h.ingest_step(&replicate(&pairs[..400])).unwrap();
        h.stream_extend_weighted(&pairs[400..1000]);
        let manifest = h.persist().unwrap();
        let dev = Arc::clone(h.warehouse().device());
        let mut r = HistStreamQuantiles::<u64, _>::recover(dev, cfg, manifest).unwrap();

        // Both continue with the identical weighted suffix.
        h.stream_extend_weighted(&pairs[1000..]);
        r.stream_extend_weighted(&pairs[1000..]);
        assert_eq!(r.stream_len(), h.stream_len(), "seed={seed}");
        for phi_pct in [1u32, 25, 50, 75, 100] {
            let phi = phi_pct as f64 / 100.0;
            assert_eq!(
                r.quantile(phi).unwrap(),
                h.quantile(phi).unwrap(),
                "seed={seed}: recovered randomized engine diverges at phi={phi}"
            );
        }
    }
}
