//! Property-based tests for the storage substrate.

use hsq_storage::{external_sort, merge_runs, write_run, Item, MemDevice, F64};
use proptest::prelude::*;

proptest! {
    /// External sort equals std sort for any input and any (tiny) budget.
    #[test]
    fn external_sort_matches_std_sort(
        mut data in proptest::collection::vec(any::<u64>(), 0..2000),
        budget in 2usize..128,
        block in 16usize..512,
    ) {
        let dev = MemDevice::new(block.max(8));
        let (run, _) = external_sort(&*dev, data.clone(), budget).unwrap();
        data.sort_unstable();
        prop_assert_eq!(run.read_all(&*dev).unwrap(), data);
    }

    /// Multi-way merge of arbitrary sorted runs is the sorted multiset union.
    #[test]
    fn merge_is_multiset_union(
        runs_data in proptest::collection::vec(
            proptest::collection::vec(any::<i64>(), 0..300), 0..6),
    ) {
        let dev = MemDevice::new(64);
        let mut expected: Vec<i64> = runs_data.iter().flatten().copied().collect();
        expected.sort_unstable();
        let runs: Vec<_> = runs_data
            .into_iter()
            .map(|mut d| {
                d.sort_unstable();
                write_run(&*dev, &d).unwrap()
            })
            .collect();
        let merged = merge_runs(&*dev, &runs).unwrap();
        prop_assert_eq!(merged.read_all(&*dev).unwrap(), expected);
    }

    /// rank_of on a run equals the number of items <= probe.
    #[test]
    fn rank_of_is_exact(
        mut data in proptest::collection::vec(any::<u64>(), 0..500),
        probes in proptest::collection::vec(any::<u64>(), 1..20),
    ) {
        let dev = MemDevice::new(64);
        data.sort_unstable();
        let run = write_run(&*dev, &data).unwrap();
        for probe in probes {
            let expect = data.iter().filter(|&&x| x <= probe).count() as u64;
            prop_assert_eq!(run.rank_of(&*dev, probe).unwrap(), expect);
        }
    }

    /// get(i) returns the i-th smallest item for every index.
    #[test]
    fn get_is_positional(
        mut data in proptest::collection::vec(any::<i64>(), 1..300),
        block in 16usize..200,
    ) {
        let dev = MemDevice::new(block.max(8));
        data.sort_unstable();
        let run = write_run(&*dev, &data).unwrap();
        for (i, &v) in data.iter().enumerate() {
            prop_assert_eq!(run.get(&*dev, i as u64).unwrap(), v);
        }
    }

    /// Encoding preserves order for f64 (excluding NaN).
    #[test]
    fn f64_encoding_order(a in any::<f64>(), b in any::<f64>()) {
        prop_assume!(!a.is_nan() && !b.is_nan());
        let (fa, fb) = (F64::new(a), F64::new(b));
        let mut ba = [0u8; 8];
        let mut bb = [0u8; 8];
        fa.encode(&mut ba);
        fb.encode(&mut bb);
        if a < b {
            prop_assert!(ba < bb);
        } else if a > b {
            prop_assert!(ba > bb);
        }
        prop_assert_eq!(F64::decode(&ba).get().to_bits(), a.to_bits());
    }

    /// Integer midpoints stay in range and make progress.
    #[test]
    fn midpoint_contract_i64(a in any::<i64>(), b in any::<i64>()) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let m = <i64 as Item>::midpoint(lo, hi);
        prop_assert!(lo <= m && m <= hi);
        // Strict progress whenever the gap exceeds 1 (bisection terminates).
        if (hi as i128) - (lo as i128) > 1 {
            prop_assert!(m > lo && m < hi);
        }
    }
}
