//! Deterministic fault injection for durability testing.
//!
//! [`FaultDevice`] wraps any [`BlockDevice`] and counts every *mutating*
//! operation (create, write, sync, delete) in submission order. A
//! [`Fault`] armed against that counter turns the wrapper into a
//! reproducible failure machine:
//!
//! * [`Fault::FailOp`] — one transient error at a chosen op, then normal
//!   operation (a flaky disk);
//! * [`Fault::CrashAfter`] — the first `n` mutations succeed, everything
//!   after fails and the device *halts* (crash-stop: reads fail too, as
//!   they would on a dead machine) until [`FaultDevice::revive`];
//! * [`Fault::TornWrite`] — the chosen mutation, if a write, persists
//!   only a prefix of its payload and then halts — the torn final block
//!   a power loss leaves behind;
//! * [`Fault::BitRot`] — the n-th block *write* silently lands with one
//!   byte flipped: the device reports success and later reads return the
//!   rotted bytes, exactly what checksummed runs must catch;
//! * [`Fault::FlakyReads`] — a deterministic fraction of reads fail with
//!   a *transient* ([`std::io::ErrorKind::Interrupted`]) error, the kind
//!   a [`crate::RetryPolicy`] is expected to mask.
//!
//! The intended harness shape (see `hsq-core`'s fault-injection tests):
//! run the workload once un-faulted to learn the mutation count `M`,
//! then for every crash point `k ∈ 0..=M` rerun it on a fresh device
//! with [`Fault::CrashAfter`]`(k)`, [`FaultDevice::revive`] ("reboot"),
//! recover, and compare answers against the non-crashing oracle.

use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::device::{BlockDevice, FileId};
use crate::stats::IoStats;

/// A deterministic fault schedule over the mutation-op counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The mutation with this index fails once; later ops proceed.
    FailOp(u64),
    /// Mutations `0..n` succeed; the op with index `n` (and everything
    /// after, reads included) fails until [`FaultDevice::revive`].
    CrashAfter(u64),
    /// Like [`Fault::CrashAfter`], but if the chosen mutation is a block
    /// write, half its payload is persisted first — a torn block.
    TornWrite(u64),
    /// The block write with this index (counting block writes only, not
    /// all mutations) silently persists with one byte flipped. The write
    /// reports success — the corruption is only observable by verifying
    /// what reads return. One-shot.
    BitRot(u64),
    /// Every read whose index (counting reads since arming) hashes to
    /// `0 (mod rate)` under `seed` fails with a transient
    /// [`std::io::ErrorKind::Interrupted`] error. Stays armed; the same
    /// `(seed, rate)` yields the same failing read indices on replay.
    FlakyReads {
        /// Mixes into the read-index hash so different seeds fail
        /// different reads.
        seed: u64,
        /// Roughly one in `rate` reads fails (must be ≥ 1).
        rate: u64,
    },
}

/// A [`BlockDevice`] wrapper injecting deterministic faults (module docs).
pub struct FaultDevice<D: BlockDevice> {
    inner: Arc<D>,
    mutations: AtomicU64,
    block_writes: AtomicU64,
    reads: AtomicU64,
    halted: AtomicBool,
    plan: Mutex<Option<Fault>>,
}

impl<D: BlockDevice> FaultDevice<D> {
    /// Wrap `inner` with no fault armed (pure pass-through recording).
    pub fn new(inner: Arc<D>) -> Arc<Self> {
        Arc::new(FaultDevice {
            inner,
            mutations: AtomicU64::new(0),
            block_writes: AtomicU64::new(0),
            reads: AtomicU64::new(0),
            halted: AtomicBool::new(false),
            plan: Mutex::new(None),
        })
    }

    /// The wrapped device.
    pub fn inner(&self) -> &Arc<D> {
        &self.inner
    }

    /// Arm a fault (replacing any previous one).
    pub fn arm(&self, fault: Fault) {
        *self.plan.lock() = Some(fault);
    }

    /// Mutating ops observed so far (the crash-point index space).
    pub fn mutations(&self) -> u64 {
        self.mutations.load(Ordering::Relaxed)
    }

    /// Block writes observed so far (the [`Fault::BitRot`] index space).
    pub fn block_writes(&self) -> u64 {
        self.block_writes.load(Ordering::Relaxed)
    }

    /// Reads observed so far (the [`Fault::FlakyReads`] index space).
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Whether the device is crash-stopped.
    pub fn halted(&self) -> bool {
        self.halted.load(Ordering::Relaxed)
    }

    /// Clear the halt and any armed fault: the "reboot" before recovery.
    /// Persisted state is exactly what the faulted run left behind.
    pub fn revive(&self) {
        self.halted.store(false, Ordering::Relaxed);
        *self.plan.lock() = None;
    }

    fn crashed_err() -> io::Error {
        io::Error::other("injected crash: device halted")
    }

    fn injected_err(idx: u64) -> io::Error {
        io::Error::other(format!("injected fault at mutation {idx}"))
    }

    fn check_read(&self) -> io::Result<()> {
        if self.halted() {
            Err(Self::crashed_err())
        } else {
            Ok(())
        }
    }

    /// Gate one block-read op: crash-stop check plus the deterministic
    /// [`Fault::FlakyReads`] schedule.
    fn gate_read(&self) -> io::Result<()> {
        self.check_read()?;
        let idx = self.reads.fetch_add(1, Ordering::Relaxed);
        if let Some(Fault::FlakyReads { seed, rate }) = *self.plan.lock() {
            assert!(rate >= 1, "FlakyReads rate must be >= 1");
            // SplitMix-style avalanche so the failing reads are spread
            // over the index space instead of striding.
            let mut h = idx ^ seed;
            h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            h ^= h >> 31;
            if h.is_multiple_of(rate) {
                return Err(io::Error::new(
                    io::ErrorKind::Interrupted,
                    format!("injected transient read failure (read {idx})"),
                ));
            }
        }
        Ok(())
    }

    /// If [`Fault::BitRot`] is armed for this block write, return the
    /// payload with one byte flipped (and disarm); else `None`.
    fn gate_bit_rot(&self, data: &[u8]) -> Option<Vec<u8>> {
        let idx = self.block_writes.fetch_add(1, Ordering::Relaxed);
        let mut plan = self.plan.lock();
        if let Some(Fault::BitRot(n)) = *plan {
            if idx == n && !data.is_empty() {
                *plan = None; // one-shot
                let mut rotted = data.to_vec();
                let byte = (idx as usize).wrapping_mul(31) % rotted.len();
                rotted[byte] ^= 0x20;
                return Some(rotted);
            }
        }
        None
    }

    /// Gate one mutating op. `Ok(None)` = proceed normally;
    /// `Ok(Some(prefix_len))` = torn write of `prefix_len` bytes.
    fn gate_mutation(&self, is_write: bool, data_len: usize) -> io::Result<Option<usize>> {
        if self.halted() {
            return Err(Self::crashed_err());
        }
        let idx = self.mutations.fetch_add(1, Ordering::Relaxed);
        let mut plan = self.plan.lock();
        match *plan {
            Some(Fault::FailOp(n)) if idx == n => {
                *plan = None; // one-shot
                Err(Self::injected_err(idx))
            }
            Some(Fault::CrashAfter(n)) if idx >= n => {
                self.halted.store(true, Ordering::Relaxed);
                Err(Self::crashed_err())
            }
            Some(Fault::TornWrite(n)) if idx >= n => {
                self.halted.store(true, Ordering::Relaxed);
                if is_write && data_len >= 2 {
                    Ok(Some(data_len / 2))
                } else {
                    Err(Self::crashed_err())
                }
            }
            _ => Ok(None),
        }
    }
}

impl<D: BlockDevice> BlockDevice for FaultDevice<D> {
    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn create(&self) -> io::Result<FileId> {
        self.gate_mutation(false, 0)?;
        self.inner.create()
    }

    fn write_block(&self, file: FileId, idx: u64, data: &[u8]) -> io::Result<()> {
        match self.gate_mutation(true, data.len())? {
            None => match self.gate_bit_rot(data) {
                // Silent corruption: success reported, rot persisted.
                Some(rotted) => self.inner.write_block(file, idx, &rotted),
                None => self.inner.write_block(file, idx, data),
            },
            Some(prefix) => {
                // Torn write: persist the prefix, then report the crash.
                let _ = self.inner.write_block(file, idx, &data[..prefix]);
                Err(Self::crashed_err())
            }
        }
    }

    fn read_block(&self, file: FileId, idx: u64, buf: &mut [u8]) -> io::Result<usize> {
        self.gate_read()?;
        self.inner.read_block(file, idx, buf)
    }

    fn read_blocks(
        &self,
        file: FileId,
        first: u64,
        count: u64,
        buf: &mut [u8],
    ) -> io::Result<usize> {
        self.gate_read()?;
        self.inner.read_blocks(file, first, count, buf)
    }

    fn sync(&self, file: FileId) -> io::Result<()> {
        self.gate_mutation(false, 0)?;
        self.inner.sync(file)
    }

    fn num_blocks(&self, file: FileId) -> io::Result<u64> {
        self.check_read()?;
        self.inner.num_blocks(file)
    }

    fn file_len(&self, file: FileId) -> io::Result<u64> {
        self.check_read()?;
        self.inner.file_len(file)
    }

    fn delete(&self, file: FileId) -> io::Result<()> {
        self.gate_mutation(false, 0)?;
        self.inner.delete(file)
    }

    fn stats(&self) -> &IoStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemDevice;

    #[test]
    fn passthrough_counts_mutations() {
        let dev = FaultDevice::new(MemDevice::new(64));
        let f = dev.create().unwrap(); // mutation 0
        dev.write_block(f, 0, &[1u8; 64]).unwrap(); // 1
        dev.sync(f).unwrap(); // 2
        dev.delete(f).unwrap(); // 3
        assert_eq!(dev.mutations(), 4);
        assert!(!dev.halted());
    }

    #[test]
    fn fail_op_is_transient() {
        let dev = FaultDevice::new(MemDevice::new(64));
        let f = dev.create().unwrap();
        dev.arm(Fault::FailOp(1));
        assert!(dev.write_block(f, 0, &[1u8; 64]).is_err()); // mutation 1 fails
                                                             // Next attempt succeeds: the fault was one-shot.
        dev.write_block(f, 0, &[1u8; 64]).unwrap();
        assert!(!dev.halted());
    }

    #[test]
    fn crash_after_halts_everything_until_revive() {
        let dev = FaultDevice::new(MemDevice::new(64));
        let f = dev.create().unwrap();
        dev.write_block(f, 0, &[7u8; 64]).unwrap();
        dev.arm(Fault::CrashAfter(2));
        assert!(dev.write_block(f, 1, &[8u8; 64]).is_err()); // mutation 2 crashes
        assert!(dev.halted());
        let mut buf = [0u8; 64];
        assert!(dev.read_block(f, 0, &mut buf).is_err());
        assert!(dev.num_blocks(f).is_err());
        dev.revive();
        // Pre-crash state survives; post-crash writes never landed.
        assert_eq!(dev.num_blocks(f).unwrap(), 1);
        assert_eq!(dev.read_block(f, 0, &mut buf).unwrap(), 64);
        assert!(buf.iter().all(|&b| b == 7));
    }

    #[test]
    fn torn_write_persists_half_a_block() {
        let dev = FaultDevice::new(MemDevice::new(64));
        let f = dev.create().unwrap();
        dev.write_block(f, 0, &[1u8; 64]).unwrap();
        dev.arm(Fault::TornWrite(2));
        assert!(dev.write_block(f, 1, &[2u8; 64]).is_err());
        assert!(dev.halted());
        dev.revive();
        // The tail block holds only the first 32 bytes.
        assert_eq!(dev.file_len(f).unwrap(), 64 + 32);
        let mut buf = [0u8; 64];
        assert_eq!(dev.read_block(f, 1, &mut buf).unwrap(), 32);
        assert!(buf[..32].iter().all(|&b| b == 2));
    }

    #[test]
    fn bit_rot_is_silent_and_one_shot() {
        let dev = FaultDevice::new(MemDevice::new(64));
        let f = dev.create().unwrap();
        dev.arm(Fault::BitRot(1)); // rot the second block write
        dev.write_block(f, 0, &[7u8; 64]).unwrap();
        dev.write_block(f, 1, &[7u8; 64]).unwrap(); // silently rotted
        dev.write_block(f, 2, &[7u8; 64]).unwrap(); // one-shot: clean
        assert_eq!(dev.block_writes(), 3);
        assert!(!dev.halted());
        let mut buf = [0u8; 64];
        dev.read_block(f, 0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 7), "block 0 clean");
        dev.read_block(f, 1, &mut buf).unwrap();
        assert_eq!(
            buf.iter().filter(|&&b| b != 7).count(),
            1,
            "exactly one byte of block 1 rotted"
        );
        dev.read_block(f, 2, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 7), "block 2 clean");
    }

    #[test]
    fn flaky_reads_are_transient_and_deterministic() {
        use crate::error::is_transient;
        let observe = |seed: u64| -> Vec<bool> {
            let dev = FaultDevice::new(MemDevice::new(64));
            let f = dev.create().unwrap();
            dev.write_block(f, 0, &[1u8; 64]).unwrap();
            dev.arm(Fault::FlakyReads { seed, rate: 4 });
            let mut buf = [0u8; 64];
            (0..64)
                .map(|_| dev.read_block(f, 0, &mut buf).is_err())
                .collect()
        };
        let a = observe(42);
        assert_eq!(a, observe(42), "same seed, same failing reads");
        assert_ne!(a, observe(43), "different seed, different schedule");
        let failures = a.iter().filter(|&&x| x).count();
        assert!(
            (4..=28).contains(&failures),
            "rate 4 should fail roughly 1/4 of 64 reads, got {failures}"
        );
        // And the errors are classified transient (retryable).
        let dev = FaultDevice::new(MemDevice::new(64));
        let f = dev.create().unwrap();
        dev.write_block(f, 0, &[1u8; 64]).unwrap();
        dev.arm(Fault::FlakyReads { seed: 42, rate: 1 }); // every read fails
        let mut buf = [0u8; 64];
        let err = dev.read_block(f, 0, &mut buf).unwrap_err();
        assert!(is_transient(&err));
    }

    #[test]
    fn retry_device_masks_flaky_reads() {
        use crate::error::{RetryDevice, RetryPolicy};
        let dev = FaultDevice::new(MemDevice::new(64));
        let f = dev.create().unwrap();
        dev.write_block(f, 0, &[9u8; 64]).unwrap();
        dev.arm(Fault::FlakyReads { seed: 7, rate: 2 });
        let retrying = RetryDevice::new(Arc::clone(&dev), RetryPolicy::immediate(16));
        let mut buf = [0u8; 64];
        for _ in 0..100 {
            assert_eq!(retrying.read_block(f, 0, &mut buf).unwrap(), 64);
            assert!(buf.iter().all(|&b| b == 9));
        }
        assert!(
            dev.stats().snapshot().retries > 0,
            "masked transients must be counted"
        );
    }

    #[test]
    fn deterministic_replay_reaches_same_crash_point() {
        // The same workload against the same schedule crashes at the
        // same op — the property the crash-point sweep relies on.
        let run = |crash: u64| -> (u64, Vec<u64>) {
            let dev = FaultDevice::new(MemDevice::new(64));
            dev.arm(Fault::CrashAfter(crash));
            let mut survived = Vec::new();
            'outer: for fi in 0..4u64 {
                let Ok(f) = dev.create() else { break };
                for b in 0..3u64 {
                    if dev.write_block(f, b, &[fi as u8; 64]).is_err() {
                        break 'outer;
                    }
                }
                survived.push(f);
            }
            dev.revive();
            (dev.mutations(), survived)
        };
        for crash in 0..16u64 {
            let a = run(crash);
            let b = run(crash);
            assert_eq!(a, b, "crash point {crash} must replay identically");
        }
    }
}
