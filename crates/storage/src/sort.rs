//! External sort: batch loading for the warehouse.
//!
//! When a time step ends, the collected batch `D` must be "sorted and stored
//! at level 0 of HD; the sorting can be performed in-memory, or using an
//! external sort, depending on the size of D" (paper §2.1). This module
//! implements both paths behind one entry point, [`external_sort`]:
//!
//! * if the batch fits in the caller's memory budget, it is sorted in
//!   memory ([`sort_items`]: LSD radix for radix-keyed items, comparison
//!   sort otherwise) and written out in one sequential pass;
//! * otherwise it is cut into budget-sized runs (each sorted in memory and
//!   spilled), which are then multi-way merged in a single pass — the
//!   constant-pass regime that prior work (\[2\] in the paper) shows suffices
//!   in practice, giving the `O(η/B)` sorting I/O that Lemma 6 assumes.

use std::io;

use crate::device::BlockDevice;
use crate::encode::Item;
use crate::merge::merge_runs;
use crate::run::{write_run, SortedRun};

/// Sort a batch of items in memory, nondecreasing.
///
/// Items whose [`hsq_sketch::RadixKey`] is radixable take the LSD radix
/// path (`O(n)` byte-bucket passes over the order-preserving `u64` key,
/// skipping constant-digit positions — see [`hsq_sketch::radix`]); all
/// other item types, and slices too short to amortize the bucket passes,
/// fall back to the standard unstable comparison sort. The resulting
/// order is identical either way, so batches archived through this
/// function are byte-identical regardless of which path ran.
///
/// This is the single in-memory sort used by batch ingestion: engine
/// segment staging, warehouse level-0 preparation, and the spill chunks
/// of [`external_sort`] all route through it. Returns `true` iff the
/// radix path ran.
#[inline]
pub fn sort_items<T: Item>(items: &mut [T]) -> bool {
    hsq_sketch::sort_radixable(items)
}

/// Statistics about one external sort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortOutcome {
    /// Number of initial sorted runs spilled (1 means in-memory sort).
    pub initial_runs: usize,
    /// Number of merge passes performed (0 means in-memory sort).
    pub merge_passes: usize,
}

/// Sort `items` into a new [`SortedRun`] using at most `mem_budget_items`
/// items of working memory.
///
/// `mem_budget_items` must be at least 2. Returns the run and a
/// [`SortOutcome`] describing the pass structure.
pub fn external_sort<T: Item, D: BlockDevice>(
    dev: &D,
    items: impl IntoIterator<Item = T>,
    mem_budget_items: usize,
) -> io::Result<(SortedRun<T>, SortOutcome)> {
    assert!(mem_budget_items >= 2, "memory budget too small to sort");
    let mut iter = items.into_iter();
    let mut chunk: Vec<T> = Vec::with_capacity(mem_budget_items.min(1 << 20));

    // Fast path: everything fits in the budget.
    let mut spilled: Vec<SortedRun<T>> = Vec::new();
    loop {
        chunk.clear();
        chunk.extend(iter.by_ref().take(mem_budget_items));
        if chunk.is_empty() {
            break;
        }
        sort_items(&mut chunk);
        if spilled.is_empty() && chunk.len() < mem_budget_items {
            // Single chunk, never spilled a previous one: pure in-memory sort.
            let run = write_run(dev, &chunk)?;
            return Ok((
                run,
                SortOutcome {
                    initial_runs: 1,
                    merge_passes: 0,
                },
            ));
        }
        spilled.push(write_run(dev, &chunk)?);
        if chunk.len() < mem_budget_items {
            break; // input exhausted
        }
    }

    match spilled.len() {
        0 => {
            // Empty input.
            let run = write_run::<T, _>(dev, &[])?;
            Ok((
                run,
                SortOutcome {
                    initial_runs: 0,
                    merge_passes: 0,
                },
            ))
        }
        1 => Ok((
            spilled[0],
            SortOutcome {
                initial_runs: 1,
                merge_passes: 0,
            },
        )),
        n => {
            // One multi-way merge pass over all runs. Each open run costs one
            // block of buffer, which for the fan-ins the warehouse produces
            // (eta / budget runs) stays far below the budget.
            let merged = merge_runs(dev, &spilled)?;
            for r in spilled {
                r.delete(dev)?;
            }
            Ok((
                merged,
                SortOutcome {
                    initial_runs: n,
                    merge_passes: 1,
                },
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemDevice;

    #[test]
    fn in_memory_path() {
        let dev = MemDevice::new(64);
        let data = vec![5u64, 3, 9, 1, 7];
        let (run, outcome) = external_sort(&*dev, data, 1000).unwrap();
        assert_eq!(run.read_all(&*dev).unwrap(), vec![1, 3, 5, 7, 9]);
        assert_eq!(outcome.merge_passes, 0);
        assert_eq!(outcome.initial_runs, 1);
    }

    #[test]
    fn spilling_path() {
        let dev = MemDevice::new(64);
        let data: Vec<u64> = (0..1000).rev().collect();
        let (run, outcome) = external_sort(&*dev, data, 64).unwrap();
        assert_eq!(
            run.read_all(&*dev).unwrap(),
            (0..1000).collect::<Vec<u64>>()
        );
        assert_eq!(outcome.initial_runs, 1000usize.div_ceil(64));
        assert_eq!(outcome.merge_passes, 1);
    }

    #[test]
    fn exact_budget_multiple() {
        // Input length an exact multiple of the budget must not lose items.
        let dev = MemDevice::new(64);
        let data: Vec<u64> = (0..128).rev().collect();
        let (run, _) = external_sort(&*dev, data, 64).unwrap();
        assert_eq!(run.len(), 128);
        assert_eq!(run.read_all(&*dev).unwrap(), (0..128).collect::<Vec<u64>>());
    }

    #[test]
    fn empty_input() {
        let dev = MemDevice::new(64);
        let (run, outcome) = external_sort::<u64, _>(&*dev, Vec::new(), 16).unwrap();
        assert!(run.is_empty());
        assert_eq!(outcome.initial_runs, 0);
    }

    #[test]
    fn duplicates_survive() {
        let dev = MemDevice::new(64);
        let data = vec![4u64, 4, 4, 2, 2, 8];
        let (run, _) = external_sort(&*dev, data, 2).unwrap();
        assert_eq!(run.read_all(&*dev).unwrap(), vec![2, 2, 4, 4, 4, 8]);
    }

    #[test]
    fn sort_items_matches_comparison_sort() {
        // The radix path must order exactly like sort_unstable for every
        // Item type, including the sign-biased and float-keyed ones.
        let mut x = 99u64;
        let mut gen = || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x
        };
        let u: Vec<u64> = (0..5000).map(|_| gen()).collect();
        let i: Vec<i64> = u.iter().map(|&v| v as i64).collect();
        let f: Vec<crate::F64> = u
            .iter()
            .map(|&v| crate::F64::new((v as f64 - 1e18) / 3.7))
            .collect();

        let mut a = u.clone();
        let mut b = u.clone();
        assert!(sort_items(&mut a));
        b.sort_unstable();
        assert_eq!(a, b);

        let mut a = i.clone();
        let mut b = i;
        assert!(sort_items(&mut a));
        b.sort_unstable();
        assert_eq!(a, b);

        let mut a = f.clone();
        let mut b = f;
        assert!(sort_items(&mut a));
        b.sort_unstable();
        assert_eq!(a, b);

        // Short slices fall back but still sort.
        let mut short = vec![9u64, 3, 7];
        assert!(!sort_items(&mut short));
        assert_eq!(short, vec![3, 7, 9]);
    }

    #[test]
    fn external_sort_uses_radix_chunks() {
        // Spilled chunks are radix sorted; the merged result must equal
        // the comparison-sorted input exactly.
        let dev = MemDevice::new(64);
        let mut x = 5u64;
        let data: Vec<u64> = (0..1000)
            .map(|_| {
                x = x.wrapping_mul(2862933555777941757).wrapping_add(13);
                x
            })
            .collect();
        let mut expect = data.clone();
        expect.sort_unstable();
        let (run, _) = external_sort(&*dev, data, 128).unwrap();
        assert_eq!(run.read_all(&*dev).unwrap(), expect);
    }

    #[test]
    fn sort_io_is_linear() {
        // Spilled sort should cost ~2 writes + 1 read per block (write runs,
        // read runs, write merged output).
        let dev = MemDevice::new(64); // 7 u64/block
        let n = 512u64;
        let data: Vec<u64> = (0..n).rev().collect();
        let before = dev.stats().snapshot();
        let (_run, outcome) = external_sort(&*dev, data, 64).unwrap();
        let d = dev.stats().snapshot() - before;
        // 8 spilled runs of 64 items = 10 blocks each; merged output is
        // ceil(512 / 7) = 74 blocks.
        let run_blocks = 8 * 64u64.div_ceil(7);
        let out_blocks = n.div_ceil(7);
        assert_eq!(outcome.merge_passes, 1);
        assert_eq!(
            d.writes,
            run_blocks + out_blocks,
            "run writes + merged output writes"
        );
        assert_eq!(d.total_reads(), run_blocks, "each spilled block read once");
        assert_eq!(d.rand_reads, 0);
    }
}
