//! # hsq-storage — block-device substrate with exact I/O accounting
//!
//! The disk model underneath the `hsq` warehouse, reproducing the storage
//! assumptions of *"Estimating quantiles from the union of historical and
//! streaming data"* (VLDB 2016): a disk of fixed-size blocks (§3.1 uses
//! `B = 100 KB`), algorithms measured in block accesses, sequential I/O for
//! batch loads and merges, random I/O for query-time probes.
//!
//! Layers, bottom-up:
//!
//! * [`Item`] — fixed-width order-preserving encoding of values ([`encode`]);
//! * [`BlockDevice`] — block files + [`IoStats`] accounting, with in-memory
//!   ([`MemDevice`]) and on-filesystem ([`FileDevice`]) backends ([`device`]);
//! * [`SortedRun`] — the immutable sorted partition file format ([`run`]);
//! * [`merge_runs`] / [`external_sort`] — the sequential-I/O bulk operations
//!   the warehouse update path is built from ([`merge`], [`sort`]);
//! * [`BlockCache`] — decoded-block cache implementing the paper's
//!   single-block query optimization ([`cache`]);
//! * [`IoScheduler`] — io_uring-style overlapped submission/completion
//!   queues over a bounded worker pool ([`sched`]), behind the
//!   [`BlockDevice::submit`]/[`BlockDevice::poll`] seam;
//! * [`FaultDevice`] — deterministic fault injection (fail-op, torn
//!   final block, crash-stop, bit rot, flaky reads) for durability and
//!   robustness testing ([`fault`]);
//! * [`StorageError`] / [`RetryPolicy`] — typed error taxonomy (transient
//!   vs. corruption vs. fatal) and capped-backoff retry ([`error`]), with
//!   [`crc64`] block/record checksums ([`crc`]).

#![warn(missing_docs)]

pub mod cache;
pub mod crc;
pub mod device;
pub mod encode;
pub mod error;
pub mod fault;
pub mod merge;
pub mod run;
pub mod sched;
pub mod sort;
pub mod stats;

pub use cache::BlockCache;
pub use crc::crc64;
pub use device::{BlockDevice, FileDevice, FileId, IoOp, IoOutcome, IoTicket, MemDevice};
pub use encode::{Item, RadixKey, F64};
pub use error::{
    corruption_in, is_transient, RetryDevice, RetryPolicy, StorageError, StorageErrorKind,
};
pub use fault::{Fault, FaultDevice};
pub use merge::{merge_into, merge_into_prefetch, merge_runs};
pub use run::{
    items_per_block, write_run, write_run_overlapped, RunFormat, RunReader, RunWriter, SortedRun,
    DEFAULT_READAHEAD_BLOCKS,
};
pub use sched::{IoScheduler, SchedSnapshot};
pub use sort::{external_sort, sort_items, SortOutcome};
pub use stats::{IoSnapshot, IoStats};
