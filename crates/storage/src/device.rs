//! Block devices: the disk abstraction underneath the warehouse.
//!
//! The paper models the warehouse disk as an array of fixed-size blocks
//! (`B = 100 KB` in §3.1) and measures every algorithm in block accesses.
//! [`BlockDevice`] is that model: named files made of `block_size`-byte
//! blocks, with all traffic recorded in an [`IoStats`].
//!
//! Two implementations are provided:
//! * [`MemDevice`] — blocks held in memory. Used by tests and by the
//!   experiment harness, where only the *counted* I/O matters (the paper's
//!   own experiments are simulation-based, §3).
//! * [`FileDevice`] — blocks stored in real files under a directory, doing
//!   positioned reads/writes through the OS. Proves the exact same code
//!   paths run against a real filesystem.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::stats::IoStats;

/// Identifier of a file on a [`BlockDevice`].
pub type FileId = u64;

/// Sentinel for "no block read yet" in per-file cursor tracking.
const NO_BLOCK: u64 = u64::MAX;

/// One asynchronous device operation (the io_uring-style SQE shape; see
/// [`crate::IoScheduler`] for the overlapped executor).
#[derive(Debug, Clone)]
pub enum IoOp {
    /// Write `data` as block `idx` of `file` (same contract as
    /// [`BlockDevice::write_block`]).
    Write {
        /// Target file.
        file: FileId,
        /// Block index (append-contiguous).
        idx: u64,
        /// Block payload (at most one block).
        data: Vec<u8>,
    },
    /// Read `count` consecutive blocks starting at `first` (same
    /// contract as [`BlockDevice::read_blocks`]).
    ReadBlocks {
        /// Source file.
        file: FileId,
        /// First block index.
        first: u64,
        /// Number of blocks.
        count: u64,
    },
    /// Force `file` durable ([`BlockDevice::sync`]).
    Sync {
        /// Target file.
        file: FileId,
    },
    /// Delete `file` ([`BlockDevice::delete`]).
    Delete {
        /// Target file.
        file: FileId,
    },
}

impl IoOp {
    /// The file this op addresses (the per-file FIFO ordering key).
    pub fn file(&self) -> FileId {
        match *self {
            IoOp::Write { file, .. }
            | IoOp::ReadBlocks { file, .. }
            | IoOp::Sync { file }
            | IoOp::Delete { file } => file,
        }
    }
}

/// Result payload of a completed [`IoOp`] (the CQE shape).
#[derive(Debug)]
pub enum IoOutcome {
    /// A [`IoOp::Write`] landed.
    Wrote,
    /// A [`IoOp::ReadBlocks`] finished: `data` holds `count * block_size`
    /// bytes, of which the first `len` were read (short only at EOF).
    Read {
        /// The raw block bytes.
        data: Vec<u8>,
        /// Bytes actually read.
        len: usize,
    },
    /// A [`IoOp::Sync`] barrier reached durable storage.
    Synced,
    /// A [`IoOp::Delete`] removed the file.
    Deleted,
}

/// Handle to a submitted [`IoOp`]: either already complete (the inline
/// default of [`BlockDevice::submit`]) or queued on an
/// [`crate::IoScheduler`] (claim it with the scheduler's `wait`/`try_poll`).
#[derive(Debug)]
pub struct IoTicket {
    inner: TicketInner,
}

#[derive(Debug)]
enum TicketInner {
    Ready(Option<io::Result<IoOutcome>>),
    Queued(u64),
}

impl IoTicket {
    /// A ticket that completed inline.
    pub fn ready(result: io::Result<IoOutcome>) -> Self {
        IoTicket {
            inner: TicketInner::Ready(Some(result)),
        }
    }

    /// A ticket queued on a scheduler under `id`.
    pub(crate) fn queued(id: u64) -> Self {
        IoTicket {
            inner: TicketInner::Queued(id),
        }
    }

    /// The scheduler queue id, if this ticket is queued.
    pub(crate) fn queued_id(&self) -> Option<u64> {
        match self.inner {
            TicketInner::Queued(id) => Some(id),
            TicketInner::Ready(_) => None,
        }
    }

    /// Consume an inline completion (None for queued tickets, or if
    /// already taken).
    pub fn take_ready(&mut self) -> Option<io::Result<IoOutcome>> {
        match &mut self.inner {
            TicketInner::Ready(r) => r.take(),
            TicketInner::Queued(_) => None,
        }
    }
}

/// A device of fixed-size blocks organized into append-oriented files.
///
/// All methods take `&self`; devices are internally synchronized and are
/// typically shared as `Arc<D>` between the warehouse and query paths.
pub trait BlockDevice: Send + Sync + 'static {
    /// Size of one block in bytes. All reads and writes move whole blocks
    /// (the final block of a file may be short).
    fn block_size(&self) -> usize;

    /// Create a new empty file and return its id.
    fn create(&self) -> io::Result<FileId>;

    /// Write `data` (at most one block) as block `idx` of `file`.
    ///
    /// `idx` must be `<= num_blocks(file)`: files grow by appending. Only
    /// the final block of a file may be shorter than `block_size`.
    fn write_block(&self, file: FileId, idx: u64, data: &[u8]) -> io::Result<()>;

    /// Read block `idx` of `file` into `buf`, returning the byte count
    /// (short only for the final block). `buf` must hold `block_size` bytes.
    fn read_block(&self, file: FileId, idx: u64, buf: &mut [u8]) -> io::Result<usize>;

    /// Read `count` consecutive blocks starting at `first` into `buf`
    /// (`count * block_size` bytes), returning the total byte count (short
    /// only when the file ends inside the range). This is the readahead
    /// primitive sequential scans use; accounting is identical to `count`
    /// single-block reads (the paper's cost unit is block accesses), but
    /// backends may serve the whole range with one positioned I/O.
    ///
    /// The default implementation loops over [`BlockDevice::read_block`].
    fn read_blocks(
        &self,
        file: FileId,
        first: u64,
        count: u64,
        buf: &mut [u8],
    ) -> io::Result<usize> {
        if count == 0 {
            return Ok(0);
        }
        let bs = self.block_size();
        // Clamp a range running past EOF to the blocks that exist (the
        // short-read contract): only a start past EOF is an error.
        let avail = self.num_blocks(file)?;
        if first >= avail {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("block {first} out of range"),
            ));
        }
        let count = count.min(avail - first);
        debug_assert!(buf.len() >= count as usize * bs);
        let mut total = 0;
        for i in 0..count as usize {
            // Block i's payload lands at offset i * block_size even when a
            // block is stored short (padding geometry or the final block).
            total += self.read_block(file, first + i as u64, &mut buf[i * bs..(i + 1) * bs])?;
        }
        Ok(total)
    }

    /// Execute one [`IoOp`] synchronously. This is the shared executor
    /// behind the inline [`BlockDevice::submit`] default and the
    /// [`crate::IoScheduler`] worker pool.
    fn execute(&self, op: IoOp) -> io::Result<IoOutcome> {
        match op {
            IoOp::Write { file, idx, data } => {
                self.write_block(file, idx, &data)?;
                Ok(IoOutcome::Wrote)
            }
            IoOp::ReadBlocks { file, first, count } => {
                let mut data = vec![0u8; count as usize * self.block_size()];
                let len = self.read_blocks(file, first, count, &mut data)?;
                Ok(IoOutcome::Read { data, len })
            }
            IoOp::Sync { file } => {
                self.sync(file)?;
                Ok(IoOutcome::Synced)
            }
            IoOp::Delete { file } => {
                self.delete(file)?;
                Ok(IoOutcome::Deleted)
            }
        }
    }

    /// Begin an asynchronous op. The default executes inline and returns
    /// an already-completed ticket — correct for every backend, with no
    /// overlap. Overlapped submission goes through an [`crate::IoScheduler`]
    /// layered over the device; this method is the seam that lets code
    /// written against submit/poll run unchanged on either.
    fn submit(&self, op: IoOp) -> IoTicket {
        IoTicket::ready(self.execute(op))
    }

    /// Poll a ticket returned by [`BlockDevice::submit`]: `Some` exactly
    /// once when complete. Tickets queued on a scheduler are polled via
    /// that scheduler instead.
    fn poll(&self, ticket: &mut IoTicket) -> Option<io::Result<IoOutcome>> {
        ticket.take_ready()
    }

    /// Force `file`'s written blocks to durable storage (the barrier a
    /// write-ahead log needs before acting on a record's durability —
    /// see `hsq-core`'s manifest log). The default is a no-op, correct
    /// for in-memory backends; real-file backends override it.
    fn sync(&self, _file: FileId) -> io::Result<()> {
        Ok(())
    }

    /// Number of blocks currently in `file`.
    fn num_blocks(&self, file: FileId) -> io::Result<u64>;

    /// Total length of `file` in bytes.
    fn file_len(&self, file: FileId) -> io::Result<u64>;

    /// Delete `file`, freeing its blocks.
    fn delete(&self, file: FileId) -> io::Result<()>;

    /// The I/O counters for this device.
    fn stats(&self) -> &IoStats;
}

fn bad_file(file: FileId) -> io::Error {
    io::Error::new(io::ErrorKind::NotFound, format!("no such file id {file}"))
}

/// An in-memory [`BlockDevice`].
///
/// The backing store is a map from [`FileId`] to a block list. I/O
/// accounting is identical to [`FileDevice`], so experiments measuring
/// *block accesses* (the paper's disk-cost metric) can run at memory speed.
pub struct MemDevice {
    block_size: usize,
    files: RwLock<HashMap<FileId, MemFile>>,
    next_id: AtomicU64,
    stats: IoStats,
}

struct MemFile {
    blocks: Vec<Box<[u8]>>,
    /// Block index of the most recent read, for sequential/random
    /// classification.
    last_read: AtomicU64,
}

impl MemDevice {
    /// Create a device with the given block size (bytes).
    pub fn new(block_size: usize) -> Arc<Self> {
        assert!(block_size > 0, "block size must be positive");
        Arc::new(MemDevice {
            block_size,
            files: RwLock::new(HashMap::new()),
            next_id: AtomicU64::new(0),
            stats: IoStats::new(),
        })
    }

    /// Bytes currently stored across all files (capacity accounting).
    pub fn resident_bytes(&self) -> u64 {
        self.files
            .read()
            .values()
            .map(|f| f.blocks.iter().map(|b| b.len() as u64).sum::<u64>())
            .sum()
    }

    /// Number of live files.
    pub fn num_files(&self) -> usize {
        self.files.read().len()
    }
}

impl BlockDevice for MemDevice {
    fn block_size(&self) -> usize {
        self.block_size
    }

    fn create(&self) -> io::Result<FileId> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.files.write().insert(
            id,
            MemFile {
                blocks: Vec::new(),
                last_read: AtomicU64::new(NO_BLOCK),
            },
        );
        Ok(id)
    }

    fn write_block(&self, file: FileId, idx: u64, data: &[u8]) -> io::Result<()> {
        if data.len() > self.block_size {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "write larger than block size",
            ));
        }
        let mut files = self.files.write();
        let f = files.get_mut(&file).ok_or_else(|| bad_file(file))?;
        let idx = idx as usize;
        match idx.cmp(&f.blocks.len()) {
            std::cmp::Ordering::Less => f.blocks[idx] = data.into(),
            std::cmp::Ordering::Equal => f.blocks.push(data.into()),
            std::cmp::Ordering::Greater => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "non-contiguous block write",
                ))
            }
        }
        self.stats.record_write(data.len());
        Ok(())
    }

    fn read_block(&self, file: FileId, idx: u64, buf: &mut [u8]) -> io::Result<usize> {
        let files = self.files.read();
        let f = files.get(&file).ok_or_else(|| bad_file(file))?;
        let block = f.blocks.get(idx as usize).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("block {idx} out of range"),
            )
        })?;
        buf[..block.len()].copy_from_slice(block);
        let prev = f.last_read.swap(idx, Ordering::Relaxed);
        let sequential = prev == NO_BLOCK || idx == prev + 1;
        self.stats.record_read(block.len(), sequential);
        Ok(block.len())
    }

    fn num_blocks(&self, file: FileId) -> io::Result<u64> {
        let files = self.files.read();
        let f = files.get(&file).ok_or_else(|| bad_file(file))?;
        Ok(f.blocks.len() as u64)
    }

    fn file_len(&self, file: FileId) -> io::Result<u64> {
        let files = self.files.read();
        let f = files.get(&file).ok_or_else(|| bad_file(file))?;
        Ok(f.blocks.iter().map(|b| b.len() as u64).sum())
    }

    fn delete(&self, file: FileId) -> io::Result<()> {
        self.files
            .write()
            .remove(&file)
            .map(|_| ())
            .ok_or_else(|| bad_file(file))
    }

    fn sync(&self, file: FileId) -> io::Result<()> {
        // Memory is always "durable" here, but the call is still counted:
        // experiment harnesses compare sync traffic across backends.
        if !self.files.read().contains_key(&file) {
            return Err(bad_file(file));
        }
        self.stats.record_sync();
        Ok(())
    }

    fn stats(&self) -> &IoStats {
        &self.stats
    }
}

/// A [`BlockDevice`] backed by real files in a directory.
///
/// Each [`FileId`] maps to one file (`<dir>/hsq-<id>.part`) accessed with
/// positioned reads/writes. The directory is created if absent; files are
/// removed on [`BlockDevice::delete`] and the whole directory can be cleaned
/// with [`FileDevice::cleanup`].
pub struct FileDevice {
    block_size: usize,
    dir: PathBuf,
    next_id: AtomicU64,
    handles: Mutex<HashMap<FileId, FileHandle>>,
    stats: IoStats,
}

struct FileHandle {
    file: std::fs::File,
    len: u64,
    last_read: u64,
    /// Established full-block payload length in bytes: the length of the
    /// first block written. With padding geometry (`block_size` not a
    /// multiple of the item width) this is smaller than `block_size`.
    /// 0 = unknown (empty or recovered file; treated as `block_size`).
    payload: usize,
}

impl FileHandle {
    /// Number of blocks currently stored, given the device block size.
    fn blocks(&self, bs: usize) -> u64 {
        self.len.div_ceil(bs as u64)
    }

    /// Meaningful bytes of block `idx`: the established payload for
    /// interior blocks, the actual tail length for the final one.
    fn block_payload(&self, bs: usize, idx: u64) -> usize {
        let full = if self.payload == 0 { bs } else { self.payload };
        if idx + 1 < self.blocks(bs) {
            full
        } else {
            ((self.len - idx * bs as u64) as usize).min(bs)
        }
    }
}

impl FileDevice {
    /// Open (creating if needed) a device rooted at `dir`.
    ///
    /// Existing `hsq-<id>.part` files in the directory are re-registered
    /// under their original ids, enabling warehouse recovery across
    /// process restarts (see `hsq-core`'s manifest support).
    pub fn new(dir: impl AsRef<Path>, block_size: usize) -> io::Result<Arc<Self>> {
        assert!(block_size > 0, "block size must be positive");
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let mut handles = HashMap::new();
        let mut next_id = 0u64;
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(id) = name
                .to_str()
                .and_then(|n| n.strip_prefix("hsq-"))
                .and_then(|n| n.strip_suffix(".part"))
                .and_then(|n| n.parse::<u64>().ok())
            else {
                continue;
            };
            let file = std::fs::OpenOptions::new()
                .read(true)
                .write(true)
                .open(entry.path())?;
            let len = file.metadata()?.len();
            handles.insert(
                id,
                FileHandle {
                    file,
                    len,
                    last_read: NO_BLOCK,
                    payload: 0,
                },
            );
            next_id = next_id.max(id + 1);
        }
        Ok(Arc::new(FileDevice {
            block_size,
            dir,
            next_id: AtomicU64::new(next_id),
            handles: Mutex::new(handles),
            stats: IoStats::new(),
        }))
    }

    /// Open a device in a fresh subdirectory of the system temp dir.
    pub fn new_temp(block_size: usize) -> io::Result<Arc<Self>> {
        let dir = std::env::temp_dir().join(format!(
            "hsq-{}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0)
        ));
        Self::new(dir, block_size)
    }

    fn path_of(&self, file: FileId) -> PathBuf {
        self.dir.join(format!("hsq-{file}.part"))
    }

    /// The directory holding this device's files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Remove every file this device created, then the directory itself
    /// (best effort — ignores files created by others).
    pub fn cleanup(&self) -> io::Result<()> {
        let mut handles = self.handles.lock();
        for (id, _) in handles.drain() {
            let _ = std::fs::remove_file(self.path_of(id));
        }
        let _ = std::fs::remove_dir(&self.dir);
        Ok(())
    }
}

impl BlockDevice for FileDevice {
    fn block_size(&self) -> usize {
        self.block_size
    }

    fn create(&self) -> io::Result<FileId> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let file = std::fs::OpenOptions::new()
            .create_new(true)
            .read(true)
            .write(true)
            .open(self.path_of(id))?;
        self.handles.lock().insert(
            id,
            FileHandle {
                file,
                len: 0,
                last_read: NO_BLOCK,
                payload: 0,
            },
        );
        Ok(id)
    }

    fn write_block(&self, file: FileId, idx: u64, data: &[u8]) -> io::Result<()> {
        use std::os::unix::fs::FileExt;
        if data.len() > self.block_size {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "write larger than block size",
            ));
        }
        let mut handles = self.handles.lock();
        let h = handles.get_mut(&file).ok_or_else(|| bad_file(file))?;
        let offset = idx * self.block_size as u64;
        // Contiguity is in *block index* terms: a stored block may be
        // shorter than block_size (padding geometry, or the final block),
        // so compare against the block count, not the byte length.
        let cur_blocks = h.blocks(self.block_size);
        if idx > cur_blocks {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "non-contiguous block write",
            ));
        }
        // Appending requires the previous block to carry the file's full
        // payload: only the final block may be short.
        if idx == cur_blocks && cur_blocks > 0 {
            let tail = h.block_payload(self.block_size, cur_blocks - 1);
            let full = if h.payload == 0 {
                self.block_size
            } else {
                h.payload
            };
            if tail < full {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "append after a short block (only the final block may be short)",
                ));
            }
        }
        if h.payload == 0 {
            h.payload = data.len().min(self.block_size);
        }
        h.file.write_all_at(data, offset)?;
        h.len = h.len.max(offset + data.len() as u64);
        self.stats.record_write(data.len());
        Ok(())
    }

    fn read_block(&self, file: FileId, idx: u64, buf: &mut [u8]) -> io::Result<usize> {
        use std::os::unix::fs::FileExt;
        let mut handles = self.handles.lock();
        let h = handles.get_mut(&file).ok_or_else(|| bad_file(file))?;
        let offset = idx * self.block_size as u64;
        if offset >= h.len {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("block {idx} out of range"),
            ));
        }
        // Read only the block's meaningful payload: padding holes between
        // payload end and the next block's offset never reach callers.
        let want = h.block_payload(self.block_size, idx);
        h.file.read_exact_at(&mut buf[..want], offset)?;
        let sequential = h.last_read == NO_BLOCK || idx == h.last_read + 1;
        h.last_read = idx;
        self.stats.record_read(want, sequential);
        Ok(want)
    }

    fn read_blocks(
        &self,
        file: FileId,
        first: u64,
        count: u64,
        buf: &mut [u8],
    ) -> io::Result<usize> {
        use std::os::unix::fs::FileExt;
        if count == 0 {
            return Ok(0);
        }
        let bs = self.block_size;
        let mut handles = self.handles.lock();
        let h = handles.get_mut(&file).ok_or_else(|| bad_file(file))?;
        let offset = first * bs as u64;
        if offset >= h.len {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("block {first} out of range"),
            ));
        }
        // One positioned read spans the whole range (true readahead); the
        // accounting still charges one access per block so the paper's
        // disk-cost metric is unaffected.
        let want = ((h.len - offset) as usize).min(count as usize * bs);
        h.file.read_exact_at(&mut buf[..want], offset)?;
        for j in 0..want.div_ceil(bs) as u64 {
            let idx = first + j;
            let sequential = h.last_read == NO_BLOCK || idx == h.last_read + 1;
            h.last_read = idx;
            self.stats
                .record_read(bs.min(want - j as usize * bs), sequential);
        }
        Ok(want)
    }

    fn sync(&self, file: FileId) -> io::Result<()> {
        let handles = self.handles.lock();
        let h = handles.get(&file).ok_or_else(|| bad_file(file))?;
        h.file.sync_data()?;
        self.stats.record_sync();
        Ok(())
    }

    fn num_blocks(&self, file: FileId) -> io::Result<u64> {
        let handles = self.handles.lock();
        let h = handles.get(&file).ok_or_else(|| bad_file(file))?;
        Ok(h.len.div_ceil(self.block_size as u64))
    }

    fn file_len(&self, file: FileId) -> io::Result<u64> {
        let handles = self.handles.lock();
        let h = handles.get(&file).ok_or_else(|| bad_file(file))?;
        Ok(h.len)
    }

    fn delete(&self, file: FileId) -> io::Result<()> {
        let removed = self.handles.lock().remove(&file);
        match removed {
            Some(_) => std::fs::remove_file(self.path_of(file)),
            None => Err(bad_file(file)),
        }
    }

    fn stats(&self) -> &IoStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(dev: &dyn BlockDevice) {
        let bs = dev.block_size();
        let f = dev.create().unwrap();
        assert_eq!(dev.num_blocks(f).unwrap(), 0);

        let block0 = vec![0xAB; bs];
        let block1 = vec![0xCD; bs];
        let tail = vec![0xEF; bs / 2];
        dev.write_block(f, 0, &block0).unwrap();
        dev.write_block(f, 1, &block1).unwrap();
        dev.write_block(f, 2, &tail).unwrap();
        assert_eq!(dev.num_blocks(f).unwrap(), 3);
        assert_eq!(dev.file_len(f).unwrap(), (2 * bs + bs / 2) as u64);

        let mut buf = vec![0u8; bs];
        assert_eq!(dev.read_block(f, 0, &mut buf).unwrap(), bs);
        assert_eq!(&buf, &block0);
        assert_eq!(dev.read_block(f, 2, &mut buf).unwrap(), bs / 2);
        assert_eq!(&buf[..bs / 2], &tail[..]);

        dev.delete(f).unwrap();
        assert!(dev.read_block(f, 0, &mut buf).is_err());
    }

    #[test]
    fn mem_device_roundtrip() {
        roundtrip(&*MemDevice::new(256));
    }

    #[test]
    fn file_device_roundtrip() {
        let dev = FileDevice::new_temp(256).unwrap();
        roundtrip(&*dev);
        dev.cleanup().unwrap();
    }

    #[test]
    fn sequential_vs_random_classification() {
        let dev = MemDevice::new(64);
        let f = dev.create().unwrap();
        for i in 0..10u64 {
            dev.write_block(f, i, &[i as u8; 64]).unwrap();
        }
        let base = dev.stats().snapshot();
        let mut buf = [0u8; 64];
        // A full scan: first read counts as sequential start.
        for i in 0..10 {
            dev.read_block(f, i, &mut buf).unwrap();
        }
        let scan = dev.stats().snapshot() - base;
        assert_eq!(scan.seq_reads, 10);
        assert_eq!(scan.rand_reads, 0);

        // Binary-search-like probing: jumps are random.
        let base = dev.stats().snapshot();
        for i in [5u64, 2, 3, 8] {
            dev.read_block(f, i, &mut buf).unwrap();
        }
        let probe = dev.stats().snapshot() - base;
        assert_eq!(probe.rand_reads, 3); // 5 -> rand? no: prev=9 so 5 is rand; 2 rand; 3 seq; 8 rand
        assert_eq!(probe.seq_reads, 1);
    }

    #[test]
    fn interleaved_scans_stay_sequential() {
        // Multi-way merge reads runs round-robin; per-file cursors must
        // classify those as sequential.
        let dev = MemDevice::new(32);
        let a = dev.create().unwrap();
        let b = dev.create().unwrap();
        for i in 0..4u64 {
            dev.write_block(a, i, &[1; 32]).unwrap();
            dev.write_block(b, i, &[2; 32]).unwrap();
        }
        let base = dev.stats().snapshot();
        let mut buf = [0u8; 32];
        for i in 0..4u64 {
            dev.read_block(a, i, &mut buf).unwrap();
            dev.read_block(b, i, &mut buf).unwrap();
        }
        let d = dev.stats().snapshot() - base;
        assert_eq!(d.seq_reads, 8);
        assert_eq!(d.rand_reads, 0);
    }

    fn read_blocks_roundtrip(dev: &dyn BlockDevice) {
        let bs = dev.block_size();
        let f = dev.create().unwrap();
        for i in 0..5u64 {
            dev.write_block(f, i, &vec![i as u8 + 1; bs]).unwrap();
        }
        dev.write_block(f, 5, &vec![9u8; bs / 2]).unwrap();

        // Full range in one call, including the short tail block.
        let mut buf = vec![0u8; 6 * bs];
        let got = dev.read_blocks(f, 0, 6, &mut buf).unwrap();
        assert_eq!(got, 5 * bs + bs / 2);
        for i in 0..5 {
            assert!(buf[i * bs..(i + 1) * bs].iter().all(|&b| b == i as u8 + 1));
        }
        assert!(buf[5 * bs..5 * bs + bs / 2].iter().all(|&b| b == 9));

        // Interior range.
        let mut buf = vec![0u8; 2 * bs];
        let got = dev.read_blocks(f, 1, 2, &mut buf).unwrap();
        assert_eq!(got, 2 * bs);
        assert!(buf[..bs].iter().all(|&b| b == 2));
        assert!(buf[bs..].iter().all(|&b| b == 3));

        dev.delete(f).unwrap();
    }

    #[test]
    fn mem_device_read_blocks() {
        read_blocks_roundtrip(&*MemDevice::new(128));
    }

    #[test]
    fn file_device_read_blocks() {
        let dev = FileDevice::new_temp(128).unwrap();
        read_blocks_roundtrip(&*dev);
        dev.cleanup().unwrap();
    }

    #[test]
    fn file_device_padded_block_geometry() {
        // 100-byte blocks storing 96-byte payloads (12 u64s + padding):
        // contiguity must be judged per block index, not byte offset.
        let dev = FileDevice::new_temp(100).unwrap();
        let f = dev.create().unwrap();
        for i in 0..4u64 {
            dev.write_block(f, i, &[i as u8 + 1; 96]).unwrap();
        }
        assert_eq!(dev.num_blocks(f).unwrap(), 4);
        let mut buf = [0u8; 100];
        for i in 0..4u64 {
            let got = dev.read_block(f, i, &mut buf).unwrap();
            assert!(got >= 96, "block {i} short: {got}");
            assert!(buf[..96].iter().all(|&b| b == i as u8 + 1));
        }
        // Skipping a block index is still rejected.
        assert!(dev.write_block(f, 6, &[0u8; 96]).is_err());
        dev.cleanup().unwrap();
    }

    #[test]
    fn file_device_rejects_append_after_short_block() {
        // A block shorter than the file's established payload can only be
        // the final block; appending past it would turn hole bytes into
        // phantom data.
        let dev = FileDevice::new_temp(100).unwrap();
        let f = dev.create().unwrap();
        dev.write_block(f, 0, &[1u8; 96]).unwrap();
        dev.write_block(f, 1, &[2u8; 40]).unwrap(); // short tail: fine
        let err = dev.write_block(f, 2, &[3u8; 96]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        // Reads only ever see written bytes, never padding holes.
        let mut buf = [0u8; 100];
        assert_eq!(dev.read_block(f, 0, &mut buf).unwrap(), 96);
        assert_eq!(dev.read_block(f, 1, &mut buf).unwrap(), 40);
        dev.cleanup().unwrap();
    }

    #[test]
    fn read_blocks_accounting_matches_per_block_reads() {
        let dev = FileDevice::new_temp(64).unwrap();
        let f = dev.create().unwrap();
        for i in 0..8u64 {
            dev.write_block(f, i, &[0xAA; 64]).unwrap();
        }
        let base = dev.stats().snapshot();
        let mut buf = vec![0u8; 8 * 64];
        dev.read_blocks(f, 0, 8, &mut buf).unwrap();
        let d = dev.stats().snapshot() - base;
        // One syscall, but the paper's cost unit still counts 8 blocks.
        assert_eq!(d.total_reads(), 8);
        assert_eq!(d.seq_reads, 8);
        dev.cleanup().unwrap();
    }

    /// The satellite edge matrix: short final block, zero-length file,
    /// `count` past EOF, and an odd (non-power-of-two) block size — with
    /// identical semantics on every backend.
    fn read_blocks_edge_cases(dev: &dyn BlockDevice) {
        let bs = dev.block_size();

        // Zero-length file: count = 0 is a no-op, any real range is EOF.
        let empty = dev.create().unwrap();
        let mut buf = vec![0u8; 4 * bs];
        assert_eq!(dev.read_blocks(empty, 0, 0, &mut buf).unwrap(), 0);
        let err = dev.read_blocks(empty, 0, 1, &mut buf).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);

        // Short final block + count past EOF: the range clamps to what
        // exists; only a start past EOF errors.
        let f = dev.create().unwrap();
        dev.write_block(f, 0, &vec![1u8; bs]).unwrap();
        dev.write_block(f, 1, &vec![2u8; bs / 3]).unwrap(); // short tail
        let got = dev.read_blocks(f, 0, 100, &mut buf).unwrap();
        assert_eq!(got, bs + bs / 3);
        assert!(buf[..bs].iter().all(|&b| b == 1));
        assert!(buf[bs..bs + bs / 3].iter().all(|&b| b == 2));
        // Range starting at the short tail itself.
        let got = dev.read_blocks(f, 1, 5, &mut buf).unwrap();
        assert_eq!(got, bs / 3);
        // Start exactly at EOF, and past it.
        assert!(dev.read_blocks(f, 2, 1, &mut buf).is_err());
        assert!(dev.read_blocks(f, 7, 1, &mut buf).is_err());
        // count = 0 never touches the device, even past EOF.
        assert_eq!(dev.read_blocks(f, 9, 0, &mut buf).unwrap(), 0);

        dev.delete(empty).unwrap();
        dev.delete(f).unwrap();
    }

    #[test]
    fn mem_device_read_blocks_edges() {
        read_blocks_edge_cases(&*MemDevice::new(96)); // odd block size
        read_blocks_edge_cases(&*MemDevice::new(128));
    }

    #[test]
    fn file_device_read_blocks_edges() {
        for bs in [100usize, 128] {
            let dev = FileDevice::new_temp(bs).unwrap();
            read_blocks_edge_cases(&*dev);
            dev.cleanup().unwrap();
        }
    }

    #[test]
    fn sync_is_counted_and_checks_existence() {
        let dev = MemDevice::new(64);
        let f = dev.create().unwrap();
        dev.write_block(f, 0, &[1u8; 64]).unwrap();
        let before = dev.stats().snapshot();
        dev.sync(f).unwrap();
        dev.sync(f).unwrap();
        assert_eq!((dev.stats().snapshot() - before).syncs, 2);
        assert!(dev.sync(f + 100).is_err(), "sync of a missing file");
    }

    #[test]
    fn inline_submit_poll_roundtrip() {
        // The BlockDevice submit/poll seam: the default executes inline
        // and completes immediately — same results as the blocking calls.
        let dev = MemDevice::new(64);
        let f = dev.create().unwrap();
        let mut t = dev.submit(IoOp::Write {
            file: f,
            idx: 0,
            data: vec![5u8; 64],
        });
        assert!(matches!(dev.poll(&mut t), Some(Ok(IoOutcome::Wrote))));
        assert!(dev.poll(&mut t).is_none(), "completion claimed once");
        let mut t = dev.submit(IoOp::ReadBlocks {
            file: f,
            first: 0,
            count: 1,
        });
        match dev.poll(&mut t) {
            Some(Ok(IoOutcome::Read { data, len })) => {
                assert_eq!(len, 64);
                assert!(data.iter().all(|&b| b == 5));
            }
            other => panic!("unexpected completion {other:?}"),
        }
        let mut t = dev.submit(IoOp::Sync { file: f });
        assert!(matches!(dev.poll(&mut t), Some(Ok(IoOutcome::Synced))));
        let mut t = dev.submit(IoOp::Delete { file: f });
        assert!(matches!(dev.poll(&mut t), Some(Ok(IoOutcome::Deleted))));
        assert!(dev.num_blocks(f).is_err());
    }

    #[test]
    fn non_contiguous_write_rejected() {
        let dev = MemDevice::new(64);
        let f = dev.create().unwrap();
        assert!(dev.write_block(f, 3, &[0; 64]).is_err());
    }

    #[test]
    fn oversized_write_rejected() {
        let dev = MemDevice::new(64);
        let f = dev.create().unwrap();
        assert!(dev.write_block(f, 0, &[0; 65]).is_err());
    }

    #[test]
    fn mem_device_capacity_accounting() {
        let dev = MemDevice::new(128);
        let f = dev.create().unwrap();
        dev.write_block(f, 0, &[0; 128]).unwrap();
        dev.write_block(f, 1, &[0; 64]).unwrap();
        assert_eq!(dev.resident_bytes(), 192);
        assert_eq!(dev.num_files(), 1);
        dev.delete(f).unwrap();
        assert_eq!(dev.resident_bytes(), 0);
    }
}
