//! Multi-way merge of sorted runs.
//!
//! Partition merging is the heart of the warehouse's update path (paper
//! Algorithm 3, line 10: "Multi-way merge the sorted partitions ... into a
//! single sorted partition using a single pass through the partitions").
//! The merge streams every input run once (sequential reads) and writes the
//! output once (sequential writes), so its I/O cost is
//! `O(total_blocks_in + total_blocks_out)` — the bound Lemma 6 charges per
//! merge level.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::io;

use crate::device::BlockDevice;
use crate::encode::Item;
use crate::run::{RunReader, RunWriter, SortedRun};
use crate::sched::IoScheduler;

/// Merge `runs` into a single new sorted run on `dev`.
///
/// Input runs are *not* deleted; callers that re-tier partitions decide
/// when to reclaim them. Duplicates are preserved (multiset union).
pub fn merge_runs<T: Item, D: BlockDevice>(
    dev: &D,
    runs: &[SortedRun<T>],
) -> io::Result<SortedRun<T>> {
    let mut writer = RunWriter::new(dev)?;
    merge_into(dev, runs, |v| writer.push(v))?;
    writer.finish()
}

/// Merge `runs`, invoking `sink` for every item in global sorted order.
///
/// This is the streaming form used both by [`merge_runs`] and by summary
/// construction, which taps the merged stream to extract evenly spaced
/// elements without a second pass (paper §2.1: "the generation of a new
/// data partition and the corresponding summary occur simultaneously so no
/// additional disk access is required").
pub fn merge_into<T: Item, D: BlockDevice>(
    dev: &D,
    runs: &[SortedRun<T>],
    sink: impl FnMut(T) -> io::Result<()>,
) -> io::Result<()> {
    merge_into_prefetch(dev, None, runs, sink)
}

/// [`merge_into`] with asynchronous readahead on each input run: while
/// the heap merge consumes one window of an input, its next window's
/// read is already in flight on `sched` (see
/// [`SortedRun::iter_prefetch`]). `None` falls back to synchronous
/// readahead. Output and accounting are identical either way.
pub fn merge_into_prefetch<T: Item, D: BlockDevice>(
    dev: &D,
    sched: Option<&IoScheduler>,
    runs: &[SortedRun<T>],
    mut sink: impl FnMut(T) -> io::Result<()>,
) -> io::Result<()> {
    // Heap of (next item, source index); Reverse for a min-heap. Ties are
    // broken by source index, making merges deterministic.
    let mut sources: Vec<RunReader<'_, T, D>> = runs
        .iter()
        .map(|r| match sched {
            Some(s) => r.iter_prefetch(dev, s),
            None => r.iter(dev),
        })
        .collect();
    let mut heap: BinaryHeap<Reverse<(T, usize)>> = BinaryHeap::with_capacity(sources.len());
    for (i, src) in sources.iter_mut().enumerate() {
        if let Some(v) = src.next() {
            heap.push(Reverse((v?, i)));
        }
    }
    while let Some(Reverse((v, i))) = heap.pop() {
        sink(v)?;
        if let Some(next) = sources[i].next() {
            heap.push(Reverse((next?, i)));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemDevice;
    use crate::run::write_run;

    #[test]
    fn merge_three_runs() {
        let dev = MemDevice::new(64);
        let a = write_run(&*dev, &[1u64, 4, 7, 10]).unwrap();
        let b = write_run(&*dev, &[2u64, 5, 8]).unwrap();
        let c = write_run(&*dev, &[3u64, 6, 9, 11, 12]).unwrap();
        let merged = merge_runs(&*dev, &[a, b, c]).unwrap();
        assert_eq!(
            merged.read_all(&*dev).unwrap(),
            (1..=12).collect::<Vec<u64>>()
        );
    }

    #[test]
    fn merge_preserves_duplicates() {
        let dev = MemDevice::new(64);
        let a = write_run(&*dev, &[1u64, 1, 2, 2]).unwrap();
        let b = write_run(&*dev, &[1u64, 2, 3]).unwrap();
        let merged = merge_runs(&*dev, &[a, b]).unwrap();
        assert_eq!(merged.read_all(&*dev).unwrap(), vec![1, 1, 1, 2, 2, 2, 3]);
        assert_eq!(merged.len(), 7);
    }

    #[test]
    fn merge_with_empty_runs() {
        let dev = MemDevice::new(64);
        let a = write_run::<u64, _>(&*dev, &[]).unwrap();
        let b = write_run(&*dev, &[5u64]).unwrap();
        let merged = merge_runs(&*dev, &[a, b]).unwrap();
        assert_eq!(merged.read_all(&*dev).unwrap(), vec![5]);
    }

    #[test]
    fn merge_single_run_copies() {
        let dev = MemDevice::new(64);
        let a = write_run(&*dev, &[1u64, 2, 3]).unwrap();
        let merged = merge_runs(&*dev, &[a]).unwrap();
        assert_eq!(merged.read_all(&*dev).unwrap(), vec![1, 2, 3]);
        assert_ne!(merged.file(), a.file());
    }

    #[test]
    fn merge_io_is_linear_and_sequential() {
        let dev = MemDevice::new(64); // 7 u64 per block
        let a = write_run(&*dev, &(0..84).map(|i| i * 2).collect::<Vec<u64>>()).unwrap(); // 12 blocks
        let b = write_run(&*dev, &(0..84).map(|i| i * 2 + 1).collect::<Vec<u64>>()).unwrap(); // 12 blocks
        let before = dev.stats().snapshot();
        let merged = merge_runs(&*dev, &[a, b]).unwrap();
        let d = dev.stats().snapshot() - before;
        assert_eq!(merged.len(), 168);
        assert_eq!(d.total_reads(), 24, "one read per input block");
        assert_eq!(d.rand_reads, 0, "merge must be fully sequential");
        assert_eq!(d.writes, 24, "one write per output block");
    }
}
