//! Sorted runs: the on-disk representation of a data partition.
//!
//! Each partition of the warehouse's `HD` structure (paper §2.1) is one
//! *sorted run*: a file of fixed-width encoded items in nondecreasing order.
//! Items never straddle blocks, so a rank (item index) maps to a block
//! index with one division, which is what makes the query algorithm's
//! rank-addressed probes single-block reads.
//!
//! Two on-disk layouts exist ([`RunFormat`]). Everything written today is
//! **V2**: each block ends with a CRC64 trailer over its item payload, and
//! every read path — single-block probes, cache fills, sequential
//! readahead, scheduler-completed speculative reads — verifies the
//! trailer before decoding, surfacing mismatches as typed
//! [`crate::StorageError::Corruption`] errors naming the `(file, block)`.
//! **V1** is the unchecksummed seed layout, kept readable so warehouses
//! persisted before the format bump recover unchanged.

use std::io;
use std::marker::PhantomData;

use crate::cache::BlockCache;
use crate::crc::crc64;
use crate::device::{BlockDevice, FileId, IoOp, IoOutcome, IoTicket};
use crate::encode::Item;
use crate::error::StorageError;
use crate::sched::IoScheduler;

/// Default readahead window (blocks) for sequential [`RunReader`] scans.
pub const DEFAULT_READAHEAD_BLOCKS: usize = 8;

/// Bytes of the per-block CRC64 trailer in [`RunFormat::V2`] blocks.
const CRC_TRAILER: usize = 8;

/// Items stored per block for item type `T` on a device with `block_size`,
/// in the unchecksummed [`RunFormat::V1`] layout.
///
/// Freshly written runs are always [`RunFormat::V2`] (checksummed, lower
/// capacity); geometry for a specific run must come from
/// [`SortedRun::items_per_block`], which respects the run's format.
#[inline]
pub fn items_per_block<T: Item>(block_size: usize) -> usize {
    assert!(
        block_size >= T::ENCODED_LEN,
        "block size {} smaller than encoded item ({} bytes)",
        block_size,
        T::ENCODED_LEN
    );
    block_size / T::ENCODED_LEN
}

/// On-disk layout version of a [`SortedRun`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RunFormat {
    /// Unchecksummed seed layout: `block_size / ENCODED_LEN` items per
    /// block, no trailer. Read-only back-compat — nothing writes V1.
    V1,
    /// Checksummed layout: `(block_size - 8) / ENCODED_LEN` items per
    /// block, each block's item payload followed by its CRC64.
    V2,
}

impl RunFormat {
    /// Items stored per block for item type `T` under this layout.
    #[inline]
    pub fn items_per_block<T: Item>(self, block_size: usize) -> usize {
        match self {
            RunFormat::V1 => items_per_block::<T>(block_size),
            RunFormat::V2 => {
                assert!(
                    block_size >= T::ENCODED_LEN + CRC_TRAILER,
                    "block size {} too small for a checksummed item ({} + {} bytes)",
                    block_size,
                    T::ENCODED_LEN,
                    CRC_TRAILER
                );
                (block_size - CRC_TRAILER) / T::ENCODED_LEN
            }
        }
    }

    /// Manifest encoding of this format.
    pub fn as_byte(self) -> u8 {
        match self {
            RunFormat::V1 => 0,
            RunFormat::V2 => 1,
        }
    }

    /// Inverse of [`RunFormat::as_byte`].
    pub fn from_byte(b: u8) -> Option<RunFormat> {
        match b {
            0 => Some(RunFormat::V1),
            1 => Some(RunFormat::V2),
            _ => None,
        }
    }
}

/// A handle to an immutable sorted file of `T` on some [`BlockDevice`].
///
/// The handle carries the item count and min/max, so header blocks are not
/// needed; creation goes through [`RunWriter`], which enforces sortedness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortedRun<T: Item> {
    file: FileId,
    len: u64,
    min: T,
    max: T,
    format: RunFormat,
}

impl<T: Item> SortedRun<T> {
    /// The underlying file id.
    pub fn file(&self) -> FileId {
        self.file
    }

    /// The run's on-disk layout version.
    pub fn format(&self) -> RunFormat {
        self.format
    }

    /// Items stored per block of this run on a `block_size`-byte device.
    #[inline]
    pub fn items_per_block(&self, block_size: usize) -> usize {
        self.format.items_per_block::<T>(block_size)
    }

    /// Number of items in the run.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True iff the run holds no items.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Smallest item (meaningless if empty).
    pub fn min(&self) -> T {
        self.min
    }

    /// Largest item (meaningless if empty).
    pub fn max(&self) -> T {
        self.max
    }

    /// Block index holding item `idx`.
    #[inline]
    pub fn block_of(&self, idx: u64, block_size: usize) -> u64 {
        idx / self.items_per_block(block_size) as u64
    }

    /// Read the single item at index `idx` (0-based, sorted order).
    ///
    /// Costs one block read on `dev` unless served from `cache`. The
    /// block is checksum-verified before the item is decoded.
    pub fn get<D: BlockDevice>(&self, dev: &D, idx: u64) -> io::Result<T> {
        assert!(idx < self.len, "item index {idx} out of range {}", self.len);
        let per = self.items_per_block(dev.block_size()) as u64;
        let items = self.read_block_items(dev, idx / per)?;
        Ok(items[(idx % per) as usize])
    }

    /// Read, verify, and decode all items of block `block_idx`.
    pub fn read_block_items<D: BlockDevice>(&self, dev: &D, block_idx: u64) -> io::Result<Vec<T>> {
        let mut buf = vec![0u8; dev.block_size()];
        let got = dev.read_block(self.file, block_idx, &mut buf)?;
        match self.decode_block_items(block_idx, dev.block_size(), &buf[..got]) {
            Ok(items) => Ok(items),
            Err(e) => {
                dev.stats().record_corruption();
                Err(e)
            }
        }
    }

    /// Decode the items of block `block_idx` from its raw bytes (already
    /// read — e.g. by a scheduler-submitted speculative probe read),
    /// verifying the CRC64 trailer for [`RunFormat::V2`] runs. A short
    /// buffer or a checksum mismatch is a typed
    /// [`StorageError::Corruption`] naming this run's file and the block.
    pub fn decode_block_items(
        &self,
        block_idx: u64,
        block_size: usize,
        raw: &[u8],
    ) -> io::Result<Vec<T>> {
        let per = self.items_per_block(block_size) as u64;
        let start = block_idx * per;
        assert!(start < self.len, "block index {block_idx} out of range");
        let count = per.min(self.len - start) as usize;
        let payload = count * T::ENCODED_LEN;
        let needed = match self.format {
            RunFormat::V1 => payload,
            RunFormat::V2 => payload + CRC_TRAILER,
        };
        if raw.len() < needed {
            return Err(StorageError::corruption(
                self.file,
                block_idx,
                format!("short block: {} bytes, {needed} needed", raw.len()),
            )
            .into());
        }
        if self.format == RunFormat::V2 {
            let stored = u64::from_le_bytes(
                raw[payload..payload + CRC_TRAILER]
                    .try_into()
                    .expect("trailer slice is 8 bytes"),
            );
            let actual = crc64(&raw[..payload]);
            if stored != actual {
                return Err(StorageError::corruption(
                    self.file,
                    block_idx,
                    format!("crc mismatch: stored {stored:#018x}, computed {actual:#018x}"),
                )
                .into());
            }
        }
        Ok((0..count)
            .map(|i| T::decode(&raw[i * T::ENCODED_LEN..]))
            .collect())
    }

    /// Stream the run in sorted order (sequential block reads with
    /// [`DEFAULT_READAHEAD_BLOCKS`] blocks of readahead).
    pub fn iter<'d, D: BlockDevice>(&self, dev: &'d D) -> RunReader<'d, T, D> {
        RunReader {
            dev,
            file: self.file,
            len: self.len,
            format: self.format,
            next_idx: 0,
            buf: Vec::new(),
            buf_pos: 0,
            block: 0,
            readahead: DEFAULT_READAHEAD_BLOCKS,
            raw: Vec::new(),
            sched: None,
            pending: None,
            _t: PhantomData,
        }
    }

    /// [`SortedRun::iter`] with asynchronous readahead: while one window
    /// of blocks is being decoded and consumed, the next window's read is
    /// already in flight on `sched` (which must schedule over the same
    /// device as `dev`). The block-access *count* is unchanged — only the
    /// device round-trip latency is hidden behind the consumer's CPU
    /// work. Prefetch hit/miss counts land in [`IoScheduler::stats`].
    pub fn iter_prefetch<'d, D: BlockDevice>(
        &self,
        dev: &'d D,
        sched: &'d IoScheduler,
    ) -> RunReader<'d, T, D> {
        let mut r = self.iter(dev);
        r.sched = Some(sched);
        r
    }

    /// Read every item into memory (test/debug helper; O(len) memory).
    pub fn read_all<D: BlockDevice>(&self, dev: &D) -> io::Result<Vec<T>> {
        self.iter(dev).collect()
    }

    /// `rank(v, run)` = number of items `<= v`, via a **block-level**
    /// binary search: each probe reads (and uses) a whole block, so the
    /// cost is `O(log(len/items_per_block))` block reads — versus the
    /// `O(log len)` single-item probes of a naive item-level search.
    ///
    /// This is the unbounded variant; the query engine narrows the range
    /// with summary information first (paper Algorithm 8 lines 5–6) and
    /// uses its own block cache. Repeated probes against the same run
    /// should use [`SortedRun::rank_of_cached`] to skip re-reads.
    pub fn rank_of<D: BlockDevice>(&self, dev: &D, v: T) -> io::Result<u64> {
        let mut cache = BlockCache::new(2);
        self.rank_of_cached(dev, v, &mut cache)
    }

    /// [`SortedRun::rank_of`] probing through `cache`: once the search
    /// visits a block it stays decoded, so repeated rank queries against
    /// the same run (e.g. heavy-hitter threshold scans or query-time
    /// bisection) stop costing device reads as soon as their probe paths
    /// overlap.
    ///
    /// Consecutive probes that land in the block the previous probe
    /// decoded skip the whole search — including the cache lookups — via
    /// the cache's last-block memo: if the memoized block's value span
    /// strictly contains `v`, the boundary is inside it and the answer is
    /// one in-memory `partition_point`.
    pub fn rank_of_cached<D: BlockDevice>(
        &self,
        dev: &D,
        v: T,
        cache: &mut BlockCache<T>,
    ) -> io::Result<u64> {
        if self.is_empty() || v < self.min {
            return Ok(0);
        }
        if v >= self.max {
            return Ok(self.len);
        }
        let per = self.items_per_block(dev.block_size()) as u64;
        if let Some((file, blk, items)) = cache.last_block() {
            // Sound iff the boundary block is provably this one: every
            // earlier block ends ≤ items[0] ≤ v, and v < items[last]
            // (strict) rules out duplicates of v spilling into the next
            // block.
            if file == self.file && !items.is_empty() {
                let (first, last) = (items[0], *items.last().expect("non-empty"));
                if first <= v && v < last {
                    return Ok(blk * per + items.partition_point(|&x| x <= v) as u64);
                }
            }
        }
        // Invariant: blocks < lo_b end with items <= v; blocks >= hi_b
        // start with items > v. The boundary block is in [lo_b, hi_b).
        let (mut lo_b, mut hi_b) = (0u64, self.len.div_ceil(per));
        while lo_b < hi_b {
            let mid = lo_b + (hi_b - lo_b) / 2;
            let items = cache.get_block(dev, self, mid)?;
            if *items.last().expect("blocks are non-empty") <= v {
                lo_b = mid + 1;
            } else if items[0] > v {
                hi_b = mid;
            } else {
                // Boundary inside this block: exact.
                return Ok(mid * per + items.partition_point(|&x| x <= v) as u64);
            }
        }
        Ok(lo_b * per)
    }

    /// Delete the backing file.
    pub fn delete<D: BlockDevice>(self, dev: &D) -> io::Result<()> {
        dev.delete(self.file)
    }

    /// Reconstruct a handle from raw parts (used by warehouse recovery and
    /// tests). The caller asserts the file holds `len` sorted items with
    /// the given extrema, laid out in the **V1** (unchecksummed seed)
    /// format; chain [`SortedRun::with_format`] for checksummed runs.
    pub fn from_raw_parts(file: FileId, len: u64, min: T, max: T) -> Self {
        SortedRun {
            file,
            len,
            min,
            max,
            format: RunFormat::V1,
        }
    }

    /// This handle reinterpreted under `format` (manifest recovery of
    /// checksummed runs).
    pub fn with_format(mut self, format: RunFormat) -> Self {
        self.format = format;
        self
    }
}

/// Buffered writer that produces a [`SortedRun`] in the checksummed
/// [`RunFormat::V2`] layout.
///
/// Enforces nondecreasing order on `push`; flushes whole blocks, each
/// with a CRC64 trailer over its item payload.
pub struct RunWriter<'d, T: Item, D: BlockDevice> {
    dev: &'d D,
    file: FileId,
    buf: Vec<u8>,
    /// Payload capacity of one block, in bytes (`per · ENCODED_LEN`).
    cap: usize,
    next_block: u64,
    len: u64,
    min: Option<T>,
    last: Option<T>,
}

impl<'d, T: Item, D: BlockDevice> RunWriter<'d, T, D> {
    /// Open a new run on `dev`.
    pub fn new(dev: &'d D) -> io::Result<Self> {
        let per = RunFormat::V2.items_per_block::<T>(dev.block_size()); // validates geometry
        Ok(RunWriter {
            dev,
            file: dev.create()?,
            buf: Vec::with_capacity(dev.block_size()),
            cap: per * T::ENCODED_LEN,
            next_block: 0,
            len: 0,
            min: None,
            last: None,
        })
    }

    /// Append `v`; must be `>=` every previously pushed item.
    pub fn push(&mut self, v: T) -> io::Result<()> {
        if let Some(last) = self.last {
            assert!(v >= last, "RunWriter items must be nondecreasing");
        }
        self.min.get_or_insert(v);
        self.last = Some(v);
        let old = self.buf.len();
        self.buf.resize(old + T::ENCODED_LEN, 0);
        v.encode(&mut self.buf[old..]);
        self.len += 1;
        if self.buf.len() >= self.cap {
            self.flush_block()?;
        }
        Ok(())
    }

    fn flush_block(&mut self) -> io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let crc = crc64(&self.buf);
        self.buf.extend_from_slice(&crc.to_le_bytes());
        self.dev
            .write_block(self.file, self.next_block, &self.buf)?;
        self.next_block += 1;
        self.buf.clear();
        Ok(())
    }

    /// Flush and return the completed run handle.
    pub fn finish(mut self) -> io::Result<SortedRun<T>> {
        self.flush_block()?;
        Ok(SortedRun {
            file: self.file,
            len: self.len,
            min: self.min.unwrap_or(T::MIN),
            max: self.last.unwrap_or(T::MIN),
            format: RunFormat::V2,
        })
    }

    /// Items pushed so far.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Sequential iterator over a [`SortedRun`].
///
/// Reads ahead [`DEFAULT_READAHEAD_BLOCKS`] blocks per device round-trip
/// (tunable via [`RunReader::with_readahead`]): the block-access *count*
/// is unchanged — the paper's cost unit — but backends like
/// [`crate::FileDevice`] serve the whole window with one positioned read,
/// and the per-block iterator bookkeeping is amortized across the window.
pub struct RunReader<'d, T: Item, D: BlockDevice> {
    dev: &'d D,
    file: FileId,
    len: u64,
    format: RunFormat,
    next_idx: u64,
    buf: Vec<T>,
    buf_pos: usize,
    block: u64,
    readahead: usize,
    /// Reused raw byte buffer for [`BlockDevice::read_blocks`].
    raw: Vec<u8>,
    /// Asynchronous-readahead scheduler (see [`SortedRun::iter_prefetch`]).
    sched: Option<&'d IoScheduler>,
    /// In-flight prefetch: `(first block, block count, ticket)`.
    pending: Option<(u64, u64, IoTicket)>,
    _t: PhantomData<T>,
}

impl<T: Item, D: BlockDevice> RunReader<'_, T, D> {
    /// Set the readahead window in blocks (min 1).
    pub fn with_readahead(mut self, blocks: usize) -> Self {
        self.readahead = blocks.max(1);
        self
    }

    fn refill(&mut self) -> io::Result<()> {
        let bs = self.dev.block_size();
        let per = self.format.items_per_block::<T>(bs) as u64;
        let remaining_items = self.len - self.next_idx;
        let blocks_left = remaining_items.div_ceil(per);
        let nblocks = (self.readahead as u64).min(blocks_left);
        // A matching in-flight prefetch replaces the synchronous read. A
        // stale one (readahead resized mid-scan) is reaped and dropped,
        // and a failed wait — a barrier elsewhere may have reclaimed the
        // completion — falls back to the synchronous read, where a real
        // device error resurfaces.
        let mut got = usize::MAX;
        if let Some(sched) = self.sched {
            if let Some((first, n, ticket)) = self.pending.take() {
                if first == self.block && n == nblocks {
                    if let Ok(IoOutcome::Read { data, len }) = sched.wait(ticket) {
                        self.raw = data;
                        got = len;
                        sched.note_prefetch(true);
                    } else {
                        sched.note_prefetch(false);
                    }
                } else {
                    let _ = sched.wait(ticket);
                    sched.note_prefetch(false);
                }
            } else {
                sched.note_prefetch(false);
            }
        }
        if got == usize::MAX {
            self.raw.clear();
            self.raw.resize(nblocks as usize * bs, 0);
            got = self
                .dev
                .read_blocks(self.file, self.block, nblocks, &mut self.raw)?;
        }
        self.buf.clear();
        // Decode block by block: items never straddle blocks, so each
        // block contributes `per` items (fewer for the final one) at the
        // start of its `block_size` slice. For V2, each block's CRC64
        // trailer sits right after its payload and is verified before the
        // items are trusted; a short device read shows up as a missing or
        // mismatched trailer.
        let trailer = match self.format {
            RunFormat::V1 => 0,
            RunFormat::V2 => CRC_TRAILER,
        };
        let first_block = self.block;
        let (dev, file) = (self.dev, self.file);
        let mut idx = self.next_idx;
        let mut bytes_seen = 0usize;
        for j in 0..nblocks as usize {
            let base = j * bs;
            let in_block = per.min(self.len - idx) as usize;
            let payload = in_block * T::ENCODED_LEN;
            bytes_seen += payload + trailer;
            let corrupt = move |detail: String| -> io::Error {
                dev.stats().record_corruption();
                StorageError::corruption(file, first_block + j as u64, detail).into()
            };
            if base + payload + trailer > self.raw.len() || bytes_seen > got {
                return Err(corrupt(format!(
                    "short read: {got} bytes for window of {nblocks} blocks"
                )));
            }
            if self.format == RunFormat::V2 {
                let stored = u64::from_le_bytes(
                    self.raw[base + payload..base + payload + CRC_TRAILER]
                        .try_into()
                        .expect("trailer slice is 8 bytes"),
                );
                let actual = crc64(&self.raw[base..base + payload]);
                if stored != actual {
                    return Err(corrupt(format!(
                        "crc mismatch: stored {stored:#018x}, computed {actual:#018x}"
                    )));
                }
            }
            self.buf
                .extend((0..in_block).map(|i| T::decode(&self.raw[base + i * T::ENCODED_LEN..])));
            idx += in_block as u64;
            if idx >= self.len {
                break;
            }
        }
        self.buf_pos = 0;
        self.block += nblocks;
        // Issue the next window's read before the consumer touches this
        // one: by the next refill it is (ideally) already complete.
        if let Some(sched) = self.sched {
            let items_after = remaining_items.saturating_sub(nblocks * per);
            if items_after > 0 {
                let next_blocks = (self.readahead as u64).min(items_after.div_ceil(per));
                let ticket = sched.submit(IoOp::ReadBlocks {
                    file: self.file,
                    first: self.block,
                    count: next_blocks,
                });
                self.pending = Some((self.block, next_blocks, ticket));
            }
        }
        Ok(())
    }

    /// Items remaining to be yielded.
    pub fn remaining(&self) -> u64 {
        self.len - self.next_idx
    }
}

impl<T: Item, D: BlockDevice> Drop for RunReader<'_, T, D> {
    fn drop(&mut self) {
        // Reap an abandoned prefetch so its completion (or error) never
        // leaks into a later barrier — and so the file can be deleted
        // safely right after the reader goes away.
        if let (Some(sched), Some((_, _, ticket))) = (self.sched, self.pending.take()) {
            let _ = sched.wait(ticket);
        }
    }
}

impl<T: Item, D: BlockDevice> Iterator for RunReader<'_, T, D> {
    type Item = io::Result<T>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.next_idx >= self.len {
            return None;
        }
        if self.buf_pos >= self.buf.len() {
            if let Err(e) = self.refill() {
                self.next_idx = self.len; // poison
                return Some(Err(e));
            }
        }
        let v = self.buf[self.buf_pos];
        self.buf_pos += 1;
        self.next_idx += 1;
        Some(Ok(v))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.remaining() as usize;
        (rem, Some(rem))
    }
}

/// Collector for `Iterator<Item = io::Result<T>>` into `Vec<T>`.
impl<T: Item, D: BlockDevice> RunReader<'_, T, D> {
    /// Collect remaining items, failing on the first I/O error.
    pub fn collect(self) -> io::Result<Vec<T>>
    where
        Self: Sized,
    {
        let mut out = Vec::with_capacity(self.remaining() as usize);
        for item in self {
            out.push(item?);
        }
        Ok(out)
    }
}

/// Write a sorted slice as a run (helper for tests and batch loading).
pub fn write_run<T: Item, D: BlockDevice>(dev: &D, sorted: &[T]) -> io::Result<SortedRun<T>> {
    let mut w = RunWriter::new(dev)?;
    for &v in sorted {
        w.push(v)?;
    }
    w.finish()
}

/// [`write_run`] with overlapped block writes: every block is encoded and
/// *submitted* to `sched`, and the completed [`SortedRun`] handle is
/// returned immediately — its length and extrema come from the slice, not
/// the device. The run's blocks land in order (the scheduler's per-file
/// FIFO), but the caller **must** pass an [`IoScheduler::barrier`] before
/// reading the run or treating it as durable. This is the archival fast
/// path: block encoding, summary construction, and the next partition's
/// CPU work all overlap the device writes.
pub fn write_run_overlapped<T: Item>(
    sched: &IoScheduler,
    sorted: &[T],
) -> io::Result<SortedRun<T>> {
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "run not sorted");
    let dev = sched.device();
    let per = RunFormat::V2.items_per_block::<T>(dev.block_size());
    let file = dev.create()?;
    for (idx, chunk) in sorted.chunks(per).enumerate() {
        let payload = chunk.len() * T::ENCODED_LEN;
        let mut data = vec![0u8; payload + CRC_TRAILER];
        for (i, v) in chunk.iter().enumerate() {
            v.encode(&mut data[i * T::ENCODED_LEN..]);
        }
        let crc = crc64(&data[..payload]);
        data[payload..].copy_from_slice(&crc.to_le_bytes());
        sched.submit(IoOp::Write {
            file,
            idx: idx as u64,
            data,
        });
    }
    Ok(SortedRun {
        file,
        len: sorted.len() as u64,
        min: sorted.first().copied().unwrap_or(T::MIN),
        max: sorted.last().copied().unwrap_or(T::MIN),
        format: RunFormat::V2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemDevice;

    #[test]
    fn write_read_roundtrip() {
        let dev = MemDevice::new(64); // 7 u64s per block
        let data: Vec<u64> = (0..1000).collect();
        let run = write_run(&*dev, &data).unwrap();
        assert_eq!(run.len(), 1000);
        assert_eq!(run.min(), 0);
        assert_eq!(run.max(), 999);
        assert_eq!(run.read_all(&*dev).unwrap(), data);
    }

    #[test]
    fn random_access_get() {
        let dev = MemDevice::new(64);
        let data: Vec<u64> = (0..500).map(|i| i * 3).collect();
        let run = write_run(&*dev, &data).unwrap();
        for idx in [0u64, 1, 7, 8, 63, 64, 499] {
            assert_eq!(run.get(&*dev, idx).unwrap(), idx * 3);
        }
    }

    #[test]
    fn read_block_items_partial_tail() {
        let dev = MemDevice::new(64); // 7 per block + CRC trailer
        let data: Vec<u64> = (0..19).collect();
        let run = write_run(&*dev, &data).unwrap();
        assert_eq!(
            run.read_block_items(&*dev, 0).unwrap(),
            (0..7).collect::<Vec<_>>()
        );
        assert_eq!(
            run.read_block_items(&*dev, 2).unwrap(),
            (14..19).collect::<Vec<_>>()
        );
    }

    #[test]
    fn rank_of_matches_partition_point() {
        let dev = MemDevice::new(64);
        let data: Vec<u64> = vec![2, 2, 5, 5, 5, 9, 12, 12, 40];
        let run = write_run(&*dev, &data).unwrap();
        for probe in [0u64, 1, 2, 3, 5, 6, 9, 11, 12, 13, 40, 41, 1000] {
            let expect = data.iter().filter(|&&x| x <= probe).count() as u64;
            assert_eq!(run.rank_of(&*dev, probe).unwrap(), expect, "probe {probe}");
        }
    }

    #[test]
    fn empty_run() {
        let dev = MemDevice::new(64);
        let run = write_run::<u64, _>(&*dev, &[]).unwrap();
        assert!(run.is_empty());
        assert_eq!(run.rank_of(&*dev, 5).unwrap(), 0);
        assert_eq!(run.read_all(&*dev).unwrap(), Vec::<u64>::new());
    }

    #[test]
    #[should_panic(expected = "nondecreasing")]
    fn unsorted_push_rejected() {
        let dev = MemDevice::new(64);
        let mut w = RunWriter::<u64, _>::new(&*dev).unwrap();
        w.push(5).unwrap();
        w.push(3).unwrap();
    }

    #[test]
    fn sequential_scan_costs_one_read_per_block() {
        let dev = MemDevice::new(64); // 7 u64 per block (+ CRC trailer)
        let data: Vec<u64> = (0..84).collect(); // 12 blocks
        let run = write_run(&*dev, &data).unwrap();
        let before = dev.stats().snapshot();
        let _ = run.read_all(&*dev).unwrap();
        let d = dev.stats().snapshot() - before;
        assert_eq!(d.total_reads(), 12);
        assert_eq!(d.seq_reads, 12);
    }

    #[test]
    fn items_never_straddle_blocks_with_odd_block_size() {
        // 100-byte blocks hold 11 u64s (88 bytes) + 8-byte CRC + 4 padding.
        let dev = MemDevice::new(100);
        let data: Vec<u64> = (0..100).collect();
        let run = write_run(&*dev, &data).unwrap();
        assert_eq!(run.read_all(&*dev).unwrap(), data);
        assert_eq!(run.get(&*dev, 11).unwrap(), 11); // first item of block 1
        assert_eq!(run.block_of(10, 100), 0);
        assert_eq!(run.block_of(11, 100), 1);
    }

    #[test]
    fn readahead_matches_block_at_a_time() {
        let dev = MemDevice::new(64); // 7 u64 per block
        let data: Vec<u64> = (0..1234).collect();
        let run = write_run(&*dev, &data).unwrap();
        for ra in [1usize, 2, 8, 64, 1000] {
            let got: Vec<u64> = run
                .iter(&*dev)
                .with_readahead(ra)
                .map(|r| r.unwrap())
                .collect();
            assert_eq!(got, data, "readahead {ra}");
        }
    }

    #[test]
    fn readahead_with_padded_blocks() {
        // 100-byte blocks hold 11 u64s + CRC trailer + 4 bytes padding:
        // readahead must skip the padding between blocks.
        let dev = MemDevice::new(100);
        let data: Vec<u64> = (0..500).map(|i| i * 7).collect();
        let run = write_run(&*dev, &data).unwrap();
        let got: Vec<u64> = run
            .iter(&*dev)
            .with_readahead(5)
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(got, data);
    }

    #[test]
    fn readahead_preserves_block_access_counts() {
        let dev = MemDevice::new(64); // 7 u64 per block
        let data: Vec<u64> = (0..84).collect(); // 12 blocks
        let run = write_run(&*dev, &data).unwrap();
        let before = dev.stats().snapshot();
        let _ = run.read_all(&*dev).unwrap();
        let d = dev.stats().snapshot() - before;
        // Readahead batches device round-trips but the paper's cost unit
        // (block accesses) is unchanged, and all reads stay sequential.
        assert_eq!(d.total_reads(), 12);
        assert_eq!(d.seq_reads, 12);
    }

    #[test]
    fn prefetch_iter_matches_plain_iter() {
        use crate::sched::IoScheduler;
        use std::sync::Arc;
        let dev = MemDevice::new(64); // 7 u64 per block
        let data: Vec<u64> = (0..1234).collect();
        let run = write_run(&*dev, &data).unwrap();
        let sched = IoScheduler::with_reorder(Arc::clone(&dev) as Arc<dyn BlockDevice>, 2, None);
        let before = dev.stats().snapshot();
        let got: Vec<u64> = run
            .iter_prefetch(&*dev, &sched)
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(got, data);
        sched.barrier().unwrap();
        // Accounting unchanged: one block access per block (ceil(1234/7)),
        // all sequential.
        let d = dev.stats().snapshot() - before;
        assert_eq!(d.total_reads(), 177);
        assert_eq!(d.rand_reads, 0);
        // Every window after the first came from an in-flight prefetch.
        let st = sched.stats();
        assert!(st.prefetch_hits >= 18, "hits {}", st.prefetch_hits);
        assert_eq!(st.prefetch_misses, 1, "only the first window misses");
    }

    #[test]
    fn abandoned_prefetch_is_reaped_on_drop() {
        use crate::sched::IoScheduler;
        use std::sync::Arc;
        let dev = MemDevice::new(64);
        let data: Vec<u64> = (0..500).collect();
        let run = write_run(&*dev, &data).unwrap();
        let sched = IoScheduler::with_reorder(Arc::clone(&dev) as Arc<dyn BlockDevice>, 2, None);
        {
            let mut it = run.iter_prefetch(&*dev, &sched);
            for _ in 0..20 {
                it.next().unwrap().unwrap();
            }
            // Dropped mid-scan with a window in flight.
        }
        run.delete(&*dev).unwrap();
        sched.barrier().unwrap(); // no stray read-after-delete error
    }

    #[test]
    fn write_run_overlapped_matches_write_run() {
        use crate::sched::IoScheduler;
        use std::sync::Arc;
        let dev = MemDevice::new(100); // padded geometry: 11 u64 + CRC + 4 bytes
        let sched = IoScheduler::with_reorder(Arc::clone(&dev) as Arc<dyn BlockDevice>, 3, None);
        for n in [0usize, 5, 11, 12, 500] {
            let data: Vec<u64> = (0..n as u64).map(|i| i * 3).collect();
            let run = write_run_overlapped(&sched, &data).unwrap();
            assert_eq!(run.len(), n as u64);
            sched.barrier().unwrap();
            assert_eq!(run.read_all(&*dev).unwrap(), data, "n = {n}");
            if n > 0 {
                assert_eq!(run.min(), 0);
                assert_eq!(run.max(), (n as u64 - 1) * 3);
            }
        }
    }

    #[test]
    fn rank_of_cached_reuses_blocks() {
        let dev = MemDevice::new(64);
        let data: Vec<u64> = (0..4096).map(|i| i * 2).collect(); // 586 blocks
        let run = write_run(&*dev, &data).unwrap();
        let mut cache = BlockCache::new(64);
        let before = dev.stats().snapshot();
        assert_eq!(run.rank_of_cached(&*dev, 999, &mut cache).unwrap(), 500);
        let first = (dev.stats().snapshot() - before).total_reads();
        // Block-level search: ~log2(586) = 10 block reads, far below the
        // ~12 item reads of an item-level search, and bounded by it.
        assert!(first <= 11, "first probe cost {first} block reads");
        // A nearby probe shares most of its search path: nearly free.
        let before = dev.stats().snapshot();
        assert_eq!(run.rank_of_cached(&*dev, 1001, &mut cache).unwrap(), 501);
        let second = (dev.stats().snapshot() - before).total_reads();
        assert!(second <= 2, "cached re-probe cost {second} reads");
    }

    #[test]
    fn rank_of_cached_memoizes_last_block() {
        // Regression (perf): a probe landing in the block the previous
        // probe decoded must answer from the last-block memo — zero
        // device reads AND zero BlockCache lookups — with the same
        // answer as the uncached search.
        let dev = MemDevice::new(64); // 7 u64/block
        let data: Vec<u64> = (0..4096).map(|i| i * 2).collect();
        let run = write_run(&*dev, &data).unwrap();
        let mut cache = BlockCache::new(64);
        // Warm: first probe does the block-level binary search.
        assert_eq!(run.rank_of_cached(&*dev, 1000, &mut cache).unwrap(), 501);
        let stats_before = cache.stats();
        let io_before = dev.stats().snapshot();
        // Same-block re-probes: the warm probe decoded block 71 (indices
        // 497..504, values 994..=1006), so anything in [994, 1006) must
        // answer from the memo.
        for v in [1000u64, 994, 995, 1001, 1005] {
            let expect = data.iter().filter(|&&x| x <= v).count() as u64;
            assert_eq!(run.rank_of_cached(&*dev, v, &mut cache).unwrap(), expect);
        }
        assert_eq!(
            cache.stats(),
            stats_before,
            "same-block probes must not touch the cache"
        );
        assert_eq!(
            (dev.stats().snapshot() - io_before).total_reads(),
            0,
            "same-block probes must not touch the device"
        );
        // A probe at or past the memo block's last value must NOT
        // shortcut (duplicates could continue into the next block);
        // answers stay exact either way.
        for v in [1006u64, 1007, 2000] {
            let expect = data.iter().filter(|&&x| x <= v).count() as u64;
            assert_eq!(run.rank_of_cached(&*dev, v, &mut cache).unwrap(), expect);
        }
    }

    #[test]
    fn rank_of_cached_memo_exact_on_duplicate_plateaus() {
        // A plateau spanning block boundaries: memoized answers must
        // count the duplicates in later blocks too.
        let dev = MemDevice::new(64); // 7 u64/block
        let mut data = vec![10u64; 20];
        data.extend(vec![50u64; 20]);
        data.extend(60..200u64);
        let run = write_run(&*dev, &data).unwrap();
        let mut cache = BlockCache::new(16);
        for v in [9u64, 10, 11, 49, 50, 51, 60, 199, 500] {
            let expect = data.iter().filter(|&&x| x <= v).count() as u64;
            assert_eq!(
                run.rank_of_cached(&*dev, v, &mut cache).unwrap(),
                expect,
                "v = {v}"
            );
        }
        // Interleave far-apart probes so the memo block keeps changing.
        for v in [10u64, 199, 10, 50, 199, 50] {
            let expect = data.iter().filter(|&&x| x <= v).count() as u64;
            assert_eq!(run.rank_of_cached(&*dev, v, &mut cache).unwrap(), expect);
        }
    }

    #[test]
    fn signed_items_roundtrip() {
        let dev = MemDevice::new(64);
        let data: Vec<i64> = (-50..50).collect();
        let run = write_run(&*dev, &data).unwrap();
        assert_eq!(run.read_all(&*dev).unwrap(), data);
        assert_eq!(run.rank_of(&*dev, -1).unwrap(), 50);
    }

    /// Flip one byte of one stored block, in place, via the raw device.
    fn rot_block(dev: &MemDevice, run: &SortedRun<u64>, block: u64) {
        let bs = dev.block_size();
        let mut raw = vec![0u8; bs];
        dev.read_block(run.file(), block, &mut raw).unwrap();
        raw[3] ^= 0x40;
        dev.write_block(run.file(), block, &raw).unwrap();
    }

    #[test]
    fn bit_flip_detected_on_every_read_path() {
        use crate::error::corruption_in;
        let dev = MemDevice::new(64); // 7 u64 per block
        let data: Vec<u64> = (0..70).collect(); // 10 blocks
        let run = write_run(&*dev, &data).unwrap();
        rot_block(&dev, &run, 4);

        // Direct block read: typed corruption naming the exact block.
        let err = run.read_block_items(&*dev, 4).unwrap_err();
        assert_eq!(corruption_in(&err), Some((run.file(), 4)));
        // Point lookup into the rotted block.
        let err = run.get(&*dev, 30).unwrap_err();
        assert_eq!(corruption_in(&err), Some((run.file(), 4)));
        // Sequential iteration (readahead path) stops with the error.
        let got: io::Result<Vec<u64>> = run.iter(&*dev).with_readahead(3).collect();
        assert_eq!(corruption_in(&got.unwrap_err()), Some((run.file(), 4)));
        // Healthy blocks still read clean.
        assert_eq!(
            run.read_block_items(&*dev, 3).unwrap(),
            (21..28).collect::<Vec<_>>()
        );
        // Every detection bumped the corruption counter.
        assert!(dev.stats().snapshot().corruptions >= 3);
    }

    #[test]
    fn bit_flip_detected_by_prefetch_iter() {
        use crate::error::corruption_in;
        use crate::sched::IoScheduler;
        use std::sync::Arc;
        let dev = MemDevice::new(64);
        let data: Vec<u64> = (0..700).collect();
        let run = write_run(&*dev, &data).unwrap();
        rot_block(&dev, &run, 50);
        let sched = IoScheduler::with_reorder(Arc::clone(&dev) as Arc<dyn BlockDevice>, 2, None);
        let got: io::Result<Vec<u64>> = run.iter_prefetch(&*dev, &sched).collect();
        assert_eq!(corruption_in(&got.unwrap_err()), Some((run.file(), 50)));
        sched.barrier().unwrap();
    }

    #[test]
    fn truncated_block_is_corruption_not_panic() {
        use crate::error::corruption_in;
        let dev = MemDevice::new(64);
        let data: Vec<u64> = (0..70).collect();
        let run = write_run(&*dev, &data).unwrap();
        // Overwrite block 5 with a torn (10-byte) write: the decode sees
        // a short buffer and must return a typed corruption, not panic.
        dev.write_block(run.file(), 5, &[0xEEu8; 10]).unwrap();
        let err = run.read_block_items(&*dev, 5).unwrap_err();
        assert_eq!(corruption_in(&err), Some((run.file(), 5)));
    }

    #[test]
    fn v1_runs_read_back_compat() {
        // Hand-write an unchecksummed (V1) run: 8 u64 per 64-byte block,
        // no trailer — the seed format. Reads must succeed unverified.
        let dev = MemDevice::new(64);
        let data: Vec<u64> = (0..100).collect();
        let per = items_per_block::<u64>(64); // V1 geometry: 8
        assert_eq!(per, 8);
        let file = dev.create().unwrap();
        for (idx, chunk) in data.chunks(per).enumerate() {
            let mut raw = vec![0u8; chunk.len() * 8];
            for (i, v) in chunk.iter().enumerate() {
                v.encode(&mut raw[i * 8..]);
            }
            dev.write_block(file, idx as u64, &raw).unwrap();
        }
        let run = SortedRun::<u64>::from_raw_parts(file, 100, 0, 99);
        assert_eq!(run.format(), RunFormat::V1);
        assert_eq!(run.items_per_block(64), 8);
        assert_eq!(run.read_all(&*dev).unwrap(), data);
        assert_eq!(run.get(&*dev, 42).unwrap(), 42);
        assert_eq!(run.rank_of(&*dev, 50).unwrap(), 51);
        assert_eq!(
            run.read_block_items(&*dev, 12).unwrap(),
            (96..100).collect::<Vec<_>>()
        );
        let got: Vec<u64> = run
            .iter(&*dev)
            .with_readahead(4)
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(got, data);
    }

    #[test]
    fn format_round_trips_through_byte() {
        for fmt in [RunFormat::V1, RunFormat::V2] {
            assert_eq!(RunFormat::from_byte(fmt.as_byte()), Some(fmt));
        }
        assert_eq!(RunFormat::from_byte(9), None);
    }
}
