//! Exact I/O accounting.
//!
//! The paper's evaluation (§3) reports *numbers of disk accesses* for both
//! warehouse updates and quantile queries, distinguishing cheap sequential
//! I/O (partition loading and merging, Lemma 6) from expensive random I/O
//! (query-time binary search, Lemma 7). Every [`crate::BlockDevice`] carries
//! an [`IoStats`] that counts each block access at the moment it happens, so
//! experiment harnesses can diff snapshots around any operation.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters of block-level I/O, shared across device handles.
///
/// Reads are classified by the device: a read of block `i+1` of a file whose
/// previous read was block `i` (or the first read of a file) is *sequential*;
/// anything else is *random*. Writes are assumed sequential (the warehouse
/// only ever appends and rewrites whole partitions).
#[derive(Debug, Default)]
pub struct IoStats {
    seq_reads: AtomicU64,
    rand_reads: AtomicU64,
    writes: AtomicU64,
    syncs: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    retries: AtomicU64,
    corruptions: AtomicU64,
}

impl IoStats {
    /// New zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub(crate) fn record_read(&self, bytes: usize, sequential: bool) {
        if sequential {
            self.seq_reads.fetch_add(1, Ordering::Relaxed);
        } else {
            self.rand_reads.fetch_add(1, Ordering::Relaxed);
        }
        self.bytes_read.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_write(&self, bytes: usize) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.bytes_written
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_sync(&self) {
        self.syncs.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one retried operation (a transient failure that was masked
    /// by a [`crate::RetryPolicy`], in the scheduler or a
    /// [`crate::RetryDevice`]).
    #[inline]
    pub fn record_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one detected corruption (a block whose CRC64 trailer or
    /// structural decode failed verification).
    #[inline]
    pub fn record_corruption(&self) {
        self.corruptions.fetch_add(1, Ordering::Relaxed);
    }

    /// Capture the current counter values.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            seq_reads: self.seq_reads.load(Ordering::Relaxed),
            rand_reads: self.rand_reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            syncs: self.syncs.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            corruptions: self.corruptions.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`IoStats`] counters.
///
/// Subtract two snapshots to get the cost of the operations in between:
///
/// ```
/// use hsq_storage::{BlockDevice, MemDevice};
/// let dev = MemDevice::new(1024);
/// let before = dev.stats().snapshot();
/// let f = dev.create().unwrap();
/// dev.write_block(f, 0, &[7u8; 1024]).unwrap();
/// let cost = dev.stats().snapshot() - before;
/// assert_eq!(cost.writes, 1);
/// assert_eq!(cost.total_reads(), 0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    /// Block reads that continued a sequential scan.
    pub seq_reads: u64,
    /// Block reads that jumped within or across files.
    pub rand_reads: u64,
    /// Block writes.
    pub writes: u64,
    /// Durability barriers (`sync` calls reaching the device).
    pub syncs: u64,
    /// Total bytes read.
    pub bytes_read: u64,
    /// Total bytes written.
    pub bytes_written: u64,
    /// Transient failures masked by a retry policy.
    pub retries: u64,
    /// Blocks that failed checksum/decode verification.
    pub corruptions: u64,
}

impl IoSnapshot {
    /// Sequential plus random block reads.
    pub fn total_reads(&self) -> u64 {
        self.seq_reads + self.rand_reads
    }

    /// All block accesses: reads plus writes. This is the paper's
    /// "number of disk accesses".
    pub fn total_accesses(&self) -> u64 {
        self.total_reads() + self.writes
    }
}

impl std::ops::Sub for IoSnapshot {
    type Output = IoSnapshot;

    fn sub(self, rhs: IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            seq_reads: self.seq_reads - rhs.seq_reads,
            rand_reads: self.rand_reads - rhs.rand_reads,
            writes: self.writes - rhs.writes,
            syncs: self.syncs - rhs.syncs,
            bytes_read: self.bytes_read - rhs.bytes_read,
            bytes_written: self.bytes_written - rhs.bytes_written,
            retries: self.retries - rhs.retries,
            corruptions: self.corruptions - rhs.corruptions,
        }
    }
}

impl std::ops::Add for IoSnapshot {
    type Output = IoSnapshot;

    fn add(self, rhs: IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            seq_reads: self.seq_reads + rhs.seq_reads,
            rand_reads: self.rand_reads + rhs.rand_reads,
            writes: self.writes + rhs.writes,
            syncs: self.syncs + rhs.syncs,
            bytes_read: self.bytes_read + rhs.bytes_read,
            bytes_written: self.bytes_written + rhs.bytes_written,
            retries: self.retries + rhs.retries,
            corruptions: self.corruptions + rhs.corruptions,
        }
    }
}

impl std::fmt::Display for IoSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "reads={} (seq={}, rand={}), writes={}, syncs={}, MB read={:.2}, MB written={:.2}",
            self.total_reads(),
            self.seq_reads,
            self.rand_reads,
            self.writes,
            self.syncs,
            self.bytes_read as f64 / (1024.0 * 1024.0),
            self.bytes_written as f64 / (1024.0 * 1024.0),
        )?;
        if self.retries > 0 || self.corruptions > 0 {
            write!(
                f,
                ", retries={}, corruptions={}",
                self.retries, self.corruptions
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_diff() {
        let s = IoStats::new();
        s.record_read(100, true);
        let a = s.snapshot();
        s.record_read(100, false);
        s.record_write(50);
        let b = s.snapshot();
        let d = b - a;
        assert_eq!(d.seq_reads, 0);
        assert_eq!(d.rand_reads, 1);
        assert_eq!(d.writes, 1);
        assert_eq!(d.bytes_read, 100);
        assert_eq!(d.bytes_written, 50);
        assert_eq!(d.total_accesses(), 2);
    }

    #[test]
    fn snapshot_add() {
        let a = IoSnapshot {
            seq_reads: 1,
            rand_reads: 2,
            writes: 3,
            syncs: 1,
            bytes_read: 4,
            bytes_written: 5,
            retries: 1,
            corruptions: 1,
        };
        let sum = a + a;
        assert_eq!(sum.seq_reads, 2);
        assert_eq!(sum.syncs, 2);
        assert_eq!(sum.retries, 2);
        assert_eq!(sum.corruptions, 2);
        assert_eq!(sum.total_accesses(), 12);
    }
}
