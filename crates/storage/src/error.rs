//! Typed storage errors and transient-I/O retry.
//!
//! The read paths of this crate distinguish three failure classes:
//!
//! * [`StorageError::Transient`] — the device hiccuped (a flaky bus, a
//!   timeout). Retrying the same operation may succeed; the capped
//!   exponential backoff of [`RetryPolicy`] governs how hard to try.
//! * [`StorageError::Corruption`] — a block was read back but its
//!   checksum (or structural decode) failed. Retrying is pointless: the
//!   bytes on the device are wrong. The offending `(file, block)` is
//!   carried so the warehouse can quarantine the partition and keep
//!   answering queries with explicitly widened rank bounds.
//! * [`StorageError::Fatal`] — everything else (missing file, bad
//!   arguments, a halted fault device). Surfaced unchanged.
//!
//! The taxonomy rides *inside* `std::io::Error` rather than replacing it:
//! every fallible signature in the crate stays `io::Result`, and a typed
//! error converts losslessly in both directions ([`From`] into
//! `io::Error`, [`StorageError::classify`] back out). Classification of a
//! foreign `io::Error` falls back on its [`io::ErrorKind`]:
//! `Interrupted` is transient (the convention [`crate::Fault::FlakyReads`]
//! uses), `InvalidData` is corruption, anything else is fatal.

use std::fmt;
use std::io;
use std::time::Duration;

use crate::device::FileId;

/// A classified storage failure (see module docs).
#[derive(Debug)]
pub enum StorageError {
    /// A retryable device hiccup.
    Transient(String),
    /// Checksum or decode failure: the stored bytes are wrong.
    Corruption {
        /// File holding the corrupt block.
        file: FileId,
        /// Block index within the file.
        block: u64,
        /// Human-readable detail (which check failed).
        detail: String,
    },
    /// A non-retryable, non-corruption failure.
    Fatal(String),
}

impl StorageError {
    /// A corruption error for `block` of `file`.
    pub fn corruption(file: FileId, block: u64, detail: impl Into<String>) -> Self {
        StorageError::Corruption {
            file,
            block,
            detail: detail.into(),
        }
    }

    /// Classify an `io::Error`: unwrap a typed payload if one is inside,
    /// otherwise map the error kind (see module docs).
    pub fn classify(e: &io::Error) -> StorageErrorKind {
        if let Some(inner) = e.get_ref() {
            if let Some(se) = inner.downcast_ref::<StorageError>() {
                return match se {
                    StorageError::Transient(_) => StorageErrorKind::Transient,
                    StorageError::Corruption { .. } => StorageErrorKind::Corruption,
                    StorageError::Fatal(_) => StorageErrorKind::Fatal,
                };
            }
        }
        match e.kind() {
            io::ErrorKind::Interrupted => StorageErrorKind::Transient,
            io::ErrorKind::InvalidData => StorageErrorKind::Corruption,
            _ => StorageErrorKind::Fatal,
        }
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Transient(msg) => write!(f, "transient I/O error: {msg}"),
            StorageError::Corruption {
                file,
                block,
                detail,
            } => write!(f, "corruption in file {file} block {block}: {detail}"),
            StorageError::Fatal(msg) => write!(f, "fatal storage error: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<StorageError> for io::Error {
    fn from(e: StorageError) -> io::Error {
        let kind = match &e {
            StorageError::Transient(_) => io::ErrorKind::Interrupted,
            StorageError::Corruption { .. } => io::ErrorKind::InvalidData,
            StorageError::Fatal(_) => io::ErrorKind::Other,
        };
        io::Error::new(kind, e)
    }
}

/// The class of a storage failure, extracted by [`StorageError::classify`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageErrorKind {
    /// Worth retrying.
    Transient,
    /// Wrong bytes on the device; quarantine, don't retry.
    Corruption,
    /// Neither.
    Fatal,
}

/// True iff `e` classifies as a retryable transient failure.
pub fn is_transient(e: &io::Error) -> bool {
    StorageError::classify(e) == StorageErrorKind::Transient
}

/// If `e` carries a typed corruption report, its `(file, block)`.
///
/// This is the hook the warehouse quarantine path uses: a query that
/// fails with a checksum mismatch names the partition file to fence off.
pub fn corruption_in(e: &io::Error) -> Option<(FileId, u64)> {
    let inner = e.get_ref()?;
    match inner.downcast_ref::<StorageError>()? {
        StorageError::Corruption { file, block, .. } => Some((*file, *block)),
        _ => None,
    }
}

/// Capped exponential backoff for transient failures.
///
/// The default policy performs **no retries** — opt in via
/// `HsqConfig::builder().retry(..)` in `hsq-core` or construct one here.
/// Delays double from `base_delay` up to `max_delay`; a zero base delay
/// retries immediately (what deterministic tests use).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum retry attempts after the first failure (0 = no retries).
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

impl RetryPolicy {
    /// No retries: transient errors surface immediately.
    pub const fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
        }
    }

    /// Up to `n` immediate retries (no backoff) — the deterministic-test
    /// configuration.
    pub const fn immediate(n: u32) -> Self {
        RetryPolicy {
            max_retries: n,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
        }
    }

    /// `n` retries with exponential backoff from 100µs capped at 10ms.
    pub const fn standard(n: u32) -> Self {
        RetryPolicy {
            max_retries: n,
            base_delay: Duration::from_micros(100),
            max_delay: Duration::from_millis(10),
        }
    }

    /// Backoff before retry attempt `attempt` (1-based).
    pub fn delay_for(&self, attempt: u32) -> Duration {
        if self.base_delay.is_zero() {
            return Duration::ZERO;
        }
        let exp = attempt.saturating_sub(1).min(20);
        self.base_delay
            .saturating_mul(1u32 << exp)
            .min(self.max_delay)
    }

    /// Run `op`, retrying transient failures per this policy. Counts each
    /// retry through `note_retry` (wire it to
    /// [`crate::IoStats::record_retry`]). Corruption and fatal errors are
    /// never retried.
    pub fn run<T>(
        &self,
        mut note_retry: impl FnMut(),
        mut op: impl FnMut() -> io::Result<T>,
    ) -> io::Result<T> {
        let mut attempt = 0u32;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if attempt < self.max_retries && is_transient(&e) => {
                    attempt += 1;
                    note_retry();
                    let d = self.delay_for(attempt);
                    if !d.is_zero() {
                        std::thread::sleep(d);
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// A [`crate::BlockDevice`] wrapper that applies a [`RetryPolicy`] to the
/// *synchronous* read paths (`read_block` / `read_blocks`), masking
/// transient failures such as [`crate::Fault::FlakyReads`]. Mutations are
/// not retried — write-side failures are the durability protocol's
/// concern, not a retry loop's. Each masked failure is counted in the
/// wrapped device's [`crate::IoSnapshot::retries`].
pub struct RetryDevice<D: crate::BlockDevice> {
    inner: std::sync::Arc<D>,
    policy: RetryPolicy,
}

impl<D: crate::BlockDevice> RetryDevice<D> {
    /// Wrap `inner`, retrying transient synchronous-read failures.
    pub fn new(inner: std::sync::Arc<D>, policy: RetryPolicy) -> std::sync::Arc<Self> {
        std::sync::Arc::new(RetryDevice { inner, policy })
    }

    /// The wrapped device.
    pub fn inner(&self) -> &std::sync::Arc<D> {
        &self.inner
    }
}

impl<D: crate::BlockDevice> crate::BlockDevice for RetryDevice<D> {
    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn create(&self) -> io::Result<FileId> {
        self.inner.create()
    }

    fn write_block(&self, file: FileId, idx: u64, data: &[u8]) -> io::Result<()> {
        self.inner.write_block(file, idx, data)
    }

    fn read_block(&self, file: FileId, idx: u64, buf: &mut [u8]) -> io::Result<usize> {
        self.policy.run(
            || self.inner.stats().record_retry(),
            || self.inner.read_block(file, idx, buf),
        )
    }

    fn read_blocks(
        &self,
        file: FileId,
        first: u64,
        count: u64,
        buf: &mut [u8],
    ) -> io::Result<usize> {
        self.policy.run(
            || self.inner.stats().record_retry(),
            || self.inner.read_blocks(file, first, count, buf),
        )
    }

    fn sync(&self, file: FileId) -> io::Result<()> {
        self.inner.sync(file)
    }

    fn num_blocks(&self, file: FileId) -> io::Result<u64> {
        self.inner.num_blocks(file)
    }

    fn file_len(&self, file: FileId) -> io::Result<u64> {
        self.inner.file_len(file)
    }

    fn delete(&self, file: FileId) -> io::Result<()> {
        self.inner.delete(file)
    }

    fn stats(&self) -> &crate::IoStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_error_roundtrip_preserves_class() {
        let e: io::Error = StorageError::corruption(7, 42, "crc mismatch").into();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
        assert_eq!(StorageError::classify(&e), StorageErrorKind::Corruption);
        assert_eq!(corruption_in(&e), Some((7, 42)));

        let e: io::Error = StorageError::Transient("bus timeout".into()).into();
        assert_eq!(e.kind(), io::ErrorKind::Interrupted);
        assert!(is_transient(&e));
        assert_eq!(corruption_in(&e), None);

        let e: io::Error = StorageError::Fatal("no such file".into()).into();
        assert_eq!(StorageError::classify(&e), StorageErrorKind::Fatal);
    }

    #[test]
    fn foreign_errors_classify_by_kind() {
        let e = io::Error::new(io::ErrorKind::Interrupted, "plain interrupt");
        assert!(is_transient(&e));
        let e = io::Error::new(io::ErrorKind::InvalidData, "plain bad data");
        assert_eq!(StorageError::classify(&e), StorageErrorKind::Corruption);
        assert_eq!(corruption_in(&e), None, "untyped corruption has no site");
        let e = io::Error::other("anything else");
        assert_eq!(StorageError::classify(&e), StorageErrorKind::Fatal);
    }

    #[test]
    fn retry_masks_transients_up_to_cap() {
        let policy = RetryPolicy::immediate(3);
        let mut fails = 2;
        let mut retries = 0;
        let out: io::Result<u32> = policy.run(
            || retries += 1,
            || {
                if fails > 0 {
                    fails -= 1;
                    Err(StorageError::Transient("flaky".into()).into())
                } else {
                    Ok(99)
                }
            },
        );
        assert_eq!(out.unwrap(), 99);
        assert_eq!(retries, 2);

        // More failures than the cap: the error surfaces.
        let mut fails = 5;
        let out: io::Result<u32> = policy.run(
            || {},
            || {
                if fails > 0 {
                    fails -= 1;
                    Err(StorageError::Transient("flaky".into()).into())
                } else {
                    Ok(0)
                }
            },
        );
        assert!(out.is_err());
    }

    #[test]
    fn retry_never_touches_corruption_or_fatal() {
        let policy = RetryPolicy::immediate(10);
        let mut calls = 0;
        let out: io::Result<()> = policy.run(
            || {},
            || {
                calls += 1;
                Err(StorageError::corruption(1, 2, "rot").into())
            },
        );
        assert!(out.is_err());
        assert_eq!(calls, 1, "corruption must not be retried");

        let mut calls = 0;
        let out: io::Result<()> = policy.run(
            || {},
            || {
                calls += 1;
                Err(io::Error::other("fatal-ish"))
            },
        );
        assert!(out.is_err());
        assert_eq!(calls, 1);
    }

    #[test]
    fn backoff_is_capped() {
        let p = RetryPolicy {
            max_retries: 10,
            base_delay: Duration::from_micros(100),
            max_delay: Duration::from_micros(500),
        };
        assert_eq!(p.delay_for(1), Duration::from_micros(100));
        assert_eq!(p.delay_for(2), Duration::from_micros(200));
        assert_eq!(p.delay_for(3), Duration::from_micros(400));
        assert_eq!(p.delay_for(4), Duration::from_micros(500));
        assert_eq!(p.delay_for(30), Duration::from_micros(500));
        assert_eq!(RetryPolicy::none().delay_for(5), Duration::ZERO);
    }
}
