//! Fixed-width, order-preserving binary encoding of data items.
//!
//! Every value stored in the warehouse is drawn from a totally ordered
//! universe `U` (paper §1.1). The on-disk structures ([`crate::run::SortedRun`])
//! hold items in a fixed-width big-endian encoding whose *byte order equals
//! the value order*, so on-disk binary search never needs to decode more
//! than the probed item.
//!
//! The accurate query algorithm (paper Algorithm 8) bisects the *value
//! space* (`z = (u + v) / 2`), so items must also expose a [`Item::midpoint`]
//! and the size of their universe in bits (which bounds the recursion depth,
//! Lemma 7's `log |U|` factor).

pub use hsq_sketch::radix::RadixKey;

/// A value that can be stored in the warehouse and summarized by sketches.
///
/// Implementations must guarantee:
/// * `encode`/`decode` round-trip exactly;
/// * the encoding is *order-preserving*: `a <= b` iff
///   `a.encoded bytes <= b.encoded bytes` lexicographically;
/// * `midpoint(a, b)` for `a <= b` returns `z` with `a <= z <= b`, and
///   repeated bisection of `[a, b]` terminates in at most
///   [`Item::UNIVERSE_BITS`] steps.
///
/// The [`RadixKey`] supertrait feeds the batch-ingest radix sort
/// ([`crate::sort_items`]): when `RadixKey::RADIXABLE` its key must agree
/// with [`Item::to_ordered_u64`]; universes wider than 64 bits set it to
/// `false` and every sort falls back to the comparison path.
pub trait Item:
    RadixKey + Copy + Ord + std::hash::Hash + Send + Sync + std::fmt::Debug + 'static
{
    /// Width of the encoded form in bytes.
    const ENCODED_LEN: usize;
    /// Number of bits in the universe; bounds value-space bisection depth.
    const UNIVERSE_BITS: u32;

    /// Minimum element of the universe.
    const MIN: Self;
    /// Maximum element of the universe.
    const MAX: Self;

    /// Serialize into `buf` (exactly `ENCODED_LEN` bytes).
    fn encode(self, buf: &mut [u8]);
    /// Deserialize from `buf` (exactly `ENCODED_LEN` bytes).
    fn decode(buf: &[u8]) -> Self;
    /// Value-space midpoint; never overflows, result in `[a, b]` for `a <= b`.
    fn midpoint(a: Self, b: Self) -> Self;

    /// Map to a `u64` key preserving order: `a <= b` iff
    /// `a.to_ordered_u64() <= b.to_ordered_u64()`. Only the low
    /// [`Item::UNIVERSE_BITS`] bits are used. Q-Digest and other
    /// universe-structured sketches operate on this key space.
    fn to_ordered_u64(self) -> u64;
    /// Inverse of [`Item::to_ordered_u64`].
    fn from_ordered_u64(key: u64) -> Self;
}

macro_rules! impl_item_unsigned {
    ($t:ty, $wide:ty) => {
        impl Item for $t {
            const ENCODED_LEN: usize = std::mem::size_of::<$t>();
            const UNIVERSE_BITS: u32 = <$t>::BITS;
            const MIN: Self = <$t>::MIN;
            const MAX: Self = <$t>::MAX;

            #[inline]
            fn encode(self, buf: &mut [u8]) {
                buf[..Self::ENCODED_LEN].copy_from_slice(&self.to_be_bytes());
            }

            #[inline]
            fn decode(buf: &[u8]) -> Self {
                let mut b = [0u8; std::mem::size_of::<$t>()];
                b.copy_from_slice(&buf[..Self::ENCODED_LEN]);
                <$t>::from_be_bytes(b)
            }

            #[inline]
            fn midpoint(a: Self, b: Self) -> Self {
                ((a as $wide + b as $wide) / 2) as $t
            }

            #[inline]
            fn to_ordered_u64(self) -> u64 {
                self as u64
            }

            #[inline]
            fn from_ordered_u64(key: u64) -> Self {
                key as $t
            }
        }
    };
}

impl_item_unsigned!(u16, u32);
impl_item_unsigned!(u32, u64);
impl_item_unsigned!(u64, u128);

macro_rules! impl_item_signed {
    ($t:ty, $u:ty) => {
        impl Item for $t {
            const ENCODED_LEN: usize = std::mem::size_of::<$t>();
            const UNIVERSE_BITS: u32 = <$t>::BITS;
            const MIN: Self = <$t>::MIN;
            const MAX: Self = <$t>::MAX;

            #[inline]
            fn encode(self, buf: &mut [u8]) {
                // Flip the sign bit so the big-endian byte order matches the
                // signed value order.
                let biased = (self as $u) ^ (1 << (<$t>::BITS - 1));
                buf[..Self::ENCODED_LEN].copy_from_slice(&biased.to_be_bytes());
            }

            #[inline]
            fn decode(buf: &[u8]) -> Self {
                let mut b = [0u8; std::mem::size_of::<$t>()];
                b.copy_from_slice(&buf[..Self::ENCODED_LEN]);
                (<$u>::from_be_bytes(b) ^ (1 << (<$t>::BITS - 1))) as $t
            }

            #[inline]
            fn midpoint(a: Self, b: Self) -> Self {
                // Midpoint in the sign-biased unsigned space, mapped back.
                let ua = (a as $u) ^ (1 << (<$t>::BITS - 1));
                let ub = (b as $u) ^ (1 << (<$t>::BITS - 1));
                let mid = ua / 2 + ub / 2 + (ua & ub & 1);
                (mid ^ (1 << (<$t>::BITS - 1))) as $t
            }

            #[inline]
            fn to_ordered_u64(self) -> u64 {
                ((self as $u) ^ (1 << (<$t>::BITS - 1))) as u64
            }

            #[inline]
            fn from_ordered_u64(key: u64) -> Self {
                ((key as $u) ^ (1 << (<$t>::BITS - 1))) as $t
            }
        }
    };
}

impl_item_signed!(i32, u32);
impl_item_signed!(i64, u64);

/// An `f64` with a total order, storable in the warehouse.
///
/// NaNs are rejected at construction. The ordering is the usual numeric
/// order; `-0.0 == 0.0` is broken by the bit pattern (`-0.0 < 0.0`), which
/// keeps the order total and the encoding order-preserving.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct F64(u64);

impl F64 {
    /// Wrap a float. Panics on NaN.
    #[inline]
    pub fn new(v: f64) -> Self {
        assert!(!v.is_nan(), "F64 cannot hold NaN");
        F64(Self::key(v))
    }

    /// The wrapped float value.
    #[inline]
    pub fn get(self) -> f64 {
        f64::from_bits(Self::unkey(self.0))
    }

    /// Map the IEEE-754 bit pattern to a `u64` whose unsigned order equals
    /// the numeric order (standard "total order" trick).
    #[inline]
    fn key(v: f64) -> u64 {
        let bits = v.to_bits();
        if bits >> 63 == 0 {
            bits | (1 << 63)
        } else {
            !bits
        }
    }

    #[inline]
    fn unkey(k: u64) -> u64 {
        if k >> 63 == 1 {
            k & !(1 << 63)
        } else {
            !k
        }
    }
}

impl From<f64> for F64 {
    fn from(v: f64) -> Self {
        F64::new(v)
    }
}

impl std::fmt::Display for F64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.get())
    }
}

impl RadixKey for F64 {
    const RADIXABLE: bool = true;

    #[inline]
    fn radix_key(self) -> u64 {
        self.0
    }

    #[inline]
    fn from_radix_key(key: u64) -> Self {
        F64(key)
    }
}

impl Item for F64 {
    const ENCODED_LEN: usize = 8;
    const UNIVERSE_BITS: u32 = 64;
    /// `key(-inf)`: the smallest valid (non-NaN) key.
    const MIN: Self = F64(0x000F_FFFF_FFFF_FFFF);
    /// `key(+inf)`: the largest valid (non-NaN) key.
    const MAX: Self = F64(0xFFF0_0000_0000_0000);

    #[inline]
    fn encode(self, buf: &mut [u8]) {
        buf[..8].copy_from_slice(&self.0.to_be_bytes());
    }

    #[inline]
    fn decode(buf: &[u8]) -> Self {
        let mut b = [0u8; 8];
        b.copy_from_slice(&buf[..8]);
        F64(u64::from_be_bytes(b))
    }

    #[inline]
    fn midpoint(a: Self, b: Self) -> Self {
        // Bisect in key space: order-preserving and terminates in <= 64 steps.
        F64(a.0 / 2 + b.0 / 2 + (a.0 & b.0 & 1))
    }

    #[inline]
    fn to_ordered_u64(self) -> u64 {
        self.0
    }

    #[inline]
    fn from_ordered_u64(key: u64) -> Self {
        F64(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc<T: Item>(v: T) -> Vec<u8> {
        let mut buf = vec![0u8; T::ENCODED_LEN];
        v.encode(&mut buf);
        buf
    }

    #[test]
    fn u64_roundtrip_and_order() {
        let vals = [0u64, 1, 42, u64::MAX / 2, u64::MAX - 1, u64::MAX];
        for &a in &vals {
            assert_eq!(u64::decode(&enc(a)), a);
            for &b in &vals {
                assert_eq!(enc(a) < enc(b), a < b, "order mismatch {a} {b}");
            }
        }
    }

    #[test]
    fn i64_roundtrip_and_order() {
        let vals = [i64::MIN, -5, -1, 0, 1, 7, i64::MAX];
        for &a in &vals {
            assert_eq!(i64::decode(&enc(a)), a);
            for &b in &vals {
                assert_eq!(enc(a) < enc(b), a < b, "order mismatch {a} {b}");
            }
        }
    }

    #[test]
    fn i64_midpoint_in_range() {
        let pairs = [(i64::MIN, i64::MAX), (-10, 10), (-3, -1), (5, 5), (0, 1)];
        for (a, b) in pairs {
            let m = <i64 as Item>::midpoint(a, b);
            assert!(a <= m && m <= b, "midpoint({a},{b}) = {m} out of range");
        }
    }

    #[test]
    fn u64_midpoint_no_overflow() {
        assert_eq!(<u64 as Item>::midpoint(u64::MAX, u64::MAX), u64::MAX);
        let m = <u64 as Item>::midpoint(u64::MAX - 2, u64::MAX);
        assert_eq!(m, u64::MAX - 1);
    }

    #[test]
    fn f64_total_order_and_roundtrip() {
        let vals = [
            f64::NEG_INFINITY,
            -1e300,
            -1.5,
            -0.0,
            0.0,
            1e-300,
            2.5,
            1e300,
            f64::INFINITY,
        ];
        for (i, &a) in vals.iter().enumerate() {
            let fa = F64::new(a);
            assert_eq!(fa.get().to_bits(), a.to_bits());
            assert_eq!(F64::decode(&enc(fa)), fa);
            for (j, &b) in vals.iter().enumerate() {
                let fb = F64::new(b);
                assert_eq!(fa < fb, i < j, "order mismatch {a} {b}");
                assert_eq!(enc(fa) < enc(fb), i < j, "byte order mismatch {a} {b}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn f64_rejects_nan() {
        let _ = F64::new(f64::NAN);
    }

    #[test]
    fn f64_midpoint_between() {
        let a = F64::new(1.0);
        let b = F64::new(4.0);
        let m = F64::midpoint(a, b);
        assert!(a <= m && m <= b);
        // Bisection terminates: repeatedly halving [1.0, 4.0] reaches a fixpoint.
        let (lo, mut hi) = (a, b);
        for _ in 0..200 {
            let m = F64::midpoint(lo, hi);
            if m == lo || m == hi {
                return;
            }
            hi = m;
        }
        panic!("bisection did not terminate in 200 steps (expected <= 64)");
    }

    #[test]
    fn bisection_depth_bounded_u32() {
        let (lo, mut hi) = (u32::MIN, u32::MAX);
        let mut steps = 0;
        loop {
            let m = <u32 as Item>::midpoint(lo, hi);
            if m == lo {
                break;
            }
            hi = m;
            steps += 1;
            assert!(steps <= u32::UNIVERSE_BITS, "too many bisection steps");
        }
    }
}
